package raidsim_test

import (
	"path/filepath"
	"sync"
	"testing"

	"raidsim/internal/campaign"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

// equivalencePoints builds one campaign point per pinned equivalence
// case, with the exact configs TestRefactorEquivalence runs directly.
func equivalencePoints(t *testing.T) []campaign.Point {
	t.Helper()
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]campaign.Point, 0, len(equivalenceCases))
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement: layout.EndPlacement,
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		points = append(points, campaign.Point{ID: tc.name, Config: cfg, Trace: tr})
	}
	return points
}

// TestCampaignReproducesEquivalenceGolden drives the pinned equivalence
// matrix through the campaign pool instead of direct core.Run calls and
// requires the same 19 golden fingerprints bit for bit — the campaign
// layer must be a pure executor. A second Execute against the journal
// must then replay everything and simulate nothing.
func TestCampaignReproducesEquivalenceGolden(t *testing.T) {
	points := equivalencePoints(t)
	journalPath := filepath.Join(t.TempDir(), "equiv.jsonl")
	j, err := campaign.OpenJournal(journalPath, "equiv", 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[string]string, len(points))
	out, err := campaign.Execute(points, campaign.Options{
		Workers: 4,
		Journal: j,
		OnResult: func(_ int, p campaign.Point, res *core.Results) {
			mu.Lock()
			got[p.ID] = fingerprint(res)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := out.Failed(); len(failed) > 0 {
		t.Fatalf("runs failed: %v", failed)
	}
	if out.Executed != len(points) {
		t.Fatalf("executed %d, want %d", out.Executed, len(points))
	}
	for name, want := range equivalenceGolden {
		if got[name] != want {
			t.Errorf("%s: campaign run drifted from the pinned capture\n got: %s\nwant: %s", name, got[name], want)
		}
	}
	j.Close()

	j2, err := campaign.OpenJournal(journalPath, "equiv", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	again, err := campaign.Execute(points, campaign.Options{Workers: 4, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Skipped != len(points) {
		t.Errorf("resume executed %d skipped %d, want 0/%d", again.Executed, again.Skipped, len(points))
	}
	for i := range again.Records {
		if again.Records[i].ID == "" {
			t.Errorf("resume lost record for %s", points[i].ID)
		}
	}
}
