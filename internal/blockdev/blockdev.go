// Package blockdev is a functional (data-carrying) implementation of the
// redundant layouts the simulator models: an in-memory array of disks
// storing real bytes with real XOR parity. It exists to validate the
// parity math the performance model assumes — writes maintain parity via
// the same read-modify-write or full-stripe rules, any single disk can
// fail, and reads reconstruct its contents from the survivors.
package blockdev

import (
	"bytes"
	"fmt"

	"raidsim/internal/layout"
)

// Store is a parity-protected in-memory block device.
type Store struct {
	lay       layout.ParityLayout
	blockSize int
	disks     [][][]byte // [disk][physical block] -> data (nil = zero)
	failed    []bool

	// Stats
	Reads, Writes, Reconstructions, DegradedWrites int64
}

// New builds a store over the given layout with blockSize-byte blocks.
func New(lay layout.ParityLayout, blockSize int) *Store {
	if blockSize <= 0 {
		panic("blockdev: block size must be positive")
	}
	s := &Store{
		lay:       lay,
		blockSize: blockSize,
		disks:     make([][][]byte, lay.Disks()),
		failed:    make([]bool, lay.Disks()),
	}
	return s
}

// BlockSize returns the device block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// Capacity returns the number of addressable logical blocks.
func (s *Store) Capacity() int64 { return s.lay.DataBlocks() }

func (s *Store) rawRead(loc layout.Loc) []byte {
	d := s.disks[loc.Disk]
	if d == nil || loc.Block >= int64(len(d)) || d[loc.Block] == nil {
		return make([]byte, s.blockSize) // unwritten blocks read as zero
	}
	out := make([]byte, s.blockSize)
	copy(out, d[loc.Block])
	return out
}

func (s *Store) rawWrite(loc layout.Loc, data []byte) {
	if s.disks[loc.Disk] == nil {
		s.disks[loc.Disk] = make([][]byte, 0)
	}
	for int64(len(s.disks[loc.Disk])) <= loc.Block {
		s.disks[loc.Disk] = append(s.disks[loc.Disk], nil)
	}
	b := make([]byte, s.blockSize)
	copy(b, data)
	s.disks[loc.Disk][loc.Block] = b
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Write stores one logical block, maintaining parity with the
// read-modify-write rule: new parity = old parity XOR old data XOR new
// data. With a single disk failed it degrades gracefully: a write whose
// home disk is down folds the new data into parity alone (parity = new
// data XOR all surviving members), so a later Read or Rebuild recovers
// it; a write whose parity disk is down lands on the home disk with no
// parity update. Writes striking two failed disks report data loss.
func (s *Store) Write(lba int64, data []byte) error {
	if len(data) != s.blockSize {
		return fmt.Errorf("blockdev: write of %d bytes, block size is %d", len(data), s.blockSize)
	}
	if lba < 0 || lba >= s.Capacity() {
		return fmt.Errorf("blockdev: lba %d out of range", lba)
	}
	home := s.lay.Map(lba)
	ploc := s.lay.Parity(lba)
	switch {
	case s.failed[home.Disk] && s.failed[ploc.Disk]:
		return fmt.Errorf("blockdev: write lost, double failure (disks %d and %d)", home.Disk, ploc.Disk)
	case s.failed[home.Disk]:
		// Degraded write to a dead home: the only remaining copy of this
		// block is the one encoded in parity. Recompute parity from the
		// surviving stripe members plus the new data.
		parity := make([]byte, s.blockSize)
		copy(parity, data)
		for _, m := range s.lay.StripeMembers(lba) {
			if m == lba {
				continue
			}
			mloc := s.lay.Map(m)
			if s.failed[mloc.Disk] {
				return fmt.Errorf("blockdev: write lost, double failure (disks %d and %d)", home.Disk, mloc.Disk)
			}
			xorInto(parity, s.rawRead(mloc))
		}
		s.rawWrite(ploc, parity)
		s.Writes++
		s.DegradedWrites++
		return nil
	case s.failed[ploc.Disk]:
		// Parity disk down: plain unprotected write to the home disk.
		s.rawWrite(home, data)
		s.Writes++
		s.DegradedWrites++
		return nil
	}
	old := s.rawRead(home)
	parity := s.rawRead(ploc)
	xorInto(parity, old)
	xorInto(parity, data)
	s.rawWrite(home, data)
	s.rawWrite(ploc, parity)
	s.Writes++
	return nil
}

// Read returns one logical block, reconstructing from parity and the
// surviving stripe members if its home disk is failed.
func (s *Store) Read(lba int64) ([]byte, error) {
	if lba < 0 || lba >= s.Capacity() {
		return nil, fmt.Errorf("blockdev: lba %d out of range", lba)
	}
	home := s.lay.Map(lba)
	if !s.failed[home.Disk] {
		s.Reads++
		return s.rawRead(home), nil
	}
	// Degraded read: XOR the parity block with every surviving member.
	ploc := s.lay.Parity(lba)
	if s.failed[ploc.Disk] {
		return nil, fmt.Errorf("blockdev: double failure (disks %d and %d)", home.Disk, ploc.Disk)
	}
	out := s.rawRead(ploc)
	for _, m := range s.lay.StripeMembers(lba) {
		if m == lba {
			continue
		}
		mloc := s.lay.Map(m)
		if s.failed[mloc.Disk] {
			return nil, fmt.Errorf("blockdev: double failure (disks %d and %d)", home.Disk, mloc.Disk)
		}
		xorInto(out, s.rawRead(mloc))
	}
	s.Reads++
	s.Reconstructions++
	return out, nil
}

// FailDisk marks a disk as failed, discarding its contents.
func (s *Store) FailDisk(disk int) error {
	if disk < 0 || disk >= s.lay.Disks() {
		return fmt.Errorf("blockdev: no disk %d", disk)
	}
	if s.failed[disk] {
		return fmt.Errorf("blockdev: disk %d already failed", disk)
	}
	s.failed[disk] = true
	s.disks[disk] = nil
	return nil
}

// FailedDisks returns the indexes of failed disks.
func (s *Store) FailedDisks() []int {
	var out []int
	for i, f := range s.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Rebuild reconstructs the failed disk onto a fresh replacement by
// recomputing every logical and parity block that lived on it. It
// returns the number of blocks reconstructed.
func (s *Store) Rebuild(disk int) (int64, error) {
	if disk < 0 || disk >= s.lay.Disks() {
		return 0, fmt.Errorf("blockdev: no disk %d", disk)
	}
	if !s.failed[disk] {
		return 0, fmt.Errorf("blockdev: disk %d is not failed", disk)
	}
	for _, f := range s.FailedDisks() {
		if f != disk {
			return 0, fmt.Errorf("blockdev: cannot rebuild with another disk (%d) failed", f)
		}
	}
	s.failed[disk] = false // survivors readable; target writable below
	var rebuilt int64

	// Data blocks whose home is the failed disk: reconstruct via the
	// degraded-read rule (all survivors are intact).
	for lba := int64(0); lba < s.Capacity(); lba++ {
		home := s.lay.Map(lba)
		if home.Disk != disk {
			continue
		}
		block := s.rawRead(s.lay.Parity(lba))
		for _, m := range s.lay.StripeMembers(lba) {
			if m == lba {
				continue
			}
			xorInto(block, s.rawRead(s.lay.Map(m)))
		}
		if !allZero(block) {
			s.rawWrite(home, block)
			rebuilt++
		}
	}
	// Parity blocks on the failed disk: recompute as the XOR of their
	// stripe members.
	seen := make(map[int64]bool)
	for lba := int64(0); lba < s.Capacity(); lba++ {
		ploc := s.lay.Parity(lba)
		if ploc.Disk != disk || seen[ploc.Block] {
			continue
		}
		seen[ploc.Block] = true
		parity := make([]byte, s.blockSize)
		for _, m := range s.lay.StripeMembers(lba) {
			xorInto(parity, s.rawRead(s.lay.Map(m)))
		}
		if !allZero(parity) {
			s.rawWrite(ploc, parity)
			rebuilt++
		}
	}
	return rebuilt, nil
}

// VerifyParity checks every written stripe's parity and returns the
// first inconsistency found, or nil.
func (s *Store) VerifyParity() error {
	checked := make(map[layout.Loc]bool)
	for lba := int64(0); lba < s.Capacity(); lba++ {
		ploc := s.lay.Parity(lba)
		if checked[ploc] {
			continue
		}
		checked[ploc] = true
		want := s.rawRead(ploc)
		got := make([]byte, s.blockSize)
		for _, m := range s.lay.StripeMembers(lba) {
			xorInto(got, s.rawRead(s.lay.Map(m)))
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("blockdev: parity mismatch at parity block disk=%d block=%d (protecting lba %d)",
				ploc.Disk, ploc.Block, lba)
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
