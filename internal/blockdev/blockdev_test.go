package blockdev

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"raidsim/internal/layout"
	"raidsim/internal/rng"
)

func fill(src *rng.Source, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src.Uint64())
	}
	return b
}

func layouts() map[string]layout.ParityLayout {
	return map[string]layout.ParityLayout{
		"raid5-su1":  layout.NewRAID5(4, 40, 1),
		"raid5-su4":  layout.NewRAID5(3, 40, 4),
		"raid4":      layout.NewRAID4(4, 40, 2),
		"pstripe":    layout.NewParityStriping(4, 40, layout.MiddlePlacement, 0),
		"pstripe-fg": layout.NewParityStriping(4, 40, layout.EndPlacement, 2),
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 64)
			src := rng.New(1)
			want := map[int64][]byte{}
			for i := 0; i < 50; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 64)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d: data corrupted", lba)
				}
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := New(layout.NewRAID5(3, 20, 1), 16)
	got, err := s.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestDegradedReadReconstructs(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 32)
			src := rng.New(2)
			want := map[int64][]byte{}
			for i := 0; i < 80; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			if err := s.FailDisk(1); err != nil {
				t.Fatal(err)
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatalf("lba %d: %v", lba, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d: reconstruction wrong", lba)
				}
			}
			if s.Reconstructions == 0 {
				t.Fatal("no reconstructions recorded; disk 1 held no data?")
			}
		})
	}
}

func TestRebuildRestoresDisk(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 32)
			src := rng.New(3)
			want := map[int64][]byte{}
			for i := 0; i < 80; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			if err := s.FailDisk(2); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Rebuild(2); err != nil {
				t.Fatal(err)
			}
			if len(s.FailedDisks()) != 0 {
				t.Fatal("disk still failed after rebuild")
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatalf("parity broken after rebuild: %v", err)
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d corrupted by rebuild", lba)
				}
			}
			// Writes work again, including to the rebuilt disk.
			for i := 0; i < 20; i++ {
				lba := src.Int63n(s.Capacity())
				if err := s.Write(lba, fill(src, 32)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDoubleFailureDetected(t *testing.T) {
	s := New(layout.NewRAID5(4, 40, 1), 16)
	src := rng.New(4)
	for i := int64(0); i < 40; i++ {
		if err := s.Write(i, fill(src, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	anyErr := false
	for i := int64(0); i < 40; i++ {
		if _, err := s.Read(i); err != nil {
			anyErr = true
		}
	}
	if !anyErr {
		t.Fatal("double failure never surfaced")
	}
	if _, err := s.Rebuild(0); err == nil {
		t.Fatal("rebuild with a second failed disk should error")
	}
}

func TestWriteErrors(t *testing.T) {
	s := New(layout.NewRAID5(3, 20, 1), 16)
	if err := s.Write(0, make([]byte, 5)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := s.Write(-1, make([]byte, 16)); err == nil {
		t.Fatal("negative lba accepted")
	}
	if err := s.Write(s.Capacity(), make([]byte, 16)); err == nil {
		t.Fatal("out-of-range lba accepted")
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(0); err == nil {
		t.Fatal("double fail of same disk accepted")
	}
	if err := s.FailDisk(99); err == nil {
		t.Fatal("bad disk index accepted")
	}
}

func TestDegradedWrites(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 32)
			src := rng.New(7)
			want := map[int64][]byte{}
			for i := 0; i < 60; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			if err := s.FailDisk(0); err != nil {
				t.Fatal(err)
			}
			// Degraded writes: every block stays writable with one disk down.
			for i := 0; i < 60; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatalf("degraded write of lba %d: %v", lba, err)
				}
				want[lba] = data
			}
			if s.DegradedWrites == 0 {
				t.Fatal("no degraded writes recorded; disk 0 held nothing?")
			}
			// Everything reads back while degraded, except blocks whose only
			// copy sits behind the dead parity disk (unprotected writes read
			// fine; reconstruction of old data through dead parity cannot).
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatalf("degraded read of lba %d: %v", lba, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d wrong while degraded", lba)
				}
			}
			if _, err := s.Rebuild(0); err != nil {
				t.Fatal(err)
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatalf("parity broken after rebuild: %v", err)
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d wrong after rebuild", lba)
				}
			}
		})
	}
}

// TestQuickFaultScheduleSurvives is the fault-injection property test: a
// random write workload interleaved with a random single-disk failure and
// rebuild must never lose a block. After the array heals, every block
// written (before the failure, or degraded while it was down) reads back
// bit-identical and parity verifies.
func TestQuickFaultScheduleSurvives(t *testing.T) {
	lays := layouts()
	names := make([]string, 0, len(lays))
	for name := range lays {
		names = append(names, name)
	}
	sort.Strings(names)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		lay := lays[names[int(src.Int63n(int64(len(names))))]]
		s := New(lay, 16)
		want := map[int64][]byte{}
		ops := 40 + int(src.Int63n(80))
		failAt := int(src.Int63n(int64(ops)))
		rebuildAt := failAt + 1 + int(src.Int63n(int64(ops-failAt)))
		victim := int(src.Int63n(int64(lay.Disks())))
		for i := 0; i < ops; i++ {
			if i == failAt {
				if err := s.FailDisk(victim); err != nil {
					return false
				}
			}
			if i == rebuildAt {
				if _, err := s.Rebuild(victim); err != nil {
					return false
				}
			}
			lba := src.Int63n(s.Capacity())
			data := fill(src, 16)
			if err := s.Write(lba, data); err != nil {
				return false
			}
			want[lba] = data
		}
		if len(s.FailedDisks()) > 0 {
			if _, err := s.Rebuild(victim); err != nil {
				return false
			}
		}
		for lba, data := range want {
			got, err := s.Read(lba)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return s.VerifyParity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParityAlwaysConsistent: arbitrary write sequences keep parity
// consistent under every layout.
func TestQuickParityAlwaysConsistent(t *testing.T) {
	lay := layout.NewRAID5(3, 30, 2)
	f := func(seed uint64) bool {
		s := New(lay, 8)
		src := rng.New(seed)
		for i := 0; i < 60; i++ {
			lba := src.Int63n(s.Capacity())
			if err := s.Write(lba, fill(src, 8)); err != nil {
				return false
			}
		}
		return s.VerifyParity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
