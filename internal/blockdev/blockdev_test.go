package blockdev

import (
	"bytes"
	"testing"
	"testing/quick"

	"raidsim/internal/layout"
	"raidsim/internal/rng"
)

func fill(src *rng.Source, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src.Uint64())
	}
	return b
}

func layouts() map[string]layout.ParityLayout {
	return map[string]layout.ParityLayout{
		"raid5-su1":  layout.NewRAID5(4, 40, 1),
		"raid5-su4":  layout.NewRAID5(3, 40, 4),
		"raid4":      layout.NewRAID4(4, 40, 2),
		"pstripe":    layout.NewParityStriping(4, 40, layout.MiddlePlacement, 0),
		"pstripe-fg": layout.NewParityStriping(4, 40, layout.EndPlacement, 2),
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 64)
			src := rng.New(1)
			want := map[int64][]byte{}
			for i := 0; i < 50; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 64)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d: data corrupted", lba)
				}
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := New(layout.NewRAID5(3, 20, 1), 16)
	got, err := s.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestDegradedReadReconstructs(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 32)
			src := rng.New(2)
			want := map[int64][]byte{}
			for i := 0; i < 80; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			if err := s.FailDisk(1); err != nil {
				t.Fatal(err)
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatalf("lba %d: %v", lba, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d: reconstruction wrong", lba)
				}
			}
			if s.Reconstructions == 0 {
				t.Fatal("no reconstructions recorded; disk 1 held no data?")
			}
		})
	}
}

func TestRebuildRestoresDisk(t *testing.T) {
	for name, lay := range layouts() {
		t.Run(name, func(t *testing.T) {
			s := New(lay, 32)
			src := rng.New(3)
			want := map[int64][]byte{}
			for i := 0; i < 80; i++ {
				lba := src.Int63n(s.Capacity())
				data := fill(src, 32)
				if err := s.Write(lba, data); err != nil {
					t.Fatal(err)
				}
				want[lba] = data
			}
			if err := s.FailDisk(2); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Rebuild(2); err != nil {
				t.Fatal(err)
			}
			if len(s.FailedDisks()) != 0 {
				t.Fatal("disk still failed after rebuild")
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatalf("parity broken after rebuild: %v", err)
			}
			for lba, data := range want {
				got, err := s.Read(lba)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("lba %d corrupted by rebuild", lba)
				}
			}
			// Writes work again, including to the rebuilt disk.
			for i := 0; i < 20; i++ {
				lba := src.Int63n(s.Capacity())
				if err := s.Write(lba, fill(src, 32)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDoubleFailureDetected(t *testing.T) {
	s := New(layout.NewRAID5(4, 40, 1), 16)
	src := rng.New(4)
	for i := int64(0); i < 40; i++ {
		if err := s.Write(i, fill(src, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	anyErr := false
	for i := int64(0); i < 40; i++ {
		if _, err := s.Read(i); err != nil {
			anyErr = true
		}
	}
	if !anyErr {
		t.Fatal("double failure never surfaced")
	}
	if _, err := s.Rebuild(0); err == nil {
		t.Fatal("rebuild with a second failed disk should error")
	}
}

func TestWriteErrors(t *testing.T) {
	s := New(layout.NewRAID5(3, 20, 1), 16)
	if err := s.Write(0, make([]byte, 5)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := s.Write(-1, make([]byte, 16)); err == nil {
		t.Fatal("negative lba accepted")
	}
	if err := s.Write(s.Capacity(), make([]byte, 16)); err == nil {
		t.Fatal("out-of-range lba accepted")
	}
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(0); err == nil {
		t.Fatal("double fail of same disk accepted")
	}
	if err := s.FailDisk(99); err == nil {
		t.Fatal("bad disk index accepted")
	}
}

// TestQuickParityAlwaysConsistent: arbitrary write sequences keep parity
// consistent under every layout.
func TestQuickParityAlwaysConsistent(t *testing.T) {
	lay := layout.NewRAID5(3, 30, 2)
	f := func(seed uint64) bool {
		s := New(lay, 8)
		src := rng.New(seed)
		for i := 0; i < 60; i++ {
			lba := src.Int63n(s.Capacity())
			if err := s.Write(lba, fill(src, 8)); err != nil {
				return false
			}
		}
		return s.VerifyParity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
