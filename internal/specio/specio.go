// Package specio is the shared strict JSON loader behind every
// declarative spec file the simulator consumes (campaign grids, workload
// specs). It exists so a typoed key fails loudly — with a "did you mean"
// suggestion — instead of silently defaulting, and so spec files carry a
// versioned header that is checked once, in one place.
package specio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"
)

// Header describes the version header a spec format expects. The header
// is a plain JSON string field (conventionally "spec") whose value names
// the format and revision, e.g. "raidsim-workload/1".
type Header struct {
	// Field is the JSON key holding the version string; default "spec".
	Field string
	// Want is the exact version string this reader understands; empty
	// disables the check entirely.
	Want string
	// Required refuses inputs that omit the header. Leave false for
	// formats that predate versioning (their existing files must keep
	// loading); the header is still validated when present.
	Required bool
}

func (h Header) field() string {
	if h.Field == "" {
		return "spec"
	}
	return h.Field
}

// Load reads the file at path and decodes it into v (a struct pointer)
// with strict key checking and header validation.
func Load(path string, h Header, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Parse(bytes.NewReader(raw), path, h, v); err != nil {
		return err
	}
	return nil
}

// Parse decodes JSON from r into v (a struct pointer), rejecting unknown
// fields with a nearest-key suggestion and validating the version header.
// what names the input (a path, "stdin") in error messages.
func Parse(r io.Reader, what string, h Header, v any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	if h.Want != "" {
		if err := checkHeader(raw, what, h); err != nil {
			return err
		}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if key, ok := unknownField(err); ok {
			msg := fmt.Sprintf("%s: unknown key %q", what, key)
			if sug := suggest(key, knownKeys(reflect.TypeOf(v))); sug != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", sug)
			}
			return fmt.Errorf("%s", msg)
		}
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}

// checkHeader extracts the version field from the raw document and
// compares it against the expected string.
func checkHeader(raw []byte, what string, h Header) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	fv, ok := top[h.field()]
	if !ok {
		if h.Required {
			return fmt.Errorf("%s: missing version header: want %q: %q", what, h.field(), h.Want)
		}
		return nil
	}
	var got string
	if err := json.Unmarshal(fv, &got); err != nil {
		return fmt.Errorf("%s: version header %q is not a string", what, h.field())
	}
	if got != h.Want {
		return fmt.Errorf("%s: unsupported spec version %q (this reader understands %q)", what, got, h.Want)
	}
	return nil
}

// unknownField extracts the offending key from encoding/json's
// DisallowUnknownFields error, which is a plain errors.New with the shape
// `json: unknown field "xyz"`.
func unknownField(err error) (string, bool) {
	const prefix = `json: unknown field "`
	msg := err.Error()
	if !strings.HasPrefix(msg, prefix) || !strings.HasSuffix(msg, `"`) {
		return "", false
	}
	return msg[len(prefix) : len(msg)-1], true
}

// knownKeys walks the target type and collects every JSON key reachable
// at any nesting level (struct fields, slice elements, map values), so a
// typo inside a nested clause still gets a suggestion.
func knownKeys(t reflect.Type) []string {
	seen := make(map[reflect.Type]bool)
	keys := make(map[string]bool)
	var walk func(reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			walk(t.Elem())
		case reflect.Struct:
			if seen[t] {
				return
			}
			seen[t] = true
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				if !f.IsExported() {
					continue
				}
				tag := f.Tag.Get("json")
				name := strings.Split(tag, ",")[0]
				if name == "-" {
					continue
				}
				if name == "" {
					name = f.Name
				}
				keys[name] = true
				walk(f.Type)
			}
		}
	}
	walk(t)
	out := make([]string, 0, len(keys))
	for k := range keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// suggest returns the known key closest to got, if it is close enough to
// plausibly be a typo (edit distance at most max(2, len/3)).
func suggest(got string, known []string) string {
	best, bestD := "", 1<<30
	for _, k := range known {
		if d := levenshtein(got, k); d < bestD {
			best, bestD = k, d
		}
	}
	limit := len(got) / 3
	if limit < 2 {
		limit = 2
	}
	if bestD > limit {
		return ""
	}
	return best
}

// levenshtein is the classic two-row edit distance.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
