package specio

import (
	"strings"
	"testing"
)

type child struct {
	Rate float64 `json:"rate"`
}

type target struct {
	SpecVersion string  `json:"spec,omitempty"`
	Name        string  `json:"name"`
	WriteFrac   float64 `json:"write_fraction,omitempty"`
	Kids        []child `json:"kids,omitempty"`
	hidden      int     //nolint:unused // exercises the unexported-field skip
}

func TestParseStrictUnknownKeySuggests(t *testing.T) {
	var v target
	err := Parse(strings.NewReader(`{"name":"x","wirte_fraction":0.2}`), "spec.json", Header{Want: "t/1"}, &v)
	if err == nil {
		t.Fatal("want error for unknown key")
	}
	for _, frag := range []string{"spec.json", `"wirte_fraction"`, `did you mean "write_fraction"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestParseNestedUnknownKeySuggests(t *testing.T) {
	var v target
	err := Parse(strings.NewReader(`{"name":"x","kids":[{"rte":1}]}`), "spec.json", Header{}, &v)
	if err == nil {
		t.Fatal("want error for nested unknown key")
	}
	if !strings.Contains(err.Error(), `did you mean "rate"`) {
		t.Errorf("error %q missing nested suggestion", err)
	}
}

func TestParseUnknownKeyNoNearMatch(t *testing.T) {
	var v target
	err := Parse(strings.NewReader(`{"zzzzzzzz":1}`), "spec.json", Header{}, &v)
	if err == nil {
		t.Fatal("want error")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("error %q suggested a key for a hopeless typo", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		h       Header
		wantErr string
	}{
		{"match", `{"spec":"t/1","name":"x"}`, Header{Want: "t/1"}, ""},
		{"absent optional", `{"name":"x"}`, Header{Want: "t/1"}, ""},
		{"absent required", `{"name":"x"}`, Header{Want: "t/1", Required: true}, "missing version header"},
		{"mismatch", `{"spec":"t/2","name":"x"}`, Header{Want: "t/1"}, "unsupported spec version"},
		{"mismatch even optional", `{"spec":"other","name":"x"}`, Header{Want: "t/1"}, "unsupported spec version"},
		{"non-string", `{"spec":3,"name":"x"}`, Header{Want: "t/1"}, "not a string"},
		{"no check", `{"spec":"whatever","name":"x"}`, Header{}, ""},
	}
	for _, c := range cases {
		var v target
		err := Parse(strings.NewReader(c.in), "in", c.h, &v)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"orgs", "org", 1}, {"traces", "trace", 1},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.d {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	var v target
	if err := Load(t.TempDir()+"/nope.json", Header{}, &v); err == nil {
		t.Fatal("want error for missing file")
	}
}
