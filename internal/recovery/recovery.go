// Package recovery simulates a parity array operating degraded (one disk
// failed) and rebuilding onto a replacement — the paper's remark that
// "large arrays ... have worse performance during reconstruction
// following a disk failure" (section 4.2.1), quantified.
//
// Degraded semantics follow the standard RAID rules the functional store
// (package blockdev) validates:
//
//   - read of a failed block: read the stripe's N-1 surviving members
//     plus parity and XOR them — N reads fan out across the survivors;
//   - write to a failed block: read the surviving members, then write
//     the new parity (the data itself cannot be stored);
//   - write whose parity disk failed: write the data only;
//   - otherwise the normal read-modify-write pair.
//
// The rebuild process sweeps the replacement disk in chunks: each chunk
// reads the corresponding blocks from every survivor and writes the
// reconstruction, at background priority, with a configurable pause
// between chunks to throttle its interference.
package recovery

import (
	"fmt"

	"raidsim/internal/disk"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// Config describes the degraded array.
type Config struct {
	N            int
	Spec         geom.Spec
	StripingUnit int
	FailedDisk   int
	// Rebuild, when true, starts a rebuild sweep at RebuildStart.
	Rebuild      bool
	RebuildStart sim.Time
	RebuildChunk int      // blocks per rebuild I/O (default 48)
	RebuildPause sim.Time // idle gap between chunks (default 0)
	Seed         uint64
}

// Results reports what the degraded simulation measured.
type Results struct {
	Requests      int64
	Resp          stats.Summary // all foreground requests, ms
	DegradedResp  stats.Summary // requests that needed reconstruction
	NormalResp    stats.Summary
	RebuildDone   bool
	RebuildTime   sim.Time // from RebuildStart to completion
	RebuildChunks int64
}

// Sim is a degraded-mode array simulation.
type Sim struct {
	eng   *sim.Engine
	cfg   Config
	lay   layout.ParityLayout
	disks []*disk.Disk

	inflight int
	failed   int
	rebuilt  bool

	res Results
}

// New builds the simulation. The array is RAID5 with the given striping
// unit; FailedDisk is failed from time zero.
func New(eng *sim.Engine, cfg Config) (*Sim, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("recovery: N must be >= 2")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.StripingUnit <= 0 {
		cfg.StripingUnit = 1
	}
	lay := layout.NewRAID5(cfg.N, cfg.Spec.BlocksPerDisk(), cfg.StripingUnit)
	// FailedDisk == -1 simulates a healthy array (baseline).
	if cfg.FailedDisk < -1 || cfg.FailedDisk >= lay.Disks() {
		return nil, fmt.Errorf("recovery: failed disk %d out of range", cfg.FailedDisk)
	}
	if cfg.FailedDisk == -1 {
		cfg.Rebuild = false
	}
	if cfg.RebuildChunk <= 0 {
		cfg.RebuildChunk = 48
	}
	seek, err := geom.CalibrateSeek(cfg.Spec)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 0xdead)
	s := &Sim{eng: eng, cfg: cfg, lay: lay, failed: cfg.FailedDisk}
	s.disks = make([]*disk.Disk, lay.Disks())
	for i := range s.disks {
		s.disks[i], err = disk.New(eng, i, cfg.Spec, seek, src.Float64())
		if err != nil {
			return nil, err
		}
	}
	if cfg.Rebuild {
		eng.At(cfg.RebuildStart, func() { s.rebuildChunk(0) })
	}
	return s, nil
}

// DataBlocks returns the array's logical capacity.
func (s *Sim) DataBlocks() int64 { return s.lay.DataBlocks() }

// Drained reports whether all foreground requests completed.
func (s *Sim) Drained() bool { return s.inflight == 0 }

// Results snapshots the measurements.
func (s *Sim) Results() *Results {
	r := s.res
	return &r
}

// Submit presents a foreground request (single blocks; multiblock
// requests are treated block-at-a-time for degraded accounting).
func (s *Sim) Submit(op trace.Op, lba int64) {
	s.res.Requests++
	s.inflight++
	start := s.eng.Now()
	degraded := false
	done := func() {
		ms := sim.Millis(s.eng.Now() - start)
		s.res.Resp.Add(ms)
		if degraded {
			s.res.DegradedResp.Add(ms)
		} else {
			s.res.NormalResp.Add(ms)
		}
		s.inflight--
	}

	home := s.lay.Map(lba)
	ploc := s.lay.Parity(lba)
	if op == trace.Read {
		if home.Disk != s.failed || s.rebuilt {
			s.read(home, disk.PriNormal, done)
			return
		}
		// Degraded read: parity + surviving members, response = max.
		degraded = true
		members := s.survivorLocs(lba)
		l := s.latch(len(members), done)
		for _, m := range members {
			s.read(m, disk.PriNormal, l)
		}
		return
	}

	switch {
	case s.rebuilt || (home.Disk != s.failed && ploc.Disk != s.failed):
		// Normal RMW pair: data then parity, Disk First semantics.
		var dataReadDone bool
		l := s.latch(2, done)
		s.disks[home.Disk].Submit(&disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true, RMW: true,
			Priority:   disk.PriNormal,
			OnReadDone: func() { dataReadDone = true },
			OnStart: func() {
				s.disks[ploc.Disk].Submit(&disk.Request{
					StartBlock: ploc.Block, Blocks: 1, Write: true, RMW: true,
					Priority: disk.PriNormal,
					Ready:    func() bool { return dataReadDone },
					OnDone:   l,
				})
			},
			OnDone: l,
		})
	case home.Disk == s.failed:
		// Write to the failed disk: read survivors, then write parity.
		degraded = true
		members := s.survivorDataLocs(lba)
		l := s.latch(len(members), func() {
			s.disks[ploc.Disk].Submit(&disk.Request{
				StartBlock: ploc.Block, Blocks: 1, Write: true,
				Priority: disk.PriNormal, OnDone: done,
			})
		})
		for _, m := range members {
			s.read(m, disk.PriNormal, l)
		}
	default:
		// Parity disk failed: plain data write.
		degraded = true
		s.disks[home.Disk].Submit(&disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true,
			Priority: disk.PriNormal, OnDone: done,
		})
	}
}

// survivorLocs returns the parity block plus surviving member locations
// of lba's stripe (for degraded reads).
func (s *Sim) survivorLocs(lba int64) []layout.Loc {
	locs := s.survivorDataLocs(lba)
	return append(locs, s.lay.Parity(lba))
}

// survivorDataLocs returns the stripe's other data members.
func (s *Sim) survivorDataLocs(lba int64) []layout.Loc {
	var locs []layout.Loc
	for _, m := range s.lay.StripeMembers(lba) {
		if m == lba {
			continue
		}
		locs = append(locs, s.lay.Map(m))
	}
	return locs
}

func (s *Sim) read(loc layout.Loc, pri disk.Priority, onDone func()) {
	s.disks[loc.Disk].Submit(&disk.Request{
		StartBlock: loc.Block, Blocks: 1, Priority: pri, OnDone: onDone,
	})
}

// latch returns a func() that calls fn after being invoked n times.
func (s *Sim) latch(n int, fn func()) func() {
	remaining := n
	if n == 0 {
		fn()
		return func() {}
	}
	return func() {
		remaining--
		if remaining == 0 {
			fn()
		}
	}
}

// rebuildChunk reconstructs physical blocks [start, start+chunk) of the
// failed disk: read the same physical span from every survivor, then
// write the replacement, then schedule the next chunk.
func (s *Sim) rebuildChunk(start int64) {
	bpd := s.cfg.Spec.BlocksPerDisk()
	if start >= bpd {
		s.rebuilt = true
		s.res.RebuildDone = true
		s.res.RebuildTime = s.eng.Now() - s.cfg.RebuildStart
		return
	}
	n := int64(s.cfg.RebuildChunk)
	if start+n > bpd {
		n = bpd - start
	}
	s.res.RebuildChunks++
	survivors := 0
	for d := range s.disks {
		if d != s.failed {
			survivors++
		}
	}
	l := s.latch(survivors, func() {
		// Write the reconstructed span to the replacement drive.
		s.disks[s.failed].Submit(&disk.Request{
			StartBlock: start, Blocks: int(n), Write: true,
			Priority: disk.PriBackground,
			OnDone: func() {
				next := func() { s.rebuildChunk(start + n) }
				if s.cfg.RebuildPause > 0 {
					s.eng.After(s.cfg.RebuildPause, next)
				} else {
					next()
				}
			},
		})
	})
	for d := range s.disks {
		if d == s.failed {
			continue
		}
		s.disks[d].Submit(&disk.Request{
			StartBlock: start, Blocks: int(n),
			Priority: disk.PriBackground, OnDone: l,
		})
	}
}
