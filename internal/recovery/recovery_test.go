package recovery

import (
	"testing"

	"raidsim/internal/geom"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func baseConfig() Config {
	return Config{
		N:            4,
		Spec:         geom.Default(),
		StripingUnit: 1,
		FailedDisk:   -1,
		Seed:         3,
	}
}

func load(t *testing.T, s *Sim, eng *sim.Engine, n int, writeFrac float64) {
	t.Helper()
	src := rng.New(11)
	capacity := s.DataBlocks()
	for i := 0; i < n; i++ {
		i := i
		op := trace.Read
		if src.Bool(writeFrac) {
			op = trace.Write
		}
		lba := src.Int63n(capacity)
		eng.At(sim.Time(i)*5*sim.Millisecond, func() { s.Submit(op, lba) })
	}
	eng.Run()
	for i := 0; i < 10000 && !s.Drained(); i++ {
		eng.RunFor(10 * sim.Millisecond)
	}
	if !s.Drained() {
		t.Fatal("did not drain")
	}
}

func TestHealthyHasNoDegradedOps(t *testing.T) {
	eng := sim.New()
	s, err := New(eng, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	load(t, s, eng, 500, 0.3)
	res := s.Results()
	if res.DegradedResp.N() != 0 {
		t.Fatalf("healthy array recorded %d degraded ops", res.DegradedResp.N())
	}
	if res.Resp.N() != 500 {
		t.Fatalf("responses %d", res.Resp.N())
	}
}

func TestDegradedIsSlower(t *testing.T) {
	healthyEng := sim.New()
	healthy, err := New(healthyEng, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	load(t, healthy, healthyEng, 800, 0.3)

	cfg := baseConfig()
	cfg.FailedDisk = 0
	degEng := sim.New()
	degraded, err := New(degEng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	load(t, degraded, degEng, 800, 0.3)

	h := healthy.Results().Resp.Mean()
	d := degraded.Results().Resp.Mean()
	if d <= h {
		t.Fatalf("degraded (%.2fms) not slower than healthy (%.2fms)", d, h)
	}
	if degraded.Results().DegradedResp.N() == 0 {
		t.Fatal("no degraded operations recorded")
	}
}

func TestDegradedReadFansOut(t *testing.T) {
	cfg := baseConfig()
	cfg.FailedDisk = 0
	eng := sim.New()
	s, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find an lba homed on the failed disk.
	var lba int64 = -1
	for l := int64(0); l < 100; l++ {
		if s.lay.Map(l).Disk == 0 {
			lba = l
			break
		}
	}
	if lba < 0 {
		t.Fatal("no block on disk 0 in the first 100")
	}
	s.Submit(trace.Read, lba)
	eng.Run()
	reads := 0
	for d, dk := range s.disks {
		if d == 0 {
			if dk.S.Accesses != 0 {
				t.Fatal("failed disk was accessed")
			}
			continue
		}
		reads += int(dk.S.Reads)
	}
	// N-1 surviving members + parity = N reads.
	if reads != cfg.N {
		t.Fatalf("degraded read issued %d disk reads, want %d", reads, cfg.N)
	}
}

func TestRebuildCompletesAndRestoresService(t *testing.T) {
	cfg := baseConfig()
	cfg.FailedDisk = 1
	cfg.Rebuild = true
	cfg.RebuildStart = 0
	cfg.RebuildChunk = 480
	eng := sim.New()
	s, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && !s.Results().RebuildDone; i++ {
		eng.RunFor(100 * sim.Millisecond)
	}
	res := s.Results()
	if !res.RebuildDone {
		t.Fatal("rebuild never completed")
	}
	if res.RebuildTime <= 0 {
		t.Fatal("zero rebuild time")
	}
	wantChunks := (cfg.Spec.BlocksPerDisk() + int64(cfg.RebuildChunk) - 1) / int64(cfg.RebuildChunk)
	if res.RebuildChunks != wantChunks {
		t.Fatalf("chunks %d, want %d", res.RebuildChunks, wantChunks)
	}
	// After rebuild, reads of disk-1 blocks are normal again.
	var lba int64
	for l := int64(0); l < 100; l++ {
		if s.lay.Map(l).Disk == 1 {
			lba = l
			break
		}
	}
	before := s.disks[1].S.Reads
	s.Submit(trace.Read, lba)
	for i := 0; i < 1000 && !s.Drained(); i++ {
		eng.RunFor(10 * sim.Millisecond)
	}
	if s.disks[1].S.Reads != before+1 {
		t.Fatal("rebuilt disk not serving reads")
	}
	if s.Results().DegradedResp.N() != 0 {
		t.Fatal("post-rebuild read counted as degraded")
	}
}

func TestRebuildPauseThrottles(t *testing.T) {
	times := map[string]sim.Time{}
	for _, tc := range []struct {
		name  string
		pause sim.Time
	}{{"fast", 0}, {"slow", 50 * sim.Millisecond}} {
		cfg := baseConfig()
		cfg.FailedDisk = 0
		cfg.Rebuild = true
		cfg.RebuildChunk = 960
		cfg.RebuildPause = tc.pause
		eng := sim.New()
		s, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100000 && !s.Results().RebuildDone; i++ {
			eng.RunFor(sim.Second)
		}
		if !s.Results().RebuildDone {
			t.Fatalf("%s rebuild incomplete", tc.name)
		}
		times[tc.name] = s.Results().RebuildTime
	}
	if times["slow"] <= times["fast"] {
		t.Fatalf("pause did not slow rebuild: %v", times)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	bad := baseConfig()
	bad.N = 1
	if _, err := New(eng, bad); err == nil {
		t.Fatal("N=1 accepted")
	}
	bad = baseConfig()
	bad.FailedDisk = 99
	if _, err := New(eng, bad); err == nil {
		t.Fatal("bad failed disk accepted")
	}
}
