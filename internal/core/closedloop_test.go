package core

import (
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func closedLoopTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := workload.Trace2Profile()
	p.Requests = 3000
	p.Duration = 150 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestClosedLoopCompletesEveryRequest(t *testing.T) {
	tr := closedLoopTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 1,
	}
	res, err := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(len(tr.Records)) {
		t.Fatalf("completed %d of %d", res.Requests, len(tr.Records))
	}
	if res.Makespan <= 0 || res.Throughput() <= 0 {
		t.Fatalf("makespan %d throughput %f", res.Makespan, res.Throughput())
	}
}

func TestClosedLoopThroughputGrowsWithMPL(t *testing.T) {
	tr := closedLoopTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 1,
	}
	tp := func(mpl int) float64 {
		res, err := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: mpl})
		if err != nil {
			t.Fatalf("mpl %d: %v", mpl, err)
		}
		return res.Throughput()
	}
	t1, t4, t16 := tp(1), tp(4), tp(16)
	if !(t1 < t4 && t4 < t16) {
		t.Fatalf("throughput not increasing with MPL: %f %f %f", t1, t4, t16)
	}
	// Response time rises with MPL (queueing).
	r1, _ := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 1})
	r16, _ := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 16})
	if r16.Resp.Mean() <= r1.Resp.Mean() {
		t.Fatalf("MPL=16 response (%.2f) should exceed MPL=1 (%.2f)",
			r16.Resp.Mean(), r1.Resp.Mean())
	}
}

func TestClosedLoopThinkTimeLowersThroughput(t *testing.T) {
	tr := closedLoopTrace(t)
	cfg := Config{
		Org: array.OrgBase, DataDisks: 10, N: 10,
		Spec: geom.Default(), Seed: 1,
	}
	fast, err := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 4})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 4, ThinkTime: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Throughput() >= fast.Throughput() {
		t.Fatalf("think time did not lower throughput: %f vs %f",
			slow.Throughput(), fast.Throughput())
	}
}

func TestClosedLoopValidation(t *testing.T) {
	tr := closedLoopTrace(t)
	cfg := Config{Org: array.OrgBase, DataDisks: 10, N: 10, Spec: geom.Default()}
	if _, err := RunClosedLoop(cfg, tr, ClosedLoopConfig{MPL: 0}); err == nil {
		t.Fatal("MPL=0 accepted")
	}
	bad := cfg
	bad.DataDisks = 7
	if _, err := RunClosedLoop(bad, tr, ClosedLoopConfig{MPL: 2}); err == nil {
		t.Fatal("mismatched trace accepted")
	}
}
