package core_test

import (
	"fmt"
	"log"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

// Example shows the standard flow: synthesize a workload, configure a
// system, run it, read the metrics. (No fixed output: the numbers are
// deterministic for a seed but tied to the model's internals.)
func Example() {
	p := workload.Trace2Profile()
	p.Requests = 2000
	p.Duration = 100 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		Org:       array.OrgRAID5,
		DataDisks: p.NumDisks,
		N:         10,
		Spec:      geom.Default(),
		Sync:      array.DFPR, // the paper's best synchronization policy
		Seed:      1,
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	if res.Requests == 2000 && res.MeanResponseMS() > 0 {
		fmt.Println("simulated 2000 requests")
	}
	// Output:
	// simulated 2000 requests
}

// ExampleRunClosedLoop drives the same system in closed-loop form: eight
// outstanding requests per array, throughput as the output.
func ExampleRunClosedLoop() {
	p := workload.Trace2Profile()
	p.Requests = 1000
	p.Duration = 50 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunClosedLoop(core.Config{
		Org: array.OrgMirror, DataDisks: p.NumDisks, N: 10,
		Spec: geom.Default(), Seed: 1,
	}, tr, core.ClosedLoopConfig{MPL: 8})
	if err != nil {
		log.Fatal(err)
	}
	if res.Throughput() > 50 { // a mirrored 10-disk array sustains this easily
		fmt.Println("saturating throughput reached")
	}
	// Output:
	// saturating throughput reached
}
