package core

import (
	"testing"
	"time"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// TestCalibrationProbe is a diagnostic aid (run with -v): it prints the
// generated traces' Table 2 characteristics and the headline comparisons
// the paper makes, at reduced scale.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	for _, p := range []workload.Profile{
		workload.Trace1Profile().Scaled(0.10),
		workload.Trace2Profile().Scaled(1.0),
	} {
		tr, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", trace.Characterize(tr))

		for _, c := range []struct {
			name   string
			org    array.Org
			cached bool
		}{
			{"base", array.OrgBase, false},
			{"mirror", array.OrgMirror, false},
			{"raid5", array.OrgRAID5, false},
			{"pstripe", array.OrgParityStriping, false},
			{"raid5-c16", array.OrgRAID5, true},
			{"base-c16", array.OrgBase, true},
			{"raid4-c16", array.OrgRAID4, true},
		} {
			cfg := Config{
				Org: c.org, DataDisks: p.NumDisks, N: 10,
				Spec: geom.Default(), Sync: array.DF,
				Cached: c.cached, CacheMB: 16, Seed: 1,
			}
			t0 := time.Now()
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var usum, umax float64
			for _, u := range res.DiskUtil {
				usum += u
				if u > umax {
					umax = u
				}
			}
			t.Logf("%-10s %-9s resp=%7.2fms read=%7.2f write=%7.2f rhit=%.3f whit=%.3f seek=%5.0fcyl util=%.3f/%.3f held=%d wall=%v",
				p.Name, c.name, res.MeanResponseMS(), res.ReadResp.Mean(), res.WriteResp.Mean(),
				res.ReadHitRatio(), res.WriteHitRatio(), res.SeekDistMean,
				usum/float64(len(res.DiskUtil)), umax, res.HeldRotations, time.Since(t0).Round(time.Millisecond))
		}
	}
}
