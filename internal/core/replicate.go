package core

import (
	"fmt"
	"math"

	"raidsim/internal/trace"
)

// Replicated summarizes several independent replications (same workload,
// different simulation seeds — disk phases and derived randomness vary)
// of one configuration, with a normal-approximation confidence interval
// on the mean response time. Trace replay is deterministic per seed, so
// replication variance isolates the model's stochastic inputs.
type Replicated struct {
	Runs        []*Results
	MeanRespMS  float64
	StdRespMS   float64 // across-replication standard deviation
	HalfWidth95 float64 // ±, normal approximation (z = 1.96)
}

// RunReplicated executes reps independent replications of cfg against tr,
// varying only the seed.
func RunReplicated(cfg Config, tr *trace.Trace, reps int) (*Replicated, error) {
	if reps < 1 {
		return nil, fmt.Errorf("core: need at least one replication")
	}
	out := &Replicated{}
	var sum, sumsq float64
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b9
		res, err := Run(c, tr)
		if err != nil {
			return nil, fmt.Errorf("replication %d: %w", i, err)
		}
		out.Runs = append(out.Runs, res)
		m := res.MeanResponseMS()
		sum += m
		sumsq += m * m
	}
	n := float64(reps)
	out.MeanRespMS = sum / n
	if reps > 1 {
		v := (sumsq - sum*sum/n) / (n - 1)
		if v < 0 {
			v = 0
		}
		out.StdRespMS = math.Sqrt(v)
		out.HalfWidth95 = 1.96 * out.StdRespMS / math.Sqrt(n)
	}
	return out, nil
}

// RelativeHalfWidth returns the 95% CI half-width as a fraction of the
// mean — the usual "is this sweep point trustworthy" check.
func (r *Replicated) RelativeHalfWidth() float64 {
	if r.MeanRespMS == 0 {
		return 0
	}
	return r.HalfWidth95 / r.MeanRespMS
}
