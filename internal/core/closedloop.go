package core

import (
	"fmt"
	"runtime"
	"sync"

	"raidsim/internal/array"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// ClosedLoopConfig parameterizes a closed-loop replay: the trace supplies
// the request *stream* but not its timing — each array keeps MPL requests
// outstanding, submitting the next record (after ThinkTime) whenever one
// completes. The paper notes that simply speeding a trace up "does not
// reflect the characteristics of any real system since transactions may
// have to wait for one I/O to finish before issuing another one";
// closed-loop replay is the complementary load model where that
// dependency is explicit, and throughput becomes the measured output.
type ClosedLoopConfig struct {
	MPL       int      // outstanding requests per array (multiprogramming level)
	ThinkTime sim.Time // delay between a completion and the next submission
}

// ClosedLoopResults extends Results with throughput.
type ClosedLoopResults struct {
	Results
	Makespan sim.Time // longest array's completion time
}

// Throughput returns completed requests per second of simulated time.
func (r *ClosedLoopResults) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Requests) / (float64(r.Makespan) / float64(sim.Second))
}

// RunClosedLoop replays tr's request stream in closed-loop form against
// cfg. Arrival timestamps in the trace are ignored.
func RunClosedLoop(cfg Config, tr *trace.Trace, cl ClosedLoopConfig) (*ClosedLoopResults, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cl.MPL < 1 {
		return nil, fmt.Errorf("core: MPL must be >= 1")
	}
	if tr.NumDisks != cfg.DataDisks {
		return nil, fmt.Errorf("core: trace has %d disks, config expects %d", tr.NumDisks, cfg.DataDisks)
	}
	subs, err := tr.SplitByGroup(cfg.N)
	if err != nil {
		return nil, err
	}
	parts := make([]*array.Results, len(subs))
	events := make([]uint64, len(subs))
	spans := make([]sim.Time, len(subs))
	errs := make([]error, len(subs))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	widths := cfg.groupDisks(len(subs))
	faults, err := cfg.groupFaults(widths)
	if err != nil {
		return nil, err
	}

	sem := make(chan struct{}, workers)
	recs := make([]*obs.Recorder, len(subs))
	var wg sync.WaitGroup
	for g, sub := range subs {
		wg.Add(1)
		go func(g int, sub *trace.Trace) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ac := cfg.arrayConfig(g, widths[g], faults[g], sub.Classes)
			recs[g] = ac.Rec
			parts[g], events[g], spans[g], errs[g] = runOneArrayClosed(ac, sub, cl)
		}(g, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &ClosedLoopResults{Results: *merge(cfg, parts, events)}
	attachObs(&out.Results, recs)
	for _, s := range spans {
		if s > out.Makespan {
			out.Makespan = s
		}
	}
	return out, nil
}

func runOneArrayClosed(cfg array.Config, sub *trace.Trace, cl ClosedLoopConfig) (*array.Results, uint64, sim.Time, error) {
	eng := sim.New()
	ctrl, err := array.New(eng, cfg)
	if err != nil {
		return nil, 0, 0, err
	}
	capacity := ctrl.DataBlocks()
	idx := 0
	var submitNext func()
	submitNext = func() {
		if idx >= len(sub.Records) {
			return
		}
		r := sub.Records[idx]
		idx++
		lba := r.LBA
		blocks := r.Blocks
		if lba >= capacity {
			lba %= capacity
		}
		if rem := capacity - lba; int64(blocks) > rem {
			blocks = int(rem)
		}
		ctrl.Submit(array.Request{
			Op: r.Op, LBA: lba, Blocks: blocks,
			Class:  reqSLO(sub.Classes, r.Class, blocks),
			CClass: r.Class,
			OnComplete: func() {
				if cl.ThinkTime > 0 {
					eng.After(cl.ThinkTime, submitNext)
				} else {
					submitNext()
				}
			},
		})
	}
	prime := cl.MPL
	if prime > len(sub.Records) {
		prime = len(sub.Records)
	}
	for i := 0; i < prime; i++ {
		submitNext()
	}
	// Closed loops always make progress (every completion funds the next
	// submission); run until the stream is exhausted and drained, with a
	// generous step bound as a wedge detector.
	for i := 0; i < 1<<26 && !(idx >= len(sub.Records) && ctrl.Drained()); i++ {
		if !eng.Step() {
			eng.RunFor(sim.Millisecond)
		}
	}
	if !(idx >= len(sub.Records) && ctrl.Drained()) {
		return nil, 0, 0, fmt.Errorf("core: closed-loop replay of %q wedged at record %d", sub.Name, idx)
	}
	return ctrl.Results(), eng.Steps(), eng.Now(), nil
}
