package core

import (
	"fmt"
	"math"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

// goldenCases pins exact simulation outputs for a tiny fixed workload.
// Simulation is deterministic, so any drift here means the *model*
// changed — which may be intentional, but must be noticed (and the
// calibration discussion in EXPERIMENTS.md re-checked). Regenerate the
// expected values by running this test with -run TestGolden -v and
// copying the printed table.
var goldenCases = []struct {
	name   string
	org    array.Org
	cached bool
	sync   array.SyncPolicy
}{
	{"base", array.OrgBase, false, array.DF},
	{"mirror", array.OrgMirror, false, array.DF},
	{"raid5-df", array.OrgRAID5, false, array.DF},
	{"raid5-si", array.OrgRAID5, false, array.SI},
	{"pstripe", array.OrgParityStriping, false, array.DF},
	{"raid0", array.OrgRAID0, false, array.DF},
	{"raid3", array.OrgRAID3, false, array.DF},
	{"plog", array.OrgParityLog, false, array.DF},
	{"base-cached", array.OrgBase, true, array.DF},
	{"raid5-cached", array.OrgRAID5, true, array.DF},
	{"raid4-cached", array.OrgRAID4, true, array.DF},
}

// golden maps case name -> mean response (ms) recorded from the current
// model. Tolerance is tight (0.1%) — these runs are deterministic; slack
// only absorbs float-summation order changes.
var golden = map[string]float64{
	"base":         57.876119,
	"mirror":       41.510100,
	"raid5-df":     44.732865,
	"raid5-si":     48.484785,
	"pstripe":      67.835827,
	"raid0":        33.600101,
	"raid3":        177.363309,
	"plog":         38.161847,
	"base-cached":  31.180576,
	"raid5-cached": 20.742907,
	"raid4-cached": 20.702851,
}

func TestGoldenResponses(t *testing.T) {
	p := workload.Trace2Profile()
	p.Requests = 4000
	p.Duration = 200 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases {
		cfg := Config{
			Org: c.org, DataDisks: 10, N: 10, Spec: geom.Default(),
			Sync: c.sync, Cached: c.cached, CacheMB: 16, Seed: 77,
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := res.MeanResponseMS()
		want, ok := golden[c.name]
		if !ok {
			// Bootstrap mode: print the line to paste into the map.
			t.Logf("golden[%q] = %.6f", c.name, got)
			continue
		}
		if math.Abs(got-want)/want > 0.001 {
			t.Errorf("%s: response %.6f ms, golden %.6f — the model changed; "+
				"if intentional, re-record (go test -run TestGolden -v) and revisit EXPERIMENTS.md",
				c.name, got, want)
		}
	}
	if len(golden) == 0 {
		t.Log("golden map empty: values printed above; paste them in to arm the regression net")
	}
}

// Keep fmt imported for regeneration helpers.
var _ = fmt.Sprintf
