package core

import (
	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
)

// DefaultConfig returns the paper's baseline system configuration
// (Table 4) for an organization: one 10-data-disk array of the default
// drives (Table 1), Disk First parity synchronization, 1-block striping,
// middle-cylinder parity placement, and a 16 MB NV cache size for when
// caching is enabled. RAID4 comes back cached, because the paper only
// studies it with parity caching. Adjust fields (DataDisks for the
// 130-disk system, Cached, trace speed, ...) and pass the result to Run.
func DefaultConfig(org array.Org) Config {
	c := Config{
		Org:           org,
		DataDisks:     10,
		N:             10,
		Spec:          geom.Default(),
		StripingUnit:  1,
		Placement:     layout.MiddlePlacement,
		Sync:          array.DF,
		CacheMB:       16,
		DestagePeriod: sim.Second,
		Seed:          1,
	}
	if org == array.OrgRAID4 {
		c.Cached = true
	}
	return c
}

// Normalize fills every unset (zero) field of c with the Table 4
// default, returning the completed config. It lets callers build sparse
// configs — just Org and the fields they care about — without repeating
// the baseline. Fields whose zero value is meaningful (Cached, Warmup,
// SyncSpindles, Fault, Obs, ...) are left alone.
func (c Config) Normalize() Config {
	d := DefaultConfig(c.Org)
	if c.DataDisks <= 0 {
		c.DataDisks = d.DataDisks
	}
	if c.N <= 0 {
		c.N = d.N
	}
	if c.Spec == (geom.Spec{}) {
		c.Spec = d.Spec
	}
	if c.StripingUnit <= 0 {
		c.StripingUnit = d.StripingUnit
	}
	if c.CacheMB <= 0 {
		c.CacheMB = d.CacheMB
	}
	if c.DestagePeriod <= 0 {
		c.DestagePeriod = d.DestagePeriod
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}
