package core

import (
	"reflect"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func faultTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := workload.Trace2Profile()
	p.Requests = 2000
	p.Duration = 100 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRunWithFailure injects a mid-run failure into a two-array RAID5
// system and checks the degraded/normal split and rebuild accounting
// surface through the merged results.
func TestRunWithFailure(t *testing.T) {
	tr := faultTestTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5, Spec: geom.Default(),
		Sync: array.DF, Seed: 7,
		Fault: fault.Config{
			DiskFails: []fault.DiskFail{{Disk: 0, At: 30 * sim.Second}},
		},
		Spares: 1,
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fault
	if !f.Enabled || f.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (enabled=%v)", f.Failures, f.Enabled)
	}
	if f.SparesUsed != 1 || f.Rebuilds != 1 || f.RebuildTime <= 0 {
		t.Fatalf("rebuild accounting wrong: %+v", f)
	}
	if f.RebuildActive || f.DegradedActive {
		t.Fatalf("run ended degraded: %+v", f)
	}
	if f.DegradedTime <= 0 || f.DegradedWindows != 1 {
		t.Fatalf("degraded window missing: %+v", f)
	}
	if f.DataLossEvents != 0 || f.LostReadBlocks != 0 || f.LostWriteBlocks != 0 {
		t.Fatalf("single failure with redundancy lost data: %+v", f)
	}
	if res.NormalResp.N()+res.DegradedResp.N() != res.Resp.N() {
		t.Fatalf("degraded/normal split %d+%d != total %d",
			res.NormalResp.N(), res.DegradedResp.N(), res.Resp.N())
	}
	if res.DegradedResp.N() == 0 {
		t.Fatal("no requests completed during the degraded window")
	}
}

// TestRunFaultRouting: a global physical-disk index addresses the array
// that owns the drive. Disk 6 of a 2x(5+1) RAID5 system is the second
// array's first drive, so only that array should degrade.
func TestRunFaultRouting(t *testing.T) {
	tr := faultTestTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5, Spec: geom.Default(),
		Sync: array.DF, Seed: 7,
		Fault: fault.Config{
			DiskFails: []fault.DiskFail{{Disk: 6, At: 20 * sim.Second}},
		},
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Fault.Failures)
	}
	if res.PerArray[0].Fault.Failures != 0 || res.PerArray[1].Fault.Failures != 1 {
		t.Fatalf("failure routed to wrong array: %d/%d",
			res.PerArray[0].Fault.Failures, res.PerArray[1].Fault.Failures)
	}
	// Out-of-range physical index is rejected.
	cfg.Fault.DiskFails = []fault.DiskFail{{Disk: 12, At: sim.Second}}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("fault on nonexistent disk accepted")
	}
}

// TestRunWithFailureDeterministic: the acceptance criterion — a faulted
// run is bit-identical per seed, spare rebuild included.
func TestRunWithFailureDeterministic(t *testing.T) {
	tr := faultTestTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5, Spec: geom.Default(),
		Sync: array.DF, Seed: 11,
		Fault: fault.Config{
			DiskFails:       []fault.DiskFail{{Disk: 2, At: 30 * sim.Second}},
			SectorErrorRate: 1e-4,
			Seed:            3,
		},
		Spares: 1,
	}
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same fault schedule: results diverged")
	}
}
