package core

import (
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Org: array.OrgBase, DataDisks: 10, N: 5, Spec: geom.Default()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// N > DataDisks is allowed: the paper stripes Trace 2's 10 disks of
	// data over arrays as wide as 21 drives.
	wide := Config{Org: array.OrgRAID5, DataDisks: 10, N: 20, Spec: geom.Default()}
	if err := wide.Validate(); err != nil {
		t.Errorf("wide array rejected: %v", err)
	}
	if wide.Arrays() != 1 || wide.PhysicalDisks() != 21 {
		t.Errorf("wide array: %d arrays, %d disks", wide.Arrays(), wide.PhysicalDisks())
	}
	bad := []Config{
		{Org: array.OrgBase, DataDisks: 0, N: 5, Spec: geom.Default()},
		{Org: array.OrgBase, DataDisks: 10, N: 1, Spec: geom.Default()},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestArrayAndDiskCounts(t *testing.T) {
	cases := []struct {
		org      array.Org
		d, n     int
		arrays   int
		physical int
	}{
		{array.OrgBase, 130, 10, 13, 130},
		{array.OrgMirror, 130, 10, 13, 260},
		{array.OrgRAID5, 130, 5, 26, 156},  // paper: 26 arrays of 6 = 156
		{array.OrgRAID5, 130, 10, 13, 143}, // paper: 13 arrays of 11 = 143
		{array.OrgRAID5, 130, 20, 7, 137},  // 6 full arrays of 21 + (10+1)
		{array.OrgParityStriping, 10, 10, 1, 11},
	}
	for _, c := range cases {
		cfg := Config{Org: c.org, DataDisks: c.d, N: c.n, Spec: geom.Default()}
		if got := cfg.Arrays(); got != c.arrays {
			t.Errorf("%v D=%d N=%d: arrays %d, want %d", c.org, c.d, c.n, got, c.arrays)
		}
		if got := cfg.PhysicalDisks(); got != c.physical {
			t.Errorf("%v D=%d N=%d: disks %d, want %d", c.org, c.d, c.n, got, c.physical)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	p := workload.Trace2Profile()
	p.Requests = 3000
	p.Duration = 150 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5, Spec: geom.Default(),
		Sync: array.DF, Seed: 99,
	}
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Resp.Mean() != b.Resp.Mean() || a.Events != b.Events {
		t.Fatalf("same seed diverged: %f/%d vs %f/%d",
			a.Resp.Mean(), a.Events, b.Resp.Mean(), b.Events)
	}
	cfg.Seed = 100
	c, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Resp.Mean() == c.Resp.Mean() {
		t.Fatal("different seeds gave identical results (suspicious)")
	}
}

func TestRunRejectsMismatchedTrace(t *testing.T) {
	p := workload.Trace2Profile()
	p.Requests = 100
	p.Duration = 10 * sim.Second
	tr, _ := workload.Generate(p)
	cfg := Config{Org: array.OrgBase, DataDisks: 99, N: 9, Spec: geom.Default()}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("disk-count mismatch accepted")
	}
	cfg = Config{Org: array.OrgBase, DataDisks: 10, N: 5, Spec: geom.Default()}
	tr2 := *tr
	tr2.BlocksPerDisk = 1234
	if _, err := Run(cfg, &tr2); err == nil {
		t.Fatal("blocks-per-disk mismatch accepted")
	}
}

func TestResultsAggregation(t *testing.T) {
	p := workload.Trace2Profile()
	p.Requests = 5000
	p.Duration = 250 * sim.Second
	tr, _ := workload.Generate(p)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5, Spec: geom.Default(),
		Sync: array.DF, Seed: 5,
	}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrays != 2 {
		t.Fatalf("arrays %d", res.Arrays)
	}
	if res.Requests != int64(len(tr.Records)) {
		t.Fatalf("requests %d, want %d", res.Requests, len(tr.Records))
	}
	if len(res.DiskAccesses) != 12 || len(res.DiskUtil) != 12 {
		t.Fatalf("per-disk slices: %d/%d, want 12 (2 arrays x 6 drives)",
			len(res.DiskAccesses), len(res.DiskUtil))
	}
	// Merged response summary must equal the concatenation of per-array
	// summaries.
	var n int64
	for _, pr := range res.PerArray {
		n += pr.Resp.N()
	}
	if n != res.Resp.N() {
		t.Fatalf("merged samples %d, parts %d", res.Resp.N(), n)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

// TestMirrorBeatsBaseOnSkewedLoad pins the paper's headline ordering on
// the Trace 2-like workload: mirror < base, raid5 < base (skew), and
// parity striping worst among the parity organizations.
func TestOrgOrderingOnTrace2(t *testing.T) {
	p := workload.Trace2Profile().Scaled(0.3)
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	means := map[array.Org]float64{}
	for _, org := range []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping} {
		cfg := Config{
			Org: org, DataDisks: 10, N: 10, Spec: geom.Default(),
			Sync: array.DF, Seed: 2,
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		means[org] = res.Resp.Mean()
	}
	if means[array.OrgMirror] >= means[array.OrgBase] {
		t.Errorf("mirror (%.2f) not better than base (%.2f)", means[array.OrgMirror], means[array.OrgBase])
	}
	if means[array.OrgRAID5] >= means[array.OrgBase] {
		t.Errorf("raid5 (%.2f) should beat base (%.2f) under Trace 2 skew", means[array.OrgRAID5], means[array.OrgBase])
	}
	if means[array.OrgRAID5] >= means[array.OrgParityStriping] {
		t.Errorf("raid5 (%.2f) should beat parity striping (%.2f)", means[array.OrgRAID5], means[array.OrgParityStriping])
	}
}

// TestCacheErasesWritePenalty pins the cached-organization conclusion: a
// 16 MB cache brings RAID5 close to Base.
func TestCacheErasesWritePenalty(t *testing.T) {
	p := workload.Trace2Profile().Scaled(0.3)
	tr, _ := workload.Generate(p)
	run := func(org array.Org, cached bool) float64 {
		cfg := Config{
			Org: org, DataDisks: 10, N: 10, Spec: geom.Default(),
			Sync: array.DF, Cached: cached, CacheMB: 16, Seed: 2,
		}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		return res.WriteResp.Mean()
	}
	uncached := run(array.OrgRAID5, false)
	cached := run(array.OrgRAID5, true)
	if cached > uncached/5 {
		t.Errorf("cache left write response at %.2f ms (uncached %.2f)", cached, uncached)
	}
}
