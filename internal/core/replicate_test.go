package core

import (
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func repTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := workload.Trace2Profile()
	p.Requests = 2500
	p.Duration = 120 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunReplicated(t *testing.T) {
	tr := repTrace(t)
	cfg := Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 3,
	}
	rep, err := RunReplicated(cfg, tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 5 {
		t.Fatalf("runs %d", len(rep.Runs))
	}
	if rep.MeanRespMS <= 0 {
		t.Fatal("zero mean")
	}
	if rep.StdRespMS <= 0 {
		t.Fatal("replications identical: seeds not varied")
	}
	// Rotational phase is the only stochastic input; replication spread
	// should be small relative to the mean.
	if rep.RelativeHalfWidth() > 0.25 {
		t.Fatalf("CI half-width %.2f of mean — suspiciously noisy", rep.RelativeHalfWidth())
	}
	if _, err := RunReplicated(cfg, tr, 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestWarmupExcludesEarlyRequests(t *testing.T) {
	tr := repTrace(t)
	cfg := Config{
		Org: array.OrgBase, DataDisks: 10, N: 10,
		Spec: geom.Default(), Cached: true, CacheMB: 16, Seed: 3,
	}
	full, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warmup = tr.Duration() / 2
	warm, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Resp.N() >= full.Resp.N() {
		t.Fatalf("warmup did not exclude samples: %d vs %d", warm.Resp.N(), full.Resp.N())
	}
	if warm.Resp.N() == 0 {
		t.Fatal("warmup excluded everything")
	}
	// Requests are all still simulated.
	if warm.Requests != full.Requests {
		t.Fatalf("warmup changed simulated request count: %d vs %d", warm.Requests, full.Requests)
	}
	// A warm cache hits more often than a cold-start average.
	if warm.ReadHitRatio() < full.ReadHitRatio() {
		t.Fatalf("steady-state hit ratio %.3f below cold-start-inclusive %.3f",
			warm.ReadHitRatio(), full.ReadHitRatio())
	}
}
