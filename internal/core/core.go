// Package core is the public façade of the simulator: it takes a system
// configuration (organization, array size, caching, ...) and an I/O
// trace, partitions the trace across the system's independent arrays,
// simulates every array — in parallel, arrays share nothing but the
// workload — and aggregates the results the paper's figures report.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"raidsim/internal/array"
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// Config describes a whole storage system: DataDisks' worth of database
// spread over ceil(DataDisks/N) arrays of the chosen organization. The
// comparisons are equal-capacity, as in the paper: Mirror doubles the
// drives, parity organizations use N+1 drives per array.
type Config struct {
	Org       array.Org
	DataDisks int // total data-disk equivalents (130 for Trace 1, 10 for Trace 2)
	N         int // data-disk equivalents per array
	Spec      geom.Spec

	StripingUnit     int              // RAID5/RAID4 striping unit, blocks
	Placement        layout.Placement // parity striping: parity area placement
	ParityStripeUnit int64            // fine-grained parity striping unit; 0 = classic
	Sync             array.SyncPolicy

	Cached           bool
	CacheMB          int // per-array NV cache size
	DestagePeriod    sim.Time
	PureLRUWriteback bool
	// Warmup excludes requests arriving before this time from the
	// statistics (still simulated), for steady-state measurement.
	Warmup sim.Time

	BuffersPerDisk int
	// DiskSched selects the drives' queue discipline (FIFO is the
	// paper's model; SSTF/LOOK are extensions).
	DiskSched disk.Sched
	// SyncSpindles synchronizes all spindles' rotational phase (the
	// paper assumes unsynchronized spindles).
	SyncSpindles bool
	Seed         uint64

	// Workers caps concurrent array simulations; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DataDisks <= 0 {
		return fmt.Errorf("core: DataDisks must be positive")
	}
	if c.N < 2 {
		return fmt.Errorf("core: N must be >= 2")
	}
	// N may exceed DataDisks: the paper sweeps array sizes past the
	// small system's 10 data disks, striping the same database over a
	// wider (partly empty) array.
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	return nil
}

// Arrays returns the number of arrays the system needs.
func (c Config) Arrays() int { return (c.DataDisks + c.N - 1) / c.N }

// PhysicalDisks returns the total drive count, the cost side of the
// paper's equal-capacity comparison.
func (c Config) PhysicalDisks() int {
	switch c.Org {
	case array.OrgMirror:
		return 2 * c.DataDisks
	case array.OrgBase, array.OrgRAID0:
		return c.DataDisks
	}
	if c.N >= c.DataDisks {
		// One wide array striping the whole database.
		return c.N + 1
	}
	full := c.DataDisks / c.N
	rem := c.DataDisks % c.N
	n := full * (c.N + 1)
	if rem > 0 {
		n += rem + 1
	}
	return n
}

func (c Config) arrayConfig(group, disks int) array.Config {
	return array.Config{
		Org:              c.Org,
		N:                disks,
		Spec:             c.Spec,
		StripingUnit:     c.StripingUnit,
		Placement:        c.Placement,
		ParityStripeUnit: c.ParityStripeUnit,
		Sync:             c.Sync,
		Cached:           c.Cached,
		CacheBlocks:      c.CacheMB << 20 / c.Spec.BlockBytes,
		DestagePeriod:    c.DestagePeriod,
		PureLRUWriteback: c.PureLRUWriteback,
		Warmup:           c.Warmup,
		BuffersPerDisk:   c.BuffersPerDisk,
		DiskSched:        c.DiskSched,
		SyncSpindles:     c.SyncSpindles,
		Seed:             c.Seed*1000003 + uint64(group)*7919 + 17,
	}
}

// Results aggregates a whole system's simulation.
type Results struct {
	Config Config
	Arrays int
	Events uint64

	Requests  int64
	Resp      stats.Summary // response time, ms
	ReadResp  stats.Summary
	WriteResp stats.Summary

	ReadHits, ReadMisses   int64
	WriteHits, WriteMisses int64

	DiskAccesses   []int64   // per physical disk, array-major order
	DiskUtil       []float64 // likewise
	SeekDistMean   float64
	HeldRotations  int64
	ParityAccesses int64
	Cache          cache.Stats

	PerArray []*array.Results
}

// ReadHitRatio returns read hits over read requests.
func (r *Results) ReadHitRatio() float64 {
	n := r.ReadHits + r.ReadMisses
	if n == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(n)
}

// WriteHitRatio returns write hits over write requests.
func (r *Results) WriteHitRatio() float64 {
	n := r.WriteHits + r.WriteMisses
	if n == 0 {
		return 0
	}
	return float64(r.WriteHits) / float64(n)
}

// MeanResponseMS returns the overall mean response time in milliseconds —
// the y-axis of nearly every figure in the paper.
func (r *Results) MeanResponseMS() float64 { return r.Resp.Mean() }

// drainGrace bounds how long past the last arrival an array may take to
// finish in-flight work before the run is declared wedged. Generous: a
// severely overloaded trace-speed-2 run needs time to empty its queues.
const drainGrace = 3600 * sim.Second

// runOneArray simulates a single array against its sub-trace and returns
// its results and the number of events executed.
func runOneArray(cfg array.Config, sub *trace.Trace) (*array.Results, uint64, error) {
	eng := sim.New()
	ctrl, err := array.New(eng, cfg)
	if err != nil {
		return nil, 0, err
	}
	cap64 := ctrl.DataBlocks()
	idx := 0
	var feed func()
	feed = func() {
		r := sub.Records[idx]
		idx++
		lba := r.LBA
		blocks := r.Blocks
		if lba >= cap64 {
			// Striping/area division can shave a sliver of capacity off
			// the logical space; wrap the handful of affected addresses.
			lba %= cap64
		}
		if rem := cap64 - lba; int64(blocks) > rem {
			blocks = int(rem)
		}
		ctrl.Submit(array.Request{Op: r.Op, LBA: lba, Blocks: blocks})
		if idx < len(sub.Records) {
			eng.At(sub.Records[idx].At, feed)
		}
	}
	if len(sub.Records) > 0 {
		eng.At(sub.Records[0].At, feed)
	}
	eng.RunUntil(sub.Duration())
	deadline := sub.Duration() + drainGrace
	for !ctrl.Drained() && eng.Now() < deadline {
		eng.RunFor(sim.Second)
	}
	if !ctrl.Drained() {
		return nil, 0, fmt.Errorf("core: array %q did not drain within %ds grace — controller wedged or hopelessly overloaded",
			sub.Name, drainGrace/sim.Second)
	}
	return ctrl.Results(), eng.Steps(), nil
}

// Run simulates cfg against tr. Arrays are simulated concurrently.
func Run(cfg Config, tr *trace.Trace) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.NumDisks != cfg.DataDisks {
		return nil, fmt.Errorf("core: trace has %d disks, config expects %d", tr.NumDisks, cfg.DataDisks)
	}
	if tr.BlocksPerDisk != cfg.Spec.BlocksPerDisk() {
		return nil, fmt.Errorf("core: trace has %d blocks/disk, disk model has %d", tr.BlocksPerDisk, cfg.Spec.BlocksPerDisk())
	}
	subs := tr.SplitByGroup(cfg.N)
	parts := make([]*array.Results, len(subs))
	events := make([]uint64, len(subs))
	errs := make([]error, len(subs))

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for g, sub := range subs {
		disks := cfg.N
		if g > 0 && g == len(subs)-1 {
			// Tail array holds only the remaining data disks. (The g == 0
			// case with N > DataDisks intentionally keeps the full width:
			// the database stripes across the whole wider array.)
			disks = cfg.DataDisks - g*cfg.N
		}
		if disks < 2 {
			// A 1-disk tail array can't host a parity group; fold it into
			// a 2-disk array by borrowing capacity (the trace addresses
			// still fit after wrapping).
			disks = 2
		}
		wg.Add(1)
		go func(g int, sub *trace.Trace, disks int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts[g], events[g], errs[g] = runOneArray(cfg.arrayConfig(g, disks), sub)
		}(g, sub, disks)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return merge(cfg, parts, events), nil
}

func merge(cfg Config, parts []*array.Results, events []uint64) *Results {
	out := &Results{Config: cfg, Arrays: len(parts), PerArray: parts}
	for i, p := range parts {
		out.Events += events[i]
		out.Requests += p.Requests
		out.Resp.Merge(&p.Resp)
		out.ReadResp.Merge(&p.ReadResp)
		out.WriteResp.Merge(&p.WriteResp)
		out.ReadHits += p.ReadHits
		out.ReadMisses += p.ReadMisses
		out.WriteHits += p.WriteHits
		out.WriteMisses += p.WriteMisses
		out.DiskAccesses = append(out.DiskAccesses, p.DiskAccesses...)
		out.DiskUtil = append(out.DiskUtil, p.DiskUtil...)
		out.HeldRotations += p.HeldRotations
		out.ParityAccesses += p.ParityAccesses
		mergeCacheStats(&out.Cache, &p.Cache)
	}
	// Weighted mean of per-array seek distances, weighted by accesses.
	var wsum, w float64
	for _, p := range parts {
		var acc int64
		for _, a := range p.DiskAccesses {
			acc += a
		}
		wsum += p.SeekDistMean * float64(acc)
		w += float64(acc)
	}
	if w > 0 {
		out.SeekDistMean = wsum / w
	}
	return out
}

func mergeCacheStats(dst, src *cache.Stats) {
	dst.Inserts += src.Inserts
	dst.Evictions += src.Evictions
	dst.DirtyEvictions += src.DirtyEvictions
	dst.OldCaptured += src.OldCaptured
	dst.OldSkipped += src.OldSkipped
	dst.Destages += src.Destages
	dst.ParityQueued += src.ParityQueued
	dst.ParityStalls += src.ParityStalls
	if src.PeakUsed > dst.PeakUsed {
		dst.PeakUsed = src.PeakUsed
	}
	if src.PeakParity > dst.PeakParity {
		dst.PeakParity = src.PeakParity
	}
}
