// Package core is the public façade of the simulator: it takes a system
// configuration (organization, array size, caching, ...) and an I/O
// trace, partitions the trace across the system's independent arrays,
// simulates every array — in parallel, arrays share nothing but the
// workload — and aggregates the results the paper's figures report.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"raidsim/internal/array"
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// Config describes a whole storage system: DataDisks' worth of database
// spread over ceil(DataDisks/N) arrays of the chosen organization. The
// comparisons are equal-capacity, as in the paper: Mirror doubles the
// drives, parity organizations use N+1 drives per array.
type Config struct {
	Org       array.Org
	DataDisks int // total data-disk equivalents (130 for Trace 1, 10 for Trace 2)
	N         int // data-disk equivalents per array
	Spec      geom.Spec

	StripingUnit     int              // RAID5/RAID4 striping unit, blocks
	Placement        layout.Placement // parity striping: parity area placement
	ParityStripeUnit int64            // fine-grained parity striping unit; 0 = classic
	Sync             array.SyncPolicy

	Cached           bool
	CacheMB          int // per-array NV cache size
	DestagePeriod    sim.Time
	PureLRUWriteback bool
	// Warmup excludes requests arriving before this time from the
	// statistics (still simulated), for steady-state measurement.
	Warmup sim.Time

	BuffersPerDisk int
	// DiskSched selects the drives' queue discipline (FIFO is the
	// paper's model; SSTF/LOOK are extensions).
	DiskSched disk.Sched
	// SyncSpindles synchronizes all spindles' rotational phase (the
	// paper assumes unsynchronized spindles).
	SyncSpindles bool
	Seed         uint64

	// Workers caps concurrent array simulations; 0 means GOMAXPROCS.
	Workers int

	// Shards selects the intra-run execution model. 0 (the default) runs
	// each array on its own throwaway engine, Workers at a time. K >= 1
	// runs the arrays on K persistent per-shard engines: array g executes
	// on shard g mod K, shards run concurrently, each shard runs its
	// arrays in index order and Resets its engine between them so the
	// event-heap slab and Call free list are reused across the whole run.
	// Every per-array seed is a pure function of (Seed, g) and results
	// merge bin-wise in array-index order, so the shard count provably
	// never changes a bit of any result — only host wall-clock time.
	// Shards > Arrays() clamps to the array count.
	Shards int

	// Fault configures system-wide fault injection. Deterministic disk
	// failures (Fault.DiskFails) address physical disks in array-major
	// order and are routed to the array that owns each drive; stochastic
	// settings (MTTF, sector errors, cache failure) apply to every array,
	// each with an independently derived seed.
	Fault fault.Config
	// Spares is the per-array hot-spare pool.
	Spares int
	// RebuildChunk is blocks per rebuild I/O (default 48); RebuildPause
	// inserts idle time between chunks to favor foreground traffic.
	RebuildChunk int
	RebuildPause sim.Time

	// Robust configures the request-robustness layer (deadlines, retry,
	// hedged reads, overload shedding), applied to every array. The zero
	// value disables it and leaves simulations bit-identical.
	Robust array.RobustConfig

	// Obs configures the windowed time-series observability layer. The
	// zero value disables it, leaving every simulation bit-identical;
	// Obs.Disks is derived per array and ignored here.
	Obs obs.Config

	// SelfMetrics meters each array's engine (events/sec, heap
	// high-water, Call free-list traffic, allocation deltas) into
	// Results.Engine. Pure host-side observation: a metered run executes
	// the same simulation instructions as an unmetered one and produces
	// bit-identical results.
	SelfMetrics bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DataDisks <= 0 {
		return fmt.Errorf("core: DataDisks must be positive")
	}
	if c.N < 2 {
		return fmt.Errorf("core: N must be >= 2")
	}
	// N may exceed DataDisks: the paper sweeps array sizes past the
	// small system's 10 data disks, striping the same database over a
	// wider (partly empty) array.
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Spares < 0 {
		return fmt.Errorf("core: negative spare count %d", c.Spares)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if err := c.Robust.Validate(); err != nil {
		return err
	}
	return c.Fault.Validate()
}

// Arrays returns the number of arrays the system needs.
func (c Config) Arrays() int { return (c.DataDisks + c.N - 1) / c.N }

// PhysicalDisks returns the total drive count, the cost side of the
// paper's equal-capacity comparison.
func (c Config) PhysicalDisks() int {
	switch c.Org {
	case array.OrgMirror, array.OrgRAID10:
		return 2 * c.DataDisks
	case array.OrgBase, array.OrgRAID0:
		return c.DataDisks
	}
	if c.N >= c.DataDisks {
		// One wide array striping the whole database.
		return c.N + 1
	}
	full := c.DataDisks / c.N
	rem := c.DataDisks % c.N
	n := full * (c.N + 1)
	if rem > 0 {
		n += rem + 1
	}
	return n
}

func (c Config) arrayConfig(group, disks int, fc fault.Config, classes []trace.ClassInfo) array.Config {
	var rec *obs.Recorder
	if c.Obs.Enabled() {
		oc := c.Obs
		oc.Disks = c.physWidth(disks)
		oc.Array = group
		for _, cl := range classes {
			oc.Classes = append(oc.Classes, cl.Name)
		}
		rec = obs.NewRecorder(oc)
	}
	return array.Config{
		Rec:              rec,
		Classes:          classes,
		Org:              c.Org,
		N:                disks,
		Spec:             c.Spec,
		StripingUnit:     c.StripingUnit,
		Placement:        c.Placement,
		ParityStripeUnit: c.ParityStripeUnit,
		Sync:             c.Sync,
		Cached:           c.Cached,
		CacheBlocks:      c.CacheMB << 20 / c.Spec.BlockBytes,
		DestagePeriod:    c.DestagePeriod,
		PureLRUWriteback: c.PureLRUWriteback,
		Warmup:           c.Warmup,
		BuffersPerDisk:   c.BuffersPerDisk,
		DiskSched:        c.DiskSched,
		SyncSpindles:     c.SyncSpindles,
		Seed:             c.Seed*1000003 + uint64(group)*7919 + 17,
		Fault:            fc,
		Spares:           c.Spares,
		RebuildChunk:     c.RebuildChunk,
		RebuildPause:     c.RebuildPause,
		Robust:           c.Robust,
	}
}

// physWidth returns the physical drive count of one array holding the
// given number of data disks.
func (c Config) physWidth(disks int) int {
	switch c.Org {
	case array.OrgMirror, array.OrgRAID10:
		return 2 * disks
	case array.OrgBase, array.OrgRAID0:
		return disks
	}
	return disks + 1
}

// groupDisks returns the data-disk width of each array group, mirroring
// the assignment Run and RunClosedLoop make.
func (c Config) groupDisks(ngroups int) []int {
	out := make([]int, ngroups)
	for g := range out {
		disks := c.N
		if g > 0 && g == ngroups-1 {
			// Tail array holds only the remaining data disks. (The g == 0
			// case with N > DataDisks intentionally keeps the full width:
			// the database stripes across the whole wider array.)
			disks = c.DataDisks - g*c.N
		}
		if disks < 2 {
			// A 1-disk tail array can't host a parity group; fold it into
			// a 2-disk array by borrowing capacity (the trace addresses
			// still fit after wrapping).
			disks = 2
		}
		out[g] = disks
	}
	return out
}

// groupFaults splits the system-wide fault config into per-array configs:
// deterministic failures land on the array owning the physical drive
// (array-major numbering), stochastic streams get per-group seeds.
func (c Config) groupFaults(widths []int) ([]fault.Config, error) {
	out := make([]fault.Config, len(widths))
	if !c.Fault.Enabled() {
		return out, nil
	}
	total := 0
	for _, w := range widths {
		total += c.physWidth(w)
	}
	for _, f := range c.Fault.DiskFails {
		if f.Disk >= total {
			return nil, fmt.Errorf("core: fault disk %d out of range; system has %d physical disks", f.Disk, total)
		}
	}
	for _, s := range c.Fault.SickDisks {
		if s.Disk >= total {
			return nil, fmt.Errorf("core: sick disk %d out of range; system has %d physical disks", s.Disk, total)
		}
	}
	offset := 0
	for g, w := range widths {
		pw := c.physWidth(w)
		fc := c.Fault
		fc.DiskFails = nil
		for _, f := range c.Fault.DiskFails {
			if f.Disk >= offset && f.Disk < offset+pw {
				f.Disk -= offset
				fc.DiskFails = append(fc.DiskFails, f)
			}
		}
		fc.SickDisks = nil
		for _, s := range c.Fault.SickDisks {
			if s.Disk >= offset && s.Disk < offset+pw {
				s.Disk -= offset
				fc.SickDisks = append(fc.SickDisks, s)
			}
		}
		fc.Seed = c.Fault.Seed*1000003 + uint64(g)*7919 + 29
		out[g] = fc
		offset += pw
	}
	return out, nil
}

// Results aggregates a whole system's simulation.
type Results struct {
	Config Config
	Arrays int
	Events uint64

	// Engine aggregates per-array engine self-metrics (Config.SelfMetrics);
	// zero when metering is off. Wall time is summed across arrays, so
	// with concurrent array workers it is engine-busy time, not elapsed.
	// With Config.Shards > 0 it instead aggregates the per-shard meters
	// (each spanning every array its engine executed) and is populated
	// whether or not SelfMetrics is set — sharded metering costs two
	// clock reads per shard, not per array.
	Engine sim.MeterStats
	// EngineShards is the per-shard view of Engine: element s meters the
	// engine that executed arrays s, s+Shards, s+2*Shards, ... Nil unless
	// Config.Shards > 0. The sum of per-shard Events equals Events (shard
	// engines execute nothing but their arrays' events).
	EngineShards []sim.MeterStats

	Requests  int64
	Resp      stats.Summary // response time, ms
	ReadResp  stats.Summary
	WriteResp stats.Summary

	// Fault-injection results: response times split by whether the array
	// was degraded when the request completed, plus aggregated fault
	// counters across all arrays.
	NormalResp   stats.Summary
	DegradedResp stats.Summary
	Fault        array.FaultResults
	// Robust aggregates the robustness-layer accounting (deadline
	// verdicts, retries, hedges, shed counts) across all arrays.
	Robust array.RobustResults
	// Classes reports each workload client class separately, merged
	// across arrays; nil for classless traces.
	Classes []array.ClassResults

	ReadHits, ReadMisses   int64
	WriteHits, WriteMisses int64

	DiskAccesses   []int64   // per physical disk, array-major order
	DiskUtil       []float64 // likewise
	SeekDistMean   float64
	HeldRotations  int64
	ParityAccesses int64
	Cache          cache.Stats

	// Stages attributes disk-side time to pipeline stages across all
	// arrays (queue wait / seek+rotate / transfer / parity sync /
	// cache-destage stall).
	Stages array.StageBreakdown

	// Series is the merged windowed time series across all arrays; nil
	// when observability is off (Config.Obs zero).
	Series *obs.Series
	// ObsEvents is the merged event trace in chronological order, each
	// event annotated with the array that emitted it. ObsEventsDropped
	// counts events the bounded per-array rings overwrote.
	ObsEvents        []obs.Event
	ObsEventsDropped int64

	// TailSpans are the retained slowest-K request span trees per class
	// across all arrays, slowest first; BgSpans the retained background
	// trees (destage batches, rebuild chunks, ...) in start order. Both
	// are nil unless Config.Obs.SpanTopK enabled the tracer.
	TailSpans []obs.SpanSample
	BgSpans   []obs.SpanSample
	// SpanTreesDropped counts background trees the bounded per-array
	// rings overwrote.
	SpanTreesDropped int64

	PerArray []*array.Results
}

// ReadHitRatio returns read hits over read requests.
func (r *Results) ReadHitRatio() float64 {
	n := r.ReadHits + r.ReadMisses
	if n == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(n)
}

// WriteHitRatio returns write hits over write requests.
func (r *Results) WriteHitRatio() float64 {
	n := r.WriteHits + r.WriteMisses
	if n == 0 {
		return 0
	}
	return float64(r.WriteHits) / float64(n)
}

// MeanResponseMS returns the overall mean response time in milliseconds —
// the y-axis of nearly every figure in the paper.
func (r *Results) MeanResponseMS() float64 { return r.Resp.Mean() }

// drainGrace bounds how long past the last arrival an array may take to
// finish in-flight work before the run is declared wedged. Generous: a
// severely overloaded trace-speed-2 run needs time to empty its queues.
const drainGrace = 3600 * sim.Second

// feeder drives one array's open-loop trace replay. Each record is
// admitted by its own Call-form event whose callback schedules the next
// record's event, so admission runs entirely through the engine's Call
// free list: one *feeder allocation per array, zero allocations per
// record, and on a reused shard engine the chain recycles the previous
// array's payloads. Same-tick records stay distinct events — the (at,
// seq) order pins their FIFO admission, and the golden fingerprints pin
// the per-run event counts — they just share the one free-list slot
// that hands off from record to record.
type feeder struct {
	ctrl  array.Controller
	sub   *trace.Trace
	cap64 int64
}

// feedStep admits record c.N0 and schedules the next one.
func feedStep(e *sim.Engine, c *sim.Call) {
	f := c.A.(*feeder)
	idx := int(c.N0)
	r := f.sub.Records[idx]
	lba := r.LBA
	blocks := r.Blocks
	if lba >= f.cap64 {
		// Striping/area division can shave a sliver of capacity off
		// the logical space; wrap the handful of affected addresses.
		lba %= f.cap64
	}
	if rem := f.cap64 - lba; int64(blocks) > rem {
		blocks = int(rem)
	}
	f.ctrl.Submit(array.Request{
		Op: r.Op, LBA: lba, Blocks: blocks,
		Class:  reqSLO(f.sub.Classes, r.Class, blocks),
		CClass: r.Class,
	})
	if next := idx + 1; next < len(f.sub.Records) {
		nc := e.AtCall(f.sub.Records[next].At, feedStep)
		nc.A = f
		nc.N0 = int64(next)
	}
}

// runArrayOn simulates a single array on eng — which must be at time
// zero with an empty event heap (fresh from New or Reset) — and returns
// its results and the number of events it executed. The engine is left
// as the drain loop abandoned it; callers reusing it must Reset first.
func runArrayOn(eng *sim.Engine, cfg array.Config, sub *trace.Trace) (*array.Results, uint64, error) {
	steps0 := eng.Steps()
	ctrl, err := array.New(eng, cfg)
	if err != nil {
		return nil, 0, err
	}
	if len(sub.Records) > 0 {
		c := eng.AtCall(sub.Records[0].At, feedStep)
		c.A = &feeder{ctrl: ctrl, sub: sub, cap64: ctrl.DataBlocks()}
		c.N0 = 0
	}
	eng.RunUntil(sub.Duration())
	deadline := sub.Duration() + drainGrace
	for !ctrl.Drained() && eng.Now() < deadline {
		eng.RunFor(sim.Second)
	}
	if !ctrl.Drained() {
		return nil, 0, fmt.Errorf("core: array %q did not drain within %ds grace — controller wedged or hopelessly overloaded",
			sub.Name, drainGrace/sim.Second)
	}
	// Let an in-flight hot-spare rebuild finish so the results report its
	// duration (the foreground workload is already drained).
	if ra, ok := ctrl.(interface{ RebuildActive() bool }); ok {
		for ra.RebuildActive() && eng.Now() < deadline {
			eng.RunFor(sim.Second)
		}
	}
	return ctrl.Results(), eng.Steps() - steps0, nil
}

// runOneArray simulates a single array against its sub-trace on its own
// throwaway engine and returns its results, the number of events
// executed, and — when metered — the engine's self-metrics.
func runOneArray(cfg array.Config, sub *trace.Trace, meter bool) (*array.Results, uint64, sim.MeterStats, error) {
	eng := sim.New()
	var m *sim.Meter
	if meter {
		m = eng.StartMeter(true)
	}
	res, events, err := runArrayOn(eng, cfg, sub)
	if err != nil {
		return nil, 0, sim.MeterStats{}, err
	}
	var ms sim.MeterStats
	if m != nil {
		ms = m.Stop()
	}
	return res, events, ms, nil
}

// reqSLO resolves a record's SLO class: through the trace's class table
// when it has one (auto classes still classify by size), else by size —
// the classless behavior.
func reqSLO(classes []trace.ClassInfo, class uint8, blocks int) array.SLOClass {
	if int(class) < len(classes) {
		return array.EffectiveSLO(classes[class].SLO, blocks)
	}
	return array.ClassifyBlocks(blocks)
}

// Run simulates cfg against tr. Arrays are simulated concurrently.
func Run(cfg Config, tr *trace.Trace) (*Results, error) {
	return RunContext(context.Background(), cfg, tr)
}

// RunContext is Run with the run-lifecycle seam the campaign layer
// drives: ctx aborts the system between array simulations (an engine
// that has started finishes its sub-trace — the discrete-event loop has
// no safe preemption point — so cancellation latency is one array's
// runtime), and the per-run seed is injected through cfg.Seed, which
// every derived stream (per-array engines, fault streams, robustness
// jitter) fans out from deterministically.
func RunContext(ctx context.Context, cfg Config, tr *trace.Trace) (*Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run canceled before start: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.NumDisks != cfg.DataDisks {
		return nil, fmt.Errorf("core: trace has %d disks, config expects %d", tr.NumDisks, cfg.DataDisks)
	}
	if tr.BlocksPerDisk != cfg.Spec.BlocksPerDisk() {
		return nil, fmt.Errorf("core: trace has %d blocks/disk, disk model has %d", tr.BlocksPerDisk, cfg.Spec.BlocksPerDisk())
	}
	subs, err := tr.SplitByGroup(cfg.N)
	if err != nil {
		return nil, err
	}
	parts := make([]*array.Results, len(subs))
	events := make([]uint64, len(subs))
	meters := make([]sim.MeterStats, len(subs))
	errs := make([]error, len(subs))

	widths := cfg.groupDisks(len(subs))
	faults, err := cfg.groupFaults(widths)
	if err != nil {
		return nil, err
	}

	recs := make([]*obs.Recorder, len(subs))
	var shardMeters []sim.MeterStats
	if cfg.Shards > 0 {
		shardMeters = runSharded(ctx, cfg, subs, widths, faults, parts, events, errs, recs)
	} else {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for g, sub := range subs {
			wg.Add(1)
			go func(g int, sub *trace.Trace) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if err := ctx.Err(); err != nil {
					errs[g] = fmt.Errorf("core: array %d canceled: %w", g, err)
					return
				}
				ac := cfg.arrayConfig(g, widths[g], faults[g], sub.Classes)
				recs[g] = ac.Rec
				parts[g], events[g], meters[g], errs[g] = runOneArray(ac, sub, cfg.SelfMetrics)
			}(g, sub)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := merge(cfg, parts, events)
	for _, m := range meters {
		out.Engine.Add(m)
	}
	for _, m := range shardMeters {
		out.Engine.Add(m)
	}
	out.EngineShards = shardMeters
	attachObs(out, recs)
	return out, nil
}

// runSharded is RunContext's Shards > 0 execution model: K persistent
// engines, array g on shard g mod K, each shard walking its arrays in
// index order and Reset()ing its engine between them. All outputs are
// written to index-addressed slots (parts/events/errs/recs) and the
// caller merges them in index order — the shard.Map determinism
// contract — so results are independent of the shard count; every
// per-array seed is already a pure function of (cfg.Seed, g) via
// arrayConfig. Returns one MeterStats per shard, each spanning its
// engine's whole life (memory deltas only under cfg.SelfMetrics: a
// MemStats read stops the world, and wall/event metering is two clock
// reads per shard).
func runSharded(ctx context.Context, cfg Config, subs []*trace.Trace, widths []int, faults []fault.Config, parts []*array.Results, events []uint64, errs []error, recs []*obs.Recorder) []sim.MeterStats {
	nshards := cfg.Shards
	if nshards > len(subs) {
		nshards = len(subs)
	}
	meters := make([]sim.MeterStats, nshards)
	var wg sync.WaitGroup
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng := sim.New()
			m := eng.StartMeter(cfg.SelfMetrics)
			for g := s; g < len(subs); g += nshards {
				if err := ctx.Err(); err != nil {
					errs[g] = fmt.Errorf("core: array %d canceled: %w", g, err)
					continue
				}
				ac := cfg.arrayConfig(g, widths[g], faults[g], subs[g].Classes)
				recs[g] = ac.Rec
				parts[g], events[g], errs[g] = runArrayOn(eng, ac, subs[g])
				eng.Reset()
			}
			meters[s] = m.Stop()
		}(s)
	}
	wg.Wait()
	return meters
}

// attachObs folds the per-array recorders into the system results: one
// merged Series (histograms merged bin-wise, so system quantiles are
// exact w.r.t. the binning) and one chronological event trace annotated
// with array indices.
func attachObs(out *Results, recs []*obs.Recorder) {
	for g, rec := range recs {
		if rec == nil {
			continue
		}
		s := rec.Series()
		if out.Series == nil {
			out.Series = s
		} else {
			out.Series.Merge(s)
		}
		for _, e := range rec.Events() {
			e.Array = g
			out.ObsEvents = append(out.ObsEvents, e)
		}
		out.ObsEventsDropped += rec.EventsDropped()
		if tr := rec.Tracer(); tr != nil {
			for _, t := range tr.Requests() {
				out.TailSpans = append(out.TailSpans, obs.SpanSample{Array: g, Tree: t})
			}
			for _, t := range tr.Background() {
				out.BgSpans = append(out.BgSpans, obs.SpanSample{Array: g, Tree: t})
			}
			out.SpanTreesDropped += tr.BackgroundDropped()
		}
	}
	sort.SliceStable(out.ObsEvents, func(i, j int) bool {
		return out.ObsEvents[i].At < out.ObsEvents[j].At
	})
	// Re-sort across arrays: slowest requests first, background by start.
	sort.SliceStable(out.TailSpans, func(i, j int) bool {
		return out.TailSpans[i].Tree.Duration() > out.TailSpans[j].Tree.Duration()
	})
	sort.SliceStable(out.BgSpans, func(i, j int) bool {
		return out.BgSpans[i].Tree.Root().Start < out.BgSpans[j].Tree.Root().Start
	})
}

func merge(cfg Config, parts []*array.Results, events []uint64) *Results {
	out := &Results{Config: cfg, Arrays: len(parts), PerArray: parts}
	for i, p := range parts {
		out.Events += events[i]
		out.Requests += p.Requests
		out.Resp.Merge(&p.Resp)
		out.ReadResp.Merge(&p.ReadResp)
		out.WriteResp.Merge(&p.WriteResp)
		out.NormalResp.Merge(&p.NormalResp)
		out.DegradedResp.Merge(&p.DegradedResp)
		mergeFaultResults(&out.Fault, &p.Fault)
		out.Robust.Merge(&p.Robust)
		out.Classes = array.MergeClasses(out.Classes, p.Classes)
		out.ReadHits += p.ReadHits
		out.ReadMisses += p.ReadMisses
		out.WriteHits += p.WriteHits
		out.WriteMisses += p.WriteMisses
		out.DiskAccesses = append(out.DiskAccesses, p.DiskAccesses...)
		out.DiskUtil = append(out.DiskUtil, p.DiskUtil...)
		out.HeldRotations += p.HeldRotations
		out.ParityAccesses += p.ParityAccesses
		out.Stages.Add(&p.Stages)
		mergeCacheStats(&out.Cache, &p.Cache)
	}
	// Weighted mean of per-array seek distances, weighted by accesses.
	var wsum, w float64
	for _, p := range parts {
		var acc int64
		for _, a := range p.DiskAccesses {
			acc += a
		}
		wsum += p.SeekDistMean * float64(acc)
		w += float64(acc)
	}
	if w > 0 {
		out.SeekDistMean = wsum / w
	}
	return out
}

func mergeFaultResults(dst, src *array.FaultResults) {
	dst.Enabled = dst.Enabled || src.Enabled
	dst.Failures += src.Failures
	dst.CacheFailures += src.CacheFailures
	dst.SparesUsed += src.SparesUsed
	dst.Rebuilds += src.Rebuilds
	dst.RebuildTime += src.RebuildTime
	dst.RebuildActive = dst.RebuildActive || src.RebuildActive
	dst.DegradedTime += src.DegradedTime
	dst.DegradedWindows += src.DegradedWindows
	dst.DegradedActive = dst.DegradedActive || src.DegradedActive
	dst.DataLossEvents += src.DataLossEvents
	dst.LostReadBlocks += src.LostReadBlocks
	dst.LostWriteBlocks += src.LostWriteBlocks
	dst.DirtyBlocksLost += src.DirtyBlocksLost
	dst.SectorErrors += src.SectorErrors
	dst.SectorRetries += src.SectorRetries
	dst.SectorReconstructs += src.SectorReconstructs
	dst.FailoverReads += src.FailoverReads
	dst.SickOnsets += src.SickOnsets
	dst.SickClears += src.SickClears
	dst.Hangs += src.Hangs
	dst.TransientErrors += src.TransientErrors
}

func mergeCacheStats(dst, src *cache.Stats) {
	dst.Inserts += src.Inserts
	dst.Evictions += src.Evictions
	dst.DirtyEvictions += src.DirtyEvictions
	dst.OldCaptured += src.OldCaptured
	dst.OldSkipped += src.OldSkipped
	dst.Destages += src.Destages
	dst.ParityQueued += src.ParityQueued
	dst.ParityStalls += src.ParityStalls
	if src.PeakUsed > dst.PeakUsed {
		dst.PeakUsed = src.PeakUsed
	}
	if src.PeakParity > dst.PeakParity {
		dst.PeakParity = src.PeakParity
	}
}
