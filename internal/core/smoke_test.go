package core

import (
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

// TestSmokeAllOrgs runs a tiny Trace2-like workload through every
// organization, cached and not, and sanity-checks the aggregate results.
func TestSmokeAllOrgs(t *testing.T) {
	prof := workload.Trace2Profile().Scaled(0.05)
	tr, err := workload.Generate(prof)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	t.Logf("trace: %d records over %.1fs", len(tr.Records), float64(tr.Duration())/float64(sim.Second))

	type tc struct {
		name   string
		org    array.Org
		cached bool
	}
	cases := []tc{
		{"base", array.OrgBase, false},
		{"mirror", array.OrgMirror, false},
		{"raid5", array.OrgRAID5, false},
		{"pstripe", array.OrgParityStriping, false},
		{"base-cached", array.OrgBase, true},
		{"mirror-cached", array.OrgMirror, true},
		{"raid5-cached", array.OrgRAID5, true},
		{"pstripe-cached", array.OrgParityStriping, true},
		{"raid4-cached", array.OrgRAID4, true},
		{"raid0", array.OrgRAID0, false},
		{"raid0-cached", array.OrgRAID0, true},
		{"raid3", array.OrgRAID3, false},
		{"plog", array.OrgParityLog, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				Org:       c.org,
				DataDisks: 10,
				N:         10,
				Spec:      geom.Default(),
				Sync:      array.DF,
				Cached:    c.cached,
				CacheMB:   16,
				Seed:      42,
			}
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Requests != int64(len(tr.Records)) {
				t.Errorf("requests: got %d want %d", res.Requests, len(tr.Records))
			}
			if res.Resp.N() != res.Requests {
				t.Errorf("response samples: got %d want %d", res.Resp.N(), res.Requests)
			}
			mean := res.MeanResponseMS()
			if mean <= 0 || mean > 10000 {
				t.Errorf("implausible mean response %f ms", mean)
			}
			t.Logf("%-16s resp=%.2fms read=%.2f write=%.2f events=%d rhit=%.2f whit=%.2f",
				c.name, mean, res.ReadResp.Mean(), res.WriteResp.Mean(), res.Events,
				res.ReadHitRatio(), res.WriteHitRatio())
		})
	}
}
