package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live introspection HTTP server: Prometheus-text metrics
// snapshotted from the arrays' recorders, a health probe, and
// net/http/pprof for profiling long simulations in flight.
type Server struct {
	Addr string // the bound address (resolves ":0" to the chosen port)
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves
// /metrics, /runs, /healthz, and /debug/pprof/ from the Live registry
// until Close.
func Serve(addr string, live *Live) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: introspection server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		live.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Fleet FleetStatus `json:"fleet"`
			Runs  []RunStatus `json:"runs"`
		}{live.Fleet(), live.Runs()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "raidsim introspection\n\n/metrics\n/runs\n/healthz\n/debug/pprof/\n")
	})
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
