package obs

import "math"

// Histogram is a log-bucketed latency histogram: geometric bins over
// [histLo, ∞) milliseconds with a fixed growth ratio. Quantiles are read
// back as the geometric midpoint of the target bin, so the relative error
// of any quantile is bounded by half a bin: |est/true - 1| <= sqrt(g) - 1
// (about 3.9% at the 1.08 growth used here). The exact max and sum are
// tracked separately, so Max() and Mean() carry no binning error.
type Histogram struct {
	counts [histBins]int64
	n      int64
	sum    float64
	max    float64
}

const (
	histBins   = 256
	histLo     = 1e-3 // smallest resolved latency, ms
	histGrowth = 1.08 // bin growth ratio; 256 bins reach ~3e5 ms
)

var histLogGrowth = math.Log(histGrowth)

func histBin(x float64) int {
	if x <= histLo {
		return 0
	}
	b := int(math.Log(x/histLo) / histLogGrowth)
	if b >= histBins {
		b = histBins - 1
	}
	return b
}

// binMid returns the geometric midpoint of bin b.
func binMid(b int) float64 {
	return histLo * math.Pow(histGrowth, float64(b)+0.5)
}

// Add records one latency sample in milliseconds.
func (h *Histogram) Add(ms float64) {
	h.counts[histBin(ms)]++
	h.n++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the exact largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (0 < q <= 1) as the geometric midpoint
// of the bin holding the target rank, clamped to the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target >= h.n {
		return h.max
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			v := binMid(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
