package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"testing"

	"raidsim/internal/sim"
)

// buildTree makes a small realistic request tree: root with one device op
// carrying queue and transfer children.
func buildTree(tr *Tracer, start, dur sim.Time, write, degraded bool) {
	root := tr.Start(start, write)
	op := root.Child("read-data", start)
	op.SetDisk(2)
	op.SetBlocks(4)
	op.ChildSpan(SpanQueue, start, start+dur/4)
	op.ChildSpan(SpanTransfer, start+dur/4, start+dur)
	op.CloseAt(start + dur)
	tr.Finish(root, start+dur, degraded)
}

// TestTopKProperty feeds randomized durations through the tracer and
// checks the retained set per class is exactly the true slowest K.
func TestTopKProperty(t *testing.T) {
	const K = 7
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tr := NewTracer(K, 0)
		want := map[string][]sim.Time{}
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			write := rng.Intn(2) == 1
			degraded := rng.Intn(4) == 0
			dur := sim.Time(1 + rng.Int63n(1_000_000))
			start := sim.Time(i) * 10_000
			buildTree(tr, start, dur, write, degraded)
			want[className(write, degraded)] = append(want[className(write, degraded)], dur)
		}
		got := map[string][]sim.Time{}
		for _, tree := range tr.Requests() {
			got[tree.Class] = append(got[tree.Class], tree.Duration())
		}
		for class, durs := range want {
			sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
			if len(durs) > K {
				durs = durs[:K]
			}
			g := got[class]
			sort.Slice(g, func(i, j int) bool { return g[i] > g[j] })
			if len(g) != len(durs) {
				t.Fatalf("trial %d class %s: retained %d trees, want %d", trial, class, len(g), len(durs))
			}
			for i := range durs {
				if g[i] != durs[i] {
					t.Fatalf("trial %d class %s rank %d: retained dur %d, want %d", trial, class, i, g[i], durs[i])
				}
			}
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	root := tr.Start(0, true)
	if root != nil {
		t.Fatalf("nil tracer Start = %v, want nil", root)
	}
	root.Child("x", 0).ChildSpan("y", 0, 1)
	root.CloseAt(1)
	root.SetDisk(3)
	root.SetBlocks(9)
	tr.Finish(root, 1, false)
	tr.FinishBackground(tr.StartBackground("bg", 0), 1)
	if tr.Requests() != nil || tr.Background() != nil || tr.BackgroundDropped() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
}

func TestBackgroundRingBound(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 10; i++ {
		root := tr.StartBackground("destage", sim.Time(i)*100)
		tr.FinishBackground(root, sim.Time(i)*100+50)
	}
	if got := len(tr.Background()); got != 3 {
		t.Fatalf("background ring holds %d trees, want 3", got)
	}
	if got := tr.BackgroundDropped(); got != 7 {
		t.Fatalf("BackgroundDropped = %d, want 7", got)
	}
}

func sampleTrees(t *testing.T) []SpanSample {
	t.Helper()
	tr := NewTracer(4, 8)
	root := tr.Start(0, true)
	op := root.Child("rmw-data", 10)
	op.SetDisk(1)
	op.SetBlocks(2)
	op.ChildSpan(SpanQueue, 10, 20)
	op.ChildSpan(SpanReadOld, 20, 30)
	op.ChildSpan(SpanWriteNew, 40, 55)
	op.CloseAt(55)
	pp := root.Child("rmw-parity", 10)
	pp.SetDisk(3)
	pp.SetBlocks(2)
	pp.ChildSpan(SpanReadOld, 12, 25)
	pp.CloseAt(60)
	tr.Finish(root, 70, false)

	bg := tr.StartBackground("rebuild-chunk", 100)
	bg.SetDisk(2)
	bg.ChildSpan("rebuild-read", 100, 140)
	tr.FinishBackground(bg, 150)

	var out []SpanSample
	for _, tree := range tr.Requests() {
		out = append(out, SpanSample{Array: 0, Tree: tree})
	}
	for _, tree := range tr.Background() {
		out = append(out, SpanSample{Array: 0, Tree: tree})
	}
	return out
}

func TestWriteSpansChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpansChrome(&buf, sampleTrees(t)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Events []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if doc.Schema != SpanSchemaVersion {
		t.Fatalf("schema = %q, want %q", doc.Schema, SpanSchemaVersion)
	}
	var haveMeta, haveRMWLeg bool
	for _, e := range doc.Events {
		if e.Ph == "M" {
			haveMeta = true
		}
		if e.Ph == "X" && e.Name == SpanReadOld && e.Args["parent"] == "rmw-parity" {
			haveRMWLeg = true
		}
	}
	if !haveMeta {
		t.Fatal("no metadata events in Chrome export")
	}
	if !haveRMWLeg {
		t.Fatal("read-old-parity leg (read-old under rmw-parity) not attributable from args.parent")
	}
}

func TestWriteSpansCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpansCSV(&buf, sampleTrees(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := "# schema " + SpanSchemaVersion; lines[0] != want {
		t.Fatalf("CSV schema line = %q, want %q", lines[0], want)
	}
	if lines[1] != spanCSVHeader {
		t.Fatalf("CSV header = %q, want %q", lines[1], spanCSVHeader)
	}
	for i, ln := range lines[2:] {
		if got := strings.Count(ln, ","); got != strings.Count(spanCSVHeader, ",") {
			t.Fatalf("row %d has %d commas: %q", i, got, ln)
		}
	}
	if !strings.Contains(buf.String(), ",rebuild-chunk,") {
		t.Fatal("background tree missing from CSV export")
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	l := NewLive()
	l.Publish(ArraySnapshot{Array: 0, SimSeconds: 1.5, Reads: 10, Writes: 4,
		QueueDepth: 2, DirtyFrac: 0.25, Degraded: true,
		Rebuilding: true, RebuildDisk: 3, RebuildFrac: 0.4,
		WindowRequests: 7, WindowMeanMS: 21.5, WindowP95MS: 60, UtilMean: 0.8, Events: 12345})
	l.Publish(ArraySnapshot{Array: 1, SimSeconds: 1.5})
	var buf bytes.Buffer
	l.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP raidsim_requests_total",
		"# TYPE raidsim_requests_total counter",
		`raidsim_requests_total{array="0",op="read"} 10`,
		`raidsim_queue_depth{array="0"} 2`,
		`raidsim_degraded{array="0"} 1`,
		`raidsim_rebuild_progress{array="0",disk="3"} 0.4`,
		`raidsim_cache_dirty_fraction{array="0"} 0.25`,
		`raidsim_window_response_ms{array="0",stat="p95"} 60`,
		`raidsim_engine_events_total{array="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q; got:\n%s", want, out)
		}
	}
	// Prometheus text format: every non-comment line is "name{labels} value".
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.HasPrefix(ln, "raidsim_") || !strings.Contains(ln, "} ") {
			t.Fatalf("malformed metric line %q", ln)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	l := NewLive()
	l.Publish(ArraySnapshot{Array: 0, Reads: 3})
	srv, err := Serve("127.0.0.1:0", l)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), `raidsim_requests_total{array="0",op="read"} 3`) {
		t.Fatalf("/metrics body missing request counter:\n%s", body)
	}
	hz, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", hz.StatusCode)
	}
}
