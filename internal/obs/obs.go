// Package obs is the simulator's windowed time-series observability
// layer. A Recorder receives probe emissions from the sim engine, the
// disks, the array front-ends, the cache destage process, and the
// fault/rebuild machinery, and folds them into fixed-width time windows:
// log-bucketed latency histograms (p50/p95/p99/max per window),
// throughput, per-disk utilization, queue depth, cache dirty fraction,
// degraded-mode occupancy, and rebuild traffic — the transient phenomena
// the steady-state means of the paper's figures collapse away. An
// optional bounded ring buffer keeps an event trace for JSONL export.
//
// A nil *Recorder is the off switch: every method nil-checks its
// receiver and returns, so instrumented hot paths cost one predictable
// branch when observability is disabled and simulation results stay
// bit-identical.
package obs

import (
	"fmt"

	"raidsim/internal/sim"
)

// Config sizes a Recorder.
type Config struct {
	// Window is the time-series window width; <= 0 means DefaultWindow.
	Window sim.Time
	// Disks is the number of drives whose utilization is tracked.
	Disks int
	// TraceCap bounds the event ring buffer; 0 disables the event trace.
	TraceCap int
	// SpanTopK enables the per-request span tracer and sizes its tail
	// capture: the slowest K request span trees are retained per class
	// (read/write × normal/degraded). 0 disables tracing entirely.
	SpanTopK int
	// SpanBgCap bounds retained background span trees (destage batches,
	// rebuild chunks, parity spool); <= 0 means DefaultSpanBgCap.
	SpanBgCap int
	// Live, when non-nil, receives a thread-safe ArraySnapshot on every
	// sampler tick for the introspection HTTP server.
	Live *Live
	// Array tags this recorder's live snapshots and exported spans.
	Array int
	// Classes names the workload's client classes; when non-empty,
	// ClassRequest attributes completions to per-class window counters
	// and the series grows per-class columns.
	Classes []string
}

// DefaultWindow is the window width when Config.Window is unset.
const DefaultWindow = sim.Second

// Enabled reports whether this config asks for observability at all.
func (c Config) Enabled() bool {
	return c.Window > 0 || c.TraceCap > 0 || c.SpanTopK > 0 || c.Live != nil
}

// maxWindows caps the window slice so a runaway clock cannot exhaust
// memory (each window embeds a ~2 KB histogram); past the cap, samples
// fold into the last window. 64 Ki windows is 18 hours at a 1 s window.
const maxWindows = 1 << 16

// window accumulates one fixed-width interval of activity.
type window struct {
	hist     Histogram  // response-time samples completing in the window, ms
	reads    int64      // read requests completed
	writes   int64      // write requests completed
	busy     []sim.Time // per-disk mechanism busy time inside the window
	queueSum int64      // sampled queue depths (sum over samples)
	queueN   int64
	dirtySum float64 // sampled cache dirty fraction
	dirtyN   int64
	destages int64 // destage batches issued
	destaged int64 // blocks written back by destage batches
	rebuild  int64 // blocks moved by rebuild sweeps
	degraded sim.Time
	steps    uint64 // engine events executed in the window

	// Robustness counters (zero unless the request-robustness layer is
	// enabled): deadline misses, transient-error retries, hedged read
	// legs and wins, and requests shed by admission control.
	timeouts  int64
	retries   int64
	hedges    int64
	hedgeWins int64
	shed      int64

	// Per-client-class completions, summed response ms, and response
	// histograms (for per-class quantiles); nil on classless recorders
	// (and on growth windows until first touched).
	clsN    []int64
	clsMS   []float64
	clsHist []Histogram
}

// Recorder folds probe emissions into time windows. It is single-
// goroutine, like the engine that drives it; independent arrays each get
// their own Recorder and their Series are merged afterwards.
type Recorder struct {
	cfg    Config
	win    sim.Time
	wins   []*window
	ring   *ring
	tracer *Tracer

	end       sim.Time // latest timestamp observed
	lastSteps uint64

	degradedOn    bool
	degradedSince sim.Time

	// Cumulative counters and rebuild progress for live snapshots.
	totReads, totWrites int64
	rbDisk              int
	rbFrac              float64
}

// NewRecorder returns a Recorder for the config. The zero-window config
// gets DefaultWindow.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	r := &Recorder{cfg: cfg, win: cfg.Window, rbDisk: -1}
	if cfg.TraceCap > 0 {
		r.ring = newRing(cfg.TraceCap)
	}
	if cfg.SpanTopK > 0 {
		r.tracer = NewTracer(cfg.SpanTopK, cfg.SpanBgCap)
	}
	return r
}

// Tracer returns the recorder's span tracer (nil when tracing is off or
// the recorder itself is nil, which keeps the off switch a single nil
// span down the pipeline).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Window returns the window width (DefaultWindow if the recorder is nil,
// so callers can size samplers without a guard).
func (r *Recorder) Window() sim.Time {
	if r == nil {
		return DefaultWindow
	}
	return r.win
}

func (r *Recorder) observe(t sim.Time) {
	if t > r.end {
		r.end = t
	}
}

// at returns the window containing time t, growing the slice as needed.
func (r *Recorder) at(t sim.Time) *window {
	idx := int(t / r.win)
	if idx >= maxWindows {
		idx = maxWindows - 1
	}
	for len(r.wins) <= idx {
		r.wins = append(r.wins, &window{busy: make([]sim.Time, r.cfg.Disks)})
	}
	return r.wins[idx]
}

// Request records a completed logical request: its completion time,
// direction, and response in milliseconds.
func (r *Recorder) Request(at sim.Time, write bool, ms float64) {
	if r == nil {
		return
	}
	r.observe(at)
	w := r.at(at)
	w.hist.Add(ms)
	if write {
		w.writes++
		r.totWrites++
	} else {
		w.reads++
		r.totReads++
	}
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvRequest, MS: ms, Write: write})
	}
}

// ClassRequest attributes a completed request to its workload client
// class (an index into Config.Classes). Called alongside Request, never
// instead of it, so classless totals are untouched.
func (r *Recorder) ClassRequest(at sim.Time, class int, ms float64) {
	if r == nil || class < 0 || class >= len(r.cfg.Classes) {
		return
	}
	r.observe(at)
	w := r.at(at)
	if len(w.clsN) < len(r.cfg.Classes) {
		w.clsN = make([]int64, len(r.cfg.Classes))
		w.clsMS = make([]float64, len(r.cfg.Classes))
		w.clsHist = make([]Histogram, len(r.cfg.Classes))
	}
	w.clsN[class]++
	w.clsMS[class] += ms
	w.clsHist[class].Add(ms)
}

// Timeout records a request that completed past its deadline: class,
// completion time, and response in milliseconds.
func (r *Recorder) Timeout(at sim.Time, class int, ms float64) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).timeouts++
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvTimeout, MS: ms, Class: class})
	}
}

// Retry records one transient-error retry against slot disk.
func (r *Recorder) Retry(at sim.Time, disk, attempt int) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).retries++
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvRetry, Disk: disk, Blocks: attempt})
	}
}

// HedgeIssued records a speculative second read leg sent to slot disk.
func (r *Recorder) HedgeIssued(at sim.Time, disk int) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).hedges++
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvHedge, Disk: disk})
	}
}

// HedgeWon records a hedge leg finishing before the primary.
func (r *Recorder) HedgeWon(at sim.Time, disk int) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).hedgeWins++
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvHedgeWin, Disk: disk})
	}
}

// Shed records a request rejected by admission control.
func (r *Recorder) Shed(at sim.Time, class int, write bool) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).shed++
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvShed, Class: class, Write: write})
	}
}

// DiskBusy attributes one drive's mechanism-busy interval [from, to) to
// the windows it overlaps. Implements disk.Probe.
func (r *Recorder) DiskBusy(id int, from, to sim.Time) {
	if r == nil || to <= from || id < 0 || id >= r.cfg.Disks {
		return
	}
	r.observe(to)
	for from < to {
		idx := from / r.win
		wend := (idx + 1) * r.win
		seg := to - from
		if wend < to {
			seg = wend - from
		}
		r.at(from).busy[id] += seg
		from += seg
	}
}

// Sample records one uniform-in-time snapshot: the total queued requests
// across the array's drives, the cache dirty fraction (0 when uncached),
// and the engine's cumulative executed-event count.
func (r *Recorder) Sample(at sim.Time, queueDepth int, dirtyFrac float64, steps uint64) {
	if r == nil {
		return
	}
	r.observe(at)
	w := r.at(at)
	w.queueSum += int64(queueDepth)
	w.queueN++
	w.dirtySum += dirtyFrac
	w.dirtyN++
	if steps >= r.lastSteps {
		w.steps += steps - r.lastSteps
		r.lastSteps = steps
	}
	if r.cfg.Live != nil {
		r.publishLive(at, w, queueDepth, dirtyFrac)
	}
}

// publishLive pushes a snapshot of the current window to the live
// registry. Reading the recorder's own window is safe: Sample runs on the
// array's simulation goroutine, the registry handles cross-goroutine
// hand-off.
func (r *Recorder) publishLive(at sim.Time, w *window, queueDepth int, dirtyFrac float64) {
	s := ArraySnapshot{
		Array:          r.cfg.Array,
		SimSeconds:     float64(at) / float64(sim.Second),
		Reads:          r.totReads,
		Writes:         r.totWrites,
		QueueDepth:     queueDepth,
		DirtyFrac:      dirtyFrac,
		Degraded:       r.degradedOn,
		Rebuilding:     r.rbDisk >= 0,
		RebuildDisk:    r.rbDisk,
		RebuildFrac:    r.rbFrac,
		WindowRequests: w.hist.N(),
		WindowMeanMS:   w.hist.Mean(),
		WindowP95MS:    w.hist.Quantile(0.95),
		Events:         r.lastSteps,
	}
	winStart := (at / r.win) * r.win
	if span := at - winStart; span > 0 && r.cfg.Disks > 0 {
		var busy sim.Time
		for _, b := range w.busy {
			busy += b
		}
		s.UtilMean = float64(busy) / float64(sim.Time(r.cfg.Disks)*span)
	}
	r.cfg.Live.Publish(s)
}

// RebuildProgress records how far the rebuild of the given slot has
// swept, as a fraction of the drive; frac >= 1 clears the live gauge.
func (r *Recorder) RebuildProgress(disk int, frac float64) {
	if r == nil {
		return
	}
	if frac >= 1 {
		r.rbDisk, r.rbFrac = -1, 0
		return
	}
	r.rbDisk, r.rbFrac = disk, frac
}

// Destage records one periodic destage batch of the given block count.
func (r *Recorder) Destage(at sim.Time, blocks int) {
	if r == nil {
		return
	}
	r.observe(at)
	w := r.at(at)
	w.destages++
	w.destaged += int64(blocks)
	if r.ring != nil {
		r.ring.append(Event{At: at, Kind: EvDestage, Blocks: blocks})
	}
}

// RebuildIO records one rebuild sweep chunk of the given block count.
func (r *Recorder) RebuildIO(at sim.Time, blocks int) {
	if r == nil {
		return
	}
	r.observe(at)
	r.at(at).rebuild += int64(blocks)
}

// Degraded records the array entering or leaving degraded mode; the time
// between transitions is attributed to the overlapped windows.
func (r *Recorder) Degraded(at sim.Time, on bool) {
	if r == nil || on == r.degradedOn {
		return
	}
	r.observe(at)
	if on {
		r.degradedOn, r.degradedSince = true, at
		return
	}
	r.degradedOn = false
	r.addDegraded(r.degradedSince, at)
}

func (r *Recorder) addDegraded(from, to sim.Time) {
	for from < to {
		idx := from / r.win
		wend := (idx + 1) * r.win
		seg := to - from
		if wend < to {
			seg = wend - from
		}
		r.at(from).degraded += seg
		from += seg
	}
}

// Note appends an event to the ring trace (no-op without a trace buffer).
func (r *Recorder) Note(e Event) {
	if r == nil {
		return
	}
	r.observe(e.At)
	if r.ring != nil {
		r.ring.append(e)
	}
}

// Events returns the retained event trace in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil || r.ring == nil {
		return nil
	}
	return r.ring.events()
}

// EventsDropped returns how many events the bounded ring overwrote.
func (r *Recorder) EventsDropped() int64 {
	if r == nil || r.ring == nil {
		return 0
	}
	return r.ring.dropped
}

// Series snapshots the recorder into a mergeable, renderable time series.
// The open degraded interval (a rebuild still running at snapshot time)
// is closed at the latest observed timestamp.
func (r *Recorder) Series() *Series {
	if r == nil {
		return nil
	}
	if r.degradedOn {
		r.addDegraded(r.degradedSince, r.end)
		r.degradedSince = r.end
	}
	s := &Series{
		Window:  r.win,
		Disks:   r.cfg.Disks,
		End:     r.end,
		Classes: append([]string(nil), r.cfg.Classes...),
	}
	s.wins = make([]*window, len(r.wins))
	for i, w := range r.wins {
		cp := *w
		cp.busy = append([]sim.Time(nil), w.busy...)
		cp.clsN = append([]int64(nil), w.clsN...)
		cp.clsMS = append([]float64(nil), w.clsMS...)
		cp.clsHist = append([]Histogram(nil), w.clsHist...)
		s.wins[i] = &cp
	}
	return s
}

func (c Config) String() string {
	return fmt.Sprintf("obs{window=%v disks=%d trace=%d spans=%d}", c.Window, c.Disks, c.TraceCap, c.SpanTopK)
}
