package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"raidsim/internal/sim"
)

// RunStatus is one campaign run's lifecycle state as the fleet registry
// tracks it: identity, which worker holds it, and — once finished — the
// run's scalar outcome and engine self-metrics. The registry keeps the
// latest status per run ID; /runs serves them sorted by ID.
type RunStatus struct {
	ID     string `json:"id"`
	Group  string `json:"group,omitempty"` // params minus the seed axis
	Seed   uint64 `json:"seed"`
	Worker int    `json:"worker"`
	// State is "running", "done", "failed", or "resumed" (replayed from
	// the journal without simulating).
	State string `json:"state"`
	Err   string `json:"err,omitempty"`

	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Requests     int64   `json:"requests"`
	MeanMS       float64 `json:"mean_ms"`
}

// WorkerStatus is one pool worker's occupancy as reported by the shard
// pool: tasks it completed, how many of those it stole from another
// worker's stride, and host time spent inside run functions.
type WorkerStatus struct {
	Worker int   `json:"worker"`
	Tasks  int   `json:"tasks"`
	Steals int   `json:"steals"`
	BusyNS int64 `json:"busy_ns"`
}

// ShardStatus is one intra-run engine shard's meter totals, accumulated
// element-wise across a campaign's executed runs (shard s of every run
// folds into element s). Campaigns running with core.Config.Shards = 0
// publish none.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Events uint64 `json:"events"`
	BusyNS int64  `json:"busy_ns"` // host time the shard's engine was metered over
}

// GroupAggregate is the fleet registry's running response-time aggregate
// for one parameter group (all replications of one configuration).
type GroupAggregate struct {
	Group    string  `json:"group"`
	Runs     int     `json:"runs"`
	Requests int64   `json:"requests"`
	MeanMS   float64 `json:"mean_ms"` // request-weighted across the group's runs
}

type groupAgg struct {
	runs     int
	requests int64
	sumMS    float64 // sum of run mean * run requests
}

// FleetStatus is the aggregate view of a campaign in flight: progress
// counters, engine throughput, and worker occupancy.
type FleetStatus struct {
	Total    int `json:"total"`
	Running  int `json:"running"`
	Finished int `json:"finished"` // freshly executed, successfully
	Failed   int `json:"failed"`
	Resumed  int `json:"resumed"` // journal replays

	// Events sums engine events over finished runs; EventsPerSec divides
	// by elapsed wall time since SetFleet. EngineBusyNS sums per-run wall
	// time (engine-busy, exceeds elapsed when workers overlap).
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EngineBusyNS int64   `json:"engine_busy_ns"`

	// FreshEvents counts only events from freshly executed runs (journal
	// replays fold their recorded events into Events without simulating
	// anything); ExecElapsedSec is wall time since the first fresh run
	// started. FreshEventsPerSec = FreshEvents / ExecElapsedSec is the
	// honest live throughput on a resumed campaign — replayed events over
	// replay microseconds would report absurd rates.
	FreshEvents       uint64  `json:"fresh_events"`
	FreshEventsPerSec float64 `json:"fresh_events_per_sec"`
	ExecElapsedSec    float64 `json:"exec_elapsed_sec"`

	Workers []WorkerStatus   `json:"workers,omitempty"`
	Shards  []ShardStatus    `json:"shards,omitempty"`
	Groups  []GroupAggregate `json:"groups,omitempty"`
}

// Done returns finished+failed+resumed: points that left the pending set.
func (f FleetStatus) Done() int { return f.Finished + f.Failed + f.Resumed }

// SetFleet arms the fleet section of the registry for a campaign of
// total runs, resetting any previous campaign's state and starting the
// elapsed/throughput clock.
func (l *Live) SetFleet(total int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.fleetTotal = total
	l.fleetStart = time.Now()
	l.execStart = time.Time{}
	l.runs = make(map[string]RunStatus, total)
	l.workers = nil
	l.shards = nil
	l.started, l.finished, l.failed, l.resumed = 0, 0, 0, 0
	l.events, l.freshEvents, l.busyNS = 0, 0, 0
	l.groups = map[string]*groupAgg{}
	l.mu.Unlock()
}

// RunStarted records that a worker picked up a run.
func (l *Live) RunStarted(id, group string, seed uint64, worker int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ensureFleet()
	if l.execStart.IsZero() {
		l.execStart = time.Now()
	}
	l.started++
	l.runs[id] = RunStatus{ID: id, Group: group, Seed: seed, Worker: worker, State: "running"}
	l.mu.Unlock()
}

// RunFinished records a run's terminal status. st.State selects the
// counter: "done" (fresh execution), "resumed" (journal replay), and
// anything else counts as failed. Done and resumed runs fold into the
// fleet's event totals and their group's response aggregate.
func (l *Live) RunFinished(st RunStatus) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ensureFleet()
	if st.WallMS > 0 && st.EventsPerSec == 0 {
		st.EventsPerSec = float64(st.Events) / (st.WallMS / 1e3)
	}
	l.runs[st.ID] = st
	switch st.State {
	case "done":
		l.finished++
	case "resumed":
		l.resumed++
	default:
		l.failed++
	}
	if st.State == "done" || st.State == "resumed" {
		l.events += st.Events
		if st.State == "done" {
			l.freshEvents += st.Events
		}
		l.busyNS += int64(st.WallMS * 1e6)
		g := l.groups[st.Group]
		if g == nil {
			g = &groupAgg{}
			l.groups[st.Group] = g
		}
		g.runs++
		g.requests += st.Requests
		g.sumMS += st.MeanMS * float64(st.Requests)
	}
	l.mu.Unlock()
}

// AddShards folds one run's per-shard engine meters into the fleet's
// cumulative per-shard totals (element-wise on the shard index). Meters
// beyond the current shard count grow the slice; a nil or empty slice
// is a no-op, so unsharded campaigns never publish the family.
func (l *Live) AddShards(ms []sim.MeterStats) {
	if l == nil || len(ms) == 0 {
		return
	}
	l.mu.Lock()
	for s, m := range ms {
		for s >= len(l.shards) {
			l.shards = append(l.shards, ShardStatus{Shard: len(l.shards)})
		}
		l.shards[s].Events += m.Events
		l.shards[s].BusyNS += m.WallNS
	}
	l.mu.Unlock()
}

// PublishWorkers replaces the per-worker occupancy snapshot.
func (l *Live) PublishWorkers(ws []WorkerStatus) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.workers = append(l.workers[:0], ws...)
	l.mu.Unlock()
}

// ensureFleet lazily initializes fleet maps for callers that publish
// runs without SetFleet (total then stays 0 = unknown). Callers hold mu.
func (l *Live) ensureFleet() {
	if l.runs == nil {
		l.runs = map[string]RunStatus{}
	}
	if l.groups == nil {
		l.groups = map[string]*groupAgg{}
	}
	if l.fleetStart.IsZero() {
		l.fleetStart = time.Now()
	}
}

// Runs returns every tracked run's latest status, sorted by ID.
func (l *Live) Runs() []RunStatus {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]RunStatus, 0, len(l.runs))
	for _, st := range l.runs {
		out = append(out, st)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Fleet returns the aggregate campaign status.
func (l *Live) Fleet() FleetStatus {
	if l == nil {
		return FleetStatus{}
	}
	l.mu.Lock()
	f := FleetStatus{
		Total:        l.fleetTotal,
		Running:      l.started - l.finished - l.failed,
		Finished:     l.finished,
		Failed:       l.failed,
		Resumed:      l.resumed,
		Events:       l.events,
		FreshEvents:  l.freshEvents,
		EngineBusyNS: l.busyNS,
		Workers:      append([]WorkerStatus(nil), l.workers...),
		Shards:       append([]ShardStatus(nil), l.shards...),
	}
	if f.Running < 0 {
		f.Running = 0
	}
	if !l.fleetStart.IsZero() {
		f.ElapsedSec = time.Since(l.fleetStart).Seconds()
	}
	if f.ElapsedSec > 0 {
		f.EventsPerSec = float64(f.Events) / f.ElapsedSec
	}
	if !l.execStart.IsZero() {
		f.ExecElapsedSec = time.Since(l.execStart).Seconds()
	}
	if f.ExecElapsedSec > 0 {
		f.FreshEventsPerSec = float64(f.FreshEvents) / f.ExecElapsedSec
	}
	for name, g := range l.groups {
		ga := GroupAggregate{Group: name, Runs: g.runs, Requests: g.requests}
		if g.requests > 0 {
			ga.MeanMS = g.sumMS / float64(g.requests)
		}
		f.Groups = append(f.Groups, ga)
	}
	l.mu.Unlock()
	sort.Slice(f.Groups, func(i, j int) bool { return f.Groups[i].Group < f.Groups[j].Group })
	sort.Slice(f.Workers, func(i, j int) bool { return f.Workers[i].Worker < f.Workers[j].Worker })
	return f
}

// writeFleetMetrics appends the fleet metric families to a /metrics
// response; a registry that never saw fleet traffic emits nothing.
func (l *Live) writeFleetMetrics(w io.Writer) {
	l.mu.Lock()
	armed := l.fleetTotal > 0 || len(l.runs) > 0
	l.mu.Unlock()
	if !armed {
		return
	}
	f := l.Fleet()
	fmt.Fprintf(w, "# HELP raidsim_fleet_runs_total Campaign runs by terminal state.\n# TYPE raidsim_fleet_runs_total counter\n")
	fmt.Fprintf(w, "raidsim_fleet_runs_total{state=\"done\"} %d\n", f.Finished)
	fmt.Fprintf(w, "raidsim_fleet_runs_total{state=\"failed\"} %d\n", f.Failed)
	fmt.Fprintf(w, "raidsim_fleet_runs_total{state=\"resumed\"} %d\n", f.Resumed)
	fmt.Fprintf(w, "# HELP raidsim_fleet_runs_running Campaign runs currently executing.\n# TYPE raidsim_fleet_runs_running gauge\n")
	fmt.Fprintf(w, "raidsim_fleet_runs_running %d\n", f.Running)
	fmt.Fprintf(w, "# HELP raidsim_fleet_runs_planned Total runs in the campaign.\n# TYPE raidsim_fleet_runs_planned gauge\n")
	fmt.Fprintf(w, "raidsim_fleet_runs_planned %d\n", f.Total)
	fmt.Fprintf(w, "# HELP raidsim_fleet_events_total Engine events summed over completed runs.\n# TYPE raidsim_fleet_events_total counter\n")
	fmt.Fprintf(w, "raidsim_fleet_events_total %d\n", f.Events)
	fmt.Fprintf(w, "# HELP raidsim_fleet_events_per_sec Aggregate engine events per wall-clock second.\n# TYPE raidsim_fleet_events_per_sec gauge\n")
	fmt.Fprintf(w, "raidsim_fleet_events_per_sec %g\n", f.EventsPerSec)
	fmt.Fprintf(w, "# HELP raidsim_fleet_engine_busy_seconds Summed per-run engine wall time.\n# TYPE raidsim_fleet_engine_busy_seconds counter\n")
	fmt.Fprintf(w, "raidsim_fleet_engine_busy_seconds %g\n", float64(f.EngineBusyNS)/1e9)
	if len(f.Workers) > 0 {
		fmt.Fprintf(w, "# HELP raidsim_fleet_worker_tasks_total Runs completed per pool worker.\n# TYPE raidsim_fleet_worker_tasks_total counter\n")
		for _, ws := range f.Workers {
			fmt.Fprintf(w, "raidsim_fleet_worker_tasks_total{worker=\"%d\"} %d\n", ws.Worker, ws.Tasks)
		}
		fmt.Fprintf(w, "# HELP raidsim_fleet_worker_steals_total Runs stolen from another worker's stride.\n# TYPE raidsim_fleet_worker_steals_total counter\n")
		for _, ws := range f.Workers {
			fmt.Fprintf(w, "raidsim_fleet_worker_steals_total{worker=\"%d\"} %d\n", ws.Worker, ws.Steals)
		}
		fmt.Fprintf(w, "# HELP raidsim_fleet_worker_busy_seconds Host time per worker spent inside run functions.\n# TYPE raidsim_fleet_worker_busy_seconds counter\n")
		for _, ws := range f.Workers {
			fmt.Fprintf(w, "raidsim_fleet_worker_busy_seconds{worker=\"%d\"} %g\n", ws.Worker, float64(ws.BusyNS)/1e9)
		}
	}
	if len(f.Shards) > 0 {
		fmt.Fprintf(w, "# HELP raidsim_fleet_shard_events_total Engine events executed per intra-run engine shard, summed over runs.\n# TYPE raidsim_fleet_shard_events_total counter\n")
		for _, sh := range f.Shards {
			fmt.Fprintf(w, "raidsim_fleet_shard_events_total{shard=\"%d\"} %d\n", sh.Shard, sh.Events)
		}
		fmt.Fprintf(w, "# HELP raidsim_fleet_shard_busy_seconds Host time each intra-run engine shard was metered over, summed over runs.\n# TYPE raidsim_fleet_shard_busy_seconds counter\n")
		for _, sh := range f.Shards {
			fmt.Fprintf(w, "raidsim_fleet_shard_busy_seconds{shard=\"%d\"} %g\n", sh.Shard, float64(sh.BusyNS)/1e9)
		}
	}
	if len(f.Groups) > 0 {
		fmt.Fprintf(w, "# HELP raidsim_group_requests_total Completed requests per parameter group.\n# TYPE raidsim_group_requests_total counter\n")
		for _, g := range f.Groups {
			fmt.Fprintf(w, "raidsim_group_requests_total{group=%q} %d\n", g.Group, g.Requests)
		}
		fmt.Fprintf(w, "# HELP raidsim_group_response_ms Request-weighted mean response time per parameter group.\n# TYPE raidsim_group_response_ms gauge\n")
		for _, g := range f.Groups {
			fmt.Fprintf(w, "raidsim_group_response_ms{group=%q,stat=\"mean\"} %g\n", g.Group, g.MeanMS)
		}
	}
}
