package obs

import (
	"sort"

	"raidsim/internal/sim"
)

// Span names emitted by the disk layer for the mechanism phases of one
// device access. The array layer names the device-op spans themselves
// ("rmw-data", "rmw-parity", ...), so "read-old" under "rmw-parity" is
// the read-old-parity leg of a small-write parity update.
const (
	SpanQueue      = "queue"         // waiting in the drive's queue for the mechanism
	SpanSeekRotate = "seek+rotate"   // arm seek + rotational positioning
	SpanTransfer   = "transfer"      // media pass (plain read or write)
	SpanReadOld    = "read-old"      // RMW phase 1: old-data read pass
	SpanRealign    = "realign"       // RMW: rotation back to the start of the run
	SpanHold       = "hold-rotation" // RMW: a full rotation held waiting for inputs
	SpanWriteNew   = "write-new"     // RMW phase 2: new-data write pass
)

// Span names emitted by the controller envelope above the schemes.
const (
	SpanAdmit   = "admit"       // waiting for track buffers
	SpanChannel = "channel"     // array channel transfer
	SpanStall   = "cache-stall" // write held for NV-cache space
)

// Span is one node of a request's trace tree: a named interval, optionally
// tagged with the drive it ran on and the blocks it moved. A nil *Span is
// the off switch — every method nil-checks its receiver — so instrumented
// paths pass spans around unconditionally and pay one branch when tracing
// is disabled.
type Span struct {
	Name   string
	Start  sim.Time
	End    sim.Time // spanOpen until closed
	Disk   int      // -1 when not a device access
	Blocks int      // 0 when not applicable

	idx    int32 // position in the tree's span slice
	parent int32 // parent index; -1 for the root
	t      *SpanTree
}

// spanOpen marks a span that has not been closed yet.
const spanOpen = sim.Time(-1)

// Parent returns the index of the parent span within the tree, -1 for the
// root.
func (s *Span) Parent() int { return int(s.parent) }

// Index returns this span's index within its tree.
func (s *Span) Index() int { return int(s.idx) }

// Duration returns End-Start (0 while the span is open).
func (s *Span) Duration() sim.Time {
	if s.End == spanOpen {
		return 0
	}
	return s.End - s.Start
}

// Child starts a sub-span at the given time and returns it (nil receiver
// or closed-over nil tree returns nil).
func (s *Span) Child(name string, at sim.Time) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	c := t.newSpan()
	*c = Span{Name: name, Start: at, End: spanOpen, Disk: -1,
		idx: int32(t.n - 1), parent: s.idx, t: t}
	return c
}

// ChildSpan records an already-finished sub-span.
func (s *Span) ChildSpan(name string, from, to sim.Time) *Span {
	c := s.Child(name, from)
	c.CloseAt(to)
	return c
}

// CloseAt ends the span (idempotent; a later close wins, which lets a
// retried device access extend its op span).
func (s *Span) CloseAt(at sim.Time) {
	if s == nil {
		return
	}
	s.End = at
}

// SetDisk tags the span with the drive it ran on.
func (s *Span) SetDisk(d int) {
	if s == nil {
		return
	}
	s.Disk = d
}

// SetBlocks tags the span with the block count it covers.
func (s *Span) SetBlocks(n int) {
	if s == nil {
		return
	}
	s.Blocks = n
}

// spanChunkLen is the arena granularity: spans are allocated (and
// recycled) in fixed-size chunks, so steady-state tracing touches the
// allocator once per spanChunkLen spans and the garbage collector sees a
// handful of chunk objects per tree instead of one object and one slice
// slot per span. Chunk addresses are stable, so *Span handles stay valid
// as the tree grows.
const spanChunkLen = 32

type spanChunk [spanChunkLen]Span

// SpanTree is one request's (or one background activity's) complete span
// tree, stored as a chunked flat arena with parent indices; span 0 is the
// root.
type SpanTree struct {
	Class      string // request class, or the background root's name
	Write      bool
	Degraded   bool
	Background bool

	n      int // spans in use across chunks
	chunks []*spanChunk
	tr     *Tracer
}

// at returns span i of the arena.
func (t *SpanTree) at(i int32) *Span {
	return &t.chunks[int(i)/spanChunkLen][int(i)%spanChunkLen]
}

// newSpan hands out the next arena slot, growing by one chunk when full.
func (t *SpanTree) newSpan() *Span {
	ci := t.n / spanChunkLen
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, t.tr.chunk())
	}
	s := &t.chunks[ci][t.n%spanChunkLen]
	t.n++
	return s
}

// Root returns the tree's root span.
func (t *SpanTree) Root() *Span { return t.at(0) }

// Len returns the number of spans in the tree.
func (t *SpanTree) Len() int { return t.n }

// Spans returns the spans as a flat slice; Spans()[i].Parent() indexes
// into it. The slice is built on demand — intended for export, not the
// simulation hot path.
func (t *SpanTree) Spans() []*Span {
	out := make([]*Span, t.n)
	for i := range out {
		out[i] = t.at(int32(i))
	}
	return out
}

// Duration returns the root span's duration.
func (t *SpanTree) Duration() sim.Time { return t.Root().Duration() }

// StageMS sums the durations of all spans with the given name, in
// milliseconds — the per-stage decomposition the tail-anatomy table
// renders. Device-op legs may overlap in time, so stage sums can exceed
// the root duration.
func (t *SpanTree) StageMS(name string) float64 {
	var sum sim.Time
	for i := 0; i < t.n; i++ {
		if s := t.at(int32(i)); s.Name == name {
			sum += s.Duration()
		}
	}
	return sim.Millis(sum)
}

// DeviceOps counts the spans tagged with a drive (the device accesses the
// request fanned out to).
func (t *SpanTree) DeviceOps() int {
	n := 0
	for i := 0; i < t.n; i++ {
		if t.at(int32(i)).Disk >= 0 {
			n++
		}
	}
	return n
}

// Request classes for tail sampling: direction × degraded mode.
const (
	ClassReadNormal    = "read/normal"
	ClassReadDegraded  = "read/degraded"
	ClassWriteNormal   = "write/normal"
	ClassWriteDegraded = "write/degraded"
)

// SpanClasses lists the request classes in render order.
func SpanClasses() []string {
	return []string{ClassReadNormal, ClassReadDegraded, ClassWriteNormal, ClassWriteDegraded}
}

func classIndex(write, degraded bool) int {
	i := 0
	if write {
		i = 2
	}
	if degraded {
		i++
	}
	return i
}

func className(write, degraded bool) string {
	return SpanClasses()[classIndex(write, degraded)]
}

// tkEntry is one retained tree in a class's top-K min-heap, keyed on the
// root span's duration so the slowest K survive.
type tkEntry struct {
	dur sim.Time
	t   *SpanTree
}

type topkHeap struct{ e []tkEntry }

func (h *topkHeap) push(dur sim.Time, t *SpanTree) {
	h.e = append(h.e, tkEntry{dur, t})
	i := len(h.e) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.e[p].dur <= h.e[i].dur {
			break
		}
		h.e[p], h.e[i] = h.e[i], h.e[p]
		i = p
	}
}

// replaceMin swaps the fastest retained tree for a slower newcomer and
// returns the evictee.
func (h *topkHeap) replaceMin(dur sim.Time, t *SpanTree) *SpanTree {
	old := h.e[0].t
	h.e[0] = tkEntry{dur, t}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.e) && h.e[l].dur < h.e[small].dur {
			small = l
		}
		if r < len(h.e) && h.e[r].dur < h.e[small].dur {
			small = r
		}
		if small == i {
			return old
		}
		h.e[i], h.e[small] = h.e[small], h.e[i]
		i = small
	}
}

// DefaultSpanBgCap bounds retained background span trees (destage
// batches, rebuild chunks, parity spool accesses) when Config.SpanBgCap
// is unset.
const DefaultSpanBgCap = 512

// Tracer builds per-request span trees and retains the slowest K per
// class (read/write × normal/degraded) plus a bounded ring of background
// trees. Like the Recorder it is single-goroutine and nil-safe: a nil
// *Tracer returns nil roots, and nil spans swallow every call, so the
// instrumented pipeline is one predictable branch per probe when tracing
// is off. Rejected and evicted trees recycle their arena chunks through a
// freelist, keeping steady-state tracing allocation-free.
type Tracer struct {
	topK    int
	classes [4]topkHeap

	bg        []*SpanTree
	bgNext    int
	bgCap     int
	bgDropped int64

	freeChunks []*spanChunk
	freeTrees  []*SpanTree
}

// NewTracer returns a tracer retaining the slowest topK request trees per
// class and up to bgCap background trees (<= 0 means DefaultSpanBgCap).
func NewTracer(topK, bgCap int) *Tracer {
	if bgCap <= 0 {
		bgCap = DefaultSpanBgCap
	}
	return &Tracer{topK: topK, bgCap: bgCap}
}

func (tr *Tracer) chunk() *spanChunk {
	if n := len(tr.freeChunks); n > 0 {
		c := tr.freeChunks[n-1]
		tr.freeChunks = tr.freeChunks[:n-1]
		return c
	}
	return new(spanChunk)
}

func (tr *Tracer) tree() *SpanTree {
	if n := len(tr.freeTrees); n > 0 {
		t := tr.freeTrees[n-1]
		tr.freeTrees = tr.freeTrees[:n-1]
		t.Class, t.Write, t.Degraded, t.Background = "", false, false, false
		return t
	}
	return &SpanTree{tr: tr}
}

func (tr *Tracer) recycle(t *SpanTree) {
	tr.freeChunks = append(tr.freeChunks, t.chunks...)
	t.chunks = t.chunks[:0]
	t.n = 0
	tr.freeTrees = append(tr.freeTrees, t)
}

// Start opens a request's root span. Returns nil on a nil tracer.
func (tr *Tracer) Start(at sim.Time, write bool) *Span {
	if tr == nil {
		return nil
	}
	t := tr.tree()
	t.Write = write
	name := "read"
	if write {
		name = "write"
	}
	s := t.newSpan()
	*s = Span{Name: name, Start: at, End: spanOpen, Disk: -1, idx: 0, parent: -1, t: t}
	return s
}

// StartBackground opens the root span of a background activity (destage
// batch, rebuild sweep, parity spool access).
func (tr *Tracer) StartBackground(name string, at sim.Time) *Span {
	if tr == nil {
		return nil
	}
	t := tr.tree()
	t.Background = true
	t.Class = name
	s := t.newSpan()
	*s = Span{Name: name, Start: at, End: spanOpen, Disk: -1, idx: 0, parent: -1, t: t}
	return s
}

// closeStragglers closes spans a dropped device access may have left open.
func closeStragglers(t *SpanTree, at sim.Time) {
	for i := 0; i < t.n; i++ {
		if s := t.at(int32(i)); s.End == spanOpen {
			s.End = at
		}
	}
}

// Finish closes a request's root span, classifies the tree, and offers it
// to the class's top-K heap; trees that don't make the cut are recycled.
func (tr *Tracer) Finish(root *Span, at sim.Time, degraded bool) {
	if tr == nil || root == nil {
		return
	}
	t := root.t
	root.End = at
	closeStragglers(t, at)
	t.Degraded = degraded
	t.Class = className(t.Write, degraded)
	dur := root.Duration()
	h := &tr.classes[classIndex(t.Write, degraded)]
	switch {
	case tr.topK <= 0:
		tr.recycle(t)
	case len(h.e) < tr.topK:
		h.push(dur, t)
	case dur > h.e[0].dur:
		tr.recycle(h.replaceMin(dur, t))
	default:
		tr.recycle(t)
	}
}

// FinishBackground closes a background tree and retains it in the bounded
// ring (newest win; overwrites count as dropped).
func (tr *Tracer) FinishBackground(root *Span, at sim.Time) {
	if tr == nil || root == nil {
		return
	}
	t := root.t
	root.End = at
	closeStragglers(t, at)
	if len(tr.bg) < tr.bgCap {
		tr.bg = append(tr.bg, t)
		return
	}
	tr.bgDropped++
	tr.recycle(tr.bg[tr.bgNext])
	tr.bg[tr.bgNext] = t
	tr.bgNext = (tr.bgNext + 1) % len(tr.bg)
}

// Requests returns the retained request trees, slowest first.
func (tr *Tracer) Requests() []*SpanTree {
	if tr == nil {
		return nil
	}
	var out []*SpanTree
	for i := range tr.classes {
		for _, e := range tr.classes[i].e {
			out = append(out, e.t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration() > out[j].Duration() })
	return out
}

// Background returns the retained background trees in start order.
func (tr *Tracer) Background() []*SpanTree {
	if tr == nil {
		return nil
	}
	out := append([]*SpanTree(nil), tr.bg...)
	sort.Slice(out, func(i, j int) bool { return out[i].Root().Start < out[j].Root().Start })
	return out
}

// BackgroundDropped counts background trees the bounded ring overwrote.
func (tr *Tracer) BackgroundDropped() int64 {
	if tr == nil {
		return 0
	}
	return tr.bgDropped
}

// SpanSample is one retained span tree annotated with the array that
// produced it, the unit core.Results carries and the exporters consume.
type SpanSample struct {
	Array int
	Tree  *SpanTree
}
