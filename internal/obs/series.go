package obs

import (
	"fmt"
	"io"
	"strings"

	"raidsim/internal/sim"
)

// Series is a snapshot of windowed time-series data: one entry per
// fixed-width window from t = 0. Merging per-array Series keeps the raw
// histograms, so system-level quantiles stay exact with respect to the
// binning (a p95 of merged histograms, not a mean of per-array p95s).
type Series struct {
	Window sim.Time
	Disks  int
	End    sim.Time
	// Classes names the workload client classes the per-class columns
	// cover; empty for classless runs (whose CSV output is unchanged).
	Classes []string

	wins []*window
}

// Point is one rendered window of a Series.
type Point struct {
	Start sim.Time
	End   sim.Time

	Requests      int64
	Reads, Writes int64
	ThroughputRPS float64 // completed requests per second of simulated time

	MeanMS, P50MS, P95MS, P99MS, MaxMS float64

	UtilMean float64 // mean per-disk busy fraction in the window
	UtilMax  float64 // busiest drive's fraction

	QueueMean float64 // time-sampled mean total queue depth
	DirtyFrac float64 // time-sampled mean cache dirty fraction

	Destages       int64 // destage batches issued
	DestagedBlocks int64
	RebuildBlocks  int64

	DegradedFrac float64 // fraction of the window spent degraded
	Degraded     bool    // any degraded time at all
	Steps        uint64  // engine events executed

	Timeouts  int64 // requests completing past their deadline
	Retries   int64 // transient-error retries issued
	Hedges    int64 // hedged read legs dispatched
	HedgeWins int64 // hedge legs that beat the primary
	Shed      int64 // requests rejected by admission control

	// Per-class completions, mean and p95 response (from the per-class
	// log-bucketed histograms), indexed like Series.Classes; nil on
	// classless series.
	ClassRequests []int64
	ClassMeanMS   []float64
	ClassP95MS    []float64
}

// Len returns the number of windows.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.wins)
}

// Merge folds o into s window by window (summing counters, merging
// histograms and busy time). The receiver is extended if o is longer.
// Merging series with different window widths is a programming error.
func (s *Series) Merge(o *Series) {
	if o == nil {
		return
	}
	if s.Window != o.Window {
		panic(fmt.Sprintf("obs: merging series with windows %d and %d", s.Window, o.Window))
	}
	if len(s.Classes) == 0 {
		s.Classes = o.Classes
	}
	for len(s.wins) < len(o.wins) {
		s.wins = append(s.wins, &window{})
	}
	s.Disks += o.Disks
	if o.End > s.End {
		s.End = o.End
	}
	for i, ow := range o.wins {
		w := s.wins[i]
		w.hist.Merge(&ow.hist)
		w.reads += ow.reads
		w.writes += ow.writes
		w.busy = append(w.busy, ow.busy...)
		w.queueSum += ow.queueSum
		w.queueN += ow.queueN
		w.dirtySum += ow.dirtySum
		w.dirtyN += ow.dirtyN
		w.destages += ow.destages
		w.destaged += ow.destaged
		w.rebuild += ow.rebuild
		w.degraded += ow.degraded
		w.steps += ow.steps
		w.timeouts += ow.timeouts
		w.retries += ow.retries
		w.hedges += ow.hedges
		w.hedgeWins += ow.hedgeWins
		w.shed += ow.shed
		if len(ow.clsN) > 0 {
			if len(w.clsN) < len(ow.clsN) {
				w.clsN = append(w.clsN, make([]int64, len(ow.clsN)-len(w.clsN))...)
				w.clsMS = append(w.clsMS, make([]float64, len(ow.clsMS)-len(w.clsMS))...)
				w.clsHist = append(w.clsHist, make([]Histogram, len(ow.clsHist)-len(w.clsHist))...)
			}
			for j := range ow.clsN {
				w.clsN[j] += ow.clsN[j]
				w.clsMS[j] += ow.clsMS[j]
			}
			for j := range ow.clsHist {
				w.clsHist[j].Merge(&ow.clsHist[j])
			}
		}
	}
}

// Points renders every window. The last window may be partial; its
// throughput and utilization use the true covered span.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	out := make([]Point, len(s.wins))
	for i, w := range s.wins {
		start := sim.Time(i) * s.Window
		end := start + s.Window
		if i == len(s.wins)-1 && s.End > start && s.End < end {
			end = s.End
		}
		span := end - start
		p := Point{
			Start: start, End: end,
			Requests: w.hist.N(), Reads: w.reads, Writes: w.writes,
			MeanMS: w.hist.Mean(),
			P50MS:  w.hist.Quantile(0.50),
			P95MS:  w.hist.Quantile(0.95),
			P99MS:  w.hist.Quantile(0.99),
			MaxMS:  w.hist.Max(),

			Destages: w.destages, DestagedBlocks: w.destaged,
			RebuildBlocks: w.rebuild,
			Degraded:      w.degraded > 0,
			Steps:         w.steps,

			Timeouts: w.timeouts, Retries: w.retries,
			Hedges: w.hedges, HedgeWins: w.hedgeWins, Shed: w.shed,
		}
		if n := len(s.Classes); n > 0 {
			p.ClassRequests = make([]int64, n)
			p.ClassMeanMS = make([]float64, n)
			p.ClassP95MS = make([]float64, n)
			for j := 0; j < n && j < len(w.clsN); j++ {
				p.ClassRequests[j] = w.clsN[j]
				if w.clsN[j] > 0 {
					p.ClassMeanMS[j] = w.clsMS[j] / float64(w.clsN[j])
				}
			}
			for j := 0; j < n && j < len(w.clsHist); j++ {
				p.ClassP95MS[j] = w.clsHist[j].Quantile(0.95)
			}
		}
		if span > 0 {
			p.ThroughputRPS = float64(p.Requests) / (float64(span) / float64(sim.Second))
			p.DegradedFrac = float64(w.degraded) / float64(span)
			var busySum, busyMax sim.Time
			for _, b := range w.busy {
				busySum += b
				if b > busyMax {
					busyMax = b
				}
			}
			if n := len(w.busy); n > 0 {
				p.UtilMean = float64(busySum) / float64(sim.Time(n)*span)
				p.UtilMax = float64(busyMax) / float64(span)
			}
		}
		if w.queueN > 0 {
			p.QueueMean = float64(w.queueSum) / float64(w.queueN)
		}
		if w.dirtyN > 0 {
			p.DirtyFrac = w.dirtySum / float64(w.dirtyN)
		}
		out[i] = p
	}
	return out
}

// csvHeader lists the CSV columns WriteCSV emits, in order.
var csvHeader = []string{
	"t_s", "requests", "reads", "writes", "throughput_rps",
	"mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
	"util_mean", "util_max", "queue_mean", "cache_dirty",
	"destages", "destaged_blocks", "rebuild_blocks", "degraded_frac", "events",
	"timeouts", "retries", "hedges", "hedge_wins", "shed",
}

// SeriesSchemaVersion identifies the series CSV format, written as a
// leading "# schema" comment line so downstream tooling can detect drift.
// Version 2 appended the robustness columns (timeouts..shed).
const SeriesSchemaVersion = "raidsim-series/2"

// SeriesSchemaVersionClasses is the schema when per-class columns are
// present (three trailing columns per workload client class: requests,
// mean, p95). Classless series keep emitting version 2 byte-for-byte.
// Version 4 added the per-class p95 column (version 3 had requests and
// mean only).
const SeriesSchemaVersionClasses = "raidsim-series/4"

// colName flattens a class name into a CSV column stem.
func colName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		}
		return '_'
	}, s)
}

// WriteCSV writes a schema comment, the header, then one window per row.
func (s *Series) WriteCSV(w io.Writer) error {
	schema, header := SeriesSchemaVersion, csvHeader
	if len(s.Classes) > 0 {
		schema = SeriesSchemaVersionClasses
		header = append([]string(nil), csvHeader...)
		for _, c := range s.Classes {
			header = append(header, colName(c)+"_requests", colName(c)+"_mean_ms", colName(c)+"_p95_ms")
		}
	}
	if _, err := fmt.Fprintf(w, "# schema %s\n", schema); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, p := range s.Points() {
		_, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f,%.2f,%.4f,%d,%d,%d,%.3f,%d,%d,%d,%d,%d,%d",
			float64(p.Start)/float64(sim.Second),
			p.Requests, p.Reads, p.Writes, p.ThroughputRPS,
			p.MeanMS, p.P50MS, p.P95MS, p.P99MS, p.MaxMS,
			p.UtilMean, p.UtilMax, p.QueueMean, p.DirtyFrac,
			p.Destages, p.DestagedBlocks, p.RebuildBlocks, p.DegradedFrac, p.Steps,
			p.Timeouts, p.Retries, p.Hedges, p.HedgeWins, p.Shed)
		if err != nil {
			return err
		}
		for j := range s.Classes {
			if _, err := fmt.Fprintf(w, ",%d,%.3f,%.3f", p.ClassRequests[j], p.ClassMeanMS[j], p.ClassP95MS[j]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
