package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"raidsim/internal/sim"
)

// SpanSchemaVersion identifies the span export format, carried in both
// the Chrome JSON envelope and the CSV header so downstream tooling can
// detect drift.
const SpanSchemaVersion = "raidsim-spans/1"

// chromeEvent is one Chrome trace-event ("X" complete events for spans,
// "M" metadata events for process/thread names); ts and dur are in
// microseconds, the format Perfetto loads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	Schema      string        `json:"schema"`
	DisplayUnit string        `json:"displayTimeUnit"`
	Events      []chromeEvent `json:"traceEvents"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteSpansChrome exports span trees as Chrome trace-event JSON: one
// process per array, one thread lane per tree (request lanes first, then
// background lanes), parentage recoverable from nesting and from each
// event's "parent" arg.
func WriteSpansChrome(w io.Writer, samples []SpanSample) error {
	tr := chromeTrace{Schema: SpanSchemaVersion, DisplayUnit: "ms"}
	procs := map[int]bool{}
	tid := 0
	for _, sm := range samples {
		t := sm.Tree
		tid++
		if !procs[sm.Array] {
			procs[sm.Array] = true
			tr.Events = append(tr.Events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: sm.Array,
				Args: map[string]any{"name": fmt.Sprintf("array %d", sm.Array)},
			})
		}
		lane := fmt.Sprintf("%05d %s @%.3fms", tid, t.Class, sim.Millis(t.Root().Start))
		tr.Events = append(tr.Events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: sm.Array, Tid: tid,
			Args: map[string]any{"name": lane},
		})
		for _, s := range t.Spans() {
			args := map[string]any{}
			if s.parent >= 0 {
				args["parent"] = t.at(s.parent).Name
			} else {
				args["class"] = t.Class
			}
			if s.Disk >= 0 {
				args["disk"] = s.Disk
			}
			if s.Blocks > 0 {
				args["blocks"] = s.Blocks
			}
			tr.Events = append(tr.Events, chromeEvent{
				Name: s.Name, Ph: "X",
				Ts: usec(s.Start), Dur: usec(s.Duration()),
				Pid: sm.Array, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// spanCSVHeader lists the flat-CSV columns, one row per span.
var spanCSVHeader = "array,tree,background,class,span,parent,name,disk,blocks,start_ms,dur_ms"

// WriteSpansCSV exports span trees as flat CSV, one row per span, with a
// leading "# schema" comment line. parent is the span index within the
// same tree (-1 for roots).
func WriteSpansCSV(w io.Writer, samples []SpanSample) error {
	if _, err := fmt.Fprintf(w, "# schema %s\n%s\n", SpanSchemaVersion, spanCSVHeader); err != nil {
		return err
	}
	for ti, sm := range samples {
		t := sm.Tree
		bg := 0
		if t.Background {
			bg = 1
		}
		for _, s := range t.Spans() {
			_, err := fmt.Fprintf(w, "%d,%d,%d,%s,%d,%d,%s,%d,%d,%.4f,%.4f\n",
				sm.Array, ti, bg, t.Class, s.idx, s.parent, s.Name, s.Disk, s.Blocks,
				sim.Millis(s.Start), sim.Millis(s.Duration()))
			if err != nil {
				return err
			}
		}
	}
	return nil
}
