package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"raidsim/internal/sim"
)

// TestFleetLifecycle walks runs through started→finished states and
// checks every aggregate the registry derives.
func TestFleetLifecycle(t *testing.T) {
	l := NewLive()
	l.SetFleet(4)
	l.RunStarted("a", "g1", 1, 0)
	l.RunStarted("b", "g1", 2, 1)
	l.RunFinished(RunStatus{ID: "a", Group: "g1", State: "done", WallMS: 10, Events: 1000, Requests: 100, MeanMS: 2})
	l.RunFinished(RunStatus{ID: "b", Group: "g1", State: "done", WallMS: 10, Events: 3000, Requests: 300, MeanMS: 4})
	l.RunFinished(RunStatus{ID: "c", Group: "g2", State: "resumed", Events: 500, Requests: 50, MeanMS: 1})
	l.RunStarted("d", "g2", 4, 0)
	l.RunFinished(RunStatus{ID: "d", Group: "g2", State: "failed", Err: "boom"})
	l.PublishWorkers([]WorkerStatus{{Worker: 1, Tasks: 1, Steals: 1, BusyNS: 5e6}, {Worker: 0, Tasks: 2, BusyNS: 1e7}})

	f := l.Fleet()
	if f.Total != 4 || f.Finished != 2 || f.Failed != 1 || f.Resumed != 1 || f.Running != 0 {
		t.Fatalf("fleet counters: %+v", f)
	}
	if f.Done() != 4 {
		t.Errorf("Done() = %d, want 4", f.Done())
	}
	if f.Events != 4500 {
		t.Errorf("events %d, want 4500 (failed runs excluded)", f.Events)
	}
	if f.EngineBusyNS != 2e7 {
		t.Errorf("busy %d ns, want 2e7", f.EngineBusyNS)
	}
	if len(f.Workers) != 2 || f.Workers[0].Worker != 0 || f.Workers[1].Steals != 1 {
		t.Errorf("workers: %+v", f.Workers)
	}
	if len(f.Groups) != 2 || f.Groups[0].Group != "g1" {
		t.Fatalf("groups: %+v", f.Groups)
	}
	// g1 request-weighted mean: (2*100 + 4*300) / 400 = 3.5
	if g := f.Groups[0]; g.Runs != 2 || g.Requests != 400 || g.MeanMS != 3.5 {
		t.Errorf("g1 aggregate: %+v", g)
	}

	runs := l.Runs()
	if len(runs) != 4 {
		t.Fatalf("Runs() returned %d entries, want 4", len(runs))
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if runs[i].ID != want {
			t.Errorf("runs[%d].ID = %q, want %q (sorted)", i, runs[i].ID, want)
		}
	}
	if runs[3].State != "failed" || runs[3].Err != "boom" {
		t.Errorf("failed run status: %+v", runs[3])
	}
	// Finished runs derive events/sec from wall time.
	if runs[0].EventsPerSec != 1000/(10e-3) {
		t.Errorf("run a events/sec = %g, want 1e5", runs[0].EventsPerSec)
	}
}

// TestFleetFreshAccounting pins the resume-honest split the progress
// line depends on: journal replays fold into the total event counter but
// never into the fresh counters, and the fresh rate clock starts at the
// first RunStarted (after the replay pass), not at SetFleet.
func TestFleetFreshAccounting(t *testing.T) {
	l := NewLive()
	l.SetFleet(3)
	// Replay pass: two resumed runs, no RunStarted.
	l.RunFinished(RunStatus{ID: "r1", Group: "g", State: "resumed", Events: 500_000, Requests: 50})
	l.RunFinished(RunStatus{ID: "r2", Group: "g", State: "resumed", Events: 500_000, Requests: 50})
	f := l.Fleet()
	if f.FreshEvents != 0 || f.FreshEventsPerSec != 0 || f.ExecElapsedSec != 0 {
		t.Fatalf("replays leaked into fresh accounting: %+v", f)
	}
	if f.Events != 1_000_000 {
		t.Errorf("replayed events %d, want 1000000 in the journal-inclusive total", f.Events)
	}
	// One fresh execution.
	l.RunStarted("x", "g", 1, 0)
	l.RunFinished(RunStatus{ID: "x", Group: "g", State: "done", WallMS: 2, Events: 700, Requests: 10})
	f = l.Fleet()
	if f.FreshEvents != 700 {
		t.Errorf("fresh events %d, want 700", f.FreshEvents)
	}
	if f.ExecElapsedSec <= 0 {
		t.Errorf("exec clock never started: %+v", f)
	}
	if f.FreshEventsPerSec > 1e9 {
		t.Errorf("fresh rate %g absurd: replayed events must not feed it", f.FreshEventsPerSec)
	}
}

// TestFleetShardAccounting: AddShards accumulates element-wise across
// runs, grows on demand, ignores empty slices, and surfaces both in
// Fleet() and as the raidsim_fleet_shard_* metric families.
func TestFleetShardAccounting(t *testing.T) {
	l := NewLive()
	l.SetFleet(2)
	l.AddShards(nil)
	if f := l.Fleet(); len(f.Shards) != 0 {
		t.Fatalf("nil AddShards published shards: %+v", f.Shards)
	}
	l.AddShards([]sim.MeterStats{{Events: 100, WallNS: 1e6}, {Events: 200, WallNS: 2e6}})
	l.AddShards([]sim.MeterStats{{Events: 50, WallNS: 1e6}, {Events: 60, WallNS: 1e6}, {Events: 70, WallNS: 3e6}})
	f := l.Fleet()
	if len(f.Shards) != 3 {
		t.Fatalf("shards: %+v", f.Shards)
	}
	want := []ShardStatus{{0, 150, 2e6}, {1, 260, 3e6}, {2, 70, 3e6}}
	for i, w := range want {
		if f.Shards[i] != w {
			t.Errorf("shard %d = %+v, want %+v", i, f.Shards[i], w)
		}
	}
	var b strings.Builder
	l.WriteMetrics(&b)
	for _, wantLine := range []string{
		`raidsim_fleet_shard_events_total{shard="0"} 150`,
		`raidsim_fleet_shard_events_total{shard="2"} 70`,
		`raidsim_fleet_shard_busy_seconds{shard="1"} 0.003`,
	} {
		if !strings.Contains(b.String(), wantLine) {
			t.Errorf("metrics missing %q:\n%s", wantLine, b.String())
		}
	}
}

// TestFleetConcurrentPublish hammers the registry from many goroutines
// (the campaign worker-pool shape) while readers render metrics and run
// lists; run under -race this is the data-race check the fleet registry
// is specified against.
func TestFleetConcurrentPublish(t *testing.T) {
	l := NewLive()
	const workers, runsPer = 8, 50
	l.SetFleet(workers * runsPer)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < runsPer; i++ {
				id := fmt.Sprintf("w%d-r%03d", w, i)
				l.RunStarted(id, fmt.Sprintf("g%d", i%4), uint64(i), w)
				l.RunFinished(RunStatus{
					ID: id, Group: fmt.Sprintf("g%d", i%4), Worker: w,
					State: "done", WallMS: 1, Events: 100, Requests: 10, MeanMS: 2,
				})
				l.PublishWorkers([]WorkerStatus{{Worker: w, Tasks: i + 1}})
			}
		}(w)
	}
	// Concurrent readers: the HTTP server's view.
	done := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-done:
					return
				default:
					l.WriteMetrics(io.Discard)
					_ = l.Runs()
					_ = l.Fleet()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	rg.Wait()

	f := l.Fleet()
	if f.Finished != workers*runsPer {
		t.Errorf("finished %d, want %d", f.Finished, workers*runsPer)
	}
	if f.Events != uint64(workers*runsPer*100) {
		t.Errorf("events %d, want %d", f.Events, workers*runsPer*100)
	}
	if len(l.Runs()) != workers*runsPer {
		t.Errorf("tracked %d runs, want %d", len(l.Runs()), workers*runsPer)
	}
}

// TestFleetMetricsAndRuns checks the HTTP surface: fleet families appear
// in /metrics only once fleet traffic exists, and /runs serves JSON.
func TestFleetMetricsAndRuns(t *testing.T) {
	l := NewLive()
	var b strings.Builder
	l.WriteMetrics(&b)
	if strings.Contains(b.String(), "raidsim_fleet_") {
		t.Errorf("fleet families rendered with no fleet traffic:\n%s", b.String())
	}

	l.SetFleet(2)
	l.RunFinished(RunStatus{ID: "x", Group: "n=5", State: "done", WallMS: 5, Events: 200, Requests: 20, MeanMS: 7})
	l.PublishWorkers([]WorkerStatus{{Worker: 0, Tasks: 1, BusyNS: 5e6}})
	b.Reset()
	l.WriteMetrics(&b)
	for _, want := range []string{
		"raidsim_fleet_runs_total{state=\"done\"} 1",
		"raidsim_fleet_runs_planned 2",
		"raidsim_fleet_events_total 200",
		"raidsim_fleet_worker_tasks_total{worker=\"0\"} 1",
		"raidsim_group_requests_total{group=\"n=5\"} 20",
		"raidsim_group_response_ms{group=\"n=5\",stat=\"mean\"} 7",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, b.String())
		}
	}

	srv, err := Serve("127.0.0.1:0", l)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/runs content type %q", ct)
	}
	for _, want := range []string{`"id": "x"`, `"state": "done"`, `"total": 2`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/runs missing %q:\n%s", want, body)
		}
	}
}
