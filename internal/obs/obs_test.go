package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"raidsim/internal/rng"
	"raidsim/internal/sim"
)

// TestHistogramQuantileErrorBounds checks the documented guarantee: any
// quantile estimate is within sqrt(growth)-1 relative error of the exact
// order statistic, across distributions with very different shapes.
func TestHistogramQuantileErrorBounds(t *testing.T) {
	bound := math.Sqrt(histGrowth) - 1
	src := rng.New(7)
	dists := map[string]func() float64{
		"uniform": func() float64 { return 0.1 + 99.9*src.Float64() },
		"exp-ish": func() float64 { return -20 * math.Log(1-src.Float64()) },
		"lognormal": func() float64 {
			return math.Exp(3 + 1.2*math.Sqrt(-2*math.Log(1-src.Float64()))*math.Cos(2*math.Pi*src.Float64()))
		},
	}
	for name, draw := range dists {
		var h Histogram
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = draw()
			h.Add(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
			got := h.Quantile(q)
			if rel := math.Abs(got-exact) / exact; rel > bound+1e-9 {
				t.Errorf("%s q%.2f: got %.4f exact %.4f rel err %.4f > bound %.4f",
					name, q, got, exact, rel, bound)
			}
		}
		if h.Max() != samples[len(samples)-1] {
			t.Errorf("%s: max %.4f, want exact %.4f", name, h.Max(), samples[len(samples)-1])
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read all-zero")
	}
	h.Add(0)   // below histLo folds into bin 0
	h.Add(1e9) // far past the last bin
	h.Add(-3)  // negative folds into bin 0 too
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Fatalf("q1.0 = %g, want clamped exact max 1e9", got)
	}
	var o Histogram
	o.Add(50)
	h.Merge(&o)
	if h.N() != 4 || h.Max() != 1e9 {
		t.Fatalf("after merge: n=%d max=%g", h.N(), h.Max())
	}
}

// TestWindowRollover checks samples land in the window their timestamp
// selects, that busy intervals split exactly across boundaries, and that
// the last (partial) window normalizes by its covered span.
func TestWindowRollover(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 2})
	// Requests: two in window 0, one exactly on the boundary (window 1).
	r.Request(100*sim.Millisecond, false, 5)
	r.Request(999*sim.Millisecond, true, 7)
	r.Request(1*sim.Second, false, 9)
	// A busy interval spanning [0.5s, 2.5s): 0.5s in w0, 1s in w1, 0.5s in w2.
	r.DiskBusy(0, 500*sim.Millisecond, 2500*sim.Millisecond)
	pts := r.Series().Points()
	if len(pts) != 3 {
		t.Fatalf("got %d windows, want 3", len(pts))
	}
	if pts[0].Requests != 2 || pts[0].Reads != 1 || pts[0].Writes != 1 {
		t.Errorf("w0 requests = %d (%d r, %d w), want 2 (1, 1)", pts[0].Requests, pts[0].Reads, pts[0].Writes)
	}
	if pts[1].Requests != 1 {
		t.Errorf("boundary request landed in the wrong window: w1 has %d", pts[1].Requests)
	}
	// Utilization: per-disk mean over 2 disks → busy/(2*window).
	wantU := []float64{0.25, 0.5, 0.5}
	for i, want := range wantU {
		if math.Abs(pts[i].UtilMean-want) > 1e-9 {
			t.Errorf("w%d util %.4f, want %.4f", i, pts[i].UtilMean, want)
		}
	}
	// w2 is partial (covers only [2s, 2.5s)): its busiest disk is saturated.
	if math.Abs(pts[2].UtilMax-1.0) > 1e-9 {
		t.Errorf("partial window util max %.4f, want 1.0", pts[2].UtilMax)
	}
	if pts[2].End != 2500*sim.Millisecond {
		t.Errorf("partial window end %d, want 2.5s", pts[2].End)
	}
}

func TestDegradedAttribution(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 1})
	r.Degraded(1500*sim.Millisecond, true)
	r.Degraded(3500*sim.Millisecond, false)
	pts := r.Series().Points()
	// w3 is partial (observed span ends at 3.5 s), so its covered span
	// was entirely degraded: frac 1.0, not 0.5.
	want := []float64{0, 0.5, 1, 1}
	for i, p := range pts {
		if math.Abs(p.DegradedFrac-want[i]) > 1e-9 {
			t.Errorf("w%d degraded frac %.3f, want %.3f", i, p.DegradedFrac, want[i])
		}
	}
	// A snapshot with the window still open closes it at the last
	// observed time without losing the tail on a later snapshot.
	r2 := NewRecorder(Config{Window: sim.Second, Disks: 1})
	r2.Degraded(0, true)
	r2.Request(2*sim.Second, false, 1) // advances the observed end
	if got := r2.Series().Points()[1].DegradedFrac; math.Abs(got-1) > 1e-9 {
		t.Errorf("open degraded window: w1 frac %.3f, want 1.0", got)
	}
}

// TestRingWraparound fills the bounded trace past capacity and checks the
// survivors are the newest events, in chronological order.
func TestRingWraparound(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 1, TraceCap: 8})
	for i := 0; i < 20; i++ {
		r.Request(sim.Time(i)*sim.Millisecond, false, float64(i))
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := float64(12 + i); e.MS != want {
			t.Errorf("event %d: ms %.0f, want %.0f (newest 8, in order)", i, e.MS, want)
		}
	}
	if r.EventsDropped() != 12 {
		t.Errorf("dropped %d, want 12", r.EventsDropped())
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("JSONL has %d lines, want schema + 8 events", len(lines))
	}
	if !strings.Contains(lines[0], EventSchemaVersion) {
		t.Errorf("JSONL schema line missing: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"request"`) {
		t.Errorf("JSONL line lacks kind: %s", lines[1])
	}
}

// TestNilRecorder: every probe must be safe (and free) on a nil receiver.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Request(0, false, 1)
	r.DiskBusy(0, 0, sim.Second)
	r.Sample(0, 3, 0.5, 10)
	r.Destage(0, 4)
	r.RebuildIO(0, 48)
	r.Degraded(0, true)
	r.Note(Event{Kind: EvDiskFail})
	if r.Events() != nil || r.EventsDropped() != 0 || r.Series() != nil {
		t.Fatal("nil recorder must read empty")
	}
	if r.Window() != DefaultWindow {
		t.Fatalf("nil recorder window %d, want DefaultWindow", r.Window())
	}
}

func TestSeriesMerge(t *testing.T) {
	a := NewRecorder(Config{Window: sim.Second, Disks: 2})
	b := NewRecorder(Config{Window: sim.Second, Disks: 3})
	a.Request(100*sim.Millisecond, false, 10)
	a.DiskBusy(0, 0, sim.Second)
	b.Request(200*sim.Millisecond, true, 30)
	b.Request(1200*sim.Millisecond, false, 20)
	b.Sample(300*sim.Millisecond, 6, 0.5, 100)

	s := a.Series()
	s.Merge(b.Series())
	if s.Disks != 5 {
		t.Fatalf("merged disks %d, want 5", s.Disks)
	}
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("merged windows %d, want 2", len(pts))
	}
	if pts[0].Requests != 2 || pts[1].Requests != 1 {
		t.Errorf("merged request counts %d/%d, want 2/1", pts[0].Requests, pts[1].Requests)
	}
	// Merged mean is exact: (10 + 30) / 2.
	if math.Abs(pts[0].MeanMS-20) > 1e-9 {
		t.Errorf("merged mean %.3f, want 20", pts[0].MeanMS)
	}
	// Merged utilization spans all five disks: 1s busy / (5 disks * 1s).
	if math.Abs(pts[0].UtilMean-0.2) > 1e-9 {
		t.Errorf("merged util %.4f, want 0.2", pts[0].UtilMean)
	}
	if pts[0].QueueMean != 6 || pts[0].DirtyFrac != 0.5 {
		t.Errorf("merged samples: queue %.1f dirty %.2f, want 6 and 0.5", pts[0].QueueMean, pts[0].DirtyFrac)
	}
}

func TestSeriesCSV(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 1})
	r.Request(100*sim.Millisecond, false, 10)
	r.Destage(500*sim.Millisecond, 16)
	var buf bytes.Buffer
	if err := r.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want schema + header + 1 window", len(lines))
	}
	if lines[0] != "# schema "+SeriesSchemaVersion {
		t.Errorf("schema line mismatch: %s", lines[0])
	}
	if lines[1] != strings.Join(csvHeader, ",") {
		t.Errorf("header mismatch: %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0.000,1,1,0,") {
		t.Errorf("row mismatch: %s", lines[2])
	}
	if !strings.Contains(lines[2], ",16,") { // destaged blocks column
		t.Errorf("destaged blocks missing from row: %s", lines[2])
	}
}

// TestSamplerStepsDelta: cumulative engine step counts convert to
// per-window deltas.
func TestSamplerStepsDelta(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 1})
	r.Sample(250*sim.Millisecond, 0, 0, 100)
	r.Sample(750*sim.Millisecond, 0, 0, 180)
	r.Sample(1250*sim.Millisecond, 0, 0, 300)
	pts := r.Series().Points()
	if pts[0].Steps != 180 || pts[1].Steps != 120 {
		t.Errorf("step deltas %d/%d, want 180/120", pts[0].Steps, pts[1].Steps)
	}
}

// TestWindowCapBounded: a pathological timestamp cannot allocate more
// than maxWindows windows.
func TestWindowCapBounded(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Millisecond, Disks: 1})
	r.Request(sim.Time(maxWindows+100)*sim.Millisecond, false, 1)
	if n := r.Series().Len(); n != maxWindows {
		t.Fatalf("windows %d, want capped at %d", n, maxWindows)
	}
}

var _ = fmt.Sprintf
