package obs

import (
	"encoding/json"
	"io"

	"raidsim/internal/sim"
)

// Event is one entry of the bounded event trace: a timestamped, typed
// record of something worth seeing on a timeline — a request completion,
// a destage batch, a disk failure, a rebuild milestone. Zero-valued
// fields are omitted from the JSONL export.
type Event struct {
	At     sim.Time `json:"t_ns"`
	Kind   string   `json:"kind"`
	Array  int      `json:"array"`
	Disk   int      `json:"disk,omitempty"`
	Blocks int      `json:"blocks,omitempty"`
	MS     float64  `json:"ms,omitempty"`
	Write  bool     `json:"write,omitempty"`
	Class  int      `json:"class,omitempty"`
}

// Event kinds emitted by the built-in probes.
const (
	EvRequest     = "request"      // a logical request completed (MS = response)
	EvDestage     = "destage"      // a periodic destage batch was issued (Blocks)
	EvDiskFail    = "disk-fail"    // slot Disk died
	EvSpareSwap   = "spare-swap"   // a hot spare replaced slot Disk
	EvRebuildDone = "rebuild-done" // the rebuild sweep of slot Disk finished
	EvCacheFail   = "cache-fail"   // the NVRAM cache died (Blocks = dirty lost)
	EvDataLoss    = "data-loss"    // an unrecoverable failure lost data
	EvTimeout     = "timeout"      // a request finished past its deadline (MS = response)
	EvRetry       = "retry"        // a transient read error triggered a retry on slot Disk
	EvHedge       = "hedge-issued" // a hedged read leg was dispatched to slot Disk
	EvHedgeWin    = "hedge-won"    // the hedge leg finished first (MS = saved estimate)
	EvShed        = "shed"         // admission control rejected a request (Class)
	EvSickOnset   = "sick-onset"   // slot Disk turned sick (slow/flaky/hanging)
	EvSickClear   = "sick-clear"   // slot Disk recovered from sickness
)

// ring is a fixed-capacity circular event buffer: the newest TraceCap
// events survive, older ones are overwritten.
type ring struct {
	buf     []Event
	next    int
	total   int64 // events ever appended
	dropped int64
}

func newRing(cap int) *ring {
	return &ring{buf: make([]Event, 0, cap)}
}

func (r *ring) append(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.dropped++
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// events returns the retained events in chronological order.
func (r *ring) events() []Event {
	if len(r.buf) < cap(r.buf) || r.next == 0 {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// EventSchemaVersion identifies the JSONL event export format; the first
// exported line carries it so downstream tooling can detect drift.
const EventSchemaVersion = "raidsim-events/1"

// WriteJSONL writes a schema line, then events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Schema string `json:"schema"`
	}{EventSchemaVersion}); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
