package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// ArraySnapshot is one array's state as of its latest sampler tick, the
// unit the live introspection server renders. Window statistics cover the
// current (partial) window.
type ArraySnapshot struct {
	Array          int
	SimSeconds     float64
	Reads          int64 // completed read requests, cumulative
	Writes         int64 // completed write requests, cumulative
	QueueDepth     int   // requests waiting in disk queues now
	DirtyFrac      float64
	Degraded       bool
	Rebuilding     bool
	RebuildDisk    int
	RebuildFrac    float64
	WindowRequests int64
	WindowMeanMS   float64
	WindowP95MS    float64
	UtilMean       float64 // mean disk busy fraction over the current window
	Events         uint64  // engine events executed, cumulative
}

// Live is the thread-safe registry the introspection HTTP server reads:
// each array's recorder publishes a snapshot on its sampler tick, from its
// own simulation goroutine, while the server goroutine renders them. A
// campaign additionally publishes fleet-wide state (run lifecycle, worker
// occupancy, aggregate engine throughput) through the methods in fleet.go.
type Live struct {
	mu     sync.Mutex
	arrays map[int]ArraySnapshot

	// Fleet state (fleet.go). Armed by SetFleet; zero until then.
	fleetTotal int
	fleetStart time.Time
	// execStart is when the first fresh run started: journal replays
	// finish in microseconds before execution begins, so rates and ETAs
	// extrapolated from fresh runs measure from here, not fleetStart.
	execStart   time.Time
	runs        map[string]RunStatus
	workers     []WorkerStatus
	shards      []ShardStatus
	started     int
	finished    int
	failed      int
	resumed     int
	events      uint64
	freshEvents uint64
	busyNS      int64
	groups      map[string]*groupAgg
}

// NewLive returns an empty registry.
func NewLive() *Live { return &Live{arrays: map[int]ArraySnapshot{}} }

// Publish stores the snapshot (keyed by its Array field).
func (l *Live) Publish(s ArraySnapshot) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.arrays[s.Array] = s
	l.mu.Unlock()
}

// Snapshots returns the latest snapshot of every array, ordered by array.
func (l *Live) Snapshots() []ArraySnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]ArraySnapshot, 0, len(l.arrays))
	for _, s := range l.arrays {
		out = append(out, s)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Array < out[j].Array })
	return out
}

// promMetric describes one exposed metric family.
type promMetric struct {
	name, typ, help string
	rows            func(w io.Writer, s ArraySnapshot)
}

// WriteMetrics renders every array's latest snapshot in Prometheus text
// exposition format.
func (l *Live) WriteMetrics(w io.Writer) {
	snaps := l.Snapshots()
	families := []promMetric{
		{"raidsim_sim_seconds", "gauge", "Simulated time reached by the array.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_sim_seconds{array=\"%d\"} %g\n", s.Array, s.SimSeconds)
			}},
		{"raidsim_requests_total", "counter", "Completed logical requests by direction.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_requests_total{array=\"%d\",op=\"read\"} %d\n", s.Array, s.Reads)
				fmt.Fprintf(w, "raidsim_requests_total{array=\"%d\",op=\"write\"} %d\n", s.Array, s.Writes)
			}},
		{"raidsim_queue_depth", "gauge", "Requests waiting in the array's disk queues.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_queue_depth{array=\"%d\"} %d\n", s.Array, s.QueueDepth)
			}},
		{"raidsim_cache_dirty_fraction", "gauge", "Dirty fraction of the NV cache (0 when uncached).",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_cache_dirty_fraction{array=\"%d\"} %g\n", s.Array, s.DirtyFrac)
			}},
		{"raidsim_degraded", "gauge", "1 while any slot of the array is unreadable.",
			func(w io.Writer, s ArraySnapshot) {
				v := 0
				if s.Degraded {
					v = 1
				}
				fmt.Fprintf(w, "raidsim_degraded{array=\"%d\"} %d\n", s.Array, v)
			}},
		{"raidsim_rebuild_progress", "gauge", "Fraction of the failed slot reconstructed onto its spare.",
			func(w io.Writer, s ArraySnapshot) {
				if !s.Rebuilding {
					return
				}
				fmt.Fprintf(w, "raidsim_rebuild_progress{array=\"%d\",disk=\"%d\"} %g\n",
					s.Array, s.RebuildDisk, s.RebuildFrac)
			}},
		{"raidsim_window_requests", "gauge", "Requests completed in the current window.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_window_requests{array=\"%d\"} %d\n", s.Array, s.WindowRequests)
			}},
		{"raidsim_window_response_ms", "gauge", "Response time over the current window.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_window_response_ms{array=\"%d\",stat=\"mean\"} %g\n", s.Array, s.WindowMeanMS)
				fmt.Fprintf(w, "raidsim_window_response_ms{array=\"%d\",stat=\"p95\"} %g\n", s.Array, s.WindowP95MS)
			}},
		{"raidsim_disk_util", "gauge", "Mean disk busy fraction over the current window.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_disk_util{array=\"%d\"} %g\n", s.Array, s.UtilMean)
			}},
		{"raidsim_engine_events_total", "counter", "Discrete-event engine events executed.",
			func(w io.Writer, s ArraySnapshot) {
				fmt.Fprintf(w, "raidsim_engine_events_total{array=\"%d\"} %d\n", s.Array, s.Events)
			}},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range snaps {
			f.rows(w, s)
		}
	}
	l.writeFleetMetrics(w)
}
