package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"raidsim/internal/sim"
)

// TestClassSeriesP95 drives a two-class recorder with a known latency
// spread and checks the per-class quantiles come from each class's own
// histogram, within the binning's relative error bound.
func TestClassSeriesP95(t *testing.T) {
	r := NewRecorder(Config{Window: sim.Second, Disks: 1, Classes: []string{"oltp", "batch"}})
	// Class 0: 99 fast + 1 slow — p95 sits in the fast cluster.
	// Class 1: uniform slow.
	for i := 0; i < 99; i++ {
		r.Request(sim.Millisecond, false, 5)
		r.ClassRequest(sim.Millisecond, 0, 5)
	}
	r.Request(sim.Millisecond, false, 500)
	r.ClassRequest(sim.Millisecond, 0, 500)
	for i := 0; i < 10; i++ {
		r.Request(sim.Millisecond, true, 80)
		r.ClassRequest(sim.Millisecond, 1, 80)
	}
	pts := r.Series().Points()
	if len(pts) != 1 {
		t.Fatalf("windows %d, want 1", len(pts))
	}
	p := pts[0]
	if p.ClassRequests[0] != 100 || p.ClassRequests[1] != 10 {
		t.Fatalf("class counts %v", p.ClassRequests)
	}
	// Binning error bound: |est/true - 1| <= sqrt(1.08)-1 ≈ 3.9%.
	if got := p.ClassP95MS[0]; math.Abs(got/5-1) > 0.05 {
		t.Errorf("class 0 p95 %.3f, want ~5 (fast cluster)", got)
	}
	if got := p.ClassP95MS[1]; math.Abs(got/80-1) > 0.05 {
		t.Errorf("class 1 p95 %.3f, want ~80", got)
	}
	// The aggregate p95 differs from both classes' (it straddles the mix),
	// which is exactly why the per-class column exists.
	if p.P95MS == p.ClassP95MS[1] && p.P95MS == p.ClassP95MS[0] {
		t.Errorf("aggregate p95 %.3f indistinguishable from both class p95s", p.P95MS)
	}
}

// TestClassSeriesCSVSchema checks the classed CSV carries the v4 schema
// with a p95 column per class, and that merging preserves per-class
// histograms (quantiles of merged windows are histogram merges, not
// averages of quantiles).
func TestClassSeriesCSVSchema(t *testing.T) {
	mk := func(ms float64, n int) *Series {
		r := NewRecorder(Config{Window: sim.Second, Disks: 1, Classes: []string{"oltp"}})
		for i := 0; i < n; i++ {
			r.Request(sim.Millisecond, false, ms)
			r.ClassRequest(sim.Millisecond, 0, ms)
		}
		return r.Series()
	}
	s := mk(10, 30)
	s.Merge(mk(100, 70))

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "# schema "+SeriesSchemaVersionClasses {
		t.Errorf("schema line %q, want %q", lines[0], "# schema "+SeriesSchemaVersionClasses)
	}
	if !strings.HasSuffix(lines[1], ",oltp_requests,oltp_mean_ms,oltp_p95_ms") {
		t.Errorf("classed header missing p95 column: %s", lines[1])
	}
	// Merged class histogram: 30×10ms + 70×100ms → p95 ≈ 100.
	p := s.Points()[0]
	if p.ClassRequests[0] != 100 {
		t.Fatalf("merged class count %d, want 100", p.ClassRequests[0])
	}
	if math.Abs(p.ClassP95MS[0]/100-1) > 0.05 {
		t.Errorf("merged class p95 %.3f, want ~100", p.ClassP95MS[0])
	}
}
