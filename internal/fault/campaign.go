package fault

import (
	"fmt"

	"raidsim/internal/campaign/shard"
	"raidsim/internal/reliability"
	"raidsim/internal/rng"
)

// Scheme selects the redundancy group a campaign stresses.
type Scheme int

// Campaign schemes.
const (
	// MirrorPair is one mirrored pair: data is lost when both drives are
	// down at once.
	MirrorPair Scheme = iota
	// ParityArray is one N+1 parity group (RAID4, RAID5 or Parity
	// Striping): data is lost when any two of its drives are down at once.
	ParityArray
)

func (s Scheme) String() string {
	if s == MirrorPair {
		return "mirror-pair"
	}
	return "parity-array"
}

// CampaignConfig describes a Monte-Carlo time-to-data-loss campaign: many
// independent seeded lifetimes of one redundancy group under exponential
// drive failures and exponential repairs (the assumptions of the analytic
// Markov models in package reliability), measured until the first
// data-loss event.
type CampaignConfig struct {
	Scheme    Scheme
	N         int // data disks; ParityArray simulates N+1 drives, MirrorPair ignores it
	MTTFHours float64
	MTTRHours float64
	Runs      int
	Seed      uint64
	// Workers shards the runs across goroutines (0 = GOMAXPROCS). The
	// result is bit-identical for every worker count: per-run seeds are
	// drawn from one sequential stream up front, and the reduction walks
	// runs in index order.
	Workers int
}

// CampaignResult reports a campaign's empirical MTTDL next to the
// analytic predictions it should agree with.
type CampaignResult struct {
	Runs                int
	EmpiricalMTTDLHours float64
	// AnalyticMTTDLHours is the standard approximation the paper's
	// footnote uses (MTTF^2-over-repair-window form).
	AnalyticMTTDLHours float64
	// ExactMTTDLHours is the exact Markov-chain result; the empirical
	// mean converges to this as Runs grows.
	ExactMTTDLHours float64
	MinHours        float64
	MaxHours        float64
}

// Ratio returns empirical / exact — the figure of merit (1.0 is perfect
// agreement).
func (r *CampaignResult) Ratio() float64 {
	if r.ExactMTTDLHours == 0 {
		return 0
	}
	return r.EmpiricalMTTDLHours / r.ExactMTTDLHours
}

// RunCampaign measures the empirical MTTDL of the configured group over
// cfg.Runs independent seeded lifetimes.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("fault: campaign needs at least one run")
	}
	if cfg.MTTFHours <= 0 || cfg.MTTRHours <= 0 {
		return nil, fmt.Errorf("fault: campaign needs positive MTTF and MTTR")
	}
	disks := 2
	if cfg.Scheme == ParityArray {
		if cfg.N < 2 {
			return nil, fmt.Errorf("fault: parity campaign needs N >= 2")
		}
		disks = cfg.N + 1
	}
	p := reliability.Params{DiskMTTFHours: cfg.MTTFHours, MTTRHours: cfg.MTTRHours}
	res := &CampaignResult{Runs: cfg.Runs}
	if cfg.Scheme == MirrorPair {
		res.AnalyticMTTDLHours = reliability.MirrorPairMTTDLHours(p)
		res.ExactMTTDLHours = reliability.MirrorPairMTTDLHoursExact(p)
	} else {
		res.AnalyticMTTDLHours = reliability.ArrayMTTDLHours(p, cfg.N)
		res.ExactMTTDLHours = reliability.ArrayMTTDLHoursExact(p, cfg.N)
	}

	// Draw every run's seed from one sequential stream (Split() is
	// New(Uint64()), so this matches spawning each child in run order),
	// then shard the independent lifetimes across the pool.
	src := rng.New(cfg.Seed ^ 0xca3b_a16e_ca3b_a16e)
	seeds := make([]uint64, cfg.Runs)
	for run := range seeds {
		seeds[run] = src.Uint64()
	}
	times := make([]float64, cfg.Runs)
	shard.Map(cfg.Workers, cfg.Runs, func(run int) {
		times[run] = timeToDataLoss(rng.New(seeds[run]), disks, cfg.MTTFHours, cfg.MTTRHours)
	})
	var sum float64
	for run, t := range times {
		sum += t
		if run == 0 || t < res.MinHours {
			res.MinHours = t
		}
		if t > res.MaxHours {
			res.MaxHours = t
		}
	}
	res.EmpiricalMTTDLHours = sum / float64(cfg.Runs)
	return res, nil
}

// timeToDataLoss simulates one group lifetime: every drive alternates
// alive (exponential MTTF) and under-repair (exponential MTTR); the run
// ends the instant a second drive dies while another is still down.
func timeToDataLoss(src *rng.Source, disks int, mttf, mttr float64) float64 {
	next := make([]float64, disks) // next state-change time per drive
	down := make([]bool, disks)
	for d := range next {
		next[d] = src.Exp(mttf)
	}
	failed := 0
	for {
		// Advance to the earliest state change.
		d := 0
		for i := 1; i < disks; i++ {
			if next[i] < next[d] {
				d = i
			}
		}
		t := next[d]
		if down[d] {
			// Repair completes.
			down[d] = false
			failed--
			next[d] = t + src.Exp(mttf)
			continue
		}
		down[d] = true
		failed++
		if failed >= 2 {
			return t
		}
		next[d] = t + src.Exp(mttr)
	}
}
