// Package fault is the simulator's fault-injection subsystem. It turns
// "what if a drive dies mid-run?" into a first-class, deterministic part
// of a simulation: disk failures scheduled at fixed times or drawn from
// an exponential MTTF process, latent sector errors sampled per media
// read, and NVRAM cache failure. The injector only decides *when* faults
// happen; *what* a fault means — degraded reads, single-copy writes,
// hot-spare rebuild — is the array controller's job (package array),
// reached through the Handler interface.
//
// Determinism: every stochastic decision comes from dedicated rng streams
// derived from Config.Seed, independent of the request path, and all
// events run on the array's single-threaded sim.Engine. The same seed and
// workload therefore produce bit-identical results, failures included.
package fault

import (
	"fmt"
	"math"

	"raidsim/internal/rng"
	"raidsim/internal/sim"
)

// DiskFail is one deterministic failure: disk Disk dies at time At.
// At == 0 models a pre-failed array (the drive is dead before the first
// request arrives).
type DiskFail struct {
	Disk int
	At   sim.Time
}

// Config describes a fault campaign against one array. The zero value
// injects nothing.
type Config struct {
	// DiskFails are deterministic failure events.
	DiskFails []DiskFail
	// MTTF, when positive, gives every drive an independent exponential
	// lifetime with this mean; a replacement (hot spare swapped in after
	// rebuild) draws a fresh lifetime.
	MTTF sim.Time
	// CacheFailAt, when positive, fails the NVRAM controller cache at
	// this time. Organizations without a cache ignore it.
	CacheFailAt sim.Time
	// SectorErrorRate is the per-block probability that a media read pass
	// surfaces a latent sector error. Errors are retried up to
	// MaxReadRetries times and then recovered from redundancy (or counted
	// as lost on non-redundant organizations).
	SectorErrorRate float64
	// MaxReadRetries bounds the retry-then-reconstruct loop (default 2).
	MaxReadRetries int
	// Seed drives the stochastic streams (lifetimes, sector errors).
	Seed uint64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return len(c.DiskFails) > 0 || c.MTTF > 0 || c.CacheFailAt > 0 || c.SectorErrorRate > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, f := range c.DiskFails {
		if f.Disk < 0 {
			return fmt.Errorf("fault: negative disk index %d", f.Disk)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: disk %d failure scheduled at negative time %d", f.Disk, f.At)
		}
	}
	if c.MTTF < 0 {
		return fmt.Errorf("fault: negative MTTF")
	}
	if c.CacheFailAt < 0 {
		return fmt.Errorf("fault: negative cache failure time")
	}
	if c.SectorErrorRate < 0 || c.SectorErrorRate >= 1 {
		return fmt.Errorf("fault: sector error rate %g outside [0,1)", c.SectorErrorRate)
	}
	if c.MaxReadRetries < 0 {
		return fmt.Errorf("fault: negative retry bound")
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.MaxReadRetries == 0 {
		c.MaxReadRetries = 2
	}
}

// Handler is the fault consumer — implemented by array controllers. Both
// calls are idempotent: failing an already-failed disk (or cache) is a
// no-op, so overlapping deterministic and stochastic events are harmless.
type Handler interface {
	// FailDisk kills physical disk d of the array at the current time.
	FailDisk(d int)
	// FailCache kills the NVRAM cache, losing its dirty contents.
	FailCache()
}

// Injector schedules the configured faults onto an engine and answers
// per-read sector-error queries.
type Injector struct {
	eng    *sim.Engine
	cfg    Config
	ndisks int
	h      Handler

	life  *rng.Source // drive lifetimes
	media *rng.Source // sector errors
}

// NewInjector builds an injector for an array of ndisks drives.
func NewInjector(eng *sim.Engine, cfg Config, ndisks int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ndisks <= 0 {
		return nil, fmt.Errorf("fault: array has no disks")
	}
	for _, f := range cfg.DiskFails {
		if f.Disk >= ndisks {
			return nil, fmt.Errorf("fault: disk %d out of range [0,%d)", f.Disk, ndisks)
		}
	}
	cfg.fillDefaults()
	root := rng.New(cfg.Seed ^ 0xfa17fa17fa17fa17)
	return &Injector{
		eng:    eng,
		cfg:    cfg,
		ndisks: ndisks,
		life:   root.Split(),
		media:  root.Split(),
	}, nil
}

// MaxReadRetries returns the bounded-retry budget for sector errors.
func (in *Injector) MaxReadRetries() int { return in.cfg.MaxReadRetries }

// Arm schedules every configured fault against h. Call once, before the
// simulation starts (deterministic events with At earlier than the
// current engine time would panic the scheduler).
func (in *Injector) Arm(h Handler) {
	if in.h != nil {
		panic("fault: injector armed twice")
	}
	in.h = h
	for _, f := range in.cfg.DiskFails {
		f := f
		in.eng.At(f.At, func() { h.FailDisk(f.Disk) })
	}
	if in.cfg.CacheFailAt > 0 {
		in.eng.At(in.cfg.CacheFailAt, func() { h.FailCache() })
	}
	if in.cfg.MTTF > 0 {
		for d := 0; d < in.ndisks; d++ {
			in.armLifetime(d)
		}
	}
}

// armLifetime draws an exponential lifetime for the drive in slot d and
// schedules its death.
func (in *Injector) armLifetime(d int) {
	life := sim.Time(in.life.Exp(float64(in.cfg.MTTF)))
	if life < 1 {
		life = 1
	}
	in.eng.After(life, func() { in.h.FailDisk(d) })
}

// DiskReplaced tells the injector a fresh drive (hot spare) now occupies
// slot d; under a stochastic MTTF process the replacement gets its own
// lifetime.
func (in *Injector) DiskReplaced(d int) {
	if in.cfg.MTTF > 0 && in.h != nil {
		in.armLifetime(d)
	}
}

// SectorFaulty samples whether a media read pass of n blocks surfaces a
// latent sector error (per-block rate compounded over the run).
func (in *Injector) SectorFaulty(n int) bool {
	p := in.cfg.SectorErrorRate
	if p <= 0 || n <= 0 {
		return false
	}
	pn := p
	if n > 1 {
		pn = 1 - math.Pow(1-p, float64(n))
	}
	return in.media.Float64() < pn
}
