// Package fault is the simulator's fault-injection subsystem. It turns
// "what if a drive dies mid-run?" into a first-class, deterministic part
// of a simulation: disk failures scheduled at fixed times or drawn from
// an exponential MTTF process, latent sector errors sampled per media
// read, and NVRAM cache failure. The injector only decides *when* faults
// happen; *what* a fault means — degraded reads, single-copy writes,
// hot-spare rebuild — is the array controller's job (package array),
// reached through the Handler interface.
//
// Determinism: every stochastic decision comes from dedicated rng streams
// derived from Config.Seed, independent of the request path, and all
// events run on the array's single-threaded sim.Engine. The same seed and
// workload therefore produce bit-identical results, failures included.
package fault

import (
	"fmt"
	"math"

	"raidsim/internal/rng"
	"raidsim/internal/sim"
)

// DiskFail is one deterministic failure: disk Disk dies at time At.
// At == 0 models a pre-failed array (the drive is dead before the first
// request arrives).
type DiskFail struct {
	Disk int
	At   sim.Time
}

// SickDisk describes a drive that misbehaves without dying: from At
// until Until (forever when Until is zero) the drive serves requests
// SlowFactor times slower, each media read pass fails transiently with
// per-block probability TransientRate (succeeding on retry), and — when
// HangEvery is positive — the drive periodically freezes for HangFor.
// A sick drive still returns correct data; it is the "limping but not
// dead" failure mode between healthy and failed.
type SickDisk struct {
	Disk int
	At   sim.Time
	// Until ends the sickness; zero means it never clears.
	Until sim.Time
	// SlowFactor multiplies seek and transfer times while sick. Values
	// <= 1 leave timing unchanged.
	SlowFactor float64
	// TransientRate is the per-block probability that a media read pass
	// fails transiently. Unlike latent sector errors, a retry of the
	// same blocks may succeed.
	TransientRate float64
	// HangEvery, when positive, freezes the drive for HangFor at this
	// period while sick (the first hang starts HangEvery after onset).
	HangEvery sim.Time
	HangFor   sim.Time
}

// Config describes a fault campaign against one array. The zero value
// injects nothing.
type Config struct {
	// DiskFails are deterministic failure events.
	DiskFails []DiskFail
	// MTTF, when positive, gives every drive an independent exponential
	// lifetime with this mean; a replacement (hot spare swapped in after
	// rebuild) draws a fresh lifetime.
	MTTF sim.Time
	// CacheFailAt, when positive, fails the NVRAM controller cache at
	// this time. Organizations without a cache ignore it.
	CacheFailAt sim.Time
	// SectorErrorRate is the per-block probability that a media read pass
	// surfaces a latent sector error. Errors are retried up to
	// MaxReadRetries times and then recovered from redundancy (or counted
	// as lost on non-redundant organizations).
	SectorErrorRate float64
	// MaxReadRetries bounds the retry-then-reconstruct loop (default 2).
	MaxReadRetries int
	// SickDisks are drives that degrade without failing: slow service,
	// transient read errors, intermittent hangs.
	SickDisks []SickDisk
	// Seed drives the stochastic streams (lifetimes, sector errors).
	Seed uint64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return len(c.DiskFails) > 0 || c.MTTF > 0 || c.CacheFailAt > 0 ||
		c.SectorErrorRate > 0 || len(c.SickDisks) > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, f := range c.DiskFails {
		if f.Disk < 0 {
			return fmt.Errorf("fault: negative disk index %d", f.Disk)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: disk %d failure scheduled at negative time %d", f.Disk, f.At)
		}
	}
	if c.MTTF < 0 {
		return fmt.Errorf("fault: negative MTTF")
	}
	if c.CacheFailAt < 0 {
		return fmt.Errorf("fault: negative cache failure time")
	}
	if c.SectorErrorRate < 0 || c.SectorErrorRate >= 1 {
		return fmt.Errorf("fault: sector error rate %g outside [0,1)", c.SectorErrorRate)
	}
	if c.MaxReadRetries < 0 {
		return fmt.Errorf("fault: negative retry bound")
	}
	for _, s := range c.SickDisks {
		if s.Disk < 0 {
			return fmt.Errorf("fault: negative sick disk index %d", s.Disk)
		}
		if s.At < 0 {
			return fmt.Errorf("fault: disk %d sickness scheduled at negative time %d", s.Disk, s.At)
		}
		if s.Until != 0 && s.Until <= s.At {
			return fmt.Errorf("fault: disk %d sickness clears at %d, not after onset %d", s.Disk, s.Until, s.At)
		}
		if s.TransientRate < 0 || s.TransientRate >= 1 {
			return fmt.Errorf("fault: transient error rate %g outside [0,1)", s.TransientRate)
		}
		if s.SlowFactor < 0 {
			return fmt.Errorf("fault: negative slow factor %g", s.SlowFactor)
		}
		if s.HangEvery < 0 || s.HangFor < 0 {
			return fmt.Errorf("fault: negative hang timing on disk %d", s.Disk)
		}
		if s.HangEvery > 0 && s.HangFor <= 0 {
			return fmt.Errorf("fault: disk %d hangs every %d but for no duration", s.Disk, s.HangEvery)
		}
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.MaxReadRetries == 0 {
		c.MaxReadRetries = 2
	}
}

// Handler is the fault consumer — implemented by array controllers. Both
// calls are idempotent: failing an already-failed disk (or cache) is a
// no-op, so overlapping deterministic and stochastic events are harmless.
type Handler interface {
	// FailDisk kills physical disk d of the array at the current time.
	FailDisk(d int)
	// FailCache kills the NVRAM cache, losing its dirty contents.
	FailCache()
}

// SickHandler is the optional extension a Handler implements to receive
// sick-disk events. Handlers without it simply never see sickness (the
// transient-error sampling still answers false for them because they
// never query TransientFaulty with an active rate).
type SickHandler interface {
	// SickDisk marks drive s.Disk sick at the current time with the
	// given symptoms.
	SickDisk(s SickDisk)
	// SickClear ends drive d's sickness at the current time.
	SickClear(d int)
	// HangDisk freezes drive d until the given time.
	HangDisk(d int, until sim.Time)
}

// Injector schedules the configured faults onto an engine and answers
// per-read sector-error queries.
type Injector struct {
	eng    *sim.Engine
	cfg    Config
	ndisks int
	h      Handler

	life  *rng.Source // drive lifetimes
	media *rng.Source // sector errors
	trans *rng.Source // transient (sick-disk) read errors

	// transRate[d] is the active per-block transient-error rate of slot
	// d: set at sickness onset, zeroed when it clears.
	transRate []float64
}

// NewInjector builds an injector for an array of ndisks drives.
func NewInjector(eng *sim.Engine, cfg Config, ndisks int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ndisks <= 0 {
		return nil, fmt.Errorf("fault: array has no disks")
	}
	for _, f := range cfg.DiskFails {
		if f.Disk >= ndisks {
			return nil, fmt.Errorf("fault: disk %d out of range [0,%d)", f.Disk, ndisks)
		}
	}
	for _, s := range cfg.SickDisks {
		if s.Disk >= ndisks {
			return nil, fmt.Errorf("fault: sick disk %d out of range [0,%d)", s.Disk, ndisks)
		}
	}
	cfg.fillDefaults()
	// Stream order matters: life and media must split first so adding
	// sick-disk support leaves existing fault campaigns bit-identical.
	root := rng.New(cfg.Seed ^ 0xfa17fa17fa17fa17)
	return &Injector{
		eng:       eng,
		cfg:       cfg,
		ndisks:    ndisks,
		life:      root.Split(),
		media:     root.Split(),
		trans:     root.Split(),
		transRate: make([]float64, ndisks),
	}, nil
}

// MaxReadRetries returns the bounded-retry budget for sector errors.
func (in *Injector) MaxReadRetries() int { return in.cfg.MaxReadRetries }

// Arm schedules every configured fault against h. Call once, before the
// simulation starts (deterministic events with At earlier than the
// current engine time would panic the scheduler).
func (in *Injector) Arm(h Handler) {
	if in.h != nil {
		panic("fault: injector armed twice")
	}
	in.h = h
	for _, f := range in.cfg.DiskFails {
		f := f
		in.eng.At(f.At, func() { h.FailDisk(f.Disk) })
	}
	if in.cfg.CacheFailAt > 0 {
		in.eng.At(in.cfg.CacheFailAt, func() { h.FailCache() })
	}
	if in.cfg.MTTF > 0 {
		for d := 0; d < in.ndisks; d++ {
			in.armLifetime(d)
		}
	}
	if sh, ok := h.(SickHandler); ok {
		for _, s := range in.cfg.SickDisks {
			in.armSickness(sh, s)
		}
	}
}

// armSickness schedules one sick-disk episode: onset, optional clear,
// and the periodic hang loop in between.
func (in *Injector) armSickness(sh SickHandler, s SickDisk) {
	in.eng.At(s.At, func() {
		in.transRate[s.Disk] = s.TransientRate
		sh.SickDisk(s)
		if s.HangEvery > 0 {
			in.armHang(sh, s, s.At+s.HangEvery)
		}
	})
	if s.Until > 0 {
		in.eng.At(s.Until, func() {
			in.transRate[s.Disk] = 0
			sh.SickClear(s.Disk)
		})
	}
}

// armHang runs the periodic freeze loop of one sick episode: at each
// period boundary still inside the episode, hang the drive for HangFor.
func (in *Injector) armHang(sh SickHandler, s SickDisk, at sim.Time) {
	if s.Until > 0 && at >= s.Until {
		return
	}
	in.eng.At(at, func() {
		until := at + s.HangFor
		if s.Until > 0 && until > s.Until {
			until = s.Until
		}
		if until > at {
			sh.HangDisk(s.Disk, until)
		}
		in.armHang(sh, s, at+s.HangEvery)
	})
}

// armLifetime draws an exponential lifetime for the drive in slot d and
// schedules its death.
func (in *Injector) armLifetime(d int) {
	life := sim.Time(in.life.Exp(float64(in.cfg.MTTF)))
	if life < 1 {
		life = 1
	}
	in.eng.After(life, func() { in.h.FailDisk(d) })
}

// DiskReplaced tells the injector a fresh drive (hot spare) now occupies
// slot d; under a stochastic MTTF process the replacement gets its own
// lifetime.
func (in *Injector) DiskReplaced(d int) {
	if in.cfg.MTTF > 0 && in.h != nil {
		in.armLifetime(d)
	}
}

// SectorFaulty samples whether a media read pass of n blocks surfaces a
// latent sector error (per-block rate compounded over the run).
func (in *Injector) SectorFaulty(n int) bool {
	p := in.cfg.SectorErrorRate
	if p <= 0 || n <= 0 {
		return false
	}
	pn := p
	if n > 1 {
		pn = 1 - math.Pow(1-p, float64(n))
	}
	return in.media.Float64() < pn
}

// TransientFaulty samples whether a media read pass of n blocks on drive
// d fails transiently — drive d must currently be sick with a positive
// transient rate, otherwise the answer is false without consuming any
// randomness (so healthy runs stay bit-identical).
func (in *Injector) TransientFaulty(d, n int) bool {
	if d < 0 || d >= len(in.transRate) || n <= 0 {
		return false
	}
	p := in.transRate[d]
	if p <= 0 {
		return false
	}
	pn := p
	if n > 1 {
		pn = 1 - math.Pow(1-p, float64(n))
	}
	return in.trans.Float64() < pn
}
