package fault

import (
	"testing"

	"raidsim/internal/sim"
)

type recordingHandler struct {
	diskFails  []int
	failTimes  []sim.Time
	cacheFails int
	eng        *sim.Engine
}

func (h *recordingHandler) FailDisk(d int) {
	h.diskFails = append(h.diskFails, d)
	h.failTimes = append(h.failTimes, h.eng.Now())
}
func (h *recordingHandler) FailCache() { h.cacheFails++ }

func TestDeterministicSchedule(t *testing.T) {
	eng := sim.New()
	in, err := NewInjector(eng, Config{
		DiskFails:   []DiskFail{{Disk: 2, At: 5 * sim.Second}, {Disk: 0, At: sim.Second}},
		CacheFailAt: 3 * sim.Second,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHandler{eng: eng}
	in.Arm(h)
	eng.Run()
	if len(h.diskFails) != 2 || h.diskFails[0] != 0 || h.diskFails[1] != 2 {
		t.Fatalf("disk failures = %v, want [0 2] in time order", h.diskFails)
	}
	if h.failTimes[0] != sim.Second || h.failTimes[1] != 5*sim.Second {
		t.Fatalf("failure times = %v", h.failTimes)
	}
	if h.cacheFails != 1 {
		t.Fatalf("cache failures = %d, want 1", h.cacheFails)
	}
}

func TestStochasticLifetimesAreDeterministicPerSeed(t *testing.T) {
	times := func(seed uint64) []sim.Time {
		eng := sim.New()
		in, err := NewInjector(eng, Config{MTTF: 10 * sim.Second, Seed: seed}, 8)
		if err != nil {
			t.Fatal(err)
		}
		h := &recordingHandler{eng: eng}
		in.Arm(h)
		eng.Run()
		return h.failTimes
	}
	a, b := times(7), times(7)
	if len(a) != 8 {
		t.Fatalf("expected 8 lifetimes, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lifetime %d differs between identical seeds: %d vs %d", i, a[i], b[i])
		}
	}
	c := times(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical lifetimes")
	}
}

func TestDiskReplacedReArmsLifetime(t *testing.T) {
	eng := sim.New()
	in, err := NewInjector(eng, Config{MTTF: sim.Second, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHandler{eng: eng}
	in.Arm(h)
	if !eng.Step() {
		t.Fatal("no lifetime scheduled")
	}
	if len(h.diskFails) != 1 {
		t.Fatalf("want 1 failure, got %d", len(h.diskFails))
	}
	in.DiskReplaced(0)
	eng.Run()
	if len(h.diskFails) != 2 {
		t.Fatalf("replacement did not get a new lifetime: %d failures", len(h.diskFails))
	}
}

func TestSectorFaultySampling(t *testing.T) {
	eng := sim.New()
	in, err := NewInjector(eng, Config{SectorErrorRate: 0.25, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if in.SectorFaulty(1) {
			n++
		}
	}
	got := float64(n) / trials
	if got < 0.23 || got > 0.27 {
		t.Fatalf("single-block error rate = %.4f, want ~0.25", got)
	}
	// Multi-block passes compound the per-block rate.
	n = 0
	for i := 0; i < trials; i++ {
		if in.SectorFaulty(4) {
			n++
		}
	}
	want := 1 - (0.75 * 0.75 * 0.75 * 0.75) // ~0.684
	got = float64(n) / trials
	if got < want-0.02 || got > want+0.02 {
		t.Fatalf("4-block error rate = %.4f, want ~%.4f", got, want)
	}
	if in.SectorFaulty(0) {
		t.Fatal("zero-length pass cannot fail")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DiskFails: []DiskFail{{Disk: -1}}},
		{DiskFails: []DiskFail{{Disk: 0, At: -1}}},
		{MTTF: -1},
		{CacheFailAt: -1},
		{SectorErrorRate: 1.5},
		{MaxReadRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not have", i)
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{MTTF: 1}).Enabled() {
		t.Error("MTTF config reports disabled")
	}
	if _, err := NewInjector(sim.New(), Config{DiskFails: []DiskFail{{Disk: 9}}}, 4); err == nil {
		t.Error("out-of-range deterministic failure accepted")
	}
}

// TestEmpiricalMTTDLMatchesAnalytic is the acceptance check: a stochastic
// failure campaign over >= 100 seeded lifetimes lands within 2x of the
// analytic MTTDL prediction, for both a mirrored pair and an N+1 parity
// array.
func TestEmpiricalMTTDLMatchesAnalytic(t *testing.T) {
	cases := []CampaignConfig{
		{Scheme: MirrorPair, MTTFHours: 1000, MTTRHours: 24, Runs: 400, Seed: 11},
		{Scheme: ParityArray, N: 4, MTTFHours: 1000, MTTRHours: 24, Runs: 400, Seed: 12},
		{Scheme: ParityArray, N: 10, MTTFHours: 2000, MTTRHours: 12, Runs: 400, Seed: 13},
	}
	for _, cfg := range cases {
		res, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs < 100 {
			t.Fatalf("%v: campaign ran %d times, want >= 100", cfg.Scheme, res.Runs)
		}
		// The empirical mean should track the exact Markov result closely
		// (sampling error ~1/sqrt(runs)) and the standard approximation
		// within the acceptance criterion's 2x.
		if r := res.Ratio(); r < 0.8 || r > 1.25 {
			t.Errorf("%v N=%d: empirical %.0fh vs exact %.0fh (ratio %.3f)",
				cfg.Scheme, cfg.N, res.EmpiricalMTTDLHours, res.ExactMTTDLHours, r)
		}
		approx := res.EmpiricalMTTDLHours / res.AnalyticMTTDLHours
		if approx < 0.5 || approx > 2 {
			t.Errorf("%v N=%d: empirical %.0fh vs analytic %.0fh outside 2x",
				cfg.Scheme, cfg.N, res.EmpiricalMTTDLHours, res.AnalyticMTTDLHours)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := CampaignConfig{Scheme: ParityArray, N: 4, MTTFHours: 500, MTTRHours: 24, Runs: 50, Seed: 5}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("identical campaigns diverged: %+v vs %+v", a, b)
	}
}

func TestCampaignWorkerCountInvariant(t *testing.T) {
	base := CampaignConfig{Scheme: ParityArray, N: 6, MTTFHours: 1000, MTTRHours: 12, Runs: 200, Seed: 11, Workers: 1}
	want, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = w
		got, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("workers=%d changed the result:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{Scheme: MirrorPair, MTTFHours: 100, MTTRHours: 10}); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := RunCampaign(CampaignConfig{Scheme: ParityArray, N: 1, MTTFHours: 100, MTTRHours: 10, Runs: 1}); err == nil {
		t.Error("N=1 parity array accepted")
	}
	if _, err := RunCampaign(CampaignConfig{Scheme: MirrorPair, Runs: 1}); err == nil {
		t.Error("zero MTTF accepted")
	}
}
