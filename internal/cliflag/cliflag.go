// Package cliflag binds the simulator's shared command-line vocabulary
// (organization, geometry, caching, fault injection, observability) to a
// core.Config, so every CLI front-end exposes the same flags with the
// same semantics instead of duplicating ~20 flag definitions and their
// parsing.
//
// The binding is an overlay: Config() starts from core.DefaultConfig for
// the chosen organization and applies only the flags the user explicitly
// set (flag.FlagSet.Visit), so defaults stay in exactly one place.
package cliflag

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/disk"
	"raidsim/internal/fault"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
)

// Binding holds the registered flag values until Parse has run.
type Binding struct {
	fs *flag.FlagSet

	org       *string
	n         *int
	su        *int
	sync      *string
	placement *string
	punit     *int64
	cached    *bool
	cacheMB   *int
	destage   *float64
	pureLRU   *bool
	seed      *uint64
	sched     *string
	spindles  *bool
	workers   *int
	shards    *int

	spares      *int
	failAt      *time.Duration
	failDisk    *int
	mttfHours   *float64
	sectorRate  *float64
	cacheFailAt *time.Duration
	faultSeed   *uint64

	obsWindow   *time.Duration
	obsTrace    *int
	traceTopK   *int
	selfMetrics *bool

	deadline      *time.Duration
	batchDeadline *time.Duration
	retries       *int
	retryBackoff  *time.Duration
	hedgeAfter    *time.Duration
	hedgeQuantile *float64
	shedQueue     *int
	shedDirty     *float64

	sickDisk      *int
	sickAt        *time.Duration
	sickUntil     *time.Duration
	slowFactor    *float64
	transientRate *float64
	hangEvery     *time.Duration
	hangFor       *time.Duration
}

// Bind registers the shared simulation flags on fs. Call Config or Apply
// after fs.Parse.
func Bind(fs *flag.FlagSet) *Binding {
	return &Binding{
		fs:        fs,
		org:       fs.String("org", "raid5", "organization: "+strings.Join(array.OrgNames(), ", ")),
		n:         fs.Int("n", 10, "data disks per array (N)"),
		su:        fs.Int("su", 1, "striping unit in blocks (RAID5/RAID4/RAID1/0)"),
		sync:      fs.String("sync", "df", "parity sync policy: si, rf, rfpr, df, dfpr"),
		placement: fs.String("placement", "middle", "parity striping placement: middle or end"),
		punit:     fs.Int64("parity-unit", 0, "fine-grained parity striping unit (0 = classic)"),
		cached:    fs.Bool("cached", false, "enable the non-volatile controller cache"),
		cacheMB:   fs.Int("cache-mb", 16, "cache size per array, MB"),
		destage:   fs.Float64("destage-sec", 1, "destage period, seconds"),
		pureLRU:   fs.Bool("pure-lru", false, "write back only on eviction (no periodic destage)"),
		seed:      fs.Uint64("seed", 1, "simulation seed"),
		sched:     fs.String("sched", "fifo", "drive queue discipline: fifo, sstf, look"),
		spindles:  fs.Bool("sync-spindles", false, "synchronize spindle rotation across drives"),
		workers:   fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS); never changes results"),
		shards:    fs.Int("shards", 0, "persistent per-shard engines for intra-run array execution (0 = one throwaway engine per array); never changes results"),

		spares:      fs.Int("spares", 0, "hot spares per array; a failure consumes one and triggers a background rebuild"),
		failAt:      fs.Duration("fail-at", 0, "inject a disk failure at this time into the run (e.g. 30s; 0 = none)"),
		failDisk:    fs.Int("fail-disk", 0, "physical disk to fail at -fail-at (array-major numbering)"),
		mttfHours:   fs.Float64("mttf-hours", 0, "give every drive an exponential lifetime with this mean (0 = no stochastic failures)"),
		sectorRate:  fs.Float64("sector-error-rate", 0, "per-block probability a media read surfaces a latent sector error"),
		cacheFailAt: fs.Duration("cache-fail-at", 0, "fail the NVRAM cache at this time (0 = never)"),
		faultSeed:   fs.Uint64("fault-seed", 0, "seed for the stochastic fault streams"),

		obsWindow:   fs.Duration("obs-window", 0, "record a windowed time series with this window width (e.g. 1s; 0 = off)"),
		obsTrace:    fs.Int("obs-trace", 0, "keep the newest N observability events for JSONL export (0 = off)"),
		traceTopK:   fs.Int("trace-topk", 0, "trace per-request span trees, keeping the slowest K per class (0 = off)"),
		selfMetrics: fs.Bool("self-metrics", false, "meter the engine itself (events/sec, heap depth, allocations); never changes results"),

		deadline:      fs.Duration("deadline", 0, "gold-class response deadline (e.g. 100ms; 0 = off)"),
		batchDeadline: fs.Duration("batch-deadline", 0, "batch-class response deadline (0 = use -deadline)"),
		retries:       fs.Int("retries", 0, "retry a transient read error up to N times before redundancy fallback"),
		retryBackoff:  fs.Duration("retry-backoff", 0, "base retry backoff, doubled per attempt with jitter (default 1ms)"),
		hedgeAfter:    fs.Duration("hedge-after", 0, "hedge mirror reads still unanswered after this delay (0 = off)"),
		hedgeQuantile: fs.Float64("hedge-quantile", 0, "derive the hedge delay from this read-response quantile, e.g. 0.95 (0 = fixed)"),
		shedQueue:     fs.Int("shed-queue", 0, "shed batch-class requests while total disk queue depth >= N (0 = off)"),
		shedDirty:     fs.Float64("shed-dirty", 0, "shed batch-class requests while cache dirty fraction >= this (0 = off)"),

		sickDisk:      fs.Int("sick-disk", -1, "physical disk that turns sick (array-major numbering; -1 = none)"),
		sickAt:        fs.Duration("sick-at", 0, "when the sick disk's symptoms start"),
		sickUntil:     fs.Duration("sick-until", 0, "when the sickness clears (0 = never)"),
		slowFactor:    fs.Float64("slow-factor", 0, "sick disk serves this many times slower (<=1 = no slowdown)"),
		transientRate: fs.Float64("transient-rate", 0, "per-block probability a sick disk's media pass fails transiently"),
		hangEvery:     fs.Duration("hang-every", 0, "sick disk freezes at this period (0 = never)"),
		hangFor:       fs.Duration("hang-for", 0, "duration of each sick-disk freeze"),
	}
}

// Config resolves the parsed flags into a core.Config: the organization's
// DefaultConfig overlaid with exactly the flags the user set. The caller
// still owns workload-dependent fields (DataDisks from the trace).
func (b *Binding) Config() (core.Config, error) {
	org, err := array.ParseOrg(*b.org)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.DefaultConfig(org)
	if err := b.Apply(&cfg); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// Apply overlays onto cfg only the flags explicitly set on the command
// line, leaving everything else (a DefaultConfig, an experiment's base
// config, ...) untouched.
func (b *Binding) Apply(cfg *core.Config) error {
	var err error
	set := make(map[string]bool)
	b.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fail := func(e error) {
		if err == nil {
			err = e
		}
	}
	if set["org"] {
		org, e := array.ParseOrg(*b.org)
		if e != nil {
			fail(e)
		} else {
			cfg.Org = org
		}
	}
	if set["n"] {
		cfg.N = *b.n
	}
	if set["su"] {
		cfg.StripingUnit = *b.su
	}
	if set["sync"] {
		p, e := array.ParseSyncPolicy(*b.sync)
		if e != nil {
			fail(e)
		} else {
			cfg.Sync = p
		}
	}
	if set["placement"] {
		switch strings.ToLower(*b.placement) {
		case "middle":
			cfg.Placement = layout.MiddlePlacement
		case "end":
			cfg.Placement = layout.EndPlacement
		default:
			fail(fmt.Errorf("cliflag: unknown placement %q (want middle or end)", *b.placement))
		}
	}
	if set["parity-unit"] {
		cfg.ParityStripeUnit = *b.punit
	}
	if set["cached"] {
		cfg.Cached = *b.cached
	}
	if set["cache-mb"] {
		cfg.CacheMB = *b.cacheMB
	}
	if set["destage-sec"] {
		cfg.DestagePeriod = sim.Time(*b.destage * float64(sim.Second))
	}
	if set["pure-lru"] {
		cfg.PureLRUWriteback = *b.pureLRU
	}
	if set["seed"] {
		cfg.Seed = *b.seed
	}
	if set["sched"] {
		sd, e := disk.ParseSched(*b.sched)
		if e != nil {
			fail(e)
		} else {
			cfg.DiskSched = sd
		}
	}
	if set["sync-spindles"] {
		cfg.SyncSpindles = *b.spindles
	}
	if set["workers"] {
		cfg.Workers = *b.workers
	}
	if set["shards"] {
		cfg.Shards = *b.shards
	}
	if set["spares"] {
		cfg.Spares = *b.spares
	}
	if set["mttf-hours"] {
		cfg.Fault.MTTF = sim.Time(*b.mttfHours * 3600 * float64(sim.Second))
	}
	if set["sector-error-rate"] {
		cfg.Fault.SectorErrorRate = *b.sectorRate
	}
	if set["cache-fail-at"] {
		cfg.Fault.CacheFailAt = sim.Time(*b.cacheFailAt)
	}
	if set["fault-seed"] {
		cfg.Fault.Seed = *b.faultSeed
	}
	if set["fail-at"] && *b.failAt > 0 {
		cfg.Fault.DiskFails = append(cfg.Fault.DiskFails,
			fault.DiskFail{Disk: *b.failDisk, At: sim.Time(*b.failAt)})
	}
	if set["deadline"] {
		cfg.Robust.Deadline = sim.Time(*b.deadline)
	}
	if set["batch-deadline"] {
		cfg.Robust.BatchDeadline = sim.Time(*b.batchDeadline)
	}
	if set["retries"] {
		cfg.Robust.Retries = *b.retries
	}
	if set["retry-backoff"] {
		cfg.Robust.RetryBackoff = sim.Time(*b.retryBackoff)
	}
	if set["hedge-after"] {
		cfg.Robust.HedgeAfter = sim.Time(*b.hedgeAfter)
	}
	if set["hedge-quantile"] {
		cfg.Robust.HedgeQuantile = *b.hedgeQuantile
	}
	if set["shed-queue"] {
		cfg.Robust.ShedQueue = *b.shedQueue
	}
	if set["shed-dirty"] {
		cfg.Robust.ShedDirty = *b.shedDirty
	}
	if set["sick-disk"] && *b.sickDisk >= 0 {
		cfg.Fault.SickDisks = append(cfg.Fault.SickDisks, fault.SickDisk{
			Disk:          *b.sickDisk,
			At:            sim.Time(*b.sickAt),
			Until:         sim.Time(*b.sickUntil),
			SlowFactor:    *b.slowFactor,
			TransientRate: *b.transientRate,
			HangEvery:     sim.Time(*b.hangEvery),
			HangFor:       sim.Time(*b.hangFor),
		})
	}
	if set["obs-window"] {
		cfg.Obs.Window = sim.Time(*b.obsWindow)
	}
	if set["obs-trace"] {
		cfg.Obs.TraceCap = *b.obsTrace
	}
	if set["trace-topk"] {
		cfg.Obs.SpanTopK = *b.traceTopK
	}
	if set["self-metrics"] {
		cfg.SelfMetrics = *b.selfMetrics
	}
	return err
}
