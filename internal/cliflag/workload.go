package cliflag

import (
	"flag"
	"strings"

	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// WorkloadBinding holds the workload-selection flags: which workload to
// generate (built-in name or declarative .json spec) and at what scale.
type WorkloadBinding struct {
	workload *string
	profile  *string
	scale    *float64
}

// BindWorkload registers the workload flags on fs. -workload and
// -profile are aliases; -workload is the documented spelling and also
// accepts a path to a workload spec file.
func BindWorkload(fs *flag.FlagSet) *WorkloadBinding {
	return &WorkloadBinding{
		workload: fs.String("workload", "",
			"workload: built-in name ("+strings.Join(workload.BuiltinNames(), ", ")+") or a .json spec path (see examples/workloads)"),
		profile: fs.String("profile", "",
			"alias of -workload kept for older scripts (built-in names only)"),
		scale: fs.Float64("scale", 0.1,
			"scale the generated workload: this fraction of the requests in the same fraction of the duration"),
	}
}

// Generate resolves the selected workload and generates its trace;
// fallback names the workload when neither -workload nor -profile was
// set. The built-in profiles generate through the profile path, so
// existing invocations stay bit-identical.
func (b *WorkloadBinding) Generate(fallback string) (*trace.Trace, error) {
	name := *b.workload
	if name == "" {
		name = *b.profile
	}
	if name == "" {
		name = fallback
	}
	return workload.ResolveTrace(name, *b.scale)
}
