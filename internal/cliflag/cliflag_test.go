package cliflag

import (
	"flag"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
)

func TestConfigDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	b := Bind(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Org != array.OrgRAID5 || cfg.N != 10 || cfg.Sync != array.DF {
		t.Errorf("defaults: org=%v n=%d sync=%v, want raid5/10/DF", cfg.Org, cfg.N, cfg.Sync)
	}
	if cfg.Cached || cfg.CacheMB != 16 || cfg.Obs.Enabled() {
		t.Errorf("defaults: cached=%v cacheMB=%d obs=%v, want off/16/off", cfg.Cached, cfg.CacheMB, cfg.Obs)
	}
}

func TestConfigOverrides(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	b := Bind(fs)
	args := []string{
		"-org", "pstripe", "-n", "5", "-sync", "rfpr", "-placement", "end",
		"-cached", "-cache-mb", "32", "-destage-sec", "2.5", "-seed", "42",
		"-spares", "1", "-fail-at", "30s", "-fail-disk", "3",
		"-obs-window", "500ms", "-obs-trace", "128", "-workers", "3",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Org != array.OrgParityStriping || cfg.N != 5 || cfg.Sync != array.RFPR {
		t.Errorf("org=%v n=%d sync=%v", cfg.Org, cfg.N, cfg.Sync)
	}
	if cfg.Placement != layout.EndPlacement {
		t.Errorf("placement = %v, want end", cfg.Placement)
	}
	if !cfg.Cached || cfg.CacheMB != 32 || cfg.DestagePeriod != sim.Time(2.5*float64(sim.Second)) {
		t.Errorf("cache config: cached=%v mb=%d destage=%d", cfg.Cached, cfg.CacheMB, cfg.DestagePeriod)
	}
	if cfg.Seed != 42 || cfg.Spares != 1 {
		t.Errorf("seed=%d spares=%d", cfg.Seed, cfg.Spares)
	}
	if len(cfg.Fault.DiskFails) != 1 || cfg.Fault.DiskFails[0].Disk != 3 || cfg.Fault.DiskFails[0].At != 30*sim.Second {
		t.Errorf("disk fails: %+v", cfg.Fault.DiskFails)
	}
	if cfg.Obs.Window != 500*sim.Millisecond || cfg.Obs.TraceCap != 128 {
		t.Errorf("obs: %+v", cfg.Obs)
	}
	if cfg.Workers != 3 {
		t.Errorf("workers = %d, want 3", cfg.Workers)
	}
}

// TestApplyOverlay: Apply must touch only explicitly-set flags, so a
// caller's base config survives the overlay.
func TestApplyOverlay(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	b := Bind(fs)
	if err := fs.Parse([]string{"-n", "4"}); err != nil {
		t.Fatal(err)
	}
	base, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 99
	base.CacheMB = 64
	if err := b.Apply(&base); err != nil {
		t.Fatal(err)
	}
	if base.N != 4 {
		t.Errorf("explicit -n not applied: %d", base.N)
	}
	if base.Seed != 99 || base.CacheMB != 64 {
		t.Errorf("overlay clobbered unset fields: seed=%d cacheMB=%d", base.Seed, base.CacheMB)
	}
}

// TestRAID4DefaultCached: the organization default carries through —
// RAID4 is only studied with parity caching.
func TestRAID4DefaultCached(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	b := Bind(fs)
	if err := fs.Parse([]string{"-org", "raid4"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := b.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Cached {
		t.Error("raid4 should default to cached")
	}
}

func TestBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-org", "raid9"},
		{"-sync", "nope"},
		{"-placement", "sideways"},
		{"-sched", "elevator-ish"},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		b := Bind(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		if _, err := b.Config(); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
