package cliflag

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile binds the -cpuprofile/-memprofile flags and manages the
// profile files. Usage:
//
//	prof := cliflag.BindProfile(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
type Profile struct {
	cpu, mem *string
	f        *os.File
}

// BindProfile registers the profiling flags on fs.
func BindProfile(fs *flag.FlagSet) *Profile {
	return &Profile{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if -cpuprofile was given.
func (p *Profile) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cliflag: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cliflag: cpu profile: %w", err)
	}
	p.f = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, as
// requested. Safe to call without a preceding Start.
func (p *Profile) Stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			return err
		}
		p.f = nil
	}
	if *p.mem == "" {
		return nil
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		return fmt.Errorf("cliflag: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("cliflag: heap profile: %w", err)
	}
	return nil
}
