package report

import (
	"fmt"
	"math"
)

// Estimate is a measured value with a 95% confidence half-width over N
// replications, the unit of A-vs-B comparison.
type Estimate struct {
	Mean float64
	Half float64 // 95% confidence half-width (0 when N < 2)
	N    int
}

// String renders "12.34 ±2.1%" (the half-width as a percentage of the
// mean), or just the mean when there is no interval.
func (e Estimate) String() string {
	if e.N < 2 || e.Mean == 0 || e.Half == 0 {
		return fmt.Sprintf("%.2f", e.Mean)
	}
	return fmt.Sprintf("%.2f ±%.1f%%", e.Mean, 100*e.Half/math.Abs(e.Mean))
}

// overlaps reports whether the two confidence intervals intersect — the
// benchstat criterion for an insignificant delta.
func (e Estimate) overlaps(o Estimate) bool {
	return e.Mean-e.Half <= o.Mean+o.Half && o.Mean-o.Half <= e.Mean+e.Half
}

// CompareRow pairs one named quantity's A and B estimates.
type CompareRow struct {
	Name string
	A, B Estimate
}

// CompareTable builds a benchstat-style A-vs-B table: each row shows
// both estimates and the relative delta, written "~" when the
// confidence intervals overlap (the difference is not resolvable at
// this replication count).
func CompareTable(title, unit, aLabel, bLabel string, rows []CompareRow) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"name", fmt.Sprintf("%s (%s)", aLabel, unit), fmt.Sprintf("%s (%s)", bLabel, unit), "delta"},
	}
	insignificant := 0
	for _, r := range rows {
		delta := "~"
		switch {
		case r.A.Mean == 0:
			delta = "?"
		case r.A.overlaps(r.B):
			insignificant++
		default:
			delta = fmt.Sprintf("%+.1f%%", 100*(r.B.Mean-r.A.Mean)/math.Abs(r.A.Mean))
		}
		t.AddRow(r.Name, r.A.String(), r.B.String(), delta)
	}
	if insignificant > 0 {
		t.AddNote("~ marks deltas whose 95%% confidence intervals overlap (n too small to resolve)")
	}
	return t
}
