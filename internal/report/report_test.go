package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1.00")
	tb.AddRow("beta", "22.50")
	tb.AddNote("a note %d", 7)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "name", "alpha", "22.50", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Numeric cells right-align: "1.00" and "22.50" end at the same column.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.Contains(l, "alpha") {
			alphaLine = l
		}
		if strings.Contains(l, "beta") {
			betaLine = l
		}
	}
	if len(alphaLine) != len(betaLine) {
		t.Fatalf("rows not aligned:\n%q\n%q", alphaLine, betaLine)
	}
}

func TestTableRowWidthPanic(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width row accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestFigure(t *testing.T) {
	f := &Figure{
		Title:  "Figure X",
		XLabel: "N",
		YLabel: "ms",
		XTicks: []string{"5", "10"},
	}
	f.Add("base", 1.5, 2.5)
	f.Add("raid5", 2.0, 3.0)
	f.AddNote("caveat")
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure X", "base", "raid5", "1.50", "3.00", "caveat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureLengthPanic(t *testing.T) {
	f := &Figure{XTicks: []string{"1", "2", "3"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short series accepted")
		}
	}()
	f.Add("s", 1.0)
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{XLabel: "x", YLabel: "y", XTicks: []string{"a"}}
	f.Add("s1", 9)
	var b strings.Builder
	if err := f.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x,s1") || !strings.Contains(b.String(), "a,9.00") {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestFigurePlot(t *testing.T) {
	f := &Figure{
		Title:  "plot demo",
		XLabel: "N",
		YLabel: "ms",
		XTicks: []string{"5", "10", "15"},
	}
	f.Add("a", 10, 20, 30)
	f.Add("b", 30, 20, 10)
	var b strings.Builder
	if err := f.RenderPlot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"plot demo", "* = a", "o = b", "x: N, y: ms", "+--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// The two series cross; both glyphs must appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series glyphs missing")
	}
}

func TestFigurePlotHandlesNaN(t *testing.T) {
	f := &Figure{Title: "nan", XLabel: "x", YLabel: "y", XTicks: []string{"1", "2"}}
	f.Add("s", math.NaN(), 5)
	var b strings.Builder
	if err := f.RenderPlot(&b); err != nil {
		t.Fatal(err)
	}
	allNaN := &Figure{Title: "allnan", XLabel: "x", YLabel: "y", XTicks: []string{"1"}}
	allNaN.Add("s", math.NaN())
	b.Reset()
	if err := allNaN.RenderPlot(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NaN") {
		t.Fatal("all-NaN figure should say so")
	}
}

func TestFigurePlotEmpty(t *testing.T) {
	f := &Figure{Title: "empty"}
	var b strings.Builder
	if err := f.RenderPlot(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty figure should say so")
	}
}
