package report

import "fmt"

// FleetStats summarizes a campaign execution for FleetTable. The types
// here are report-local on purpose: the campaign layer knows nothing
// about rendering, so callers (cmd/campaign) translate campaign.Outcome
// into this shape rather than report importing campaign.
type FleetStats struct {
	Runs     int // points in the campaign
	Executed int
	Resumed  int
	Failed   int

	Events  uint64 // engine events across executed runs
	WallNS  int64  // campaign wall-clock, nanoseconds
	BusyNS  int64  // summed engine busy time across runs (CPU-seconds proxy)
	Workers []WorkerRow
	// Shards is the intra-run engine-shard accounting (core.Config.Shards
	// > 0): each row sums one shard's events and metered host time across
	// every executed run. Empty for unsharded campaigns.
	Shards []ShardRow
}

// ShardRow is one intra-run engine shard's share of a campaign: the
// events its engines executed and how long they were metered, summed
// over runs.
type ShardRow struct {
	Shard  int
	Events uint64
	BusyNS int64
}

// WorkerRow is one worker's share of a campaign: how many runs it
// executed, how many it stole from other workers' strides, and how long
// it was busy inside run bodies.
type WorkerRow struct {
	Worker int
	Tasks  int
	Steals int
	BusyNS int64
}

// FleetTable renders the campaign-wide execution summary: one row per
// worker (tasks, steals, busy time, occupancy against the campaign
// wall-clock) with fleet totals — wall-clock, aggregate events/sec and
// the engine-busy/wall ratio, the honest parallel-speedup figure — as
// notes. Returns nil when nothing executed, so callers can render
// unconditionally.
func FleetTable(title string, f FleetStats) *Table {
	if f.Runs == 0 || len(f.Workers) == 0 {
		return nil
	}
	t := &Table{
		Title:   title,
		Columns: []string{"worker", "tasks", "steals", "busy s", "occupancy"},
	}
	wall := float64(f.WallNS) / 1e9
	for _, w := range f.Workers {
		busy := float64(w.BusyNS) / 1e9
		occ := "-"
		if wall > 0 {
			occ = fmt.Sprintf("%.0f%%", 100*busy/wall)
		}
		t.AddRow(
			fmt.Sprintf("%d", w.Worker),
			fmt.Sprintf("%d", w.Tasks),
			fmt.Sprintf("%d", w.Steals),
			fmt.Sprintf("%.2f", busy),
			occ,
		)
	}
	for _, sh := range f.Shards {
		busy := float64(sh.BusyNS) / 1e9
		occ := "-"
		if wall > 0 {
			occ = fmt.Sprintf("%.0f%%", 100*busy/wall)
		}
		t.AddRow(
			fmt.Sprintf("shard %d", sh.Shard),
			fmt.Sprintf("%d ev", sh.Events),
			"-",
			fmt.Sprintf("%.2f", busy),
			occ,
		)
	}
	t.AddNote(fmt.Sprintf("%d runs (%d executed, %d resumed, %d failed) in %.1fs wall-clock",
		f.Runs, f.Executed, f.Resumed, f.Failed, wall))
	if wall > 0 && f.Events > 0 {
		t.AddNote(fmt.Sprintf("%.0f engine events/s aggregate (%d events)",
			float64(f.Events)/wall, f.Events))
	}
	if wall > 0 && f.BusyNS > 0 {
		t.AddNote(fmt.Sprintf("engine busy %.1fs over %.1fs wall = %.2fx parallel occupancy",
			float64(f.BusyNS)/1e9, wall, float64(f.BusyNS)/1e9/wall))
	}
	return t
}
