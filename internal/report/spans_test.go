package report

import (
	"strings"
	"testing"

	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// deterministicSeries builds a small fixed series: two full windows of
// known requests and disk busy time.
func deterministicSeries() *obs.Series {
	r := obs.NewRecorder(obs.Config{Window: sim.Second, Disks: 2})
	r.Request(100*sim.Millisecond, false, 10)
	r.Request(200*sim.Millisecond, true, 20)
	r.Request(1500*sim.Millisecond, false, 40)
	r.DiskBusy(0, 0, 1*sim.Second)
	r.DiskBusy(1, 1*sim.Second, 2*sim.Second)
	return r.Series()
}

// TestSeriesTableGolden locks the rendered transient table down to the
// exact string, so format drift is a deliberate decision.
func TestSeriesTableGolden(t *testing.T) {
	tb := SeriesTable("transient", deterministicSeries())
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	want := "transient\n" +
		"t (s)  req  rps  mean ms  p50 ms  p95 ms  p99 ms  max ms  util   queue  dirty  destg blk  rebuild blk  degraded\n" +
		"---------------------------------------------------------------------------------------------------------------\n" +
		"0.0      2  2.0    15.00    9.87   20.00   20.00   20.00  0.500    0.0  0.000          0            0         -\n" +
		"1.0      1  1.0    40.00   40.00   40.00   40.00   40.00  0.500    0.0  0.000          0            0         -\n" +
		"\n"
	if b.String() != want {
		t.Fatalf("SeriesTable output drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestSeriesFigureGolden locks the figure's tabular rendering down to the
// exact string.
func TestSeriesFigureGolden(t *testing.T) {
	f := SeriesFigure("response over time", deterministicSeries())
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	want := "response over time  [y: response (ms)]\n" +
		"t (s)  mean   p95    p99  \n" +
		"--------------------------\n" +
		"0      15.00  20.00  20.00\n" +
		"1      40.00  40.00  40.00\n" +
		"\n"
	if b.String() != want {
		t.Fatalf("SeriesFigure output drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestTailTableGolden builds one retained write tree with every stage
// populated and locks the tail-anatomy rendering.
func TestTailTableGolden(t *testing.T) {
	tr := obs.NewTracer(4, 0)
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }
	root := tr.Start(0, true)
	root.ChildSpan(obs.SpanAdmit, 0, ms(1))
	op := root.Child("rmw-data", ms(1))
	op.SetDisk(0)
	op.SetBlocks(2)
	op.ChildSpan(obs.SpanQueue, ms(1), ms(3))
	op.ChildSpan(obs.SpanSeekRotate, ms(3), ms(8))
	op.ChildSpan(obs.SpanReadOld, ms(8), ms(10))
	op.ChildSpan(obs.SpanWriteNew, ms(12), ms(14))
	op.CloseAt(ms(14))
	root.ChildSpan(obs.SpanChannel, ms(14), ms(15))
	tr.Finish(root, ms(15), false)

	trees := tr.Requests()
	if len(trees) != 1 {
		t.Fatalf("retained %d trees, want 1", len(trees))
	}
	tb := TailTable("tail anatomy", []obs.SpanSample{{Array: 1, Tree: trees[0]}})
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	want := "tail anatomy\n" +
		"class         arr  t (s)  resp ms  admit  queue  position  media  chan  stall  ops\n" +
		"----------------------------------------------------------------------------------\n" +
		"write/normal    1   0.00    15.00   1.00   2.00      5.00   4.00  1.00   0.00    1\n" +
		"note: position = seek+rotate + realign + held rotations; media = transfer + read-old + write-new\n" +
		"note: stage columns sum overlapping per-device spans and may exceed resp\n" +
		"\n"
	if b.String() != want {
		t.Fatalf("TailTable output drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}
