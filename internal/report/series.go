package report

import (
	"fmt"

	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// SeriesTable renders a windowed time series as a table, one row per
// window — the transient view (latency quantiles, utilization, destage
// and rebuild traffic over time) that the steady-state tables collapse.
func SeriesTable(title string, s *obs.Series) *Table {
	t := &Table{
		Title: title,
		Columns: []string{
			"t (s)", "req", "rps", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms",
			"util", "queue", "dirty", "destg blk", "rebuild blk", "degraded",
		},
	}
	for _, p := range s.Points() {
		degr := "-"
		if p.Degraded {
			degr = fmt.Sprintf("%.0f%%", p.DegradedFrac*100)
		}
		t.AddRow(
			fmt.Sprintf("%.1f", float64(p.Start)/float64(sim.Second)),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%.1f", p.ThroughputRPS),
			fmt.Sprintf("%.2f", p.MeanMS),
			fmt.Sprintf("%.2f", p.P50MS),
			fmt.Sprintf("%.2f", p.P95MS),
			fmt.Sprintf("%.2f", p.P99MS),
			fmt.Sprintf("%.2f", p.MaxMS),
			fmt.Sprintf("%.3f", p.UtilMean),
			fmt.Sprintf("%.1f", p.QueueMean),
			fmt.Sprintf("%.3f", p.DirtyFrac),
			fmt.Sprintf("%d", p.DestagedBlocks),
			fmt.Sprintf("%d", p.RebuildBlocks),
			degr,
		)
	}
	return t
}

// seriesMaxTicks bounds the x-axis of a series figure so the ASCII chart
// stays terminal-width; longer series aggregate several windows per tick.
const seriesMaxTicks = 16

// SeriesFigure plots response time over simulated time: the per-window
// mean plus the p95/p99 tail. When the series is longer than
// seriesMaxTicks windows, each tick aggregates a group of windows —
// the mean request-weighted, the percentiles as the group's worst
// window, so transient spikes survive the downsampling.
func SeriesFigure(title string, s *obs.Series) *Figure {
	pts := s.Points()
	f := &Figure{Title: title, XLabel: "t (s)", YLabel: "response (ms)"}
	if len(pts) == 0 {
		return f
	}
	stride := (len(pts) + seriesMaxTicks - 1) / seriesMaxTicks
	var mean, p95, p99 []float64
	for i := 0; i < len(pts); i += stride {
		var mSum float64
		var n int64
		var worst95, worst99 float64
		for j := i; j < len(pts) && j < i+stride; j++ {
			p := pts[j]
			mSum += p.MeanMS * float64(p.Requests)
			n += p.Requests
			if p.P95MS > worst95 {
				worst95 = p.P95MS
			}
			if p.P99MS > worst99 {
				worst99 = p.P99MS
			}
		}
		m := 0.0
		if n > 0 {
			m = mSum / float64(n)
		}
		f.XTicks = append(f.XTicks, fmt.Sprintf("%.0f", float64(pts[i].Start)/float64(sim.Second)))
		mean = append(mean, m)
		p95 = append(p95, worst95)
		p99 = append(p99, worst99)
	}
	f.Add("mean", mean...)
	f.Add("p95", p95...)
	f.Add("p99", p99...)
	if stride > 1 {
		f.AddNote("each point aggregates %d windows of %.1f s; percentiles show the worst window", stride, float64(s.Window)/float64(sim.Second))
	}
	return f
}
