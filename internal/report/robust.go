package report

import (
	"fmt"

	"raidsim/internal/array"
)

// RobustTable renders the request-robustness accounting: per-class
// goodput against the deadline (the goodput-vs-deadline view) plus the
// retry/hedge/shed machinery counters.
func RobustTable(title string, r *array.RobustResults) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"class", "measured", "met", "missed", "miss%", "shed", "mean ms", "p95 ms"},
	}
	for cl := array.SLOClass(0); cl < array.NumSLOClasses; cl++ {
		n := r.DeadlineMet[cl] + r.DeadlineMiss[cl]
		resp := r.ClassResp[cl]
		t.AddRow(
			cl.String(),
			fmt.Sprintf("%d", resp.N()),
			fmt.Sprintf("%d", r.DeadlineMet[cl]),
			fmt.Sprintf("%d", r.DeadlineMiss[cl]),
			missPct(r.DeadlineMiss[cl], n),
			fmt.Sprintf("%d", r.Shed[cl]),
			fmt.Sprintf("%.2f", resp.Mean()),
			fmt.Sprintf("%.2f", resp.Quantile(0.95)),
		)
	}
	if r.Retries > 0 || r.RetriesExhausted > 0 {
		t.AddNote("retries: %d issued, %d reads exhausted their budget (%d attempts spent), amplification %.3fx",
			r.Retries, r.RetriesExhausted, r.AttemptsExhausted, retryAmplification(r))
	}
	if r.Hedges > 0 {
		t.AddNote("hedged reads: %d issued, %d won, %d lost (win rate %.1f%%)",
			r.Hedges, r.HedgeWins, r.HedgeLosses, 100*float64(r.HedgeWins)/float64(r.Hedges))
	}
	return t
}

func missPct(miss, n int64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(miss)/float64(n))
}

// retryAmplification returns total media passes per logical read pass on
// the retry path: 1 plus retries over measured reads. With no reads it
// degrades to 1.
func retryAmplification(r *array.RobustResults) float64 {
	var reads int64
	for cl := 0; cl < array.NumSLOClasses; cl++ {
		reads += r.ClassResp[cl].N()
	}
	if reads == 0 {
		return 1
	}
	return 1 + float64(r.Retries)/float64(reads)
}
