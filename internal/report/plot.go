package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plot renders the figure as an ASCII line chart: y-axis scaled to the
// series range, one glyph per series, x-ticks along the bottom. It is a
// terminal-grade approximation of the paper's figures — exact values come
// from the accompanying table.
const (
	plotHeight = 16
	plotColW   = 7 // columns per x tick
)

var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderPlot writes the figure as an ASCII chart followed by a legend.
// Series values that are NaN are skipped.
func (f *Figure) RenderPlot(w io.Writer) error {
	if len(f.XTicks) == 0 || len(f.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", f.Title)
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		_, err := fmt.Fprintf(w, "%s: (all values NaN)\n", f.Title)
		return err
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom so the top point isn't glued to the frame.
	span := hi - lo
	hi += span * 0.05
	lo -= span * 0.05
	if lo < 0 && span > 0 && hi > 0 {
		// Don't invent negative response times.
		lo = math.Max(lo, 0)
	}

	width := len(f.XTicks) * plotColW
	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(plotHeight-1)))
		if r < 0 {
			r = 0
		}
		if r >= plotHeight {
			r = plotHeight - 1
		}
		return plotHeight - 1 - r // row 0 is the top
	}
	colOf := func(i int) int { return i*plotColW + plotColW/2 }

	for si, s := range f.Series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		prevOK := false
		var prevR, prevC int
		for i, v := range s.Values {
			if math.IsNaN(v) {
				prevOK = false
				continue
			}
			r, c := rowOf(v), colOf(i)
			// Light interpolation between points: a sparse dotted segment.
			if prevOK && c > prevC {
				steps := c - prevC
				for k := 1; k < steps; k += 2 {
					ir := prevR + (r-prevR)*k/steps
					ic := prevC + k
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[r][c] = g
			prevOK, prevR, prevC = true, r, c
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for r := 0; r < plotHeight; r++ {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.1f", hi)
		case plotHeight - 1:
			label = fmt.Sprintf("%8.1f", lo)
		case plotHeight / 2:
			label = fmt.Sprintf("%8.1f", (hi+lo)/2)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	// X tick labels, centered per column.
	tickLine := make([]byte, width)
	for i := range tickLine {
		tickLine[i] = ' '
	}
	for i, tk := range f.XTicks {
		start := colOf(i) - len(tk)/2
		if start < 0 {
			start = 0
		}
		for j := 0; j < len(tk) && start+j < width; j++ {
			tickLine[start+j] = tk[j]
		}
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), string(tickLine))
	fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", 8), f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", 8), seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}
