package report

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// ClassTable renders the per-client-class results of a multi-client
// workload: each class's share of the traffic, its response distribution,
// and its SLO outcome. Returns nil for classless runs so callers can
// render unconditionally.
func ClassTable(title string, classes []array.ClassResults) *Table {
	if len(classes) == 0 {
		return nil
	}
	t := &Table{
		Title:   title,
		Columns: []string{"class", "slo", "requests", "reads", "writes", "mean ms", "p95 ms", "p99 ms", "miss%", "shed"},
	}
	for i := range classes {
		c := &classes[i]
		t.AddRow(
			c.Name,
			trace.SLOName(c.SLO),
			fmt.Sprintf("%d", c.Requests),
			fmt.Sprintf("%d", c.Reads),
			fmt.Sprintf("%d", c.Writes),
			fmt.Sprintf("%.2f", c.Resp.Mean()),
			fmt.Sprintf("%.2f", c.Resp.Quantile(0.95)),
			fmt.Sprintf("%.2f", c.Resp.Quantile(0.99)),
			missPct(c.DeadlineMissed, c.DeadlineMet+c.DeadlineMissed),
			fmt.Sprintf("%d", c.Shed),
		)
	}
	return t
}

// ClassSeriesTable renders the per-class time series side by side — one
// row per window, per class its completions, mean and p95 response — the
// view that makes a diurnal workload's shifting mix (and its tail) visible.
// Returns nil when the series is absent or classless.
func ClassSeriesTable(title string, s *obs.Series) *Table {
	if s == nil || len(s.Classes) == 0 {
		return nil
	}
	cols := []string{"t(s)"}
	for _, c := range s.Classes {
		cols = append(cols, c+" req", c+" ms", c+" p95")
	}
	t := &Table{Title: title, Columns: cols}
	for _, p := range s.Points() {
		row := []string{fmt.Sprintf("%.0f", float64(p.Start)/float64(sim.Second))}
		for j := range s.Classes {
			row = append(row,
				fmt.Sprintf("%d", p.ClassRequests[j]),
				fmt.Sprintf("%.2f", p.ClassMeanMS[j]),
				fmt.Sprintf("%.2f", p.ClassP95MS[j]))
		}
		t.AddRow(row...)
	}
	return t
}
