// Package report renders experiment results as fixed-width ASCII tables
// and "figures" (series tables), plus CSV for external plotting. All
// output is deterministic: rows and columns appear in the order given.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple grid with a title, column headers and string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it panics if the width disagrees with Columns.
func (t *Table) AddRow(cells ...string) {
	if len(t.Columns) > 0 && len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned fixed-width form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			// Right-align numbers (cells starting with a digit, +, -, or .).
			if len(cell) > 0 && strings.ContainsRune("0123456789+-.", rune(cell[0])) && i > 0 {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no quoting needed: cells are
// numbers and identifiers).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one line of a figure: a name and y-values over the shared
// x-axis of the Figure it belongs to.
type Series struct {
	Name   string
	Values []float64
}

// Figure reproduces a paper figure as a table of series: x-axis values in
// the first column, one column per series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
	Notes  []string
}

// Add appends a series; it panics if the length disagrees with XTicks.
func (f *Figure) Add(name string, values ...float64) {
	if len(values) != len(f.XTicks) {
		panic(fmt.Sprintf("report: series %q has %d values, figure has %d ticks", name, len(values), len(f.XTicks)))
	}
	f.Series = append(f.Series, Series{Name: name, Values: values})
}

// AddNote appends a footnote line.
func (f *Figure) AddNote(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Table converts the figure to a Table (x down the rows).
func (f *Figure) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s  [y: %s]", f.Title, f.YLabel),
		Columns: append([]string{f.XLabel}, names(f.Series)...),
		Notes:   f.Notes,
	}
	for i, x := range f.XTicks {
		row := []string{x}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Render writes the figure as an aligned table.
func (f *Figure) Render(w io.Writer) error { return f.Table().Render(w) }

// RenderCSV writes the figure as CSV.
func (f *Figure) RenderCSV(w io.Writer) error { return f.Table().RenderCSV(w) }

func names(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
