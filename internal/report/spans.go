package report

import (
	"fmt"

	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// TailTable renders the tail-anatomy view: one row per retained
// slowest-K request span tree, decomposing its response time into the
// pipeline stages the tracer recorded. Stage columns sum spans across
// the tree's device operations, which overlap in time, so they can
// exceed the response column — they attribute where the time went, not
// a serial decomposition.
func TailTable(title string, samples []obs.SpanSample) *Table {
	t := &Table{
		Title: title,
		Columns: []string{
			"class", "arr", "t (s)", "resp ms",
			"admit", "queue", "position", "media", "chan", "stall", "ops",
		},
	}
	for _, s := range samples {
		tree := s.Tree
		root := tree.Root()
		position := tree.StageMS(obs.SpanSeekRotate) + tree.StageMS(obs.SpanRealign) + tree.StageMS(obs.SpanHold)
		media := tree.StageMS(obs.SpanTransfer) + tree.StageMS(obs.SpanReadOld) + tree.StageMS(obs.SpanWriteNew)
		t.AddRow(
			tree.Class,
			fmt.Sprintf("%d", s.Array),
			fmt.Sprintf("%.2f", float64(root.Start)/float64(sim.Second)),
			fmt.Sprintf("%.2f", sim.Millis(tree.Duration())),
			fmt.Sprintf("%.2f", tree.StageMS(obs.SpanAdmit)),
			fmt.Sprintf("%.2f", tree.StageMS(obs.SpanQueue)),
			fmt.Sprintf("%.2f", position),
			fmt.Sprintf("%.2f", media),
			fmt.Sprintf("%.2f", tree.StageMS(obs.SpanChannel)),
			fmt.Sprintf("%.2f", tree.StageMS(obs.SpanStall)),
			fmt.Sprintf("%d", tree.DeviceOps()),
		)
	}
	t.AddNote("position = seek+rotate + realign + held rotations; media = transfer + read-old + write-new")
	t.AddNote("stage columns sum overlapping per-device spans and may exceed resp")
	return t
}
