package report

import (
	"strings"
	"testing"
)

func TestEstimateString(t *testing.T) {
	if got := (Estimate{Mean: 12.3456, N: 1}).String(); got != "12.35" {
		t.Errorf("single-rep estimate = %q", got)
	}
	if got := (Estimate{Mean: 10, Half: 0.5, N: 8}).String(); got != "10.00 ±5.0%" {
		t.Errorf("estimate with CI = %q", got)
	}
}

func TestCompareTableGolden(t *testing.T) {
	tbl := CompareTable("raid5 vs mirror", "ms", "raid5", "mirror", []CompareRow{
		{Name: "resp", A: Estimate{Mean: 40, Half: 1, N: 4}, B: Estimate{Mean: 30, Half: 1, N: 4}},
		{Name: "read", A: Estimate{Mean: 20, Half: 4, N: 4}, B: Estimate{Mean: 22, Half: 4, N: 4}},
		{Name: "write", A: Estimate{}, B: Estimate{Mean: 5, N: 1}},
	})
	var buf strings.Builder
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	want := "raid5 vs mirror\n" +
		"name   raid5 (ms)     mirror (ms)    delta \n" +
		"-------------------------------------------\n" +
		"resp    40.00 ±2.5%   30.00 ±3.3%  -25.0%\n" +
		"read   20.00 ±20.0%  22.00 ±18.2%  ~     \n" +
		"write           0.00           5.00  ?     \n" +
		"note: ~ marks deltas whose 95% confidence intervals overlap (n too small to resolve)\n\n"
	if got := buf.String(); got != want {
		t.Errorf("compare table drifted:\n got:\n%q\nwant:\n%q", got, want)
	}
}

func TestCompareTableDeltaSign(t *testing.T) {
	tbl := CompareTable("t", "ms", "a", "b", []CompareRow{
		{Name: "up", A: Estimate{Mean: 10, N: 1}, B: Estimate{Mean: 15, N: 1}},
	})
	if tbl.Rows[0][3] != "+50.0%" {
		t.Errorf("delta = %q, want +50.0%%", tbl.Rows[0][3])
	}
}
