// Package geom models disk drive geometry and mechanics: the mapping from
// block numbers to cylinder/head/sector coordinates, the non-linear seek
// time curve, and rotational timing. The default parameters reproduce
// Table 1 of the paper (a 5400 rpm, ~0.9 GB drive with 1260 cylinders,
// 30 recording surfaces, 48 sectors of 512 bytes per track).
package geom

import (
	"fmt"

	"raidsim/internal/sim"
)

// Spec describes a disk drive model and the channel attaching it.
type Spec struct {
	RPM             int     // spindle speed, revolutions per minute
	Cylinders       int     // seek positions
	Heads           int     // recording surfaces (tracks per cylinder)
	SectorsPerTrack int     // sectors on each track
	SectorBytes     int     // bytes per sector
	AvgSeekMS       float64 // catalog average seek time, ms
	MaxSeekMS       float64 // full-stroke seek time, ms
	MinSeekMS       float64 // single-cylinder seek time, ms
	ChannelMBps     float64 // channel transfer rate, MB/s
	BlockBytes      int     // logical block (page) size in bytes
}

// Default returns the drive of Table 1. The paper lists 15 platters and
// 1260 tracks per platter; with two surfaces per platter (30 heads) the
// capacity works out to the "about 0.9 GByte" the paper quotes:
// 1260 * 30 * 48 * 512 = 929 MB.
func Default() Spec {
	return Spec{
		RPM:             5400,
		Cylinders:       1260,
		Heads:           30,
		SectorsPerTrack: 48,
		SectorBytes:     512,
		AvgSeekMS:       11.2,
		MaxSeekMS:       28.0,
		MinSeekMS:       1.5,
		ChannelMBps:     10.0,
		BlockBytes:      4096,
	}
}

// Validate reports whether the Spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.RPM <= 0:
		return fmt.Errorf("geom: RPM must be positive, got %d", s.RPM)
	case s.Cylinders < 2:
		return fmt.Errorf("geom: need at least 2 cylinders, got %d", s.Cylinders)
	case s.Heads <= 0:
		return fmt.Errorf("geom: heads must be positive, got %d", s.Heads)
	case s.SectorsPerTrack <= 0:
		return fmt.Errorf("geom: sectors per track must be positive, got %d", s.SectorsPerTrack)
	case s.SectorBytes <= 0:
		return fmt.Errorf("geom: sector size must be positive, got %d", s.SectorBytes)
	case s.BlockBytes <= 0 || s.BlockBytes%s.SectorBytes != 0:
		return fmt.Errorf("geom: block size %d must be a positive multiple of sector size %d", s.BlockBytes, s.SectorBytes)
	case s.SectorsPerBlock() > s.SectorsPerTrack:
		return fmt.Errorf("geom: block (%d sectors) larger than a track (%d sectors)", s.SectorsPerBlock(), s.SectorsPerTrack)
	case s.SectorsPerTrack%s.SectorsPerBlock() != 0:
		return fmt.Errorf("geom: %d sectors/track not a multiple of %d sectors/block", s.SectorsPerTrack, s.SectorsPerBlock())
	case s.AvgSeekMS <= s.MinSeekMS || s.MaxSeekMS <= s.AvgSeekMS:
		return fmt.Errorf("geom: need min < avg < max seek, got %.2f/%.2f/%.2f", s.MinSeekMS, s.AvgSeekMS, s.MaxSeekMS)
	case s.ChannelMBps <= 0:
		return fmt.Errorf("geom: channel rate must be positive, got %f", s.ChannelMBps)
	}
	return nil
}

// SectorsPerBlock returns sectors per logical block.
func (s Spec) SectorsPerBlock() int { return s.BlockBytes / s.SectorBytes }

// BlocksPerTrack returns logical blocks per track.
func (s Spec) BlocksPerTrack() int { return s.SectorsPerTrack / s.SectorsPerBlock() }

// BlocksPerCylinder returns logical blocks per cylinder.
func (s Spec) BlocksPerCylinder() int { return s.BlocksPerTrack() * s.Heads }

// BlocksPerDisk returns logical blocks on the whole drive.
func (s Spec) BlocksPerDisk() int64 {
	return int64(s.BlocksPerCylinder()) * int64(s.Cylinders)
}

// CapacityBytes returns the formatted capacity of the drive.
func (s Spec) CapacityBytes() int64 {
	return int64(s.Cylinders) * int64(s.Heads) * int64(s.SectorsPerTrack) * int64(s.SectorBytes)
}

// RotationTime returns the time for one full revolution.
func (s Spec) RotationTime() sim.Time {
	return sim.Time(60*int64(sim.Second)) / sim.Time(s.RPM)
}

// SectorTime returns the time for one sector to pass under the head.
func (s Spec) SectorTime() sim.Time {
	return s.RotationTime() / sim.Time(s.SectorsPerTrack)
}

// BlockTransferTime returns the media transfer time of one logical block.
func (s Spec) BlockTransferTime() sim.Time {
	return s.SectorTime() * sim.Time(s.SectorsPerBlock())
}

// ChannelTime returns the channel transfer time for n logical blocks at
// the spec's channel rate.
func (s Spec) ChannelTime(n int) sim.Time {
	bytes := float64(n) * float64(s.BlockBytes)
	sec := bytes / (s.ChannelMBps * 1e6)
	return sim.Time(sec * float64(sim.Second))
}

// CHS is a physical block coordinate on a drive.
type CHS struct {
	Cylinder int
	Head     int
	Block    int // block index within the track
}

// ToCHS converts an on-disk block number to its physical coordinate.
// Blocks are laid out track-major: consecutive blocks fill a track, then
// the next head in the same cylinder, then the next cylinder, which is
// the conventional mapping that preserves sequential-access performance.
func (s Spec) ToCHS(block int64) CHS {
	if block < 0 || block >= s.BlocksPerDisk() {
		panic(fmt.Sprintf("geom: block %d out of range [0,%d)", block, s.BlocksPerDisk()))
	}
	bpt := int64(s.BlocksPerTrack())
	bpc := int64(s.BlocksPerCylinder())
	cyl := block / bpc
	rem := block % bpc
	return CHS{
		Cylinder: int(cyl),
		Head:     int(rem / bpt),
		Block:    int(rem % bpt),
	}
}

// FromCHS converts a physical coordinate back to a block number.
func (s Spec) FromCHS(c CHS) int64 {
	return int64(c.Cylinder)*int64(s.BlocksPerCylinder()) +
		int64(c.Head)*int64(s.BlocksPerTrack()) + int64(c.Block)
}

// AngleOfBlock returns the starting angular position of a block within its
// track, as a fraction of a revolution in [0, 1).
func (s Spec) AngleOfBlock(trackBlock int) float64 {
	return float64(trackBlock) / float64(s.BlocksPerTrack())
}
