package geom

import (
	"math"
	"testing"
	"testing/quick"

	"raidsim/internal/sim"
)

func TestDefaultSpecMatchesTable1(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if s.RPM != 5400 || s.Cylinders != 1260 || s.SectorsPerTrack != 48 || s.SectorBytes != 512 {
		t.Fatalf("default spec drifted from Table 1: %+v", s)
	}
	// "Total capacity of each disk is about 0.9 GByte."
	gb := float64(s.CapacityBytes()) / 1e9
	if gb < 0.85 || gb > 0.95 {
		t.Fatalf("capacity %.3f GB, want about 0.9", gb)
	}
}

func TestDerivedQuantities(t *testing.T) {
	s := Default()
	if s.SectorsPerBlock() != 8 {
		t.Fatalf("sectors per 4KB block = %d, want 8", s.SectorsPerBlock())
	}
	if s.BlocksPerTrack() != 6 {
		t.Fatalf("blocks per track = %d, want 6", s.BlocksPerTrack())
	}
	if s.BlocksPerCylinder() != 180 {
		t.Fatalf("blocks per cylinder = %d, want 180", s.BlocksPerCylinder())
	}
	if s.BlocksPerDisk() != 226800 {
		t.Fatalf("blocks per disk = %d, want 226800", s.BlocksPerDisk())
	}
	// 5400 rpm -> 11.111... ms per rotation.
	rot := s.RotationTime()
	if rot < 11111110 || rot > 11111112 {
		t.Fatalf("rotation time = %d ns", rot)
	}
	if s.SectorTime()*48 > rot || s.SectorTime()*49 < rot {
		t.Fatalf("sector time inconsistent: %d", s.SectorTime())
	}
	// 4KB over a 10 MB/s channel = 409.6 us.
	ch := s.ChannelTime(1)
	if ch < 409000 || ch > 410000 {
		t.Fatalf("channel time for one block = %d ns", ch)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	mods := []func(*Spec){
		func(s *Spec) { s.RPM = 0 },
		func(s *Spec) { s.Cylinders = 1 },
		func(s *Spec) { s.Heads = 0 },
		func(s *Spec) { s.SectorsPerTrack = 0 },
		func(s *Spec) { s.SectorBytes = 0 },
		func(s *Spec) { s.BlockBytes = 1000 },  // not a sector multiple
		func(s *Spec) { s.BlockBytes = 65536 }, // bigger than a track
		func(s *Spec) { s.BlockBytes = 5120 },  // 10 sectors: doesn't divide 48
		func(s *Spec) { s.AvgSeekMS = 30 },     // avg > max
		func(s *Spec) { s.MinSeekMS = 12 },     // min > avg
		func(s *Spec) { s.ChannelMBps = 0 },
	}
	for i, mod := range mods {
		s := Default()
		mod(&s)
		if s.Validate() == nil {
			t.Errorf("mod %d: Validate accepted a broken spec", i)
		}
	}
}

func TestCHSRoundtrip(t *testing.T) {
	s := Default()
	f := func(raw uint32) bool {
		b := int64(raw) % s.BlocksPerDisk()
		chs := s.ToCHS(b)
		if chs.Cylinder < 0 || chs.Cylinder >= s.Cylinders ||
			chs.Head < 0 || chs.Head >= s.Heads ||
			chs.Block < 0 || chs.Block >= s.BlocksPerTrack() {
			return false
		}
		return s.FromCHS(chs) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCHSSequential(t *testing.T) {
	s := Default()
	// Blocks fill a track, then the next head, then the next cylinder.
	c0 := s.ToCHS(0)
	if c0 != (CHS{0, 0, 0}) {
		t.Fatalf("block 0 at %+v", c0)
	}
	c5 := s.ToCHS(5)
	if c5 != (CHS{0, 0, 5}) {
		t.Fatalf("block 5 at %+v", c5)
	}
	c6 := s.ToCHS(6)
	if c6 != (CHS{0, 1, 0}) {
		t.Fatalf("block 6 at %+v (head switch expected)", c6)
	}
	cc := s.ToCHS(int64(s.BlocksPerCylinder()))
	if cc != (CHS{1, 0, 0}) {
		t.Fatalf("first block of cylinder 1 at %+v", cc)
	}
}

func TestToCHSPanicsOutOfRange(t *testing.T) {
	s := Default()
	for _, b := range []int64{-1, s.BlocksPerDisk()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ToCHS(%d) should panic", b)
				}
			}()
			s.ToCHS(b)
		}()
	}
}

func TestAngleOfBlock(t *testing.T) {
	s := Default()
	if a := s.AngleOfBlock(0); a != 0 {
		t.Fatalf("angle of track block 0 = %f", a)
	}
	if a := s.AngleOfBlock(3); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("angle of track block 3 = %f, want 0.5", a)
	}
}

func TestSeekCalibration(t *testing.T) {
	s := Default()
	m, err := CalibrateSeek(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.A < 0 || m.B < 0 {
		t.Fatalf("negative coefficients: %+v", m)
	}
	// Pinned points.
	if got := m.TimeMS(0); got != 0 {
		t.Fatalf("seek(0) = %f, want 0", got)
	}
	if got := m.TimeMS(1); math.Abs(got-s.MinSeekMS) > 1e-9 {
		t.Fatalf("seek(1) = %f, want %f", got, s.MinSeekMS)
	}
	if got := m.TimeMS(s.Cylinders - 1); math.Abs(got-s.MaxSeekMS) > 1e-6 {
		t.Fatalf("full stroke = %f, want %f", got, s.MaxSeekMS)
	}
	if got := m.MeanMS(); math.Abs(got-s.AvgSeekMS) > 1e-6 {
		t.Fatalf("mean seek = %f, want %f", got, s.AvgSeekMS)
	}
	// Monotonic non-decreasing.
	prev := 0.0
	for d := 0; d < s.Cylinders; d++ {
		v := m.TimeMS(d)
		if v < prev-1e-12 {
			t.Fatalf("seek not monotone at distance %d", d)
		}
		prev = v
	}
	// Time() converts consistently (within integer-nanosecond rounding).
	if dt := m.Time(100); math.Abs(sim.Millis(dt)-m.TimeMS(100)) > 1e-5 {
		t.Fatalf("Time/TimeMS mismatch: %f vs %f", sim.Millis(dt), m.TimeMS(100))
	}
}

func TestMustCalibrateSeekPanics(t *testing.T) {
	s := Default()
	s.AvgSeekMS = 100 // > max
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCalibrateSeek(s)
}
