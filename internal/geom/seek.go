package geom

import (
	"fmt"
	"math"

	"raidsim/internal/sim"
)

// SeekModel evaluates the paper's non-linear seek time curve
//
//	t(d) = a*sqrt(d-1) + b*(d-1) + c   for seek distance d >= 1 cylinder,
//	t(0) = 0,
//
// with coefficients calibrated so the curve hits the drive's catalog
// single-cylinder, average, and full-stroke seek times. "Average" is taken
// over the distance distribution of independent uniformly random source and
// target cylinders, conditioned on actually moving (d >= 1) — the standard
// way drive catalogs define average seek.
type SeekModel struct {
	A, B, C   float64 // coefficients, in milliseconds
	Cylinders int
}

// CalibrateSeek solves for a and b given c = MinSeekMS so that the mean
// seek equals AvgSeekMS and the full-stroke seek equals MaxSeekMS.
func CalibrateSeek(s Spec) (SeekModel, error) {
	if err := s.Validate(); err != nil {
		return SeekModel{}, err
	}
	c := s.MinSeekMS
	cyls := s.Cylinders
	maxD := float64(cyls - 1)

	// Distance distribution for uniform random pairs: P(d) = 2(C-d)/C^2
	// for 1 <= d <= C-1. Compute conditional moments E[sqrt(d-1) | d>=1]
	// and E[d-1 | d>=1].
	var wSum, sqrtSum, linSum float64
	for d := 1; d < cyls; d++ {
		w := 2 * float64(cyls-d)
		wSum += w
		sqrtSum += w * math.Sqrt(float64(d-1))
		linSum += w * float64(d-1)
	}
	eSqrt := sqrtSum / wSum
	eLin := linSum / wSum

	// Solve:
	//   a*eSqrt        + b*eLin        = avg - c
	//   a*sqrt(maxD-1) + b*(maxD-1)    = max - c
	m11, m12, r1 := eSqrt, eLin, s.AvgSeekMS-c
	m21, m22, r2 := math.Sqrt(maxD-1), maxD-1, s.MaxSeekMS-c
	det := m11*m22 - m12*m21
	if math.Abs(det) < 1e-12 {
		return SeekModel{}, fmt.Errorf("geom: singular seek calibration for %+v", s)
	}
	a := (r1*m22 - r2*m12) / det
	b := (m11*r2 - m21*r1) / det
	if a < 0 || b < 0 {
		return SeekModel{}, fmt.Errorf("geom: seek calibration gave negative coefficients a=%g b=%g; spec seek times are inconsistent", a, b)
	}
	return SeekModel{A: a, B: b, C: c, Cylinders: cyls}, nil
}

// MustCalibrateSeek is CalibrateSeek that panics on error, for use with
// known-good specs.
func MustCalibrateSeek(s Spec) SeekModel {
	m, err := CalibrateSeek(s)
	if err != nil {
		panic(err)
	}
	return m
}

// TimeMS returns the seek time in milliseconds for a move of d cylinders.
func (m SeekModel) TimeMS(d int) float64 {
	if d <= 0 {
		return 0
	}
	x := float64(d - 1)
	return m.A*math.Sqrt(x) + m.B*x + m.C
}

// Time returns the seek time as a simulation duration.
func (m SeekModel) Time(d int) sim.Time {
	return sim.FromMillis(m.TimeMS(d))
}

// MeanMS returns the model's mean seek time over the random-pair distance
// distribution conditioned on d >= 1 (should equal the calibrated average).
func (m SeekModel) MeanMS() float64 {
	var wSum, tSum float64
	for d := 1; d < m.Cylinders; d++ {
		w := 2 * float64(m.Cylinders-d)
		wSum += w
		tSum += w * m.TimeMS(d)
	}
	return tSum / wSum
}
