package sim

import "testing"

// benchEngineCalls is the AtCall counterpart of the closure depth sweep:
// each fired Call schedules its replacement through the free list, so
// steady state performs zero allocations.
func benchEngineCalls(b *testing.B, depth int) {
	eng := New()
	n := 0
	var fire func(*Engine, *Call)
	fire = func(e *Engine, c *Call) {
		n++
		if n < b.N {
			e.AfterCall(1000, fire)
		}
	}
	for i := 0; i < depth-1; i++ {
		eng.At(Time(1)<<40+Time(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.AfterCall(1, fire)
	for n < b.N {
		if !eng.Step() {
			b.Fatal("engine drained early")
		}
	}
}
