package sim

// Semaphore is a counting semaphore that lives in simulated time: Acquire
// either grants immediately or queues the caller's callback until a unit is
// released. It models finite resources such as track buffers.
type Semaphore struct {
	eng     *Engine
	free    int
	cap     int
	waiters []func()
	// peakWait tracks the maximum number of simultaneously queued waiters,
	// a cheap congestion indicator for stats.
	peakWait int
}

// NewSemaphore returns a semaphore with n units available.
func NewSemaphore(eng *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: semaphore capacity must be non-negative")
	}
	return &Semaphore{eng: eng, free: n, cap: n}
}

// Free reports the number of units currently available.
func (s *Semaphore) Free() int { return s.free }

// Cap reports the total capacity.
func (s *Semaphore) Cap() int { return s.cap }

// Waiting reports the number of queued acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// PeakWaiting reports the maximum queue length observed.
func (s *Semaphore) PeakWaiting() int { return s.peakWait }

// Acquire requests one unit. fn runs (in simulated time) once the unit is
// granted — immediately if one is free, otherwise when released. FIFO order.
func (s *Semaphore) Acquire(fn func()) {
	if s.free > 0 {
		s.free--
		fn()
		return
	}
	s.waiters = append(s.waiters, fn)
	if len(s.waiters) > s.peakWait {
		s.peakWait = len(s.waiters)
	}
}

// Release returns one unit, immediately handing it to the oldest waiter if
// any. The waiter's callback runs synchronously at the current instant.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		fn := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		fn()
		return
	}
	s.free++
	if s.free > s.cap {
		panic("sim: semaphore released more than acquired")
	}
}
