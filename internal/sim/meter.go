package sim

import (
	"fmt"
	"runtime"
	"time"
)

// MeterStats is one metered interval of an engine's execution: how many
// events it processed, how long that took in host wall-clock time, how
// deep its pending-event heap grew, how well the Call free list recycled,
// and how much the process allocated while it ran. Everything here is
// observation of the host, never of the simulation: metering an engine
// schedules no events, consumes no randomness, and leaves every
// simulation output bit-identical.
type MeterStats struct {
	// Events is the number of engine events executed in the interval.
	Events uint64 `json:"events"`
	// WallNS is the host wall-clock nanoseconds the interval covered.
	WallNS int64 `json:"wall_ns"`
	// HeapHighWater is the deepest the pending-event heap has ever been
	// on this engine (cumulative over the engine's life, not the
	// interval: the high-water mark never resets).
	HeapHighWater int `json:"heap_high_water"`
	// CallHits counts AtCall/AfterCall payloads served from the free
	// list; CallMisses counts acquisitions that had to allocate a fresh
	// chunk. Hits/(Hits+Misses) is the steady-state recycling ratio.
	CallHits   uint64 `json:"call_hits"`
	CallMisses uint64 `json:"call_misses"`
	// AllocBytes and Mallocs are runtime.MemStats deltas (TotalAlloc,
	// Mallocs) across the interval. They are process-wide: with several
	// engines running concurrently each meter sees the sum of everyone's
	// allocation traffic, so treat per-engine values as an upper bound
	// and prefer the campaign-level aggregate.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
}

// EventsPerSec returns the metered execution rate, 0 for an empty or
// zero-length interval.
func (m MeterStats) EventsPerSec() float64 {
	if m.WallNS <= 0 {
		return 0
	}
	return float64(m.Events) / (float64(m.WallNS) / 1e9)
}

// CallHitRatio returns the free-list recycling ratio, 0 with no traffic.
func (m MeterStats) CallHitRatio() float64 {
	n := m.CallHits + m.CallMisses
	if n == 0 {
		return 0
	}
	return float64(m.CallHits) / float64(n)
}

// Add folds another metered interval into m: counters and wall time sum
// (summed wall across concurrent engines is engine-busy time, not
// elapsed time), the heap high-water takes the max.
func (m *MeterStats) Add(o MeterStats) {
	m.Events += o.Events
	m.WallNS += o.WallNS
	if o.HeapHighWater > m.HeapHighWater {
		m.HeapHighWater = o.HeapHighWater
	}
	m.CallHits += o.CallHits
	m.CallMisses += o.CallMisses
	m.AllocBytes += o.AllocBytes
	m.Mallocs += o.Mallocs
}

func (m MeterStats) String() string {
	return fmt.Sprintf("events=%d wall=%s ev/s=%.0f heap_hw=%d call=%d/%d alloc=%dB",
		m.Events, time.Duration(m.WallNS), m.EventsPerSec(),
		m.HeapHighWater, m.CallHits, m.CallMisses, m.AllocBytes)
}

// Meter is an armed measurement interval on one engine. StartMeter
// captures the baseline; Stop returns the deltas. The engine's hot-path
// counters (steps, heap high-water, free-list hits) are maintained
// whether or not a meter is armed — arming only snapshots them — so a
// metered run executes the same instructions as an unmetered one apart
// from the two boundary reads.
type Meter struct {
	eng       *Engine
	wall      time.Time
	steps     uint64
	hits      uint64
	misses    uint64
	alloc     uint64
	mallocs   uint64
	memStats  bool
	stopped   bool
	lastStats MeterStats
}

// StartMeter arms a meter on the engine. readMem additionally captures
// runtime.MemStats deltas (TotalAlloc/Mallocs); reading MemStats briefly
// stops the world, so callers metering thousands of short engines may
// prefer readMem=false.
func (e *Engine) StartMeter(readMem bool) *Meter {
	m := &Meter{
		eng:      e,
		wall:     time.Now(),
		steps:    e.steps,
		hits:     e.callHits,
		misses:   e.callMisses,
		memStats: readMem,
	}
	if readMem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.alloc, m.mallocs = ms.TotalAlloc, ms.Mallocs
	}
	return m
}

// Stop ends the interval and returns its stats. A second Stop returns
// the same stats (the interval ended at the first Stop).
func (m *Meter) Stop() MeterStats {
	if m.stopped {
		return m.lastStats
	}
	m.stopped = true
	s := MeterStats{
		Events:        m.eng.steps - m.steps,
		WallNS:        time.Since(m.wall).Nanoseconds(),
		HeapHighWater: m.eng.heapHW,
		CallHits:      m.eng.callHits - m.hits,
		CallMisses:    m.eng.callMisses - m.misses,
	}
	if m.memStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.AllocBytes = ms.TotalAlloc - m.alloc
		s.Mallocs = ms.Mallocs - m.mallocs
	}
	m.lastStats = s
	return s
}

// HeapHighWater returns the deepest the pending-event heap has been over
// the engine's lifetime.
func (e *Engine) HeapHighWater() int { return e.heapHW }

// CallFreeList returns the cumulative free-list hit and miss counts of
// the AtCall/AfterCall payload allocator.
func (e *Engine) CallFreeList() (hits, misses uint64) {
	return e.callHits, e.callMisses
}
