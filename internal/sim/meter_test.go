package sim

import "testing"

// TestMeterCountsEventsAndHeap drives a known event pattern and checks
// the meter's counters match it exactly.
func TestMeterCountsEventsAndHeap(t *testing.T) {
	e := New()
	m := e.StartMeter(true)
	// Schedule 32 events up front: the heap must reach depth 32.
	fired := 0
	for i := 0; i < 32; i++ {
		e.At(Time(i)*Millisecond, func() { fired++ })
	}
	e.Run()
	s := m.Stop()
	if fired != 32 {
		t.Fatalf("fired %d events, want 32", fired)
	}
	if s.Events != 32 {
		t.Errorf("meter saw %d events, want 32", s.Events)
	}
	if s.HeapHighWater != 32 {
		t.Errorf("heap high-water %d, want 32", s.HeapHighWater)
	}
	if s.WallNS <= 0 {
		t.Errorf("non-positive wall time %d", s.WallNS)
	}
	if s.EventsPerSec() <= 0 {
		t.Errorf("non-positive events/sec")
	}
	// A second Stop returns the same interval.
	if again := m.Stop(); again != s {
		t.Errorf("second Stop returned %+v, want %+v", again, s)
	}
}

// TestMeterCallFreeList checks hit/miss accounting: the first acquisition
// allocates a chunk (miss), recycled Calls are hits.
func TestMeterCallFreeList(t *testing.T) {
	e := New()
	m := e.StartMeter(false)
	n := 0
	var tick func(*Engine, *Call)
	tick = func(e *Engine, _ *Call) {
		n++
		if n < 200 {
			e.AfterCall(Millisecond, tick)
		}
	}
	e.AfterCall(Millisecond, tick)
	e.Run()
	s := m.Stop()
	if n != 200 {
		t.Fatalf("ran %d ticks, want 200", n)
	}
	// One event in flight at a time: a single chunk covers the whole run.
	if s.CallMisses != 1 {
		t.Errorf("call misses %d, want 1 (one chunk)", s.CallMisses)
	}
	if s.CallHits != 199 {
		t.Errorf("call hits %d, want 199", s.CallHits)
	}
	if r := s.CallHitRatio(); r < 0.99 {
		t.Errorf("hit ratio %.3f, want >= 0.99", r)
	}
}

// TestMeterIntervalDeltas checks that a meter armed mid-run sees only its
// own interval, while the heap high-water stays cumulative.
func TestMeterIntervalDeltas(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {})
	}
	e.Run() // 10 events before the meter arms; heap reached 10
	m := e.StartMeter(false)
	for i := 0; i < 5; i++ {
		e.At(e.Now()+Time(i+1), func() {})
	}
	e.Run()
	s := m.Stop()
	if s.Events != 5 {
		t.Errorf("metered interval saw %d events, want 5", s.Events)
	}
	if s.HeapHighWater != 10 {
		t.Errorf("heap high-water %d, want cumulative 10", s.HeapHighWater)
	}
}

// TestMeterStatsAdd checks the aggregate semantics: sums everywhere, max
// for the heap high-water.
func TestMeterStatsAdd(t *testing.T) {
	a := MeterStats{Events: 10, WallNS: 100, HeapHighWater: 3, CallHits: 5, CallMisses: 1, AllocBytes: 64, Mallocs: 2}
	b := MeterStats{Events: 20, WallNS: 50, HeapHighWater: 7, CallHits: 2, CallMisses: 2, AllocBytes: 32, Mallocs: 1}
	a.Add(b)
	want := MeterStats{Events: 30, WallNS: 150, HeapHighWater: 7, CallHits: 7, CallMisses: 3, AllocBytes: 96, Mallocs: 3}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}
