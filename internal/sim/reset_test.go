package sim

import (
	"fmt"
	"testing"
)

// script runs a fixed event scenario — closure events, Call events, a
// cancellation, same-tick ties — and returns the firing order.
func script(e *Engine) []string {
	var got []string
	e.At(5, func() { got = append(got, fmt.Sprintf("a@%d", e.Now())) })
	c := e.AtCall(5, func(e *Engine, c *Call) {
		got = append(got, fmt.Sprintf("b%d@%d", c.N0, e.Now()))
		nc := e.AfterCall(3, func(e *Engine, c *Call) {
			got = append(got, fmt.Sprintf("c%d@%d", c.N0, e.Now()))
		})
		nc.N0 = c.N0 + 1
	})
	c.N0 = 7
	dead := e.AtCall(6, func(*Engine, *Call) { got = append(got, "dead") })
	e.Cancel(dead)
	e.Run()
	return got
}

// TestResetReplaysBitIdentically pins Reset's contract: a reset engine —
// even one abandoned mid-run with events still pending — replays any
// scenario exactly as a fresh one does, and scheduling after the reset
// reuses the recycled Call payloads instead of allocating new chunks.
func TestResetReplaysBitIdentically(t *testing.T) {
	want := script(New())

	e := New()
	// Dirty the engine: advance the clock, leave pending closure and
	// Call events behind, as the drain loop leaves an array's tickers.
	e.At(10, func() {})
	e.RunUntil(20)
	e.AfterCall(50, func(*Engine, *Call) {}).N0 = 99
	e.After(70, func() {})
	e.Reset()

	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%d pending=%d, want 0/0", e.Now(), e.Pending())
	}
	_, missesBefore := e.CallFreeList()
	got := script(e)
	if _, misses := e.CallFreeList(); misses != missesBefore {
		t.Errorf("scheduling after Reset allocated %d fresh chunks; the free list should have served them", misses-missesBefore)
	}
	if len(got) != len(want) {
		t.Fatalf("reset engine fired %d events, fresh fired %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("firing %d: reset engine %q, fresh %q", i, got[i], want[i])
		}
	}
}

// TestResetKeepsCumulativeCounters: steps and the heap high-water carry
// across Reset (per-interval figures come from deltas), so a meter
// spanning several resets sees the union.
func TestResetKeepsCumulativeCounters(t *testing.T) {
	e := New()
	for i := 0; i < 8; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	steps, hw := e.Steps(), e.HeapHighWater()
	if steps != 8 || hw != 8 {
		t.Fatalf("pre-reset steps=%d hw=%d, want 8/8", steps, hw)
	}
	e.Reset()
	if e.Steps() != steps {
		t.Errorf("Reset changed steps: %d -> %d", steps, e.Steps())
	}
	if e.HeapHighWater() != hw {
		t.Errorf("Reset changed heap high-water: %d -> %d", hw, e.HeapHighWater())
	}
	e.At(0, func() {})
	e.Run()
	if e.Steps() != steps+1 {
		t.Errorf("steps after reset+1 event = %d, want %d", e.Steps(), steps+1)
	}
}
