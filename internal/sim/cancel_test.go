package sim

import "testing"

// TestCancelSkipsCallback: a cancelled Call-form event advances the clock
// but never runs its callback.
func TestCancelSkipsCallback(t *testing.T) {
	e := New()
	fired := false
	c := e.AfterCall(10, func(*Engine, *Call) { fired = true })
	c.N0 = 42
	e.Cancel(c)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Now() != 10 {
		t.Fatalf("clock at %d, want 10 (cancelled event still advances time)", e.Now())
	}
	if e.Steps() != 1 {
		t.Fatalf("steps %d, want 1", e.Steps())
	}
}

// TestCancelNeverDoubleFires is the free-list regression test: a
// cancelled event's Call must be recycled exactly once — at pop time —
// so a payload reacquired for a later event cannot be fired by the stale
// heap entry of the event that was cancelled. This is exactly the hedge
// pattern: schedule a timer, cancel it when the primary wins, reuse the
// recycled payload for the next request's timer.
func TestCancelNeverDoubleFires(t *testing.T) {
	e := New()
	const rounds = 1000
	fires := make([]int, rounds)
	live := make([]*Call, 0, rounds)
	for i := 0; i < rounds; i++ {
		i := i
		c := e.AfterCall(Time(i+1), func(_ *Engine, c *Call) {
			fires[int(c.N0)]++
		})
		c.N0 = int64(i)
		live = append(live, c)
		// Cancel every other event immediately, and run the engine part way
		// so cancelled entries pop (recycling their payloads) while new
		// events are still being scheduled from the same free list.
		if i%2 == 1 {
			e.Cancel(c)
		}
		if i%64 == 63 {
			e.RunUntil(e.Now() + 8)
		}
	}
	e.Run()
	for i, n := range fires {
		want := 1
		if i%2 == 1 {
			want = 0
		}
		if n != want {
			t.Fatalf("event %d fired %d times, want %d", i, n, want)
		}
	}
	_ = live
}

// TestCancelledPayloadIsRecycled: after a cancelled event pops, its Call
// returns to the free list and is handed out again — the cancellation
// must not leak payloads.
func TestCancelledPayloadIsRecycled(t *testing.T) {
	e := New()
	c1 := e.AfterCall(1, func(*Engine, *Call) { t.Fatal("cancelled event fired") })
	e.Cancel(c1)
	e.Run() // pops and recycles c1

	got := false
	c2 := e.AfterCall(1, func(_ *Engine, c *Call) {
		got = true
		if c.N0 != 7 {
			t.Fatalf("recycled Call carried stale N0=%d", c.N0)
		}
	})
	if c2 != c1 {
		// Not a strict API promise, but with a single release the free
		// list must hand back the same payload; anything else means the
		// cancelled event was recycled twice or not at all.
		t.Fatalf("free list did not recycle the cancelled Call (got %p, want %p)", c2, c1)
	}
	c2.N0 = 7
	e.Run()
	if !got {
		t.Fatal("rescheduled event did not fire")
	}
}
