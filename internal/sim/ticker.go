package sim

// Ticker invokes a callback at a fixed period until stopped. It is used for
// periodic background processes such as the cache destage scan.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	stopped bool
}

// NewTicker schedules fn to run every period nanoseconds, with the first
// firing one period from now. It panics if period is not positive.
func NewTicker(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.eng.AfterCall(t.period, tickerFire).A = t
}

// tickerFire is the ticker's periodic event: fire the callback and
// re-arm, from a recycled Call so steady ticking allocates nothing.
func tickerFire(_ *Engine, c *Call) {
	t := c.A.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future firings. A firing already dispatched for the current
// instant is suppressed.
func (t *Ticker) Stop() { t.stopped = true }
