package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngine measures the scheduler hot path itself: steady-state
// schedule+step throughput while the pending queue holds a fixed number
// of events. Each iteration executes one event which schedules its
// replacement, so the heap stays at the given depth and every op pays
// one push and one pop (plus sift work logarithmic in depth).
//
// The depth sweep brackets real workloads: a lightly loaded single array
// sits in the tens of pending events, a saturated multi-array sweep in
// the thousands. Baselines live in BENCH_array.json (engine_hotpath).
func BenchmarkEngine(b *testing.B) {
	for _, depth := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("closure/depth=%d", depth), func(b *testing.B) {
			eng := New()
			n := 0
			var fn func()
			fn = func() {
				n++
				if n < b.N {
					eng.After(1000, fn)
				}
			}
			for i := 0; i < depth-1; i++ {
				eng.At(Time(1)<<40+Time(i), func() {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			eng.After(1, fn)
			for n < b.N {
				if !eng.Step() {
					b.Fatal("engine drained early")
				}
			}
		})
	}
	for _, depth := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("call/depth=%d", depth), func(b *testing.B) {
			benchEngineCalls(b, depth)
		})
	}
}

// BenchmarkEngineScheduleDrain measures bulk scheduling followed by a
// full drain, the pattern open-loop trace replay produces.
func BenchmarkEngineScheduleDrain(b *testing.B) {
	const batch = 1024
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := New()
		for j := 0; j < batch; j++ {
			// Reverse order exercises sift-up on every push.
			eng.At(Time(batch-j), nop)
		}
		eng.Run()
	}
}
