// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds from the start of the simulation.
// Events scheduled for the same instant fire in the order they were
// scheduled (stable FIFO tie-break), which makes runs bit-reproducible for
// a given seed and input.
//
// The scheduler is built for the allocation-free hot path the trace
// replays need: the pending queue is a monomorphic 4-ary min-heap of
// event structs (no interface boxing, sift loops inlined), and callers
// on hot paths schedule through reusable Call payloads drawn from a
// per-engine free list instead of allocating a fresh closure per event.
package sim

import "fmt"

// Time is a simulation timestamp or duration in nanoseconds.
type Time = int64

// Common durations in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Millis renders a Time as fractional milliseconds, the unit the paper
// reports response times in.
func Millis(t Time) float64 { return float64(t) / float64(Millisecond) }

// FromMillis converts fractional milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Call is a reusable event payload: a callback plus argument slots,
// drawn from the engine's free list by AtCall/AfterCall and returned to
// it after the event fires. It replaces the per-event closure on hot
// paths — the caller parks its receiver and arguments in the slots and
// the callback unpacks them, so steady-state scheduling allocates
// nothing.
//
// A, B and C hold pointer-shaped values (pointers, funcs); storing one
// in the any slot does not allocate. N0..N2 hold scalars. A Call is
// valid for writing argument slots from AtCall/AfterCall until its
// event fires; once the callback returns, the engine recycles it — it
// must not be retained or rescheduled.
type Call struct {
	fn func(*Engine, *Call)

	A, B, C    any
	N0, N1, N2 int64

	next *Call // free-list link
}

// event is one pending heap entry. Exactly one of fn and call is set:
// fn for the closure form (At/After), call for the argument-carrying
// form (AtCall/AfterCall).
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call *Call
}

// Engine is a single-threaded discrete-event scheduler. An Engine must not
// be shared between goroutines; independent arrays each get their own.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq)
	steps  uint64
	free   *Call // recycled Call payloads

	// Self-metric counters, maintained unconditionally (a compare and two
	// increments on paths that already cost hundreds of ns per event) and
	// read back through Meter. Pure observation: they schedule nothing
	// and consume no randomness, so results are bit-identical whether or
	// not anyone ever looks at them.
	heapHW     int    // high-water mark of the pending-event heap
	callHits   uint64 // Calls served from the free list
	callMisses uint64 // Calls that forced a fresh chunk allocation
}

// New returns an Engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Reset returns the engine to the observable state of a fresh New():
// clock at zero, sequence counter at zero, no pending events. The heap
// slab and the Call free list are kept — pending Call payloads are
// recycled into the free list — so a shard running many simulations
// back to back schedules without reallocating. The cumulative
// self-metric counters (steps, heap high-water, free-list hits) carry
// across the reset; per-simulation figures come from deltas (Steps
// before/after, or a Meter spanning the interval).
//
// Determinism: every scheduling decision an engine makes is a function
// of (now, seq, heap contents) — a reset engine replays any event
// sequence bit-identically to a fresh one, which is what lets shards
// reuse engines across arrays without perturbing results.
func (e *Engine) Reset() {
	for i := range e.events {
		if c := e.events[i].call; c != nil {
			e.releaseCall(c)
		}
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
}

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// checkFuture panics on scheduling in the past: it would silently
// corrupt causality.
func (e *Engine) checkFuture(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics. The closure form is the convenient API
// for cold paths; hot paths use AtCall to avoid the closure allocation.
func (e *Engine) At(t Time, fn func()) {
	e.checkFuture(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. A non-positive delay
// schedules for the current instant (after already-queued events at now).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AtCall schedules fn at absolute time t and returns the Call that will
// be passed to it, with every argument slot zeroed. The caller fills
// the slots it needs after scheduling (the engine reads them only when
// the event fires). The Call comes from the engine's free list and is
// recycled after fn returns.
func (e *Engine) AtCall(t Time, fn func(*Engine, *Call)) *Call {
	e.checkFuture(t)
	c := e.acquireCall()
	c.fn = fn
	e.seq++
	e.push(event{at: t, seq: e.seq, call: c})
	return c
}

// AfterCall is AtCall with a delay relative to now; negative delays
// clamp to the current instant, as in After.
func (e *Engine) AfterCall(d Time, fn func(*Engine, *Call)) *Call {
	if d < 0 {
		d = 0
	}
	return e.AtCall(e.now+d, fn)
}

// Cancel deactivates a pending Call-form event: when its heap entry pops
// the callback is skipped and the payload recycled exactly once, at pop
// time — never earlier, so the free list cannot hand the same Call to two
// live events. Cancel is valid only in the window between AtCall/AfterCall
// and the event firing; once the callback has run, the Call may already
// belong to a different event and cancelling it is a logic error the
// caller must rule out (single-threaded engines make that a local
// argument: track whether the event fired). The pointer slots are dropped
// immediately so a long-pending cancelled event does not pin its payload's
// referents.
func (e *Engine) Cancel(c *Call) {
	c.fn = nil
	c.A, c.B, c.C = nil, nil, nil
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed (a cancelled event
// still counts: the clock advanced to its timestamp).
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.steps++
	if c := ev.call; c != nil {
		if c.fn != nil {
			c.fn(e, c)
		}
		e.releaseCall(c)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// --- event heap ---------------------------------------------------------
//
// A 4-ary min-heap ordered by (at, seq). seq is unique per event, so the
// order is strict and any correct heap pops the identical sequence —
// heap arity and sift details cannot perturb simulation results. 4-ary
// beats binary here: the sift-down depth drops by half, and the four
// children share a cache line's worth of 32-byte entries.

// before reports strict (at, seq) ordering. seq never repeats, so this
// is a total order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting the hole up from the tail.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	if len(h) > e.heapHW {
		e.heapHW = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].before(&ev) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the minimum event.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the vacated slot's pointers to the GC
	h = h[:n]
	e.events = h
	if n == 0 {
		return top
	}
	// Sift last down from the root: move the smallest child up into the
	// hole until last fits.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}

// --- Call free list -----------------------------------------------------

// callChunk is how many Calls one free-list refill allocates. Chunked
// like the span arenas: one bulk allocation amortizes across many
// events, and recycled Calls make steady state allocation-free.
const callChunk = 64

func (e *Engine) acquireCall() *Call {
	c := e.free
	if c == nil {
		chunk := make([]Call, callChunk)
		for i := range chunk[:callChunk-1] {
			chunk[i].next = &chunk[i+1]
		}
		c = &chunk[0]
		e.callMisses++
	} else {
		e.callHits++
	}
	e.free = c.next
	c.next = nil
	return c
}

// releaseCall recycles a fired Call, dropping its pointer slots so the
// free list does not pin dead objects.
func (e *Engine) releaseCall(c *Call) {
	c.fn = nil
	c.A, c.B, c.C = nil, nil, nil
	c.N0, c.N1, c.N2 = 0, 0, 0
	c.next = e.free
	e.free = c
}
