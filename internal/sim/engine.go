// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds from the start of the simulation.
// Events scheduled for the same instant fire in the order they were
// scheduled (stable FIFO tie-break), which makes runs bit-reproducible for
// a given seed and input.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in nanoseconds.
type Time = int64

// Common durations in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Millis renders a Time as fractional milliseconds, the unit the paper
// reports response times in.
func Millis(t Time) float64 { return float64(t) / float64(Millisecond) }

// FromMillis converts fractional milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. An Engine must not
// be shared between goroutines; independent arrays each get their own.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// New returns an Engine with the clock at zero and no pending events.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. A non-positive delay
// schedules for the current instant (after already-queued events at now).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.steps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
