package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := New()
	var got []int
	eng.At(30, func() { got = append(got, 3) })
	eng.At(10, func() { got = append(got, 1) })
	eng.At(20, func() { got = append(got, 2) })
	eng.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if eng.Now() != 30 {
		t.Fatalf("clock = %d, want 30", eng.Now())
	}
	if eng.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", eng.Steps())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	eng := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		eng.At(42, func() { got = append(got, i) })
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: position %d has %d", i, v)
		}
	}
}

func TestEnginePastPanics(t *testing.T) {
	eng := New()
	eng.At(100, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	eng.At(50, func() {})
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	eng := New()
	eng.At(10, func() {
		eng.After(-5, func() {
			if eng.Now() != 10 {
				t.Errorf("negative After ran at %d, want 10", eng.Now())
			}
		})
	})
	eng.Run()
}

func TestRunUntil(t *testing.T) {
	eng := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	eng.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %v", fired)
	}
	if eng.Now() != 12 {
		t.Fatalf("clock = %d, want 12", eng.Now())
	}
	eng.RunFor(8)
	if len(fired) != 4 || eng.Now() != 20 {
		t.Fatalf("RunFor(8): fired %v now %d", fired, eng.Now())
	}
}

// TestEngineCascade: events scheduling events preserve causality.
func TestEngineCascade(t *testing.T) {
	eng := New()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 1000 {
			eng.After(1, step)
		}
	}
	eng.After(1, step)
	eng.Run()
	if depth != 1000 {
		t.Fatalf("cascade depth %d, want 1000", depth)
	}
	if eng.Now() != 1000 {
		t.Fatalf("clock %d, want 1000", eng.Now())
	}
}

// TestQuickEngineSorted: whatever order events are scheduled in, they
// execute in non-decreasing time order.
func TestQuickEngineSorted(t *testing.T) {
	f := func(times []uint16) bool {
		eng := New()
		var got []Time
		for _, at := range times {
			at := Time(at)
			eng.At(at, func() { got = append(got, at) })
		}
		eng.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	eng := New()
	count := 0
	tk := NewTicker(eng, 10, func() {
		count++
		if count == 5 {
			// Stop from within the callback.
		}
	})
	eng.RunUntil(55)
	if count != 5 {
		t.Fatalf("ticker fired %d times by t=55, want 5", count)
	}
	tk.Stop()
	eng.RunUntil(200)
	if count != 5 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	eng := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, 10, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	eng.RunUntil(1000)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period should panic")
		}
	}()
	NewTicker(New(), 0, func() {})
}

func TestSemaphore(t *testing.T) {
	eng := New()
	s := NewSemaphore(eng, 2)
	var order []int
	acquire := func(id int) {
		s.Acquire(func() { order = append(order, id) })
	}
	acquire(1)
	acquire(2)
	acquire(3) // queued
	acquire(4) // queued
	if s.Free() != 0 || s.Waiting() != 2 {
		t.Fatalf("free=%d waiting=%d", s.Free(), s.Waiting())
	}
	s.Release() // hands to 3
	s.Release() // hands to 4
	if len(order) != 4 {
		t.Fatalf("grants: %v", order)
	}
	for i, id := range []int{1, 2, 3, 4} {
		if order[i] != id {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
	if s.PeakWaiting() != 2 {
		t.Fatalf("peak waiting = %d, want 2", s.PeakWaiting())
	}
	s.Release()
	s.Release()
	if s.Free() != 2 {
		t.Fatalf("free = %d, want 2", s.Free())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	s.Release()
}

func TestMillisConversions(t *testing.T) {
	if Millis(1500000) != 1.5 {
		t.Fatalf("Millis(1.5ms in ns) = %f", Millis(1500000))
	}
	if FromMillis(2.5) != 2500000 {
		t.Fatalf("FromMillis(2.5) = %d", FromMillis(2.5))
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit constants inconsistent")
	}
}

// TestSameInstantFIFO interleaves scheduling and stepping so the heap is
// repeatedly torn down and rebuilt while many events share one timestamp.
// The (at, seq) tie-break must keep same-instant events in schedule order
// regardless of how the heap array was permuted by earlier pops.
func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	id := 0
	schedule := func(at Time, n int) {
		for i := 0; i < n; i++ {
			id++
			k := id
			if k%2 == 0 { // exercise both scheduling forms
				c := e.AtCall(at, func(_ *Engine, c *Call) {
					got = append(got, int(c.N0))
				})
				c.N0 = int64(k)
			} else {
				e.At(at, func() { got = append(got, k) })
			}
		}
	}
	// Batch at t=100 plus decoys at later times, then pop a few, then
	// schedule more at t=100 — pops in between permute the backing array.
	schedule(100, 7)
	schedule(300, 3)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	schedule(100, 6)
	schedule(200, 2)
	e.Run()
	want := []int{1, 2, 3, 4, 5, 6, 7, 11, 12, 13, 14, 15, 16, 17, 18, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestRunUntilAdvancesEmptyClock: RunUntil must move the clock to t even
// when no events are pending, and must never move it backwards.
func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now = %d after RunUntil(500) on empty queue, want 500", e.Now())
	}
	e.RunUntil(200) // in the past: no-op, not a rewind
	if e.Now() != 500 {
		t.Fatalf("Now = %d after RunUntil(200), want 500 (no rewind)", e.Now())
	}
	e.RunFor(250)
	if e.Now() != 750 {
		t.Fatalf("Now = %d after RunFor(250), want 750", e.Now())
	}
	if e.Steps() != 0 {
		t.Fatalf("Steps = %d, want 0 (clock moved without events)", e.Steps())
	}
}

// TestNegativeDelayClamps: After/AfterCall with a negative delay fire at
// the current instant, after events already queued for now.
func TestNegativeDelayClamps(t *testing.T) {
	e := New()
	e.RunUntil(1000)
	var got []string
	e.At(1000, func() { got = append(got, "queued") })
	e.After(-50, func() {
		got = append(got, "after")
		if e.Now() != 1000 {
			t.Errorf("negative After fired at %d, want 1000", e.Now())
		}
	})
	e.AfterCall(-1, func(e *Engine, _ *Call) {
		got = append(got, "afterCall")
		if e.Now() != 1000 {
			t.Errorf("negative AfterCall fired at %d, want 1000", e.Now())
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != "queued" || got[1] != "after" || got[2] != "afterCall" {
		t.Fatalf("fire order %v, want [queued after afterCall]", got)
	}
}

// TestSchedulePastPanics: At/AtCall before now is a causality bug and
// must panic rather than silently corrupt the run.
func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.RunUntil(100)
	for _, f := range []func(){
		func() { e.At(99, func() {}) },
		func() { e.AtCall(99, func(*Engine, *Call) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("scheduling in the past did not panic")
				}
			}()
			f()
		}()
	}
}

// TestCallSlotsAndRecycling: argument slots written after AtCall reach
// the callback; fired Calls return to the free list zeroed and are
// reused by later schedules.
func TestCallSlotsAndRecycling(t *testing.T) {
	e := New()
	type payload struct{ v int }
	p := &payload{v: 7}
	var fired *Call
	c1 := e.AtCall(10, func(e *Engine, c *Call) {
		fired = c
		if e.Now() != 10 {
			t.Errorf("fired at %d, want 10", e.Now())
		}
		if c.A.(*payload) != p || c.B.(string) != "b" {
			t.Errorf("pointer slots not delivered: A=%v B=%v", c.A, c.B)
		}
		if c.N0 != 42 || c.N1 != -5 || c.N2 != 0 {
			t.Errorf("scalar slots not delivered: %d %d %d", c.N0, c.N1, c.N2)
		}
	})
	c1.A, c1.B = p, "b"
	c1.N0, c1.N1 = 42, -5
	e.Run()
	if fired != c1 {
		t.Fatal("callback did not receive the Call returned by AtCall")
	}
	// The fired Call is recycled: the next acquire hands back the same
	// cell with every slot zeroed.
	c2 := e.AfterCall(1, func(*Engine, *Call) {})
	if c2 != c1 {
		t.Fatal("fired Call was not recycled through the free list")
	}
	if c2.A != nil || c2.B != nil || c2.C != nil || c2.N0 != 0 || c2.N1 != 0 || c2.N2 != 0 {
		t.Fatalf("recycled Call not zeroed: %+v", c2)
	}
	e.Run()
}
