package model

import (
	"math"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
)

func device(t *testing.T) Device {
	t.Helper()
	d, err := NewDevice(geom.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestZeroLoadComponents(t *testing.T) {
	d := device(t)
	// Average access ~ 11.2 + 5.56 + 1.85 = 18.6 ms for one 4KB block.
	acc := d.accessMS(1)
	if acc < 17 || acc < 18 && acc > 20 || acc > 20 {
		t.Fatalf("access estimate %.2f ms out of range", acc)
	}
	// RMW adds exactly one rotation.
	if diff := d.rmwMS(1) - acc - d.RotationMS(); math.Abs(diff) > 1e-9 {
		t.Fatalf("rmw - access != rotation: %f", diff)
	}
	if ch := d.ChannelMS(1); ch < 0.4 || ch > 0.42 {
		t.Fatalf("channel estimate %.3f ms", ch)
	}
}

func TestZeroLoadOrdering(t *testing.T) {
	d := device(t)
	readBase, _ := ZeroLoadResponse(d, array.OrgBase, false)
	readMirror, _ := ZeroLoadResponse(d, array.OrgMirror, false)
	writeBase, _ := ZeroLoadResponse(d, array.OrgBase, true)
	writeMirror, _ := ZeroLoadResponse(d, array.OrgMirror, true)
	writeRAID5, _ := ZeroLoadResponse(d, array.OrgRAID5, true)
	readRAID5, _ := ZeroLoadResponse(d, array.OrgRAID5, false)

	if readMirror >= readBase {
		t.Error("mirror reads should be faster than base (shorter seeks)")
	}
	if writeMirror <= writeBase {
		t.Error("mirror writes should be slower than base (max of two)")
	}
	if writeRAID5 <= writeBase {
		t.Error("RAID5 small writes must pay the RMW penalty")
	}
	if writeRAID5-readRAID5 < d.RotationMS() {
		t.Error("RAID5 write penalty should be at least a rotation")
	}
	if _, err := ZeroLoadResponse(d, array.Org(99), false); err == nil {
		t.Error("unknown org accepted")
	}
}

func TestZeroLoadMean(t *testing.T) {
	d := device(t)
	r, _ := ZeroLoadResponse(d, array.OrgRAID5, false)
	w, _ := ZeroLoadResponse(d, array.OrgRAID5, true)
	m, err := ZeroLoadMean(d, array.OrgRAID5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75*r + 0.25*w
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean %f, want %f", m, want)
	}
}

func TestMM1(t *testing.T) {
	if got := MM1Response(10, 0); got != 10 {
		t.Fatalf("zero load response %f", got)
	}
	if got := MM1Response(10, 0.5); got != 20 {
		t.Fatalf("rho=0.5 response %f", got)
	}
	if got := MM1Response(10, 1); !math.IsInf(got, 1) {
		t.Fatalf("saturated response %f, want +Inf", got)
	}
	if got := MM1Response(10, -0.5); got != 10 {
		t.Fatalf("negative rho should clamp: %f", got)
	}
}

func TestDiskUtilizationShapes(t *testing.T) {
	d := device(t)
	lambda := 5.0 // requests per second per data disk
	base := DiskUtilization(d, array.OrgBase, lambda, 0.1)
	mirror := DiskUtilization(d, array.OrgMirror, lambda, 0.1)
	raid5 := DiskUtilization(d, array.OrgRAID5, lambda, 0.1)
	if !(mirror < base && base < raid5) {
		t.Fatalf("utilization ordering wrong: mirror %f base %f raid5 %f", mirror, base, raid5)
	}
	// More writes widen RAID5's penalty.
	heavy := DiskUtilization(d, array.OrgRAID5, lambda, 0.5)
	if heavy <= raid5 {
		t.Fatal("higher write fraction should raise RAID5 utilization")
	}
}

// TestPlacementRuleMatchesPaper reproduces the section 4.2.3 arithmetic:
// "In the workload of Trace 1, we have w = 0.1. Hence ... for N > 10 the
// parity area should be placed in the middle of the disk while for
// N < 10 it should be placed at the end."
func TestPlacementRuleMatchesPaper(t *testing.T) {
	if RecommendPlacement(5, 0.1) != layout.EndPlacement {
		t.Error("N=5, w=0.1: rule should say end")
	}
	if RecommendPlacement(15, 0.1) != layout.MiddlePlacement {
		t.Error("N=15, w=0.1: rule should say middle")
	}
	if RecommendPlacement(20, 0.1) != layout.MiddlePlacement {
		t.Error("N=20, w=0.1: rule should say middle")
	}
	// Trace 2: w = 0.28 -> cutover just above N=3.
	if RecommendPlacement(10, 0.28) != layout.MiddlePlacement {
		t.Error("N=10, w=0.28: rule should say middle")
	}
	if got := PlacementCutoverN(0.1); got != 11 {
		t.Errorf("cutover N for w=0.1 is %d, want 11 (middle wins strictly above 1/w)", got)
	}
	if ParityHotterThanData(10, 0.1) {
		t.Error("w == 1/N boundary should not count as hotter")
	}
}

func TestAreaFractions(t *testing.T) {
	if got := DataAreaAccessFraction(10); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("data area fraction %f", got)
	}
	if got := ParityAreaAccessFraction(10, 0.3); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("parity area fraction %f", got)
	}
}
