package model

import "raidsim/internal/layout"

// Section 4.2.3's parity placement model: with accesses uniform over
// disks and over each disk's data areas, any one of the N data areas on a
// disk receives 1/N^2 of the array's accesses, while a parity area
// receives w/N of them (every write touches a parity area; there are N+1
// parity areas over N+1 disks). Parity areas are therefore hotter than
// data areas iff w > 1/N, and only then does the center-of-disk placement
// pay off.

// DataAreaAccessFraction returns the fraction of the array's accesses
// that land on one data area.
func DataAreaAccessFraction(n int) float64 {
	return 1 / float64(n) / float64(n)
}

// ParityAreaAccessFraction returns the fraction of the array's accesses
// (counting the parity half of each update) that land on one parity area.
func ParityAreaAccessFraction(n int, writeFrac float64) float64 {
	return writeFrac / float64(n)
}

// ParityHotterThanData reports whether parity areas see more traffic than
// individual data areas: w > 1/N.
func ParityHotterThanData(n int, writeFrac float64) bool {
	return ParityAreaAccessFraction(n, writeFrac) > DataAreaAccessFraction(n)
}

// RecommendPlacement returns the placement the section 4.2.3 rule
// predicts: middle cylinders when the parity area is the hottest thing on
// the disk (w > 1/N), the end of the disk otherwise (keeping the data
// areas contiguous for seek affinity).
func RecommendPlacement(n int, writeFrac float64) layout.Placement {
	if ParityHotterThanData(n, writeFrac) {
		return layout.MiddlePlacement
	}
	return layout.EndPlacement
}

// PlacementCutoverN returns the array size above which middle placement
// is predicted to win for the given write fraction: N > 1/w.
func PlacementCutoverN(writeFrac float64) int {
	if writeFrac <= 0 {
		return int(^uint(0) >> 1) // never
	}
	return int(1/writeFrac) + 1
}
