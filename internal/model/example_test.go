package model_test

import (
	"fmt"

	"raidsim/internal/model"
)

// ExampleRecommendPlacement reproduces the section 4.2.3 reasoning: with
// Trace 1's 10% write fraction, parity areas out-traffic data areas only
// for arrays larger than ten data disks.
func ExampleRecommendPlacement() {
	for _, n := range []int{5, 10, 15} {
		fmt.Printf("N=%-2d -> %s\n", n, model.RecommendPlacement(n, 0.10))
	}
	// Output:
	// N=5  -> end
	// N=10 -> end
	// N=15 -> middle
}
