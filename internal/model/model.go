// Package model provides the closed-form performance estimates the
// paper's related work reasons with: zero-load (minimum) response times
// per organization in the style of Gray et al., simple M/M/1 queueing
// corrections, and the parity-placement rule of section 4.2.3. The
// simulator is the ground truth; these models exist to sanity-check it
// (and are compared against it by the ext-model experiment).
package model

import (
	"fmt"
	"math"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
)

// Device bundles the drive and channel parameters the formulas need.
type Device struct {
	Spec geom.Spec
	Seek geom.SeekModel
}

// NewDevice builds a Device, calibrating the seek curve.
func NewDevice(spec geom.Spec) (Device, error) {
	m, err := geom.CalibrateSeek(spec)
	if err != nil {
		return Device{}, err
	}
	return Device{Spec: spec, Seek: m}, nil
}

// AvgSeekMS returns the calibrated average seek time.
func (d Device) AvgSeekMS() float64 { return d.Spec.AvgSeekMS }

// HalfRotationMS returns the mean rotational latency.
func (d Device) HalfRotationMS() float64 {
	return sim.Millis(d.Spec.RotationTime()) / 2
}

// RotationMS returns one full revolution.
func (d Device) RotationMS() float64 { return sim.Millis(d.Spec.RotationTime()) }

// TransferMS returns the media transfer time for n blocks.
func (d Device) TransferMS(n int) float64 {
	return sim.Millis(d.Spec.BlockTransferTime()) * float64(n)
}

// ChannelMS returns the channel transfer time for n blocks.
func (d Device) ChannelMS(n int) float64 {
	return sim.Millis(d.Spec.ChannelTime(n))
}

// accessMS is the canonical single-disk access: seek + rotational latency
// + media transfer.
func (d Device) accessMS(blocks int) float64 {
	return d.AvgSeekMS() + d.HalfRotationMS() + d.TransferMS(blocks)
}

// rmwMS is the read-modify-write access: after the old-data read pass the
// head waits a full rotation to overwrite in place.
func (d Device) rmwMS(blocks int) float64 {
	return d.AvgSeekMS() + d.HalfRotationMS() + d.RotationMS() + d.TransferMS(blocks)
}

// ZeroLoadResponse estimates the no-queueing response time (ms) of a
// single-block request under each organization, in the spirit of Gray et
// al.'s minimum response time analysis. Writes in the parity
// organizations use the Disk First picture: the parity read-modify-write
// begins once the data access holds its disk, so at zero load the two
// proceed in parallel and the RMW pair bounds the response.
func ZeroLoadResponse(d Device, org array.Org, write bool) (float64, error) {
	ch := d.ChannelMS(1)
	switch org {
	case array.OrgBase:
		return d.accessMS(1) + ch, nil
	case array.OrgMirror:
		if !write {
			// The nearer of two arms serves the read: the expected
			// shorter seek of two independent arms is roughly 2/3 of the
			// single-arm average (exact for a linear seek curve and
			// uniform positions; good enough for an estimate).
			return d.AvgSeekMS()*2/3 + d.HalfRotationMS() + d.TransferMS(1) + ch, nil
		}
		// Both copies written; response is the max of two i.i.d.
		// accesses ~ access + half the rotational spread.
		return d.accessMS(1) + d.HalfRotationMS()/2 + ch, nil
	case array.OrgRAID5, array.OrgRAID4, array.OrgParityStriping:
		if !write {
			return d.accessMS(1) + ch, nil
		}
		// Data RMW and parity RMW in parallel; parity additionally waits
		// for the old-data read before its in-place write can land, which
		// at zero load is already covered by its own full rotation.
		return d.rmwMS(1) + ch, nil
	}
	return 0, fmt.Errorf("model: unknown organization %v", org)
}

// ZeroLoadMean combines read and write estimates with a write fraction.
func ZeroLoadMean(d Device, org array.Org, writeFrac float64) (float64, error) {
	r, err := ZeroLoadResponse(d, org, false)
	if err != nil {
		return 0, err
	}
	w, err := ZeroLoadResponse(d, org, true)
	if err != nil {
		return 0, err
	}
	return (1-writeFrac)*r + writeFrac*w, nil
}

// MM1Response applies the M/M/1 waiting-time correction to a mean service
// time S (ms) at utilization rho: R = S / (1 - rho). It returns +Inf at
// or beyond saturation.
func MM1Response(serviceMS, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		rho = 0
	}
	return serviceMS / (1 - rho)
}

// DiskUtilization estimates per-disk utilization for an organization:
// arrival rate per data disk lambda (req/s), write fraction w. Writes in
// parity organizations occupy two disks for an RMW each; mirror writes
// occupy both copies; mirror reads split across the pair.
func DiskUtilization(d Device, org array.Org, lambda, writeFrac float64) float64 {
	acc := d.accessMS(1) / 1000 // seconds
	rmw := d.rmwMS(1) / 1000
	switch org {
	case array.OrgBase:
		return lambda * acc
	case array.OrgMirror:
		// Reads split over two arms; writes hit both.
		return lambda * ((1-writeFrac)*acc/2 + writeFrac*acc)
	default:
		// N data disks + 1 parity worth of capacity absorb the load;
		// approximate per-arm utilization ignoring the extra arm.
		return lambda * ((1-writeFrac)*acc + writeFrac*2*rmw)
	}
}
