package trace

import (
	"fmt"
	"strings"

	"raidsim/internal/sim"
)

// Characteristics summarizes a trace in the shape of the paper's Table 2.
type Characteristics struct {
	Name              string
	Duration          sim.Time
	NumDisks          int
	Accesses          int64
	BlocksTransferred int64
	SingleBlockReads  int64
	SingleBlockWrites int64
	MultiBlockReads   int64
	MultiBlockWrites  int64
	PerDiskAccesses   []int64
}

// Characterize computes Table 2-style statistics for a trace.
func Characterize(t *Trace) Characteristics {
	c := Characteristics{
		Name:            t.Name,
		Duration:        t.Duration(),
		NumDisks:        t.NumDisks,
		PerDiskAccesses: make([]int64, t.NumDisks),
	}
	for _, r := range t.Records {
		c.Accesses++
		c.BlocksTransferred += int64(r.Blocks)
		switch {
		case r.Blocks == 1 && r.Op == Read:
			c.SingleBlockReads++
		case r.Blocks == 1:
			c.SingleBlockWrites++
		case r.Op == Read:
			c.MultiBlockReads++
		default:
			c.MultiBlockWrites++
		}
		c.PerDiskAccesses[t.Disk(r)]++
	}
	return c
}

// WriteFraction returns the fraction of requests that are writes.
func (c Characteristics) WriteFraction() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.SingleBlockWrites+c.MultiBlockWrites) / float64(c.Accesses)
}

// SingleBlockFraction returns the fraction of single-block requests.
func (c Characteristics) SingleBlockFraction() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.SingleBlockReads+c.SingleBlockWrites) / float64(c.Accesses)
}

// Skew returns the peak-to-mean ratio of per-disk access counts, a simple
// measure of the disk access skew the paper discusses.
func (c Characteristics) Skew() float64 {
	if len(c.PerDiskAccesses) == 0 || c.Accesses == 0 {
		return 0
	}
	var max int64
	for _, n := range c.PerDiskAccesses {
		if n > max {
			max = n
		}
	}
	mean := float64(c.Accesses) / float64(len(c.PerDiskAccesses))
	return float64(max) / mean
}

// String renders the characteristics as a Table 2-style block.
func (c Characteristics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace: %s\n", c.Name)
	fmt.Fprintf(&b, "  Duration:                %s\n", fmtDuration(c.Duration))
	fmt.Fprintf(&b, "  # of disks:              %d\n", c.NumDisks)
	fmt.Fprintf(&b, "  # of I/O accesses:       %d\n", c.Accesses)
	fmt.Fprintf(&b, "  # of blocks transferred: %d\n", c.BlocksTransferred)
	fmt.Fprintf(&b, "  # of single block reads: %d\n", c.SingleBlockReads)
	fmt.Fprintf(&b, "  # of single block writes:%d\n", c.SingleBlockWrites)
	fmt.Fprintf(&b, "  # of multiblock reads:   %d\n", c.MultiBlockReads)
	fmt.Fprintf(&b, "  # of multiblock writes:  %d\n", c.MultiBlockWrites)
	fmt.Fprintf(&b, "  write fraction:          %.3f\n", c.WriteFraction())
	fmt.Fprintf(&b, "  disk access skew (pk/mn):%.2f\n", c.Skew())
	return b.String()
}

func fmtDuration(t sim.Time) string {
	secs := t / sim.Second
	h := secs / 3600
	m := (secs % 3600) / 60
	s := secs % 60
	if h > 0 {
		return fmt.Sprintf("%dh %dmin %ds", h, m, s)
	}
	return fmt.Sprintf("%dmin %ds", m, s)
}
