// Package trace defines the I/O trace model the simulator replays. A
// trace is a time-ordered sequence of block-level requests against a set
// of logical data disks, in the format the paper describes (section 3.1):
// block address, read/write flag, time since the previous request, with
// multiblock requests carried as a block count.
package trace

import (
	"fmt"
	"sort"

	"raidsim/internal/sim"
)

// Op distinguishes reads from writes.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// Record is one logical I/O request. LBA addresses a flat logical block
// space of NumDisks * BlocksPerDisk blocks: logical disk d holds blocks
// [d*BlocksPerDisk, (d+1)*BlocksPerDisk). At is the absolute arrival time
// from the start of the trace.
type Record struct {
	At     sim.Time
	Op     Op
	LBA    int64
	Blocks int
	// Class indexes the trace's Classes table (the client class that
	// issued this request). Always 0 for classless traces.
	Class uint8
}

// SLO codes a class's service-level objective in the class table. The
// codes mirror array.SLOClass (which this package cannot import) plus
// SLOAuto, the classless default: classify each request by its size, as
// the simulator always did before client classes existed.
const (
	SLOGold  uint8 = 0
	SLOBatch uint8 = 1
	SLOAuto  uint8 = 2
)

// SLOName renders an SLO code for reports and spec files.
func SLOName(s uint8) string {
	switch s {
	case SLOGold:
		return "gold"
	case SLOBatch:
		return "batch"
	case SLOAuto:
		return "auto"
	}
	return fmt.Sprintf("slo(%d)", s)
}

// ParseSLO reads a spec-file SLO name ("" = auto).
func ParseSLO(s string) (uint8, error) {
	switch s {
	case "gold":
		return SLOGold, nil
	case "batch":
		return SLOBatch, nil
	case "auto", "":
		return SLOAuto, nil
	}
	return 0, fmt.Errorf("trace: unknown slo %q (want gold, batch, or auto)", s)
}

// ClassInfo describes one client class of a multi-client trace.
type ClassInfo struct {
	Name string
	SLO  uint8 // SLOGold, SLOBatch, or SLOAuto
}

// Trace bundles records with the logical configuration they address.
// Classes, when non-nil, is the client-class table Record.Class indexes;
// a nil table means the trace is classless (every record Class 0) and
// the simulator behaves exactly as before client classes existed.
type Trace struct {
	Name          string
	NumDisks      int
	BlocksPerDisk int64
	Classes       []ClassInfo
	Records       []Record
}

// Validate checks internal consistency: ordering, bounds, positive sizes.
func (t *Trace) Validate() error {
	if t.NumDisks <= 0 || t.BlocksPerDisk <= 0 {
		return fmt.Errorf("trace %q: bad shape %d disks x %d blocks", t.Name, t.NumDisks, t.BlocksPerDisk)
	}
	for i, c := range t.Classes {
		if c.SLO > SLOAuto {
			return fmt.Errorf("trace %q: class %d (%s) has bad SLO code %d", t.Name, i, c.Name, c.SLO)
		}
	}
	total := int64(t.NumDisks) * t.BlocksPerDisk
	nclasses := len(t.Classes)
	var prev sim.Time
	for i, r := range t.Records {
		if r.At < prev {
			return fmt.Errorf("trace %q: record %d goes back in time (%d < %d)", t.Name, i, r.At, prev)
		}
		prev = r.At
		if r.Blocks <= 0 {
			return fmt.Errorf("trace %q: record %d has %d blocks", t.Name, i, r.Blocks)
		}
		if r.LBA < 0 || r.LBA+int64(r.Blocks) > total {
			return fmt.Errorf("trace %q: record %d spans [%d,%d) outside [0,%d)", t.Name, i, r.LBA, r.LBA+int64(r.Blocks), total)
		}
		if nclasses > 0 && int(r.Class) >= nclasses {
			return fmt.Errorf("trace %q: record %d has class %d outside the %d-entry class table", t.Name, i, r.Class, nclasses)
		}
		if nclasses == 0 && r.Class != 0 {
			return fmt.Errorf("trace %q: record %d has class %d but the trace has no class table", t.Name, i, r.Class)
		}
	}
	return nil
}

// copyClasses duplicates the class table so derived traces never alias it.
func copyClasses(cs []ClassInfo) []ClassInfo {
	if cs == nil {
		return nil
	}
	return append([]ClassInfo(nil), cs...)
}

// Duration returns the arrival time of the last record.
func (t *Trace) Duration() sim.Time {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At
}

// Disk returns the logical disk a record starts on.
func (t *Trace) Disk(r Record) int { return int(r.LBA / t.BlocksPerDisk) }

// Scale returns a copy with arrival times divided by speed: speed 2 packs
// the same requests into half the time (the paper's "trace speed 2").
// The request stream itself is unchanged.
func (t *Trace) Scale(speed float64) (*Trace, error) {
	if speed <= 0 {
		return nil, fmt.Errorf("trace: speed must be positive, got %g", speed)
	}
	out := &Trace{
		Name:          fmt.Sprintf("%s@%gx", t.Name, speed),
		NumDisks:      t.NumDisks,
		BlocksPerDisk: t.BlocksPerDisk,
		Classes:       copyClasses(t.Classes),
		Records:       make([]Record, len(t.Records)),
	}
	for i, r := range t.Records {
		r.At = sim.Time(float64(r.At) / speed)
		out.Records[i] = r
	}
	return out, nil
}

// Truncate returns a copy containing at most n records.
func (t *Trace) Truncate(n int) *Trace {
	if n >= len(t.Records) {
		return t
	}
	out := *t
	out.Records = t.Records[:n]
	return &out
}

// SplitByGroup partitions records into ngroups sub-traces by logical-disk
// group: group g holds logical disks [g*perGroup, (g+1)*perGroup), the
// last group taking any remainder. Each sub-trace keeps global timestamps
// and is re-addressed to its own compact logical space, which is what an
// independent array simulation consumes.
func (t *Trace) SplitByGroup(perGroup int) ([]*Trace, error) {
	if perGroup <= 0 {
		return nil, fmt.Errorf("trace: group size must be positive, got %d", perGroup)
	}
	ngroups := (t.NumDisks + perGroup - 1) / perGroup
	out := make([]*Trace, ngroups)
	for g := range out {
		disks := perGroup
		if g == ngroups-1 {
			disks = t.NumDisks - g*perGroup
		}
		out[g] = &Trace{
			Name:          fmt.Sprintf("%s/g%d", t.Name, g),
			NumDisks:      disks,
			BlocksPerDisk: t.BlocksPerDisk,
			Classes:       copyClasses(t.Classes),
		}
	}
	for _, r := range t.Records {
		g := int(r.LBA / t.BlocksPerDisk / int64(perGroup))
		base := int64(g) * int64(perGroup) * t.BlocksPerDisk
		r.LBA -= base
		// A multiblock request never spans logical disks in the traces we
		// generate; clamp defensively in case a hand-written trace does.
		sub := out[g]
		if max := int64(sub.NumDisks)*sub.BlocksPerDisk - r.LBA; int64(r.Blocks) > max {
			r.Blocks = int(max)
		}
		sub.Records = append(sub.Records, r)
	}
	return out, nil
}

// Merge interleaves several traces (which must share shape) by timestamp.
func Merge(name string, parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Trace{
		Name: name, NumDisks: parts[0].NumDisks, BlocksPerDisk: parts[0].BlocksPerDisk,
		Classes: copyClasses(parts[0].Classes),
	}
	n := 0
	for _, p := range parts {
		if p.NumDisks != out.NumDisks || p.BlocksPerDisk != out.BlocksPerDisk {
			return nil, fmt.Errorf("trace: merging traces of different shapes")
		}
		if !sameClasses(p.Classes, out.Classes) {
			return nil, fmt.Errorf("trace: merging traces with different class tables")
		}
		n += len(p.Records)
	}
	out.Records = make([]Record, 0, n)
	for _, p := range parts {
		out.Records = append(out.Records, p.Records...)
	}
	sort.SliceStable(out.Records, func(i, j int) bool {
		return out.Records[i].At < out.Records[j].At
	})
	return out, nil
}

// sameClasses reports whether two class tables are identical.
func sameClasses(a, b []ClassInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
