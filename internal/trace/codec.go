package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"raidsim/internal/sim"
)

// Text format: a header line followed by one record per line.
//
//	raidsim-trace v1 <name> <numDisks> <blocksPerDisk>
//	<deltaNanos> <R|W> <lba> <blocks>
//
// Deltas are relative to the previous record (0 within a burst), matching
// how the paper's traces encode time. Nanosecond units keep file
// round-trips bit-exact with in-memory traces.

// WriteText encodes t in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	name := strings.ReplaceAll(t.Name, " ", "_")
	if name == "" {
		name = "unnamed"
	}
	if _, err := fmt.Fprintf(bw, "raidsim-trace v1 %s %d %d\n", name, t.NumDisks, t.BlocksPerDisk); err != nil {
		return err
	}
	var prev sim.Time
	for _, r := range t.Records {
		delta := r.At - prev
		prev = r.At
		if _, err := fmt.Fprintf(bw, "%d %s %d %d\n", delta, r.Op, r.LBA, r.Blocks); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a text-format trace.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input: %w", sc.Err())
	}
	head := strings.Fields(sc.Text())
	if len(head) != 5 || head[0] != "raidsim-trace" || head[1] != "v1" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	nd, err := strconv.Atoi(head[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad disk count: %w", err)
	}
	bpd, err := strconv.ParseInt(head[4], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad blocks per disk: %w", err)
	}
	t := &Trace{Name: head[2], NumDisks: nd, BlocksPerDisk: bpd}
	var at sim.Time
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		f := strings.Fields(txt)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(f))
		}
		delta, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil || delta < 0 {
			return nil, fmt.Errorf("trace: line %d: bad delta %q", line, f[0])
		}
		var op Op
		switch f[1] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, f[1])
		}
		lba, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad lba %q", line, f[2])
		}
		blocks, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block count %q", line, f[3])
		}
		at += sim.Time(delta)
		t.Records = append(t.Records, Record{At: at, Op: op, LBA: lba, Blocks: blocks})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Binary format: magic, uvarint-framed header, then per record
// uvarint(deltaNanos), byte(op), uvarint(lba delta zig-zag), uvarint(blocks).
// It is several times smaller than text and much faster to parse.

var binMagic = []byte("RSTB1\n")

// WriteBinary encodes t in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	name := []byte(t.Name)
	if err := put(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := put(uint64(t.NumDisks)); err != nil {
		return err
	}
	if err := put(uint64(t.BlocksPerDisk)); err != nil {
		return err
	}
	if err := put(uint64(len(t.Records))); err != nil {
		return err
	}
	var prevAt sim.Time
	var prevLBA int64
	for _, r := range t.Records {
		if err := put(uint64(r.At - prevAt)); err != nil {
			return err
		}
		prevAt = r.At
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		d := r.LBA - prevLBA
		prevLBA = r.LBA
		if err := put(zigzag(d)); err != nil {
			return err
		}
		if err := put(uint64(r.Blocks)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary-format trace.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: binary magic: %w", err)
	}
	if string(magic) != string(binMagic) {
		return nil, fmt.Errorf("trace: not a raidsim binary trace")
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	nd, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: disk count: %w", err)
	}
	bpd, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: blocks per disk: %w", err)
	}
	count, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: record count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	// The declared count bounds the decode loop, but a hostile header can
	// claim 2^31 records with no payload behind it — cap the preallocation
	// hint so that costs an EOF error, not a multi-GiB allocation. append
	// grows the slice normally for genuinely large traces.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t := &Trace{
		Name:          string(name),
		NumDisks:      int(nd),
		BlocksPerDisk: int64(bpd),
		Records:       make([]Record, 0, capHint),
	}
	var at sim.Time
	var lba int64
	for i := uint64(0); i < count; i++ {
		delta, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d delta: %w", i, err)
		}
		opb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", i, err)
		}
		if opb > 1 {
			return nil, fmt.Errorf("trace: record %d: bad op %d", i, opb)
		}
		ld, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d lba: %w", i, err)
		}
		blocks, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d blocks: %w", i, err)
		}
		at += sim.Time(delta)
		lba += unzigzag(ld)
		t.Records = append(t.Records, Record{At: at, Op: Op(opb), LBA: lba, Blocks: int(blocks)})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
