package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"raidsim/internal/sim"
)

// Text format: a header line followed by one record per line.
//
//	raidsim-trace v1 <name> <numDisks> <blocksPerDisk>
//	<deltaNanos> <R|W> <lba> <blocks>
//
// Deltas are relative to the previous record (0 within a burst), matching
// how the paper's traces encode time. Nanosecond units keep file
// round-trips bit-exact with in-memory traces.
//
// Version 2 carries the client-class table of multi-client traces: the
// header gains a class count, one "class <name> <slo>" line per class
// follows it, and each record line gains a trailing class index.
// Classless traces are still written as v1, so every file produced before
// classes existed — and every consumer of such files — is unaffected.
//
//	raidsim-trace v2 <name> <numDisks> <blocksPerDisk> <numClasses>
//	class <name> <gold|batch|auto>
//	<deltaNanos> <R|W> <lba> <blocks> <class>

// WriteText encodes t in the text format (v1 when classless, v2 when the
// trace carries a class table).
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	name := sanitizeName(t.Name)
	if len(t.Classes) == 0 {
		if _, err := fmt.Fprintf(bw, "raidsim-trace v1 %s %d %d\n", name, t.NumDisks, t.BlocksPerDisk); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(bw, "raidsim-trace v2 %s %d %d %d\n", name, t.NumDisks, t.BlocksPerDisk, len(t.Classes)); err != nil {
			return err
		}
		for _, c := range t.Classes {
			if _, err := fmt.Fprintf(bw, "class %s %s\n", sanitizeName(c.Name), SLOName(c.SLO)); err != nil {
				return err
			}
		}
	}
	var prev sim.Time
	for _, r := range t.Records {
		delta := r.At - prev
		prev = r.At
		var err error
		if len(t.Classes) == 0 {
			_, err = fmt.Fprintf(bw, "%d %s %d %d\n", delta, r.Op, r.LBA, r.Blocks)
		} else {
			_, err = fmt.Fprintf(bw, "%d %s %d %d %d\n", delta, r.Op, r.LBA, r.Blocks, r.Class)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sanitizeName makes a name single-token for the whitespace-separated
// text format.
func sanitizeName(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	if s == "" {
		return "unnamed"
	}
	return s
}

// ReadText decodes a text-format trace.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input: %w", sc.Err())
	}
	head := strings.Fields(sc.Text())
	v2 := false
	switch {
	case len(head) == 5 && head[0] == "raidsim-trace" && head[1] == "v1":
	case len(head) == 6 && head[0] == "raidsim-trace" && head[1] == "v2":
		v2 = true
	default:
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	nd, err := strconv.Atoi(head[3])
	if err != nil {
		return nil, fmt.Errorf("trace: bad disk count: %w", err)
	}
	bpd, err := strconv.ParseInt(head[4], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad blocks per disk: %w", err)
	}
	t := &Trace{Name: head[2], NumDisks: nd, BlocksPerDisk: bpd}
	line := 1
	if v2 {
		nclasses, err := strconv.Atoi(head[5])
		if err != nil || nclasses < 1 || nclasses > 256 {
			return nil, fmt.Errorf("trace: bad class count %q", head[5])
		}
		for i := 0; i < nclasses; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("trace: truncated class table: %w", sc.Err())
			}
			line++
			f := strings.Fields(sc.Text())
			if len(f) != 3 || f[0] != "class" {
				return nil, fmt.Errorf("trace: line %d: bad class line %q", line, sc.Text())
			}
			slo, err := ParseSLO(f[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Classes = append(t.Classes, ClassInfo{Name: f[1], SLO: slo})
		}
	}
	nfields := 4
	if v2 {
		nfields = 5
	}
	var at sim.Time
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		f := strings.Fields(txt)
		if len(f) != nfields {
			return nil, fmt.Errorf("trace: line %d: want %d fields, got %d", line, nfields, len(f))
		}
		delta, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil || delta < 0 {
			return nil, fmt.Errorf("trace: line %d: bad delta %q", line, f[0])
		}
		var op Op
		switch f[1] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, f[1])
		}
		lba, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad lba %q", line, f[2])
		}
		blocks, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block count %q", line, f[3])
		}
		var class uint64
		if v2 {
			class, err = strconv.ParseUint(f[4], 10, 8)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad class %q", line, f[4])
			}
		}
		at += sim.Time(delta)
		t.Records = append(t.Records, Record{At: at, Op: op, LBA: lba, Blocks: blocks, Class: uint8(class)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Binary format: magic, uvarint-framed header, then per record
// uvarint(deltaNanos), byte(op), uvarint(lba delta zig-zag), uvarint(blocks).
// It is several times smaller than text and much faster to parse.
//
// RSTB2 extends RSTB1 with the client-class table: after the record count
// come uvarint(numClasses) class entries (uvarint name length, name
// bytes, one SLO byte), and every record gains a trailing class byte.
// Classless traces are still written as RSTB1.

var (
	binMagic   = []byte("RSTB1\n")
	binMagicV2 = []byte("RSTB2\n")
)

// WriteBinary encodes t in the compact binary format (RSTB1 when
// classless, RSTB2 when the trace carries a class table).
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	v2 := len(t.Classes) > 0
	magic := binMagic
	if v2 {
		magic = binMagicV2
	}
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	name := []byte(t.Name)
	if err := put(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := put(uint64(t.NumDisks)); err != nil {
		return err
	}
	if err := put(uint64(t.BlocksPerDisk)); err != nil {
		return err
	}
	if err := put(uint64(len(t.Records))); err != nil {
		return err
	}
	if v2 {
		if err := put(uint64(len(t.Classes))); err != nil {
			return err
		}
		for _, c := range t.Classes {
			cn := []byte(c.Name)
			if err := put(uint64(len(cn))); err != nil {
				return err
			}
			if _, err := bw.Write(cn); err != nil {
				return err
			}
			if err := bw.WriteByte(c.SLO); err != nil {
				return err
			}
		}
	}
	var prevAt sim.Time
	var prevLBA int64
	for _, r := range t.Records {
		if err := put(uint64(r.At - prevAt)); err != nil {
			return err
		}
		prevAt = r.At
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		d := r.LBA - prevLBA
		prevLBA = r.LBA
		if err := put(zigzag(d)); err != nil {
			return err
		}
		if err := put(uint64(r.Blocks)); err != nil {
			return err
		}
		if v2 {
			if err := bw.WriteByte(r.Class); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary-format trace (RSTB1 or RSTB2).
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: binary magic: %w", err)
	}
	v2 := false
	switch string(magic) {
	case string(binMagic):
	case string(binMagicV2):
		v2 = true
	default:
		return nil, fmt.Errorf("trace: not a raidsim binary trace")
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	nd, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: disk count: %w", err)
	}
	bpd, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: blocks per disk: %w", err)
	}
	count, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: record count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("trace: unreasonable record count %d", count)
	}
	// The declared count bounds the decode loop, but a hostile header can
	// claim 2^31 records with no payload behind it — cap the preallocation
	// hint so that costs an EOF error, not a multi-GiB allocation. append
	// grows the slice normally for genuinely large traces.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t := &Trace{
		Name:          string(name),
		NumDisks:      int(nd),
		BlocksPerDisk: int64(bpd),
		Records:       make([]Record, 0, capHint),
	}
	if v2 {
		nclasses, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: class count: %w", err)
		}
		if nclasses < 1 || nclasses > 256 {
			return nil, fmt.Errorf("trace: unreasonable class count %d", nclasses)
		}
		for i := uint64(0); i < nclasses; i++ {
			cl, err := get()
			if err != nil {
				return nil, fmt.Errorf("trace: class %d name length: %w", i, err)
			}
			if cl > 1<<12 {
				return nil, fmt.Errorf("trace: unreasonable class name length %d", cl)
			}
			cn := make([]byte, cl)
			if _, err := io.ReadFull(br, cn); err != nil {
				return nil, fmt.Errorf("trace: class %d name: %w", i, err)
			}
			slo, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: class %d slo: %w", i, err)
			}
			t.Classes = append(t.Classes, ClassInfo{Name: string(cn), SLO: slo})
		}
	}
	var at sim.Time
	var lba int64
	for i := uint64(0); i < count; i++ {
		delta, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d delta: %w", i, err)
		}
		opb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", i, err)
		}
		if opb > 1 {
			return nil, fmt.Errorf("trace: record %d: bad op %d", i, opb)
		}
		ld, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d lba: %w", i, err)
		}
		blocks, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d blocks: %w", i, err)
		}
		var class byte
		if v2 {
			class, err = br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: record %d class: %w", i, err)
			}
		}
		at += sim.Time(delta)
		lba += unzigzag(ld)
		t.Records = append(t.Records, Record{At: at, Op: Op(opb), LBA: lba, Blocks: int(blocks), Class: class})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
