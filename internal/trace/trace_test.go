package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"raidsim/internal/rng"
	"raidsim/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:          "sample",
		NumDisks:      4,
		BlocksPerDisk: 1000,
		Records: []Record{
			{At: 0, Op: Read, LBA: 10, Blocks: 1},
			{At: 1000, Op: Write, LBA: 1500, Blocks: 4},
			{At: 1000, Op: Read, LBA: 2100, Blocks: 1},
			{At: 5000, Op: Write, LBA: 3999, Blocks: 1},
		},
	}
}

func randomTrace(seed uint64, n int) *Trace {
	src := rng.New(seed)
	t := &Trace{Name: "rand", NumDisks: 8, BlocksPerDisk: 5000}
	var at sim.Time
	for i := 0; i < n; i++ {
		at += sim.Time(src.Intn(100000)) * sim.Microsecond
		blocks := 1 + src.Intn(16)
		lba := src.Int63n(int64(t.NumDisks)*t.BlocksPerDisk - int64(blocks))
		op := Read
		if src.Bool(0.3) {
			op = Write
		}
		t.Records = append(t.Records, Record{At: at, Op: op, LBA: lba, Blocks: blocks})
	}
	return t
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("sample should validate: %v", err)
	}
	bad := []*Trace{
		{Name: "shape", NumDisks: 0, BlocksPerDisk: 10},
		func() *Trace { tr := sampleTrace(); tr.Records[1].At = -1; return tr }(),
		func() *Trace { tr := sampleTrace(); tr.Records[3].At = 100; return tr }(), // goes back
		func() *Trace { tr := sampleTrace(); tr.Records[0].Blocks = 0; return tr }(),
		func() *Trace { tr := sampleTrace(); tr.Records[0].LBA = 4000; return tr }(), // out of space
		func() *Trace { tr := sampleTrace(); tr.Records[1].Blocks = 5000; return tr }(),
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Errorf("bad trace %d validated", i)
		}
	}
}

func TestScale(t *testing.T) {
	tr := sampleTrace()
	fast, err := tr.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration() != tr.Duration()/2 {
		t.Fatalf("2x speed duration %d, want %d", fast.Duration(), tr.Duration()/2)
	}
	if len(fast.Records) != len(tr.Records) {
		t.Fatal("scaling changed record count")
	}
	slow, err := tr.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration() != tr.Duration()*2 {
		t.Fatalf("0.5x speed duration %d", slow.Duration())
	}
	// Original untouched.
	if tr.Records[1].At != 1000 {
		t.Fatal("Scale mutated the source trace")
	}
	if _, err := tr.Scale(0); err == nil {
		t.Fatal("zero speed should be rejected")
	}
	if _, err := tr.Scale(-1); err == nil {
		t.Fatal("negative speed should be rejected")
	}
}

func TestTruncate(t *testing.T) {
	tr := sampleTrace()
	cut := tr.Truncate(2)
	if len(cut.Records) != 2 {
		t.Fatalf("truncate kept %d records", len(cut.Records))
	}
	if same := tr.Truncate(100); same != tr {
		t.Fatal("truncate beyond length should return the original")
	}
}

func TestSplitByGroup(t *testing.T) {
	tr := sampleTrace()
	subs, err := tr.SplitByGroup(2) // disks {0,1}, {2,3}
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d groups", len(subs))
	}
	if len(subs[0].Records) != 2 || len(subs[1].Records) != 2 {
		t.Fatalf("group sizes %d/%d", len(subs[0].Records), len(subs[1].Records))
	}
	// Re-addressing: group 1's first record was LBA 2100 (disk 2) ->
	// 2100 - 2*1000 = 100.
	if subs[1].Records[0].LBA != 100 {
		t.Fatalf("re-addressed LBA = %d, want 100", subs[1].Records[0].LBA)
	}
	for _, sub := range subs {
		if err := sub.Validate(); err != nil {
			t.Fatalf("split part invalid: %v", err)
		}
	}
	// Uneven split: 4 disks into groups of 3 -> groups of 3 and 1 disks.
	subs, err = tr.SplitByGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0].NumDisks != 3 || subs[1].NumDisks != 1 {
		t.Fatalf("uneven split wrong: %d groups", len(subs))
	}
	if _, err := tr.SplitByGroup(0); err == nil {
		t.Fatal("non-positive group size should be rejected")
	}
}

func TestSplitPreservesEverything(t *testing.T) {
	f := func(seed uint64, groupRaw uint8) bool {
		tr := randomTrace(seed, 300)
		per := 1 + int(groupRaw%8)
		subs, err := tr.SplitByGroup(per)
		if err != nil {
			return false
		}
		total := 0
		for g, sub := range subs {
			total += len(sub.Records)
			base := int64(g) * int64(per) * tr.BlocksPerDisk
			for _, r := range sub.Records {
				if r.LBA < 0 || r.LBA >= int64(sub.NumDisks)*sub.BlocksPerDisk {
					return false
				}
				_ = base
			}
			if sub.Validate() != nil {
				return false
			}
		}
		return total == len(tr.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	tr := randomTrace(1, 200)
	subs, err := tr.SplitByGroup(tr.NumDisks) // single group: identity modulo name
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge("m", subs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != len(tr.Records) {
		t.Fatal("merge lost records")
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge("x"); err == nil {
		t.Fatal("empty merge should fail")
	}
}

func TestTextRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumDisks != tr.NumDisks || got.BlocksPerDisk != tr.BlocksPerDisk {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records mismatch:\n got %v\nwant %v", got.Records, tr.Records)
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 200)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Records, tr.Records) &&
			got.NumDisks == tr.NumDisks && got.BlocksPerDisk == tr.BlocksPerDisk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := randomTrace(3, 5000)
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%d) not smaller than text (%d)", bin.Len(), txt.Len())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"raidsim-trace v1 x 4\n",                   // missing field
		"raidsim-trace v1 x 4 100\n1 Q 5 1\n",      // bad op
		"raidsim-trace v1 x 4 100\n-5 R 5 1\n",     // negative delta
		"raidsim-trace v1 x 4 100\n1 R 5\n",        // missing field
		"raidsim-trace v1 x 4 100\n1 R 999999 1\n", // out of range
	}
	for i, c := range cases {
		if _, err := ReadText(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
	// Comments and blank lines are fine.
	ok := "raidsim-trace v1 x 4 100\n# comment\n\n1 R 5 1\n"
	tr, err := ReadText(bytes.NewBufferString(ok))
	if err != nil || len(tr.Records) != 1 {
		t.Fatalf("comment handling broken: %v", err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage parsed as binary trace")
	}
	// Truncated stream.
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated binary trace parsed")
	}
}

func TestCharacterize(t *testing.T) {
	tr := sampleTrace()
	c := Characterize(tr)
	if c.Accesses != 4 || c.BlocksTransferred != 7 {
		t.Fatalf("accesses %d blocks %d", c.Accesses, c.BlocksTransferred)
	}
	if c.SingleBlockReads != 2 || c.SingleBlockWrites != 1 || c.MultiBlockReads != 0 || c.MultiBlockWrites != 1 {
		t.Fatalf("mix wrong: %+v", c)
	}
	if got := c.WriteFraction(); got != 0.5 {
		t.Fatalf("write fraction %f", got)
	}
	if got := c.SingleBlockFraction(); got != 0.75 {
		t.Fatalf("single fraction %f", got)
	}
	// Per-disk: lba 10 -> disk 0, 1500 -> 1, 2100 -> 2, 3999 -> 3.
	for d := 0; d < 4; d++ {
		if c.PerDiskAccesses[d] != 1 {
			t.Fatalf("disk %d accesses %d", d, c.PerDiskAccesses[d])
		}
	}
	if c.Skew() != 1 {
		t.Fatalf("skew %f, want 1 (uniform)", c.Skew())
	}
	if s := c.String(); len(s) == 0 {
		t.Fatal("empty characterization string")
	}
}

func classedTrace() *Trace {
	tr := sampleTrace()
	tr.Classes = []ClassInfo{
		{Name: "oltp", SLO: SLOGold},
		{Name: "scan", SLO: SLOBatch},
		{Name: "misc", SLO: SLOAuto},
	}
	for i := range tr.Records {
		tr.Records[i].Class = uint8(i % len(tr.Classes))
	}
	return tr
}

func TestClassedTextRoundtrip(t *testing.T) {
	tr := classedTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("raidsim-trace v2 ")) {
		t.Fatalf("classed trace should write v2, got header %q", bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0])
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Classes, tr.Classes) {
		t.Fatalf("classes mismatch:\n got %v\nwant %v", got.Classes, tr.Classes)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records mismatch:\n got %v\nwant %v", got.Records, tr.Records)
	}
}

func TestClassedBinaryRoundtrip(t *testing.T) {
	tr := classedTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("RSTB2\n")) {
		t.Fatalf("classed trace should write RSTB2, got %q", buf.Bytes()[:6])
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Classes, tr.Classes) {
		t.Fatalf("classes mismatch:\n got %v\nwant %v", got.Classes, tr.Classes)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("records mismatch:\n got %v\nwant %v", got.Records, tr.Records)
	}
}

func TestClasslessStaysV1(t *testing.T) {
	tr := sampleTrace()
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(txt.Bytes(), []byte("raidsim-trace v1 ")) {
		t.Fatalf("classless trace should keep v1, got %q", bytes.SplitN(txt.Bytes(), []byte("\n"), 2)[0])
	}
	if !bytes.HasPrefix(bin.Bytes(), []byte("RSTB1\n")) {
		t.Fatalf("classless trace should keep RSTB1, got %q", bin.Bytes()[:6])
	}
}
