package trace

import (
	"math"
	"testing"

	"raidsim/internal/sim"
)

func analysisTrace() *Trace {
	// Hand-built: 4 records on 2 disks with known relationships.
	return &Trace{
		Name: "a", NumDisks: 2, BlocksPerDisk: 1000,
		Records: []Record{
			{At: 0, Op: Read, LBA: 100, Blocks: 2},                     // disk 0
			{At: 10 * sim.Millisecond, Op: Read, LBA: 102, Blocks: 1},  // disk 0, sequential
			{At: 20 * sim.Millisecond, Op: Write, LBA: 100, Blocks: 1}, // disk 0, read-before-write
			{At: 30 * sim.Millisecond, Op: Read, LBA: 1500, Blocks: 1}, // disk 1
		},
	}
}

func TestAnalyzeKnownTrace(t *testing.T) {
	a := Analyze(analysisTrace())
	if a.InterArrival.N() != 3 || math.Abs(a.InterArrival.Mean()-10) > 1e-9 {
		t.Fatalf("inter-arrival: %v", a.InterArrival)
	}
	// Blocks referenced: 100,101,102,100,1500 = 5; unique = 4.
	if a.UniqueBlocks != 4 {
		t.Fatalf("unique blocks %d", a.UniqueBlocks)
	}
	if math.Abs(a.UniqueFraction-0.8) > 1e-9 {
		t.Fatalf("unique fraction %f", a.UniqueFraction)
	}
	if math.Abs(a.ReReferenceP-0.2) > 1e-9 {
		t.Fatalf("re-reference %f", a.ReReferenceP)
	}
	// One write, and its block (100) was read before.
	if a.ReadBeforeWrite != 1 {
		t.Fatalf("rbw %f", a.ReadBeforeWrite)
	}
	// Consecutive-disk pairs: (0,0),(0,0),(0,1) -> 2/3 same.
	if math.Abs(a.SameDiskP-2.0/3) > 1e-9 {
		t.Fatalf("same disk %f", a.SameDiskP)
	}
	// Disk-0 continuations: record 1 starts exactly at the previous end
	// (102); record 2 does not. -> 1/2.
	if math.Abs(a.SequentialP-0.5) > 1e-9 {
		t.Fatalf("sequential %f", a.SequentialP)
	}
	if a.String() == "" {
		t.Fatal("empty analysis rendering")
	}
}

func TestStackDistances(t *testing.T) {
	tr := &Trace{Name: "s", NumDisks: 1, BlocksPerDisk: 100}
	// A B C A  ->  A's re-reference has stack distance 2 (B, C newer).
	for i, b := range []int64{1, 2, 3, 1} {
		tr.Records = append(tr.Records, Record{At: sim.Time(i), Op: Read, LBA: b, Blocks: 1})
	}
	d := StackDistances(tr, 1)
	if len(d) != 1 || d[0] != 2 {
		t.Fatalf("stack distances %v, want [2]", d)
	}
	// A A -> distance 0.
	tr2 := &Trace{Name: "s2", NumDisks: 1, BlocksPerDisk: 100,
		Records: []Record{
			{At: 0, Op: Read, LBA: 5, Blocks: 1},
			{At: 1, Op: Read, LBA: 5, Blocks: 1},
		}}
	if d := StackDistances(tr2, 1); len(d) != 1 || d[0] != 0 {
		t.Fatalf("immediate re-reference distance %v, want [0]", d)
	}
}

func TestHitRatioAt(t *testing.T) {
	sorted := []int{0, 1, 5, 50, 500}
	// Cache of 10 blocks catches distances < 10: the first three of five.
	if got := HitRatioAt(sorted, 10, 0.5); math.Abs(got-0.5*3/5) > 1e-12 {
		t.Fatalf("hit ratio %f", got)
	}
	if HitRatioAt(nil, 10, 0.5) != 0 {
		t.Fatal("empty distances should give 0")
	}
	// Monotone in cache size.
	prev := 0.0
	for _, c := range []int{1, 2, 10, 100, 1000} {
		v := HitRatioAt(sorted, c, 1)
		if v < prev {
			t.Fatal("hit ratio not monotone")
		}
		prev = v
	}
}

// TestAnalyzePredictsSimHitRatio: the stack-distance prediction and the
// simulated cache hit ratio should roughly agree — this ties the analysis
// tooling to the simulator.
func TestAnalyzeConsistentWithGenerator(t *testing.T) {
	// Built via the generator in the workload package's tests; here just
	// check invariants on a random-ish trace built locally.
	tr := &Trace{Name: "g", NumDisks: 2, BlocksPerDisk: 10000}
	at := sim.Time(0)
	for i := 0; i < 2000; i++ {
		at += sim.Time(i%7) * sim.Millisecond
		lba := int64((i * 37) % 500) // heavy reuse of 500 blocks
		tr.Records = append(tr.Records, Record{At: at, Op: Read, LBA: lba, Blocks: 1})
	}
	a := Analyze(tr)
	if a.UniqueBlocks != 500 {
		t.Fatalf("unique %d, want 500", a.UniqueBlocks)
	}
	if a.ReReferenceP < 0.7 {
		t.Fatalf("re-reference %f, want high", a.ReReferenceP)
	}
	d := StackDistances(tr, 1)
	// All re-references fit in a 500-block cache.
	if got := HitRatioAt(d, 500, a.ReReferenceP); math.Abs(got-a.ReReferenceP) > 1e-9 {
		t.Fatalf("full-coverage hit ratio %f, want %f", got, a.ReReferenceP)
	}
}
