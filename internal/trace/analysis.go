package trace

import (
	"fmt"
	"sort"
	"strings"

	"raidsim/internal/sim"
	"raidsim/internal/stats"
)

// Analysis holds the deeper trace statistics tracestat -analyze reports:
// the arrival process, temporal locality, and spatial structure that the
// workload generator's knobs control. Comparing a synthetic trace's
// Analysis against expectations is how the generator is validated.
type Analysis struct {
	// Arrival process.
	InterArrival stats.Summary // ms between consecutive requests
	BurstinessCV float64       // coefficient of variation of inter-arrivals
	PeakMeanRate float64       // per-second arrival peak over mean

	// Temporal locality.
	UniqueBlocks    int64   // distinct blocks touched
	UniqueFraction  float64 // distinct blocks / blocks referenced
	ReReferenceP    float64 // P(block was referenced before)
	ReadBeforeWrite float64 // P(write targets a previously read block)

	// Spatial structure.
	SameDiskP    float64       // P(consecutive requests hit the same logical disk)
	SeekDistance stats.Summary // |Δblock| between consecutive refs on the same disk
	SequentialP  float64       // P(next request on a disk starts exactly after the previous)
}

// Analyze computes an Analysis. Memory is O(distinct blocks).
func Analyze(t *Trace) Analysis {
	var a Analysis
	seen := make(map[int64]struct{}, len(t.Records))
	read := make(map[int64]struct{}, len(t.Records))
	lastPerDisk := make(map[int]int64)
	var blocksReferenced, reRefs int64
	var writes, rbw int64
	var samePairs, seqPairs, diskPairs int64

	var prevAt sim.Time
	var prevDisk = -1
	rates := make(map[int64]int64)
	for i, r := range t.Records {
		if i > 0 {
			a.InterArrival.Add(sim.Millis(r.At - prevAt))
		}
		prevAt = r.At
		rates[r.At/sim.Second]++

		d := t.Disk(r)
		if prevDisk >= 0 {
			diskPairs++
			if d == prevDisk {
				samePairs++
			}
		}
		prevDisk = d

		if last, ok := lastPerDisk[d]; ok {
			delta := r.LBA - last
			if delta < 0 {
				delta = -delta
			}
			a.SeekDistance.Add(float64(delta))
			if r.LBA == last {
				seqPairs++
			}
		}
		lastPerDisk[d] = r.LBA + int64(r.Blocks)

		if r.Op == Write {
			writes++
			if _, ok := read[r.LBA]; ok {
				rbw++
			}
		}
		for b := r.LBA; b < r.LBA+int64(r.Blocks); b++ {
			blocksReferenced++
			if _, ok := seen[b]; ok {
				reRefs++
			} else {
				seen[b] = struct{}{}
			}
			if r.Op == Read {
				read[b] = struct{}{}
			}
		}
	}

	a.UniqueBlocks = int64(len(seen))
	if blocksReferenced > 0 {
		a.UniqueFraction = float64(len(seen)) / float64(blocksReferenced)
		a.ReReferenceP = float64(reRefs) / float64(blocksReferenced)
	}
	if writes > 0 {
		a.ReadBeforeWrite = float64(rbw) / float64(writes)
	}
	if diskPairs > 0 {
		a.SameDiskP = float64(samePairs) / float64(diskPairs)
	}
	if n := a.SeekDistance.N(); n > 0 {
		a.SequentialP = float64(seqPairs) / float64(n)
	}
	if m := a.InterArrival.Mean(); m > 0 {
		a.BurstinessCV = a.InterArrival.Std() / m
	}
	var peak, total int64
	for _, c := range rates {
		total += c
		if c > peak {
			peak = c
		}
	}
	if len(rates) > 0 && total > 0 {
		mean := float64(total) / float64(len(rates))
		a.PeakMeanRate = float64(peak) / mean
	}
	return a
}

// StackDistances samples LRU stack distances: for each re-reference, how
// many distinct blocks were touched since the previous reference to the
// same block. The returned slice is sorted ascending; quantiles of it
// predict hit ratios (a cache of C blocks catches re-references with
// stack distance < C). sampleEvery subsamples for speed (1 = exact).
func StackDistances(t *Trace, sampleEvery int) []int {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	// LRU stack as a slice of blocks in recency order; O(n * stack) worst
	// case, subsampled. Adequate for analysis duty.
	pos := make(map[int64]int) // block -> index in stack
	var stack []int64
	var out []int
	n := 0
	for _, r := range t.Records {
		b := r.LBA
		if i, ok := pos[b]; ok {
			// Distance = number of distinct blocks more recent than b.
			d := len(stack) - 1 - i
			n++
			if n%sampleEvery == 0 {
				out = append(out, d)
			}
			// Move to top.
			copy(stack[i:], stack[i+1:])
			stack[len(stack)-1] = b
			for j := i; j < len(stack); j++ {
				pos[stack[j]] = j
			}
		} else {
			pos[b] = len(stack)
			stack = append(stack, b)
		}
	}
	sort.Ints(out)
	return out
}

// HitRatioAt estimates the hit ratio a cache of the given size (blocks)
// would achieve, from sorted stack distances and the total reference and
// re-reference counts they were sampled from.
func HitRatioAt(sorted []int, cacheBlocks int, reRefFraction float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := sort.SearchInts(sorted, cacheBlocks)
	return reRefFraction * float64(idx) / float64(len(sorted))
}

// String renders the analysis as an aligned block.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  inter-arrival mean:      %.3f ms (CV %.2f)\n", a.InterArrival.Mean(), a.BurstinessCV)
	fmt.Fprintf(&b, "  arrival peak/mean rate:  %.2f\n", a.PeakMeanRate)
	fmt.Fprintf(&b, "  unique blocks:           %d (%.1f%% of references)\n", a.UniqueBlocks, a.UniqueFraction*100)
	fmt.Fprintf(&b, "  re-reference fraction:   %.3f\n", a.ReReferenceP)
	fmt.Fprintf(&b, "  read-before-write:       %.3f\n", a.ReadBeforeWrite)
	fmt.Fprintf(&b, "  same-disk consecutives:  %.3f\n", a.SameDiskP)
	fmt.Fprintf(&b, "  sequential continuation: %.3f\n", a.SequentialP)
	fmt.Fprintf(&b, "  within-disk jump median: %.0f blocks\n", a.SeekDistance.Quantile(0.5))
	return b.String()
}
