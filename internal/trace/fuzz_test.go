package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzBinaryCodecRoundTrip feeds arbitrary bytes to ReadBinary. Garbage
// must fail cleanly (error, no panic, no runaway allocation); anything
// that decodes must survive an encode/decode round trip unchanged. The
// re-encoded form is also required to be stable: varint framing is not
// canonical, so input bytes may differ from output bytes, but output
// must be a fixed point.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	// Seed with real encodings so the fuzzer starts past the magic check.
	seeds := []*Trace{
		{Name: "tiny", NumDisks: 2, BlocksPerDisk: 8, Records: []Record{
			{At: 0, Op: Read, LBA: 0, Blocks: 1},
			{At: 10, Op: Write, LBA: 15, Blocks: 1},
		}},
		{Name: "runs", NumDisks: 4, BlocksPerDisk: 100, Records: []Record{
			{At: 5, Op: Write, LBA: 42, Blocks: 4},
			{At: 5, Op: Read, LBA: 3, Blocks: 2},
			{At: 900, Op: Read, LBA: 399, Blocks: 1},
		}},
		{Name: "", NumDisks: 1, BlocksPerDisk: 1},
	}
	for _, t := range seeds {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, t); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RSTB1\n")) // magic only, truncated header
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ReadBinary accepted an invalid trace: %v", verr)
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\n in: %+v\nout: %+v", tr, tr2)
		}
		var out2 bytes.Buffer
		if err := WriteBinary(&out2, tr2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}
