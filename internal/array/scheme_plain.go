package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
)

// plainScheme is any redundancy-free organization: Base (independent
// disks) and RAID0 (pure striping). Reads go to the block's home disk;
// writes have a single copy, so a write targeting a dead slot is simply
// lost, and a failed drive is a data-loss event outright.
type plainScheme struct {
	c   *common
	lay layout.DataLayout
	o   Org
}

func (s *plainScheme) org() Org          { return s.o }
func (s *plainScheme) dataBlocks() int64 { return s.lay.DataBlocks() }
func (s *plainScheme) keepOldData() bool { return false }

func (s *plainScheme) fetchRuns(lbas []int64) []run { return dataRuns(s.lay, lbas) }

func (s *plainScheme) write(w writeOp) {
	runs := dataRuns(s.lay, w.lbas)
	runs, dropped := s.c.filterWriteRuns(runs)
	s.c.fs.lostWriteBlocks += int64(dropped)
	s.c.plainWrite(runs, w)
}

// No redundancy: every failure loses data, nothing can rebuild a spare,
// and reads of a dead slot are unrecoverable.
func (s *plainScheme) onFail(int) { s.c.fs.dataLossEvents++ }

func (s *plainScheme) rebuildSources(int) []int { return nil }

func (s *plainScheme) readFallback(run, disk.Priority, *obs.Span, func()) bool { return false }
