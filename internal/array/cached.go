package array

import (
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// cachedCtrl holds what every cached organization shares: the NV cache,
// the periodic destage ticker, room-making (eviction) and the read/write
// front-end. The organization-specific part is writeBack — how a set of
// dirty blocks reaches the disks — and how read-miss fetch runs are laid
// out, both supplied by the embedding type.
type cachedCtrl struct {
	*common
	lay    layout.DataLayout
	c      *cache.Cache
	ccfg   cache.Config
	ticker *sim.Ticker

	// epoch counts NVRAM cache failures. In-flight destages capture it at
	// issue time and skip their CompleteDestage bookkeeping when stale —
	// the entries they would complete died with the old cache.
	epoch int

	// writeBackMarked persists cached dirty blocks already marked as
	// destaging and calls onDone when they are clean on disk. spread
	// distributes the issues over a window to limit interference.
	// Supplied by the embedding organization.
	writeBackMarked func(lbas []int64, pri disk.Priority, spread sim.Time, onDone func())
	// fetchRuns lays out a read-miss fetch for the given blocks.
	fetchRuns func(lbas []int64) []run
}

// writeBack marks the blocks as destaging and persists them.
func (cc *cachedCtrl) writeBack(lbas []int64, pri disk.Priority, spread sim.Time, onDone func()) {
	for _, l := range lbas {
		cc.c.BeginDestage(l)
	}
	cc.writeBackMarked(lbas, pri, spread, onDone)
}

func (cc *cachedCtrl) initDestage() {
	cc.fs.onCacheFail = cc.cacheFailed
	if cc.cfg.PureLRUWriteback {
		return
	}
	cc.ticker = sim.NewTicker(cc.eng, cc.cfg.DestagePeriod, cc.destageTick)
}

// cacheFailed models NVRAM death: every dirty block not yet on disk is
// lost, and a fresh (empty) cache module is swapped in. Destages already
// in flight keep running — their disk writes are harmless — but their
// completion bookkeeping is epoch-guarded away.
func (cc *cachedCtrl) cacheFailed() {
	cc.fs.dirtyLost += int64(len(cc.c.DirtyNotDestaging()))
	cc.epoch++
	fresh, err := cache.New(cc.ccfg)
	if err != nil {
		// The same config built the original cache; failure here is a bug.
		panic(err)
	}
	cc.c = fresh
}

// DataBlocks implements Controller.
func (cc *cachedCtrl) DataBlocks() int64 { return cc.lay.DataBlocks() }

func (cc *cachedCtrl) cachedResults(org Org) *Results {
	r := cc.baseResults(org)
	r.Cache = cc.c.S
	return r
}

// destageChunk bounds how many blocks one write-back batch may carry, so
// a large destage neither seizes the whole track-buffer pool nor floods
// the disk queues at once.
const destageChunk = 16

// destageTick writes back all currently dirty blocks in chunks staggered
// across 80% of the destage period, so the asynchronous writes interfere
// minimally with foreground reads. Chunks keep stripe-adjacent blocks
// together (the candidate list is LBA-sorted), preserving most
// full-stripe write-back opportunities.
func (cc *cachedCtrl) destageTick() {
	lbas := cc.c.DirtyNotDestaging()
	if len(lbas) == 0 {
		return
	}
	spread := cc.cfg.DestagePeriod / 5
	nchunks := (len(lbas) + destageChunk - 1) / destageChunk
	gap := spread / sim.Time(nchunks)
	for i := 0; i < nchunks; i++ {
		chunk := lbas[i*destageChunk : min(len(lbas), (i+1)*destageChunk)]
		// Mark now so the next tick (or a concurrent victim flush) does
		// not pick the same blocks; the delayed write-back skips the
		// marking step.
		for _, l := range chunk {
			cc.c.BeginDestage(l)
		}
		// Destage accesses run at normal priority — the paper limits
		// their interference by scheduling them progressively (the
		// stagger), not by preempting them.
		if i == 0 {
			cc.writeBackMarked(chunk, disk.PriNormal, gap, func() {})
			continue
		}
		cc.eng.After(gap*sim.Time(i), func() {
			cc.writeBackMarked(chunk, disk.PriNormal, gap, func() {})
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// makeRoom frees cache slots until at least want are available, then runs
// fn. Clean victims are dropped; a dirty victim must first be written to
// disk — the cost the destage process exists to make rare.
func (cc *cachedCtrl) makeRoom(want int, fn func()) {
	for cc.c.FreeSlots() < want {
		v := cc.c.Victim()
		if v == nil {
			// Everything is mid-destage; retry shortly.
			cc.eng.After(sim.Millisecond, func() { cc.makeRoom(want, fn) })
			return
		}
		if v.Dirty {
			lba := v.LBA
			cc.c.NoteDirtyEviction()
			cc.writeBack([]int64{lba}, disk.PriNormal, 0, func() {
				if e := cc.c.Lookup(lba); e != nil && !e.Dirty && !e.Destaging {
					cc.c.Drop(lba)
				}
				cc.makeRoom(want, fn)
			})
			return
		}
		cc.c.Drop(v.LBA)
	}
	fn()
}

// Submit implements Controller.
func (cc *cachedCtrl) Submit(r Request) {
	cc.checkRequest(r, cc.lay.DataBlocks())
	start := cc.begin()
	if r.Op == trace.Read {
		cc.read(r, start)
	} else {
		cc.write(r, start)
	}
}

// read serves hits from the cache (channel time only) and fetches misses
// from disk. A multiblock request counts as a hit only when every block
// is cached.
func (cc *cachedCtrl) read(r Request, start sim.Time) {
	var missing []int64
	for i := 0; i < r.Blocks; i++ {
		l := r.LBA + int64(i)
		if !cc.c.Touch(l) {
			missing = append(missing, l)
		}
	}
	measured := start >= cc.cfg.Warmup
	if len(missing) == 0 {
		if measured {
			cc.readHits++
		}
		cc.chanXfer(r.Blocks, func() { cc.finish(r, start) })
		return
	}
	if measured {
		cc.readMisses++
	}
	cc.makeRoom(len(missing), func() {
		// A concurrent miss may have inserted some blocks meanwhile.
		fetch := missing[:0]
		for _, l := range missing {
			if !cc.c.Contains(l) {
				cc.c.Insert(l, false)
				fetch = append(fetch, l)
			}
		}
		if len(fetch) == 0 {
			cc.chanXfer(r.Blocks, func() { cc.finish(r, start) })
			return
		}
		runs := cc.fetchRuns(fetch)
		cc.readRuns(runs, r.Blocks, func() { cc.finish(r, start) })
	})
}

// write lands the data in the NV cache: channel transfer, then per-block
// bookkeeping. The response completes without touching a disk unless a
// dirty block must be evicted to make room.
func (cc *cachedCtrl) write(r Request, start sim.Time) {
	allHit := true
	for i := 0; i < r.Blocks; i++ {
		if !cc.c.Contains(r.LBA + int64(i)) {
			allHit = false
			break
		}
	}
	if start >= cc.cfg.Warmup {
		if allHit {
			cc.writeHits++
		} else {
			cc.writeMisses++
		}
	}
	cc.chanXfer(r.Blocks, func() {
		cc.insertDirty(r.LBA, r.Blocks, 0, func() { cc.finish(r, start) })
	})
}

// insertDirty processes block i of the write, serializing room-making.
func (cc *cachedCtrl) insertDirty(lba int64, n, i int, done func()) {
	if i == n {
		done()
		return
	}
	l := lba + int64(i)
	if cc.c.Contains(l) {
		cc.c.MarkDirty(l)
		cc.insertDirty(lba, n, i+1, done)
		return
	}
	cc.makeRoom(1, func() {
		if cc.c.Contains(l) {
			cc.c.MarkDirty(l)
		} else {
			cc.c.Insert(l, true)
		}
		cc.insertDirty(lba, n, i+1, done)
	})
}

// newCachedPlain builds the cached Base (mir == nil) or Mirror
// organization: no parity, so write-back is plain data writes (both
// copies for Mirror) and read-miss fetches use the nearest copy.
func newCachedPlain(c *common, lay layout.DataLayout, mir layout.MirrorLayout) (*cachedPlain, error) {
	ccfg := cache.Config{Blocks: c.cfg.CacheBlocks, KeepOldData: false}
	nvc, err := cache.New(ccfg)
	if err != nil {
		return nil, err
	}
	cp := &cachedPlain{
		cachedCtrl: &cachedCtrl{
			common: c,
			lay:    lay,
			c:      nvc,
			ccfg:   ccfg,
		},
		mir: mir,
	}
	cp.writeBackMarked = cp.doWriteBack
	cp.fetchRuns = cp.doFetchRuns
	cp.initDestage()
	return cp, nil
}

type cachedPlain struct {
	*cachedCtrl
	mir layout.MirrorLayout
	org Org
}

// Results implements Controller.
func (cp *cachedPlain) Results() *Results {
	org := cp.org
	if org == 0 && cp.mir != nil {
		org = OrgMirror
	}
	return cp.cachedResults(org)
}

func (cp *cachedPlain) doFetchRuns(lbas []int64) []run {
	if cp.mir == nil {
		return dataRuns(cp.lay, lbas)
	}
	// Shortest-seek routing per run, as in the non-cached mirror; a dead
	// copy never wins.
	runs := dataRuns(cp.lay, lbas)
	for i := range runs {
		rn := &runs[i]
		if pickMirrorCopy(cp.common, rn.disk, rn.start) {
			rn.disk++
		}
	}
	return runs
}

func (cp *cachedPlain) doWriteBack(lbas []int64, pri disk.Priority, spread sim.Time, onDone func()) {
	runs := dataRuns(cp.lay, lbas)
	if cp.mir != nil {
		runs = append(runs, altRuns(cp.mir, lbas)...)
	}
	if cp.degradedNow() {
		var dropped int
		runs, dropped = cp.filterWriteRuns(runs)
		if dropped > 0 && cp.mir != nil {
			for _, l := range lbas {
				if cp.writeDown(cp.lay.Map(l).Disk) && cp.writeDown(cp.mir.Alt(l).Disk) {
					cp.fs.lostWriteBlocks++
				}
			}
		} else if cp.mir == nil {
			cp.fs.lostWriteBlocks += int64(dropped)
		}
	}
	ep := cp.epoch
	var stagger sim.Time
	if len(runs) > 1 && spread > 0 {
		stagger = spread / sim.Time(len(runs))
	}
	cp.buf.Acquire(len(runs), func() {
		done := newLatch(len(runs), func() {
			cp.buf.Release(len(runs))
			if cp.epoch == ep {
				for _, l := range lbas {
					cp.c.CompleteDestage(l)
				}
			}
			onDone()
		})
		for i, rn := range runs {
			req := &disk.Request{
				StartBlock: rn.start, Blocks: rn.blocks, Write: true,
				Priority: pri, OnDone: done.done,
			}
			d := cp.disks[rn.disk]
			if stagger > 0 && i > 0 {
				cp.eng.After(stagger*sim.Time(i), func() { d.Submit(req) })
			} else {
				d.Submit(req)
			}
		}
	})
}

// newCachedParity builds the cached RAID5 or Parity Striping controller:
// the cache keeps old-data shadows so destage can usually skip re-reading
// old data, but the old parity must still be read (an extra rotation at
// the parity disk) for partial-stripe write-back.
func newCachedParity(c *common, lay layout.ParityLayout) (*cachedParity, error) {
	ccfg := cache.Config{Blocks: c.cfg.CacheBlocks, KeepOldData: true}
	nvc, err := cache.New(ccfg)
	if err != nil {
		return nil, err
	}
	cp := &cachedParity{
		cachedCtrl: &cachedCtrl{
			common: c,
			lay:    lay,
			c:      nvc,
			ccfg:   ccfg,
		},
		play: lay,
	}
	cp.writeBackMarked = cp.doWriteBack
	cp.fetchRuns = func(lbas []int64) []run { return dataRuns(cp.lay, lbas) }
	cp.initDestage()
	return cp, nil
}

type cachedParity struct {
	*cachedCtrl
	play layout.ParityLayout
}

// Results implements Controller.
func (cp *cachedParity) Results() *Results {
	if _, ok := cp.play.(*layout.ParityStriping); ok {
		return cp.cachedResults(OrgParityStriping)
	}
	return cp.cachedResults(OrgRAID5)
}

func (cp *cachedParity) doWriteBack(lbas []int64, pri disk.Priority, spread sim.Time, onDone func()) {
	ep := cp.epoch
	if cp.degradedNow() {
		cp.buf.Acquire(len(lbas), func() {
			cp.degradedUpdate(cp.play, lbas, pri, func() {
				cp.buf.Release(len(lbas))
				if cp.epoch == ep {
					for _, l := range lbas {
						cp.c.CompleteDestage(l)
					}
				}
				onDone()
			})
		})
		return
	}
	plan := planUpdate(cp.play, lbas, func(l int64) bool {
		e := cp.c.Lookup(l)
		return e != nil && e.HasOld
	})
	n := plan.totalRuns()
	var stagger sim.Time
	if len(plan.dataRuns) > 1 && spread > 0 {
		stagger = spread / sim.Time(len(plan.dataRuns))
	}
	cp.buf.Acquire(n, func() {
		cp.executeUpdate(plan, updateOpts{
			policy:  cp.cfg.Sync,
			pri:     pri,
			stagger: stagger,
			onDone: func() {
				cp.buf.Release(n)
				if cp.epoch == ep {
					for _, l := range lbas {
						cp.c.CompleteDestage(l)
					}
				}
				onDone()
			},
		})
	})
}
