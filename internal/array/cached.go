package array

import (
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// cachedCtrl is the NV-cache front-end, written once and working for
// every scheme: hit/miss accounting, the periodic destage ticker,
// room-making (eviction) and the read/write request paths. Everything
// organization-specific — how a destage batch reaches the disks, how a
// read-miss fetch is laid out — is delegated to the scheme underneath.
type cachedCtrl struct {
	*common
	s      scheme
	c      *cache.Cache
	ccfg   cache.Config
	ticker *sim.Ticker

	// epoch counts NVRAM cache failures. In-flight destages capture it at
	// issue time and skip their CompleteDestage bookkeeping when stale —
	// the entries they would complete died with the old cache.
	epoch int
}

// newCached wraps the scheme in the cache front-end. Parity schemes get
// old-data shadows (KeepOldData) so destage can usually skip re-reading
// old data.
func newCached(c *common, s scheme) (*cachedCtrl, error) {
	ccfg := cache.Config{Blocks: c.cfg.CacheBlocks, KeepOldData: s.keepOldData()}
	nvc, err := cache.New(ccfg)
	if err != nil {
		return nil, err
	}
	cc := &cachedCtrl{common: c, s: s, c: nvc, ccfg: ccfg}
	// cc.c is read at sample time, so the closure survives the cache
	// module being swapped out after an NVRAM failure.
	c.dirtyFrac = func() float64 {
		return float64(cc.c.DirtyCount()) / float64(cc.c.Capacity())
	}
	cc.initDestage()
	return cc, nil
}

// hasOld reports whether the pre-write image of a block is in the cache.
func (cc *cachedCtrl) hasOld(l int64) bool {
	e := cc.c.Lookup(l)
	return e != nil && e.HasOld
}

// writeBackMarked persists cached dirty blocks already marked as
// destaging and calls onDone when they are clean on disk: one scheme
// write, with the epoch-guarded destage-completion bookkeeping wrapped
// around the scheme's completion. spread distributes the issues over a
// window to limit interference.
func (cc *cachedCtrl) writeBackMarked(lbas []int64, pri disk.Priority, spread sim.Time, sp *obs.Span, onDone func()) {
	ep := cc.epoch
	cc.s.write(writeOp{
		lbas:   lbas,
		pri:    pri,
		spread: spread,
		hasOld: cc.hasOld,
		span:   sp,
		onDone: func() {
			if cc.epoch == ep {
				for _, l := range lbas {
					cc.c.CompleteDestage(l)
				}
			}
			onDone()
		},
	})
}

// writeBack marks the blocks as destaging and persists them.
func (cc *cachedCtrl) writeBack(lbas []int64, pri disk.Priority, spread sim.Time, sp *obs.Span, onDone func()) {
	for _, l := range lbas {
		cc.c.BeginDestage(l)
	}
	cc.writeBackMarked(lbas, pri, spread, sp, onDone)
}

func (cc *cachedCtrl) initDestage() {
	cc.fs.onCacheFail = cc.cacheFailed
	if cc.cfg.PureLRUWriteback {
		return
	}
	cc.ticker = sim.NewTicker(cc.eng, cc.cfg.DestagePeriod, cc.destageTick)
}

// cacheFailed models NVRAM death: every dirty block not yet on disk is
// lost, and a fresh (empty) cache module is swapped in. Destages already
// in flight keep running — their disk writes are harmless — but their
// completion bookkeeping is epoch-guarded away.
func (cc *cachedCtrl) cacheFailed() {
	lost := len(cc.c.DirtyNotDestaging())
	cc.fs.dirtyLost += int64(lost)
	cc.cfg.Rec.Note(obs.Event{At: cc.eng.Now(), Kind: obs.EvCacheFail, Blocks: lost})
	cc.epoch++
	fresh, err := cache.New(cc.ccfg)
	if err != nil {
		// The same config built the original cache; failure here is a bug.
		panic(err)
	}
	cc.c = fresh
}

// DataBlocks implements Controller.
func (cc *cachedCtrl) DataBlocks() int64 { return cc.s.dataBlocks() }

// Results implements Controller.
func (cc *cachedCtrl) Results() *Results {
	r := cc.baseResults(cc.s.org())
	r.Cache = cc.c.S
	return r
}

// destageChunk bounds how many blocks one write-back batch may carry, so
// a large destage neither seizes the whole track-buffer pool nor floods
// the disk queues at once.
const destageChunk = 16

// destageTick writes back all currently dirty blocks in chunks staggered
// across 80% of the destage period, so the asynchronous writes interfere
// minimally with foreground reads. Chunks keep stripe-adjacent blocks
// together (the candidate list is LBA-sorted), preserving most
// full-stripe write-back opportunities.
func (cc *cachedCtrl) destageTick() {
	lbas := cc.c.DirtyNotDestaging()
	if len(lbas) == 0 {
		return
	}
	cc.cfg.Rec.Destage(cc.eng.Now(), len(lbas))
	spread := cc.cfg.DestagePeriod / 5
	nchunks := (len(lbas) + destageChunk - 1) / destageChunk
	gap := spread / sim.Time(nchunks)
	for i := 0; i < nchunks; i++ {
		chunk := lbas[i*destageChunk : min(len(lbas), (i+1)*destageChunk)]
		// Mark now so the next tick (or a concurrent victim flush) does
		// not pick the same blocks; the delayed write-back skips the
		// marking step.
		for _, l := range chunk {
			cc.c.BeginDestage(l)
		}
		// Destage accesses run at normal priority — the paper limits
		// their interference by scheduling them progressively (the
		// stagger), not by preempting them. Each chunk is its own
		// background trace tree, linking the destage to the cache writes
		// that dirtied it by LBA.
		issue := func() {
			var root *obs.Span
			if cc.tr != nil {
				root = cc.tr.StartBackground("destage", cc.eng.Now())
				root.SetBlocks(len(chunk))
			}
			cc.writeBackMarked(chunk, disk.PriNormal, gap, root, func() {
				if root != nil {
					cc.tr.FinishBackground(root, cc.eng.Now())
				}
			})
		}
		if i == 0 {
			issue()
			continue
		}
		cc.eng.After(gap*sim.Time(i), issue)
	}
}

// makeRoom frees cache slots until at least want are available, then runs
// fn. Clean victims are dropped; a dirty victim must first be written to
// disk — the cost the destage process exists to make rare. Time spent
// here is the cache-destage stall of the latency breakdown.
func (cc *cachedCtrl) makeRoom(want int, sp *obs.Span, fn func()) {
	t0 := cc.eng.Now()
	cc.makeRoomFrom(want, t0, sp, fn)
}

func (cc *cachedCtrl) makeRoomFrom(want int, t0 sim.Time, sp *obs.Span, fn func()) {
	for cc.c.FreeSlots() < want {
		v := cc.c.Victim()
		if v == nil {
			// Everything is mid-destage; retry shortly.
			cl := cc.eng.AfterCall(sim.Millisecond, makeRoomRetryFire)
			cl.A, cl.B, cl.C = cc, sp, fn
			cl.N0, cl.N1 = int64(want), t0
			return
		}
		if v.Dirty {
			lba := v.LBA
			cc.c.NoteDirtyEviction()
			var ev *obs.Span
			if sp != nil {
				ev = sp.Child("evict-write", cc.eng.Now())
			}
			cc.writeBack([]int64{lba}, disk.PriNormal, 0, ev, func() {
				ev.CloseAt(cc.eng.Now())
				if e := cc.c.Lookup(lba); e != nil && !e.Dirty && !e.Destaging {
					cc.c.Drop(lba)
				}
				cc.makeRoomFrom(want, t0, sp, fn)
			})
			return
		}
		cc.c.Drop(v.LBA)
	}
	if now := cc.eng.Now(); now > t0 {
		sp.ChildSpan(obs.SpanStall, t0, now)
	}
	cc.stages.DestageStallMS += sim.Millis(cc.eng.Now() - t0)
	fn()
}

// makeRoomRetryFire re-runs a stalled makeRoom pass: A = controller,
// B = the request span (nil *obs.Span when untraced), C = continuation,
// N0 = wanted slots, N1 = the stall's start time.
func makeRoomRetryFire(_ *sim.Engine, cl *sim.Call) {
	cc := cl.A.(*cachedCtrl)
	cc.makeRoomFrom(int(cl.N0), cl.N1, cl.B.(*obs.Span), cl.C.(func()))
}

// Submit implements Controller.
func (cc *cachedCtrl) Submit(r Request) {
	cc.checkRequest(r, cc.s.dataBlocks())
	if cc.maybeShed(r) {
		return
	}
	start, sp := cc.begin(r.Op != trace.Read)
	if r.Op == trace.Read {
		cc.read(r, start, sp)
	} else {
		cc.write(r, start, sp)
	}
}

// read serves hits from the cache (channel time only) and fetches misses
// from disk. A multiblock request counts as a hit only when every block
// is cached.
func (cc *cachedCtrl) read(r Request, start sim.Time, sp *obs.Span) {
	var missing []int64
	for i := 0; i < r.Blocks; i++ {
		l := r.LBA + int64(i)
		if !cc.c.Touch(l) {
			missing = append(missing, l)
		}
	}
	measured := start >= cc.cfg.Warmup
	if len(missing) == 0 {
		if measured {
			cc.readHits++
		}
		cc.chanXferSpan(r.Blocks, sp, func() { cc.finish(r, start, sp) })
		return
	}
	if measured {
		cc.readMisses++
	}
	cc.makeRoom(len(missing), sp, func() {
		// A concurrent miss may have inserted some blocks meanwhile.
		fetch := missing[:0]
		for _, l := range missing {
			if !cc.c.Contains(l) {
				cc.c.Insert(l, false)
				fetch = append(fetch, l)
			}
		}
		if len(fetch) == 0 {
			cc.chanXferSpan(r.Blocks, sp, func() { cc.finish(r, start, sp) })
			return
		}
		runs := cc.s.fetchRuns(fetch)
		cc.readRuns(runs, r.Blocks, sp, func() { cc.finish(r, start, sp) })
	})
}

// write lands the data in the NV cache: channel transfer, then per-block
// bookkeeping. The response completes without touching a disk unless a
// dirty block must be evicted to make room.
func (cc *cachedCtrl) write(r Request, start sim.Time, sp *obs.Span) {
	allHit := true
	for i := 0; i < r.Blocks; i++ {
		if !cc.c.Contains(r.LBA + int64(i)) {
			allHit = false
			break
		}
	}
	if start >= cc.cfg.Warmup {
		if allHit {
			cc.writeHits++
		} else {
			cc.writeMisses++
		}
	}
	cc.chanXferSpan(r.Blocks, sp, func() {
		cc.insertDirty(r.LBA, r.Blocks, 0, sp, func() { cc.finish(r, start, sp) })
	})
}

// insertDirty processes block i of the write, serializing room-making.
func (cc *cachedCtrl) insertDirty(lba int64, n, i int, sp *obs.Span, done func()) {
	if i == n {
		done()
		return
	}
	l := lba + int64(i)
	if cc.c.Contains(l) {
		cc.c.MarkDirty(l)
		cc.insertDirty(lba, n, i+1, sp, done)
		return
	}
	cc.makeRoom(1, sp, func() {
		if cc.c.Contains(l) {
			cc.c.MarkDirty(l)
		} else {
			cc.c.Insert(l, true)
		}
		cc.insertDirty(lba, n, i+1, sp, done)
	})
}
