package array

import (
	"testing"

	"raidsim/internal/layout"
)

func TestDataRunsBaseContiguous(t *testing.T) {
	lay := layout.NewBase(4, 100)
	runs := dataRunsSpan(lay, 95, 10) // crosses from disk 0 into disk 1
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].disk != 0 || runs[0].start != 95 || runs[0].blocks != 5 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
	if runs[1].disk != 1 || runs[1].start != 0 || runs[1].blocks != 5 {
		t.Fatalf("run 1 = %+v", runs[1])
	}
	if len(runs[0].lbas) != 5 || runs[0].lbas[0] != 95 {
		t.Fatalf("lbas: %v", runs[0].lbas)
	}
}

func TestDataRunsCoverEveryBlock(t *testing.T) {
	lays := []layout.DataLayout{
		layout.NewBase(3, 60),
		layout.NewRAID5(3, 60, 1),
		layout.NewRAID5(3, 60, 4),
		layout.NewRAID4(3, 60, 2),
		layout.NewParityStriping(3, 60, layout.MiddlePlacement, 0),
	}
	for _, lay := range lays {
		for _, span := range []struct{ lba, n int64 }{{0, 17}, {30, 8}, {59, 1}} {
			runs := dataRunsSpan(lay, span.lba, int(span.n))
			seen := map[int64]bool{}
			total := 0
			for _, r := range runs {
				total += r.blocks
				if len(r.lbas) != r.blocks {
					t.Fatalf("%T: run lbas/blocks mismatch", lay)
				}
				for i, l := range r.lbas {
					if seen[l] {
						t.Fatalf("%T: lba %d in two runs", lay, l)
					}
					seen[l] = true
					loc := lay.Map(l)
					if loc.Disk != r.disk || loc.Block != r.start+int64(i) {
						t.Fatalf("%T: run misplaces lba %d", lay, l)
					}
				}
			}
			if total != int(span.n) {
				t.Fatalf("%T: runs cover %d blocks, want %d", lay, total, span.n)
			}
		}
	}
}

func TestPlanUpdateFullStripe(t *testing.T) {
	lay := layout.NewRAID5(4, 100, 1) // stripe = 4 consecutive blocks
	plan := planUpdate(lay, spanLBAs(0, 4), nil)
	if len(plan.parityRuns) != 1 {
		t.Fatalf("parity runs: %d", len(plan.parityRuns))
	}
	if !plan.parityRuns[0].full {
		t.Fatal("full stripe not detected")
	}
	for i, rmw := range plan.dataRMW {
		if rmw {
			t.Fatalf("data run %d marked RMW in a full-stripe write", i)
		}
	}
	if len(plan.deps[0]) != 0 {
		t.Fatal("full-stripe parity should have no dependencies")
	}
}

func TestPlanUpdatePartialStripe(t *testing.T) {
	lay := layout.NewRAID5(4, 100, 1)
	plan := planUpdate(lay, spanLBAs(0, 1), nil)
	if len(plan.dataRuns) != 1 || len(plan.parityRuns) != 1 {
		t.Fatalf("runs: %d data %d parity", len(plan.dataRuns), len(plan.parityRuns))
	}
	if !plan.dataRMW[0] {
		t.Fatal("partial write without old data must RMW")
	}
	if plan.parityRuns[0].full {
		t.Fatal("partial stripe marked full")
	}
	if len(plan.deps[0]) != 1 || plan.deps[0][0] != 0 {
		t.Fatalf("deps: %v", plan.deps)
	}
}

func TestPlanUpdateWithOldDataCached(t *testing.T) {
	lay := layout.NewRAID5(4, 100, 1)
	plan := planUpdate(lay, spanLBAs(0, 1), func(int64) bool { return true })
	if plan.dataRMW[0] {
		t.Fatal("old data in cache: data write should be plain")
	}
	if plan.parityRuns[0].full {
		t.Fatal("still a partial stripe")
	}
	if len(plan.deps[0]) != 0 {
		t.Fatal("parity needs no disk reads when old data is cached")
	}
}

func TestPlanUpdateMixedCoverage(t *testing.T) {
	// 5 blocks at SU=1 over N=4: stripe 0 fully covered (blocks 0-3),
	// stripe 1 partially (block 4).
	lay := layout.NewRAID5(4, 100, 1)
	plan := planUpdate(lay, spanLBAs(0, 5), nil)
	full, partial := 0, 0
	for _, pr := range plan.parityRuns {
		if pr.full {
			full += pr.blocks
		} else {
			partial += pr.blocks
		}
	}
	if full != 1 || partial != 1 {
		t.Fatalf("coverage: %d full %d partial parity blocks", full, partial)
	}
	// Only the stripe-1 data needs RMW.
	rmwBlocks := 0
	for i, r := range plan.dataRuns {
		if plan.dataRMW[i] {
			rmwBlocks += r.blocks
		}
	}
	if rmwBlocks != 1 {
		t.Fatalf("%d blocks RMW, want 1", rmwBlocks)
	}
}

func TestPlanUpdateParityDedup(t *testing.T) {
	// With SU=2 and a 2-block-aligned write, both blocks share... each
	// block has its own parity block (same stripe, different offsets) —
	// they should merge into one contiguous parity run.
	lay := layout.NewRAID5(4, 100, 2)
	plan := planUpdate(lay, spanLBAs(0, 2), nil)
	if len(plan.parityRuns) != 1 || plan.parityRuns[0].blocks != 2 {
		t.Fatalf("parity runs: %+v", plan.parityRuns)
	}
}

func TestPlanUpdateParityStriping(t *testing.T) {
	lay := layout.NewParityStriping(4, 100, layout.MiddlePlacement, 0)
	plan := planUpdate(lay, spanLBAs(7, 3), nil)
	// Contiguous data on one disk; parity for 3 consecutive area offsets
	// is contiguous in one parity area.
	if len(plan.dataRuns) != 1 {
		t.Fatalf("data runs: %d", len(plan.dataRuns))
	}
	if len(plan.parityRuns) != 1 || plan.parityRuns[0].blocks != 3 {
		t.Fatalf("parity runs: %+v", plan.parityRuns)
	}
	if plan.parityRuns[0].disk == plan.dataRuns[0].disk {
		t.Fatal("parity on the data disk")
	}
}

func TestLatch(t *testing.T) {
	fired := 0
	l := newLatch(3, func() { fired++ })
	l.done()
	l.done()
	if fired != 0 {
		t.Fatal("latch fired early")
	}
	l.done()
	if fired != 1 {
		t.Fatal("latch did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	l.done()
}

func TestLatchZeroFiresImmediately(t *testing.T) {
	fired := false
	newLatch(0, func() { fired = true })
	if !fired {
		t.Fatal("zero latch did not fire")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, s := range []string{"base", "mirror", "raid5", "raid4", "pstripe"} {
		o, err := ParseOrg(s)
		if err != nil {
			t.Fatalf("ParseOrg(%q): %v", s, err)
		}
		if o.String() != s {
			t.Fatalf("round trip %q -> %q", s, o.String())
		}
	}
	if _, err := ParseOrg("nope"); err == nil {
		t.Fatal("bad org parsed")
	}
	for _, s := range []string{"si", "rf", "rfpr", "df", "dfpr"} {
		if _, err := ParseSyncPolicy(s); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", s, err)
		}
	}
	if _, err := ParseSyncPolicy("xx"); err == nil {
		t.Fatal("bad policy parsed")
	}
}
