package array

import (
	"strings"
	"testing"

	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func testConfig(org Org, cached bool) Config {
	return Config{
		Org:    org,
		N:      4,
		Spec:   geom.Default(),
		Sync:   DF,
		Cached: cached,
		// Small cache so eviction paths get exercised in tests that want
		// them; tests that don't will override.
		CacheBlocks: 1024,
		Seed:        7,
	}
}

func build(t *testing.T, cfg Config) (*sim.Engine, Controller) {
	t.Helper()
	eng := sim.New()
	ctrl, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ctrl
}

// drain advances simulated time until all in-flight requests finish.
// Cached controllers' destage tickers re-arm forever, so it must step in
// bounded increments rather than running the engine dry.
func drain(t *testing.T, eng *sim.Engine, ctrl Controller) {
	t.Helper()
	for i := 0; i < 100000 && !ctrl.Drained(); i++ {
		eng.RunFor(10 * sim.Millisecond)
	}
	if !ctrl.Drained() {
		t.Fatal("controller did not drain")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	eng := sim.New()
	if _, err := New(eng, Config{Org: OrgBase, N: 1, Spec: geom.Default()}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := New(eng, Config{Org: OrgRAID4, N: 4, Spec: geom.Default()}); err == nil {
		t.Fatal("non-cached RAID4 accepted")
	}
	bad := geom.Default()
	bad.RPM = 0
	if _, err := New(eng, Config{Org: OrgBase, N: 4, Spec: bad}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestBaseReadWrite(t *testing.T) {
	eng, ctrl := build(t, testConfig(OrgBase, false))
	ctrl.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 1})
	ctrl.Submit(Request{Op: trace.Write, LBA: 100, Blocks: 2})
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Requests != 2 || res.Resp.N() != 2 {
		t.Fatalf("requests %d, samples %d", res.Requests, res.Resp.N())
	}
	if res.ReadResp.N() != 1 || res.WriteResp.N() != 1 {
		t.Fatal("op classification wrong")
	}
	// Sanity: response within physical bounds (>= transfer, <= 100ms idle).
	if m := res.Resp.Mean(); m < 0.4 || m > 100 {
		t.Fatalf("mean response %f ms", m)
	}
}

func TestMirrorWritesBothCopies(t *testing.T) {
	cfg := testConfig(OrgMirror, false)
	eng, ctrl := build(t, cfg)
	for i := 0; i < 10; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 7), Blocks: 1})
	}
	drain(t, eng, ctrl)
	m := ctrl.(*schemeCtrl)
	// All writes hit logical disk 0 => physical disks 0 and 1.
	if m.disks[0].S.Writes != 10 || m.disks[1].S.Writes != 10 {
		t.Fatalf("copies saw %d/%d writes, want 10/10",
			m.disks[0].S.Writes, m.disks[1].S.Writes)
	}
}

func TestMirrorReadsSplitAcrossCopies(t *testing.T) {
	cfg := testConfig(OrgMirror, false)
	eng, ctrl := build(t, cfg)
	// Many scattered reads on logical disk 0: the shortest-seek routing
	// should use both arms.
	bpd := cfg.Spec.BlocksPerDisk()
	for i := 0; i < 60; i++ {
		ctrl.Submit(Request{Op: trace.Read, LBA: (int64(i) * 3797) % bpd, Blocks: 1})
	}
	drain(t, eng, ctrl)
	m := ctrl.(*schemeCtrl)
	r0, r1 := m.disks[0].S.Reads, m.disks[1].S.Reads
	if r0+r1 != 60 {
		t.Fatalf("reads %d+%d, want 60", r0, r1)
	}
	if r0 == 0 || r1 == 0 {
		t.Fatalf("read load not split: %d/%d", r0, r1)
	}
}

func TestRAID10WritesBothPairMembers(t *testing.T) {
	cfg := testConfig(OrgRAID10, false)
	cfg.StripingUnit = 2
	eng, ctrl := build(t, cfg)
	// N=4, SU=2: blocks 0..7 cover every pair once.
	for i := 0; i < 8; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i), Blocks: 1})
	}
	drain(t, eng, ctrl)
	m := ctrl.(*schemeCtrl)
	if len(m.disks) != 8 {
		t.Fatalf("RAID10 with N=4 has %d drives, want 8", len(m.disks))
	}
	var total int64
	for d := 0; d < len(m.disks); d += 2 {
		w0, w1 := m.disks[d].S.Writes, m.disks[d+1].S.Writes
		if w0 != w1 {
			t.Fatalf("pair %d saw %d/%d writes, want equal", d/2, w0, w1)
		}
		if w0 == 0 {
			t.Fatalf("pair %d idle; striping not spreading writes", d/2)
		}
		total += w0 + w1
	}
	if total != 16 {
		t.Fatalf("total writes %d, want 16 (8 blocks x 2 copies)", total)
	}
}

func TestRAID10ReadsUseOneCopy(t *testing.T) {
	cfg := testConfig(OrgRAID10, false)
	eng, ctrl := build(t, cfg)
	bpd := cfg.Spec.BlocksPerDisk()
	for i := 0; i < 40; i++ {
		ctrl.Submit(Request{Op: trace.Read, LBA: (int64(i) * 2531) % bpd, Blocks: 1})
	}
	drain(t, eng, ctrl)
	m := ctrl.(*schemeCtrl)
	var reads int64
	for _, d := range m.disks {
		reads += d.S.Reads
	}
	if reads != 40 {
		t.Fatalf("reads hit %d arms, want exactly 40 (one copy each)", reads)
	}
}

func TestParseOrgAliases(t *testing.T) {
	cases := map[string]Org{
		"base": OrgBase, "JBOD": OrgBase,
		"Mirror": OrgMirror, "raid1": OrgMirror,
		"raid10": OrgRAID10, "RAID1+0": OrgRAID10, "raid1/0": OrgRAID10,
		"RAID5": OrgRAID5, "raid4": OrgRAID4,
		"pstripe": OrgParityStriping, "parity-striping": OrgParityStriping,
		" plog ": OrgParityLog, "paritylog": OrgParityLog,
	}
	for in, want := range cases {
		got, err := ParseOrg(in)
		if err != nil || got != want {
			t.Errorf("ParseOrg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseOrg("raid6"); err == nil {
		t.Fatal("unknown org accepted")
	} else if !strings.Contains(err.Error(), "raid10") {
		t.Fatalf("error %q does not list valid names", err)
	}
}

func TestParseSyncPolicyAliases(t *testing.T) {
	cases := map[string]SyncPolicy{
		"si": SI, "RF": RF,
		"rfpr": RFPR, "RF/PR": RFPR, "rf-pr": RFPR,
		"df": DF, "DF/PR": DFPR, "dfpr": DFPR,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "DF/PR") {
		t.Fatalf("error %q does not list valid names", err)
	}
}

func TestParityWriteTouchesTwoDisks(t *testing.T) {
	cfg := testConfig(OrgRAID5, false)
	eng, ctrl := build(t, cfg)
	ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 1})
	drain(t, eng, ctrl)
	p := ctrl.(*schemeCtrl)
	var rmws int64
	for _, d := range p.disks {
		rmws += d.S.RMWs
	}
	if rmws != 2 {
		t.Fatalf("single-block RAID5 write did %d RMWs, want 2 (data + parity)", rmws)
	}
	if p.parityAccesses != 1 {
		t.Fatalf("parity accesses %d", p.parityAccesses)
	}
}

func TestFullStripeWriteSkipsRMW(t *testing.T) {
	cfg := testConfig(OrgRAID5, false)
	cfg.StripingUnit = 1
	eng, ctrl := build(t, cfg)
	// N=4: logical blocks 0..3 are one full stripe.
	ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 4})
	drain(t, eng, ctrl)
	p := ctrl.(*schemeCtrl)
	var rmws, writes int64
	for _, d := range p.disks {
		rmws += d.S.RMWs
		writes += d.S.Writes
	}
	if rmws != 0 {
		t.Fatalf("full-stripe write did %d RMWs", rmws)
	}
	if writes != 5 { // 4 data + 1 parity, all plain
		t.Fatalf("plain writes %d, want 5", writes)
	}
}

// TestSyncPoliciesHeldRotations: SI must burn extra rotations waiting for
// old data; RF never does. DF sits between.
func TestSyncPoliciesHeldRotations(t *testing.T) {
	held := map[SyncPolicy]int64{}
	for _, pol := range []SyncPolicy{SI, RF, DF} {
		cfg := testConfig(OrgRAID5, false)
		cfg.Sync = pol
		eng, ctrl := build(t, cfg)
		p := ctrl.(*schemeCtrl)
		lay := p.s.(*parityScheme).lay
		// Put load on the data disk so its old-data read is slow: several
		// reads queued ahead of the write's RMW.
		dataLoc := lay.Map(0)
		for i := 0; i < 6; i++ {
			lba := int64(0)
			// Find lbas mapping to the same data disk for queue pressure.
			for l := int64(0); l < 500; l++ {
				if lay.Map(l).Disk == dataLoc.Disk {
					lba = l
					if i == int(l%7) {
						break
					}
				}
			}
			ctrl.Submit(Request{Op: trace.Read, LBA: lba, Blocks: 1})
		}
		ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 1})
		drain(t, eng, ctrl)
		var h int64
		for _, d := range p.disks {
			h += d.S.HeldRotations
		}
		held[pol] = h
	}
	if held[SI] == 0 {
		t.Fatalf("SI with a busy data disk should hold rotations; held=%v", held)
	}
	if held[RF] != 0 {
		t.Fatalf("RF issued parity before reads completed; held=%v", held)
	}
	if held[SI] < held[DF] {
		t.Fatalf("SI should hold at least as many rotations as DF: %v", held)
	}
}

func TestCachedReadHitIsChannelOnly(t *testing.T) {
	cfg := testConfig(OrgBase, true)
	eng, ctrl := build(t, cfg)
	ctrl.Submit(Request{Op: trace.Write, LBA: 5, Blocks: 1}) // populate
	drain(t, eng, ctrl)
	ctrl.Submit(Request{Op: trace.Read, LBA: 5, Blocks: 1})
	drain(t, eng, ctrl)
	res := ctrl.Results()
	// One 4KB channel transfer = 0.41 ms; allow a little slack.
	if ms := res.ReadResp.Mean(); ms > 1 {
		t.Fatalf("read hit took %.3f ms; should be channel-only", ms)
	}
	if res.ReadHits != 1 || res.ReadMisses != 0 {
		t.Fatalf("hits %d misses %d", res.ReadHits, res.ReadMisses)
	}
}

func TestCachedMultiblockHitCounting(t *testing.T) {
	cfg := testConfig(OrgBase, true)
	eng, ctrl := build(t, cfg)
	ctrl.Submit(Request{Op: trace.Write, LBA: 10, Blocks: 2}) // blocks 10,11 cached
	drain(t, eng, ctrl)
	// 3-block read covering a miss (block 12): the request counts as a
	// miss even though two blocks hit.
	ctrl.Submit(Request{Op: trace.Read, LBA: 10, Blocks: 3})
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.ReadHits != 0 || res.ReadMisses != 1 {
		t.Fatalf("multiblock hit counting wrong: %d/%d", res.ReadHits, res.ReadMisses)
	}
}

func TestCachedWriteIsFast(t *testing.T) {
	cfg := testConfig(OrgRAID5, true)
	eng, ctrl := build(t, cfg)
	ctrl.Submit(Request{Op: trace.Write, LBA: 500, Blocks: 1})
	drain(t, eng, ctrl)
	if ms := ctrl.Results().WriteResp.Mean(); ms > 1 {
		t.Fatalf("cached write took %.3f ms", ms)
	}
}

func TestDestageCleansCache(t *testing.T) {
	cfg := testConfig(OrgRAID5, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	for i := 0; i < 20; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 11), Blocks: 1})
	}
	eng.RunFor(10 * sim.Millisecond)
	if cp.c.DirtyCount() == 0 {
		t.Fatal("no dirty blocks after writes")
	}
	eng.RunFor(5 * sim.Second)
	if got := cp.c.DirtyCount(); got != 0 {
		t.Fatalf("%d dirty blocks after destage window", got)
	}
	if cp.c.S.Destages == 0 {
		t.Fatal("no destages recorded")
	}
}

func TestPureLRUKeepsDirtyUntilEviction(t *testing.T) {
	cfg := testConfig(OrgBase, true)
	cfg.PureLRUWriteback = true
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	for i := 0; i < 20; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i), Blocks: 1})
	}
	eng.RunFor(30 * sim.Second)
	if got := cp.c.DirtyCount(); got != 20 {
		t.Fatalf("pure LRU destaged early: %d dirty, want 20", got)
	}
}

func TestEvictionWritesBackDirtyVictim(t *testing.T) {
	cfg := testConfig(OrgBase, true)
	cfg.CacheBlocks = 8
	cfg.PureLRUWriteback = true // keep victims dirty
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	bpd := cfg.Spec.BlocksPerDisk()
	for i := 0; i < 8; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i), Blocks: 1})
	}
	drain(t, eng, ctrl)
	// Now read 8 uncached blocks: every insertion must evict a dirty
	// victim and write it to disk first.
	for i := 0; i < 8; i++ {
		ctrl.Submit(Request{Op: trace.Read, LBA: bpd + int64(i*100), Blocks: 1})
	}
	drain(t, eng, ctrl)
	var writes int64
	for _, d := range cp.disks {
		writes += d.S.Writes
	}
	if writes < 8 {
		t.Fatalf("only %d victim write-backs", writes)
	}
	if cp.c.S.DirtyEvictions != 8 {
		t.Fatalf("dirty evictions %d, want 8", cp.c.S.DirtyEvictions)
	}
}

func TestRAID4ParityGoesToParityDisk(t *testing.T) {
	cfg := testConfig(OrgRAID4, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	r4 := ctrl.(*cachedCtrl)
	for i := 0; i < 30; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 13), Blocks: 1})
	}
	eng.RunFor(20 * sim.Second)
	drain(t, eng, ctrl)
	pd := r4.s.(*raid4Scheme).lay.(*layout.RAID4).ParityDisk()
	if r4.disks[pd].S.Accesses == 0 {
		t.Fatal("parity disk idle after destage")
	}
	for d, dk := range r4.disks {
		if d == pd {
			continue
		}
		if dk.S.RMWs > 0 && r4.c.S.OldCaptured > 0 {
			// Data-disk RMWs happen only when old data is missing; with
			// write misses that's legitimate. Just ensure no parity
			// (dedicated-disk) traffic leaked onto data disks: parity
			// accesses counter must equal parity-disk accesses.
			break
		}
	}
	if got := r4.c.S.ParityQueued; got == 0 {
		t.Fatal("no parity updates spooled")
	}
	if r4.c.ParityPendingCount() != 0 {
		t.Fatalf("%d parity updates still pending after drain window", r4.c.ParityPendingCount())
	}
}

func TestRAID4TinyCacheStallsButProgresses(t *testing.T) {
	cfg := testConfig(OrgRAID4, true)
	cfg.CacheBlocks = 16
	cfg.DestagePeriod = 50 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	r4 := ctrl.(*cachedCtrl)
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(i)*2*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 37), Blocks: 1})
		})
	}
	drain(t, eng, ctrl)
	eng.RunFor(30 * sim.Second) // let the spool fully drain
	if r4.c.ParityPendingCount() != 0 || len(r4.s.(*raid4Scheme).stalled) != 0 {
		t.Fatalf("spool wedged: pending=%d stalled=%d",
			r4.c.ParityPendingCount(), len(r4.s.(*raid4Scheme).stalled))
	}
	res := ctrl.Results()
	if res.Requests != 200 || res.Resp.N() != 200 {
		t.Fatalf("requests %d responses %d", res.Requests, res.Resp.N())
	}
}

func TestResultsHitRatios(t *testing.T) {
	r := &Results{ReadHits: 3, ReadMisses: 1, WriteHits: 1, WriteMisses: 3}
	if r.ReadHitRatio() != 0.75 || r.WriteHitRatio() != 0.25 {
		t.Fatal("hit ratio math wrong")
	}
	empty := &Results{}
	if empty.ReadHitRatio() != 0 || empty.WriteHitRatio() != 0 {
		t.Fatal("empty ratios should be 0")
	}
}

func TestSubmitValidatesRange(t *testing.T) {
	_, ctrl := build(t, testConfig(OrgBase, false))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range request accepted")
		}
	}()
	ctrl.Submit(Request{Op: trace.Read, LBA: ctrl.DataBlocks(), Blocks: 1})
}

// TestDestageFullStripeSkipsRMW: when a whole stripe is dirty in the
// cache, its destage writes data and parity directly — no old-data or
// old-parity reads even though the blocks were write misses.
func TestDestageFullStripeSkipsRMW(t *testing.T) {
	cfg := testConfig(OrgRAID5, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	// N=4, SU=1: logical blocks 0..3 are one full stripe.
	ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 4})
	eng.RunFor(3 * sim.Second)
	drain(t, eng, ctrl)
	var rmws, writes int64
	for _, d := range cp.disks {
		rmws += d.S.RMWs
		writes += d.S.Writes
	}
	if rmws != 0 {
		t.Fatalf("full-stripe destage did %d RMWs", rmws)
	}
	if writes != 5 { // 4 data + 1 parity
		t.Fatalf("full-stripe destage issued %d plain writes, want 5", writes)
	}
}

// TestDestageUsesShadowToSkipDataRMW: a read-then-write leaves the old
// image in the cache, so the destage's data write is plain and only the
// parity disk pays the extra rotation.
func TestDestageUsesShadowToSkipDataRMW(t *testing.T) {
	cfg := testConfig(OrgRAID5, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	ctrl.Submit(Request{Op: trace.Read, LBA: 7, Blocks: 1}) // fetch: old image known
	drain(t, eng, ctrl)
	ctrl.Submit(Request{Op: trace.Write, LBA: 7, Blocks: 1})
	eng.RunFor(3 * sim.Second)
	drain(t, eng, ctrl)
	dataDisk := cp.s.(*parityScheme).lay.Map(7).Disk
	parityDisk := cp.s.(*parityScheme).lay.Parity(7).Disk
	if got := cp.disks[dataDisk].S.RMWs; got != 0 {
		t.Fatalf("data disk did %d RMWs despite the cached old image", got)
	}
	if got := cp.disks[parityDisk].S.RMWs; got != 1 {
		t.Fatalf("parity disk did %d RMWs, want 1", got)
	}
	if cp.c.S.OldCaptured != 1 {
		t.Fatalf("old image not captured: %d", cp.c.S.OldCaptured)
	}
}

// TestWriteMissDestageNeedsDataRMW: without the old image the destage
// must read old data from the data disk.
func TestWriteMissDestageNeedsDataRMW(t *testing.T) {
	cfg := testConfig(OrgRAID5, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	cp := ctrl.(*cachedCtrl)
	ctrl.Submit(Request{Op: trace.Write, LBA: 11, Blocks: 1}) // miss: no old image
	eng.RunFor(3 * sim.Second)
	drain(t, eng, ctrl)
	dataDisk := cp.s.(*parityScheme).lay.Map(11).Disk
	if got := cp.disks[dataDisk].S.RMWs; got != 1 {
		t.Fatalf("data disk did %d RMWs, want 1 (old image unknown)", got)
	}
}
