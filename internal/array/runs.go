package array

import "raidsim/internal/layout"

// run is a physically contiguous span on one disk, with the logical
// blocks it carries in order.
type run struct {
	disk   int
	start  int64 // physical block on the disk
	blocks int
	lbas   []int64
}

// dataRunsSpan maps the logical span [lba, lba+n) and merges it into
// per-disk physically contiguous runs.
func dataRunsSpan(lay layout.DataLayout, lba int64, n int) []run {
	lbas := make([]int64, n)
	for i := range lbas {
		lbas[i] = lba + int64(i)
	}
	return dataRuns(lay, lbas)
}

// dataRuns maps a list of logical blocks and merges them into per-disk
// physically contiguous runs, preserving order of first appearance. The
// input need not be contiguous (destage batches aren't).
func dataRuns(lay layout.DataLayout, lbas []int64) []run {
	var out []run
	for _, l := range lbas {
		loc := lay.Map(l)
		merged := false
		for j := range out {
			r := &out[j]
			if r.disk == loc.Disk && loc.Block == r.start+int64(r.blocks) {
				r.blocks++
				r.lbas = append(r.lbas, l)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, run{disk: loc.Disk, start: loc.Block, blocks: 1, lbas: []int64{l}})
		}
	}
	return out
}

// altRuns maps the same logical blocks through the mirror's secondary
// copies.
func altRuns(lay layout.MirrorLayout, lbas []int64) []run {
	var out []run
	for _, l := range lbas {
		loc := lay.Alt(l)
		merged := false
		for j := range out {
			r := &out[j]
			if r.disk == loc.Disk && loc.Block == r.start+int64(r.blocks) {
				r.blocks++
				r.lbas = append(r.lbas, l)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, run{disk: loc.Disk, start: loc.Block, blocks: 1, lbas: []int64{l}})
		}
	}
	return out
}

// parityRun is a contiguous span of parity blocks on one disk, with
// full-stripe/partial classification: full means every stripe this run
// protects is entirely overwritten by the batch, so the new parity is
// computable without reading old data or old parity.
type parityRun struct {
	disk   int
	start  int64
	blocks int
	full   bool
}

// updatePlan is everything needed to apply a batch of block writes to a
// parity-protected layout.
type updatePlan struct {
	dataRuns   []run
	dataRMW    []bool // per data run: must read old data first
	parityRuns []parityRun
	// deps[i] lists indexes of RMW data runs whose old-data reads feed
	// parity run i.
	deps [][]int
}

// planUpdate builds an updatePlan for writing the given logical blocks.
// hasOld reports whether the pre-write image of a block is already in the
// controller (cache shadow); nil means never.
//
// A data run needs an RMW pass if any of its blocks belongs to a
// not-fully-covered stripe and lacks an old image. A parity run is "full"
// only if every parity block in it protects a fully covered stripe.
// Dependencies connect each partial parity run to the RMW data runs whose
// stripes it protects.
func planUpdate(lay layout.ParityLayout, lbas []int64, hasOld func(int64) bool) updatePlan {
	inBatch := make(map[int64]bool, len(lbas))
	for _, l := range lbas {
		inBatch[l] = true
	}
	covered := func(l int64) bool {
		members := lay.StripeMembers(l)
		if len(members) < lay.StripeWidth() {
			return false
		}
		for _, m := range members {
			if !inBatch[m] {
				return false
			}
		}
		return true
	}

	plan := updatePlan{dataRuns: dataRuns(lay, lbas)}
	// Which parity locations does each data run touch, and is the block's
	// stripe covered?
	type pinfo struct {
		loc     layout.Loc
		full    bool
		feeders map[int]bool // indexes of RMW data runs
	}
	var parities []*pinfo
	pindex := make(map[layout.Loc]*pinfo)

	plan.dataRMW = make([]bool, len(plan.dataRuns))
	for ri, r := range plan.dataRuns {
		for _, l := range r.lbas {
			cov := covered(l)
			if !cov && (hasOld == nil || !hasOld(l)) {
				plan.dataRMW[ri] = true
			}
			p := lay.Parity(l)
			pi := pindex[p]
			if pi == nil {
				pi = &pinfo{loc: p, full: true, feeders: make(map[int]bool)}
				pindex[p] = pi
				parities = append(parities, pi)
			}
			if !cov {
				pi.full = false
				pi.feeders[ri] = true
			}
		}
	}

	// Merge parity blocks into contiguous same-class runs and union their
	// feeder sets, keeping only feeders that are actually RMW runs.
	for _, pi := range parities {
		merged := false
		for i := range plan.parityRuns {
			pr := &plan.parityRuns[i]
			if pr.disk == pi.loc.Disk && pi.loc.Block == pr.start+int64(pr.blocks) && pr.full == pi.full {
				pr.blocks++
				for f := range pi.feeders {
					if plan.dataRMW[f] {
						plan.deps[i] = appendUnique(plan.deps[i], f)
					}
				}
				merged = true
				break
			}
		}
		if !merged {
			plan.parityRuns = append(plan.parityRuns, parityRun{
				disk: pi.loc.Disk, start: pi.loc.Block, blocks: 1, full: pi.full,
			})
			var d []int
			for f := range pi.feeders {
				if plan.dataRMW[f] {
					d = appendUnique(d, f)
				}
			}
			plan.deps = append(plan.deps, d)
		}
	}
	return plan
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// totalRuns returns the number of disk accesses the plan will issue.
func (p *updatePlan) totalRuns() int { return len(p.dataRuns) + len(p.parityRuns) }
