package array

import (
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
)

// cachedRAID4 is the RAID4-with-parity-caching organization of section
// 4.4: data is striped over N disks with a dedicated parity disk, and
// parity updates are buffered in the same NV cache as data, sorted by
// cylinder and spooled to the parity disk with a SCAN sweep. Foreground
// reads therefore never queue behind parity read-modify-writes, at the
// cost of one fewer data spindle and cache slots spent on parity.
type cachedRAID4 struct {
	*cachedCtrl
	play *layout.RAID4

	spooling bool
	scanPos  int64 // C-SCAN position on the parity disk
	stalled  []func()
}

func newCachedRAID4(c *common, lay *layout.RAID4) (*cachedRAID4, error) {
	ccfg := cache.Config{Blocks: c.cfg.CacheBlocks, KeepOldData: true}
	nvc, err := cache.New(ccfg)
	if err != nil {
		return nil, err
	}
	r4 := &cachedRAID4{
		cachedCtrl: &cachedCtrl{
			common: c,
			lay:    lay,
			c:      nvc,
			ccfg:   ccfg,
		},
		play: lay,
	}
	r4.writeBackMarked = r4.doWriteBack
	r4.fetchRuns = func(lbas []int64) []run { return dataRuns(r4.lay, lbas) }
	r4.initDestage()
	return r4, nil
}

// Results implements Controller.
func (r4 *cachedRAID4) Results() *Results { return r4.cachedResults(OrgRAID4) }

// doWriteBack destages data blocks to the data disks; the matching parity
// updates are enqueued into the cache-resident parity spool as soon as
// their old-data inputs are known, instead of hitting the parity disk
// synchronously. When the spool is full the destage waits for the spooler
// to free a slot (section 4.4's stall).
func (r4 *cachedRAID4) doWriteBack(lbas []int64, pri disk.Priority, spread sim.Time, onDone func()) {
	ep := r4.epoch
	if r4.degradedNow() {
		// Degraded mode bypasses the parity spool: with the parity disk
		// dead there is no parity to keep, and with a data disk dead each
		// block needs the per-block case analysis.
		r4.buf.Acquire(len(lbas), func() {
			r4.degradedUpdate(r4.play, lbas, pri, func() {
				r4.buf.Release(len(lbas))
				if r4.epoch == ep {
					for _, l := range lbas {
						r4.c.CompleteDestage(l)
					}
				}
				onDone()
			})
		})
		return
	}
	plan := planUpdate(r4.play, lbas, func(l int64) bool {
		e := r4.c.Lookup(l)
		return e != nil && e.HasOld
	})
	nbuf := len(plan.dataRuns)
	var stagger sim.Time
	if len(plan.dataRuns) > 1 && spread > 0 {
		stagger = spread / sim.Time(len(plan.dataRuns))
	}
	r4.buf.Acquire(nbuf, func() {
		r4.executeUpdate(plan, updateOpts{
			policy:  RF, // enqueue parity once its inputs are read
			pri:     pri,
			stagger: stagger,
			parityIssuer: func(pr parityRun, ready func() bool, done func()) {
				r4.enqueueParityRun(pr, 0, done)
			},
			// Track buffers serve the data disks; spooled parity lives in
			// cache slots, so release as soon as the data writes land.
			onDataDone: func() { r4.buf.Release(nbuf) },
			onDone: func() {
				if r4.epoch == ep {
					for _, l := range lbas {
						r4.c.CompleteDestage(l)
					}
				}
				onDone()
			},
		})
	})
}

// enqueueParityRun admits the run's parity blocks into the spool one by
// one. When the cache is full it first reclaims clean blocks ("writes
// have to wait for a block to become free in the cache", section 3.4);
// failing that it waits for the spooler to free a slot, and if the spool
// itself is empty — nothing will ever free a slot — it degrades to a
// direct parity-disk access, the behavior of an uncached RAID4.
func (r4 *cachedRAID4) enqueueParityRun(pr parityRun, i int, done func()) {
	for ; i < pr.blocks; i++ {
		k := cache.ParityKey{Disk: pr.disk, Block: pr.start + int64(i)}
		for !r4.c.AddParityPending(k, pr.full) {
			if v := r4.c.CleanVictim(); v != nil && r4.c.FreeSlots() == 0 {
				r4.c.Drop(v.LBA)
				continue
			}
			if r4.c.ParityPendingCount() > 0 {
				i := i
				r4.stalled = append(r4.stalled, func() { r4.enqueueParityRun(pr, i, done) })
				return
			}
			// Spool wedged empty-but-unadmittable: bypass it.
			i := i
			r4.parityAccesses++
			req := &disk.Request{
				StartBlock: k.Block, Blocks: 1, Write: true,
				Priority: disk.PriBackground,
				OnDone:   func() { r4.enqueueParityRun(pr, i+1, done) },
			}
			if !pr.full {
				req.RMW = true
			}
			r4.disks[k.Disk].Submit(req)
			return
		}
	}
	done()
	r4.spool()
}

// spool drives the parity disk: while updates are pending, service them
// in C-SCAN order. Deltas need a read-modify-write (old parity XOR delta);
// full images are plain writes.
func (r4 *cachedRAID4) spool() {
	if r4.spooling {
		return
	}
	pending := r4.c.ParityPending()
	if len(pending) == 0 {
		return
	}
	// C-SCAN: first pending block at or after the sweep position, else
	// wrap to the lowest.
	pick := pending[0]
	for _, p := range pending {
		if p.Key.Block >= r4.scanPos {
			pick = p
			break
		}
	}
	r4.spooling = true
	r4.parityAccesses++
	ep := r4.epoch
	req := &disk.Request{
		StartBlock: pick.Key.Block,
		Blocks:     1,
		Write:      true,
		Priority:   disk.PriBackground,
		OnDone: func() {
			r4.scanPos = pick.Key.Block + 1
			// Guard against an NVRAM failure that replaced the cache (and
			// its spool) while this access was in flight.
			if r4.epoch == ep {
				r4.c.RemoveParityPending(pick.Key)
			}
			r4.spooling = false
			// A freed slot may unblock stalled destages.
			if len(r4.stalled) > 0 {
				w := r4.stalled[0]
				copy(r4.stalled, r4.stalled[1:])
				r4.stalled = r4.stalled[:len(r4.stalled)-1]
				w()
			}
			r4.spool()
		},
	}
	if !pick.Full {
		req.RMW = true
	}
	r4.disks[pick.Key.Disk].Submit(req)
}
