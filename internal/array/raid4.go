package array

import (
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// raid4Scheme is the RAID4-with-parity-caching organization of section
// 4.4: data is striped over N disks with a dedicated parity disk, and
// parity updates are buffered in the same NV cache as data, sorted by
// cylinder and spooled to the parity disk with a SCAN sweep. Foreground
// reads therefore never queue behind parity read-modify-writes, at the
// cost of one fewer data spindle and cache slots spent on parity. The
// scheme only exists behind the cache front-end (New enforces Cached),
// so cc is always set before the first write.
type raid4Scheme struct {
	parityScheme
	cc *cachedCtrl // the front-end whose cache hosts the parity spool

	spooling bool
	scanPos  int64 // C-SCAN position on the parity disk
	stalled  []func()
}

func (s *raid4Scheme) write(w writeOp) {
	if s.c.degradedNow() {
		// Degraded mode bypasses the parity spool: with the parity disk
		// dead there is no parity to keep, and with a data disk dead each
		// block needs the per-block case analysis.
		s.c.parityDegradedWrite(s.lay, w)
		return
	}
	plan := planUpdate(s.lay, w.lbas, w.hasOld)
	nbuf := len(plan.dataRuns)
	var stagger sim.Time
	if len(plan.dataRuns) > 1 && w.spread > 0 {
		stagger = w.spread / sim.Time(len(plan.dataRuns))
	}
	s.c.acquireAndXfer(nbuf, w.xfer, w.span, func() {
		s.c.executeUpdate(plan, updateOpts{
			policy:  RF, // enqueue parity once its inputs are read
			pri:     w.pri,
			stagger: stagger,
			span:    w.span,
			parityIssuer: func(pr parityRun, ready func() bool, done func()) {
				s.enqueueParityRun(pr, 0, done)
			},
			// Track buffers serve the data disks; spooled parity lives in
			// cache slots, so release as soon as the data writes land.
			onDataDone: func() { s.c.buf.Release(nbuf) },
			onDone:     w.onDone,
		})
	})
}

// enqueueParityRun admits the run's parity blocks into the spool one by
// one. When the cache is full it first reclaims clean blocks ("writes
// have to wait for a block to become free in the cache", section 3.4);
// failing that it waits for the spooler to free a slot, and if the spool
// itself is empty — nothing will ever free a slot — it degrades to a
// direct parity-disk access, the behavior of an uncached RAID4.
func (s *raid4Scheme) enqueueParityRun(pr parityRun, i int, done func()) {
	for ; i < pr.blocks; i++ {
		k := cache.ParityKey{Disk: pr.disk, Block: pr.start + int64(i)}
		for !s.cc.c.AddParityPending(k, pr.full) {
			if v := s.cc.c.CleanVictim(); v != nil && s.cc.c.FreeSlots() == 0 {
				s.cc.c.Drop(v.LBA)
				continue
			}
			if s.cc.c.ParityPendingCount() > 0 {
				i := i
				s.stalled = append(s.stalled, func() { s.enqueueParityRun(pr, i, done) })
				return
			}
			// Spool wedged empty-but-unadmittable: bypass it.
			i := i
			s.c.parityAccesses++
			req := &disk.Request{
				StartBlock: k.Block, Blocks: 1, Write: true,
				Priority: disk.PriBackground,
				OnDone:   func() { s.enqueueParityRun(pr, i+1, done) },
			}
			if !pr.full {
				req.RMW = true
			}
			s.c.disks[k.Disk].Submit(req)
			return
		}
	}
	done()
	s.spool()
}

// spool drives the parity disk: while updates are pending, service them
// in C-SCAN order. Deltas need a read-modify-write (old parity XOR delta);
// full images are plain writes.
func (s *raid4Scheme) spool() {
	if s.spooling {
		return
	}
	pending := s.cc.c.ParityPending()
	if len(pending) == 0 {
		return
	}
	// C-SCAN: first pending block at or after the sweep position, else
	// wrap to the lowest.
	pick := pending[0]
	for _, p := range pending {
		if p.Key.Block >= s.scanPos {
			pick = p
			break
		}
	}
	s.spooling = true
	s.c.parityAccesses++
	ep := s.cc.epoch
	// Each spool access is its own background trace tree; the disk layer
	// hangs the mechanism phases directly under its root.
	var root *obs.Span
	if s.c.tr != nil {
		root = s.c.tr.StartBackground("parity-spool", s.c.eng.Now())
		root.SetBlocks(1)
	}
	req := &disk.Request{
		StartBlock: pick.Key.Block,
		Blocks:     1,
		Write:      true,
		Priority:   disk.PriBackground,
		Span:       root,
		OnDone: func() {
			if root != nil {
				s.c.tr.FinishBackground(root, s.c.eng.Now())
			}
			s.scanPos = pick.Key.Block + 1
			// Guard against an NVRAM failure that replaced the cache (and
			// its spool) while this access was in flight.
			if s.cc.epoch == ep {
				s.cc.c.RemoveParityPending(pick.Key)
			}
			s.spooling = false
			// A freed slot may unblock stalled destages.
			if len(s.stalled) > 0 {
				w := s.stalled[0]
				copy(s.stalled, s.stalled[1:])
				s.stalled = s.stalled[:len(s.stalled)-1]
				w()
			}
			s.spool()
		},
	}
	if !pick.Full {
		req.RMW = true
	}
	s.c.disks[pick.Key.Disk].Submit(req)
}
