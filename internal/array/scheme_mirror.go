package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
)

// mirrorScheme is any organization where every block has a partner copy
// on the adjacent drive: the paper's Mirror (whole-disk pairs) and the
// RAID1/0 extension (striped mirror pairs). Both layouts put the primary
// copy on an even drive 2d and the secondary on 2d+1, so the partner of
// any physical disk is disk^1 and one scheme serves both — the layered
// pipeline's composability payoff.
//
// Writes update both copies (response is the max of the two); reads go
// to the copy whose arm is nearer the target cylinder, with queue length
// as tie-break (the paper's shortest-seek optimization).
type mirrorScheme struct {
	c   *common
	lay layout.MirrorLayout
	o   Org
}

func (s *mirrorScheme) org() Org          { return s.o }
func (s *mirrorScheme) dataBlocks() int64 { return s.lay.DataBlocks() }
func (s *mirrorScheme) keepOldData() bool { return false }

// fetchRuns picks, per run, the mirror copy with the shorter seek. A
// dead copy never wins: reads fail over to the survivor.
func (s *mirrorScheme) fetchRuns(lbas []int64) []run {
	prim := dataRuns(s.lay, lbas)
	for i := range prim {
		rn := &prim[i]
		if pickMirrorCopy(s.c, rn.disk, rn.start) {
			rn.disk++
		}
	}
	return prim
}

// pickMirrorCopy reports whether a read of physical block start should go
// to the secondary copy (primary+1): the survivor when one copy is dead,
// otherwise the shorter seek with queue length as tie-break.
func pickMirrorCopy(c *common, primary int, start int64) bool {
	if c.fs.nfailed > 0 {
		p0, p1 := c.fs.failed[primary], c.fs.failed[primary+1]
		if p0 && !p1 {
			c.fs.failoverReads++
			return true
		}
		if p1 {
			return false // secondary dead (or both; fallback handles that)
		}
	}
	d0, d1 := c.disks[primary], c.disks[primary+1]
	cyl := c.cfg.Spec.ToCHS(start).Cylinder
	dist0 := max(d0.Cylinder()-cyl, cyl-d0.Cylinder())
	dist1 := max(d1.Cylinder()-cyl, cyl-d1.Cylinder())
	return dist1 < dist0 || (dist1 == dist0 && d1.QueueLen() < d0.QueueLen())
}

func (s *mirrorScheme) write(w writeOp) {
	runs := append(dataRuns(s.lay, w.lbas), altRuns(s.lay, w.lbas)...)
	if s.c.degradedNow() {
		// Writes degrade to the surviving copy (or the rebuilding spare);
		// a block is lost only when both copies of its pair are gone.
		var dropped int
		runs, dropped = s.c.filterWriteRuns(runs)
		if dropped > 0 {
			for _, l := range w.lbas {
				if s.c.writeDown(s.lay.Map(l).Disk) && s.c.writeDown(s.lay.Alt(l).Disk) {
					s.c.fs.lostWriteBlocks++
				}
			}
		}
	}
	s.c.plainWrite(runs, w)
}

// Mirrored-pair degraded mapping: reads fail over to the partner copy,
// a dead slot rebuilds by copying the partner, and data is lost only
// when both copies of a pair are down.
func (s *mirrorScheme) onFail(d int) {
	if s.c.fs.failed[d^1] {
		s.c.fs.dataLossEvents++
	}
}

func (s *mirrorScheme) rebuildSources(d int) []int {
	if s.c.fs.failed[d^1] {
		return nil
	}
	return []int{d ^ 1}
}

func (s *mirrorScheme) readFallback(rn run, pri disk.Priority, op *obs.Span, onDone func()) bool {
	alt := rn.disk ^ 1
	if s.c.fs.failed[alt] {
		return false
	}
	s.c.fs.failoverReads++
	var leg *obs.Span
	if op != nil {
		leg = op.Child("failover-read", s.c.eng.Now())
		leg.SetBlocks(rn.blocks)
	}
	s.c.mediaRead(run{disk: alt, start: rn.start, blocks: rn.blocks}, pri, 0, 0, leg, onDone)
	return true
}
