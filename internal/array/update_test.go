package array

import (
	"testing"

	"raidsim/internal/disk"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// TestPriorityPoliciesUseHighClass: under RF/PR and DF/PR the parity
// access must overtake queued normal-priority work.
func TestPriorityPoliciesUseHighClass(t *testing.T) {
	for _, pol := range []SyncPolicy{RFPR, DFPR} {
		cfg := testConfig(OrgRAID5, false)
		cfg.Sync = pol
		eng, ctrl := build(t, cfg)
		p := ctrl.(*schemeCtrl)
		lay := p.s.(*parityScheme).lay

		// Fill the parity disk of block 0's stripe with queued reads, then
		// issue the write. With priority, the parity access jumps the queue.
		ploc := lay.Parity(0)
		var lbas []int64
		for l := int64(0); l < 2000 && len(lbas) < 5; l++ {
			if lay.Map(l).Disk == ploc.Disk {
				lbas = append(lbas, l)
			}
		}
		for _, l := range lbas {
			ctrl.Submit(Request{Op: trace.Read, LBA: l, Blocks: 1})
		}
		ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 1})
		drain(t, eng, ctrl)
		res := ctrl.Results()
		// The write's response must be far below "behind five reads"
		// (~5 x 20ms + RMW): with priority it overtakes.
		if w := res.WriteResp.Mean(); w > 90 {
			t.Errorf("%v: write response %.1f ms suggests the parity access queued behind normal reads", pol, w)
		}
	}
}

// TestUpdateOnDataDoneFiresBeforeParity: with a slow spool-style parity
// issuer, onDataDone must fire when data lands, strictly before onDone.
func TestUpdateOnDataDoneFiresBeforeParity(t *testing.T) {
	cfg := testConfig(OrgRAID5, false)
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.(*schemeCtrl)
	plan := planUpdate(p.s.(*parityScheme).lay, spanLBAs(0, 1), nil)
	var dataAt, parityAt, doneAt sim.Time
	p.executeUpdate(plan, updateOpts{
		policy: RF,
		pri:    disk.PriNormal,
		parityIssuer: func(pr parityRun, ready func() bool, done func()) {
			// Simulate a slow spool admission.
			eng.After(500*sim.Millisecond, func() {
				parityAt = eng.Now()
				done()
			})
		},
		onDataDone: func() { dataAt = eng.Now() },
		onDone:     func() { doneAt = eng.Now() },
	})
	eng.Run()
	if dataAt == 0 || parityAt == 0 || doneAt == 0 {
		t.Fatalf("callbacks missing: data=%d parity=%d done=%d", dataAt, parityAt, doneAt)
	}
	if !(dataAt < parityAt && parityAt <= doneAt) {
		t.Fatalf("ordering wrong: data=%d parity=%d done=%d", dataAt, parityAt, doneAt)
	}
}

// TestUpdateStaggerSpacesDataRuns: staggered data runs start at the
// configured spacing.
func TestUpdateStaggerSpacesDataRuns(t *testing.T) {
	cfg := testConfig(OrgRAID5, false)
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := c.(*schemeCtrl)
	// Four separate blocks on different disks -> four data runs.
	lay := p.s.(*parityScheme).lay.(*layout.RAID5)
	lbas := []int64{0, 1, 2, 3}
	plan := planUpdate(lay, lbas, func(int64) bool { return true })
	if len(plan.dataRuns) < 2 {
		t.Skip("layout merged the runs; stagger unobservable")
	}
	var starts []sim.Time
	for ri := range plan.dataRuns {
		_ = ri
	}
	// Wrap OnStart via disk queue-wait: instead observe disk access
	// start times through per-disk utilization begin. Simpler: record
	// submission effect via engine timestamps of run issuance using the
	// stagger arithmetic: issue i happens at stagger*i.
	const stag = 20 * sim.Millisecond
	p.executeUpdate(plan, updateOpts{
		policy:  RF,
		pri:     disk.PriNormal,
		stagger: stag,
		onDone:  func() { starts = append(starts, eng.Now()) },
	})
	eng.Run()
	// Indirect check: total makespan must be at least stagger*(runs-1).
	if eng.Now() < stag*sim.Time(len(plan.dataRuns)-1) {
		t.Fatalf("makespan %d shorter than stagger span", eng.Now())
	}
}

// TestRMWAbortRequeues: an RMW whose Ready stays false past the hold
// bound must abort, requeue behind other work, and eventually complete.
func TestRMWAbortRequeues(t *testing.T) {
	eng := sim.New()
	spec := geom.Default()
	d, err := disk.New(eng, 0, spec, geom.MustCalibrateSeek(spec), 0)
	if err != nil {
		t.Fatal(err)
	}
	ready := false
	var rmwDone, otherDone sim.Time
	d.Submit(&disk.Request{
		StartBlock: 0, Blocks: 1, Write: true, RMW: true,
		Priority: disk.PriNormal,
		Ready:    func() bool { return ready },
		OnDone:   func() { rmwDone = eng.Now() },
	})
	// Another request queued behind; the abort must let it through.
	d.Submit(&disk.Request{
		StartBlock: 180 * 100, Blocks: 1, Priority: disk.PriNormal,
		OnDone: func() { otherDone = eng.Now() },
	})
	// Readiness arrives far later than the 8-rotation hold bound.
	eng.At(2*sim.Second, func() { ready = true })
	eng.Run()
	if d.S.RMWAborts == 0 {
		t.Fatal("RMW never aborted despite unready inputs")
	}
	if otherDone == 0 || rmwDone == 0 {
		t.Fatal("requests did not complete")
	}
	if otherDone > rmwDone {
		t.Fatalf("queued read (%d) should finish before the starved RMW (%d)", otherDone, rmwDone)
	}
	if d.S.Accesses != 2 {
		t.Fatalf("access count %d, want 2 (retries compensated)", d.S.Accesses)
	}
}

// TestDiskSchedConfigPlumbing: the controller passes the configured
// discipline down to its drives.
func TestDiskSchedConfigPlumbing(t *testing.T) {
	cfg := testConfig(OrgBase, false)
	cfg.DiskSched = disk.SSTF
	eng, ctrl := build(t, cfg)
	b := ctrl.(*schemeCtrl)
	// Indirect but deterministic: SSTF must reorder a seek-heavy queue,
	// reducing total seek distance versus FIFO.
	run := func(ctrl Controller, eng *sim.Engine) int64 {
		// A scrambled (non-monotonic) pattern, so FIFO order seeks badly.
		for i := 0; i < 30; i++ {
			lba := (int64(i)*386243 + 12345) % ctrl.DataBlocks()
			ctrl.Submit(Request{Op: trace.Read, LBA: lba, Blocks: 1})
		}
		drain(t, eng, ctrl)
		var sum int64
		switch c := ctrl.(type) {
		case *schemeCtrl:
			for _, d := range c.disks {
				sum += d.S.SeekDistSum
			}
		}
		return sum
	}
	sstfSeek := run(ctrl, eng)
	_ = b

	cfg2 := testConfig(OrgBase, false)
	eng2, ctrl2 := build(t, cfg2)
	fifoSeek := run(ctrl2, eng2)
	if sstfSeek >= fifoSeek {
		t.Fatalf("SSTF seek %d not below FIFO %d — scheduling not plumbed", sstfSeek, fifoSeek)
	}
}

// TestSyncSpindlesGivesCommonPhase: with the flag set, all drives in an
// array share a rotational phase (identical latency for the same target
// from the same start state).
func TestSyncSpindlesGivesCommonPhase(t *testing.T) {
	cfg := testConfig(OrgBase, false)
	cfg.SyncSpindles = true
	eng, ctrl := build(t, cfg)
	b := ctrl.(*schemeCtrl)
	// Same physical block on each disk, issued simultaneously from idle:
	// identical phases mean identical *disk* service times (completions
	// still spread out over the shared channel).
	bpd := cfg.Spec.BlocksPerDisk()
	for d := 0; d < 4; d++ {
		ctrl.Submit(Request{Op: trace.Read, LBA: int64(d)*bpd + 42, Blocks: 1})
	}
	drain(t, eng, ctrl)
	first := b.disks[0].S.ServiceTime.Mean()
	for i := 1; i < 4; i++ {
		if got := b.disks[i].S.ServiceTime.Mean(); got != first {
			t.Fatalf("synchronized spindles served identical targets in different times: disk %d %.4f vs %.4f", i, got, first)
		}
	}

	// And without the flag, phases differ.
	cfg2 := testConfig(OrgBase, false)
	eng2, ctrl2 := build(t, cfg2)
	b2 := ctrl2.(*schemeCtrl)
	for d := 0; d < 4; d++ {
		ctrl2.Submit(Request{Op: trace.Read, LBA: int64(d)*bpd + 42, Blocks: 1})
	}
	drain(t, eng2, ctrl2)
	allSame := true
	first2 := b2.disks[0].S.ServiceTime.Mean()
	for i := 1; i < 4; i++ {
		if b2.disks[i].S.ServiceTime.Mean() != first2 {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("independent spindles landed on identical phases (suspicious)")
	}
}
