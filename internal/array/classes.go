package array

import (
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// ClassResults aggregates one client class's measurements when the array
// runs a multi-client workload (Config.Classes non-empty). Unlike the
// robustness layer's two SLO buckets, these follow the workload spec's
// client classes — "oltp", "scan", "backup" — so a report can show each
// client its own operating point.
type ClassResults struct {
	Name string
	SLO  uint8 // trace.SLOGold, SLOBatch, or SLOAuto

	Requests      int64
	Reads, Writes int64
	Resp          stats.Summary // ms, post-warmup

	// DeadlineMet/Missed count completions against the class's effective
	// SLO deadline; both zero when the robustness layer is off or the
	// class has no deadline.
	DeadlineMet, DeadlineMissed int64
	// Shed counts requests rejected at admission (batch classes only).
	Shed int64
}

// MissFrac returns the fraction of deadline-checked requests that missed.
func (r *ClassResults) MissFrac() float64 {
	n := r.DeadlineMet + r.DeadlineMissed
	if n == 0 {
		return 0
	}
	return float64(r.DeadlineMissed) / float64(n)
}

// Merge folds o into r (same class from another array or shard).
func (r *ClassResults) Merge(o *ClassResults) {
	r.Requests += o.Requests
	r.Reads += o.Reads
	r.Writes += o.Writes
	r.Resp.Merge(&o.Resp)
	r.DeadlineMet += o.DeadlineMet
	r.DeadlineMissed += o.DeadlineMissed
	r.Shed += o.Shed
}

// EffectiveSLO resolves a class-table SLO code to the robustness layer's
// class for a request of the given size: gold and batch map directly,
// auto falls back to size classification — exactly the classless
// behavior, which is what keeps single-client specs equivalent to the
// profile path.
func EffectiveSLO(code uint8, blocks int) SLOClass {
	switch code {
	case trace.SLOGold:
		return SLOGold
	case trace.SLOBatch:
		return SLOBatch
	}
	return ClassifyBlocks(blocks)
}

// classAcct is the per-client-class accumulator behind Results.Classes.
type classAcct struct {
	reads, writes int64
	resp          stats.Summary
	met, miss     int64
	shed          int64
}

// finishClass records a completion against its client class; called from
// finish only when a class table is configured. Pure observation: no
// events, no rng.
func (c *common) finishClass(r Request, ms float64, dlMissed, dlChecked bool) {
	if int(r.CClass) >= len(c.cls) {
		return
	}
	a := &c.cls[r.CClass]
	if r.Op == trace.Read {
		a.reads++
	} else {
		a.writes++
	}
	a.resp.Add(ms)
	if dlChecked {
		if dlMissed {
			a.miss++
		} else {
			a.met++
		}
	}
}

// classResults builds the per-class result table from the accumulators;
// nil when the array is classless.
func (c *common) classResults() []ClassResults {
	if len(c.cls) == 0 {
		return nil
	}
	out := make([]ClassResults, len(c.cls))
	for i, a := range c.cls {
		out[i] = ClassResults{
			Name:           c.cfg.Classes[i].Name,
			SLO:            c.cfg.Classes[i].SLO,
			Requests:       a.reads + a.writes,
			Reads:          a.reads,
			Writes:         a.writes,
			Resp:           a.resp,
			DeadlineMet:    a.met,
			DeadlineMissed: a.miss,
			Shed:           a.shed,
		}
	}
	return out
}

// MergeClasses folds per-class tables index-wise; either side may be nil.
func MergeClasses(dst, src []ClassResults) []ClassResults {
	if len(dst) == 0 {
		return append([]ClassResults(nil), src...)
	}
	for i := range src {
		if i < len(dst) {
			dst[i].Merge(&src[i])
		}
	}
	return dst
}
