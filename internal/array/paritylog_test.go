package array

import (
	"testing"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func TestParityLogWriteSkipsParityDisk(t *testing.T) {
	cfg := testConfig(OrgParityLog, false)
	eng, ctrl := build(t, cfg)
	pl := ctrl.(*parityLogCtrl)
	ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 1})
	drain(t, eng, ctrl)
	var rmws int64
	for _, d := range pl.disks {
		rmws += d.S.RMWs
	}
	// Exactly one RMW: the data disk. No parity disk access.
	if rmws != 1 {
		t.Fatalf("parity-logged write did %d RMWs, want 1 (data only)", rmws)
	}
	if pl.logBuf != 1 {
		t.Fatalf("update image not buffered: logBuf=%d", pl.logBuf)
	}
}

func TestParityLogFlushesSequentially(t *testing.T) {
	cfg := testConfig(OrgParityLog, false)
	eng, ctrl := build(t, cfg)
	pl := ctrl.(*parityLogCtrl)
	// Enough single-block writes to trigger flushes.
	for i := 0; i < 3*flushThresholdBlocks; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 5), Blocks: 1})
	}
	drain(t, eng, ctrl)
	if pl.LogFlushes < 2 {
		t.Fatalf("expected several log flushes, got %d", pl.LogFlushes)
	}
	var used int64
	for _, u := range pl.logUsed {
		used += u
	}
	if used == 0 {
		t.Fatal("no log blocks consumed")
	}
	// Flushed writes land inside the log region.
	for d, u := range pl.logUsed {
		if u > pl.logCap {
			t.Fatalf("disk %d log overflow: %d > %d", d, u, pl.logCap)
		}
	}
}

func TestParityLogWritesCheaperThanRAID5(t *testing.T) {
	writeResp := func(org Org) float64 {
		cfg := testConfig(org, false)
		eng, ctrl := build(t, cfg)
		for i := 0; i < 50; i++ {
			ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 97), Blocks: 1})
		}
		drain(t, eng, ctrl)
		return ctrl.Results().WriteResp.Mean()
	}
	r5 := writeResp(OrgRAID5)
	plog := writeResp(OrgParityLog)
	if plog >= r5 {
		t.Fatalf("parity logging writes (%.2f ms) not cheaper than RAID5 (%.2f ms)", plog, r5)
	}
}

func TestParityLogReintegration(t *testing.T) {
	cfg := testConfig(OrgParityLog, false)
	eng, ctrl := build(t, cfg)
	pl := ctrl.(*parityLogCtrl)
	// Shrink the logs so reintegration triggers quickly.
	pl.logCap = 2 * flushThresholdBlocks
	for i := 0; i < 400; i++ {
		i := i
		eng.At(int64(i)*5e6, func() {
			ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 13), Blocks: 1})
		})
	}
	drain(t, eng, ctrl)
	eng.RunFor(60e9) // let background reintegration finish
	if pl.Reintegrations == 0 {
		t.Fatal("log never reintegrated")
	}
	for d, r := range pl.reintegrating {
		if r {
			t.Fatalf("disk %d stuck reintegrating", d)
		}
	}
}

func TestParityLogRejectsCached(t *testing.T) {
	cfg := testConfig(OrgParityLog, true)
	if _, err := New(sim.New(), cfg); err == nil {
		t.Fatal("cached parity logging accepted")
	}
}
