package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// scheme is the redundancy mapping of one organization: how logical
// blocks become device reads and writes, in normal and degraded mode.
// A scheme only maps and issues device operations — the shared request
// envelope (track buffers, channel transfer, response accounting) and
// the optional NV-cache front-end live above it, the disk/bus back-end
// below. The same scheme instance therefore serves both the non-cached
// controller (schemeCtrl) and the cached one (cachedCtrl).
type scheme interface {
	// org labels results.
	org() Org
	// dataBlocks returns the organization's logical capacity.
	dataBlocks() int64
	// keepOldData reports whether the NV cache should keep pre-write
	// images (parity schemes destage cheaper with old-data shadows).
	keepOldData() bool
	// fetchRuns lays out a read of the given blocks in normal mode;
	// degraded reads recover per-run via readFallback.
	fetchRuns(lbas []int64) []run
	// write persists a batch of blocks, honoring degraded mode. The
	// writeOp says whether this is a foreground write (xfer > 0: move
	// the data over the channel first) or a cache destage (xfer == 0).
	write(w writeOp)

	// The degraded-mode mapping, called from the shared fault machinery:
	// onFail classifies a fresh failure of slot d (data-loss accounting),
	// rebuildSources lists the disks a rebuild of slot d reads from (nil
	// means reconstruction is impossible), and readFallback serves a read
	// run whose home disk is unreadable from redundancy, returning false
	// when the data is unrecoverable.
	// op is the device-op span the failed read was issued under (nil when
	// tracing is off); recovery legs hang their spans beneath it.
	onFail(d int)
	rebuildSources(d int) []int
	readFallback(rn run, pri disk.Priority, op *obs.Span, onDone func()) bool
}

// writeOp is one batch of blocks for a scheme to persist.
type writeOp struct {
	lbas []int64
	// xfer, when positive, is a foreground write: that many blocks move
	// over the array channel (after buffer acquisition) before any disk
	// is touched. Zero means a destage — the data is already in the
	// controller.
	xfer   int
	pri    disk.Priority
	spread sim.Time // stagger window for background batches; 0 = none
	// hasOld reports whether the pre-write image of a block is already
	// in the controller (cache shadow); nil means never.
	hasOld func(int64) bool
	// span is the parent trace span the scheme's device-op spans attach
	// to: the request's root for foreground writes, a background tree's
	// root for destage batches. Nil when tracing is off.
	span   *obs.Span
	onDone func()
}

// schemeCtrl is the generic non-cached controller: any scheme behind
// the shared read/write envelope.
type schemeCtrl struct {
	*common
	s scheme
}

// DataBlocks implements Controller.
func (sc *schemeCtrl) DataBlocks() int64 { return sc.s.dataBlocks() }

// Results implements Controller.
func (sc *schemeCtrl) Results() *Results { return sc.baseResults(sc.s.org()) }

// Submit implements Controller.
func (sc *schemeCtrl) Submit(r Request) {
	sc.checkRequest(r, sc.s.dataBlocks())
	if sc.maybeShed(r) {
		return
	}
	start, sp := sc.begin(r.Op != trace.Read)
	lbas := spanLBAs(r.LBA, r.Blocks)
	if r.Op == trace.Read {
		sc.readRuns(sc.s.fetchRuns(lbas), r.Blocks, sp, func() { sc.finish(r, start, sp) })
		return
	}
	sc.s.write(writeOp{
		lbas: lbas, xfer: r.Blocks, pri: disk.PriNormal, span: sp,
		onDone: func() { sc.finish(r, start, sp) },
	})
}

// readRuns performs reads for the runs, then one channel transfer of the
// full request, then onDone. Shared by every organization; readRun makes
// every path failure- and sector-error-aware.
func (c *common) readRuns(runs []run, totalBlocks int, sp *obs.Span, onDone func()) {
	admitStart := c.eng.Now()
	c.buf.Acquire(len(runs), func() {
		if now := c.eng.Now(); now > admitStart {
			sp.ChildSpan(obs.SpanAdmit, admitStart, now)
		}
		done := newLatch(len(runs), func() {
			c.chanXferSpan(totalBlocks, sp, func() {
				c.buf.Release(len(runs))
				onDone()
			})
		})
		for _, rn := range runs {
			var op *obs.Span
			if sp != nil {
				op = sp.Child("read-data", c.eng.Now())
				op.SetBlocks(rn.blocks)
			}
			c.readRunHedged(rn, disk.PriNormal, op, done.done)
		}
	})
}

// acquireAndXfer acquires n track buffers, then — for foreground writes
// (xfer > 0) — moves the request over the channel, then runs issue.
func (c *common) acquireAndXfer(n, xfer int, sp *obs.Span, issue func()) {
	admitStart := c.eng.Now()
	c.buf.Acquire(n, func() {
		if now := c.eng.Now(); now > admitStart {
			sp.ChildSpan(obs.SpanAdmit, admitStart, now)
		}
		if xfer > 0 {
			c.chanXferSpan(xfer, sp, issue)
		} else {
			issue()
		}
	})
}

// plainWrite issues plain (non-parity) write runs behind the standard
// envelope: track buffers, foreground channel transfer, and the optional
// stagger that spaces background batches out.
func (c *common) plainWrite(runs []run, w writeOp) {
	var stagger sim.Time
	if len(runs) > 1 && w.spread > 0 {
		stagger = w.spread / sim.Time(len(runs))
	}
	c.acquireAndXfer(len(runs), w.xfer, w.span, func() {
		done := newLatch(len(runs), func() {
			c.buf.Release(len(runs))
			w.onDone()
		})
		for i, rn := range runs {
			req := &disk.Request{
				StartBlock: rn.start, Blocks: rn.blocks, Write: true,
				Priority: w.pri, OnDone: done.done,
			}
			d := c.disks[rn.disk]
			if stagger > 0 && i > 0 {
				cl := c.eng.AfterCall(stagger*sim.Time(i), submitWriteFire)
				cl.A, cl.B, cl.C = d, req, w.span
				continue
			}
			if w.span != nil {
				req.Span = w.span.Child("write-data", c.eng.Now())
				req.Span.SetBlocks(rn.blocks)
			}
			d.Submit(req)
		}
	})
}

// submitWriteFire issues a staggered device write: A = disk, B =
// request, C = the parent trace span (a nil *obs.Span when tracing is
// off). The span child is created at issue time, as for an immediate
// submit.
func submitWriteFire(e *sim.Engine, cl *sim.Call) {
	d := cl.A.(*disk.Disk)
	req := cl.B.(*disk.Request)
	if sp := cl.C.(*obs.Span); sp != nil {
		name := "write-data"
		if req.RMW {
			name = "rmw-data"
		}
		req.Span = sp.Child(name, e.Now())
		req.Span.SetBlocks(req.Blocks)
	}
	d.Submit(req)
}

func spanLBAs(lba int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lba + int64(i)
	}
	return out
}
