// Package array implements the disk array controllers the paper compares:
// Base (independent disks), Mirror, RAID5, Parity Striping and RAID4, each
// in non-cached and cached variants, plus the RAID1/0 (striped mirror
// pairs) extension. A controller owns an array's disks, its channel and
// track buffers, and (when configured) its non-volatile cache with the
// periodic destage process; it turns logical I/O requests into physical
// disk accesses, including the read-modify-write parity updates and their
// data/parity synchronization policies.
//
// The controllers are a layered pipeline: a redundancy scheme (the
// organization's mapping of logical runs to device operations, normal and
// degraded — see scheme.go) sits between the shared request envelope /
// optional NV-cache front-end above and the device/bus back-end below.
package array

import (
	"fmt"
	"strings"

	"raidsim/internal/bus"
	"raidsim/internal/cache"
	"raidsim/internal/disk"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// Org selects the array organization.
type Org int

// Organizations under study (Table 3 of the paper), plus the RAID0 and
// RAID3 comparators from the related work (Chen et al.) and the RAID1/0
// striped-mirror extension.
const (
	OrgBase Org = iota
	OrgMirror
	OrgRAID5
	OrgRAID4
	OrgParityStriping
	OrgRAID0
	OrgRAID3
	OrgParityLog
	OrgRAID10
)

func (o Org) String() string {
	switch o {
	case OrgBase:
		return "base"
	case OrgMirror:
		return "mirror"
	case OrgRAID5:
		return "raid5"
	case OrgRAID4:
		return "raid4"
	case OrgParityStriping:
		return "pstripe"
	case OrgRAID0:
		return "raid0"
	case OrgRAID3:
		return "raid3"
	case OrgParityLog:
		return "plog"
	case OrgRAID10:
		return "raid10"
	}
	return fmt.Sprintf("org(%d)", int(o))
}

// OrgNames lists the canonical organization names ParseOrg accepts.
func OrgNames() []string {
	return []string{"base", "mirror", "raid10", "raid5", "raid4", "pstripe", "raid0", "raid3", "plog"}
}

// ParseOrg converts a name to an Org. Matching is case-insensitive and
// accepts common aliases (raid1, raid1+0, parity-striping, ...).
func ParseOrg(s string) (Org, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base", "jbod":
		return OrgBase, nil
	case "mirror", "mirrored", "raid1":
		return OrgMirror, nil
	case "raid10", "raid1+0", "raid1/0", "stripedmirror", "striped-mirror":
		return OrgRAID10, nil
	case "raid5":
		return OrgRAID5, nil
	case "raid4":
		return OrgRAID4, nil
	case "pstripe", "paritystriping", "parity-striping":
		return OrgParityStriping, nil
	case "raid0":
		return OrgRAID0, nil
	case "raid3":
		return OrgRAID3, nil
	case "plog", "paritylog", "parity-logging":
		return OrgParityLog, nil
	}
	return 0, fmt.Errorf("array: unknown organization %q (valid: %s)", s, strings.Join(OrgNames(), ", "))
}

// SyncPolicy selects how a parity update is synchronized with its data
// update (section 3.3 of the paper).
type SyncPolicy int

// The five policies of Figure 4.
const (
	// SI issues the parity access at the same time as the data access;
	// the parity disk holds full rotations until the old data is read.
	SI SyncPolicy = iota
	// RF waits for the old data to be read before issuing the parity
	// access.
	RF
	// RFPR is RF with the parity access given queue priority.
	RFPR
	// DF issues the parity access when the data access acquires its disk.
	DF
	// DFPR is DF with the parity access given queue priority.
	DFPR
)

func (p SyncPolicy) String() string {
	switch p {
	case SI:
		return "SI"
	case RF:
		return "RF"
	case RFPR:
		return "RF/PR"
	case DF:
		return "DF"
	case DFPR:
		return "DF/PR"
	}
	return fmt.Sprintf("sync(%d)", int(p))
}

// SyncPolicyNames lists the canonical policy names ParseSyncPolicy
// accepts.
func SyncPolicyNames() []string { return []string{"SI", "RF", "RF/PR", "DF", "DF/PR"} }

// ParseSyncPolicy converts a name to a SyncPolicy. Matching is
// case-insensitive and tolerates the slashed, dashed, and plain spellings
// of the priority variants (rf/pr, rf-pr, rfpr).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "si":
		return SI, nil
	case "rf":
		return RF, nil
	case "rfpr", "rf/pr", "rf-pr":
		return RFPR, nil
	case "df":
		return DF, nil
	case "dfpr", "df/pr", "df-pr":
		return DFPR, nil
	}
	return 0, fmt.Errorf("array: unknown sync policy %q (valid: %s)", s, strings.Join(SyncPolicyNames(), ", "))
}

func (p SyncPolicy) priority() bool  { return p == RFPR || p == DFPR }
func (p SyncPolicy) diskFirst() bool { return p == DF || p == DFPR }

// Config describes one array.
type Config struct {
	Org  Org
	N    int // data-disk equivalents; see Org for the physical disk count
	Spec geom.Spec
	Seek geom.SeekModel

	StripingUnit     int              // RAID5/RAID4/RAID10, in blocks (default 1)
	Placement        layout.Placement // parity striping placement
	ParityStripeUnit int64            // fine-grained parity striping; 0 = classic
	Sync             SyncPolicy       // parity/data synchronization policy

	Cached           bool
	CacheBlocks      int      // capacity of the NV cache in blocks
	DestagePeriod    sim.Time // periodic destage interval (default 1s)
	PureLRUWriteback bool     // ablation: write back only on eviction

	// Warmup excludes requests arriving before this time from the
	// response statistics (they are still simulated — the point is to
	// measure steady state, e.g. after the cache fills).
	Warmup sim.Time

	BuffersPerDisk int // track buffers per disk (default 5)
	// DiskSched selects the drives' queue discipline within a priority
	// class. The paper's model is FIFO (the default); SSTF and LOOK are
	// extensions.
	DiskSched disk.Sched
	// SyncSpindles, when set, gives every drive the same rotational
	// phase (the paper assumes *no* spindle synchronization; the flag
	// exists for the ablation).
	SyncSpindles bool
	Seed         uint64

	// Fault configures fault injection (package fault); the zero value
	// injects nothing. RAID3 and parity logging have no degraded-mode
	// model and reject fault configs.
	Fault fault.Config
	// Spares is the hot-spare pool: each disk failure consumes one spare
	// and starts an automatic background rebuild onto it.
	Spares int
	// RebuildChunk is blocks per rebuild I/O (default 48); RebuildPause
	// is an idle gap between chunks to throttle rebuild interference.
	RebuildChunk int
	RebuildPause sim.Time

	// Robust configures the request-robustness layer: deadlines, retry
	// of transient errors, hedged reads, and overload shedding. The zero
	// value disables everything.
	Robust RobustConfig

	// Classes, when non-empty, is the workload's client-class table:
	// Request.CClass indexes it and Results.Classes reports each class
	// separately. Empty means classless — no per-class accounting, the
	// exact pre-multi-client behavior.
	Classes []trace.ClassInfo

	// Rec, when non-nil, receives windowed time-series observations
	// (latency histograms, utilization, queue depth, destage and rebuild
	// traffic). A nil Rec leaves the simulation bit-identical.
	Rec *obs.Recorder
}

func (c *Config) fillDefaults() error {
	if c.N < 2 {
		return fmt.Errorf("array: N must be >= 2, got %d", c.N)
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Seek == (geom.SeekModel{}) {
		m, err := geom.CalibrateSeek(c.Spec)
		if err != nil {
			return err
		}
		c.Seek = m
	}
	if c.StripingUnit <= 0 {
		c.StripingUnit = 1
	}
	if c.BuffersPerDisk <= 0 {
		c.BuffersPerDisk = 5
	}
	if c.DestagePeriod <= 0 {
		c.DestagePeriod = sim.Second
	}
	if c.Cached && c.CacheBlocks <= 0 {
		c.CacheBlocks = 16 << 20 / c.Spec.BlockBytes // 16 MB default
	}
	if c.Spares < 0 {
		return fmt.Errorf("array: negative spare count %d", c.Spares)
	}
	if c.RebuildChunk <= 0 {
		c.RebuildChunk = 48
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if err := c.Robust.Validate(); err != nil {
		return err
	}
	c.Robust.fillDefaults()
	return nil
}

// Request is one logical I/O against the array's data space.
type Request struct {
	Op     trace.Op
	LBA    int64
	Blocks int
	// Class is the request's SLO class (gold by default): it selects the
	// deadline the response is measured against and whether admission
	// control may shed the request under overload.
	Class SLOClass
	// CClass indexes Config.Classes, the client class that issued the
	// request; ignored (and 0) on classless arrays.
	CClass uint8
	// OnComplete, when non-nil, fires when the request's response
	// completes. Closed-loop drivers hook it to keep a fixed number of
	// requests outstanding. It also fires (asynchronously) when the
	// request is shed at admission.
	OnComplete func()
}

// StageBreakdown attributes the array's simulated disk-side milliseconds
// to pipeline stages, so a figure can explain where the time goes. The
// sums cover every disk access the array issued (foreground, destage,
// parity, rebuild); they are busy-time attribution, not per-request
// response decomposition.
type StageBreakdown struct {
	QueueMS        float64 // waiting in disk queues for the mechanism
	SeekRotateMS   float64 // arm seeks + rotational positioning (incl. RMW realignment)
	TransferMS     float64 // media passes over the data
	ParitySyncMS   float64 // full rotations held waiting for parity inputs (sync policy cost)
	DestageStallMS float64 // foreground requests blocked making cache room
}

// Add accumulates o into b.
func (b *StageBreakdown) Add(o *StageBreakdown) {
	b.QueueMS += o.QueueMS
	b.SeekRotateMS += o.SeekRotateMS
	b.TransferMS += o.TransferMS
	b.ParitySyncMS += o.ParitySyncMS
	b.DestageStallMS += o.DestageStallMS
}

// Total returns the attributed milliseconds across all stages.
func (b *StageBreakdown) Total() float64 {
	return b.QueueMS + b.SeekRotateMS + b.TransferMS + b.ParitySyncMS + b.DestageStallMS
}

// Results aggregates what an array simulation measured.
type Results struct {
	Org       Org
	Requests  int64
	Resp      stats.Summary // ms, all requests
	ReadResp  stats.Summary
	WriteResp stats.Summary

	// NormalResp/DegradedResp split Resp by whether the array was
	// degraded (a slot unreadable) when the request completed.
	NormalResp   stats.Summary
	DegradedResp stats.Summary
	Fault        FaultResults
	Robust       RobustResults

	// Classes reports each workload client class separately; nil on
	// classless runs.
	Classes []ClassResults

	// Per-request cache accounting (multiblock counts as a hit only if
	// every block hit, as in the paper).
	ReadHits, ReadMisses   int64
	WriteHits, WriteMisses int64

	DiskAccesses   []int64
	DiskUtil       []float64
	SeekDistMean   float64
	HeldRotations  int64
	Cache          cache.Stats
	ParityAccesses int64 // disk accesses that targeted parity blocks

	// Stages attributes disk-side time to pipeline stages.
	Stages StageBreakdown
}

// ReadHitRatio returns read hits / read requests.
func (r *Results) ReadHitRatio() float64 {
	n := r.ReadHits + r.ReadMisses
	if n == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(n)
}

// WriteHitRatio returns write hits / write requests.
func (r *Results) WriteHitRatio() float64 {
	n := r.WriteHits + r.WriteMisses
	if n == 0 {
		return 0
	}
	return float64(r.WriteHits) / float64(n)
}

// Controller is a simulated array controller.
type Controller interface {
	// Submit presents a request at the current simulation time. The LBA
	// span must lie within [0, DataBlocks()).
	Submit(r Request)
	// DataBlocks returns the array's logical capacity in blocks.
	DataBlocks() int64
	// Drained reports whether no request is still in flight.
	Drained() bool
	// Results snapshots statistics; call after the engine has drained.
	Results() *Results
}

// New builds the controller the config describes: the organization's
// redundancy scheme behind either the generic non-cached controller or
// the NV-cache front-end.
func New(eng *sim.Engine, cfg Config) (Controller, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	bpd := cfg.Spec.BlocksPerDisk()

	// The RAID3 and parity-logging comparators predate the scheme
	// pipeline and stay monolithic: non-cached, no degraded-mode model.
	switch cfg.Org {
	case OrgRAID3:
		if cfg.Cached {
			return nil, fmt.Errorf("array: the RAID3 comparator is modeled non-cached only")
		}
		if cfg.Fault.Enabled() || cfg.Spares > 0 {
			return nil, fmt.Errorf("array: the RAID3 comparator has no degraded-mode model; fault injection is unsupported")
		}
		cfg.SyncSpindles = true // RAID3 requires synchronized spindles
		c, err := newCommon(eng, cfg, cfg.N+1)
		if err != nil {
			return nil, err
		}
		return &raid3Ctrl{common: c, n: cfg.N, bpd: bpd}, nil
	case OrgParityLog:
		if cfg.Cached {
			return nil, fmt.Errorf("array: parity logging is modeled non-cached only (its log plays the cache's role)")
		}
		if cfg.Fault.Enabled() || cfg.Spares > 0 {
			return nil, fmt.Errorf("array: the parity-logging comparator has no degraded-mode model; fault injection is unsupported")
		}
		c, err := newCommon(eng, cfg, cfg.N+1)
		if err != nil {
			return nil, err
		}
		return newParityLog(c, cfg), nil
	}

	// Scheme-based organizations: layout → shared hardware → scheme,
	// then wrap the scheme in a controller.
	var lay layout.DataLayout
	switch cfg.Org {
	case OrgBase:
		lay = layout.NewBase(cfg.N, bpd)
	case OrgRAID0:
		lay = layout.NewRAID0(cfg.N, bpd, cfg.StripingUnit)
	case OrgMirror:
		lay = layout.NewMirror(cfg.N, bpd)
	case OrgRAID10:
		lay = layout.NewRAID10(cfg.N, bpd, cfg.StripingUnit)
	case OrgRAID5:
		lay = layout.NewRAID5(cfg.N, bpd, cfg.StripingUnit)
	case OrgParityStriping:
		lay = layout.NewParityStriping(cfg.N, bpd, cfg.Placement, cfg.ParityStripeUnit)
	case OrgRAID4:
		if !cfg.Cached {
			return nil, fmt.Errorf("array: RAID4 is only studied with parity caching; set Cached")
		}
		lay = layout.NewRAID4(cfg.N, bpd, cfg.StripingUnit)
	default:
		return nil, fmt.Errorf("array: unknown organization %v", cfg.Org)
	}
	c, err := newCommon(eng, cfg, lay.Disks())
	if err != nil {
		return nil, err
	}
	var s scheme
	switch cfg.Org {
	case OrgBase, OrgRAID0:
		s = &plainScheme{c: c, lay: lay, o: cfg.Org}
	case OrgMirror, OrgRAID10:
		s = &mirrorScheme{c: c, lay: lay.(layout.MirrorLayout), o: cfg.Org}
	case OrgRAID5, OrgParityStriping:
		s = &parityScheme{c: c, lay: lay.(layout.ParityLayout), o: cfg.Org}
	case OrgRAID4:
		s = &raid4Scheme{parityScheme: parityScheme{c: c, lay: lay.(layout.ParityLayout), o: OrgRAID4}}
	}
	c.sch = s

	var ctrl Controller
	if cfg.Cached {
		cc, err := newCached(c, s)
		if err != nil {
			return nil, err
		}
		if r4, ok := s.(*raid4Scheme); ok {
			r4.cc = cc // the parity spool lives in the front-end's cache
		}
		ctrl = cc
	} else {
		ctrl = &schemeCtrl{common: c, s: s}
	}
	if cfg.Fault.Enabled() {
		inj, err := fault.NewInjector(eng, cfg.Fault, len(c.disks))
		if err != nil {
			return nil, err
		}
		c.fs.inj = inj
		inj.Arm(c)
	}
	return ctrl, nil
}

// common holds the hardware every controller variant shares.
type common struct {
	eng   *sim.Engine
	cfg   Config
	disks []*disk.Disk
	ch    *bus.Channel
	buf   *bus.BufferPool
	sch   scheme      // nil for the legacy RAID3/parity-log monoliths
	tr    *obs.Tracer // nil when span tracing is off

	requests               int64
	inflight               int64
	resp                   stats.Summary
	readResp               stats.Summary
	writeResp              stats.Summary
	normResp               stats.Summary
	degResp                stats.Summary
	readHits, readMisses   int64
	writeHits, writeMisses int64
	parityAccesses         int64

	// stages holds the controller-side stage attribution (destage
	// stalls); the disk-side stages are gathered from disk.Stats at
	// results time.
	stages StageBreakdown

	// dirtyFrac reports the cache dirty fraction for the observability
	// sampler; nil for non-cached controllers.
	dirtyFrac func() float64

	// cls holds per-client-class accumulators, one per Config.Classes
	// entry; empty on classless arrays.
	cls []classAcct

	fs faultState
	rb robustState
}

func newCommon(eng *sim.Engine, cfg Config, ndisks int) (*common, error) {
	src := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	ch, err := bus.NewChannel(eng, cfg.Spec.ChannelMBps)
	if err != nil {
		return nil, err
	}
	buf, err := bus.NewBufferPool(eng, cfg.BuffersPerDisk*ndisks)
	if err != nil {
		return nil, err
	}
	c := &common{
		eng: eng,
		cfg: cfg,
		ch:  ch,
		buf: buf,
	}
	c.disks = make([]*disk.Disk, ndisks)
	sharedPhase := src.Float64()
	for i := range c.disks {
		phase := sharedPhase
		if !cfg.SyncSpindles {
			phase = src.Float64()
		}
		c.disks[i], err = disk.New(eng, i, cfg.Spec, cfg.Seek, phase)
		if err != nil {
			return nil, err
		}
		if err := c.disks[i].SetSched(cfg.DiskSched); err != nil {
			return nil, err
		}
	}
	c.fs.failed = make([]bool, ndisks)
	c.fs.rebuilding = make([]bool, ndisks)
	c.fs.rbSpan = make([]*obs.Span, ndisks)
	c.fs.spares = cfg.Spares
	if len(cfg.Classes) > 0 {
		c.cls = make([]classAcct, len(cfg.Classes))
	}
	c.tr = cfg.Rec.Tracer()
	c.initRobust()
	c.armObs()
	return c, nil
}

// armObs attaches the recorder's probes: per-disk busy intervals and a
// uniform-in-time sampler for queue depth, cache dirty fraction, and the
// engine's executed-event count. The sampler period is a quarter window,
// so every window averages four snapshots. No-op without a recorder —
// with observability off the engine sees no extra events at all.
func (c *common) armObs() {
	rec := c.cfg.Rec
	if rec == nil {
		return
	}
	for _, d := range c.disks {
		d.SetProbe(rec)
	}
	period := rec.Window() / 4
	if period <= 0 {
		period = 1
	}
	sim.NewTicker(c.eng, period, func() {
		depth := 0
		for _, d := range c.disks {
			depth += d.QueueLen()
		}
		var dirty float64
		if c.dirtyFrac != nil {
			dirty = c.dirtyFrac()
		}
		rec.Sample(c.eng.Now(), depth, dirty, c.eng.Steps())
	})
}

// begin opens a request: counters, and — when tracing — the root span of
// its trace tree, which every layer below threads through to its device
// operations.
func (c *common) begin(write bool) (sim.Time, *obs.Span) {
	c.requests++
	c.inflight++
	now := c.eng.Now()
	return now, c.tr.Start(now, write)
}

func (c *common) finish(r Request, start sim.Time, sp *obs.Span) {
	ms := sim.Millis(c.eng.Now() - start)
	if rec := c.cfg.Rec; rec != nil {
		// The recorder sees every completion (warmup included): the time
		// series exists to show transients, not steady state.
		rec.Request(c.eng.Now(), r.Op != trace.Read, ms)
		if len(c.cls) > 0 {
			rec.ClassRequest(c.eng.Now(), int(r.CClass), ms)
		}
	}
	if start >= c.cfg.Warmup {
		c.resp.Add(ms)
		if r.Op == trace.Read {
			c.readResp.Add(ms)
		} else {
			c.writeResp.Add(ms)
		}
		if c.fs.degraded.Active() {
			c.degResp.Add(ms)
		} else {
			c.normResp.Add(ms)
		}
		if len(c.cls) > 0 {
			var missed, checked bool
			if c.rb.on {
				cl := r.Class
				if cl < 0 || cl >= NumSLOClasses {
					cl = SLOGold
				}
				if dl := c.rb.cfg.deadlineFor(cl); dl > 0 {
					checked = true
					missed = c.eng.Now()-start > dl
				}
			}
			c.finishClass(r, ms, missed, checked)
		}
	}
	if c.rb.on {
		c.finishRobust(r, start)
	}
	c.tr.Finish(sp, c.eng.Now(), c.fs.degraded.Active())
	c.inflight--
	if r.OnComplete != nil {
		r.OnComplete()
	}
}

// Drained implements Controller. A losing hedge leg outlives its
// request; it still occupies a drive, so it holds the drain too.
func (c *common) Drained() bool { return c.inflight == 0 && c.rb.hedgeLegs == 0 }

// chanXfer moves n blocks over the array channel.
func (c *common) chanXfer(n int, onDone func()) {
	c.ch.Transfer(int64(n)*int64(c.cfg.Spec.BlockBytes), onDone)
}

// chanXferSpan is chanXfer with a "channel" child span under sp. The nil
// guard keeps the untraced path free of the extra closure.
func (c *common) chanXferSpan(n int, sp *obs.Span, onDone func()) {
	if sp == nil {
		c.chanXfer(n, onDone)
		return
	}
	ch := sp.Child(obs.SpanChannel, c.eng.Now())
	c.chanXfer(n, func() {
		ch.CloseAt(c.eng.Now())
		onDone()
	})
}

func (c *common) baseResults(org Org) *Results {
	r := &Results{
		Org:       org,
		Requests:  c.requests,
		Resp:      c.resp,
		ReadResp:  c.readResp,
		WriteResp: c.writeResp,
		ReadHits:  c.readHits, ReadMisses: c.readMisses,
		WriteHits: c.writeHits, WriteMisses: c.writeMisses,
		ParityAccesses: c.parityAccesses,
		NormalResp:     c.normResp,
		DegradedResp:   c.degResp,
		Fault:          c.faultResults(),
		Robust:         c.robustResults(),
		Classes:        c.classResults(),
		Stages:         c.stages,
	}
	now := c.eng.Now()
	rot := c.cfg.Spec.RotationTime()
	var distSum, seeks int64
	for _, d := range c.disks {
		r.DiskAccesses = append(r.DiskAccesses, d.S.Accesses)
		r.DiskUtil = append(r.DiskUtil, d.S.Util.Value(now))
		r.HeldRotations += d.S.HeldRotations
		distSum += d.S.SeekDistSum
		seeks += d.S.SeekCount
		r.Stages.QueueMS += d.S.QueueWait.Mean() * float64(d.S.QueueWait.N())
		r.Stages.SeekRotateMS += sim.Millis(d.S.SeekTime + d.S.RotateTime)
		r.Stages.TransferMS += sim.Millis(d.S.TransferTime)
		r.Stages.ParitySyncMS += sim.Millis(d.S.HeldRotations * rot)
	}
	if seeks > 0 {
		r.SeekDistMean = float64(distSum) / float64(seeks)
	}
	return r
}

// latch runs fn once n completions have been signalled. A latch created
// with n == 0 fires immediately.
type latch struct {
	n  int
	fn func()
}

func newLatch(n int, fn func()) *latch {
	l := &latch{n: n, fn: fn}
	if n == 0 {
		fn()
	}
	return l
}

func (l *latch) done() {
	l.n--
	if l.n == 0 {
		l.fn()
	} else if l.n < 0 {
		panic("array: latch over-released")
	}
}

func (c *common) checkRequest(r Request, capacity int64) {
	if r.Blocks <= 0 {
		panic("array: request with no blocks")
	}
	if r.LBA < 0 || r.LBA+int64(r.Blocks) > capacity {
		panic(fmt.Sprintf("array: request [%d,%d) outside [0,%d)", r.LBA, r.LBA+int64(r.Blocks), capacity))
	}
}
