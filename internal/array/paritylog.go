package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/trace"
)

// parityLogCtrl implements a simplified parity logging organization
// (Stodolsky, Gibson & Holland — cited in the paper's related work §1):
// data is striped RAID5-style, but instead of read-modify-writing the
// parity disk on every small write, the parity-update image (old XOR new
// data) is buffered and appended to a per-disk log region in large
// sequential writes. A background reintegration pass later folds a full
// log into the parity blocks. Small writes thus cost one data RMW instead
// of two RMWs, and the parity traffic is amortized into sequential I/O.
//
// Simplifications versus the full design (documented in DESIGN.md): the
// update buffer is NVRAM (log flushes are asynchronous), log regions are
// the tail 2% of each drive, and reintegration is modeled as three large
// background passes (read log, read touched parity, write parity) whose
// media time matches the log volume rather than tracking each touched
// parity block individually.
type parityLogCtrl struct {
	*common
	lay      *layout.RAID5
	logStart int64 // first log block on every drive
	logCap   int64 // log blocks per drive

	logBuf        int     // parity-update blocks buffered in NVRAM
	flushTo       int     // round-robin target drive for the next flush
	logUsed       []int64 // appended blocks per drive
	reintegrating []bool

	// stats
	LogFlushes     int64
	Reintegrations int64
}

// logFraction is the share of each drive reserved for the parity log.
const logFraction = 0.02

// flushThresholdBlocks is how many buffered parity-update blocks trigger
// a sequential log flush (two tracks' worth on the default geometry).
const flushThresholdBlocks = 12

func newParityLog(c *common, cfg Config) *parityLogCtrl {
	bpd := cfg.Spec.BlocksPerDisk()
	logCap := int64(float64(bpd) * logFraction)
	if logCap < flushThresholdBlocks {
		logCap = flushThresholdBlocks
	}
	dataBPD := bpd - logCap
	lay := layout.NewRAID5(cfg.N, dataBPD, cfg.StripingUnit)
	return &parityLogCtrl{
		common:        c,
		lay:           lay,
		logStart:      dataBPD,
		logCap:        logCap,
		logUsed:       make([]int64, lay.Disks()),
		reintegrating: make([]bool, lay.Disks()),
	}
}

// DataBlocks implements Controller.
func (pl *parityLogCtrl) DataBlocks() int64 { return pl.lay.DataBlocks() }

// Results implements Controller.
func (pl *parityLogCtrl) Results() *Results { return pl.baseResults(OrgParityLog) }

// Submit implements Controller.
func (pl *parityLogCtrl) Submit(r Request) {
	pl.checkRequest(r, pl.lay.DataBlocks())
	start, sp := pl.begin(r.Op != trace.Read)
	if r.Op == trace.Read {
		pl.readRuns(dataRunsSpan(pl.lay, r.LBA, r.Blocks), r.Blocks, sp, func() { pl.finish(r, start, sp) })
		return
	}
	// Writes: data RMW (the old data is needed for the parity-update
	// image) unless the stripe is fully overwritten; no parity disk
	// access in the foreground — the update image goes to the log.
	plan := planUpdate(pl.lay, spanLBAs(r.LBA, r.Blocks), nil)
	n := len(plan.dataRuns)
	admitStart := pl.eng.Now()
	pl.buf.Acquire(n, func() {
		if now := pl.eng.Now(); now > admitStart {
			sp.ChildSpan(obs.SpanAdmit, admitStart, now)
		}
		pl.chanXferSpan(r.Blocks, sp, func() {
			done := newLatch(n, func() {
				pl.buf.Release(n)
				pl.finish(r, start, sp)
			})
			for ri, rn := range plan.dataRuns {
				req := &disk.Request{
					StartBlock: rn.start, Blocks: rn.blocks, Write: true,
					Priority: disk.PriNormal,
					RMW:      plan.dataRMW[ri],
					OnDone:   done.done,
				}
				if sp != nil {
					name := "write-data"
					if req.RMW {
						name = "rmw-data"
					}
					req.Span = sp.Child(name, pl.eng.Now())
					req.Span.SetBlocks(rn.blocks)
				}
				pl.disks[rn.disk].Submit(req)
			}
			// One update-image block per touched parity block.
			images := 0
			for _, pr := range plan.parityRuns {
				images += pr.blocks
			}
			pl.appendLog(images)
		})
	})
}

// appendLog buffers parity-update images and flushes them sequentially to
// a drive's log region when the NVRAM buffer fills.
func (pl *parityLogCtrl) appendLog(blocks int) {
	pl.logBuf += blocks
	for pl.logBuf >= flushThresholdBlocks {
		pl.logBuf -= flushThresholdBlocks
		pl.flushLog(flushThresholdBlocks)
	}
}

// flushLog writes one batch to the next drive's log, round-robin; a full
// log triggers reintegration first (the flush then lands in the cleaned
// log).
func (pl *parityLogCtrl) flushLog(blocks int) {
	d := pl.flushTo
	pl.flushTo = (pl.flushTo + 1) % pl.lay.Disks()
	if pl.logUsed[d]+int64(blocks) > pl.logCap {
		pl.reintegrate(d)
	}
	if pl.logUsed[d]+int64(blocks) > pl.logCap {
		// Reintegration in flight; spill to the next drive this round.
		d = pl.flushTo
		pl.flushTo = (pl.flushTo + 1) % pl.lay.Disks()
		if pl.logUsed[d]+int64(blocks) > pl.logCap {
			// Every log saturated: drop to synchronous reintegration
			// semantics by forcing the append after reintegration resets
			// (extremely heavy write loads only).
			pl.reintegrate(d)
			pl.logUsed[d] = 0
		}
	}
	start := pl.logStart + pl.logUsed[d]
	pl.logUsed[d] += int64(blocks)
	pl.LogFlushes++
	var root *obs.Span
	if pl.tr != nil {
		root = pl.tr.StartBackground("log-flush", pl.eng.Now())
		root.SetBlocks(blocks)
	}
	req := &disk.Request{
		StartBlock: start, Blocks: blocks, Write: true,
		Priority: disk.PriBackground, Span: root,
	}
	if root != nil {
		req.OnDone = func() { pl.tr.FinishBackground(root, pl.eng.Now()) }
	}
	pl.disks[d].Submit(req)
}

// reintegrate folds drive d's log into its parity blocks: a sequential
// log read, a gathering read of the touched parity, and the parity
// write-back, all in the background.
func (pl *parityLogCtrl) reintegrate(d int) {
	if pl.reintegrating[d] || pl.logUsed[d] == 0 {
		return
	}
	pl.reintegrating[d] = true
	pl.Reintegrations++
	used := pl.logUsed[d]
	pl.parityAccesses += used
	var root *obs.Span
	opSpan := func(name string) *obs.Span {
		if root == nil {
			return nil
		}
		op := root.Child(name, pl.eng.Now())
		op.SetBlocks(int(used))
		return op
	}
	if pl.tr != nil {
		root = pl.tr.StartBackground("reintegrate", pl.eng.Now())
		root.SetDisk(d)
		root.SetBlocks(int(used))
	}
	// Pass 1: read the log sequentially.
	pl.disks[d].Submit(&disk.Request{
		StartBlock: pl.logStart, Blocks: int(used),
		Priority: disk.PriBackground,
		Span:     opSpan("log-read"),
		OnDone: func() {
			// Pass 2+3: sweep-read and rewrite the touched parity. The
			// touched blocks are scattered; a sorted sweep is modeled as
			// one long pass of equal volume starting mid-disk.
			sweepStart := pl.logStart / 2
			pl.disks[d].Submit(&disk.Request{
				StartBlock: sweepStart, Blocks: int(used),
				Priority: disk.PriBackground,
				Span:     opSpan("parity-read"),
				OnDone: func() {
					pl.disks[d].Submit(&disk.Request{
						StartBlock: sweepStart, Blocks: int(used), Write: true,
						Priority: disk.PriBackground,
						Span:     opSpan("write-parity"),
						OnDone: func() {
							if root != nil {
								pl.tr.FinishBackground(root, pl.eng.Now())
							}
							pl.logUsed[d] = 0
							pl.reintegrating[d] = false
						},
					})
				},
			})
		},
	})
}
