package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// parityScheme is an N+1 rotating- or area-parity organization: RAID5
// and Parity Striping. Small writes read old data and old parity to
// compute new parity; full-stripe writes overwrite parity directly. The
// configured synchronization policy coordinates the two.
type parityScheme struct {
	c   *common
	lay layout.ParityLayout
	o   Org
}

func (s *parityScheme) org() Org          { return s.o }
func (s *parityScheme) dataBlocks() int64 { return s.lay.DataBlocks() }
func (s *parityScheme) keepOldData() bool { return true }

func (s *parityScheme) fetchRuns(lbas []int64) []run { return dataRuns(s.lay, lbas) }

func (s *parityScheme) write(w writeOp) {
	if s.c.degradedNow() {
		s.c.parityDegradedWrite(s.lay, w)
		return
	}
	plan := planUpdate(s.lay, w.lbas, w.hasOld)
	n := plan.totalRuns()
	var stagger sim.Time
	if len(plan.dataRuns) > 1 && w.spread > 0 {
		stagger = w.spread / sim.Time(len(plan.dataRuns))
	}
	s.c.acquireAndXfer(n, w.xfer, w.span, func() {
		s.c.executeUpdate(plan, updateOpts{
			policy:  s.c.cfg.Sync,
			pri:     w.pri,
			stagger: stagger,
			span:    w.span,
			onDone: func() {
				s.c.buf.Release(n)
				w.onDone()
			},
		})
	})
}

func (s *parityScheme) onFail(d int)               { s.c.parityOnFail(d) }
func (s *parityScheme) rebuildSources(d int) []int { return s.c.parityRebuildSources(d) }
func (s *parityScheme) readFallback(rn run, pri disk.Priority, op *obs.Span, onDone func()) bool {
	return s.c.parityReadFallback(s.lay, rn, pri, op, onDone)
}

// The N+1 parity degraded mapping, shared by RAID5, Parity Striping and
// RAID4: reads of a dead disk reconstruct from the surviving members
// plus parity, a rebuild reads every other disk, and a second concurrent
// failure loses data.

func (c *common) parityOnFail(d int) {
	for i := range c.disks {
		if i != d && c.fs.failed[i] {
			c.fs.dataLossEvents++
			break
		}
	}
}

func (c *common) parityRebuildSources(d int) []int {
	srcs := make([]int, 0, len(c.disks)-1)
	for i := range c.disks {
		if i == d {
			continue
		}
		if c.fs.failed[i] {
			return nil
		}
		srcs = append(srcs, i)
	}
	return srcs
}

func (c *common) parityReadFallback(lay layout.ParityLayout, rn run, pri disk.Priority, op *obs.Span, onDone func()) bool {
	// Reconstruct each lost logical block: read its surviving stripe
	// members and the stripe's parity block, XOR in the controller.
	// Physical runs with no logical blocks attached (rebuild traffic)
	// have nothing to map and recover for free.
	var srcs []layout.Loc
	for _, l := range rn.lbas {
		for _, m := range lay.StripeMembers(l) {
			if m == l {
				continue
			}
			loc := lay.Map(m)
			if c.fs.failed[loc.Disk] {
				return false
			}
			srcs = append(srcs, loc)
		}
		p := lay.Parity(l)
		if c.fs.failed[p.Disk] {
			return false
		}
		srcs = append(srcs, p)
	}
	done := newLatch(len(srcs), onDone)
	for _, s := range srcs {
		var leg *obs.Span
		if op != nil {
			leg = op.Child("reconstruct", c.eng.Now())
			leg.SetBlocks(1)
		}
		c.mediaRead(run{disk: s.Disk, start: s.Block, blocks: 1}, pri, 0, 0, leg, done.done)
	}
	return true
}

// parityDegradedWrite applies a write batch to a parity layout with
// failures present, behind the standard envelope.
func (c *common) parityDegradedWrite(lay layout.ParityLayout, w writeOp) {
	n := len(w.lbas)
	c.acquireAndXfer(n, w.xfer, w.span, func() {
		c.degradedUpdate(lay, w.lbas, w.pri, w.span, func() {
			c.buf.Release(n)
			w.onDone()
		})
	})
}

// degradedUpdate applies a batch of block writes to a parity layout with
// failures present, block at a time (run merging and policy scheduling
// don't survive the per-block case analysis).
func (c *common) degradedUpdate(lay layout.ParityLayout, lbas []int64, pri disk.Priority, sp *obs.Span, onDone func()) {
	done := newLatch(len(lbas), onDone)
	for _, l := range lbas {
		c.degradedWriteBlock(lay, l, pri, sp, done.done)
	}
}

// degradedWriteBlock writes one logical block to a parity layout under
// failures, mirroring the degraded-mode cases internal/recovery models:
//
//   - home dead, parity alive: fold the write into parity — read the
//     surviving stripe members, then overwrite parity with
//     XOR(new data, survivors).
//   - parity dead, home alive: plain data write, no parity to maintain.
//   - both alive (or rebuilding): the usual data-RMW + parity-RMW pair,
//     disk-first style.
//   - both dead: the write has nowhere to land.
func (c *common) degradedWriteBlock(lay layout.ParityLayout, l int64, pri disk.Priority, sp *obs.Span, onDone func()) {
	home := lay.Map(l)
	p := lay.Parity(l)
	homeDown := c.writeDown(home.Disk)
	parityDown := c.writeDown(p.Disk)
	opSpan := func(name string) *obs.Span {
		if sp == nil {
			return nil
		}
		op := sp.Child(name, c.eng.Now())
		op.SetBlocks(1)
		return op
	}
	switch {
	case homeDown && parityDown:
		c.fs.lostWriteBlocks++
		c.eng.After(0, onDone)
	case homeDown:
		var srcs []layout.Loc
		for _, m := range lay.StripeMembers(l) {
			if m == l {
				continue
			}
			loc := lay.Map(m)
			if c.fs.failed[loc.Disk] {
				// A second data disk is dead too; the stripe cannot hold
				// this write.
				c.fs.lostWriteBlocks++
				c.eng.After(0, onDone)
				return
			}
			srcs = append(srcs, loc)
		}
		c.parityAccesses++
		read := newLatch(len(srcs), func() {
			c.disks[p.Disk].Submit(&disk.Request{
				StartBlock: p.Block, Blocks: 1, Write: true,
				Priority: pri, Span: opSpan("write-parity"), OnDone: onDone,
			})
		})
		for _, s := range srcs {
			c.mediaRead(run{disk: s.Disk, start: s.Block, blocks: 1}, pri, 0, 0, opSpan("reconstruct"), read.done)
		}
	case parityDown:
		c.disks[home.Disk].Submit(&disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true,
			Priority: pri, Span: opSpan("write-data"), OnDone: onDone,
		})
	default:
		readDone := false
		c.parityAccesses++
		all := newLatch(2, onDone)
		dreq := &disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true, RMW: true,
			Priority:   pri,
			Span:       opSpan("rmw-data"),
			OnReadDone: func() { readDone = true },
			OnDone:     all.done,
		}
		dreq.OnStart = func() {
			c.disks[p.Disk].Submit(&disk.Request{
				StartBlock: p.Block, Blocks: 1, Write: true, RMW: true,
				Priority: pri, Ready: func() bool { return readDone },
				Span:   opSpan("rmw-parity"),
				OnDone: all.done,
			})
		}
		c.disks[home.Disk].Submit(dreq)
	}
}
