package array

import (
	"testing"

	"raidsim/internal/geom"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func TestRAID4DebugDrain(t *testing.T) {
	eng := sim.New()
	cfg := Config{
		Org: OrgRAID4, N: 10, Spec: geom.Default(),
		Sync: DF, Cached: true, CacheBlocks: 4096, Seed: 7,
	}
	ctrl, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r4 := ctrl.(*cachedCtrl)
	src := rng.New(99)
	n := 3000
	capacity := ctrl.DataBlocks()
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 20 * sim.Millisecond
		op := trace.Read
		if src.Bool(0.3) {
			op = trace.Write
		}
		lba := src.Int63n(capacity - 64)
		blocks := 1
		if src.Bool(0.05) {
			blocks = 1 + src.Intn(30)
		}
		r := Request{Op: op, LBA: lba, Blocks: blocks}
		eng.At(at, func() { ctrl.Submit(r) })
	}
	end := sim.Time(n)*20*sim.Millisecond + 200*sim.Second
	eng.RunUntil(end)
	for i := 0; i < 600 && !ctrl.Drained(); i++ {
		eng.RunFor(sim.Second)
	}
	if !ctrl.Drained() {
		t.Errorf("not drained: inflight=%d", r4.inflight)
		t.Logf("cache: used=%d/%d len=%d dirty=%d parityPending=%d free=%d",
			r4.c.Used(), r4.c.Capacity(), r4.c.Len(), r4.c.DirtyCount(),
			r4.c.ParityPendingCount(), r4.c.FreeSlots())
		t.Logf("spooling=%v stalled=%d bufFree=%d/%d chanQ=%d",
			r4.s.(*raid4Scheme).spooling, len(r4.s.(*raid4Scheme).stalled), r4.buf.Free(), r4.buf.Cap(), r4.ch.QueueLen())
		for i, d := range r4.disks {
			t.Logf("disk %d: busy=%v q=%d acc=%d", i, d.Busy(), d.QueueLen(), d.S.Accesses)
		}
		t.Logf("pending events=%d now=%d", eng.Pending(), eng.Now())
	}
}
