package array

import (
	"fmt"

	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// SLOClass labels a request's service-level objective: interactive
// transaction traffic (gold) versus bulk/batch traffic that tolerates
// delay and may be shed under overload.
type SLOClass int

// The two classes the robustness layer distinguishes.
const (
	// SLOGold is latency-sensitive transaction traffic: never shed,
	// measured against the primary deadline.
	SLOGold SLOClass = iota
	// SLOBatch is bulk traffic: sheddable under overload, measured
	// against the (laxer) batch deadline.
	SLOBatch

	// NumSLOClasses sizes per-class accounting arrays.
	NumSLOClasses = 2
)

func (s SLOClass) String() string {
	switch s {
	case SLOGold:
		return "gold"
	case SLOBatch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", int(s))
}

// ClassifyBlocks assigns the default SLO class of a request from its
// size: single-block requests are transaction traffic (gold), multiblock
// requests are batch. The paper's OLTP traces are dominated by
// single-block accesses, so this split puts the bulk tail in the
// sheddable class.
func ClassifyBlocks(blocks int) SLOClass {
	if blocks > 1 {
		return SLOBatch
	}
	return SLOGold
}

// RobustConfig enables the request-robustness layer: per-class response
// deadlines, bounded retry of transient read errors, hedged reads on
// mirror-backed organizations, and overload shedding at admission. The
// zero value disables everything and leaves simulations bit-identical.
type RobustConfig struct {
	// Deadline is the gold-class response deadline; requests completing
	// later count as deadline misses. Zero disables deadline accounting.
	Deadline sim.Time
	// BatchDeadline is the batch-class deadline; zero falls back to
	// Deadline.
	BatchDeadline sim.Time

	// Retries bounds how many times a transient read error (a sick
	// disk's flaky media pass) is retried on the same drive before the
	// read falls back to redundancy.
	Retries int
	// RetryBackoff is the base delay before the first retry; attempt k
	// waits up to RetryBackoff << k with full jitter. Defaults to 1ms
	// when Retries is set.
	RetryBackoff sim.Time

	// HedgeAfter, when positive, arms hedged reads on mirror-backed
	// schemes: a read still unanswered after this delay dispatches a
	// speculative second leg to the partner copy; the first completion
	// wins.
	HedgeAfter sim.Time
	// HedgeQuantile, when in (0,1), derives the hedge delay from the
	// observed read-response distribution (e.g. 0.95 hedges the slowest
	// 5%) once enough samples exist; until then HedgeAfter applies.
	HedgeQuantile float64

	// ShedQueue, when positive, sheds batch-class requests at admission
	// while the total queued accesses across the array's drives is at or
	// above this depth.
	ShedQueue int
	// ShedDirty, when in (0,1], sheds batch-class requests while the
	// cache dirty fraction is at or above this threshold (cached
	// controllers only).
	ShedDirty float64
}

// Enabled reports whether any robustness feature is on.
func (c RobustConfig) Enabled() bool {
	return c.Deadline > 0 || c.BatchDeadline > 0 || c.Retries > 0 ||
		c.HedgeAfter > 0 || c.HedgeQuantile > 0 || c.ShedQueue > 0 || c.ShedDirty > 0
}

// Validate reports configuration errors.
func (c RobustConfig) Validate() error {
	if c.Deadline < 0 || c.BatchDeadline < 0 {
		return fmt.Errorf("array: negative deadline")
	}
	if c.Retries < 0 {
		return fmt.Errorf("array: negative retry bound %d", c.Retries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("array: negative retry backoff")
	}
	if c.HedgeAfter < 0 {
		return fmt.Errorf("array: negative hedge delay")
	}
	if c.HedgeQuantile < 0 || c.HedgeQuantile >= 1 {
		return fmt.Errorf("array: hedge quantile %g outside [0,1)", c.HedgeQuantile)
	}
	if c.ShedQueue < 0 {
		return fmt.Errorf("array: negative shed queue depth")
	}
	if c.ShedDirty < 0 || c.ShedDirty > 1 {
		return fmt.Errorf("array: shed dirty fraction %g outside [0,1]", c.ShedDirty)
	}
	return nil
}

func (c *RobustConfig) fillDefaults() {
	if c.Retries > 0 && c.RetryBackoff == 0 {
		c.RetryBackoff = sim.Millisecond
	}
}

// deadlineFor returns the class's deadline (0 = none).
func (c RobustConfig) deadlineFor(class SLOClass) sim.Time {
	if class == SLOBatch && c.BatchDeadline > 0 {
		return c.BatchDeadline
	}
	return c.Deadline
}

// hedging reports whether hedged reads are configured at all.
func (c RobustConfig) hedging() bool { return c.HedgeAfter > 0 || c.HedgeQuantile > 0 }

// robustState is the per-array robustness machinery and accounting. It
// lives by value in common; rb.on gates every hot-path hook with one
// predictable branch, so disabled configs stay bit-identical.
type robustState struct {
	cfg RobustConfig
	on  bool
	src *rng.Source // retry jitter; allocated only when enabled

	// readHist observes read responses (ms) to derive the quantile-based
	// hedge delay.
	readHist obs.Histogram

	deadlineMet  [NumSLOClasses]int64
	deadlineMiss [NumSLOClasses]int64
	classResp    [NumSLOClasses]stats.Summary
	shed         [NumSLOClasses]int64

	retries           int64
	retriesExhausted  int64 // runs whose retry budget ran out (fell back to redundancy)
	attemptsExhausted int64 // retry attempts spent by those exhausted runs

	hedges      int64
	hedgeWins   int64
	hedgeLosses int64
	hedgeLegs   int64 // speculative legs still in flight (holds Drained false)
}

// RobustResults snapshots the robustness accounting for reports.
type RobustResults struct {
	Enabled bool

	// DeadlineMet/DeadlineMiss count measured requests per class against
	// their deadline (absent when no deadline is configured).
	DeadlineMet  [NumSLOClasses]int64
	DeadlineMiss [NumSLOClasses]int64
	// ClassResp splits measured response times by SLO class.
	ClassResp [NumSLOClasses]stats.Summary
	// Shed counts requests rejected at admission, per class.
	Shed [NumSLOClasses]int64

	Retries           int64 // transient-error retries issued
	RetriesExhausted  int64 // reads whose retry budget ran out
	AttemptsExhausted int64 // retry attempts spent by exhausted reads

	Hedges      int64 // speculative second legs dispatched
	HedgeWins   int64 // hedge legs that beat the primary
	HedgeLosses int64 // hedge legs the primary beat
}

// DeadlineMissFrac returns the fraction of measured class requests that
// missed their deadline.
func (r *RobustResults) DeadlineMissFrac(class SLOClass) float64 {
	n := r.DeadlineMet[class] + r.DeadlineMiss[class]
	if n == 0 {
		return 0
	}
	return float64(r.DeadlineMiss[class]) / float64(n)
}

// Merge folds o into r.
func (r *RobustResults) Merge(o *RobustResults) {
	r.Enabled = r.Enabled || o.Enabled
	for i := 0; i < NumSLOClasses; i++ {
		r.DeadlineMet[i] += o.DeadlineMet[i]
		r.DeadlineMiss[i] += o.DeadlineMiss[i]
		r.ClassResp[i].Merge(&o.ClassResp[i])
		r.Shed[i] += o.Shed[i]
	}
	r.Retries += o.Retries
	r.RetriesExhausted += o.RetriesExhausted
	r.AttemptsExhausted += o.AttemptsExhausted
	r.Hedges += o.Hedges
	r.HedgeWins += o.HedgeWins
	r.HedgeLosses += o.HedgeLosses
}

// initRobust arms the robustness layer from the array config. The rng
// source is allocated only when a feature is on, so disabled configs
// consume no randomness.
func (c *common) initRobust() {
	c.rb.cfg = c.cfg.Robust
	c.rb.on = c.cfg.Robust.Enabled()
	if c.rb.on {
		c.rb.src = rng.New(c.cfg.Seed ^ 0x5105510551055105)
	}
}

// robustResults snapshots the accounting.
func (c *common) robustResults() RobustResults {
	return RobustResults{
		Enabled:           c.rb.on,
		DeadlineMet:       c.rb.deadlineMet,
		DeadlineMiss:      c.rb.deadlineMiss,
		ClassResp:         c.rb.classResp,
		Shed:              c.rb.shed,
		Retries:           c.rb.retries,
		RetriesExhausted:  c.rb.retriesExhausted,
		AttemptsExhausted: c.rb.attemptsExhausted,
		Hedges:            c.rb.hedges,
		HedgeWins:         c.rb.hedgeWins,
		HedgeLosses:       c.rb.hedgeLosses,
	}
}

// finishRobust is the completion-side hook: class response accounting,
// deadline verdict, and the read-response histogram the hedge delay is
// derived from. Called from finish for every completed request when the
// layer is on.
func (c *common) finishRobust(r Request, start sim.Time) {
	now := c.eng.Now()
	ms := sim.Millis(now - start)
	if r.Op == trace.Read {
		c.rb.readHist.Add(ms)
	}
	if start < c.cfg.Warmup {
		return
	}
	class := r.Class
	if class < 0 || class >= NumSLOClasses {
		class = SLOGold
	}
	c.rb.classResp[class].Add(ms)
	dl := c.rb.cfg.deadlineFor(class)
	if dl <= 0 {
		return
	}
	if now-start > dl {
		c.rb.deadlineMiss[class]++
		c.cfg.Rec.Timeout(now, int(class), ms)
	} else {
		c.rb.deadlineMet[class]++
	}
}

// maybeShed is the admission-side hook: under overload (deep disk queues
// or a dirty-saturated cache), batch-class requests are rejected before
// any resource is committed. The rejected request's OnComplete still
// fires (asynchronously, as callers expect) so closed-loop drivers keep
// running; it is counted as shed, not completed.
func (c *common) maybeShed(r Request) bool {
	if !c.rb.on || r.Class != SLOBatch {
		return false
	}
	cfg := &c.rb.cfg
	over := false
	if cfg.ShedQueue > 0 {
		depth := 0
		for _, d := range c.disks {
			depth += d.QueueLen()
		}
		over = depth >= cfg.ShedQueue
	}
	if !over && cfg.ShedDirty > 0 && c.dirtyFrac != nil {
		over = c.dirtyFrac() >= cfg.ShedDirty
	}
	if !over {
		return false
	}
	c.rb.shed[SLOBatch]++
	if int(r.CClass) < len(c.cls) {
		c.cls[r.CClass].shed++
	}
	c.cfg.Rec.Shed(c.eng.Now(), int(SLOBatch), r.Op != trace.Read)
	if r.OnComplete != nil {
		c.eng.After(0, r.OnComplete)
	}
	return true
}

// retryDelay returns the backoff before retry attempt att (0-based):
// full jitter over an exponentially growing window.
func (c *common) retryDelay(att int) sim.Time {
	w := c.rb.cfg.RetryBackoff << uint(att)
	if w <= 0 {
		return 0
	}
	return sim.Time(c.rb.src.Float64() * float64(w))
}

// hedger is the optional scheme capability behind hedged reads: schemes
// with an independent replica of every run (the mirror family) return
// the partner run to race against the primary.
type hedger interface {
	hedgeAlt(rn run) (run, bool)
}

// hedgeDelay returns how long a read may stay unanswered before its
// hedge leg is dispatched: the configured response quantile once enough
// samples exist, else the fixed HedgeAfter (0 = hedging not yet armed).
func (c *common) hedgeDelay() sim.Time {
	cfg := &c.rb.cfg
	if cfg.HedgeQuantile > 0 && c.rb.readHist.N() >= 32 {
		return sim.Time(c.rb.readHist.Quantile(cfg.HedgeQuantile) * float64(sim.Millisecond))
	}
	return cfg.HedgeAfter
}

// hedgeOp tracks one hedged read: the primary leg, the (possibly
// cancelled) hedge timer, and the speculative leg. First completion
// wins; the loser's disk access still finishes but its callback is
// swallowed here.
type hedgeOp struct {
	c      *common
	alt    run // the partner-copy run the hedge leg reads
	pri    disk.Priority
	op     *obs.Span // the primary's device-op span; legs nest beneath it
	onDone func()

	timer  *sim.Call // pending hedge dispatch; nil once fired or cancelled
	issued bool      // the hedge leg was dispatched
	done   bool      // a leg already won
}

// readRunHedged issues a foreground read run with hedging when armed:
// the primary leg goes out immediately, and a timer dispatches the
// partner-copy leg if the primary is still unanswered after the hedge
// delay. Falls back to the plain failure-aware path whenever hedging
// does not apply.
func (c *common) readRunHedged(rn run, pri disk.Priority, op *obs.Span, onDone func()) {
	if !c.rb.on || !c.rb.cfg.hedging() {
		c.readRun(rn, pri, op, onDone)
		return
	}
	hg, ok := c.sch.(hedger)
	if !ok {
		c.readRun(rn, pri, op, onDone)
		return
	}
	if c.fs.nfailed > 0 && (c.fs.failed[rn.disk] || c.fs.failed[rn.disk^1]) {
		// Degraded pair: the failover machinery owns this read.
		c.readRun(rn, pri, op, onDone)
		return
	}
	alt, ok := hg.hedgeAlt(rn)
	if !ok {
		c.readRun(rn, pri, op, onDone)
		return
	}
	delay := c.hedgeDelay()
	if delay <= 0 {
		c.readRun(rn, pri, op, onDone)
		return
	}
	h := &hedgeOp{c: c, alt: alt, pri: pri, op: op, onDone: onDone}
	h.timer = c.eng.AfterCall(delay, hedgeFire)
	h.timer.A = h
	c.readRun(rn, pri, op, func() { h.settle(false) })
}

// hedgeFire dispatches the speculative leg: A = the hedgeOp.
func hedgeFire(_ *sim.Engine, cl *sim.Call) {
	h := cl.A.(*hedgeOp)
	h.timer = nil
	if h.done {
		return
	}
	c := h.c
	h.issued = true
	c.rb.hedges++
	c.rb.hedgeLegs++
	c.cfg.Rec.HedgeIssued(c.eng.Now(), h.alt.disk)
	var leg *obs.Span
	if h.op != nil {
		leg = h.op.Child("hedge-read", c.eng.Now())
		leg.SetDisk(h.alt.disk)
		leg.SetBlocks(h.alt.blocks)
	}
	c.mediaRead(h.alt, h.pri, 0, 0, leg, func() { h.settle(true) })
}

// settle resolves one leg's completion: the first caller wins and runs
// the request's continuation, the loser is counted and swallowed. A
// primary win before the hedge delay cancels the pending timer, so its
// event never fires and its payload recycles cleanly.
func (h *hedgeOp) settle(fromHedge bool) {
	c := h.c
	if fromHedge {
		c.rb.hedgeLegs--
	}
	if h.done {
		if fromHedge {
			c.rb.hedgeLosses++
		}
		return
	}
	h.done = true
	if h.timer != nil {
		c.eng.Cancel(h.timer)
		h.timer = nil
	}
	if fromHedge {
		c.rb.hedgeWins++
		c.cfg.Rec.HedgeWon(c.eng.Now(), h.alt.disk)
	}
	h.onDone()
}

// hedgeAlt implements hedger for the mirror family: the partner copy of
// any physical run lives at the same offset on disk^1. Only healthy
// pairs hedge.
func (s *mirrorScheme) hedgeAlt(rn run) (run, bool) {
	alt := rn.disk ^ 1
	if s.c.fs.nfailed > 0 && (s.c.fs.failed[rn.disk] || s.c.fs.failed[alt]) {
		return run{}, false
	}
	return run{disk: alt, start: rn.start, blocks: rn.blocks}, true
}
