package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/fault"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
)

// faultState is the controller side of fault injection: which slots are
// dead or rebuilding and the accounting the fault report is built from.
// The organization-specific degraded-mode behavior lives in the scheme
// (onFail / rebuildSources / readFallback); common dispatches to it.
// Every common carries a faultState (with allocated slices) so the hot
// path can test fs.nfailed without a nil check; fs.inj stays nil when no
// faults are configured.
type faultState struct {
	inj        *fault.Injector
	failed     []bool      // slot is not readable (dead, or spare mid-rebuild)
	rebuilding []bool      // slot holds a spare being swept; writes go to it
	rbSpan     []*obs.Span // open per-slot rebuild root spans (nil entries when untraced)
	nfailed    int
	spares     int

	// onCacheFail handles NVRAM cache death (cached controllers only).
	onCacheFail func()

	degraded stats.Windows

	failures           int64
	cacheFailures      int64
	sparesUsed         int64
	rebuilds           int64
	rebuildBusy        sim.Time
	dataLossEvents     int64
	lostReadBlocks     int64
	lostWriteBlocks    int64
	dirtyLost          int64
	sectorErrors       int64
	sectorRetries      int64
	sectorReconstructs int64
	failoverReads      int64

	// Sick-disk accounting (drives that limp without dying).
	sickOnsets      int64
	sickClears      int64
	hangs           int64
	transientErrors int64
}

// FaultResults snapshots the fault-injection accounting for reports.
type FaultResults struct {
	Enabled       bool
	Failures      int64 // disk failures injected
	CacheFailures int64
	SparesUsed    int64
	Rebuilds      int64    // rebuild sweeps completed
	RebuildTime   sim.Time // total wall time spent rebuilding
	RebuildActive bool     // a sweep was still running at snapshot time

	DegradedTime    sim.Time // total time with >= 1 slot unreadable
	DegradedWindows int
	DegradedActive  bool

	DataLossEvents     int64 // failures that lost data (no surviving redundancy)
	LostReadBlocks     int64 // reads answered with unrecoverable blocks
	LostWriteBlocks    int64 // writes with no surviving place to land
	DirtyBlocksLost    int64 // dirty cache blocks lost to NVRAM failure
	SectorErrors       int64
	SectorRetries      int64
	SectorReconstructs int64
	FailoverReads      int64 // mirror reads redirected to the surviving copy

	SickOnsets      int64 // sick-disk episodes that started
	SickClears      int64 // sick-disk episodes that ended
	Hangs           int64 // intermittent drive freezes injected
	TransientErrors int64 // media passes that failed transiently
}

func (c *common) degradedNow() bool { return c.fs.nfailed > 0 }

// writeDown reports whether writes to slot d have nowhere to go. A
// rebuilding slot accepts writes (the spare must stay current with
// foreground traffic) even though it is not yet readable.
func (c *common) writeDown(d int) bool { return c.fs.failed[d] && !c.fs.rebuilding[d] }

// FailDisk implements fault.Handler: slot d dies now. Queued accesses are
// dropped by the drive (their callbacks still fire); subsequent reads are
// served from redundancy via the scheme's readFallback and writes degrade
// per the scheme's mapping. With a spare available the slot is swapped
// immediately and a background rebuild sweep starts. Idempotent.
func (c *common) FailDisk(d int) {
	if d < 0 || d >= len(c.disks) || c.fs.failed[d] {
		return
	}
	now := c.eng.Now()
	c.fs.failures++
	c.fs.failed[d] = true
	c.fs.nfailed++
	c.fs.degraded.Open(now)
	c.cfg.Rec.Degraded(now, true)
	c.cfg.Rec.Note(obs.Event{At: now, Kind: obs.EvDiskFail, Disk: d})
	c.disks[d].Fail()
	if c.sch != nil {
		c.sch.onFail(d)
	}
	if c.fs.spares <= 0 {
		return
	}
	c.fs.spares--
	c.fs.sparesUsed++
	c.cfg.Rec.Note(obs.Event{At: now, Kind: obs.EvSpareSwap, Disk: d})
	c.disks[d].Repair()
	var srcs []int
	if c.sch != nil {
		srcs = c.sch.rebuildSources(d)
	}
	if len(srcs) == 0 {
		// Nothing to reconstruct from: the spare goes straight into
		// service empty (the lost contents were already accounted by
		// onFail).
		c.completeRepair(d)
		return
	}
	c.fs.rebuilding[d] = true
	if c.tr != nil {
		c.fs.rbSpan[d] = c.tr.StartBackground("rebuild", now)
		c.fs.rbSpan[d].SetDisk(d)
	}
	c.sweepRebuild(d, 0, now)
}

// FailCache implements fault.Handler. Non-cached organizations ignore it.
func (c *common) FailCache() {
	if c.fs.onCacheFail == nil {
		return
	}
	c.fs.cacheFailures++
	c.fs.onCacheFail()
}

// SickDisk implements fault.SickHandler: slot d starts limping now —
// slower service and (via the injector's transient sampling) flaky media
// passes. A dead slot can still turn sick; the symptoms apply to the
// spare if one is swapped in.
func (c *common) SickDisk(s fault.SickDisk) {
	if s.Disk < 0 || s.Disk >= len(c.disks) {
		return
	}
	c.fs.sickOnsets++
	if s.SlowFactor > 1 {
		c.disks[s.Disk].SetSlowFactor(s.SlowFactor)
	}
	c.cfg.Rec.Note(obs.Event{At: c.eng.Now(), Kind: obs.EvSickOnset, Disk: s.Disk})
}

// SickClear implements fault.SickHandler: slot d recovers.
func (c *common) SickClear(d int) {
	if d < 0 || d >= len(c.disks) {
		return
	}
	c.fs.sickClears++
	c.disks[d].SetSlowFactor(1)
	c.cfg.Rec.Note(obs.Event{At: c.eng.Now(), Kind: obs.EvSickClear, Disk: d})
}

// HangDisk implements fault.SickHandler: slot d freezes until the given
// time (in-flight service finishes; nothing new is scheduled).
func (c *common) HangDisk(d int, until sim.Time) {
	if d < 0 || d >= len(c.disks) {
		return
	}
	c.fs.hangs++
	c.disks[d].Hang(until)
}

// completeRepair puts slot d back in service.
func (c *common) completeRepair(d int) {
	now := c.eng.Now()
	if sp := c.fs.rbSpan[d]; sp != nil {
		c.tr.FinishBackground(sp, now)
		c.fs.rbSpan[d] = nil
	}
	c.cfg.Rec.RebuildProgress(d, 1)
	c.fs.rebuilding[d] = false
	c.fs.failed[d] = false
	c.fs.nfailed--
	c.fs.degraded.Close(now)
	if c.fs.nfailed == 0 {
		c.cfg.Rec.Degraded(now, false)
	}
	c.cfg.Rec.Note(obs.Event{At: now, Kind: obs.EvRebuildDone, Disk: d})
	if c.fs.inj != nil {
		c.fs.inj.DiskReplaced(d)
	}
}

// sweepRebuild reconstructs physical blocks [pos, pos+chunk) of slot d
// from its surviving sources at background priority, then pauses and
// recurses — the same throttled sweep internal/recovery models, but
// driven by a mid-run failure rather than a pre-failed configuration.
func (c *common) sweepRebuild(d int, pos int64, started sim.Time) {
	bpd := c.cfg.Spec.BlocksPerDisk()
	if pos >= bpd {
		c.fs.rebuilds++
		c.fs.rebuildBusy += c.eng.Now() - started
		c.completeRepair(d)
		return
	}
	srcs := c.sch.rebuildSources(d)
	if len(srcs) == 0 {
		// A source died mid-sweep; reconstruction can no longer finish
		// (that failure counted the data loss). Abandon the sweep and put
		// the spare in service as-is.
		c.fs.rebuildBusy += c.eng.Now() - started
		c.completeRepair(d)
		return
	}
	n := c.cfg.RebuildChunk
	if pos+int64(n) > bpd {
		n = int(bpd - pos)
	}
	// Each chunk is its own background span tree (read legs from the
	// sources, then the write onto the spare); the sweep-wide "rebuild"
	// root in fs.rbSpan brackets the whole recovery.
	var chunk *obs.Span
	if c.tr != nil {
		chunk = c.tr.StartBackground("rebuild-chunk", c.eng.Now())
		chunk.SetDisk(d)
		chunk.SetBlocks(n)
	}
	read := newLatch(len(srcs), func() {
		var wr *obs.Span
		if chunk != nil {
			wr = chunk.Child("rebuild-write", c.eng.Now())
			wr.SetBlocks(n)
		}
		c.disks[d].Submit(&disk.Request{
			StartBlock: pos, Blocks: n, Write: true,
			Priority: disk.PriBackground, Span: wr,
			OnDone: func() {
				c.cfg.Rec.RebuildIO(c.eng.Now(), n)
				c.cfg.Rec.RebuildProgress(d, float64(pos+int64(n))/float64(bpd))
				if chunk != nil {
					c.tr.FinishBackground(chunk, c.eng.Now())
				}
				next := func() { c.sweepRebuild(d, pos+int64(n), started) }
				if c.cfg.RebuildPause > 0 {
					c.eng.After(c.cfg.RebuildPause, next)
				} else {
					next()
				}
			},
		})
	})
	for _, s := range srcs {
		var rd *obs.Span
		if chunk != nil {
			rd = chunk.Child("rebuild-read", c.eng.Now())
			rd.SetBlocks(n)
		}
		c.disks[s].Submit(&disk.Request{
			StartBlock: pos, Blocks: n,
			Priority: disk.PriBackground, Span: rd, OnDone: read.done,
		})
	}
}

// RebuildActive reports whether any slot is still being swept; the run
// loop keeps the clock advancing until rebuilds finish.
func (c *common) RebuildActive() bool {
	for _, r := range c.fs.rebuilding {
		if r {
			return true
		}
	}
	return false
}

// readRun issues one read run, transparently absorbing failed drives
// (redundancy fallback) and latent sector errors (bounded retry, then
// fallback). All controller read paths funnel through here. op is the
// device-op trace span the access runs under (nil when untraced);
// recovery legs nest beneath it.
func (c *common) readRun(rn run, pri disk.Priority, op *obs.Span, onDone func()) {
	if c.fs.nfailed > 0 && c.fs.failed[rn.disk] {
		c.fallbackRead(rn, pri, op, onDone)
		return
	}
	c.mediaRead(rn, pri, 0, 0, op, onDone)
}

// mediaRead issues one device read pass. tries counts latent-sector-
// error retries (injector-bounded), att counts transient-error retries
// (robustness-layer-bounded, with backoff) — independent budgets for
// independent failure modes.
func (c *common) mediaRead(rn run, pri disk.Priority, tries, att int, op *obs.Span, onDone func()) {
	c.disks[rn.disk].Submit(&disk.Request{
		StartBlock: rn.start, Blocks: rn.blocks, Priority: pri, Span: op,
		OnDone: func() {
			// The drive may have died while this access was queued (it was
			// dropped) — the "data" cannot be trusted either way.
			if c.fs.nfailed > 0 && c.fs.failed[rn.disk] {
				c.fallbackRead(rn, pri, op, onDone)
				return
			}
			if c.fs.inj != nil && c.fs.inj.TransientFaulty(rn.disk, rn.blocks) {
				c.fs.transientErrors++
				if att < c.rb.cfg.Retries {
					c.rb.retries++
					c.cfg.Rec.Retry(c.eng.Now(), rn.disk, att+1)
					issuedAt := c.eng.Now()
					c.eng.After(c.retryDelay(att), func() {
						if now := c.eng.Now(); now > issuedAt {
							op.ChildSpan("retry-backoff", issuedAt, now)
						}
						c.mediaRead(rn, pri, tries, att+1, op, onDone)
					})
					return
				}
				// Budget spent (or no retries configured): recover the run
				// from redundancy instead of hammering the sick drive.
				if c.rb.cfg.Retries > 0 {
					c.rb.retriesExhausted++
					c.rb.attemptsExhausted += int64(c.rb.cfg.Retries)
				}
				c.fallbackRead(rn, pri, op, onDone)
				return
			}
			if c.fs.inj == nil || !c.fs.inj.SectorFaulty(rn.blocks) {
				onDone()
				return
			}
			c.fs.sectorErrors++
			if tries < c.fs.inj.MaxReadRetries() {
				c.fs.sectorRetries++
				c.mediaRead(rn, pri, tries+1, att, op, onDone)
				return
			}
			c.fs.sectorReconstructs++
			c.fallbackRead(rn, pri, op, onDone)
		},
	})
}

// fallbackRead recovers a read run from redundancy, or counts it lost.
func (c *common) fallbackRead(rn run, pri disk.Priority, op *obs.Span, onDone func()) {
	done := onDone
	if op != nil {
		done = func() { op.CloseAt(c.eng.Now()); onDone() }
	}
	if c.sch != nil && c.sch.readFallback(rn, pri, op, done) {
		return
	}
	c.fs.lostReadBlocks += int64(rn.blocks)
	c.cfg.Rec.Note(obs.Event{At: c.eng.Now(), Kind: obs.EvDataLoss, Disk: rn.disk, Blocks: rn.blocks})
	c.eng.After(0, done)
}

// filterWriteRuns drops runs whose target slot is gone (dead with no
// rebuilding spare), returning the survivors and the dropped block count.
// Used by the non-parity schemes; whether a dropped run means data loss
// depends on redundancy, so the caller does that accounting.
func (c *common) filterWriteRuns(runs []run) ([]run, int) {
	if c.fs.nfailed == 0 {
		return runs, 0
	}
	out := runs[:0]
	dropped := 0
	for _, rn := range runs {
		if c.writeDown(rn.disk) {
			dropped += rn.blocks
			continue
		}
		out = append(out, rn)
	}
	return out, dropped
}

// faultResults snapshots the accounting.
func (c *common) faultResults() FaultResults {
	now := c.eng.Now()
	return FaultResults{
		Enabled:            c.fs.inj != nil || c.cfg.Spares > 0,
		Failures:           c.fs.failures,
		CacheFailures:      c.fs.cacheFailures,
		SparesUsed:         c.fs.sparesUsed,
		Rebuilds:           c.fs.rebuilds,
		RebuildTime:        c.fs.rebuildBusy,
		RebuildActive:      c.RebuildActive(),
		DegradedTime:       c.fs.degraded.Total(now),
		DegradedWindows:    c.fs.degraded.Count(),
		DegradedActive:     c.fs.degraded.Active(),
		DataLossEvents:     c.fs.dataLossEvents,
		LostReadBlocks:     c.fs.lostReadBlocks,
		LostWriteBlocks:    c.fs.lostWriteBlocks,
		DirtyBlocksLost:    c.fs.dirtyLost,
		SectorErrors:       c.fs.sectorErrors,
		SectorRetries:      c.fs.sectorRetries,
		SectorReconstructs: c.fs.sectorReconstructs,
		FailoverReads:      c.fs.failoverReads,
		SickOnsets:         c.fs.sickOnsets,
		SickClears:         c.fs.sickClears,
		Hangs:              c.fs.hangs,
		TransientErrors:    c.fs.transientErrors,
	}
}
