package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/fault"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
)

// faultState is the controller side of fault injection: which slots are
// dead or rebuilding, the organization-specific degraded-mode hooks, and
// the accounting the fault report is built from. Every common carries one
// (with allocated slices) so the hot path can test fs.nfailed without a
// nil check; fs.inj stays nil when no faults are configured.
type faultState struct {
	inj        *fault.Injector
	failed     []bool // slot is not readable (dead, or spare mid-rebuild)
	rebuilding []bool // slot holds a spare being swept; writes go to it
	nfailed    int
	spares     int

	// Organization-specific hooks, set by the fault*() installers below.
	// rebuildSources lists the disks a rebuild of slot d reads from: nil
	// means reconstruction is impossible (no redundancy, or a needed
	// source is also dead) and the spare goes into service as-is.
	rebuildSources func(d int) []int
	// onFail classifies a fresh failure of slot d (failed[d] is already
	// set): it counts data-loss events.
	onFail func(d int)
	// readFallback serves a read run whose home disk is unreadable from
	// redundancy; it returns false when the data is unrecoverable.
	readFallback func(rn run, pri disk.Priority, onDone func()) bool
	// onCacheFail handles NVRAM cache death (cached controllers only).
	onCacheFail func()

	degraded stats.Windows

	failures           int64
	cacheFailures      int64
	sparesUsed         int64
	rebuilds           int64
	rebuildBusy        sim.Time
	dataLossEvents     int64
	lostReadBlocks     int64
	lostWriteBlocks    int64
	dirtyLost          int64
	sectorErrors       int64
	sectorRetries      int64
	sectorReconstructs int64
	failoverReads      int64
}

// FaultResults snapshots the fault-injection accounting for reports.
type FaultResults struct {
	Enabled       bool
	Failures      int64 // disk failures injected
	CacheFailures int64
	SparesUsed    int64
	Rebuilds      int64    // rebuild sweeps completed
	RebuildTime   sim.Time // total wall time spent rebuilding
	RebuildActive bool     // a sweep was still running at snapshot time

	DegradedTime    sim.Time // total time with >= 1 slot unreadable
	DegradedWindows int
	DegradedActive  bool

	DataLossEvents     int64 // failures that lost data (no surviving redundancy)
	LostReadBlocks     int64 // reads answered with unrecoverable blocks
	LostWriteBlocks    int64 // writes with no surviving place to land
	DirtyBlocksLost    int64 // dirty cache blocks lost to NVRAM failure
	SectorErrors       int64
	SectorRetries      int64
	SectorReconstructs int64
	FailoverReads      int64 // mirror reads redirected to the surviving copy
}

func (c *common) degradedNow() bool { return c.fs.nfailed > 0 }

// writeDown reports whether writes to slot d have nowhere to go. A
// rebuilding slot accepts writes (the spare must stay current with
// foreground traffic) even though it is not yet readable.
func (c *common) writeDown(d int) bool { return c.fs.failed[d] && !c.fs.rebuilding[d] }

// FailDisk implements fault.Handler: slot d dies now. Queued accesses are
// dropped by the drive (their callbacks still fire); subsequent reads are
// served from redundancy via readFallback and writes degrade per
// organization. With a spare available the slot is swapped immediately
// and a background rebuild sweep starts. Idempotent.
func (c *common) FailDisk(d int) {
	if d < 0 || d >= len(c.disks) || c.fs.failed[d] {
		return
	}
	now := c.eng.Now()
	c.fs.failures++
	c.fs.failed[d] = true
	c.fs.nfailed++
	c.fs.degraded.Open(now)
	c.disks[d].Fail()
	if c.fs.onFail != nil {
		c.fs.onFail(d)
	}
	if c.fs.spares <= 0 {
		return
	}
	c.fs.spares--
	c.fs.sparesUsed++
	c.disks[d].Repair()
	var srcs []int
	if c.fs.rebuildSources != nil {
		srcs = c.fs.rebuildSources(d)
	}
	if len(srcs) == 0 {
		// Nothing to reconstruct from: the spare goes straight into
		// service empty (the lost contents were already accounted by
		// onFail).
		c.completeRepair(d)
		return
	}
	c.fs.rebuilding[d] = true
	c.sweepRebuild(d, 0, now)
}

// FailCache implements fault.Handler. Non-cached organizations ignore it.
func (c *common) FailCache() {
	if c.fs.onCacheFail == nil {
		return
	}
	c.fs.cacheFailures++
	c.fs.onCacheFail()
}

// completeRepair puts slot d back in service.
func (c *common) completeRepair(d int) {
	c.fs.rebuilding[d] = false
	c.fs.failed[d] = false
	c.fs.nfailed--
	c.fs.degraded.Close(c.eng.Now())
	if c.fs.inj != nil {
		c.fs.inj.DiskReplaced(d)
	}
}

// sweepRebuild reconstructs physical blocks [pos, pos+chunk) of slot d
// from its surviving sources at background priority, then pauses and
// recurses — the same throttled sweep internal/recovery models, but
// driven by a mid-run failure rather than a pre-failed configuration.
func (c *common) sweepRebuild(d int, pos int64, started sim.Time) {
	bpd := c.cfg.Spec.BlocksPerDisk()
	if pos >= bpd {
		c.fs.rebuilds++
		c.fs.rebuildBusy += c.eng.Now() - started
		c.completeRepair(d)
		return
	}
	srcs := c.fs.rebuildSources(d)
	if len(srcs) == 0 {
		// A source died mid-sweep; reconstruction can no longer finish
		// (that failure counted the data loss). Abandon the sweep and put
		// the spare in service as-is.
		c.fs.rebuildBusy += c.eng.Now() - started
		c.completeRepair(d)
		return
	}
	n := c.cfg.RebuildChunk
	if pos+int64(n) > bpd {
		n = int(bpd - pos)
	}
	read := newLatch(len(srcs), func() {
		c.disks[d].Submit(&disk.Request{
			StartBlock: pos, Blocks: n, Write: true,
			Priority: disk.PriBackground,
			OnDone: func() {
				next := func() { c.sweepRebuild(d, pos+int64(n), started) }
				if c.cfg.RebuildPause > 0 {
					c.eng.After(c.cfg.RebuildPause, next)
				} else {
					next()
				}
			},
		})
	})
	for _, s := range srcs {
		c.disks[s].Submit(&disk.Request{
			StartBlock: pos, Blocks: n,
			Priority: disk.PriBackground, OnDone: read.done,
		})
	}
}

// RebuildActive reports whether any slot is still being swept; the run
// loop keeps the clock advancing until rebuilds finish.
func (c *common) RebuildActive() bool {
	for _, r := range c.fs.rebuilding {
		if r {
			return true
		}
	}
	return false
}

// readRun issues one read run, transparently absorbing failed drives
// (redundancy fallback) and latent sector errors (bounded retry, then
// fallback). All controller read paths funnel through here.
func (c *common) readRun(rn run, pri disk.Priority, onDone func()) {
	if c.fs.nfailed > 0 && c.fs.failed[rn.disk] {
		c.fallbackRead(rn, pri, onDone)
		return
	}
	c.mediaRead(rn, pri, 0, onDone)
}

func (c *common) mediaRead(rn run, pri disk.Priority, tries int, onDone func()) {
	c.disks[rn.disk].Submit(&disk.Request{
		StartBlock: rn.start, Blocks: rn.blocks, Priority: pri,
		OnDone: func() {
			// The drive may have died while this access was queued (it was
			// dropped) — the "data" cannot be trusted either way.
			if c.fs.nfailed > 0 && c.fs.failed[rn.disk] {
				c.fallbackRead(rn, pri, onDone)
				return
			}
			if c.fs.inj == nil || !c.fs.inj.SectorFaulty(rn.blocks) {
				onDone()
				return
			}
			c.fs.sectorErrors++
			if tries < c.fs.inj.MaxReadRetries() {
				c.fs.sectorRetries++
				c.mediaRead(rn, pri, tries+1, onDone)
				return
			}
			c.fs.sectorReconstructs++
			c.fallbackRead(rn, pri, onDone)
		},
	})
}

// fallbackRead recovers a read run from redundancy, or counts it lost.
func (c *common) fallbackRead(rn run, pri disk.Priority, onDone func()) {
	if c.fs.readFallback != nil && c.fs.readFallback(rn, pri, onDone) {
		return
	}
	c.fs.lostReadBlocks += int64(rn.blocks)
	c.eng.After(0, onDone)
}

// faultPlain installs the hooks for redundancy-free organizations (Base,
// RAID0): every drive failure is a data-loss event and reads of its
// blocks are unrecoverable.
func (c *common) faultPlain() {
	c.fs.onFail = func(int) { c.fs.dataLossEvents++ }
}

// faultMirror installs mirrored-pair hooks: reads fail over to the
// partner copy (primary 2d, secondary 2d+1 — partners differ in the low
// bit), a dead slot rebuilds by copying the partner, and data is lost
// only when both copies of a pair are down.
func (c *common) faultMirror() {
	c.fs.onFail = func(d int) {
		if c.fs.failed[d^1] {
			c.fs.dataLossEvents++
		}
	}
	c.fs.rebuildSources = func(d int) []int {
		if c.fs.failed[d^1] {
			return nil
		}
		return []int{d ^ 1}
	}
	c.fs.readFallback = func(rn run, pri disk.Priority, onDone func()) bool {
		alt := rn.disk ^ 1
		if c.fs.failed[alt] {
			return false
		}
		c.fs.failoverReads++
		c.mediaRead(run{disk: alt, start: rn.start, blocks: rn.blocks}, pri, 0, onDone)
		return true
	}
}

// faultParity installs N+1 parity hooks (RAID5, RAID4, Parity Striping):
// reads of a dead disk reconstruct from the surviving members plus
// parity, a rebuild reads every other disk, and a second concurrent
// failure loses data.
func (c *common) faultParity(lay layout.ParityLayout) {
	c.fs.onFail = func(d int) {
		for i := range c.disks {
			if i != d && c.fs.failed[i] {
				c.fs.dataLossEvents++
				break
			}
		}
	}
	c.fs.rebuildSources = func(d int) []int {
		srcs := make([]int, 0, len(c.disks)-1)
		for i := range c.disks {
			if i == d {
				continue
			}
			if c.fs.failed[i] {
				return nil
			}
			srcs = append(srcs, i)
		}
		return srcs
	}
	c.fs.readFallback = func(rn run, pri disk.Priority, onDone func()) bool {
		// Reconstruct each lost logical block: read its surviving stripe
		// members and the stripe's parity block, XOR in the controller.
		// Physical runs with no logical blocks attached (rebuild traffic)
		// have nothing to map and recover for free.
		var srcs []layout.Loc
		for _, l := range rn.lbas {
			for _, m := range lay.StripeMembers(l) {
				if m == l {
					continue
				}
				loc := lay.Map(m)
				if c.fs.failed[loc.Disk] {
					return false
				}
				srcs = append(srcs, loc)
			}
			p := lay.Parity(l)
			if c.fs.failed[p.Disk] {
				return false
			}
			srcs = append(srcs, p)
		}
		done := newLatch(len(srcs), onDone)
		for _, s := range srcs {
			c.mediaRead(run{disk: s.Disk, start: s.Block, blocks: 1}, pri, 0, done.done)
		}
		return true
	}
}

// filterWriteRuns drops runs whose target slot is gone (dead with no
// rebuilding spare), returning the survivors and the dropped block count.
// Used by the non-parity organizations; whether a dropped run means data
// loss depends on redundancy, so the caller does that accounting.
func (c *common) filterWriteRuns(runs []run) ([]run, int) {
	if c.fs.nfailed == 0 {
		return runs, 0
	}
	out := runs[:0]
	dropped := 0
	for _, rn := range runs {
		if c.writeDown(rn.disk) {
			dropped += rn.blocks
			continue
		}
		out = append(out, rn)
	}
	return out, dropped
}

// degradedUpdate applies a batch of block writes to a parity layout with
// failures present, block at a time (run merging and policy scheduling
// don't survive the per-block case analysis).
func (c *common) degradedUpdate(lay layout.ParityLayout, lbas []int64, pri disk.Priority, onDone func()) {
	done := newLatch(len(lbas), onDone)
	for _, l := range lbas {
		c.degradedWriteBlock(lay, l, pri, done.done)
	}
}

// degradedWriteBlock writes one logical block to a parity layout under
// failures, mirroring the degraded-mode cases internal/recovery models:
//
//   - home dead, parity alive: fold the write into parity — read the
//     surviving stripe members, then overwrite parity with
//     XOR(new data, survivors).
//   - parity dead, home alive: plain data write, no parity to maintain.
//   - both alive (or rebuilding): the usual data-RMW + parity-RMW pair,
//     disk-first style.
//   - both dead: the write has nowhere to land.
func (c *common) degradedWriteBlock(lay layout.ParityLayout, l int64, pri disk.Priority, onDone func()) {
	home := lay.Map(l)
	p := lay.Parity(l)
	homeDown := c.writeDown(home.Disk)
	parityDown := c.writeDown(p.Disk)
	switch {
	case homeDown && parityDown:
		c.fs.lostWriteBlocks++
		c.eng.After(0, onDone)
	case homeDown:
		var srcs []layout.Loc
		for _, m := range lay.StripeMembers(l) {
			if m == l {
				continue
			}
			loc := lay.Map(m)
			if c.fs.failed[loc.Disk] {
				// A second data disk is dead too; the stripe cannot hold
				// this write.
				c.fs.lostWriteBlocks++
				c.eng.After(0, onDone)
				return
			}
			srcs = append(srcs, loc)
		}
		c.parityAccesses++
		read := newLatch(len(srcs), func() {
			c.disks[p.Disk].Submit(&disk.Request{
				StartBlock: p.Block, Blocks: 1, Write: true,
				Priority: pri, OnDone: onDone,
			})
		})
		for _, s := range srcs {
			c.mediaRead(run{disk: s.Disk, start: s.Block, blocks: 1}, pri, 0, read.done)
		}
	case parityDown:
		c.disks[home.Disk].Submit(&disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true,
			Priority: pri, OnDone: onDone,
		})
	default:
		readDone := false
		c.parityAccesses++
		all := newLatch(2, onDone)
		dreq := &disk.Request{
			StartBlock: home.Block, Blocks: 1, Write: true, RMW: true,
			Priority:   pri,
			OnReadDone: func() { readDone = true },
			OnDone:     all.done,
		}
		dreq.OnStart = func() {
			c.disks[p.Disk].Submit(&disk.Request{
				StartBlock: p.Block, Blocks: 1, Write: true, RMW: true,
				Priority: pri, Ready: func() bool { return readDone },
				OnDone: all.done,
			})
		}
		c.disks[home.Disk].Submit(dreq)
	}
}

// faultResults snapshots the accounting.
func (c *common) faultResults() FaultResults {
	now := c.eng.Now()
	return FaultResults{
		Enabled:            c.fs.inj != nil || c.cfg.Spares > 0,
		Failures:           c.fs.failures,
		CacheFailures:      c.fs.cacheFailures,
		SparesUsed:         c.fs.sparesUsed,
		Rebuilds:           c.fs.rebuilds,
		RebuildTime:        c.fs.rebuildBusy,
		RebuildActive:      c.RebuildActive(),
		DegradedTime:       c.fs.degraded.Total(now),
		DegradedWindows:    c.fs.degraded.Count(),
		DegradedActive:     c.fs.degraded.Active(),
		DataLossEvents:     c.fs.dataLossEvents,
		LostReadBlocks:     c.fs.lostReadBlocks,
		LostWriteBlocks:    c.fs.lostWriteBlocks,
		DirtyBlocksLost:    c.fs.dirtyLost,
		SectorErrors:       c.fs.sectorErrors,
		SectorRetries:      c.fs.sectorRetries,
		SectorReconstructs: c.fs.sectorReconstructs,
		FailoverReads:      c.fs.failoverReads,
	}
}
