package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/trace"
)

// raid3Ctrl models the byte-interleaved RAID3 comparator from the related
// work (Chen et al.): every logical block is spread as a 1/N slice over
// all N data disks, with byte-wise parity on a dedicated drive. Every
// request therefore occupies every arm — superb bandwidth for large
// transfers, and exactly the "many arms per small request" cost Gray et
// al. warn about for OLTP. Writes need no read-modify-write: the parity
// bytes of a block's slices derive from the new data alone.
//
// Addressing: logical block l occupies a slice of physical block l/N on
// each drive (N logical blocks fill one physical block per drive, so an
// array of N+1 drives stores N drives' worth of data — the same
// equal-capacity footing as RAID5). Spindles are synchronized, as RAID3
// requires.
type raid3Ctrl struct {
	*common
	n   int
	bpd int64
}

// DataBlocks implements Controller.
func (r3 *raid3Ctrl) DataBlocks() int64 { return int64(r3.n) * r3.bpd }

// Results implements Controller.
func (r3 *raid3Ctrl) Results() *Results { return r3.baseResults(OrgRAID3) }

// sliceSectors returns the per-disk media pass for k logical blocks:
// ceil(k * sectorsPerBlock / N), at least one sector.
func (r3 *raid3Ctrl) sliceSectors(k int) int {
	s := (k*r3.cfg.Spec.SectorsPerBlock() + r3.n - 1) / r3.n
	if s < 1 {
		s = 1
	}
	return s
}

// Submit implements Controller.
func (r3 *raid3Ctrl) Submit(r Request) {
	r3.checkRequest(r, r3.DataBlocks())
	start, sp := r3.begin(r.Op != trace.Read)

	// The request's rows on each drive: physical blocks
	// [lba/N, (lba+blocks-1)/N].
	row0 := r.LBA / int64(r3.n)
	row1 := (r.LBA + int64(r.Blocks) - 1) / int64(r3.n)
	blocks := int(row1 - row0 + 1)
	sectors := r3.sliceSectors(r.Blocks)
	if spb := r3.cfg.Spec.SectorsPerBlock(); sectors > blocks*spb {
		sectors = blocks * spb
	}

	if r.Op == trace.Read {
		// All N data disks participate; parity idle on reads.
		nbuf := r3.n
		admitStart := r3.eng.Now()
		r3.buf.Acquire(nbuf, func() {
			if now := r3.eng.Now(); now > admitStart {
				sp.ChildSpan(obs.SpanAdmit, admitStart, now)
			}
			done := newLatch(r3.n, func() {
				r3.chanXferSpan(r.Blocks, sp, func() {
					r3.buf.Release(nbuf)
					r3.finish(r, start, sp)
				})
			})
			for d := 0; d < r3.n; d++ {
				var op *obs.Span
				if sp != nil {
					op = sp.Child("read-slice", r3.eng.Now())
					op.SetBlocks(blocks)
				}
				r3.disks[d].Submit(&disk.Request{
					StartBlock: row0, Blocks: blocks,
					TransferSectors: sectors,
					Priority:        disk.PriNormal,
					Span:            op,
					OnDone:          done.done,
				})
			}
		})
		return
	}

	// Write: all N data disks plus the parity disk, no old-data reads.
	nbuf := r3.n + 1
	admitStart := r3.eng.Now()
	r3.buf.Acquire(nbuf, func() {
		if now := r3.eng.Now(); now > admitStart {
			sp.ChildSpan(obs.SpanAdmit, admitStart, now)
		}
		r3.chanXferSpan(r.Blocks, sp, func() {
			done := newLatch(r3.n+1, func() {
				r3.buf.Release(nbuf)
				r3.finish(r, start, sp)
			})
			for d := 0; d <= r3.n; d++ {
				var op *obs.Span
				if sp != nil {
					name := "write-slice"
					if d == r3.n {
						name = "write-parity"
					}
					op = sp.Child(name, r3.eng.Now())
					op.SetBlocks(blocks)
				}
				req := &disk.Request{
					StartBlock: row0, Blocks: blocks,
					TransferSectors: sectors,
					Write:           true,
					Priority:        disk.PriNormal,
					Span:            op,
					OnDone:          done.done,
				}
				if d == r3.n {
					r3.parityAccesses++
				}
				r3.disks[d].Submit(req)
			}
		})
	})
}
