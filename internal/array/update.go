package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// updateOpts controls how an updatePlan is executed.
type updateOpts struct {
	policy  SyncPolicy
	pri     disk.Priority // priority of data accesses (and non-/PR parity)
	stagger sim.Time      // spacing between successive data-run issues
	// parityIssuer, when non-nil, replaces the default parity disk access
	// (RAID4 spools parity into the cache instead). It must call done
	// exactly once; ready reports whether all old-data inputs are read.
	parityIssuer func(pr parityRun, ready func() bool, done func())
	// onDataDone, when non-nil, fires once all data runs complete —
	// before parity necessarily does. RAID4 releases its track buffers
	// here, since spooled parity needs cache slots, not buffers.
	onDataDone func()
	// span, when non-nil, is the trace span the update's device-op spans
	// nest under (the request root, or a destage batch's background root).
	span   *obs.Span
	onDone func()
}

// executeUpdate applies a batch of writes plus their parity updates to the
// array, honoring the configured data/parity synchronization policy:
//
//   - SI    parity issued immediately; the parity disk holds rotations
//     until the old data has been read.
//   - RF    parity issued once all its old-data reads complete.
//   - DF    parity issued once its feeding data accesses have acquired
//     their disks; held rotations absorb any remaining skew.
//   - /PR   variants give the parity access queue priority.
//
// Full-stripe parity runs and parity runs whose old data is already in
// the controller have no feeders and are issued immediately regardless of
// policy.
func (c *common) executeUpdate(plan updatePlan, o updateOpts) {
	nd, np := len(plan.dataRuns), len(plan.parityRuns)
	dataDone := o.onDataDone
	if dataDone == nil {
		dataDone = func() {}
	}
	all := newLatch(nd+np, o.onDone)
	dl := newLatch(nd, dataDone)
	if nd+np == 0 {
		return
	}

	readsLeft := make([]int, np)  // pending old-data reads per parity run
	startsLeft := make([]int, np) // pending data-run starts per parity run
	issued := make([]bool, np)
	for i, d := range plan.deps {
		readsLeft[i] = len(d)
		startsLeft[i] = len(d)
	}

	parityPri := o.pri
	if o.policy.priority() {
		parityPri = disk.PriHigh
	}

	issueParity := func(i int) {
		if issued[i] {
			return
		}
		issued[i] = true
		pr := plan.parityRuns[i]
		ready := func() bool { return readsLeft[i] == 0 }
		if o.parityIssuer != nil {
			o.parityIssuer(pr, ready, all.done)
			return
		}
		c.parityAccesses++
		req := &disk.Request{
			StartBlock: pr.start,
			Blocks:     pr.blocks,
			Write:      true,
			Priority:   parityPri,
			OnDone:     all.done,
		}
		if !pr.full {
			req.RMW = true
			req.Ready = ready
		}
		if o.span != nil {
			name := "write-parity"
			if req.RMW {
				name = "rmw-parity"
			}
			req.Span = o.span.Child(name, c.eng.Now())
			req.Span.SetBlocks(pr.blocks)
		}
		c.disks[pr.disk].Submit(req)
	}

	// Parity runs with no feeders are unconstrained by the policy.
	for i := range plan.parityRuns {
		if readsLeft[i] == 0 {
			issueParity(i)
		} else if o.policy == SI {
			issueParity(i)
		}
	}

	// Reverse maps: data run -> parity runs it feeds.
	feeds := make([][]int, nd)
	for pi, d := range plan.deps {
		for _, ri := range d {
			feeds[ri] = append(feeds[ri], pi)
		}
	}

	for ri := range plan.dataRuns {
		ri := ri
		r := plan.dataRuns[ri]
		req := &disk.Request{
			StartBlock: r.start,
			Blocks:     r.blocks,
			Write:      true,
			Priority:   o.pri,
			OnDone:     func() { dl.done(); all.done() },
		}
		if plan.dataRMW[ri] {
			req.RMW = true // new data is in the controller; no Ready gate
			req.OnStart = func() {
				if !o.policy.diskFirst() {
					return
				}
				for _, pi := range feeds[ri] {
					startsLeft[pi]--
					if startsLeft[pi] == 0 {
						issueParity(pi)
					}
				}
			}
			req.OnReadDone = func() {
				for _, pi := range feeds[ri] {
					readsLeft[pi]--
					if readsLeft[pi] == 0 && (o.policy == RF || o.policy == RFPR) {
						issueParity(pi)
					}
				}
			}
		}
		if o.stagger > 0 && ri > 0 {
			cl := c.eng.AfterCall(o.stagger*sim.Time(ri), submitWriteFire)
			cl.A, cl.B, cl.C = c.disks[r.disk], req, o.span
			continue
		}
		if o.span != nil {
			name := "write-data"
			if req.RMW {
				name = "rmw-data"
			}
			req.Span = o.span.Child(name, c.eng.Now())
			req.Span.SetBlocks(r.blocks)
		}
		c.disks[r.disk].Submit(req)
	}
}
