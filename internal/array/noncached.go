package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/trace"
)

// baseCtrl serves any redundancy-free DataLayout: the Base organization
// (independent disks) and RAID0 (pure striping). Reads go disk -> track
// buffer -> channel; writes go channel -> track buffer -> disk.
type baseCtrl struct {
	*common
	lay layout.DataLayout
	org Org
}

// DataBlocks implements Controller.
func (b *baseCtrl) DataBlocks() int64 { return b.lay.DataBlocks() }

// Results implements Controller.
func (b *baseCtrl) Results() *Results { return b.baseResults(b.org) }

// Submit implements Controller.
func (b *baseCtrl) Submit(r Request) {
	b.checkRequest(r, b.lay.DataBlocks())
	start := b.begin()
	runs := dataRunsSpan(b.lay, r.LBA, r.Blocks)
	if r.Op == trace.Read {
		b.readRuns(runs, r.Blocks, func() { b.finish(r, start) })
		return
	}
	// No redundancy: a write run targeting a dead slot is simply lost.
	runs, dropped := b.filterWriteRuns(runs)
	b.fs.lostWriteBlocks += int64(dropped)
	b.buf.Acquire(len(runs), func() {
		b.chanXfer(r.Blocks, func() {
			done := newLatch(len(runs), func() {
				b.buf.Release(len(runs))
				b.finish(r, start)
			})
			for _, rn := range runs {
				b.disks[rn.disk].Submit(&disk.Request{
					StartBlock: rn.start, Blocks: rn.blocks, Write: true,
					Priority: disk.PriNormal, OnDone: done.done,
				})
			}
		})
	})
}

// readRuns performs reads for the runs, then one channel transfer of the
// full request, then onDone. Shared by every organization; readRun makes
// every path failure- and sector-error-aware.
func (c *common) readRuns(runs []run, totalBlocks int, onDone func()) {
	c.buf.Acquire(len(runs), func() {
		done := newLatch(len(runs), func() {
			c.chanXfer(totalBlocks, func() {
				c.buf.Release(len(runs))
				onDone()
			})
		})
		for _, rn := range runs {
			c.readRun(rn, disk.PriNormal, done.done)
		}
	})
}

// mirrorCtrl is the non-cached mirrored organization: each logical disk
// is a pair. Writes update both copies (response is the max of the two);
// reads go to the copy whose arm is nearer the target cylinder, with
// queue length as tie-break (the paper's shortest-seek optimization).
type mirrorCtrl struct {
	*common
	lay *layout.Mirror
}

// DataBlocks implements Controller.
func (m *mirrorCtrl) DataBlocks() int64 { return m.lay.DataBlocks() }

// Results implements Controller.
func (m *mirrorCtrl) Results() *Results { return m.baseResults(OrgMirror) }

// nearestRuns picks, per run, the mirror copy with the shorter seek. A
// dead copy never wins: reads fail over to the survivor.
func (m *mirrorCtrl) nearestRuns(lbas []int64) []run {
	prim := dataRuns(m.lay, lbas)
	for i := range prim {
		rn := &prim[i]
		if pickMirrorCopy(m.common, rn.disk, rn.start) {
			rn.disk++
		}
	}
	return prim
}

// pickMirrorCopy reports whether a read of physical block start should go
// to the secondary copy (primary+1): the survivor when one copy is dead,
// otherwise the shorter seek with queue length as tie-break.
func pickMirrorCopy(c *common, primary int, start int64) bool {
	if c.fs.nfailed > 0 {
		p0, p1 := c.fs.failed[primary], c.fs.failed[primary+1]
		if p0 && !p1 {
			c.fs.failoverReads++
			return true
		}
		if p1 {
			return false // secondary dead (or both; fallback handles that)
		}
	}
	d0, d1 := c.disks[primary], c.disks[primary+1]
	cyl := c.cfg.Spec.ToCHS(start).Cylinder
	dist0 := abs(d0.Cylinder() - cyl)
	dist1 := abs(d1.Cylinder() - cyl)
	return dist1 < dist0 || (dist1 == dist0 && d1.QueueLen() < d0.QueueLen())
}

// Submit implements Controller.
func (m *mirrorCtrl) Submit(r Request) {
	m.checkRequest(r, m.lay.DataBlocks())
	start := m.begin()
	lbas := spanLBAs(r.LBA, r.Blocks)
	if r.Op == trace.Read {
		m.readRuns(m.nearestRuns(lbas), r.Blocks, func() { m.finish(r, start) })
		return
	}
	runs := append(dataRuns(m.lay, lbas), altRuns(m.lay, lbas)...)
	if m.degradedNow() {
		// Writes degrade to the surviving copy (or the rebuilding spare);
		// a block is lost only when both copies of its pair are gone.
		var dropped int
		runs, dropped = m.filterWriteRuns(runs)
		if dropped > 0 {
			for _, l := range lbas {
				if m.writeDown(m.lay.Map(l).Disk) && m.writeDown(m.lay.Alt(l).Disk) {
					m.fs.lostWriteBlocks++
				}
			}
		}
	}
	m.buf.Acquire(len(runs), func() {
		m.chanXfer(r.Blocks, func() {
			done := newLatch(len(runs), func() {
				m.buf.Release(len(runs))
				m.finish(r, start)
			})
			for _, rn := range runs {
				m.disks[rn.disk].Submit(&disk.Request{
					StartBlock: rn.start, Blocks: rn.blocks, Write: true,
					Priority: disk.PriNormal, OnDone: done.done,
				})
			}
		})
	})
}

// parityCtrl is the non-cached RAID5 or Parity Striping organization.
type parityCtrl struct {
	*common
	lay layout.ParityLayout
}

// DataBlocks implements Controller.
func (p *parityCtrl) DataBlocks() int64 { return p.lay.DataBlocks() }

// Results implements Controller.
func (p *parityCtrl) Results() *Results {
	if _, ok := p.lay.(*layout.ParityStriping); ok {
		return p.baseResults(OrgParityStriping)
	}
	return p.baseResults(OrgRAID5)
}

// Submit implements Controller.
func (p *parityCtrl) Submit(r Request) {
	p.checkRequest(r, p.lay.DataBlocks())
	start := p.begin()
	if r.Op == trace.Read {
		p.readRuns(dataRunsSpan(p.lay, r.LBA, r.Blocks), r.Blocks, func() { p.finish(r, start) })
		return
	}
	if p.degradedNow() {
		lbas := spanLBAs(r.LBA, r.Blocks)
		p.buf.Acquire(len(lbas), func() {
			p.chanXfer(r.Blocks, func() {
				p.degradedUpdate(p.lay, lbas, disk.PriNormal, func() {
					p.buf.Release(len(lbas))
					p.finish(r, start)
				})
			})
		})
		return
	}
	// Small writes read old data and old parity to compute new parity;
	// full-stripe writes overwrite parity directly. The configured
	// synchronization policy coordinates the two.
	plan := planUpdate(p.lay, spanLBAs(r.LBA, r.Blocks), nil)
	n := plan.totalRuns()
	p.buf.Acquire(n, func() {
		p.chanXfer(r.Blocks, func() {
			p.executeUpdate(plan, updateOpts{
				policy: p.cfg.Sync,
				pri:    disk.PriNormal,
				onDone: func() {
					p.buf.Release(n)
					p.finish(r, start)
				},
			})
		})
	})
}

func spanLBAs(lba int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lba + int64(i)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
