package array

import (
	"raidsim/internal/disk"
	"raidsim/internal/layout"
	"raidsim/internal/trace"
)

// baseCtrl serves any redundancy-free DataLayout: the Base organization
// (independent disks) and RAID0 (pure striping). Reads go disk -> track
// buffer -> channel; writes go channel -> track buffer -> disk.
type baseCtrl struct {
	*common
	lay layout.DataLayout
	org Org
}

// DataBlocks implements Controller.
func (b *baseCtrl) DataBlocks() int64 { return b.lay.DataBlocks() }

// Results implements Controller.
func (b *baseCtrl) Results() *Results { return b.baseResults(b.org) }

// Submit implements Controller.
func (b *baseCtrl) Submit(r Request) {
	b.checkRequest(r, b.lay.DataBlocks())
	start := b.begin()
	runs := dataRunsSpan(b.lay, r.LBA, r.Blocks)
	if r.Op == trace.Read {
		b.readRuns(runs, r.Blocks, func() { b.finish(r, start) })
		return
	}
	b.buf.Acquire(len(runs), func() {
		b.chanXfer(r.Blocks, func() {
			done := newLatch(len(runs), func() {
				b.buf.Release(len(runs))
				b.finish(r, start)
			})
			for _, rn := range runs {
				b.disks[rn.disk].Submit(&disk.Request{
					StartBlock: rn.start, Blocks: rn.blocks, Write: true,
					Priority: disk.PriNormal, OnDone: done.done,
				})
			}
		})
	})
}

// readRuns performs plain reads for the runs, then one channel transfer
// of the full request, then onDone. Shared by every organization.
func (c *common) readRuns(runs []run, totalBlocks int, onDone func()) {
	c.buf.Acquire(len(runs), func() {
		done := newLatch(len(runs), func() {
			c.chanXfer(totalBlocks, func() {
				c.buf.Release(len(runs))
				onDone()
			})
		})
		for _, rn := range runs {
			c.disks[rn.disk].Submit(&disk.Request{
				StartBlock: rn.start, Blocks: rn.blocks,
				Priority: disk.PriNormal, OnDone: done.done,
			})
		}
	})
}

// mirrorCtrl is the non-cached mirrored organization: each logical disk
// is a pair. Writes update both copies (response is the max of the two);
// reads go to the copy whose arm is nearer the target cylinder, with
// queue length as tie-break (the paper's shortest-seek optimization).
type mirrorCtrl struct {
	*common
	lay *layout.Mirror
}

// DataBlocks implements Controller.
func (m *mirrorCtrl) DataBlocks() int64 { return m.lay.DataBlocks() }

// Results implements Controller.
func (m *mirrorCtrl) Results() *Results { return m.baseResults(OrgMirror) }

// nearestRuns picks, per run, the mirror copy with the shorter seek.
func (m *mirrorCtrl) nearestRuns(lbas []int64) []run {
	prim := dataRuns(m.lay, lbas)
	for i := range prim {
		rn := &prim[i]
		d0 := m.disks[rn.disk]
		d1 := m.disks[rn.disk+1] // secondary is always primary+1
		cyl := m.cfg.Spec.ToCHS(rn.start).Cylinder
		dist0 := abs(d0.Cylinder() - cyl)
		dist1 := abs(d1.Cylinder() - cyl)
		pick1 := dist1 < dist0 || (dist1 == dist0 && d1.QueueLen() < d0.QueueLen())
		if pick1 {
			rn.disk++
		}
	}
	return prim
}

// Submit implements Controller.
func (m *mirrorCtrl) Submit(r Request) {
	m.checkRequest(r, m.lay.DataBlocks())
	start := m.begin()
	lbas := spanLBAs(r.LBA, r.Blocks)
	if r.Op == trace.Read {
		m.readRuns(m.nearestRuns(lbas), r.Blocks, func() { m.finish(r, start) })
		return
	}
	runs := append(dataRuns(m.lay, lbas), altRuns(m.lay, lbas)...)
	m.buf.Acquire(len(runs), func() {
		m.chanXfer(r.Blocks, func() {
			done := newLatch(len(runs), func() {
				m.buf.Release(len(runs))
				m.finish(r, start)
			})
			for _, rn := range runs {
				m.disks[rn.disk].Submit(&disk.Request{
					StartBlock: rn.start, Blocks: rn.blocks, Write: true,
					Priority: disk.PriNormal, OnDone: done.done,
				})
			}
		})
	})
}

// parityCtrl is the non-cached RAID5 or Parity Striping organization.
type parityCtrl struct {
	*common
	lay layout.ParityLayout
}

// DataBlocks implements Controller.
func (p *parityCtrl) DataBlocks() int64 { return p.lay.DataBlocks() }

// Results implements Controller.
func (p *parityCtrl) Results() *Results {
	if _, ok := p.lay.(*layout.ParityStriping); ok {
		return p.baseResults(OrgParityStriping)
	}
	return p.baseResults(OrgRAID5)
}

// Submit implements Controller.
func (p *parityCtrl) Submit(r Request) {
	p.checkRequest(r, p.lay.DataBlocks())
	start := p.begin()
	if r.Op == trace.Read {
		p.readRuns(dataRunsSpan(p.lay, r.LBA, r.Blocks), r.Blocks, func() { p.finish(r, start) })
		return
	}
	// Small writes read old data and old parity to compute new parity;
	// full-stripe writes overwrite parity directly. The configured
	// synchronization policy coordinates the two.
	plan := planUpdate(p.lay, spanLBAs(r.LBA, r.Blocks), nil)
	n := plan.totalRuns()
	p.buf.Acquire(n, func() {
		p.chanXfer(r.Blocks, func() {
			p.executeUpdate(plan, updateOpts{
				policy: p.cfg.Sync,
				pri:    disk.PriNormal,
				onDone: func() {
					p.buf.Release(n)
					p.finish(r, start)
				},
			})
		})
	})
}

func spanLBAs(lba int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lba + int64(i)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
