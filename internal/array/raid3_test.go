package array

import (
	"testing"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func TestRAID3EveryRequestUsesAllArms(t *testing.T) {
	cfg := testConfig(OrgRAID3, false)
	eng, ctrl := build(t, cfg)
	r3 := ctrl.(*raid3Ctrl)

	ctrl.Submit(Request{Op: trace.Read, LBA: 7, Blocks: 1})
	drain(t, eng, ctrl)
	for d := 0; d < r3.n; d++ {
		if r3.disks[d].S.Reads != 1 {
			t.Fatalf("data disk %d saw %d reads, want 1", d, r3.disks[d].S.Reads)
		}
	}
	if r3.disks[r3.n].S.Accesses != 0 {
		t.Fatal("parity disk touched on a read")
	}

	ctrl.Submit(Request{Op: trace.Write, LBA: 42, Blocks: 1})
	drain(t, eng, ctrl)
	for d := 0; d <= r3.n; d++ {
		if r3.disks[d].S.Writes != 1 {
			t.Fatalf("disk %d saw %d writes, want 1", d, r3.disks[d].S.Writes)
		}
	}
	// RAID3 small writes never read-modify-write.
	for d := 0; d <= r3.n; d++ {
		if r3.disks[d].S.RMWs != 0 {
			t.Fatal("RAID3 should not RMW")
		}
	}
}

func TestRAID3TransferScalesWithRequest(t *testing.T) {
	cfg := testConfig(OrgRAID3, false)
	eng, ctrl := build(t, cfg)
	// Large sequential read: media time per disk is 1/N of the total,
	// so a 40-block read should complete far faster than on one arm.
	ctrl.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 40})
	drain(t, eng, ctrl)
	big := ctrl.Results().ReadResp.Mean()
	// One-arm equivalent: base organization, same request.
	cfgB := testConfig(OrgBase, false)
	engB, ctrlB := build(t, cfgB)
	ctrlB.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 40})
	drain(t, engB, ctrlB)
	single := ctrlB.Results().ReadResp.Mean()
	if big >= single {
		t.Fatalf("RAID3 large read (%.2f ms) not faster than single-arm (%.2f ms)", big, single)
	}
}

func TestRAID3SpindlesForcedSynchronized(t *testing.T) {
	cfg := testConfig(OrgRAID3, false)
	cfg.SyncSpindles = false // must be overridden
	eng, ctrl := build(t, cfg)
	r3 := ctrl.(*raid3Ctrl)
	ctrl.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 1})
	drain(t, eng, ctrl)
	first := r3.disks[0].S.ServiceTime.Mean()
	for d := 1; d < r3.n; d++ {
		if got := r3.disks[d].S.ServiceTime.Mean(); got != first {
			t.Fatalf("unsynchronized slices: disk %d %.4f vs %.4f", d, got, first)
		}
	}
}

func TestRAID0StripesWithoutParity(t *testing.T) {
	cfg := testConfig(OrgRAID0, false)
	cfg.StripingUnit = 1
	eng, ctrl := build(t, cfg)
	b := ctrl.(*schemeCtrl)
	if len(b.disks) != cfg.N {
		t.Fatalf("RAID0 has %d disks, want %d (no parity drive)", len(b.disks), cfg.N)
	}
	// Consecutive blocks land on consecutive disks.
	for i := 0; i < cfg.N; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i), Blocks: 1})
	}
	drain(t, eng, ctrl)
	for d := 0; d < cfg.N; d++ {
		if b.disks[d].S.Writes != 1 {
			t.Fatalf("disk %d got %d writes; striping broken", d, b.disks[d].S.Writes)
		}
	}
	if ctrl.Results().Org != OrgRAID0 {
		t.Fatal("results mislabeled")
	}
}

func TestRAID0CachedWorks(t *testing.T) {
	cfg := testConfig(OrgRAID0, true)
	cfg.DestagePeriod = 100 * sim.Millisecond
	eng, ctrl := build(t, cfg)
	for i := 0; i < 20; i++ {
		ctrl.Submit(Request{Op: trace.Write, LBA: int64(i * 3), Blocks: 1})
	}
	eng.RunFor(5 * sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Org != OrgRAID0 || res.Requests != 20 {
		t.Fatalf("cached RAID0 results wrong: %+v", res.Org)
	}
	if res.Cache.Destages == 0 {
		t.Fatal("no destages")
	}
}

func TestRAID3RejectsCached(t *testing.T) {
	cfg := testConfig(OrgRAID3, true)
	eng := sim.New()
	if _, err := New(eng, cfg); err == nil {
		t.Fatal("cached RAID3 accepted")
	}
}
