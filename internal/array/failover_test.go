package array

import (
	"reflect"
	"testing"

	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// smallSpec is a deliberately tiny drive (768 blocks) so rebuild sweeps
// finish in a few simulated seconds.
func smallSpec() geom.Spec {
	s := geom.Default()
	s.Cylinders = 64
	s.Heads = 2
	return s
}

func faultConfig(org Org, cached bool) Config {
	cfg := testConfig(org, cached)
	cfg.Spec = smallSpec()
	return cfg
}

// runUntilRepaired advances time until no rebuild is active and the
// controller drains, or fails the test.
func runUntilRepaired(t *testing.T, eng *sim.Engine, ctrl Controller) {
	t.Helper()
	ra := ctrl.(interface{ RebuildActive() bool })
	for i := 0; i < 100000 && (ra.RebuildActive() || !ctrl.Drained()); i++ {
		eng.RunFor(10 * sim.Millisecond)
	}
	if ra.RebuildActive() {
		t.Fatal("rebuild never completed")
	}
	if !ctrl.Drained() {
		t.Fatal("controller did not drain")
	}
}

// TestMirrorReadFailover: after one copy dies, reads of its data redirect
// to the surviving copy and nothing is lost.
func TestMirrorReadFailover(t *testing.T) {
	cfg := faultConfig(OrgMirror, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 0, At: 100 * sim.Millisecond}}}
	eng, ctrl := build(t, cfg)
	// Pair 0 holds LBAs [0, 768): read them before and after the failure.
	for i := 0; i < 8; i++ {
		lba := int64(i * 10)
		eng.At(sim.Time(i)*30*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: trace.Read, LBA: lba, Blocks: 1})
		})
	}
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	f := res.Fault
	if f.Failures != 1 {
		t.Fatalf("failures = %d, want 1", f.Failures)
	}
	if f.FailoverReads == 0 {
		t.Fatal("no reads failed over to the surviving copy")
	}
	if f.LostReadBlocks != 0 || f.DataLossEvents != 0 {
		t.Fatalf("mirror lost data with one copy alive: %+v", f)
	}
	if res.Resp.N() != 8 {
		t.Fatalf("responses = %d, want 8", res.Resp.N())
	}
	if res.DegradedResp.N() == 0 || res.NormalResp.N() == 0 {
		t.Fatalf("degraded/normal split missing: %d/%d", res.DegradedResp.N(), res.NormalResp.N())
	}
	if res.DegradedResp.N()+res.NormalResp.N() != res.Resp.N() {
		t.Fatal("degraded + normal != total")
	}
	if !f.DegradedActive || f.DegradedTime == 0 {
		t.Fatalf("degraded window not tracked: %+v", f)
	}
}

// TestMirrorWriteSingleCopy: with one copy dead, writes land on the
// survivor only, and are not counted lost.
func TestMirrorWriteSingleCopy(t *testing.T) {
	cfg := faultConfig(OrgMirror, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 0, At: 0}}}
	eng, ctrl := build(t, cfg)
	eng.At(sim.Millisecond, func() {
		ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 4})
	})
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Fault.LostWriteBlocks != 0 {
		t.Fatalf("lost %d write blocks with a surviving copy", res.Fault.LostWriteBlocks)
	}
	if res.DiskAccesses[0] != 0 {
		t.Fatalf("dead disk serviced %d accesses", res.DiskAccesses[0])
	}
	if res.DiskAccesses[1] == 0 {
		t.Fatal("surviving copy got no writes")
	}
}

// TestMirrorResilver: with a hot spare, the dead copy is rebuilt from its
// partner and duplication is restored — afterwards both copies serve.
func TestMirrorResilver(t *testing.T) {
	cfg := faultConfig(OrgMirror, false)
	cfg.Spares = 1
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 0, At: 10 * sim.Millisecond}}}
	eng, ctrl := build(t, cfg)
	eng.RunUntil(20 * sim.Millisecond)
	runUntilRepaired(t, eng, ctrl)
	res := ctrl.Results()
	f := res.Fault
	if f.SparesUsed != 1 || f.Rebuilds != 1 {
		t.Fatalf("spares used %d, rebuilds %d", f.SparesUsed, f.Rebuilds)
	}
	if f.RebuildTime <= 0 {
		t.Fatal("rebuild took no time")
	}
	if f.DegradedActive {
		t.Fatal("still degraded after rebuild")
	}
	// The re-silvered copy serves reads again: submit many reads of pair-0
	// data and check slot 0 participates.
	before := res.DiskAccesses[0]
	for i := 0; i < 16; i++ {
		ctrl.Submit(Request{Op: trace.Read, LBA: int64(i * 7), Blocks: 1})
	}
	drain(t, eng, ctrl)
	after := ctrl.Results().DiskAccesses[0]
	if after <= before {
		t.Fatal("re-silvered copy never serviced a read")
	}
}

// TestRAID5ReconstructReads: reads of a dead disk's blocks are served by
// reconstruction from the survivors; nothing is lost.
func TestRAID5ReconstructReads(t *testing.T) {
	cfg := faultConfig(OrgRAID5, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 2, At: 0}}}
	eng, ctrl := build(t, cfg)
	for i := 0; i < 12; i++ {
		lba := int64(i * 11)
		eng.At(sim.Time(i+1)*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: trace.Read, LBA: lba, Blocks: 1})
		})
	}
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Resp.N() != 12 {
		t.Fatalf("responses = %d, want 12", res.Resp.N())
	}
	if res.Fault.LostReadBlocks != 0 || res.Fault.DataLossEvents != 0 {
		t.Fatalf("single failure lost data: %+v", res.Fault)
	}
	if res.DiskAccesses[2] != 0 {
		t.Fatal("dead disk serviced accesses")
	}
}

// TestRAID5DegradedWrites exercises all the degraded write cases: the
// array keeps accepting writes with one disk down.
func TestRAID5DegradedWrites(t *testing.T) {
	cfg := faultConfig(OrgRAID5, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 1, At: 0}}}
	eng, ctrl := build(t, cfg)
	for i := 0; i < 12; i++ {
		lba := int64(i * 13)
		eng.At(sim.Time(i+1)*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: trace.Write, LBA: lba, Blocks: 1})
		})
	}
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Resp.N() != 12 {
		t.Fatalf("responses = %d, want 12", res.Resp.N())
	}
	if res.Fault.LostWriteBlocks != 0 {
		t.Fatalf("lost %d write blocks with N-1 redundancy intact", res.Fault.LostWriteBlocks)
	}
}

// TestRAID5SpareRebuildDeterminism is the acceptance scenario: a RAID5
// run with a mid-run failure and one hot spare completes, rebuilds, and
// is bit-identical across runs of the same seed.
func TestRAID5SpareRebuildDeterminism(t *testing.T) {
	runOnce := func() *Results {
		cfg := faultConfig(OrgRAID5, false)
		cfg.Spares = 1
		cfg.Fault = fault.Config{
			DiskFails: []fault.DiskFail{{Disk: 0, At: 30 * sim.Millisecond}},
			Seed:      42,
		}
		eng, ctrl := build(t, cfg)
		for i := 0; i < 30; i++ {
			lba := int64(i * 17)
			op := trace.Read
			if i%3 == 0 {
				op = trace.Write
			}
			eng.At(sim.Time(i)*2*sim.Millisecond, func() {
				ctrl.Submit(Request{Op: op, LBA: lba, Blocks: 1})
			})
		}
		eng.RunUntil(sim.Second)
		runUntilRepaired(t, eng, ctrl)
		eng.RunUntil(20 * sim.Second) // common snapshot time for utilizations
		return ctrl.Results()
	}
	a, b := runOnce(), runOnce()
	if a.Fault.Rebuilds != 1 || a.Fault.SparesUsed != 1 {
		t.Fatalf("rebuild did not run: %+v", a.Fault)
	}
	if a.Resp.N() != 30 {
		t.Fatalf("responses = %d, want 30", a.Resp.N())
	}
	if a.DegradedResp.N() == 0 {
		t.Fatal("no degraded-window samples")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestBaseFailureLosesData: without redundancy a failure is a data-loss
// event and reads of the dead disk are unrecoverable.
func TestBaseFailureLosesData(t *testing.T) {
	cfg := faultConfig(OrgBase, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 0, At: 0}}}
	eng, ctrl := build(t, cfg)
	eng.At(sim.Millisecond, func() {
		ctrl.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 2}) // disk 0's space
	})
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Fault.DataLossEvents != 1 {
		t.Fatalf("data-loss events = %d, want 1", res.Fault.DataLossEvents)
	}
	if res.Fault.LostReadBlocks != 2 {
		t.Fatalf("lost read blocks = %d, want 2", res.Fault.LostReadBlocks)
	}
	if res.Resp.N() != 1 {
		t.Fatal("request did not complete")
	}
}

// TestMirrorDoubleFailureLosesData: both copies of a pair down is a
// data-loss event.
func TestMirrorDoubleFailureLosesData(t *testing.T) {
	cfg := faultConfig(OrgMirror, false)
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{
		{Disk: 0, At: 0}, {Disk: 1, At: sim.Millisecond},
	}}
	eng, ctrl := build(t, cfg)
	eng.At(2*sim.Millisecond, func() {
		ctrl.Submit(Request{Op: trace.Read, LBA: 0, Blocks: 1})
	})
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Fault.DataLossEvents != 1 {
		t.Fatalf("data-loss events = %d, want 1", res.Fault.DataLossEvents)
	}
	if res.Fault.LostReadBlocks != 1 {
		t.Fatalf("lost read blocks = %d, want 1", res.Fault.LostReadBlocks)
	}
}

// TestCacheFailureLosesDirtyData: killing the NVRAM cache counts the
// dirty blocks it held and the array keeps serving from a fresh cache.
func TestCacheFailureLosesDirtyData(t *testing.T) {
	cfg := faultConfig(OrgRAID5, true)
	cfg.DestagePeriod = 10 * sim.Second // don't destage before the failure
	cfg.Fault = fault.Config{CacheFailAt: 50 * sim.Millisecond}
	eng, ctrl := build(t, cfg)
	eng.At(sim.Millisecond, func() {
		ctrl.Submit(Request{Op: trace.Write, LBA: 0, Blocks: 8})
	})
	// Post-failure traffic must still work.
	eng.At(100*sim.Millisecond, func() {
		ctrl.Submit(Request{Op: trace.Read, LBA: 100, Blocks: 1})
		ctrl.Submit(Request{Op: trace.Write, LBA: 200, Blocks: 1})
	})
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Fault.CacheFailures != 1 {
		t.Fatalf("cache failures = %d, want 1", res.Fault.CacheFailures)
	}
	if res.Fault.DirtyBlocksLost != 8 {
		t.Fatalf("dirty blocks lost = %d, want 8", res.Fault.DirtyBlocksLost)
	}
	if res.Resp.N() != 3 {
		t.Fatalf("responses = %d, want 3", res.Resp.N())
	}
}

// TestSectorErrorsRetryAndReconstruct: latent sector errors retry, then
// reconstruct from redundancy, without failing the request.
func TestSectorErrorsRetryAndReconstruct(t *testing.T) {
	cfg := faultConfig(OrgRAID5, false)
	cfg.Fault = fault.Config{SectorErrorRate: 0.4, MaxReadRetries: 1, Seed: 9}
	eng, ctrl := build(t, cfg)
	for i := 0; i < 40; i++ {
		lba := int64(i * 3)
		eng.At(sim.Time(i+1)*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: trace.Read, LBA: lba, Blocks: 1})
		})
	}
	eng.RunUntil(sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Resp.N() != 40 {
		t.Fatalf("responses = %d, want 40", res.Resp.N())
	}
	f := res.Fault
	if f.SectorErrors == 0 || f.SectorRetries == 0 {
		t.Fatalf("sector error machinery idle: %+v", f)
	}
	if f.SectorReconstructs == 0 {
		t.Fatalf("no retry exhaustion at 40%% error rate: %+v", f)
	}
	if f.LostReadBlocks != 0 {
		t.Fatalf("healthy array lost %d blocks to sector errors", f.LostReadBlocks)
	}
}

// TestRAID4ParityDiskLoss: RAID4's dedicated parity disk dying leaves
// data fully readable; writes proceed without parity maintenance.
func TestRAID4ParityDiskLoss(t *testing.T) {
	cfg := faultConfig(OrgRAID4, true)
	// Parity disk of a 4+1 RAID4 is slot N = 4.
	cfg.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 4, At: 5 * sim.Millisecond}}}
	eng, ctrl := build(t, cfg)
	for i := 0; i < 10; i++ {
		lba := int64(i * 19)
		op := trace.Read
		if i%2 == 0 {
			op = trace.Write
		}
		eng.At(sim.Time(i+1)*10*sim.Millisecond, func() {
			ctrl.Submit(Request{Op: op, LBA: lba, Blocks: 1})
		})
	}
	eng.RunUntil(5 * sim.Second)
	drain(t, eng, ctrl)
	res := ctrl.Results()
	if res.Resp.N() != 10 {
		t.Fatalf("responses = %d, want 10", res.Resp.N())
	}
	f := res.Fault
	if f.LostReadBlocks != 0 || f.LostWriteBlocks != 0 {
		t.Fatalf("parity-disk loss lost data blocks: %+v", f)
	}
	if f.DataLossEvents != 0 {
		t.Fatalf("single failure counted as data loss: %+v", f)
	}
}

// TestStochasticMTTFFailures: exponential lifetimes fire mid-run and are
// deterministic per seed.
func TestStochasticMTTFFailures(t *testing.T) {
	runOnce := func() *Results {
		cfg := faultConfig(OrgMirror, false)
		cfg.Spares = 4
		cfg.Fault = fault.Config{MTTF: 2 * sim.Second, Seed: 21}
		eng, ctrl := build(t, cfg)
		eng.RunUntil(4 * sim.Second)
		runUntilRepaired(t, eng, ctrl)
		eng.RunUntil(60 * sim.Second)
		return ctrl.Results()
	}
	a, b := runOnce(), runOnce()
	if a.Fault.Failures == 0 {
		t.Fatal("no stochastic failures over 2 MTTFs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("stochastic fault schedule diverged between identical seeds")
	}
}

// TestFaultRejectsComparators: RAID3 and parity logging have no degraded
// model and must refuse fault configs.
func TestFaultRejectsComparators(t *testing.T) {
	for _, org := range []Org{OrgRAID3, OrgParityLog} {
		cfg := testConfig(org, false)
		cfg.Fault = fault.Config{MTTF: sim.Second}
		if _, err := New(sim.New(), cfg); err == nil {
			t.Errorf("%v accepted a fault config", org)
		}
	}
}
