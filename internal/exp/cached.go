package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/report"
)

func init() {
	register(Experiment{ID: "fig11", Title: "Figure 11: hit ratios vs cache size (parity vs non-parity)", Figure: "Figure 11",
		Knobs: "cache: 4..64 MB", Run: fig11})
	register(Experiment{ID: "fig12", Title: "Figure 12: response time vs cache size (cached orgs)", Figure: "Figure 12",
		Knobs: "org: base/mirror/raid5/pstripe cached; cache: 4..64 MB", Run: fig12})
	register(Experiment{ID: "fig13", Title: "Figure 13: array size, cached orgs, fixed total cache", Figure: "Figure 13",
		Knobs: "N: 4..32 at fixed total cache", Run: fig13})
	register(Experiment{ID: "fig14", Title: "Figure 14: striping unit, cached RAID5", Figure: "Figure 14",
		Knobs: "striping unit: 1..24 blocks, cached", Run: fig14})
	register(Experiment{ID: "fig15", Title: "Figure 15: hit ratios, RAID5 vs RAID4 parity caching", Figure: "Figure 15",
		Knobs: "cache: 4..64 MB; org: raid4/raid5", Run: fig15})
	register(Experiment{ID: "fig16", Title: "Figure 16: response time vs cache size, RAID4 vs RAID5", Figure: "Figure 16",
		Knobs: "cache: 4..64 MB; org: raid4/raid5", Run: fig16})
	register(Experiment{ID: "fig17", Title: "Figure 17: array size, RAID4 vs RAID5, fixed total cache", Figure: "Figure 17",
		Knobs: "N: 4..32 at fixed total cache; org: raid4/raid5", Run: fig17})
	register(Experiment{ID: "fig18", Title: "Figure 18: trace speed, RAID4 vs RAID5", Figure: "Figure 18",
		Knobs: "trace speed: 0.5x..2x; org: raid4/raid5", Run: fig18})
	register(Experiment{ID: "fig19", Title: "Figure 19: striping unit, RAID4 vs RAID5", Figure: "Figure 19",
		Knobs: "striping unit: 1..24 blocks; org: raid4/raid5", Run: fig19})
}

var cacheSizesMB = []int{8, 16, 32, 64, 128, 256}

func cacheTicks() []string {
	out := make([]string, len(cacheSizesMB))
	for i, mb := range cacheSizesMB {
		out[i] = fmt.Sprintf("%dMB", mb)
	}
	return out
}

// cacheSweep runs the given organizations over the cache-size axis and
// returns results indexed [org][size].
func cacheSweep(ctx *Context, name string, orgs []array.Org) ([][]*core.Results, []string) {
	tr := ctx.Trace(name, 1)
	var jobs []job
	for _, org := range orgs {
		for _, mb := range cacheSizesMB {
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			cfg.Cached = true
			cfg.CacheMB = mb
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
	}
	res, errs := runAll(jobs)
	out := make([][]*core.Results, len(orgs))
	for i := range orgs {
		out[i] = res[i*len(cacheSizesMB) : (i+1)*len(cacheSizesMB)]
	}
	return out, errs
}

// fig11: read and write hit ratios vs cache size, parity organizations
// (which hold old-data shadows) vs non-parity.
func fig11(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgRAID5}
	for _, name := range ctx.TraceNames() {
		res, errs := cacheSweep(ctx, name, orgs)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 11 (%s): hit ratio vs cache size", name),
			XLabel: "cache",
			YLabel: "hit ratio",
			XTicks: cacheTicks(),
		}
		noteErrors(fig, errs)
		for i, org := range orgs {
			reads := make([]float64, len(cacheSizesMB))
			writes := make([]float64, len(cacheSizesMB))
			for k, r := range res[i] {
				if r != nil {
					reads[k] = r.ReadHitRatio()
					writes[k] = r.WriteHitRatio()
				}
			}
			fig.Add(org.String()+"-read", reads...)
			fig.Add(org.String()+"-write", writes...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig12: response time vs cache size for the four cached organizations.
func fig12(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	for _, name := range ctx.TraceNames() {
		res, errs := cacheSweep(ctx, name, orgs)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 12 (%s): response time vs cache size", name),
			XLabel: "cache",
			YLabel: "response time (ms)",
			XTicks: cacheTicks(),
		}
		noteErrors(fig, errs)
		for i, org := range orgs {
			vals := make([]float64, len(cacheSizesMB))
			for k, r := range res[i] {
				vals[k] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// sizeWithCache sweeps array size holding the total cache constant (the
// per-array cache grows with N, as in Figures 13 and 17).
func sizeWithCache(ctx *Context, name string, orgs []array.Org, sizes []int, mbPerN float64) ([][]*core.Results, []string) {
	tr := ctx.Trace(name, 1)
	var jobs []job
	for _, org := range orgs {
		for _, n := range sizes {
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			cfg.Cached = true
			cfg.N = n
			cfg.CacheMB = int(mbPerN * float64(n))
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
	}
	res, errs := runAll(jobs)
	out := make([][]*core.Results, len(orgs))
	for i := range orgs {
		out[i] = res[i*len(sizes) : (i+1)*len(sizes)]
	}
	return out, errs
}

// fig13: cached organizations across array sizes with the same total
// cache (8 MB per array at N=5, 16 MB at N=10, 24 MB at N=15).
func fig13(ctx *Context) error {
	sizes := []int{5, 10, 15}
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	for _, name := range ctx.TraceNames() {
		res, errs := sizeWithCache(ctx, name, orgs, sizes, 1.6)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 13 (%s): array size, cached, fixed total cache", name),
			XLabel: "N",
			YLabel: "response time (ms)",
		}
		noteErrors(fig, errs)
		for _, n := range sizes {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", n))
		}
		for i, org := range orgs {
			vals := make([]float64, len(sizes))
			for k, r := range res[i] {
				vals[k] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig14: cached RAID5 response time vs striping unit.
func fig14(ctx *Context) error {
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 14 (%s): striping unit, cached RAID5 (16MB)", name),
			XLabel: "striping unit (blocks)",
			YLabel: "response time (ms)",
		}
		var jobs []job
		for _, su := range stripingUnits {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", su))
			cfg := ctx.BaseConfig(name)
			cfg.Org = array.OrgRAID5
			cfg.Cached = true
			cfg.StripingUnit = su
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(fig, errs)
		vals := make([]float64, len(res))
		for i, r := range res {
			vals[i] = meanOrNaN(r)
		}
		fig.Add("raid5-cached", vals...)
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig15: hit ratios, RAID5 (data caching only) vs RAID4 (data + parity
// in the same cache).
func fig15(ctx *Context) error {
	orgs := []array.Org{array.OrgRAID5, array.OrgRAID4}
	for _, name := range ctx.TraceNames() {
		res, errs := cacheSweep(ctx, name, orgs)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 15 (%s): hit ratio, RAID5 vs RAID4 parity caching", name),
			XLabel: "cache",
			YLabel: "hit ratio",
			XTicks: cacheTicks(),
		}
		noteErrors(fig, errs)
		for i, org := range orgs {
			reads := make([]float64, len(cacheSizesMB))
			writes := make([]float64, len(cacheSizesMB))
			for k, r := range res[i] {
				if r != nil {
					reads[k] = r.ReadHitRatio()
					writes[k] = r.WriteHitRatio()
				}
			}
			fig.Add(org.String()+"-read", reads...)
			fig.Add(org.String()+"-write", writes...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig16: response time vs cache size, RAID4 with parity caching vs RAID5.
func fig16(ctx *Context) error {
	orgs := []array.Org{array.OrgRAID5, array.OrgRAID4}
	for _, name := range ctx.TraceNames() {
		res, errs := cacheSweep(ctx, name, orgs)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 16 (%s): response time, RAID4 vs RAID5", name),
			XLabel: "cache",
			YLabel: "response time (ms)",
			XTicks: cacheTicks(),
		}
		noteErrors(fig, errs)
		for i, org := range orgs {
			vals := make([]float64, len(cacheSizesMB))
			for k, r := range res[i] {
				vals[k] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig17: RAID4 vs RAID5 across array sizes with fixed total cache
// (8 MB at N=5, 16 MB at N=10, 32 MB at N=20).
func fig17(ctx *Context) error {
	sizes := []int{5, 10, 20}
	orgs := []array.Org{array.OrgRAID5, array.OrgRAID4}
	for _, name := range ctx.TraceNames() {
		res, errs := sizeWithCache(ctx, name, orgs, sizes, 1.6)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 17 (%s): array size, RAID4 vs RAID5", name),
			XLabel: "N",
			YLabel: "response time (ms)",
		}
		noteErrors(fig, errs)
		for _, n := range sizes {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", n))
		}
		for i, org := range orgs {
			vals := make([]float64, len(sizes))
			for k, r := range res[i] {
				vals[k] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig18: RAID4 vs RAID5, cached, response time vs trace speed.
func fig18(ctx *Context) error {
	orgs := []array.Org{array.OrgRAID5, array.OrgRAID4}
	for _, name := range ctx.TraceNames() {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 18 (%s): trace speed, RAID4 vs RAID5 (16MB)", name),
			XLabel: "speed",
			YLabel: "response time (ms)",
		}
		for _, s := range traceSpeeds {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%g", s))
		}
		for _, org := range orgs {
			var jobs []job
			for _, s := range traceSpeeds {
				cfg := ctx.BaseConfig(name)
				cfg.Org = org
				cfg.Cached = true
				jobs = append(jobs, job{cfg: cfg, tr: ctx.Trace(name, s)})
			}
			res, errs := runAll(jobs)
			vals := make([]float64, len(res))
			for i, r := range res {
				vals[i] = meanOrNaN(r)
				if errs[i] != "" {
					fig.AddNote("%s @%g: %s", org, traceSpeeds[i], errs[i])
				}
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig19: RAID4 vs RAID5, cached, response time vs striping unit.
func fig19(ctx *Context) error {
	orgs := []array.Org{array.OrgRAID5, array.OrgRAID4}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 19 (%s): striping unit, RAID4 vs RAID5 (16MB)", name),
			XLabel: "striping unit (blocks)",
			YLabel: "response time (ms)",
		}
		for _, su := range stripingUnits {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", su))
		}
		for _, org := range orgs {
			var jobs []job
			for _, su := range stripingUnits {
				cfg := ctx.BaseConfig(name)
				cfg.Org = org
				cfg.Cached = true
				cfg.StripingUnit = su
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
			res, errs := runAll(jobs)
			noteErrors(fig, errs)
			vals := make([]float64, len(res))
			for i, r := range res {
				vals[i] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}
