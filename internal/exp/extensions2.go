package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/disk"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/model"
	"raidsim/internal/report"
	"raidsim/internal/workload"
)

func init() {
	register(Experiment{ID: "ext-model", Title: "Extension: analytic models vs simulation", Figure: "extension (section 4.2.3)",
		Knobs: "model: zero-load analytic vs simulated; placement rule", Run: extModel})
	register(Experiment{ID: "ext-closedloop", Title: "Extension: closed-loop throughput vs multiprogramming level", Figure: "extension",
		Knobs: "MPL: 1..32; org: base/mirror/raid5/pstripe", Run: extClosedLoop})
	register(Experiment{ID: "ablate-sched", Title: "Ablation: drive queue discipline (FIFO/SSTF/LOOK)", Figure: "ablation",
		Knobs: "sched: fifo/sstf/look; trace speed", Run: ablateSched})
	register(Experiment{ID: "ablate-spindles", Title: "Ablation: spindle synchronization", Figure: "ablation",
		Knobs: "spindles: independent vs synchronized", Run: ablateSpindles})
}

// extModel compares the closed-form zero-load estimates (Gray et al.
// style) and the section 4.2.3 parity-placement rule against simulation.
func extModel(ctx *Context) error {
	dev, err := model.NewDevice(geom.Default())
	if err != nil {
		return err
	}
	// Zero-load response: simulate at a crawl (speed 0.1) so queueing is
	// negligible and compare to the analytic minimum.
	name := "trace2"
	tr := ctx.Trace(name, 0.1)
	t := &report.Table{
		Title:   "Extension: analytic zero-load response vs simulation at light load (ms)",
		Columns: []string{"org", "model read", "model write", "model mean", "sim mean (speed 0.1)"},
	}
	prof := ctx.Profile(name)
	var jobs []job
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	for _, org := range orgs {
		cfg := ctx.BaseConfig(name)
		cfg.Org = org
		jobs = append(jobs, job{cfg: cfg, tr: tr})
	}
	res, errs := runAll(jobs)
	noteErrors(t, errs)
	for i, org := range orgs {
		r, _ := model.ZeroLoadResponse(dev, org, false)
		w, _ := model.ZeroLoadResponse(dev, org, true)
		m, _ := model.ZeroLoadMean(dev, org, prof.WriteFraction)
		t.AddRow(org.String(),
			fmt.Sprintf("%.2f", r), fmt.Sprintf("%.2f", w), fmt.Sprintf("%.2f", m),
			fmt.Sprintf("%.2f", meanOrNaN(res[i])))
	}
	t.AddNote("the simulation includes skew and residual queueing, so it sits above the zero-load floor")
	if err := ctx.Render(t); err != nil {
		return err
	}

	// The placement rule, checked against simulation (Figure 9's data).
	pt := &report.Table{
		Title:   "Extension: section 4.2.3 parity placement rule vs simulation",
		Columns: []string{"trace", "N", "rule says", "sim middle (ms)", "sim end (ms)", "sim agrees"},
	}
	for _, tn := range ctx.TraceNames() {
		prof := ctx.Profile(tn)
		trn := ctx.Trace(tn, 1)
		for _, n := range []int{5, 10, 15, 20} {
			var pj []job
			for _, pl := range []int{0, 1} {
				cfg := ctx.BaseConfig(tn)
				cfg.Org = array.OrgParityStriping
				cfg.N = n
				cfg.Placement = placementOf(pl)
				pj = append(pj, job{cfg: cfg, tr: trn})
			}
			r, errs := runAll(pj)
			noteErrors(pt, errs)
			mid, end := meanOrNaN(r[0]), meanOrNaN(r[1])
			rule := model.RecommendPlacement(n, prof.WriteFraction)
			simPick := placementOf(0)
			if end < mid {
				simPick = placementOf(1)
			}
			pt.AddRow(tn, fmt.Sprintf("%d", n), rule.String(),
				fmt.Sprintf("%.2f", mid), fmt.Sprintf("%.2f", end),
				fmt.Sprintf("%v", rule == simPick))
		}
	}
	pt.AddNote("the paper found the rule holds for Trace 1 with the cutoff nearer N=10, and breaks for Trace 2 (non-uniform access)")
	return ctx.Render(pt)
}

func placementOf(i int) layout.Placement {
	if i == 1 {
		return layout.EndPlacement
	}
	return layout.MiddlePlacement
}

// extClosedLoop sweeps the multiprogramming level, reporting the
// throughput/response saturation curves per organization.
func extClosedLoop(ctx *Context) error {
	name := "trace2"
	tr := ctx.Trace(name, 1)
	mpls := []int{1, 2, 4, 8, 16, 32}
	tp := &report.Figure{
		Title:  "Extension: closed-loop throughput vs MPL (per array, req/s)",
		XLabel: "MPL",
		YLabel: "req/s",
	}
	rt := &report.Figure{
		Title:  "Extension: closed-loop response vs MPL",
		XLabel: "MPL",
		YLabel: "response (ms)",
	}
	for _, m := range mpls {
		tp.XTicks = append(tp.XTicks, fmt.Sprintf("%d", m))
		rt.XTicks = append(rt.XTicks, fmt.Sprintf("%d", m))
	}
	for _, org := range []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5} {
		var tps, rts []float64
		for _, m := range mpls {
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			res, err := core.RunClosedLoop(cfg, tr, core.ClosedLoopConfig{MPL: m})
			if err != nil {
				return err
			}
			tps = append(tps, res.Throughput())
			rts = append(rts, res.Resp.Mean())
		}
		tp.Add(org.String(), tps...)
		rt.Add(org.String(), rts...)
	}
	if err := ctx.Render(tp); err != nil {
		return err
	}
	return ctx.Render(rt)
}

// ablateSched compares drive queue disciplines under the skewed trace:
// how much of RAID5's balancing advantage could a smarter drive scheduler
// have delivered on its own?
func ablateSched(ctx *Context) error {
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Ablation (%s): drive queue discipline, non-cached (resp ms)", name),
			Columns: []string{"org", "fifo", "sstf", "look"},
		}
		for _, org := range []array.Org{array.OrgBase, array.OrgRAID5} {
			var jobs []job
			for _, s := range []disk.Sched{disk.FIFO, disk.SSTF, disk.LOOK} {
				cfg := ctx.BaseConfig(name)
				cfg.Org = org
				cfg.DiskSched = s
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
			res, errs := runAll(jobs)
			noteErrors(t, errs)
			t.AddRow(org.String(),
				fmt.Sprintf("%.2f", meanOrNaN(res[0])),
				fmt.Sprintf("%.2f", meanOrNaN(res[1])),
				fmt.Sprintf("%.2f", meanOrNaN(res[2])))
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

// ablateSpindles measures the effect of spindle synchronization (the
// paper assumes none) on full-stripe-write-heavy traffic.
func ablateSpindles(ctx *Context) error {
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Ablation (%s): spindle synchronization, non-cached RAID5 (resp ms)", name),
			Columns: []string{"striping unit", "independent", "synchronized"},
		}
		for _, su := range []int{1, 16} {
			var jobs []job
			for _, syncd := range []bool{false, true} {
				cfg := ctx.BaseConfig(name)
				cfg.Org = array.OrgRAID5
				cfg.StripingUnit = su
				cfg.SyncSpindles = syncd
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
			res, errs := runAll(jobs)
			noteErrors(t, errs)
			t.AddRow(fmt.Sprintf("%d", su),
				fmt.Sprintf("%.2f", meanOrNaN(res[0])),
				fmt.Sprintf("%.2f", meanOrNaN(res[1])))
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

func init() {
	register(Experiment{ID: "ext-taxonomy", Title: "Extension: RAID taxonomy under OLTP vs DSS load (Chen et al.)", Figure: "extension (related work)",
		Knobs: "org: raid0/raid3/raid5/...; workload: OLTP vs DSS", Run: extTaxonomy})
}

// extTaxonomy compares the full organization taxonomy — including the
// RAID0 and RAID3 comparators from the related work — under the paper's
// OLTP load and under a large-transfer DSS load. The expected reversal:
// RAID3 (all arms per request) is hopeless for small random I/O but
// competitive for long scans; RAID0 tracks Base plus striping's
// balancing; the parity organizations pay their write penalty only where
// writes and small requests dominate.
func extTaxonomy(ctx *Context) error {
	dssProf := workload.DSSProfile()
	if ctx.opts.Scale < 1 {
		dssProf = dssProf.Scaled(ctx.opts.Scale * 5) // DSS is small; shrink less
	}
	dss, err := workload.Generate(dssProf)
	if err != nil {
		return err
	}
	oltp := ctx.Trace("trace2", 1)

	t := &report.Table{
		Title:   "Extension: organization taxonomy, OLTP (trace2) vs DSS scans (resp ms)",
		Columns: []string{"org", "drives", "oltp resp", "dss resp"},
	}
	orgs := []array.Org{array.OrgBase, array.OrgRAID0, array.OrgMirror, array.OrgRAID3, array.OrgRAID5, array.OrgParityStriping}
	var jobs []job
	for _, org := range orgs {
		cfg := ctx.BaseConfig("trace2")
		cfg.Org = org
		jobs = append(jobs, job{cfg: cfg, tr: oltp})
		cfgD := cfg
		cfgD.StripingUnit = 4 // a sensible scan-friendly unit for the striped orgs
		jobs = append(jobs, job{cfg: cfgD, tr: dss})
	}
	res, errs := runAll(jobs)
	noteErrors(t, errs)
	for i, org := range orgs {
		cfg := ctx.BaseConfig("trace2")
		cfg.Org = org
		t.AddRow(org.String(), fmt.Sprintf("%d", cfg.PhysicalDisks()),
			fmt.Sprintf("%.2f", meanOrNaN(res[2*i])),
			fmt.Sprintf("%.2f", meanOrNaN(res[2*i+1])))
	}
	t.AddNote("DSS requests average ~%d blocks; striped organizations move them with all arms in parallel", int(dssProf.MeanMultiBlocks))
	return ctx.Render(t)
}

func init() {
	register(Experiment{ID: "ext-paritylog", Title: "Extension: parity logging vs RAID5 (Stodolsky et al.)", Figure: "extension (related work)",
		Knobs: "org: plog vs raid5/mirror; log region size", Run: extParityLog})
}

// extParityLog compares the parity logging organization — parity-update
// images appended to per-disk logs in large sequential writes, folded
// into parity in the background — against the paper's organizations,
// non-cached. The expected shape (from the parity logging paper the
// related work cites): small writes approach mirrored-disk cost because
// the second RMW disappears from the foreground.
func extParityLog(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityLog}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Extension (%s): parity logging vs the paper's organizations (non-cached)", name),
			Columns: []string{"org", "resp (ms)", "write resp (ms)"},
		}
		var jobs []job
		for _, org := range orgs {
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		for i, org := range orgs {
			w := 0.0
			if res[i] != nil {
				w = res[i].WriteResp.Mean()
			}
			t.AddRow(org.String(), fmt.Sprintf("%.2f", meanOrNaN(res[i])), fmt.Sprintf("%.2f", w))
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}
