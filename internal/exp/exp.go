// Package exp defines the reproducible experiments: one per table and
// figure of the paper, plus the ablations and extensions DESIGN.md lists.
// Each experiment generates (or reuses) the synthetic traces, sweeps the
// parameter the paper sweeps, and renders the same rows/series the paper
// reports.
package exp

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"raidsim/internal/array"
	"raidsim/internal/campaign"
	"raidsim/internal/core"
	"raidsim/internal/obs"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the traces (1.0 = the paper's full request counts).
	// The arrival *rate* — the operating point — is preserved.
	Scale float64
	// Traces selects the workloads; default both {"trace1", "trace2"}.
	Traces []string
	// Seed perturbs the simulation (not the trace) randomness.
	Seed uint64
	// Out receives rendered tables and figures.
	Out io.Writer
	// CSV, when true, renders CSV instead of aligned tables.
	CSV bool
	// Plot, when true, renders figures as ASCII charts above their tables.
	Plot bool
	// Obs threads an observability config into every BaseConfig, so any
	// experiment can be run with windowed time series on.
	Obs obs.Config
	// Robust threads the request-robustness layer (deadlines, retries,
	// hedging, shedding) into every BaseConfig. Experiments that sweep
	// robustness themselves (ext-slo) override it.
	Robust array.RobustConfig
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if len(o.Traces) == 0 {
		o.Traces = []string{"trace1", "trace2"}
	}
	if o.Out == nil {
		panic("exp: Options.Out is required")
	}
}

// Experiment is one reproducible artifact of the paper, with a
// descriptor rich enough for an annotated registry listing: which paper
// figure or table it reproduces (or which extension it is), and the
// knobs it sweeps.
type Experiment struct {
	ID    string
	Title string
	// Figure names the paper artifact this reproduces ("Figure 5",
	// "Table 2"), or classifies the addition ("extension", "ablation").
	Figure string
	// Knobs summarizes the swept parameters and their ranges.
	Knobs string
	Run   func(ctx *Context) error
}

// Context carries shared state (cached traces) across an experiment.
type Context struct {
	opts    Options
	mu      sync.Mutex
	traces  map[string]*trace.Trace
	profile map[string]workload.Profile
}

// NewContext prepares a Context for the options.
func NewContext(opts Options) *Context {
	opts.fill()
	return &Context{
		opts:   opts,
		traces: make(map[string]*trace.Trace),
		profile: map[string]workload.Profile{
			"trace1": workload.Trace1Profile(),
			"trace2": workload.Trace2Profile(),
		},
	}
}

// Out returns the destination writer.
func (ctx *Context) Out() io.Writer { return ctx.opts.Out }

// TraceNames returns the selected workloads.
func (ctx *Context) TraceNames() []string { return ctx.opts.Traces }

// Profile returns the workload profile for a trace name.
func (ctx *Context) Profile(name string) workload.Profile {
	p, ok := ctx.profile[name]
	if !ok {
		panic(fmt.Sprintf("exp: unknown trace %q", name))
	}
	return p.Scaled(ctx.opts.Scale)
}

// Trace returns the (cached) generated trace at the given speed factor.
func (ctx *Context) Trace(name string, speed float64) *trace.Trace {
	key := fmt.Sprintf("%s@%g", name, speed)
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if t, ok := ctx.traces[key]; ok {
		return t
	}
	base, ok := ctx.traces[name+"@1"]
	if !ok {
		var err error
		base, err = workload.Generate(ctx.Profile(name))
		if err != nil {
			panic(fmt.Sprintf("exp: generating %s: %v", name, err))
		}
		ctx.traces[name+"@1"] = base
	}
	if speed == 1 {
		return base
	}
	t, err := base.Scale(speed)
	if err != nil {
		panic(fmt.Sprintf("exp: scaling %s: %v", name, err))
	}
	ctx.traces[key] = t
	return t
}

// BaseConfig returns the paper's default configuration (Table 4) for a
// workload: the core defaults (N = 10, 4 KB blocks, Disk First
// synchronization, 1-block striping unit, middle-cylinder parity
// placement, 16 MB cache when caching is on) with the workload's disk
// count, the run's seed, and the run's observability config.
func (ctx *Context) BaseConfig(name string) core.Config {
	p := ctx.profile[name]
	return core.Config{
		DataDisks: p.NumDisks,
		Sync:      array.DF,
		Seed:      ctx.opts.Seed + 1,
		Obs:       ctx.opts.Obs,
		Robust:    ctx.opts.Robust,
	}.Normalize()
}

// Render writes a renderable (Table or Figure) honoring the CSV option.
type renderable interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

// plottable is a renderable that can also draw itself as an ASCII chart.
type plottable interface {
	RenderPlot(io.Writer) error
}

// Render emits r to the context's output.
func (ctx *Context) Render(r renderable) error {
	if ctx.opts.CSV {
		return r.RenderCSV(ctx.opts.Out)
	}
	if ctx.opts.Plot {
		if p, ok := r.(plottable); ok {
			if err := p.RenderPlot(ctx.opts.Out); err != nil {
				return err
			}
		}
	}
	return r.Render(ctx.opts.Out)
}

// job is one simulation point of a sweep.
type job struct {
	cfg core.Config
	tr  *trace.Trace
}

// describe names a job's configuration, so a failed run's error says
// which point of the sweep failed rather than leaving an unexplained
// blank cell.
func describe(cfg core.Config) string {
	s := fmt.Sprintf("org=%s/n=%d/sync=%s", cfg.Org, cfg.N, cfg.Sync)
	if cfg.Cached {
		s += fmt.Sprintf("/cache=%dMB", cfg.CacheMB)
	}
	if cfg.StripingUnit != 1 {
		s += fmt.Sprintf("/su=%d", cfg.StripingUnit)
	}
	return s
}

// runAll executes the jobs on the shared campaign pool (bounded by
// GOMAXPROCS) and returns results in order. A failed run (e.g.
// hopelessly overloaded at double trace speed) yields a nil entry and
// an error message naming the failing configuration; render it with
// noteErrors.
func runAll(jobs []job) ([]*core.Results, []string) {
	workers := runtime.GOMAXPROCS(0)
	points := make([]campaign.Point, len(jobs))
	for i, j := range jobs {
		// Keep nested parallelism bounded: the per-config run uses the
		// worker budget too, so restrict each to a couple of array
		// workers when many configs run at once.
		cfg := j.cfg
		if cfg.Workers == 0 && len(jobs) >= workers {
			cfg.Workers = 2
		}
		// The index prefix keeps IDs unique when a sweep repeats a
		// configuration.
		points[i] = campaign.Point{
			ID:     fmt.Sprintf("%03d %s", i, describe(cfg)),
			Config: cfg,
			Trace:  j.tr,
		}
	}
	out := make([]*core.Results, len(jobs))
	oc, err := campaign.Execute(points, campaign.Options{
		Workers:  workers,
		OnResult: func(i int, _ campaign.Point, res *core.Results) { out[i] = res },
	})
	if err != nil {
		// Structural (duplicate-ID) errors cannot happen with
		// index-prefixed IDs; report defensively on every job.
		errs := make([]string, len(jobs))
		for i := range errs {
			errs[i] = err.Error()
		}
		return out, errs
	}
	return out, oc.Errors
}

// noter carries footnotes (report.Table and report.Figure both do).
type noter interface {
	AddNote(format string, args ...interface{})
}

// noteErrors attaches failed-run errors to a table or figure, so every
// NaN (blank) cell is explained by a note naming the failing config.
func noteErrors(n noter, errs []string) {
	for _, e := range errs {
		if e != "" {
			n.AddNote("failed run: %s", e)
		}
	}
}

// meanOrNaN extracts the mean response time, NaN for failed runs.
func meanOrNaN(r *core.Results) float64 {
	if r == nil {
		return math.NaN()
	}
	return r.MeanResponseMS()
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
