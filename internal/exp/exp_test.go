package exp

import (
	"strings"
	"testing"

	"raidsim/internal/report"
)

func testCtx(buf *strings.Builder, traces ...string) *Context {
	if len(traces) == 0 {
		traces = []string{"trace2"}
	}
	return NewContext(Options{
		Scale:  0.02,
		Traces: traces,
		Seed:   1,
		Out:    buf,
	})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablate-destage", "ablate-pstripe", "ablate-sync-destage",
		"ablate-sched", "ablate-spindles",
		"ext-rebuild", "ext-mttdl", "ext-model", "ext-closedloop", "ext-taxonomy", "ext-paritylog",
		"ext-raid10", "ext-latency", "ext-timeseries", "ext-slo", "ext-diurnal",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("experiment %q missing", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if e.Figure == "" || e.Knobs == "" {
			t.Errorf("experiment %q missing -list annotations (figure %q, knobs %q)", e.ID, e.Figure, e.Knobs)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id resolved")
	}
}

func TestTables(t *testing.T) {
	var buf strings.Builder
	ctx := testCtx(&buf, "trace1", "trace2")
	for _, id := range []string{"table1", "table2", "ext-mttdl"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(ctx); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"5400 rpm", "Trace 1", "Trace 2", "MTTDL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	var buf strings.Builder
	ctx := testCtx(&buf)
	e, _ := Get("fig5")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "base", "mirror", "raid5", "pstripe"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("fig5 contains failed runs:\n%s", out)
	}
}

func TestFig11CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	var buf strings.Builder
	ctx := NewContext(Options{Scale: 0.02, Traces: []string{"trace2"}, Seed: 1, Out: &buf, CSV: true})
	e, _ := Get("fig11")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cache,base-read,base-write,raid5-read,raid5-write") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "8MB,") {
		t.Errorf("CSV rows missing:\n%s", out)
	}
}

func TestRunAllFailureNamesTheConfig(t *testing.T) {
	var buf strings.Builder
	ctx := testCtx(&buf)
	tr := ctx.Trace("trace2", 1)
	good := ctx.BaseConfig("trace2")
	bad := ctx.BaseConfig("trace2")
	bad.N = 1 // rejected by config validation
	res, errs := runAll([]job{{cfg: good, tr: tr}, {cfg: bad, tr: tr}})
	if res[0] == nil || errs[0] != "" {
		t.Fatalf("good run failed: %q", errs[0])
	}
	if res[1] != nil || errs[1] == "" {
		t.Fatal("bad run did not fail")
	}
	for _, want := range []string{"n=1", "org="} {
		if !strings.Contains(errs[1], want) {
			t.Errorf("error %q does not name the failing config (missing %q)", errs[1], want)
		}
	}
}

func TestNoteErrorsExplainsBlankCells(t *testing.T) {
	var buf strings.Builder
	tbl := &report.Table{Title: "t", Columns: []string{"a"}}
	tbl.AddRow("x")
	noteErrors(tbl, []string{"", "001 org=raid5/n=1/sync=DF: core: N must be >= 2", ""})
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "failed run: 001 org=raid5/n=1") {
		t.Errorf("rendered table missing failure note:\n%s", out)
	}
}

func TestTraceCaching(t *testing.T) {
	var buf strings.Builder
	ctx := testCtx(&buf)
	a := ctx.Trace("trace2", 1)
	b := ctx.Trace("trace2", 1)
	if a != b {
		t.Error("trace not cached")
	}
	fast := ctx.Trace("trace2", 2)
	if fast == a {
		t.Error("speed-scaled trace should be distinct")
	}
	if fast.Duration() >= a.Duration() {
		t.Error("speed 2 should shorten the trace")
	}
}

func TestBaseConfigDefaultsMatchTable4(t *testing.T) {
	var buf strings.Builder
	ctx := testCtx(&buf)
	cfg := ctx.BaseConfig("trace2")
	if cfg.N != 10 || cfg.StripingUnit != 1 || cfg.CacheMB != 16 {
		t.Errorf("defaults drifted from Table 4: %+v", cfg)
	}
	if cfg.Spec.BlockBytes != 4096 {
		t.Errorf("block size %d, want 4096", cfg.Spec.BlockBytes)
	}
}
