package exp

import (
	"fmt"
	"sort"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/obs"
	"raidsim/internal/report"
	"raidsim/internal/sim"
)

func init() {
	register(Experiment{ID: "ext-timeseries", Title: "Extension: windowed time series — destage bursts and a mid-run rebuild", Figure: "extension (observability)",
		Knobs: "cached RAID5 on trace1; disk 0 fails at T/3 with a hot spare; windowed latency/util/destage/rebuild series", Run: extTimeseries})
}

// extTimeseries exercises the observability layer on the transients the
// steady-state figures average away: the periodic destage process
// writing back dirty bursts, and a mid-run disk failure whose rebuild
// window shows up as a latency spike plus a stretch of degraded-mode
// time — all on the paper's large OLTP workload.
func extTimeseries(ctx *Context) error {
	tr := ctx.Trace("trace1", 1)
	cfg := ctx.BaseConfig("trace1")
	cfg.Org = array.OrgRAID5
	cfg.Cached = true
	cfg.Spares = 1
	failAt := tr.Duration() / 3
	cfg.Fault.DiskFails = []fault.DiskFail{{Disk: 0, At: failAt}}

	// Window the run so the foreground span fills ~32 windows; the
	// rebuild may extend the series past the last arrival.
	win := tr.Duration() / 32
	if win < sim.Second {
		win = sim.Second
	} else {
		win -= win % sim.Second
	}
	cfg.Obs.Window = win
	// Retain every event (requests included) so the fault markers are
	// not overwritten by later request events.
	cfg.Obs.TraceCap = len(tr.Records) + 4096
	// Keep the slowest requests per class so the tail-anatomy table can
	// attribute the rebuild-window latency spike stage by stage.
	if cfg.Obs.SpanTopK == 0 {
		cfg.Obs.SpanTopK = 4
	}

	res, err := core.Run(cfg, tr)
	if err != nil {
		return err
	}

	if err := ctx.Render(report.SeriesFigure(
		fmt.Sprintf("Extension: response over time, cached RAID5, disk 0 fails at %.0fs", float64(failAt)/float64(sim.Second)),
		res.Series)); err != nil {
		return err
	}

	st := report.SeriesTable("Extension: windowed time series (cached RAID5, trace1)", res.Series)
	st.AddNote("destg blk column: the periodic destage process writing back dirty bursts")
	st.AddNote("rebuild blk + degraded columns: the hot-spare rebuild window after the failure at %.0fs", float64(failAt)/float64(sim.Second))
	if err := ctx.Render(st); err != nil {
		return err
	}

	if len(res.TailSpans) > 0 {
		// TailSpans keeps the slowest K per class *per array*; with
		// ceil(130/N) arrays that is too many rows, so re-select the
		// slowest few per class system-wide.
		byClass := map[string][]obs.SpanSample{}
		for _, s := range res.TailSpans {
			k := s.Tree.Class
			if s.Tree.Degraded {
				k += "/degraded"
			}
			byClass[k] = append(byClass[k], s)
		}
		var tail []obs.SpanSample
		for _, g := range byClass {
			sort.Slice(g, func(i, j int) bool {
				return g[i].Tree.Duration() > g[j].Tree.Duration()
			})
			if len(g) > 4 {
				g = g[:4]
			}
			tail = append(tail, g...)
		}
		sort.Slice(tail, func(i, j int) bool {
			return tail[i].Tree.Duration() > tail[j].Tree.Duration()
		})
		tt := report.TailTable("tail anatomy: slowest requests per class", tail)
		if err := ctx.Render(tt); err != nil {
			return err
		}
	}

	ev := &report.Table{
		Title:   "fault events (from the observability trace)",
		Columns: []string{"t (s)", "array", "event", "disk"},
	}
	for _, e := range res.ObsEvents {
		switch e.Kind {
		case obs.EvDiskFail, obs.EvSpareSwap, obs.EvRebuildDone, obs.EvCacheFail, obs.EvDataLoss:
			ev.AddRow(
				fmt.Sprintf("%.2f", float64(e.At)/float64(sim.Second)),
				fmt.Sprintf("%d", e.Array),
				e.Kind,
				fmt.Sprintf("%d", e.Disk),
			)
		}
	}
	return ctx.Render(ev)
}
