package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/geom"
	"raidsim/internal/recovery"
	"raidsim/internal/reliability"
	"raidsim/internal/report"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

func init() {
	register(Experiment{ID: "ablate-destage", Title: "Ablation: periodic destage vs pure LRU write-back (section 3.4)", Figure: "ablation (section 3.4)",
		Knobs: "writeback: periodic/pure-LRU; org: cached orgs", Run: ablateDestage})
	register(Experiment{ID: "ablate-pstripe", Title: "Ablation: fine-grained parity striping (section 4.2.1 future work)", Figure: "ablation (section 4.2.1)",
		Knobs: "parity stripe unit: classic vs fine-grained", Run: ablatePStripe})
	register(Experiment{ID: "ablate-sync-destage", Title: "Ablation: destage period", Figure: "ablation (section 3.4)",
		Knobs: "destage period: 0.25..8 s", Run: ablateDestagePeriod})
	register(Experiment{ID: "ext-rebuild", Title: "Extension: degraded-mode and rebuild performance", Figure: "extension",
		Knobs: "mode: normal/degraded/rebuilding; rebuild pause", Run: extRebuild})
	register(Experiment{ID: "ext-mttdl", Title: "Extension: MTTDL of the organizations (intro footnote)", Figure: "extension (intro footnote)",
		Knobs: "org: mirror/parity; Monte-Carlo lifetimes", Run: extMTTDL})
}

// ablateDestage compares the periodic destage process against plain LRU
// write-back (dirty blocks written only on eviction). The paper reports
// the periodic policy "always performs better for all organizations".
func ablateDestage(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	sizes := []int{8, 32, 128}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Ablation (%s): periodic destage vs pure LRU write-back (resp ms)", name),
			Columns: []string{"org", "cacheMB", "periodic", "pure-LRU", "LRU/periodic"},
		}
		for _, org := range orgs {
			for _, mb := range sizes {
				var jobs []job
				for _, pure := range []bool{false, true} {
					cfg := ctx.BaseConfig(name)
					cfg.Org = org
					cfg.Cached = true
					cfg.CacheMB = mb
					cfg.PureLRUWriteback = pure
					jobs = append(jobs, job{cfg: cfg, tr: tr})
				}
				res, errs := runAll(jobs)
				noteErrors(t, errs)
				p, l := meanOrNaN(res[0]), meanOrNaN(res[1])
				t.AddRow(org.String(), fmt.Sprintf("%d", mb),
					fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", l), fmt.Sprintf("%.3f", l/p))
			}
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

// ablatePStripe evaluates the paper's proposed fix for Parity Striping's
// correlated-load problem: striping the parity at a finer grain so a hot
// data area spreads its parity updates over all the other disks.
func ablatePStripe(ctx *Context) error {
	units := []int64{0, 4096, 1024, 256, 64} // 0 = classic whole-area parity
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Ablation (%s): parity striping sub-unit (non-cached, N=10)", name),
			Columns: []string{"parity unit (blocks)", "resp (ms)", "max disk util"},
		}
		var jobs []job
		for _, u := range units {
			cfg := ctx.BaseConfig(name)
			cfg.Org = array.OrgParityStriping
			cfg.ParityStripeUnit = u
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		for i, u := range units {
			label := "classic"
			if u > 0 {
				label = fmt.Sprintf("%d", u)
			}
			var umax float64
			if res[i] != nil {
				for _, x := range res[i].DiskUtil {
					if x > umax {
						umax = x
					}
				}
			}
			t.AddRow(label, fmt.Sprintf("%.2f", meanOrNaN(res[i])), fmt.Sprintf("%.3f", umax))
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

// ablateDestagePeriod sweeps the destage period for cached RAID5: short
// periods raise the write traffic, long ones raise the chance a miss
// waits on a dirty victim (section 3.4's tradeoff).
func ablateDestagePeriod(ctx *Context) error {
	periods := []sim.Time{sim.Second / 4, sim.Second, 4 * sim.Second, 16 * sim.Second}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Ablation (%s): destage period, cached RAID5 (16MB)", name),
			Columns: []string{"period (s)", "resp (ms)", "dirty evictions"},
		}
		var jobs []job
		for _, p := range periods {
			cfg := ctx.BaseConfig(name)
			cfg.Org = array.OrgRAID5
			cfg.Cached = true
			cfg.DestagePeriod = p
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		for i, p := range periods {
			var de int64
			if res[i] != nil {
				de = res[i].Cache.DirtyEvictions
			}
			t.AddRow(fmt.Sprintf("%.2f", float64(p)/float64(sim.Second)),
				fmt.Sprintf("%.2f", meanOrNaN(res[i])), fmt.Sprintf("%d", de))
		}
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

// extRebuild measures a RAID5 array healthy, degraded, and during
// rebuild, under a Trace2-like foreground load.
func extRebuild(ctx *Context) error {
	prof := ctx.Profile("trace2")
	tr, err := workload.Generate(prof)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Extension: RAID5 (N=10) degraded and rebuilding (Trace 2 load)",
		Columns: []string{"mode", "resp (ms)", "degraded resp (ms)", "rebuild (min)"},
	}
	type mode struct {
		name    string
		failed  bool
		rebuild bool
	}
	for _, m := range []mode{
		{"healthy", false, false},
		{"degraded", true, false},
		{"rebuilding", true, true},
	} {
		eng := sim.New()
		cfg := recovery.Config{
			N:            10,
			Spec:         geom.Default(),
			StripingUnit: 1,
			FailedDisk:   -1, // healthy
			Rebuild:      m.rebuild,
			RebuildStart: 0,
			RebuildPause: 20 * sim.Millisecond,
			Seed:         ctx.opts.Seed,
		}
		if m.failed {
			cfg.FailedDisk = 0
		}
		s, err := recovery.New(eng, cfg)
		if err != nil {
			return err
		}
		capacity := s.DataBlocks()
		idx := 0
		var feed func()
		feed = func() {
			r := tr.Records[idx]
			idx++
			lba := r.LBA % capacity
			s.Submit(r.Op, lba)
			if idx < len(tr.Records) {
				eng.At(tr.Records[idx].At, feed)
			}
		}
		if len(tr.Records) > 0 {
			eng.At(tr.Records[0].At, feed)
		}
		eng.RunUntil(tr.Duration())
		for i := 0; i < 4000 && (!s.Drained() || (m.rebuild && !s.Results().RebuildDone)); i++ {
			eng.RunFor(sim.Second)
		}
		res := s.Results()
		reb := "-"
		if res.RebuildDone && m.rebuild {
			reb = fmt.Sprintf("%.1f", float64(res.RebuildTime)/float64(60*sim.Second))
		}
		t.AddRow(m.name, fmt.Sprintf("%.2f", res.Resp.Mean()),
			fmt.Sprintf("%.2f", res.DegradedResp.Mean()), reb)
	}
	return ctx.Render(t)
}

// extMTTDL reproduces the introduction's reliability arithmetic.
func extMTTDL(ctx *Context) error {
	p := reliability.Params{DiskMTTFHours: 100000, MTTRHours: 24}
	t := &report.Table{
		Title:   "Extension: MTTDL (disk MTTF 100,000 h, MTTR 24 h)",
		Columns: []string{"organization", "disks", "MTTDL (days)", "P(loss in 1y)"},
	}
	add := func(name string, disks int, mttdl float64) {
		t.AddRow(name, fmt.Sprintf("%d", disks),
			fmt.Sprintf("%.0f", reliability.HoursToDays(mttdl)),
			fmt.Sprintf("%.4f", reliability.DataLossProbability(mttdl, 365*24)))
	}
	add("non-redundant farm (paper footnote)", 150, reliability.FarmMTTDLHours(p, 150))
	add("base 130 disks", 130, reliability.FarmMTTDLHours(p, 130))
	add("mirror 130 pairs", 260, reliability.MirrorFarmMTTDLHours(p, 130))
	add("raid5 13 arrays N=10", 143, reliability.ArrayFarmMTTDLHours(p, 10, 13))
	add("raid5 26 arrays N=5", 156, reliability.ArrayFarmMTTDLHours(p, 5, 26))
	add("raid5 7 arrays N=20", 147, reliability.ArrayFarmMTTDLHours(p, 20, 7))
	t.AddNote("footnote check: 150 disks -> MTTDL %.1f days (< 28 days as the paper states)",
		reliability.HoursToDays(reliability.FarmMTTDLHours(p, 150)))
	return ctx.Render(t)
}
