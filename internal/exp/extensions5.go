package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/report"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func init() {
	register(Experiment{ID: "ext-diurnal", Title: "Extension: multi-client diurnal workload — per-class service across organizations", Figure: "extension",
		Knobs: "workload: built-in diurnal spec (OLTP gold + scan batch + backup batch); org: mirror, raid10, raid5+cache; gold/batch deadlines on", Run: extDiurnal})
}

// extDiurnal runs the built-in three-client diurnal workload spec — a
// latency-sensitive OLTP class riding a 24 h rate curve, a nightly batch
// scan window, and an early-morning backup spike — against the
// redundant organizations, with per-class SLO deadlines armed. The
// question the classless experiments cannot ask: when the backup spike
// lands on top of the OLTP morning ramp, which organization keeps the
// gold class inside its deadline, and at what cost to the batch
// classes? Per-class accounting (res.Classes) answers it directly.
func extDiurnal(ctx *Context) error {
	sp, err := workload.Builtin("diurnal")
	if err != nil {
		return err
	}
	sp = sp.Scaled(ctx.opts.Scale)
	tr, err := sp.Generate()
	if err != nil {
		return err
	}

	type point struct {
		label  string
		org    array.Org
		cached bool
	}
	points := []point{
		{"mirror", array.OrgMirror, false},
		{"raid10", array.OrgRAID10, false},
		{"raid5+cache", array.OrgRAID5, true},
	}
	var jobs []job
	for _, p := range points {
		cfg := ctx.BaseConfig("trace2")
		cfg.DataDisks = tr.NumDisks
		cfg.Org = p.org
		cfg.Cached = p.cached
		if p.org == array.OrgRAID10 {
			cfg.StripingUnit = 4
		}
		cfg.Robust.Deadline = 60 * sim.Millisecond
		cfg.Robust.BatchDeadline = 240 * sim.Millisecond
		jobs = append(jobs, job{cfg: cfg, tr: tr})
	}
	res, errs := runAll(jobs)

	t := &report.Table{
		Title: fmt.Sprintf("Extension: diurnal 3-client workload (%d requests, %.0fs compressed horizon), 60ms gold / 240ms batch deadlines",
			len(tr.Records), float64(tr.Duration())/float64(sim.Second)),
		Columns: []string{"config", "class", "slo", "requests", "mean ms", "p95 ms", "p99 ms", "miss%"},
	}
	noteErrors(t, errs)
	for i, p := range points {
		r := res[i]
		if r == nil {
			t.AddRow(p.label, "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		for j := range r.Classes {
			c := &r.Classes[j]
			miss := "-"
			if n := c.DeadlineMet + c.DeadlineMissed; n > 0 {
				miss = fmt.Sprintf("%.2f%%", 100*float64(c.DeadlineMissed)/float64(n))
			}
			t.AddRow(p.label, c.Name, trace.SLOName(c.SLO),
				fmt.Sprintf("%d", c.Requests),
				fmt.Sprintf("%.2f", c.Resp.Mean()),
				fmt.Sprintf("%.2f", c.Resp.Quantile(0.95)),
				fmt.Sprintf("%.2f", c.Resp.Quantile(0.99)),
				miss)
		}
	}
	t.AddNote("oltp follows a 24h diurnal curve (gold SLO); scan is a night batch window; backup is a 2h-4h spike (both batch SLO)")
	t.AddNote("the spec compresses the 24h horizon by its time_scale; arrival rates — the operating point — are preserved")
	return ctx.Render(t)
}
