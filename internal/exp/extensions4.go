package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/fault"
	"raidsim/internal/report"
	"raidsim/internal/sim"
)

func init() {
	register(Experiment{ID: "ext-slo", Title: "Extension: deadline misses under a sick disk, with and without the robustness layer", Figure: "extension",
		Knobs: "org: raid10, raid5+cache; gold deadline sweep; sick disk (slow, transient errors); retries/hedging/shedding on vs off", Run: extSLO})
}

// extSLO measures the goodput-vs-deadline curve when one drive turns
// sick mid-run (4x slower, transiently failing reads) and compares a
// naive array against one using the robustness layer: bounded retries
// everywhere, hedged mirror reads on RAID1/0, and dirty-fraction load
// shedding on the cached RAID5. Expected shape: the sick drive fattens
// the response tail, so tight deadlines miss heavily; hedging clips the
// tail on the mirrored organization (the healthy twin answers first)
// while retries keep transient errors from escalating into stripe-wide
// reconstruction reads.
func extSLO(ctx *Context) error {
	type point struct {
		label  string
		org    array.Org
		cached bool
		robust bool
	}
	points := []point{
		{"raid10 naive", array.OrgRAID10, false, false},
		{"raid10 robust", array.OrgRAID10, false, true},
		{"raid5+cache naive", array.OrgRAID5, true, false},
		{"raid5+cache robust", array.OrgRAID5, true, true},
	}
	deadlines := []sim.Time{30 * sim.Millisecond, 60 * sim.Millisecond, 120 * sim.Millisecond}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		sick := fault.SickDisk{
			Disk:          0,
			At:            tr.Duration() / 4,
			Until:         3 * tr.Duration() / 4,
			SlowFactor:    4,
			TransientRate: 0.02,
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Extension (%s): deadline misses with a sick disk (4x slow + 2%% transient errors over the middle half)", name),
			Columns: []string{"config", "deadline", "gold miss%", "batch miss%", "gold p95 (ms)", "retries", "hedge wins", "shed"},
		}
		var jobs []job
		for _, p := range points {
			for _, dl := range deadlines {
				cfg := ctx.BaseConfig(name)
				cfg.Org = p.org
				cfg.Cached = p.cached
				if p.org == array.OrgRAID10 {
					cfg.StripingUnit = 4
				}
				cfg.Fault = fault.Config{SickDisks: []fault.SickDisk{sick}}
				cfg.Robust.Deadline = dl
				cfg.Robust.BatchDeadline = 4 * dl
				if p.robust {
					cfg.Robust.Retries = 2
					if p.org == array.OrgRAID10 {
						cfg.Robust.HedgeAfter = 30 * sim.Millisecond
						cfg.Robust.HedgeQuantile = 0.95
					}
					if p.cached {
						cfg.Robust.ShedDirty = 0.9
					}
				}
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		i := 0
		for _, p := range points {
			for _, dl := range deadlines {
				r := res[i]
				i++
				if r == nil {
					t.AddRow(p.label, fmt.Sprintf("%dms", dl/sim.Millisecond), "-", "-", "-", "-", "-", "-")
					continue
				}
				rb := &r.Robust
				t.AddRow(p.label,
					fmt.Sprintf("%dms", dl/sim.Millisecond),
					fmt.Sprintf("%.2f%%", 100*rb.DeadlineMissFrac(array.SLOGold)),
					fmt.Sprintf("%.2f%%", 100*rb.DeadlineMissFrac(array.SLOBatch)),
					fmt.Sprintf("%.2f", rb.ClassResp[array.SLOGold].Quantile(0.95)),
					fmt.Sprintf("%d", rb.Retries),
					fmt.Sprintf("%d", rb.HedgeWins),
					fmt.Sprintf("%d", rb.Shed[array.SLOBatch]))
			}
		}
		t.AddNote("robust = 2 retries with backoff; RAID1/0 adds hedged reads (p95-derived delay), cached RAID5 adds dirty-fraction shedding at 0.9")
		t.AddNote("naive runs still count transient errors: they fall straight through to redundancy reconstruction")
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}
