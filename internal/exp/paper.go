package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/report"
	"raidsim/internal/trace"
)

func init() {
	register(Experiment{ID: "table1", Title: "Table 1: disk and channel parameters", Figure: "Table 1",
		Knobs: "none (static model parameters)", Run: table1})
	register(Experiment{ID: "table2", Title: "Table 2: trace characteristics", Figure: "Table 2",
		Knobs: "trace: trace1, trace2", Run: table2})
	register(Experiment{ID: "fig4", Title: "Figure 4: synchronization policies vs array size", Figure: "Figure 4",
		Knobs: "sync: SI/RF/RF-PR/DF/DF-PR; N: 4..32", Run: fig4})
	register(Experiment{ID: "fig5", Title: "Figure 5: response time vs array size (non-cached)", Figure: "Figure 5",
		Knobs: "org: base/mirror/raid5/pstripe; N: 4..32", Run: fig5})
	register(Experiment{ID: "fig6", Title: "Figure 6: per-disk accesses, Base (Trace 1)", Figure: "Figure 6",
		Knobs: "per-disk histogram, Base", Run: fig6})
	register(Experiment{ID: "fig7", Title: "Figure 7: per-disk accesses, RAID5 (Trace 1)", Figure: "Figure 7",
		Knobs: "per-disk histogram, RAID5", Run: fig7})
	register(Experiment{ID: "fig8", Title: "Figure 8: striping unit (non-cached RAID5)", Figure: "Figure 8",
		Knobs: "striping unit: 1..24 blocks", Run: fig8})
	register(Experiment{ID: "fig9", Title: "Figure 9: parity placement (Parity Striping)", Figure: "Figure 9",
		Knobs: "placement: middle/end; N: 4..32", Run: fig9})
	register(Experiment{ID: "fig10", Title: "Figure 10: trace speed (non-cached)", Figure: "Figure 10",
		Knobs: "trace speed: 0.5x..2x", Run: fig10})
}

func table1(ctx *Context) error {
	spec := geom.Default()
	seek := geom.MustCalibrateSeek(spec)
	t := &report.Table{
		Title:   "Table 1: disk and channel parameters",
		Columns: []string{"Parameter", "Value"},
	}
	t.AddRow("Rotation speed", fmt.Sprintf("%d rpm", spec.RPM))
	t.AddRow("Average seek", fmt.Sprintf("%.1f ms", spec.AvgSeekMS))
	t.AddRow("Maximal seek", fmt.Sprintf("%.0f ms", spec.MaxSeekMS))
	t.AddRow("Tracks per platter", fmt.Sprintf("%d", spec.Cylinders))
	t.AddRow("Sectors per track", fmt.Sprintf("%d", spec.SectorsPerTrack))
	t.AddRow("Bytes per sector", fmt.Sprintf("%d", spec.SectorBytes))
	t.AddRow("Recording surfaces", fmt.Sprintf("%d", spec.Heads))
	t.AddRow("Channel transfer rate", fmt.Sprintf("%.0f MB/s", spec.ChannelMBps))
	t.AddRow("Capacity", fmt.Sprintf("%.2f GB", float64(spec.CapacityBytes())/1e9))
	t.AddNote("seek curve t(d) = %.4f*sqrt(d-1) + %.5f*(d-1) + %.2f ms; model mean %.2f ms",
		seek.A, seek.B, seek.C, seek.MeanMS())
	return ctx.Render(t)
}

func table2(ctx *Context) error {
	t := &report.Table{
		Title:   "Table 2: trace characteristics (synthetic, scaled)",
		Columns: []string{"Metric", "Trace 1", "Trace 2"},
	}
	var cs []trace.Characteristics
	for _, name := range []string{"trace1", "trace2"} {
		cs = append(cs, trace.Characterize(ctx.Trace(name, 1)))
	}
	row := func(label string, f func(c trace.Characteristics) string) {
		t.AddRow(label, f(cs[0]), f(cs[1]))
	}
	row("Duration", func(c trace.Characteristics) string {
		return fmt.Sprintf("%ds", c.Duration/1e9)
	})
	row("# of disks", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.NumDisks) })
	row("# of I/O accesses", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.Accesses) })
	row("# of blocks transferred", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.BlocksTransferred) })
	row("# of single block reads", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.SingleBlockReads) })
	row("# of single block writes", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.SingleBlockWrites) })
	row("# of multiblock reads", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.MultiBlockReads) })
	row("# of multiblock writes", func(c trace.Characteristics) string { return fmt.Sprintf("%d", c.MultiBlockWrites) })
	row("write fraction", func(c trace.Characteristics) string { return fmt.Sprintf("%.3f", c.WriteFraction()) })
	row("disk skew (peak/mean)", func(c trace.Characteristics) string { return fmt.Sprintf("%.2f", c.Skew()) })
	return ctx.Render(t)
}

var arraySizes = []int{5, 10, 15, 20}

// fig4: five synchronization policies for RAID5 and Parity Striping,
// non-cached, response time vs array size.
func fig4(ctx *Context) error {
	policies := []array.SyncPolicy{array.SI, array.RF, array.RFPR, array.DF, array.DFPR}
	for _, name := range ctx.TraceNames() {
		for _, org := range []array.Org{array.OrgRAID5, array.OrgParityStriping} {
			fig := &report.Figure{
				Title:  fmt.Sprintf("Figure 4 (%s, %s): synchronization policies", name, org),
				XLabel: "N",
				YLabel: "response time (ms)",
			}
			for _, n := range arraySizes {
				fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", n))
			}
			tr := ctx.Trace(name, 1)
			for _, pol := range policies {
				var jobs []job
				for _, n := range arraySizes {
					cfg := ctx.BaseConfig(name)
					cfg.Org = org
					cfg.N = n
					cfg.Sync = pol
					jobs = append(jobs, job{cfg: cfg, tr: tr})
				}
				res, errs := runAll(jobs)
				noteErrors(fig, errs)
				vals := make([]float64, len(res))
				for i, r := range res {
					vals[i] = meanOrNaN(r)
				}
				fig.Add(pol.String(), vals...)
			}
			if err := ctx.Render(fig); err != nil {
				return err
			}
		}
	}
	return nil
}

// fig5: the four organizations, non-cached, response time vs array size.
func fig5(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	for _, name := range ctx.TraceNames() {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 5 (%s): response time vs array size, non-cached", name),
			XLabel: "N",
			YLabel: "response time (ms)",
		}
		for _, n := range arraySizes {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", n))
		}
		tr := ctx.Trace(name, 1)
		for _, org := range orgs {
			var jobs []job
			for _, n := range arraySizes {
				cfg := ctx.BaseConfig(name)
				cfg.Org = org
				cfg.N = n
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
			res, errs := runAll(jobs)
			noteErrors(fig, errs)
			vals := make([]float64, len(res))
			for i, r := range res {
				vals[i] = meanOrNaN(r)
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// perDiskAccesses runs one config on Trace 1 and renders the access count
// of every physical disk.
func perDiskAccesses(ctx *Context, title string, mutate func(*core.Config)) error {
	cfg := ctx.BaseConfig("trace1")
	cfg.Org = array.OrgBase
	mutate(&cfg)
	res, err := core.Run(cfg, ctx.Trace("trace1", 1))
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   title,
		Columns: []string{"disk", "accesses", "utilization"},
	}
	for i, n := range res.DiskAccesses {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", n), fmt.Sprintf("%.4f", res.DiskUtil[i]))
	}
	var max, sum int64
	for _, n := range res.DiskAccesses {
		sum += n
		if n > max {
			max = n
		}
	}
	mean := float64(sum) / float64(len(res.DiskAccesses))
	t.AddNote("peak/mean access skew = %.2f", float64(max)/mean)
	return ctx.Render(t)
}

func fig6(ctx *Context) error {
	return perDiskAccesses(ctx, "Figure 6: accesses per disk, Base organization (Trace 1)",
		func(cfg *core.Config) { cfg.Org = array.OrgBase })
}

func fig7(ctx *Context) error {
	return perDiskAccesses(ctx, "Figure 7: accesses per disk, RAID5 1-block striping unit (Trace 1)",
		func(cfg *core.Config) { cfg.Org = array.OrgRAID5; cfg.StripingUnit = 1 })
}

var stripingUnits = []int{1, 2, 4, 8, 16, 32, 64}

// fig8: non-cached RAID5 response time vs striping unit.
func fig8(ctx *Context) error {
	for _, name := range ctx.TraceNames() {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 8 (%s): striping unit, non-cached RAID5 (N=10)", name),
			XLabel: "striping unit (blocks)",
			YLabel: "response time (ms)",
		}
		for _, su := range stripingUnits {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", su))
		}
		tr := ctx.Trace(name, 1)
		var jobs []job
		for _, su := range stripingUnits {
			cfg := ctx.BaseConfig(name)
			cfg.Org = array.OrgRAID5
			cfg.StripingUnit = su
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(fig, errs)
		vals := make([]float64, len(res))
		for i, r := range res {
			vals[i] = meanOrNaN(r)
		}
		fig.Add("raid5", vals...)
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

// fig9: parity placement (middle vs end cylinders) for Parity Striping.
func fig9(ctx *Context) error {
	for _, name := range ctx.TraceNames() {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 9 (%s): parity placement, Parity Striping", name),
			XLabel: "N",
			YLabel: "response time (ms)",
		}
		for _, n := range arraySizes {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", n))
		}
		tr := ctx.Trace(name, 1)
		for _, pl := range []layout.Placement{layout.MiddlePlacement, layout.EndPlacement} {
			var jobs []job
			for _, n := range arraySizes {
				cfg := ctx.BaseConfig(name)
				cfg.Org = array.OrgParityStriping
				cfg.N = n
				cfg.Placement = pl
				jobs = append(jobs, job{cfg: cfg, tr: tr})
			}
			res, errs := runAll(jobs)
			noteErrors(fig, errs)
			vals := make([]float64, len(res))
			for i, r := range res {
				vals[i] = meanOrNaN(r)
			}
			fig.Add(pl.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}

var traceSpeeds = []float64{0.5, 1, 2}

// fig10: response time vs trace speed for the four organizations,
// non-cached.
func fig10(ctx *Context) error {
	orgs := []array.Org{array.OrgBase, array.OrgMirror, array.OrgRAID5, array.OrgParityStriping}
	for _, name := range ctx.TraceNames() {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Figure 10 (%s): trace speed, non-cached (N=10)", name),
			XLabel: "speed",
			YLabel: "response time (ms)",
		}
		for _, s := range traceSpeeds {
			fig.XTicks = append(fig.XTicks, fmt.Sprintf("%g", s))
		}
		for _, org := range orgs {
			var jobs []job
			for _, s := range traceSpeeds {
				cfg := ctx.BaseConfig(name)
				cfg.Org = org
				jobs = append(jobs, job{cfg: cfg, tr: ctx.Trace(name, s)})
			}
			res, errs := runAll(jobs)
			vals := make([]float64, len(res))
			for i, r := range res {
				vals[i] = meanOrNaN(r)
				if errs[i] != "" {
					fig.AddNote("%s @%g: %s", org, traceSpeeds[i], errs[i])
				}
			}
			fig.Add(org.String(), vals...)
		}
		if err := ctx.Render(fig); err != nil {
			return err
		}
	}
	return nil
}
