package exp

import (
	"fmt"

	"raidsim/internal/array"
	"raidsim/internal/fault"
	"raidsim/internal/report"
)

func init() {
	register(Experiment{ID: "ext-raid10", Title: "Extension: RAID1/0 striped mirror pairs vs Mirror and RAID5", Figure: "extension",
		Knobs: "org: raid10 vs mirror/raid5; striping unit", Run: extRAID10})
	register(Experiment{ID: "ext-latency", Title: "Extension: per-stage latency attribution across organizations", Figure: "extension",
		Knobs: "org: all; stage breakdown columns", Run: extLatency})
}

// extRAID10 evaluates the RAID1/0 extension — RAID0 striping over mirror
// pairs, built by composing the mirror scheme with a striped layout —
// against whole-disk mirroring and RAID5, healthy and degraded. Expected
// shape: healthy RAID1/0 tracks Mirror (same redundancy, same shortest-
// seek read routing) but spreads a skewed workload over all pairs the way
// RAID0 does; degraded, both mirrored organizations lose only one pair's
// second arm, where RAID5 pays stripe-wide reconstruction reads.
func extRAID10(ctx *Context) error {
	orgs := []array.Org{array.OrgMirror, array.OrgRAID10, array.OrgRAID5}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Extension (%s): RAID1/0 vs Mirror and RAID5, healthy and degraded", name),
			Columns: []string{"org", "drives", "resp (ms)", "read", "write", "degr resp (ms)", "degr reqs"},
		}
		var jobs []job
		for _, org := range orgs {
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			if org == array.OrgRAID10 {
				cfg.StripingUnit = 4
			}
			jobs = append(jobs, job{cfg: cfg, tr: tr})
			// Degraded run: kill one drive a quarter into the trace, with a
			// hot spare so the rebuild sweep's interference is included.
			cfgF := cfg
			cfgF.Spares = 1
			cfgF.Fault = fault.Config{DiskFails: []fault.DiskFail{{Disk: 0, At: tr.Duration() / 4}}}
			jobs = append(jobs, job{cfg: cfgF, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		for i, org := range orgs {
			h, d := res[2*i], res[2*i+1]
			cfg := ctx.BaseConfig(name)
			cfg.Org = org
			degr, nd := 0.0, int64(0)
			if d != nil {
				degr, nd = d.DegradedResp.Mean(), d.DegradedResp.N()
			}
			hr, hw := 0.0, 0.0
			if h != nil {
				hr, hw = h.ReadResp.Mean(), h.WriteResp.Mean()
			}
			t.AddRow(org.String(), fmt.Sprintf("%d", cfg.PhysicalDisks()),
				fmt.Sprintf("%.2f", meanOrNaN(h)),
				fmt.Sprintf("%.2f", hr), fmt.Sprintf("%.2f", hw),
				fmt.Sprintf("%.2f", degr), fmt.Sprintf("%d", nd))
		}
		t.AddNote("degraded = responses completed while a slot was unreadable (failure at t/4, one hot spare)")
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}

// extLatency attributes each organization's disk-side time to pipeline
// stages: queue wait, seek + rotational positioning, media transfer, the
// full rotations the sync policy holds waiting for parity inputs, and
// foreground stalls making cache room. It explains the figures' response
// gaps — e.g. where RAID5's write penalty actually goes (queueing vs held
// rotations) and what the NV cache buys.
func extLatency(ctx *Context) error {
	type point struct {
		label  string
		org    array.Org
		cached bool
	}
	points := []point{
		{"base", array.OrgBase, false},
		{"mirror", array.OrgMirror, false},
		{"raid10", array.OrgRAID10, false},
		{"raid5", array.OrgRAID5, false},
		{"pstripe", array.OrgParityStriping, false},
		{"raid5+cache", array.OrgRAID5, true},
		{"raid4+cache", array.OrgRAID4, true},
	}
	for _, name := range ctx.TraceNames() {
		tr := ctx.Trace(name, 1)
		t := &report.Table{
			Title:   fmt.Sprintf("Extension (%s): where the disk time goes, by pipeline stage (%% of attributed disk-seconds)", name),
			Columns: []string{"org", "resp (ms)", "disk-s", "queue", "seek+rot", "xfer", "parity sync", "destage stall"},
		}
		var jobs []job
		for _, p := range points {
			cfg := ctx.BaseConfig(name)
			cfg.Org = p.org
			cfg.Cached = p.cached
			jobs = append(jobs, job{cfg: cfg, tr: tr})
		}
		res, errs := runAll(jobs)
		noteErrors(t, errs)
		for i, p := range points {
			r := res[i]
			if r == nil {
				t.AddRow(p.label, "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			s := r.Stages
			tot := s.Total()
			pct := func(ms float64) string {
				if tot == 0 {
					return "-"
				}
				return fmt.Sprintf("%.1f%%", 100*ms/tot)
			}
			t.AddRow(p.label,
				fmt.Sprintf("%.2f", r.MeanResponseMS()),
				fmt.Sprintf("%.1f", tot/1e3),
				pct(s.QueueMS), pct(s.SeekRotateMS), pct(s.TransferMS),
				pct(s.ParitySyncMS), pct(s.DestageStallMS))
		}
		t.AddNote("disk-s = total attributed disk-side busy/stall seconds across all drives; parity sync = full rotations held for parity inputs")
		if err := ctx.Render(t); err != nil {
			return err
		}
	}
	return nil
}
