package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split()
	b := parent.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split streams correlate: %d/1000 matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(2)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := src.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) biased: value %d appeared %d/70000 times", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	src := New(3)
	const mean, n = 25.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := src.Exp(mean)
		if x < 0 {
			t.Fatalf("Exp < 0: %f", x)
		}
		sum += x
	}
	if got := sum / n; math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean %f, want ~%f", got, mean)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(4)
	for _, mean := range []float64{1, 2, 5.5, 16} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			k := src.Geometric(mean)
			if k < 1 {
				t.Fatalf("Geometric < 1: %d", k)
			}
			sum += float64(k)
		}
		got := sum / n
		if mean == 1 {
			if got != 1 {
				t.Fatalf("Geometric(1) mean %f, want exactly 1", got)
			}
			continue
		}
		if math.Abs(got-mean)/mean > 0.03 {
			t.Fatalf("Geometric(%f) mean %f", mean, got)
		}
	}
}

func TestBool(t *testing.T) {
	src := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %f", p)
	}
	if src.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbabilitiesMonotone(t *testing.T) {
	z := NewZipf(100, 0.8)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Zipf prob not monotone at rank %d", i)
		}
	}
	var total float64
	for i := 0; i < 100; i++ {
		total += z.Prob(i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("Zipf probs sum to %f", total)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	src := New(6)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(src)]++
	}
	for r, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Zipf(theta=0) rank %d count %d, want ~10000", r, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10, 1.5)
	src := New(7)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(src)]++
	}
	if counts[0] < 3*counts[4] {
		t.Fatalf("Zipf(1.5) insufficient skew: rank0=%d rank4=%d", counts[0], counts[4])
	}
	// Empirical frequencies should track the analytic probabilities.
	for r := 0; r < 10; r++ {
		want := z.Prob(r)
		got := float64(counts[r]) / 100000
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: empirical %f, analytic %f", r, got, want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestZipfProbBounds: out-of-range ranks have probability zero instead
// of panicking with an index error (regression: Prob(-1) and Prob(n)
// used to crash).
func TestZipfProbBounds(t *testing.T) {
	z := NewZipf(10, 0.8)
	cases := []struct {
		rank int
		zero bool
	}{
		{-1, true},
		{0, false},
		{9, false}, // n-1: last valid rank
		{10, true}, // n
		{11, true}, // past n
		{-100, true},
	}
	for _, c := range cases {
		got := z.Prob(c.rank)
		if c.zero && got != 0 {
			t.Errorf("Prob(%d) = %f, want 0", c.rank, got)
		}
		if !c.zero && got <= 0 {
			t.Errorf("Prob(%d) = %f, want > 0", c.rank, got)
		}
	}
	// In-range probabilities still sum to 1.
	var total float64
	for r := 0; r < z.N(); r++ {
		total += z.Prob(r)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probs sum to %f, want 1", total)
	}
}
