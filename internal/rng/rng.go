// Package rng provides a small, fast, deterministic random number
// generator plus the distributions the workload generator and the disk
// model need. It is a 64-bit PCG (PCG-XSH-RR style state update with an
// xorshift-multiply output permutation), splittable so that independent
// simulation components can derive uncorrelated streams from one seed.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; derive one per goroutine with Split.
type Source struct {
	state uint64
	inc   uint64
}

const (
	pcgMult = 6364136223846793005
	mix1    = 0xbf58476d1ce4e5b9
	mix2    = 0x94d049bb133111eb
)

// splitmix64 is used for seeding and splitting.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * mix1
	z = (z ^ (z >> 27)) * mix2
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams.
func New(seed uint64) *Source {
	s := seed
	st := splitmix64(&s)
	inc := splitmix64(&s) | 1 // stream selector must be odd
	return &Source{state: st, inc: inc}
}

// Split derives a new independent Source from s, advancing s. Use it to
// hand uncorrelated streams to sub-components.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state = s.state*pcgMult + s.inc
	z := s.state
	z = (z ^ (z >> 30)) * mix1
	z = (z ^ (z >> 27)) * mix2
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	return -mean * math.Log(1-u)
}

// Geometric returns a value in {1, 2, ...} with the given mean (mean >= 1):
// the number of Bernoulli(1/mean) trials up to and including the first
// success.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	u := s.Float64()
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
