package rng

import (
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta. theta = 0 is uniform; larger theta is more skewed.
// The OLTP literature typically uses theta in [0.5, 1.0] for hot-spot
// access patterns.
//
// Sampling uses a precomputed cumulative table with binary search, which
// is exact and fast for the table sizes used here (up to a few thousand
// extents/disks).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent theta.
// It panics if n <= 0 or theta < 0.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if theta < 0 {
		panic("rng: Zipf with negative theta")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0 // exact upper bound despite rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, n). Rank 0 is the most probable.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of the given rank. Out-of-range ranks
// (negative or >= N) have probability 0 — callers probing "how hot
// would rank r be" must not have to bounds-check first.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
