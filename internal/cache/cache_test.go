package cache

import (
	"testing"
	"testing/quick"

	"raidsim/internal/rng"
)

func newCache(blocks int, keepOld bool) *Cache {
	return mustNew(Config{Blocks: blocks, KeepOldData: keepOld, ParityReserve: 2})
}

func mustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func TestBasicLRU(t *testing.T) {
	c := newCache(3, false)
	c.Insert(1, false)
	c.Insert(2, false)
	c.Insert(3, false)
	if c.Used() != 3 || c.FreeSlots() != 0 {
		t.Fatalf("used %d free %d", c.Used(), c.FreeSlots())
	}
	// Touch 1: LRU victim becomes 2.
	if !c.Touch(1) {
		t.Fatal("touch miss")
	}
	if v := c.Victim(); v.LBA != 2 {
		t.Fatalf("victim %d, want 2", v.LBA)
	}
	c.Drop(2)
	if c.Contains(2) || c.Used() != 2 {
		t.Fatal("drop failed")
	}
	if c.Touch(99) {
		t.Fatal("touch of absent block succeeded")
	}
}

func TestDirtyLifecycle(t *testing.T) {
	c := newCache(4, false)
	c.Insert(7, false)
	c.MarkDirty(7)
	if e := c.Lookup(7); !e.Dirty {
		t.Fatal("not dirty after MarkDirty")
	}
	if got := c.DirtyNotDestaging(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("dirty list %v", got)
	}
	c.BeginDestage(7)
	if got := c.DirtyNotDestaging(); len(got) != 0 {
		t.Fatalf("destaging block still listed: %v", got)
	}
	if v := c.Victim(); v != nil {
		t.Fatalf("destaging block offered as victim: %d", v.LBA)
	}
	c.CompleteDestage(7)
	e := c.Lookup(7)
	if e.Dirty || e.Destaging {
		t.Fatal("destage did not clean the block")
	}
	if c.S.Destages != 1 {
		t.Fatalf("destage count %d", c.S.Destages)
	}
}

func TestRedirtyDuringDestage(t *testing.T) {
	c := newCache(4, false)
	c.Insert(7, true)
	c.BeginDestage(7)
	c.MarkDirty(7) // written again while the write-back is in flight
	c.CompleteDestage(7)
	e := c.Lookup(7)
	if !e.Dirty {
		t.Fatal("redirtied block lost its dirty bit when the destage landed")
	}
	if e.Destaging {
		t.Fatal("still marked destaging")
	}
	// And it can be destaged again.
	c.BeginDestage(7)
	c.CompleteDestage(7)
	if c.Lookup(7).Dirty {
		t.Fatal("second destage failed")
	}
}

func TestOldDataShadows(t *testing.T) {
	c := newCache(4, true)
	c.Insert(1, false)
	c.MarkDirty(1) // clean -> dirty: shadow captured
	if !c.Lookup(1).HasOld {
		t.Fatal("no shadow captured")
	}
	if c.Used() != 2 {
		t.Fatalf("used %d, want 2 (entry + shadow)", c.Used())
	}
	c.MarkDirty(1) // second write: no second shadow
	if c.Used() != 2 {
		t.Fatalf("used %d after second write", c.Used())
	}
	if c.S.OldCaptured != 1 {
		t.Fatalf("captured %d", c.S.OldCaptured)
	}
	c.BeginDestage(1)
	c.CompleteDestage(1)
	e := c.Lookup(1)
	if e.HasOld || c.Used() != 1 {
		t.Fatal("destage did not release the shadow")
	}
}

func TestShadowSkippedWhenFull(t *testing.T) {
	c := newCache(2, true)
	c.Insert(1, false)
	c.Insert(2, false)
	c.MarkDirty(1) // full: no room for the shadow
	if c.Lookup(1).HasOld {
		t.Fatal("shadow captured in a full cache")
	}
	if c.S.OldSkipped != 1 {
		t.Fatalf("skip count %d", c.S.OldSkipped)
	}
}

func TestDirtyWriteMissHasNoShadow(t *testing.T) {
	c := newCache(4, true)
	c.Insert(9, true) // write miss: inserted dirty, no old image known
	if c.Lookup(9).HasOld {
		t.Fatal("write-miss block should have no shadow")
	}
	if c.Used() != 1 {
		t.Fatalf("used %d", c.Used())
	}
}

func TestCleanVictim(t *testing.T) {
	c := newCache(3, false)
	c.Insert(1, true)
	c.Insert(2, false)
	c.Insert(3, true)
	if v := c.CleanVictim(); v == nil || v.LBA != 2 {
		t.Fatalf("clean victim %v", v)
	}
	c.Drop(2)
	if v := c.CleanVictim(); v != nil {
		t.Fatalf("clean victim in all-dirty cache: %d", v.LBA)
	}
}

func TestParityPending(t *testing.T) {
	c := newCache(6, true)
	k1 := ParityKey{Disk: 10, Block: 5}
	k2 := ParityKey{Disk: 10, Block: 2}
	if !c.AddParityPending(k1, false) || !c.AddParityPending(k2, true) {
		t.Fatal("admission failed with space available")
	}
	if c.Used() != 2 || c.ParityPendingCount() != 2 {
		t.Fatalf("used %d pending %d", c.Used(), c.ParityPendingCount())
	}
	// Coalescing: duplicate key keeps one slot; full flag is sticky.
	if !c.AddParityPending(k1, true) {
		t.Fatal("coalescing add failed")
	}
	if c.ParityPendingCount() != 2 {
		t.Fatal("duplicate consumed a slot")
	}
	pend := c.ParityPending()
	if pend[0].Key != k2 || pend[1].Key != k1 {
		t.Fatalf("SCAN order wrong: %v", pend)
	}
	if !pend[1].Full {
		t.Fatal("full flag not sticky across coalescing")
	}
	c.RemoveParityPending(k1)
	if c.Used() != 1 {
		t.Fatalf("used %d after removal", c.Used())
	}
	if c.HasParityPending(k1) {
		t.Fatal("removed key still pending")
	}
}

func TestParityAdmissionStall(t *testing.T) {
	c := mustNew(Config{Blocks: 4, KeepOldData: true, ParityReserve: 2})
	// Parity may occupy at most Blocks - ParityReserve = 2 slots.
	if !c.AddParityPending(ParityKey{0, 1}, false) {
		t.Fatal("first admission failed")
	}
	if !c.AddParityPending(ParityKey{0, 2}, false) {
		t.Fatal("second admission failed")
	}
	if c.AddParityPending(ParityKey{0, 3}, false) {
		t.Fatal("third admission should stall at the reserve limit")
	}
	if c.S.ParityStalls != 1 {
		t.Fatalf("stall count %d", c.S.ParityStalls)
	}
	// A full cache also stalls admission even under the parity cap.
	c2 := mustNew(Config{Blocks: 4, KeepOldData: true, ParityReserve: 1})
	for i := int64(0); i < 4; i++ {
		c2.Insert(i, false)
	}
	if c2.AddParityPending(ParityKey{0, 9}, false) {
		t.Fatal("admission into a full cache should stall")
	}
}

func TestAccountingPanics(t *testing.T) {
	cases := []func(c *Cache){
		func(c *Cache) { c.MarkDirty(42) },                        // absent
		func(c *Cache) { c.Insert(1, false); c.Insert(1, false) }, // duplicate
		func(c *Cache) { c.Drop(42) },                             // absent
		func(c *Cache) { c.BeginDestage(42) },                     // absent
		func(c *Cache) { c.Insert(1, false); c.BeginDestage(1) },  // clean
		func(c *Cache) { c.CompleteDestage(42) },                  // absent
		func(c *Cache) { c.RemoveParityPending(ParityKey{1, 1}) },
		func(c *Cache) { // over capacity
			c.Insert(1, false)
			c.Insert(2, false)
			c.Insert(3, false)
			c.Insert(4, false)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f(newCache(3, true))
		}()
	}
}

// TestQuickOccupancyInvariant drives the cache with random operations and
// checks that used slots always equal entries + shadows + pending parity
// and never exceed capacity.
func TestQuickOccupancyInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := mustNew(Config{Blocks: 16, KeepOldData: true, ParityReserve: 4})
		inCache := map[int64]bool{}
		destaging := map[int64]bool{}
		pending := map[ParityKey]bool{}
		for op := 0; op < 500; op++ {
			lba := int64(src.Intn(40))
			switch src.Intn(6) {
			case 0: // insert
				if !inCache[lba] && c.FreeSlots() > 0 {
					c.Insert(lba, src.Bool(0.5))
					inCache[lba] = true
				}
			case 1: // write hit
				if inCache[lba] {
					c.MarkDirty(lba)
				}
			case 2: // drop a victim
				if v := c.Victim(); v != nil && !v.Dirty {
					delete(inCache, v.LBA)
					c.Drop(v.LBA)
				}
			case 3: // begin destage
				if e := c.Lookup(lba); e != nil && e.Dirty && !e.Destaging {
					c.BeginDestage(lba)
					destaging[lba] = true
				}
			case 4: // complete destage
				for l := range destaging {
					c.CompleteDestage(l)
					delete(destaging, l)
					break
				}
			case 5: // parity traffic
				k := ParityKey{Disk: 0, Block: int64(src.Intn(10))}
				if src.Bool(0.5) {
					if c.AddParityPending(k, src.Bool(0.3)) {
						pending[k] = true
					}
				} else if pending[k] {
					c.RemoveParityPending(k)
					delete(pending, k)
				}
			}
			// Invariant.
			shadows := 0
			for l := range inCache {
				if e := c.Lookup(l); e != nil && e.HasOld {
					shadows++
				}
			}
			want := len(inCache) + shadows + c.ParityPendingCount()
			if c.Used() != want || c.Used() > c.Capacity() {
				return false
			}
			if c.Len() != len(inCache) {
				return false
			}
			dirty := 0
			for _, e := range c.m {
				if e.Dirty {
					dirty++
				}
			}
			if c.DirtyCount() != dirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
