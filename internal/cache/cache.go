// Package cache models the non-volatile controller cache of the paper's
// cached organizations (section 3.4): a write-back LRU block cache that,
// for parity organizations, also retains the pre-write image of modified
// blocks (so destage can compute parity without re-reading old data) and,
// for RAID4 with parity caching, buffers pending parity updates destined
// for the dedicated parity disk.
//
// The cache is pure bookkeeping — all timing lives in the array
// controllers that drive it.
package cache

import (
	"fmt"
	"sort"
)

// Config sizes and configures a cache.
type Config struct {
	// Blocks is the capacity in cache block slots. Old-data shadows and
	// pending parity blocks occupy slots too.
	Blocks int
	// KeepOldData retains the pre-write image when a clean cached block
	// is first modified (parity organizations).
	KeepOldData bool
	// ParityReserve caps pending-parity occupancy at Blocks-ParityReserve
	// so the parity spool can fill "most of the cache" (paper, section
	// 4.4.3) without starving data entirely.
	ParityReserve int
}

// Entry describes a cached data block.
type Entry struct {
	LBA       int64
	Dirty     bool
	HasOld    bool // an old-data shadow slot is held for this block
	Destaging bool // a write-back is in flight
	redirtied bool // written again while the write-back was in flight

	prev, next *Entry // LRU list, most recent at head
}

// Stats counts cache-internal events.
type Stats struct {
	Inserts        int64
	Evictions      int64
	DirtyEvictions int64
	OldCaptured    int64
	OldSkipped     int64 // shadow capture skipped because the cache was full
	Destages       int64
	ParityQueued   int64
	ParityStalls   int64 // parity admission failed for lack of space
	PeakUsed       int
	PeakParity     int
}

// Cache is a fixed-capacity write-back LRU block cache.
type Cache struct {
	cfg   Config
	m     map[int64]*Entry
	head  *Entry // MRU
	tail  *Entry // LRU
	used  int    // slots: entries + old shadows + pending parity
	dirty int    // dirty entries, kept incrementally so DirtyCount is O(1)

	parity map[ParityKey]bool
	S      Stats
}

// ParityKey identifies a pending parity block by its physical location.
type ParityKey struct {
	Disk  int
	Block int64
}

// New returns an empty cache. It rejects a non-positive capacity.
func New(cfg Config) (*Cache, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", cfg.Blocks)
	}
	if cfg.ParityReserve < 0 || cfg.ParityReserve >= cfg.Blocks {
		cfg.ParityReserve = cfg.Blocks / 16
	}
	return &Cache{
		cfg:    cfg,
		m:      make(map[int64]*Entry),
		parity: make(map[ParityKey]bool),
	}, nil
}

// Capacity returns the slot capacity.
func (c *Cache) Capacity() int { return c.cfg.Blocks }

// Used returns occupied slots (entries + shadows + pending parity).
func (c *Cache) Used() int { return c.used }

// Len returns the number of cached data blocks.
func (c *Cache) Len() int { return len(c.m) }

// ParityPendingCount returns the number of buffered parity updates.
func (c *Cache) ParityPendingCount() int { return len(c.parity) }

// Contains reports whether lba is cached, without touching LRU order.
func (c *Cache) Contains(lba int64) bool {
	_, ok := c.m[lba]
	return ok
}

// Lookup returns the entry for lba without touching LRU order.
func (c *Cache) Lookup(lba int64) *Entry { return c.m[lba] }

func (c *Cache) bumpUsed(delta int) {
	c.used += delta
	if c.used < 0 {
		panic("cache: negative occupancy")
	}
	if c.used > c.S.PeakUsed {
		c.S.PeakUsed = c.used
	}
	if c.used > c.cfg.Blocks {
		panic(fmt.Sprintf("cache: occupancy %d exceeds capacity %d", c.used, c.cfg.Blocks))
	}
}

func (c *Cache) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *Entry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Touch moves lba to MRU if present and reports whether it was cached.
func (c *Cache) Touch(lba int64) bool {
	e, ok := c.m[lba]
	if !ok {
		return false
	}
	c.unlink(e)
	c.pushFront(e)
	return true
}

// MarkDirty records a write hit on a cached block: the entry becomes
// dirty and moves to MRU. On the first modification of a clean block,
// a shadow slot for the old image is captured when KeepOldData is set
// and space allows; destage uses it to avoid re-reading old data.
// It panics if the block is absent (callers check with Contains/Touch).
func (c *Cache) MarkDirty(lba int64) {
	e, ok := c.m[lba]
	if !ok {
		panic(fmt.Sprintf("cache: MarkDirty of uncached block %d", lba))
	}
	if e.Destaging {
		// Written again while its write-back is in flight: it must stay
		// dirty when the write-back lands.
		e.redirtied = true
		e.Dirty = true
		c.unlink(e)
		c.pushFront(e)
		return
	}
	if !e.Dirty {
		c.dirty++
	}
	if !e.Dirty && c.cfg.KeepOldData && !e.HasOld {
		if c.used < c.cfg.Blocks {
			e.HasOld = true
			c.bumpUsed(1)
			c.S.OldCaptured++
		} else {
			c.S.OldSkipped++
		}
	}
	e.Dirty = true
	c.unlink(e)
	c.pushFront(e)
}

// FreeSlots returns capacity not currently occupied.
func (c *Cache) FreeSlots() int { return c.cfg.Blocks - c.used }

// Insert adds an uncached block at MRU. The caller must have made room
// (FreeSlots() > 0); inserting over capacity panics.
func (c *Cache) Insert(lba int64, dirty bool) *Entry {
	if _, ok := c.m[lba]; ok {
		panic(fmt.Sprintf("cache: duplicate insert of block %d", lba))
	}
	c.bumpUsed(1)
	e := &Entry{LBA: lba, Dirty: dirty}
	if dirty {
		c.dirty++
	}
	c.m[lba] = e
	c.pushFront(e)
	c.S.Inserts++
	return e
}

// Victim returns the least recently used entry that is not mid-destage,
// or nil if none qualifies.
func (c *Cache) Victim() *Entry {
	for e := c.tail; e != nil; e = e.prev {
		if !e.Destaging {
			return e
		}
	}
	return nil
}

// CleanVictim returns the least recently used clean, not-mid-destage
// entry, or nil. Dropping it frees a slot without any disk I/O.
func (c *Cache) CleanVictim() *Entry {
	for e := c.tail; e != nil; e = e.prev {
		if !e.Destaging && !e.Dirty {
			return e
		}
	}
	return nil
}

// Drop removes an entry, releasing its slot and any shadow slot.
func (c *Cache) Drop(lba int64) {
	e, ok := c.m[lba]
	if !ok {
		panic(fmt.Sprintf("cache: dropping uncached block %d", lba))
	}
	c.unlink(e)
	delete(c.m, lba)
	if e.Dirty {
		c.dirty--
	}
	n := 1
	if e.HasOld {
		n++
	}
	c.bumpUsed(-n)
	c.S.Evictions++
}

// NoteDirtyEviction records that an eviction had to write its victim back
// first. Controllers call it from their room-making path (by the time the
// victim is dropped it has already been cleaned, so Drop can't see it).
func (c *Cache) NoteDirtyEviction() { c.S.DirtyEvictions++ }

// BeginDestage marks a dirty block as having a write-back in flight, so
// it is not picked as a victim and not re-destaged.
func (c *Cache) BeginDestage(lba int64) {
	e, ok := c.m[lba]
	if !ok || !e.Dirty || e.Destaging {
		panic(fmt.Sprintf("cache: BeginDestage of block %d in wrong state", lba))
	}
	e.Destaging = true
}

// CompleteDestage marks the write-back done: the block becomes clean and
// its old-data shadow (if any) is released. The block stays cached.
func (c *Cache) CompleteDestage(lba int64) {
	e, ok := c.m[lba]
	if !ok || !e.Destaging {
		panic(fmt.Sprintf("cache: CompleteDestage of block %d in wrong state", lba))
	}
	e.Destaging = false
	if e.redirtied {
		// The concurrent write keeps the block dirty; its old image is
		// now the version just written, which we no longer hold, so the
		// shadow (if any) is released and the next destage reads old
		// data from disk.
		e.redirtied = false
	} else {
		e.Dirty = false
		c.dirty--
	}
	if e.HasOld {
		e.HasOld = false
		c.bumpUsed(-1)
	}
	c.S.Destages++
}

// DirtyNotDestaging returns the LBAs of dirty blocks with no write-back
// in flight, sorted ascending — the destage scan's candidate set.
func (c *Cache) DirtyNotDestaging() []int64 {
	var out []int64
	for lba, e := range c.m {
		if e.Dirty && !e.Destaging {
			out = append(out, lba)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyCount returns the number of dirty blocks (in flight or not).
func (c *Cache) DirtyCount() int { return c.dirty }

// PendingParity is a buffered parity update. Full means the complete new
// parity is known (a fully overwritten stripe), so applying it needs no
// old-parity read; otherwise the buffered value is the XOR of old and new
// data and the parity disk must read-modify-write.
type PendingParity struct {
	Key  ParityKey
	Full bool
}

// AddParityPending buffers a parity update for the given physical parity
// block. It reports false — a stall, per section 4.4 — when the parity
// spool may not grow further. Duplicate keys coalesce (the update is an
// XOR accumulation; a full image absorbs later deltas) and always succeed.
func (c *Cache) AddParityPending(k ParityKey, full bool) bool {
	if old, ok := c.parity[k]; ok {
		c.parity[k] = old || full
		return true
	}
	if len(c.parity) >= c.cfg.Blocks-c.cfg.ParityReserve || c.used >= c.cfg.Blocks {
		c.S.ParityStalls++
		return false
	}
	c.parity[k] = full
	c.bumpUsed(1)
	c.S.ParityQueued++
	if len(c.parity) > c.S.PeakParity {
		c.S.PeakParity = len(c.parity)
	}
	return true
}

// HasParityPending reports whether the key is buffered.
func (c *Cache) HasParityPending(k ParityKey) bool {
	_, ok := c.parity[k]
	return ok
}

// RemoveParityPending releases a buffered parity update's slot.
func (c *Cache) RemoveParityPending(k ParityKey) {
	if _, ok := c.parity[k]; !ok {
		panic(fmt.Sprintf("cache: removing absent parity update %+v", k))
	}
	delete(c.parity, k)
	c.bumpUsed(-1)
}

// ParityPending returns the buffered parity updates sorted by (disk,
// block) — the order a SCAN sweep of the parity disk visits them.
func (c *Cache) ParityPending() []PendingParity {
	out := make([]PendingParity, 0, len(c.parity))
	for k, full := range c.parity {
		out = append(out, PendingParity{Key: k, Full: full})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Disk != out[j].Key.Disk {
			return out[i].Key.Disk < out[j].Key.Disk
		}
		return out[i].Key.Block < out[j].Key.Block
	})
	return out
}
