package disk

import "fmt"

// Sched selects the queue discipline a drive uses *within* a priority
// class (priority classes are always served strictly in order). The paper
// models FIFO disks; SSTF and LOOK are provided as extensions to study
// how much controller-level load balancing overlaps with drive-level
// scheduling.
type Sched int

// Queue disciplines.
const (
	// FIFO serves requests in arrival order (the paper's model).
	FIFO Sched = iota
	// SSTF serves the request with the shortest seek from the current
	// arm position. Throughput-optimal for random loads but can starve
	// edge cylinders.
	SSTF
	// LOOK is the elevator: the arm sweeps toward the nearest extreme
	// request, serving requests in passing, then reverses.
	LOOK
)

func (s Sched) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case SSTF:
		return "sstf"
	case LOOK:
		return "look"
	}
	return fmt.Sprintf("sched(%d)", int(s))
}

// ParseSched converts a name to a Sched.
func ParseSched(name string) (Sched, error) {
	switch name {
	case "fifo", "":
		return FIFO, nil
	case "sstf":
		return SSTF, nil
	case "look", "scan", "elevator":
		return LOOK, nil
	}
	return 0, fmt.Errorf("disk: unknown scheduler %q", name)
}

// SetSched selects the drive's queue discipline. Change it only while
// the queue is empty (typically right after New). An out-of-range value
// is reported as an error, like a bad constructor argument.
func (d *Disk) SetSched(s Sched) error {
	if s < FIFO || s > LOOK {
		return fmt.Errorf("disk: bad scheduler %d", int(s))
	}
	d.sched = s
	return nil
}

// pop removes and returns the next request to serve under the configured
// discipline, or nil if every queue is empty.
func (d *Disk) pop() *Request {
	for p := range d.queues {
		q := d.queues[p]
		if len(q) == 0 {
			continue
		}
		var idx int
		switch d.sched {
		case SSTF:
			idx = d.pickSSTF(q)
		case LOOK:
			idx = d.pickLOOK(q)
		default:
			idx = 0
		}
		r := q[idx]
		copy(q[idx:], q[idx+1:])
		d.queues[p] = q[:len(q)-1]
		return r
	}
	return nil
}

func (d *Disk) cylOf(r *Request) int {
	return d.spec.ToCHS(r.StartBlock).Cylinder
}

// pickSSTF returns the index of the queued request nearest the arm,
// breaking ties toward the older request.
func (d *Disk) pickSSTF(q []*Request) int {
	best, bestDist := 0, 1<<31
	for i, r := range q {
		dist := d.cylOf(r) - d.cyl
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// pickLOOK returns the index of the next request in the current sweep
// direction (nearest cylinder at or beyond the arm); when none remains in
// that direction the sweep reverses.
func (d *Disk) pickLOOK(q []*Request) int {
	pick := d.pickLOOKDir(q, d.lookUp)
	if pick < 0 {
		d.lookUp = !d.lookUp
		pick = d.pickLOOKDir(q, d.lookUp)
	}
	if pick < 0 {
		// All requests are exactly at the current cylinder boundary
		// corner case; fall back to FIFO.
		pick = 0
	}
	return pick
}

func (d *Disk) pickLOOKDir(q []*Request, up bool) int {
	best, bestDist := -1, 1<<31
	for i, r := range q {
		delta := d.cylOf(r) - d.cyl
		if !up {
			delta = -delta
		}
		if delta < 0 {
			continue
		}
		if delta < bestDist {
			best, bestDist = i, delta
		}
	}
	return best
}
