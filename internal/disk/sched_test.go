package disk

import (
	"testing"

	"raidsim/internal/geom"
	"raidsim/internal/sim"
)

// blockAtCyl returns the first block of the given cylinder.
func blockAtCyl(spec geom.Spec, cyl int) int64 {
	return spec.FromCHS(geom.CHS{Cylinder: cyl, Head: 0, Block: 0})
}

// submitAtCyls queues one read per cylinder (after an initial request
// that occupies the disk so the rest stay queued) and returns the service
// order as cylinder numbers.
func submitAtCyls(t *testing.T, sched Sched, cyls []int) []int {
	t.Helper()
	eng := sim.New()
	spec := geom.Default()
	d, _ := New(eng, 0, spec, geom.MustCalibrateSeek(spec), 0)
	d.SetSched(sched)
	var order []int
	d.Submit(&Request{StartBlock: blockAtCyl(spec, 600), Blocks: 1, Priority: PriNormal,
		OnDone: func() { order = append(order, 600) }})
	for _, c := range cyls {
		c := c
		d.Submit(&Request{StartBlock: blockAtCyl(spec, c), Blocks: 1, Priority: PriNormal,
			OnDone: func() { order = append(order, c) }})
	}
	eng.Run()
	return order[1:] // drop the pump request
}

func TestFIFOOrder(t *testing.T) {
	got := submitAtCyls(t, FIFO, []int{100, 900, 50, 700})
	want := []int{100, 900, 50, 700}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order %v, want %v", got, want)
		}
	}
}

func TestSSTFPicksNearest(t *testing.T) {
	// Arm ends at cylinder 600 after the pump request.
	got := submitAtCyls(t, SSTF, []int{100, 900, 50, 700})
	// From 600: nearest 700, then 900, then 100, then 50.
	want := []int{700, 900, 100, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SSTF order %v, want %v", got, want)
		}
	}
}

func TestLOOKSweeps(t *testing.T) {
	// Arm at 600, initial direction up: 700, 900, then reverse: 100, 50.
	got := submitAtCyls(t, LOOK, []int{100, 900, 50, 700})
	want := []int{700, 900, 100, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LOOK order %v, want %v", got, want)
		}
	}
}

func TestLOOKReversesOnlyWhenNeeded(t *testing.T) {
	// All below the arm: single downward sweep in decreasing order.
	got := submitAtCyls(t, LOOK, []int{300, 500, 100})
	want := []int{500, 300, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LOOK downward order %v, want %v", got, want)
		}
	}
}

func TestSchedRespectsPriority(t *testing.T) {
	eng := sim.New()
	spec := geom.Default()
	d, _ := New(eng, 0, spec, geom.MustCalibrateSeek(spec), 0)
	d.SetSched(SSTF)
	var order []string
	d.Submit(&Request{StartBlock: blockAtCyl(spec, 600), Blocks: 1, Priority: PriNormal,
		OnDone: func() { order = append(order, "pump") }})
	// Near normal request vs far high-priority request: priority wins.
	d.Submit(&Request{StartBlock: blockAtCyl(spec, 610), Blocks: 1, Priority: PriNormal,
		OnDone: func() { order = append(order, "near-normal") }})
	d.Submit(&Request{StartBlock: blockAtCyl(spec, 10), Blocks: 1, Priority: PriHigh,
		OnDone: func() { order = append(order, "far-high") }})
	eng.Run()
	if order[1] != "far-high" {
		t.Fatalf("priority not respected under SSTF: %v", order)
	}
}

func TestSSTFReducesSeekVersusFIFO(t *testing.T) {
	cyls := make([]int, 0, 40)
	for i := 0; i < 40; i++ {
		cyls = append(cyls, (i*911)%1260)
	}
	run := func(s Sched) int64 {
		eng := sim.New()
		spec := geom.Default()
		d, _ := New(eng, 0, spec, geom.MustCalibrateSeek(spec), 0)
		d.SetSched(s)
		for _, c := range cyls {
			d.Submit(&Request{StartBlock: blockAtCyl(spec, c), Blocks: 1, Priority: PriNormal})
		}
		eng.Run()
		return d.S.SeekDistSum
	}
	fifo, sstf, look := run(FIFO), run(SSTF), run(LOOK)
	if sstf >= fifo || look >= fifo {
		t.Fatalf("scheduling did not reduce seeking: fifo=%d sstf=%d look=%d", fifo, sstf, look)
	}
}

func TestParseSched(t *testing.T) {
	for name, want := range map[string]Sched{
		"fifo": FIFO, "": FIFO, "sstf": SSTF, "look": LOOK, "scan": LOOK, "elevator": LOOK,
	} {
		got, err := ParseSched(name)
		if err != nil || got != want {
			t.Errorf("ParseSched(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSched("bogus"); err == nil {
		t.Error("bogus scheduler parsed")
	}
	for _, s := range []Sched{FIFO, SSTF, LOOK} {
		if s.String() == "" {
			t.Error("empty scheduler name")
		}
	}
}
