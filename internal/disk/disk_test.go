package disk

import (
	"testing"

	"raidsim/internal/geom"
	"raidsim/internal/sim"
)

func newTestDisk(t *testing.T, phase float64) (*sim.Engine, *Disk, geom.Spec) {
	t.Helper()
	eng := sim.New()
	spec := geom.Default()
	seek := geom.MustCalibrateSeek(spec)
	d, err := New(eng, 0, spec, seek, phase)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d, spec
}

// TestPlainReadTiming checks the exact service decomposition: seek +
// rotational latency + media transfer, from a known arm position and
// rotational phase.
func TestPlainReadTiming(t *testing.T) {
	eng, d, spec := newTestDisk(t, 0)
	// Target: cylinder 100, head 0, track block 2.
	target := spec.FromCHS(geom.CHS{Cylinder: 100, Head: 0, Block: 2})
	var doneAt sim.Time
	d.Submit(&Request{
		StartBlock: target, Blocks: 1, Priority: PriNormal,
		OnDone: func() { doneAt = eng.Now() },
	})
	eng.Run()

	seek := geom.MustCalibrateSeek(spec).Time(100)
	arrive := seek
	// Phase 0 at t=0: angle(t) = (t mod rot)/rot. Target angle = 2/6.
	rot := spec.RotationTime()
	angleNow := float64(arrive%rot) / float64(rot)
	frac := 2.0/6.0 - angleNow
	if frac < 0 {
		frac++
	}
	latency := sim.Time(frac * float64(rot))
	want := arrive + latency + spec.BlockTransferTime()
	if diff := doneAt - want; diff < -1000 || diff > 1000 {
		t.Fatalf("read finished at %d, want %d (diff %dns)", doneAt, want, diff)
	}
	if d.S.Reads != 1 || d.S.Accesses != 1 || d.S.BlocksRead != 1 {
		t.Fatalf("stats wrong: %+v", d.S)
	}
}

// TestRMWTiming: the write pass lands exactly one rotation after the read
// pass began, so total time = seek + latency + rotation + transfer.
func TestRMWTiming(t *testing.T) {
	eng, d, spec := newTestDisk(t, 0)
	target := spec.FromCHS(geom.CHS{Cylinder: 0, Head: 0, Block: 0})
	var readDoneAt, doneAt sim.Time
	d.Submit(&Request{
		StartBlock: target, Blocks: 1, Write: true, RMW: true,
		Priority:   PriNormal,
		OnReadDone: func() { readDoneAt = eng.Now() },
		OnDone:     func() { doneAt = eng.Now() },
	})
	eng.Run()
	// Cylinder 0, phase 0, block 0: no seek, no latency.
	bt := spec.BlockTransferTime()
	rot := spec.RotationTime()
	if readDoneAt != bt {
		t.Fatalf("old-data read done at %d, want %d", readDoneAt, bt)
	}
	want := rot + bt // write pass starts at rot (head back at angle 0)
	if doneAt != want {
		t.Fatalf("RMW done at %d, want %d", doneAt, want)
	}
	if d.S.RMWs != 1 || d.S.HeldRotations != 0 {
		t.Fatalf("stats wrong: %+v", d.S)
	}
}

// TestRMWHeldRotations: when the inputs are not ready, whole extra
// rotations are spent, exactly as section 3.3 describes.
func TestRMWHeldRotations(t *testing.T) {
	eng, d, spec := newTestDisk(t, 0)
	ready := false
	var doneAt sim.Time
	d.Submit(&Request{
		StartBlock: 0, Blocks: 1, Write: true, RMW: true,
		Priority: PriNormal,
		Ready:    func() bool { return ready },
		OnDone:   func() { doneAt = eng.Now() },
	})
	rot := spec.RotationTime()
	// Allow readiness only after 2.5 rotations: attempts at 1 and 2
	// rotations fail, the attempt at 3 succeeds.
	eng.At(sim.Time(2.5*float64(rot)), func() { ready = true })
	eng.Run()
	want := 3*rot + spec.BlockTransferTime()
	if doneAt != want {
		t.Fatalf("held RMW done at %d, want %d", doneAt, want)
	}
	if d.S.HeldRotations != 2 {
		t.Fatalf("held rotations = %d, want 2", d.S.HeldRotations)
	}
}

// TestPriorityOrder: a high-priority request bypasses queued normal ones,
// and background yields to both.
func TestPriorityOrder(t *testing.T) {
	eng, d, _ := newTestDisk(t, 0)
	var order []string
	submit := func(name string, pri Priority) {
		d.Submit(&Request{
			StartBlock: 0, Blocks: 1, Priority: pri,
			OnDone: func() { order = append(order, name) },
		})
	}
	// First request occupies the disk; the rest queue.
	submit("first", PriNormal)
	submit("bg", PriBackground)
	submit("normal", PriNormal)
	submit("high", PriHigh)
	eng.Run()
	want := []string{"first", "high", "normal", "bg"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

// TestFIFOWithinClass: same-priority requests serve in arrival order.
func TestFIFOWithinClass(t *testing.T) {
	eng, d, _ := newTestDisk(t, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(&Request{
			StartBlock: int64(i * 1000), Blocks: 1, Priority: PriNormal,
			OnDone: func() { order = append(order, i) },
		})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

// TestMultiblockTransfer: an n-block run costs n block times, plus a
// track-to-track seek when it crosses a cylinder boundary.
func TestMultiblockTransfer(t *testing.T) {
	eng, d, spec := newTestDisk(t, 0)
	var within, crossing sim.Time
	// 6 blocks entirely inside cylinder 0 (180 blocks per cylinder).
	d.Submit(&Request{StartBlock: 0, Blocks: 6, Priority: PriNormal,
		OnDone: func() { within = eng.Now() }})
	eng.Run()
	if want := 6 * spec.BlockTransferTime(); within != want {
		t.Fatalf("within-cylinder transfer %d, want %d", within, want)
	}

	// A run crossing from cylinder 0 into cylinder 1.
	eng2 := sim.New()
	d2, _ := New(eng2, 0, spec, geom.MustCalibrateSeek(spec), 0)
	start := int64(spec.BlocksPerCylinder() - 3)
	startAngle := spec.AngleOfBlock(spec.ToCHS(start).Block)
	d2.Submit(&Request{StartBlock: start, Blocks: 6, Priority: PriNormal,
		OnDone: func() { crossing = eng2.Now() }})
	eng2.Run()
	rot := spec.RotationTime()
	latency := sim.Time(startAngle * float64(rot)) // phase 0, t=0
	want := latency + 6*spec.BlockTransferTime() + geom.MustCalibrateSeek(spec).Time(1)
	if crossing != want {
		t.Fatalf("crossing transfer done at %d, want %d", crossing, want)
	}
	if d2.Cylinder() != 1 {
		t.Fatalf("arm at cylinder %d after crossing run, want 1", d2.Cylinder())
	}
}

// TestQueueWaitAccounting: the second request's queue wait equals the
// first one's residual service.
func TestQueueWaitAccounting(t *testing.T) {
	eng, d, _ := newTestDisk(t, 0)
	var firstDone sim.Time
	d.Submit(&Request{StartBlock: 0, Blocks: 1, Priority: PriNormal,
		OnDone: func() { firstDone = eng.Now() }})
	var secondStartWait sim.Time
	d.Submit(&Request{StartBlock: 0, Blocks: 1, Priority: PriNormal,
		OnStart: func() { secondStartWait = eng.Now() }})
	eng.Run()
	if secondStartWait != firstDone {
		t.Fatalf("second start %d, want first completion %d", secondStartWait, firstDone)
	}
	if d.S.QueueWait.N() != 2 {
		t.Fatalf("queue wait samples: %d", d.S.QueueWait.N())
	}
	if d.S.QueueWait.Max() <= 0 {
		t.Fatal("second request should have waited")
	}
}

// TestUtilizationTracksService: utilization equals busy time over the
// observation window.
func TestUtilizationTracksService(t *testing.T) {
	eng, d, _ := newTestDisk(t, 0)
	var doneAt sim.Time
	d.Submit(&Request{StartBlock: 0, Blocks: 1, Priority: PriNormal,
		OnDone: func() { doneAt = eng.Now() }})
	eng.Run()
	if got := d.S.Util.BusyTime(doneAt); got != doneAt {
		t.Fatalf("busy %d of %d", got, doneAt)
	}
}

// TestSubmitValidation: malformed requests panic (controller bugs).
func TestSubmitValidation(t *testing.T) {
	_, d, spec := newTestDisk(t, 0)
	bad := []*Request{
		{StartBlock: 0, Blocks: 0},
		{StartBlock: -1, Blocks: 1},
		{StartBlock: spec.BlocksPerDisk(), Blocks: 1},
		{StartBlock: spec.BlocksPerDisk() - 1, Blocks: 2},
		{StartBlock: 0, Blocks: 1, RMW: true, Write: false},
		{StartBlock: 0, Blocks: 1, Priority: Priority(99)},
	}
	for i, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad request %d accepted", i)
				}
			}()
			d.Submit(r)
		}()
	}
}

// TestPhaseAffectsLatency: different rotational phases give different
// (but bounded) latencies.
func TestPhaseAffectsLatency(t *testing.T) {
	spec := geom.Default()
	rot := spec.RotationTime()
	var times []sim.Time
	for _, phase := range []float64{0, 0.25, 0.5, 0.75} {
		eng := sim.New()
		d, _ := New(eng, 0, spec, geom.MustCalibrateSeek(spec), phase)
		var done sim.Time
		d.Submit(&Request{StartBlock: 0, Blocks: 1, Priority: PriNormal,
			OnDone: func() { done = eng.Now() }})
		eng.Run()
		times = append(times, done)
	}
	for i, a := range times {
		if a < spec.BlockTransferTime() || a > rot+spec.BlockTransferTime() {
			t.Fatalf("phase case %d: completion %d outside [transfer, rot+transfer]", i, a)
		}
	}
	if times[0] == times[1] && times[1] == times[2] {
		t.Fatal("latency should vary with phase")
	}
}
