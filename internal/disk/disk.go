// Package disk models a single disk drive as a discrete-event server: a
// prioritized FIFO queue feeding a mechanism with seek, rotational
// position, and media transfer, plus the two-phase read-modify-write
// access that parity organizations use (read the old block, wait for the
// platter to come around, write the new block in place — holding extra
// full rotations if the new contents are not yet computable).
package disk

import (
	"fmt"
	"math"

	"raidsim/internal/geom"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/stats"
)

// Priority orders requests in the disk queue. Lower values are served
// first; within a priority class service is FIFO.
type Priority int

// Priority classes, from most to least urgent.
const (
	PriHigh       Priority = iota // parity accesses under the /PR policies
	PriNormal                     // foreground reads and writes
	PriBackground                 // destage, parity spool, rebuild traffic
	numPriorities
)

// Request is one disk access. StartBlock/Blocks address the drive's own
// block space (see geom.Spec.ToCHS). For RMW requests the drive first
// reads Blocks old blocks at the target location, fires OnReadDone, and
// then writes the same location exactly one rotation after the read pass
// began — or later, in whole-rotation steps, while Ready reports false.
type Request struct {
	StartBlock int64
	Blocks     int
	Write      bool
	RMW        bool
	Priority   Priority

	// TransferSectors, when positive, overrides the media-pass length:
	// the access addresses StartBlock's position but transfers only this
	// many sectors (byte-striped organizations like RAID3 move a 1/N
	// slice of each block per disk). Incompatible with RMW and with runs
	// that span blocks.
	TransferSectors int

	// Ready gates the RMW write phase; nil means always ready.
	Ready func() bool
	// OnStart fires when the request acquires the mechanism (Disk First
	// policies hook this). May be nil.
	OnStart func()
	// OnReadDone fires when an RMW request finishes reading old data.
	// May be nil.
	OnReadDone func()
	// OnDone fires when the request fully completes. May be nil.
	OnDone func()

	// Span, when non-nil, receives the access's mechanism sub-spans
	// (queue wait, seek+rotate, transfer, and the RMW legs read-old /
	// realign / hold-rotation / write-new) and is closed when the access
	// completes or is dropped. The controller allocates it; a nil Span
	// (tracing off) costs one branch per probe point.
	Span *obs.Span

	enqueued sim.Time
}

// Stats aggregates a drive's activity counters.
type Stats struct {
	Accesses      int64 // requests serviced
	Reads         int64
	Writes        int64
	RMWs          int64
	BlocksRead    int64
	BlocksWritten int64
	SeekDistSum   int64 // cylinders traveled
	SeekCount     int64 // seeks with distance >= 1
	HeldRotations int64 // extra full rotations waiting for RMW inputs
	RMWAborts     int64 // RMWs that gave up holding and requeued
	Dropped       int64 // requests refused because the drive had failed

	// Mechanism-time attribution for the latency breakdown. The three sums
	// partition the pure mechanism time (seek travel, rotational
	// positioning including RMW write-pass realignment, media passes);
	// held rotations and queueing are tracked separately above. An aborted
	// RMW keeps the mechanism time it consumed, like HeldRotations.
	SeekTime     sim.Time
	RotateTime   sim.Time
	TransferTime sim.Time
	QueueWait    stats.Summary
	ServiceTime  stats.Summary
	Util         stats.Utilization
}

// Probe receives the drive's mechanism-busy intervals; package obs
// implements it. A nil probe (the default) costs one branch per service.
type Probe interface {
	DiskBusy(id int, from, to sim.Time)
}

// Disk is a single simulated drive.
type Disk struct {
	ID   int
	eng  *sim.Engine
	spec geom.Spec
	seek geom.SeekModel

	phase  float64 // initial rotational phase, fraction of a revolution
	cyl    int     // current arm cylinder
	busy   bool
	failed bool

	// slow, when > 1, stretches the mechanism's seek and media-transfer
	// times by that factor: the "sick disk" degradation mode where a drive
	// still works but everything takes longer (fault.SickDisk.SlowFactor).
	slow float64
	// hangUntil gates the scheduler: while now < hangUntil the mechanism
	// refuses new work (queued requests wait; an access already in flight
	// completes normally). Models firmware stalls / intermittent hangs.
	hangUntil sim.Time
	hangWake  bool // a wake-up event for hangUntil is already scheduled

	sched  Sched
	lookUp bool // LOOK sweep direction
	queues [numPriorities][]*Request

	probe     Probe
	busySince sim.Time

	S Stats
}

// SetProbe attaches an observability probe (nil detaches it).
func (d *Disk) SetProbe(p Probe) { d.probe = p }

// New returns an idle drive with its arm at cylinder 0 and the given
// rotational phase in [0, 1). No spindle synchronization is assumed, so
// callers give each drive an independent random phase.
func New(eng *sim.Engine, id int, spec geom.Spec, seek geom.SeekModel, phase float64) (*Disk, error) {
	if phase < 0 || phase >= 1 {
		return nil, fmt.Errorf("disk: phase %f outside [0,1)", phase)
	}
	return &Disk{ID: id, eng: eng, spec: spec, seek: seek, phase: phase}, nil
}

// SetSlowFactor stretches (factor > 1) or restores (factor <= 1) the
// drive's mechanism times: seeks and media passes take factor times as
// long. It affects only accesses that acquire the mechanism after the
// call; an access in flight keeps the timing it was planned with.
func (d *Disk) SetSlowFactor(factor float64) {
	if factor <= 1 {
		d.slow = 0
		return
	}
	d.slow = factor
}

// SlowFactor returns the active slowdown (1 when healthy).
func (d *Disk) SlowFactor() float64 {
	if d.slow > 1 {
		return d.slow
	}
	return 1
}

// Hang stalls the mechanism until the given absolute time: queued and
// newly submitted requests wait, an access already in service completes
// normally. Overlapping hangs extend to the latest deadline. The drive
// wakes itself and resumes its queue when the hang expires.
func (d *Disk) Hang(until sim.Time) {
	if until <= d.hangUntil || until <= d.eng.Now() {
		return
	}
	d.hangUntil = until
	if !d.hangWake {
		d.hangWake = true
		d.armHangWake()
	}
}

// armHangWake schedules the post-hang queue kick; chained if the hang was
// extended while waiting.
func (d *Disk) armHangWake() {
	d.eng.At(d.hangUntil, func() {
		if d.eng.Now() < d.hangUntil {
			d.armHangWake()
			return
		}
		d.hangWake = false
		d.trySchedule()
	})
}

// Hanging reports whether the mechanism is currently refusing new work.
func (d *Disk) Hanging() bool { return d.eng.Now() < d.hangUntil }

// Spec returns the drive's geometry.
func (d *Disk) Spec() geom.Spec { return d.spec }

// Cylinder returns the arm's current (or in-flight target) cylinder, used
// by the mirrored organization's shortest-seek read routing.
func (d *Disk) Cylinder() int { return d.cyl }

// QueueLen returns the number of requests waiting (not in service).
func (d *Disk) QueueLen() int {
	n := 0
	for _, q := range d.queues {
		n += len(q)
	}
	return n
}

// Busy reports whether the mechanism is in use.
func (d *Disk) Busy() bool { return d.busy }

// Failed reports whether the drive has failed.
func (d *Disk) Failed() bool { return d.failed }

// Fail kills the drive. Queued requests are dropped — their callbacks
// still fire (in order, a moment later) so controller bookkeeping that
// waits on OnStart/OnReadDone/OnDone stays live; it is the controller's
// job to know the drive is dead and not trust the "data". A request
// already holding the mechanism completes normally (its media pass was in
// flight when the electronics died). Idempotent.
func (d *Disk) Fail() {
	if d.failed {
		return
	}
	d.failed = true
	for p := range d.queues {
		for _, r := range d.queues[p] {
			d.drop(r)
		}
		d.queues[p] = nil
	}
}

// Repair puts a fresh working drive in this slot (hot-spare swap). The
// replacement mechanism starts with its arm at cylinder 0; rotational
// phase is inherited (one arbitrary phase is as good as another).
func (d *Disk) Repair() {
	if !d.failed {
		return
	}
	d.failed = false
	d.cyl = 0
}

// drop fails one request: its lifecycle callbacks fire in the usual
// order on a fresh engine event, with no media time modeled.
func (d *Disk) drop(r *Request) {
	d.S.Dropped++
	c := d.eng.AfterCall(0, dropFire)
	c.A, c.B = d, r
}

func dropFire(e *sim.Engine, c *sim.Call) {
	r := c.B.(*Request)
	r.Span.CloseAt(e.Now())
	if r.OnStart != nil {
		r.OnStart()
	}
	if r.RMW && r.OnReadDone != nil {
		r.OnReadDone()
	}
	if r.OnDone != nil {
		r.OnDone()
	}
}

// Submit enqueues a request. It panics on malformed requests — those are
// controller bugs, not simulated conditions.
func (d *Disk) Submit(r *Request) {
	if r.Blocks <= 0 {
		panic("disk: request with no blocks")
	}
	if r.StartBlock < 0 || r.StartBlock+int64(r.Blocks) > d.spec.BlocksPerDisk() {
		panic(fmt.Sprintf("disk %d: request [%d,%d) outside drive [0,%d)",
			d.ID, r.StartBlock, r.StartBlock+int64(r.Blocks), d.spec.BlocksPerDisk()))
	}
	if r.RMW && !r.Write {
		panic("disk: RMW request must be a write")
	}
	if r.TransferSectors < 0 || (r.TransferSectors > 0 && r.RMW) {
		panic("disk: bad TransferSectors")
	}
	if r.Priority < 0 || r.Priority >= numPriorities {
		panic("disk: bad priority")
	}
	r.Span.SetDisk(d.ID)
	if d.failed {
		d.drop(r)
		return
	}
	r.enqueued = d.eng.Now()
	d.queues[r.Priority] = append(d.queues[r.Priority], r)
	d.trySchedule()
}

func (d *Disk) trySchedule() {
	if d.busy {
		return
	}
	if d.eng.Now() < d.hangUntil {
		return // hung: the wake-up scheduled by Hang resumes the queue
	}
	r := d.pop()
	if r == nil {
		return
	}
	d.busy = true
	now := d.eng.Now()
	d.busySince = now
	d.S.Util.SetBusy(now)
	d.S.QueueWait.Add(sim.Millis(now - r.enqueued))
	if now > r.enqueued {
		r.Span.ChildSpan(obs.SpanQueue, r.enqueued, now)
	}
	if r.OnStart != nil {
		r.OnStart()
	}
	d.service(r, now)
}

// angleAt returns the rotational position at time t as a fraction of a
// revolution in [0, 1).
func (d *Disk) angleAt(t sim.Time) float64 {
	rot := d.spec.RotationTime()
	pos := float64(t%rot)/float64(rot) + d.phase
	return pos - math.Floor(pos)
}

// rotationalDelay returns the time until the head next reaches angle a,
// starting from time t. Zero if it is exactly there.
func (d *Disk) rotationalDelay(t sim.Time, a float64) sim.Time {
	cur := d.angleAt(t)
	frac := a - cur
	if frac < 0 {
		frac++
	}
	return sim.Time(frac * float64(d.spec.RotationTime()))
}

// transferPlan describes the media pass over a contiguous block run.
type transferPlan struct {
	duration sim.Time // total media time including cylinder crossings
	endCyl   int      // arm position afterwards
}

// planTransfer computes the media transfer of n blocks starting at start.
// Consecutive blocks stream continuously across heads within a cylinder
// (track skew hides head-switch time); crossing a cylinder boundary costs
// a single-cylinder seek, with the layout skewed so no additional
// rotation is lost.
func (d *Disk) planTransfer(start int64, n int) transferPlan {
	bt := d.spec.BlockTransferTime()
	dur := sim.Time(n) * bt
	startCyl := d.spec.ToCHS(start).Cylinder
	endCyl := d.spec.ToCHS(start + int64(n) - 1).Cylinder
	if crossings := endCyl - startCyl; crossings > 0 {
		dur += sim.Time(crossings) * d.seek.Time(1)
	}
	return transferPlan{duration: dur, endCyl: endCyl}
}

func (d *Disk) service(r *Request, now sim.Time) {
	chs := d.spec.ToCHS(r.StartBlock)
	dist := chs.Cylinder - d.cyl
	if dist < 0 {
		dist = -dist
	}
	if dist > 0 {
		d.S.SeekDistSum += int64(dist)
		d.S.SeekCount++
	}
	seekT := d.seek.Time(dist)
	if d.slow > 1 {
		seekT = sim.Time(float64(seekT) * d.slow)
	}
	d.S.SeekTime += seekT
	d.cyl = chs.Cylinder

	arrive := now + seekT
	startAngle := d.spec.AngleOfBlock(chs.Block)
	latency := d.rotationalDelay(arrive, startAngle)
	d.S.RotateTime += latency
	var plan transferPlan
	if r.TransferSectors > 0 {
		plan = transferPlan{
			duration: d.spec.SectorTime() * sim.Time(r.TransferSectors),
			endCyl:   chs.Cylinder,
		}
	} else {
		plan = d.planTransfer(r.StartBlock, r.Blocks)
	}
	if d.slow > 1 {
		plan.duration = sim.Time(float64(plan.duration) * d.slow)
	}
	d.cyl = plan.endCyl

	passStart := arrive + latency
	passEnd := passStart + plan.duration
	d.S.TransferTime += plan.duration
	r.Span.ChildSpan(obs.SpanSeekRotate, now, passStart)

	d.S.Accesses++
	if r.RMW {
		d.S.RMWs++
		d.S.BlocksRead += int64(r.Blocks)
		d.S.BlocksWritten += int64(r.Blocks)
	} else if r.Write {
		d.S.Writes++
		d.S.BlocksWritten += int64(r.Blocks)
	} else {
		d.S.Reads++
		d.S.BlocksRead += int64(r.Blocks)
	}

	if !r.RMW {
		r.Span.ChildSpan(obs.SpanTransfer, passStart, passEnd)
		fc := d.eng.AtCall(passEnd, finishFire)
		fc.A, fc.B, fc.N0 = d, r, now
		return
	}
	r.Span.ChildSpan(obs.SpanReadOld, passStart, passEnd)

	// RMW: the pass just performed is the old-data read. The write of the
	// new data can begin when the head is back over the start of the run:
	// a whole number of rotations after the read pass began, the first
	// instant at or after the read pass ends (multi-track runs keep this
	// alignment because the layout is skewed).
	rc := d.eng.AtCall(passEnd, rmwReadDoneFire)
	rc.A, rc.B = d, r
	rc.N0, rc.N1 = plan.duration, now
}

// finishFire completes an access: A = disk, B = request, N0 = service
// start time.
func finishFire(_ *sim.Engine, c *sim.Call) {
	c.A.(*Disk).finish(c.B.(*Request), c.N0)
}

// rmwReadDoneFire runs at the end of an RMW old-data read pass: A =
// disk, B = request, N0 = media-pass duration, N1 = service start. The
// pass start is recovered from the clock (the event fires at pass end).
func rmwReadDoneFire(e *sim.Engine, c *sim.Call) {
	d := c.A.(*Disk)
	r := c.B.(*Request)
	dur, svcStart := c.N0, c.N1
	passEnd := e.Now()
	passStart := passEnd - dur
	if r.OnReadDone != nil {
		r.OnReadDone()
	}
	rot := d.spec.RotationTime()
	k := (dur + rot - 1) / rot
	if k < 1 {
		k = 1
	}
	// The gap between the read pass ending and the write pass starting
	// is rotational repositioning.
	d.S.RotateTime += k*rot - dur
	r.Span.ChildSpan(obs.SpanRealign, passEnd, passStart+k*rot)
	d.rmwWriteAttempt(r, passStart+k*rot, dur, svcStart, 0)
}

// maxHeldRotations bounds how long an RMW may hold the mechanism waiting
// for its inputs ("the parity disk is held for the duration of some
// number of full rotations", section 3.3). Past the bound the access
// gives up and requeues at the head of its class — without the bound,
// two Simultaneous-Issue parity updates holding each other's data disks
// would deadlock.
const maxHeldRotations = 8

// rmwWriteAttempt tries to start the RMW write pass at writeStart; if the
// inputs are not ready the head must make another full rotation.
func (d *Disk) rmwWriteAttempt(r *Request, writeStart sim.Time, dur sim.Time, svcStart sim.Time, holds int) {
	c := d.eng.AtCall(writeStart, rmwWriteFire)
	c.A, c.B = d, r
	c.N0, c.N1, c.N2 = dur, svcStart, int64(holds)
}

// rmwWriteFire runs at an RMW write-pass start attempt: A = disk, B =
// request, N0 = pass duration, N1 = service start, N2 = rotations held
// so far. The event fires at the attempted write start.
func rmwWriteFire(e *sim.Engine, c *sim.Call) {
	d := c.A.(*Disk)
	r := c.B.(*Request)
	dur, svcStart, holds := c.N0, c.N1, int(c.N2)
	writeStart := e.Now()
	if r.Ready != nil && !r.Ready() {
		d.S.HeldRotations++
		r.Span.ChildSpan(obs.SpanHold, writeStart, writeStart+d.spec.RotationTime())
		if holds+1 >= maxHeldRotations {
			d.S.RMWAborts++
			d.requeue(r)
			return
		}
		d.rmwWriteAttempt(r, writeStart+d.spec.RotationTime(), dur, svcStart, holds+1)
		return
	}
	d.S.TransferTime += dur
	r.Span.ChildSpan(obs.SpanWriteNew, writeStart, writeStart+dur)
	fc := d.eng.AtCall(writeStart+dur, finishFire)
	fc.A, fc.B, fc.N0 = d, r, svcStart
}

// requeue releases the mechanism and puts the request at the back of its
// priority class, letting queued work — possibly the very data read this
// access is waiting for — run first. It will redo its old-data read when
// it next acquires the disk.
func (d *Disk) requeue(r *Request) {
	// The retried access redoes its read pass (and re-fires OnStart /
	// OnReadDone if set — parity accesses, the only gated kind, set
	// neither); compensate the counters so it is tallied once.
	d.S.Accesses--
	d.S.RMWs--
	d.S.BlocksRead -= int64(r.Blocks)
	d.S.BlocksWritten -= int64(r.Blocks)
	d.busy = false
	d.S.Util.SetIdle(d.eng.Now())
	if d.probe != nil {
		d.probe.DiskBusy(d.ID, d.busySince, d.eng.Now())
	}
	if d.failed {
		d.drop(r)
		return
	}
	r.enqueued = d.eng.Now()
	d.queues[r.Priority] = append(d.queues[r.Priority], r)
	d.trySchedule()
}

func (d *Disk) finish(r *Request, svcStart sim.Time) {
	now := d.eng.Now()
	d.S.ServiceTime.Add(sim.Millis(now - svcStart))
	d.busy = false
	d.S.Util.SetIdle(now)
	if d.probe != nil {
		d.probe.DiskBusy(d.ID, d.busySince, now)
	}
	r.Span.CloseAt(now)
	if r.OnDone != nil {
		r.OnDone()
	}
	d.trySchedule()
}
