package workload

import (
	"fmt"
	"math"
	"strings"

	"raidsim/internal/campaign/shard"
	"raidsim/internal/geom"
	"raidsim/internal/sim"
	"raidsim/internal/specio"
	"raidsim/internal/trace"
)

// SpecVersion is the versioned header every workload spec file carries.
const SpecVersion = "raidsim-workload/1"

// Spec is the declarative, compositional workload description: several
// client classes sharing one logical disk space, each with its own
// arrival process, request-size distribution, skew/locality shape,
// read-write mix, and SLO class. It is the multi-client generalization
// of Profile — every built-in profile is expressible as a single-client
// Spec that generates the identical trace — and the JSON form (stdlib
// only, strict keys, versioned header; see LoadSpec) is the file format
// behind `-workload` and campaign workload axes.
//
// Time compression: TimeScale > 1 simulates the same load shape in
// 1/TimeScale of the wall-clock — a 24 h diurnal curve in minutes.
// Request counts and the duration shrink together, so every client's
// arrival rate (the operating point) and its share of each schedule
// phase are preserved; only the horizon compresses.
//
// Seeding: each client's generator stream derives from the spec seed
// keyed on the client's name (unless the client pins its own Seed), so
// adding, removing, or reordering clients never reseeds the others.
type Spec struct {
	// Version is the "spec" header; LoadSpec requires SpecVersion.
	// Programmatic specs may leave it empty.
	Version string `json:"spec,omitempty"`
	Name    string `json:"name"`

	// Disks and BlocksPerDisk shape the logical space all clients share;
	// BlocksPerDisk 0 takes the disk model's geometry.
	Disks         int   `json:"disks"`
	BlocksPerDisk int64 `json:"blocks_per_disk,omitempty"`

	// DurationS is the uncompressed trace horizon in seconds.
	DurationS float64 `json:"duration_s"`
	// TimeScale compresses the horizon: requests/TimeScale arrivals in
	// DurationS/TimeScale seconds. Default (and minimum meaningful) 1.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Seed is the spec-level seed per-client streams derive from
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`

	Clients []ClientSpec `json:"clients"`
}

// ClientSpec is one client class of a Spec. Zero values take the
// documented defaults; every distribution knob mirrors the Profile field
// of the same name.
type ClientSpec struct {
	Name string `json:"name"`
	// SLOClass maps the client onto the robustness layer's classes:
	// "gold" (latency-sensitive, never shed), "batch" (sheddable, laxer
	// deadline), or "auto" (default: classify each request by size, the
	// classless behavior).
	SLOClass string `json:"slo,omitempty"`
	// Requests is the client's uncompressed request count over DurationS.
	Requests int `json:"requests"`
	// Seed pins the client's generator stream; 0 (the default) derives
	// it from the spec seed keyed on the client name.
	Seed uint64 `json:"seed,omitempty"`

	Arrival ArrivalSpec `json:"arrival,omitempty"`

	WriteFraction      float64 `json:"write_fraction,omitempty"`
	MultiBlockFraction float64 `json:"multiblock_fraction,omitempty"`
	MeanMultiBlocks    float64 `json:"mean_multiblocks,omitempty"`
	MaxMultiBlocks     int     `json:"max_multiblocks,omitempty"` // default 64

	DiskZipfTheta    float64 `json:"disk_zipf_theta,omitempty"`
	ExtentsPerDisk   int     `json:"extents_per_disk,omitempty"` // default 64
	ExtentZipfTheta  float64 `json:"extent_zipf_theta,omitempty"`
	DiskHotClustered bool    `json:"disk_hot_clustered,omitempty"`

	HotSetProb        float64 `json:"hot_set_prob,omitempty"`
	HotBlocks         int     `json:"hot_blocks,omitempty"`
	ZoneProb          float64 `json:"zone_prob,omitempty"`
	ZoneBlocksPerDisk int64   `json:"zone_blocks_per_disk,omitempty"`
	WindowProb        float64 `json:"window_prob,omitempty"`
	LocalityWindow    int     `json:"locality_window,omitempty"`

	ReadBeforeWriteProb float64 `json:"read_before_write_prob,omitempty"`
	TransactionMeanIOs  float64 `json:"transaction_mean_ios,omitempty"` // default 1
	IntraBurstGapUS     float64 `json:"intra_burst_gap_us,omitempty"`
}

// ArrivalSpec selects a client's arrival process.
type ArrivalSpec struct {
	// Process is "poisson" (default), "bursty" (busy/quiet duty-cycle
	// modulation), or "diurnal" (piecewise-constant rate schedule).
	Process string `json:"process,omitempty"`

	// Bursty: busy phases (fraction BurstDuty of time, mean length
	// BurstPeriodS) run BurstFactor times the average rate.
	BurstFactor float64 `json:"burst_factor,omitempty"`
	BurstDuty   float64 `json:"burst_duty,omitempty"`
	// BurstPeriodS is micro-structure and is NOT compressed by
	// TimeScale, like the intra-burst gap.
	BurstPeriodS float64 `json:"burst_period_s,omitempty"`

	// Diurnal: relative rate Phases over a cycle of PeriodS seconds
	// (0 = the whole duration). Phase starts are macro-structure and
	// compress with TimeScale. A rate of 0 silences the client — a batch
	// window or maintenance spike is a client whose schedule is zero
	// outside its window.
	Phases  []PhaseSpec `json:"phases,omitempty"`
	PeriodS float64     `json:"period_s,omitempty"`
}

// PhaseSpec is one segment of a diurnal schedule.
type PhaseSpec struct {
	StartS float64 `json:"start_s"`
	Rate   float64 `json:"rate"`
}

// LoadSpec reads a workload Spec from a JSON file: strict keys ("did you
// mean" on typos) and a required "spec": "raidsim-workload/1" header.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	if err := specio.Load(path, specio.Header{Want: SpecVersion, Required: true}, &s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// BuiltinNames lists the workloads Builtin accepts, sorted.
func BuiltinNames() []string { return []string{"diurnal", "dss", "trace1", "trace2"} }

// Builtin returns a named built-in workload spec: the calibrated paper
// profiles as single-client specs, plus the 3-class diurnal example.
func Builtin(name string) (Spec, error) {
	switch name {
	case "trace1":
		return SpecFromProfile(Trace1Profile()), nil
	case "trace2":
		return SpecFromProfile(Trace2Profile()), nil
	case "dss":
		return SpecFromProfile(DSSProfile()), nil
	case "diurnal":
		return DiurnalSpec(), nil
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q (valid: %s, or a .json spec path)",
		name, strings.Join(BuiltinNames(), ", "))
}

// Resolve turns a -workload argument — a built-in name or a path to a
// .json spec file — into a Spec.
func Resolve(arg string) (Spec, error) {
	if strings.HasSuffix(arg, ".json") {
		return LoadSpec(arg)
	}
	return Builtin(arg)
}

// ResolveTrace resolves a workload argument and generates its trace at
// the given scale. The built-in profiles (trace1, trace2, dss) generate
// through the classic Profile path — classless and bit-identical to
// every earlier release — while spec files and the multi-client
// builtins go through Spec.Generate and carry a class table.
func ResolveTrace(arg string, scale float64) (*trace.Trace, error) {
	var p Profile
	switch arg {
	case "trace1":
		p = Trace1Profile()
	case "trace2":
		p = Trace2Profile()
	case "dss":
		p = DSSProfile()
	default:
		sp, err := Resolve(arg)
		if err != nil {
			return nil, err
		}
		if scale != 1 {
			sp = sp.Scaled(scale)
		}
		return sp.Generate()
	}
	return Generate(p.Scaled(scale))
}

// SpecFromProfile expresses a Profile as a single-client Spec whose
// Generate produces the bit-identical trace: every knob carries over and
// the client pins the profile's seed.
func SpecFromProfile(p Profile) Spec {
	c := ClientSpec{
		Name:     p.Name,
		SLOClass: "auto",
		Requests: p.Requests,
		Seed:     p.Seed,

		WriteFraction:      p.WriteFraction,
		MultiBlockFraction: p.MultiBlockFraction,
		MeanMultiBlocks:    p.MeanMultiBlocks,
		MaxMultiBlocks:     p.MaxMultiBlocks,

		DiskZipfTheta:    p.DiskZipfTheta,
		ExtentsPerDisk:   p.ExtentsPerDisk,
		ExtentZipfTheta:  p.ExtentZipfTheta,
		DiskHotClustered: p.DiskHotClustered,

		HotSetProb:        p.HotSetProb,
		HotBlocks:         p.HotBlocks,
		ZoneProb:          p.ZoneProb,
		ZoneBlocksPerDisk: p.ZoneBlocksPerDisk,
		WindowProb:        p.WindowProb,
		LocalityWindow:    p.LocalityWindow,

		ReadBeforeWriteProb: p.ReadBeforeWriteProb,
		TransactionMeanIOs:  p.TransactionMeanIOs,
		IntraBurstGapUS:     float64(p.IntraBurstGap) / float64(sim.Microsecond),
	}
	if p.LoadBurstFactor > 1 {
		c.Arrival = ArrivalSpec{
			Process:      "bursty",
			BurstFactor:  p.LoadBurstFactor,
			BurstDuty:    p.LoadBurstDuty,
			BurstPeriodS: float64(p.LoadBurstPeriod) / float64(sim.Second),
		}
	}
	if len(p.Schedule) > 0 {
		a := ArrivalSpec{Process: "diurnal", PeriodS: float64(p.SchedulePeriod) / float64(sim.Second)}
		for _, ph := range p.Schedule {
			a.Phases = append(a.Phases, PhaseSpec{StartS: float64(ph.Start) / float64(sim.Second), Rate: ph.Rate})
		}
		c.Arrival = a
	}
	return Spec{
		Name:          p.Name,
		Disks:         p.NumDisks,
		BlocksPerDisk: p.BlocksPerDisk,
		DurationS:     float64(p.Duration) / float64(sim.Second),
		Clients:       []ClientSpec{c},
	}
}

// fill applies the documented defaults in place.
func (s *Spec) fill() {
	if s.Name == "" {
		s.Name = "workload"
	}
	if s.BlocksPerDisk == 0 {
		s.BlocksPerDisk = geom.Default().BlocksPerDisk()
	}
	if s.TimeScale == 0 {
		s.TimeScale = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.ExtentsPerDisk == 0 {
			c.ExtentsPerDisk = 64
		}
		if c.MaxMultiBlocks == 0 {
			c.MaxMultiBlocks = 64
		}
		if c.MultiBlockFraction > 0 && c.MeanMultiBlocks == 0 {
			c.MeanMultiBlocks = 8
		}
		if c.TransactionMeanIOs == 0 {
			c.TransactionMeanIOs = 1
		}
	}
}

// Scaled returns a copy generating f times the requests in f times the
// duration: every client's arrival rate — the operating point — is
// unchanged, exactly like Profile.Scaled. Macro-structure (diurnal phase
// boundaries) compresses with the duration; micro-structure (burst
// periods, intra-burst gaps) stays absolute.
func (s Spec) Scaled(f float64) Spec {
	if f <= 0 {
		panic("workload: non-positive scale")
	}
	q := s
	q.DurationS = s.DurationS * f
	q.Clients = append([]ClientSpec(nil), s.Clients...)
	for i := range q.Clients {
		c := &q.Clients[i]
		c.Requests = int(float64(c.Requests) * f)
		if c.Requests < 1 {
			c.Requests = 1
		}
		if len(c.Arrival.Phases) > 0 {
			ph := make([]PhaseSpec, len(c.Arrival.Phases))
			for j, p := range c.Arrival.Phases {
				ph[j] = PhaseSpec{StartS: p.StartS * f, Rate: p.Rate}
			}
			c.Arrival.Phases = ph
			c.Arrival.PeriodS = c.Arrival.PeriodS * f
		}
	}
	return q
}

// Validate reports spec errors, naming the offending client.
func (s Spec) Validate() error {
	s.fill()
	if s.Disks <= 0 {
		return fmt.Errorf("workload spec %q: disks must be positive", s.Name)
	}
	if s.DurationS <= 0 {
		return fmt.Errorf("workload spec %q: duration_s must be positive", s.Name)
	}
	if s.TimeScale < 1 {
		return fmt.Errorf("workload spec %q: time_scale %g must be >= 1", s.Name, s.TimeScale)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("workload spec %q: needs at least one client", s.Name)
	}
	if len(s.Clients) > 256 {
		return fmt.Errorf("workload spec %q: %d clients exceed the 256-class trace format", s.Name, len(s.Clients))
	}
	seen := make(map[string]bool, len(s.Clients))
	for i, c := range s.Clients {
		if c.Name == "" {
			return fmt.Errorf("workload spec %q: client %d needs a name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload spec %q: duplicate client name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if _, err := trace.ParseSLO(c.SLOClass); err != nil {
			return fmt.Errorf("workload spec %q: client %q: %w", s.Name, c.Name, err)
		}
		p, err := s.clientProfile(i)
		if err != nil {
			return err
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload spec %q: client %q: %w", s.Name, c.Name, err)
		}
	}
	return nil
}

// clientProfile compiles client i down to the Profile the generator
// runs, applying TimeScale compression and the derived seed. The caller
// must have run fill.
func (s Spec) clientProfile(i int) (Profile, error) {
	c := s.Clients[i]
	ts := s.TimeScale
	reqs := int(math.Round(float64(c.Requests) / ts))
	if reqs < 1 {
		reqs = 1
	}
	seed := c.Seed
	if seed == 0 {
		seed = shard.SeedFor(s.Seed, c.Name)
	}
	p := Profile{
		Name:          c.Name,
		NumDisks:      s.Disks,
		BlocksPerDisk: s.BlocksPerDisk,
		Requests:      reqs,
		Duration:      secs(s.DurationS / ts),

		WriteFraction:      c.WriteFraction,
		MultiBlockFraction: c.MultiBlockFraction,
		MeanMultiBlocks:    c.MeanMultiBlocks,
		MaxMultiBlocks:     c.MaxMultiBlocks,

		DiskZipfTheta:    c.DiskZipfTheta,
		ExtentsPerDisk:   c.ExtentsPerDisk,
		ExtentZipfTheta:  c.ExtentZipfTheta,
		DiskHotClustered: c.DiskHotClustered,

		HotSetProb:        c.HotSetProb,
		HotBlocks:         c.HotBlocks,
		ZoneProb:          c.ZoneProb,
		ZoneBlocksPerDisk: c.ZoneBlocksPerDisk,
		WindowProb:        c.WindowProb,
		LocalityWindow:    c.LocalityWindow,

		ReadBeforeWriteProb: c.ReadBeforeWriteProb,
		TransactionMeanIOs:  c.TransactionMeanIOs,
		IntraBurstGap:       sim.Time(math.Round(c.IntraBurstGapUS * float64(sim.Microsecond))),

		Seed: seed,
	}
	switch c.Arrival.Process {
	case "", "poisson":
	case "bursty":
		p.LoadBurstFactor = c.Arrival.BurstFactor
		p.LoadBurstDuty = c.Arrival.BurstDuty
		p.LoadBurstPeriod = secs(c.Arrival.BurstPeriodS)
	case "diurnal":
		if len(c.Arrival.Phases) == 0 {
			return Profile{}, fmt.Errorf("workload spec %q: client %q: diurnal arrival needs phases", s.Name, c.Name)
		}
		// Scale the cycle as one unit: round the period once, then place
		// each boundary at the same fraction of the scaled period it held
		// in the unscaled cycle. Rounding every boundary independently
		// (secs(ph.StartS/ts)) drifts boundaries a nanosecond against the
		// period at non-divisor scales, so a phase silently gains or loses
		// arrivals relative to the 24-hour shape it is supposed to
		// compress. A zero period means one cycle spans the run, so the
		// scaled duration is the reference instead.
		p.SchedulePeriod = secs(c.Arrival.PeriodS / ts)
		refScaled, refRaw := float64(p.SchedulePeriod), c.Arrival.PeriodS
		if p.SchedulePeriod == 0 {
			refScaled, refRaw = float64(p.Duration), s.DurationS
		}
		for j, ph := range c.Arrival.Phases {
			at := secs(ph.StartS / ts)
			if refRaw > 0 {
				at = sim.Time(math.Round(refScaled * ph.StartS / refRaw))
			}
			// Nanosecond clamps so legal specs stay legal after scaling:
			// starts must strictly increase and stay inside the period.
			if j > 0 && at <= p.Schedule[j-1].Start {
				at = p.Schedule[j-1].Start + 1
			}
			if lim := sim.Time(refScaled); lim > 0 && at >= lim && ph.StartS < refRaw {
				at = lim - 1
			}
			p.Schedule = append(p.Schedule, RatePhase{Start: at, Rate: ph.Rate})
		}
	default:
		return Profile{}, fmt.Errorf("workload spec %q: client %q: unknown arrival process %q (want poisson, bursty, or diurnal)",
			s.Name, c.Name, c.Arrival.Process)
	}
	return p, nil
}

// secs converts float seconds to sim.Time, rounding to the nanosecond.
func secs(v float64) sim.Time { return sim.Time(math.Round(v * float64(sim.Second))) }

// Classes returns the trace class table the spec's clients map to.
func (s Spec) Classes() []trace.ClassInfo {
	out := make([]trace.ClassInfo, len(s.Clients))
	for i, c := range s.Clients {
		slo, _ := trace.ParseSLO(c.SLOClass)
		out[i] = trace.ClassInfo{Name: c.Name, SLO: slo}
	}
	return out
}

// Generate synthesizes the spec's trace: every client stream generated
// independently (with its own rng stream), records tagged with the
// client's class index, and the streams k-way merged by arrival time
// (ties broken by client order, so the merge is stable and
// deterministic). A single-client spec compiled from a Profile generates
// the bit-identical records the Profile path generates.
func (s Spec) Generate() (*trace.Trace, error) {
	s.fill()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	parts := make([][]trace.Record, len(s.Clients))
	total := 0
	for i := range s.Clients {
		p, err := s.clientProfile(i)
		if err != nil {
			return nil, err
		}
		pt, err := Generate(p)
		if err != nil {
			return nil, err
		}
		recs := pt.Records
		if i != 0 {
			// Client 0 keeps the zero class the generator wrote.
			for j := range recs {
				recs[j].Class = uint8(i)
			}
		}
		parts[i] = recs
		total += len(recs)
	}
	out := &trace.Trace{
		Name:          s.Name,
		NumDisks:      s.Disks,
		BlocksPerDisk: s.BlocksPerDisk,
		Classes:       s.Classes(),
		Records:       mergeStreams(parts, total),
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// mergeStreams k-way merges per-client record streams, each already
// sorted by At, into one time-ordered stream. Ties take the lowest
// client index first — a stable, deterministic order no matter how many
// clients the spec grows.
func mergeStreams(parts [][]trace.Record, total int) []trace.Record {
	if len(parts) == 1 {
		return parts[0]
	}
	out := make([]trace.Record, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || p[idx[i]].At < parts[best][idx[best]].At {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// DiurnalSpec is the built-in 3-class example: an OLTP client (gold)
// following a daytime-peaked diurnal curve, a batch scan client confined
// to a night window, and a backup client spiking for two early-morning
// hours — the mixed traffic shape the paper's frozen traces never had.
// A 24 h horizon compressed 96x simulates in a 15-minute window.
func DiurnalSpec() Spec {
	h := 3600.0
	return Spec{
		Name:      "diurnal",
		Disks:     10,
		DurationS: 24 * h,
		TimeScale: 96,
		Seed:      11,
		Clients: []ClientSpec{
			{
				Name:     "oltp",
				SLOClass: "gold",
				Requests: 1200000,
				Arrival: ArrivalSpec{
					Process: "diurnal",
					Phases: []PhaseSpec{
						{StartS: 0, Rate: 0.35},
						{StartS: 7 * h, Rate: 1.0},
						{StartS: 19 * h, Rate: 0.6},
						{StartS: 22 * h, Rate: 0.35},
					},
				},
				WriteFraction:       0.28,
				MultiBlockFraction:  0.02,
				MeanMultiBlocks:     8,
				DiskZipfTheta:       1.2,
				ExtentZipfTheta:     0.3,
				HotSetProb:          0.05,
				HotBlocks:           500,
				ZoneProb:            0.4,
				ZoneBlocksPerDisk:   6000,
				WindowProb:          0.05,
				LocalityWindow:      100000,
				ReadBeforeWriteProb: 0.5,
				TransactionMeanIOs:  6,
				IntraBurstGapUS:     200,
			},
			{
				Name:     "scan",
				SLOClass: "batch",
				Requests: 160000,
				Arrival: ArrivalSpec{
					Process: "diurnal",
					Phases: []PhaseSpec{
						{StartS: 0, Rate: 1.0}, // night batch window: 00:00-06:00
						{StartS: 6 * h, Rate: 0},
					},
				},
				WriteFraction:      0.05,
				MultiBlockFraction: 0.8,
				MeanMultiBlocks:    24,
				DiskZipfTheta:      0.3,
				TransactionMeanIOs: 3,
				IntraBurstGapUS:    2000,
			},
			{
				Name:     "backup",
				SLOClass: "batch",
				Requests: 60000,
				Arrival: ArrivalSpec{
					Process: "diurnal",
					Phases: []PhaseSpec{
						{StartS: 0, Rate: 0},
						{StartS: 2 * h, Rate: 1.0}, // backup spike: 02:00-04:00
						{StartS: 4 * h, Rate: 0},
					},
				},
				WriteFraction:      0.02,
				MultiBlockFraction: 0.95,
				MeanMultiBlocks:    40,
				TransactionMeanIOs: 2,
				IntraBurstGapUS:    5000,
			},
		},
	}
}
