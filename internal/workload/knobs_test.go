package workload

import (
	"testing"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// knob-sensitivity tests: each generator knob must move the statistic it
// claims to control, in the right direction.

func genWith(t *testing.T, mod func(*Profile)) *trace.Trace {
	t.Helper()
	p := Trace2Profile()
	p.Requests = 30000
	p.Duration = 900 * sim.Second
	if mod != nil {
		mod(&p)
	}
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestKnobDiskZipfControlsSkew(t *testing.T) {
	flat := trace.Characterize(genWith(t, func(p *Profile) { p.DiskZipfTheta = 0 })).Skew()
	skewed := trace.Characterize(genWith(t, func(p *Profile) { p.DiskZipfTheta = 2.0 })).Skew()
	if flat > 1.5 {
		t.Errorf("theta=0 skew %.2f, want near 1", flat)
	}
	if skewed < 3*flat {
		t.Errorf("theta=2 skew %.2f not much above flat %.2f", skewed, flat)
	}
}

func TestKnobWriteFraction(t *testing.T) {
	for _, w := range []float64{0.05, 0.5} {
		c := trace.Characterize(genWith(t, func(p *Profile) { p.WriteFraction = w }))
		if got := c.WriteFraction(); got < w-0.03 || got > w+0.03 {
			t.Errorf("knob %f produced write fraction %f", w, got)
		}
	}
}

func TestKnobRBWControlsReadBeforeWrite(t *testing.T) {
	lo := trace.Analyze(genWith(t, func(p *Profile) { p.ReadBeforeWriteProb = 0.05 }))
	hi := trace.Analyze(genWith(t, func(p *Profile) { p.ReadBeforeWriteProb = 0.95 }))
	if hi.ReadBeforeWrite < lo.ReadBeforeWrite+0.3 {
		t.Errorf("RBW knob ineffective: %.3f vs %.3f", lo.ReadBeforeWrite, hi.ReadBeforeWrite)
	}
}

func TestKnobLocalityControlsReuse(t *testing.T) {
	cold := trace.Analyze(genWith(t, func(p *Profile) {
		p.HotSetProb, p.ZoneProb, p.WindowProb, p.ReadBeforeWriteProb = 0, 0, 0, 0
	}))
	warm := trace.Analyze(genWith(t, func(p *Profile) {
		p.HotSetProb, p.ZoneProb, p.WindowProb = 0.1, 0.6, 0.2
	}))
	if warm.ReReferenceP < cold.ReReferenceP+0.1 {
		t.Errorf("locality knobs ineffective: reuse %.3f vs %.3f", cold.ReReferenceP, warm.ReReferenceP)
	}
}

func TestKnobZoneSizeControlsFootprint(t *testing.T) {
	small := trace.Analyze(genWith(t, func(p *Profile) { p.ZoneBlocksPerDisk = 500; p.ZoneProb = 0.7 }))
	large := trace.Analyze(genWith(t, func(p *Profile) { p.ZoneBlocksPerDisk = 50000; p.ZoneProb = 0.7 }))
	if large.UniqueBlocks <= small.UniqueBlocks {
		t.Errorf("zone size knob ineffective: %d vs %d unique blocks",
			small.UniqueBlocks, large.UniqueBlocks)
	}
}

func TestKnobClusteredSkewAdjacency(t *testing.T) {
	// With clustered hotness the top disks are neighbors; scattered, they
	// usually are not. Use trace1-like breadth for a meaningful test.
	gen := func(clustered bool) []int64 {
		p := Trace1Profile()
		p.Requests = 40000
		p.Duration = 200 * sim.Second
		p.DiskHotClustered = clustered
		tr, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Characterize(tr).PerDiskAccesses
	}
	adjacencySpan := func(counts []int64) int {
		// Find the top-5 disks and measure their index spread.
		type dc struct {
			d int
			c int64
		}
		var all []dc
		for d, c := range counts {
			all = append(all, dc{d, c})
		}
		for i := 0; i < 5; i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].c > all[i].c {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		lo, hi := all[0].d, all[0].d
		for _, x := range all[:5] {
			if x.d < lo {
				lo = x.d
			}
			if x.d > hi {
				hi = x.d
			}
		}
		return hi - lo
	}
	clustered := adjacencySpan(gen(true))
	scattered := adjacencySpan(gen(false))
	if clustered > 15 {
		t.Errorf("clustered top disks span %d indices; expected adjacency", clustered)
	}
	if scattered <= clustered {
		t.Errorf("scattered span %d not larger than clustered %d", scattered, clustered)
	}
}

func TestKnobMultiblockMix(t *testing.T) {
	c := trace.Characterize(genWith(t, func(p *Profile) {
		p.MultiBlockFraction = 0.5
		p.MeanMultiBlocks = 8
	}))
	multi := float64(c.MultiBlockReads+c.MultiBlockWrites) / float64(c.Accesses)
	if multi < 0.45 || multi > 0.55 {
		t.Errorf("multiblock fraction %f, want ~0.5", multi)
	}
}

func TestDSSProfileShape(t *testing.T) {
	p := DSSProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Requests = 5000
	p.Duration = 900 * sim.Second
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(tr)
	multi := float64(c.MultiBlockReads+c.MultiBlockWrites) / float64(c.Accesses)
	if multi < 0.7 {
		t.Errorf("DSS multiblock fraction %f, want large", multi)
	}
	if c.WriteFraction() > 0.1 {
		t.Errorf("DSS write fraction %f, want small", c.WriteFraction())
	}
	mean := float64(c.BlocksTransferred) / float64(c.Accesses)
	if mean < 10 {
		t.Errorf("DSS mean request size %f blocks, want scans", mean)
	}
}
