package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// small returns a quick-to-generate profile for unit tests.
func small() Profile {
	p := Trace2Profile()
	p.Requests = 20000
	p.Duration = 600 * sim.Second
	return p
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{Trace1Profile(), Trace2Profile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mods := []func(*Profile){
		func(p *Profile) { p.NumDisks = 0 },
		func(p *Profile) { p.BlocksPerDisk = 0 },
		func(p *Profile) { p.Requests = 0 },
		func(p *Profile) { p.Duration = 0 },
		func(p *Profile) { p.WriteFraction = 1.5 },
		func(p *Profile) { p.MultiBlockFraction = -0.1 },
		func(p *Profile) { p.MaxMultiBlocks = 0 },
		func(p *Profile) { p.ExtentsPerDisk = 0 },
		func(p *Profile) { p.HotSetProb = 2 },
		func(p *Profile) { p.ZoneProb = -1 },
		func(p *Profile) { p.ZoneBlocksPerDisk = -1 },
		func(p *Profile) { p.TransactionMeanIOs = 0.5 },
		func(p *Profile) { p.LoadBurstFactor = 3; p.LoadBurstDuty = 0.5 }, // 1.5 >= 1
		func(p *Profile) { p.LoadBurstFactor = 2; p.LoadBurstDuty = 0 },
		func(p *Profile) { p.LoadBurstFactor = 2; p.LoadBurstDuty = 0.3; p.LoadBurstPeriod = 0 },
	}
	for i, mod := range mods {
		p := small()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("mod %d accepted", i)
		}
	}
}

func TestGeneratedTraceIsValid(t *testing.T) {
	tr, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 20000 {
		t.Fatalf("generated %d records", len(tr.Records))
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("same profile produced different traces")
	}
	p := small()
	p.Seed++
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAggregatesMatchKnobs(t *testing.T) {
	p := small()
	p.Requests = 60000
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	c := trace.Characterize(tr)
	if got := c.WriteFraction(); math.Abs(got-p.WriteFraction) > 0.02 {
		t.Errorf("write fraction %f, want ~%f", got, p.WriteFraction)
	}
	multi := float64(c.MultiBlockReads+c.MultiBlockWrites) / float64(c.Accesses)
	if math.Abs(multi-p.MultiBlockFraction) > 0.01 {
		t.Errorf("multiblock fraction %f, want ~%f", multi, p.MultiBlockFraction)
	}
	// Duration close to requested (arrival process is random).
	ratio := float64(c.Duration) / float64(p.Duration)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("duration ratio %f", ratio)
	}
	// High skew profile should show visible skew.
	if c.Skew() < 2 {
		t.Errorf("trace2-like skew %f, want > 2", c.Skew())
	}
}

func TestMeanMultiblockSize(t *testing.T) {
	p := small()
	p.Requests = 60000
	tr, _ := Generate(p)
	var count, blocks int64
	for _, r := range tr.Records {
		if r.Blocks > 1 {
			count++
			blocks += int64(r.Blocks)
		}
	}
	if count == 0 {
		t.Fatal("no multiblock requests generated")
	}
	mean := float64(blocks) / float64(count)
	// Truncation (max, disk end) pulls the mean below the knob a bit.
	if mean < p.MeanMultiBlocks*0.5 || mean > p.MeanMultiBlocks*1.3 {
		t.Errorf("mean multiblock size %f, knob %f", mean, p.MeanMultiBlocks)
	}
}

func TestScaledPreservesRate(t *testing.T) {
	p := Trace1Profile()
	q := p.Scaled(0.25)
	rp := float64(p.Requests) / float64(p.Duration)
	rq := float64(q.Requests) / float64(q.Duration)
	if math.Abs(rp-rq)/rp > 0.01 {
		t.Fatalf("rates differ: %g vs %g", rp, rq)
	}
	if q.LocalityWindow != p.LocalityWindow {
		t.Fatal("Scaled must not shrink the locality window")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) should panic")
		}
	}()
	p.Scaled(0)
}

func TestCenteredOrder(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := 1 + int(nRaw%64)
		center := int(cRaw) % n
		ord := centeredOrder(n, center)
		if len(ord) != n || ord[0] != center {
			return false
		}
		seen := make([]bool, n)
		for _, v := range ord {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Ranks near the front are physically near the center.
	ord := centeredOrder(64, 30)
	for r := 1; r <= 6; r++ {
		d := ord[r] - 30
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Fatalf("rank %d at distance %d from center", r, d)
		}
	}
}

func TestBurstModulationPreservesMeanRate(t *testing.T) {
	p := small()
	p.Requests = 50000
	p.LoadBurstFactor = 4
	p.LoadBurstDuty = 0.2
	p.LoadBurstPeriod = 10 * sim.Second
	p.Duration = 1500 * sim.Second
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tr.Duration()) / float64(p.Duration)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("modulated duration ratio %f; thinning broke the mean rate", ratio)
	}
}

func TestBurstModulationActuallyBursts(t *testing.T) {
	p := small()
	p.Requests = 50000
	p.LoadBurstFactor = 4
	p.LoadBurstDuty = 0.2
	p.LoadBurstPeriod = 10 * sim.Second
	tr, _ := Generate(p)
	// Count arrivals per second; the peak/mean ratio must reflect the
	// modulation (busy seconds run at ~4x the average rate).
	buckets := make(map[int64]int)
	for _, r := range tr.Records {
		buckets[r.At/sim.Second]++
	}
	var max, sum int
	for _, c := range buckets {
		sum += c
		if c > max {
			max = c
		}
	}
	mean := float64(sum) / float64(tr.Duration()/sim.Second+1)
	if float64(max) < 2.5*mean {
		t.Fatalf("peak/mean arrivals %f; modulation not visible", float64(max)/mean)
	}
}

func TestZonesAreCompact(t *testing.T) {
	p := small()
	p.Requests = 40000
	tr, _ := Generate(p)
	// For each disk, the most-touched 16-cylinder-wide band should hold a
	// healthy share of that disk's accesses (zone + hot traffic).
	bandBlocks := p.ZoneBlocksPerDisk
	counts := map[int64]int{}
	perDisk := map[int64]int{}
	for _, r := range tr.Records {
		d := r.LBA / p.BlocksPerDisk
		off := r.LBA % p.BlocksPerDisk
		counts[d*1e6+off/bandBlocks]++
		perDisk[d]++
	}
	// Hottest band of the hottest disk.
	var hotDisk int64
	for d, c := range perDisk {
		if c > perDisk[hotDisk] {
			hotDisk = d
		}
	}
	best := 0
	for k, c := range counts {
		if k/1e6 == hotDisk && c > best {
			best = c
		}
	}
	share := float64(best) / float64(perDisk[hotDisk])
	if share < 0.25 {
		t.Fatalf("hottest band holds only %.2f of its disk's accesses; zones not compact", share)
	}
}
