// Package workload synthesizes OLTP I/O traces with the characteristics
// the paper's proprietary IBM DB2 traces exhibit (section 3.1, Table 2):
// bursty transaction arrivals, a single-block-dominated request mix with
// occasional multiblock scans, skewed access distribution across disks and
// across regions within a disk, temporal locality with a tunable working
// set, and the read-before-update pattern that makes OLTP write hit ratios
// approach one.
//
// The real traces cannot be redistributed; every knob that drives an
// effect the paper attributes to them is explicit here, and the two
// built-in profiles (Trace1Profile, Trace2Profile) are calibrated to the
// published aggregates of Table 2.
package workload

import (
	"fmt"
	"math"
	"slices"

	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// Profile parameterizes the generator.
type Profile struct {
	Name          string
	NumDisks      int   // logical data disks
	BlocksPerDisk int64 // logical blocks per disk
	Requests      int   // I/O requests to generate
	Duration      sim.Time

	WriteFraction      float64 // fraction of requests that are writes
	MultiBlockFraction float64 // fraction of requests larger than one block
	MeanMultiBlocks    float64 // mean size of a multiblock request
	MaxMultiBlocks     int     // cap on request size

	// Skew in the cold (non-local) access distribution.
	DiskZipfTheta   float64 // Zipf exponent across disks (0 = uniform)
	ExtentsPerDisk  int     // contiguous regions per disk for spatial skew
	ExtentZipfTheta float64 // Zipf exponent across extents within a disk
	// DiskHotClustered places the hottest logical disks adjacently (a hot
	// tablespace spanning neighboring volumes), so in a multi-array
	// system the skew shows up *between* arrays — which striping inside
	// an array cannot balance away. When false, hot disks scatter
	// randomly, putting the skew within arrays where striping erases it.
	DiskHotClustered bool

	// Temporal locality is a three-level mixture, tried in order:
	//
	//   - HotSetProb: a tiny, intensely reused set of HotBlocks blocks
	//     (drawn from the zones, so it is spatially compact). It gives
	//     caches their first few percent of hits at small sizes.
	//   - ZoneProb: a compact warm zone of ZoneBlocksPerDisk contiguous
	//     blocks per disk, uniformly reused. Zones make the warm
	//     working set *spatially tight*: a non-striped disk's arm
	//     hovers over its zone (seek affinity), and the zone footprint
	//     (NumDisks * ZoneBlocksPerDisk) sets where the hit-ratio curve
	//     saturates as the cache grows.
	//   - WindowProb: a diffuse re-reference of one of the last
	//     LocalityWindow addresses — recency without spatial structure.
	//
	// Whatever remains draws cold from the skewed static distribution.
	HotSetProb        float64
	HotBlocks         int
	ZoneProb          float64
	ZoneBlocksPerDisk int64
	WindowProb        float64
	LocalityWindow    int

	// ReadBeforeWriteProb is the probability a write targets a recently
	// read block (DB2 transactions read a page before updating it).
	ReadBeforeWriteProb float64

	// Transaction burst structure.
	TransactionMeanIOs float64  // mean I/Os per transaction
	IntraBurstGap      sim.Time // mean gap between I/Os of one transaction

	// Load modulation: production OLTP traces alternate busy and quiet
	// phases, so queueing happens at several times the long-run average
	// rate. During busy phases (fraction LoadBurstDuty of time, mean
	// length LoadBurstPeriod) transactions arrive LoadBurstFactor times
	// faster than average; quiet phases slow down so the long-run rate —
	// and thus Table 2's request count over the trace duration — is
	// preserved. LoadBurstFactor <= 1 disables modulation.
	LoadBurstFactor float64
	LoadBurstDuty   float64
	LoadBurstPeriod sim.Time

	// Schedule, when non-empty, shapes transaction arrivals with a
	// piecewise-constant relative rate over time — a diurnal curve, a
	// nightly batch window, a maintenance spike. Phase k applies from
	// Schedule[k].Start until the next phase's start; the shape repeats
	// with period SchedulePeriod (0 = Duration, i.e. one cycle spans the
	// whole trace). Rates are relative weights: the generator normalizes
	// them so Requests over Duration — the long-run operating point — is
	// preserved, exactly as LoadBurstFactor does for busy/quiet bursts.
	// A rate of 0 silences the client for that phase (how scheduled batch
	// windows and backup spikes are expressed). Mutually exclusive with
	// LoadBurstFactor modulation.
	Schedule       []RatePhase
	SchedulePeriod sim.Time

	Seed uint64
}

// RatePhase is one segment of a piecewise-constant arrival-rate schedule.
type RatePhase struct {
	Start sim.Time // offset of this phase within the cycle
	Rate  float64  // relative arrival-rate weight (>= 0)
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.NumDisks <= 0:
		return fmt.Errorf("workload %q: NumDisks must be positive", p.Name)
	case p.BlocksPerDisk <= 0:
		return fmt.Errorf("workload %q: BlocksPerDisk must be positive", p.Name)
	case p.Requests <= 0:
		return fmt.Errorf("workload %q: Requests must be positive", p.Name)
	case p.Duration <= 0:
		return fmt.Errorf("workload %q: Duration must be positive", p.Name)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("workload %q: WriteFraction outside [0,1]", p.Name)
	case p.MultiBlockFraction < 0 || p.MultiBlockFraction > 1:
		return fmt.Errorf("workload %q: MultiBlockFraction outside [0,1]", p.Name)
	case p.MaxMultiBlocks < 1:
		return fmt.Errorf("workload %q: MaxMultiBlocks must be >= 1", p.Name)
	case p.ExtentsPerDisk <= 0:
		return fmt.Errorf("workload %q: ExtentsPerDisk must be positive", p.Name)
	case int64(p.ExtentsPerDisk) > p.BlocksPerDisk:
		return fmt.Errorf("workload %q: more extents than blocks", p.Name)
	case p.HotSetProb < 0 || p.HotSetProb > 1:
		return fmt.Errorf("workload %q: HotSetProb outside [0,1]", p.Name)
	case p.ZoneProb < 0 || p.ZoneProb > 1:
		return fmt.Errorf("workload %q: ZoneProb outside [0,1]", p.Name)
	case p.WindowProb < 0 || p.WindowProb > 1:
		return fmt.Errorf("workload %q: WindowProb outside [0,1]", p.Name)
	case p.ZoneProb > 0 && (p.ZoneBlocksPerDisk <= 0 || p.ZoneBlocksPerDisk > p.BlocksPerDisk):
		return fmt.Errorf("workload %q: ZoneBlocksPerDisk %d outside (0,%d]", p.Name, p.ZoneBlocksPerDisk, p.BlocksPerDisk)
	case p.TransactionMeanIOs < 1:
		return fmt.Errorf("workload %q: TransactionMeanIOs must be >= 1", p.Name)
	}
	if p.LoadBurstFactor > 1 {
		switch {
		case p.LoadBurstDuty <= 0 || p.LoadBurstDuty >= 1:
			return fmt.Errorf("workload %q: LoadBurstDuty must be in (0,1)", p.Name)
		case p.LoadBurstDuty*p.LoadBurstFactor >= 1:
			return fmt.Errorf("workload %q: duty*factor must stay below 1 so quiet phases keep a positive rate", p.Name)
		case p.LoadBurstPeriod <= 0:
			return fmt.Errorf("workload %q: LoadBurstPeriod must be positive", p.Name)
		}
	}
	if len(p.Schedule) > 0 {
		if p.LoadBurstFactor > 1 {
			return fmt.Errorf("workload %q: Schedule and LoadBurst modulation are mutually exclusive", p.Name)
		}
		if p.Schedule[0].Start != 0 {
			return fmt.Errorf("workload %q: Schedule must start at 0, got %v", p.Name, p.Schedule[0].Start)
		}
		anyPositive := false
		for i, ph := range p.Schedule {
			if ph.Rate < 0 {
				return fmt.Errorf("workload %q: Schedule phase %d has negative rate %g", p.Name, i, ph.Rate)
			}
			if ph.Rate > 0 {
				anyPositive = true
			}
			if i > 0 && ph.Start <= p.Schedule[i-1].Start {
				return fmt.Errorf("workload %q: Schedule phase starts must strictly increase (phase %d)", p.Name, i)
			}
		}
		if !anyPositive {
			return fmt.Errorf("workload %q: Schedule needs at least one phase with positive rate", p.Name)
		}
		period := p.SchedulePeriod
		if period == 0 {
			period = p.Duration
		}
		if last := p.Schedule[len(p.Schedule)-1].Start; last >= period {
			return fmt.Errorf("workload %q: Schedule phase start %v reaches past the cycle period %v", p.Name, last, period)
		}
	}
	return nil
}

// Scaled returns a copy generating f times the requests in f times the
// duration: the arrival rate — the load — is unchanged. Use it to shrink
// experiments while preserving their operating point.
func (p Profile) Scaled(f float64) Profile {
	if f <= 0 {
		panic("workload: non-positive scale")
	}
	q := p
	q.Requests = int(float64(p.Requests) * f)
	if q.Requests < 1 {
		q.Requests = 1
	}
	q.Duration = sim.Time(float64(p.Duration) * f)
	// The macro-scale rate schedule compresses with the duration, so the
	// shape (and each phase's share of the requests) is preserved; burst
	// micro-structure (IntraBurstGap, LoadBurstPeriod) stays absolute,
	// like the locality window below.
	if len(p.Schedule) > 0 {
		q.Schedule = make([]RatePhase, len(p.Schedule))
		for i, ph := range p.Schedule {
			q.Schedule[i] = RatePhase{Start: sim.Time(float64(ph.Start) * f), Rate: ph.Rate}
		}
		q.SchedulePeriod = sim.Time(float64(p.SchedulePeriod) * f)
	}
	// The locality window stays absolute: the stack-distance distribution
	// — and with it the hit-ratio-versus-cache-size curve — must not
	// depend on how much of the trace is generated.
	return q
}

// ring is a fixed-capacity ring of recent addresses.
type ring struct {
	buf []int64
	n   int // valid entries
	w   int // next write slot
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]int64, capacity)}
}

func (r *ring) push(v int64) {
	r.buf[r.w] = v
	r.w = (r.w + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring) sample(src *rng.Source) (int64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[src.Intn(r.n)], true
}

// Generate synthesizes a trace from the profile. Generation is
// deterministic for a given profile (including Seed).
func Generate(p Profile) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(p.Seed)
	arrivalSrc := src.Split()
	opSrc := src.Split()
	addrSrc := src.Split()
	sizeSrc := src.Split()

	diskZipf := rng.NewZipf(p.NumDisks, p.DiskZipfTheta)
	extentZipf := rng.NewZipf(p.ExtentsPerDisk, p.ExtentZipfTheta)
	var diskPerm []int
	if p.DiskHotClustered {
		diskPerm = centeredOrder(p.NumDisks, src.Intn(p.NumDisks))
	} else {
		diskPerm = src.Perm(p.NumDisks)
	}
	// Hot extents cluster physically around a per-disk center, so a busy
	// drive's arm hovers over a narrow band — the seek affinity the paper
	// credits non-striped layouts with (striping then spreads each
	// logical disk's hot band across all drives of the array).
	extentPerms := make([][]int, p.NumDisks)
	for d := range extentPerms {
		extentPerms[d] = centeredOrder(p.ExtentsPerDisk, src.Intn(p.ExtentsPerDisk))
	}
	extentSize := p.BlocksPerDisk / int64(p.ExtentsPerDisk)
	if extentSize < 1 {
		extentSize = 1
	}

	// coldDraw picks an address from the skewed static distribution.
	coldDraw := func() int64 {
		d := diskPerm[diskZipf.Sample(addrSrc)]
		e := extentPerms[d][extentZipf.Sample(addrSrc)]
		base := int64(e) * extentSize
		span := extentSize
		if rem := p.BlocksPerDisk - base; rem < span {
			span = rem
		}
		off := base + addrSrc.Int63n(span)
		return int64(d)*p.BlocksPerDisk + off
	}

	// Warm zones: one compact region per disk, centered on the disk's
	// hottest extent so zones and cold skew agree about which disks are
	// busy.
	zoneSize := p.ZoneBlocksPerDisk
	if zoneSize <= 0 {
		zoneSize = 1
	}
	zoneStart := make([]int64, p.NumDisks)
	for d := range zoneStart {
		center := int64(extentPerms[d][0])*extentSize + extentSize/2
		s := center - zoneSize/2
		if s < 0 {
			s = 0
		}
		if s+zoneSize > p.BlocksPerDisk {
			s = p.BlocksPerDisk - zoneSize
		}
		zoneStart[d] = s
	}
	zoneDraw := func() int64 {
		d := diskPerm[diskZipf.Sample(addrSrc)]
		return int64(d)*p.BlocksPerDisk + zoneStart[d] + addrSrc.Int63n(zoneSize)
	}

	// Hot set: a small group of blocks drawn from the zones, so it is
	// both intensely reused and spatially compact.
	hotN := p.HotBlocks
	if hotN < 1 {
		hotN = 1
	}
	hot := make([]int64, hotN)
	for i := range hot {
		if p.ZoneProb > 0 {
			hot[i] = zoneDraw()
		} else {
			hot[i] = coldDraw()
		}
	}

	window := newRing(max(p.LocalityWindow, 1))
	recentReads := newRing(4096)

	totalBlocks := int64(p.NumDisks) * p.BlocksPerDisk

	// Transaction arrival process: Poisson transactions, each a short
	// burst of I/Os.
	numTx := float64(p.Requests) / p.TransactionMeanIOs
	if numTx < 1 {
		numTx = 1
	}
	txGap := float64(p.Duration) / numTx

	t := &trace.Trace{Name: p.Name, NumDisks: p.NumDisks, BlocksPerDisk: p.BlocksPerDisk}
	t.Records = make([]trace.Record, 0, p.Requests)

	// Busy/quiet load modulation by Poisson thinning: candidate
	// transactions arrive at the busy-phase rate; quiet phases accept
	// only the fraction that keeps their rate right. Thinning keeps the
	// process exactly Poisson within each phase.
	modulated := p.LoadBurstFactor > 1
	var quietAccept float64
	var busyLen, quietLen float64
	var phaseBusy bool
	var phaseEnd float64
	candGap := txGap

	// A rate schedule uses the same thinning: candidates arrive at the
	// peak-phase rate and each is accepted with probability
	// rate(t)/peak, so within every phase the process is exactly Poisson
	// at that phase's rate, and the time-weighted mean rate keeps
	// Requests over Duration — the operating point — unchanged.
	scheduled := len(p.Schedule) > 0
	var schedPeak float64
	var rateAt func(float64) float64
	if scheduled {
		period := float64(p.SchedulePeriod)
		if period == 0 {
			period = float64(p.Duration)
		}
		var peak, weighted float64
		for k, ph := range p.Schedule {
			end := period
			if k+1 < len(p.Schedule) {
				end = float64(p.Schedule[k+1].Start)
			}
			weighted += ph.Rate * (end - float64(ph.Start))
			if ph.Rate > peak {
				peak = ph.Rate
			}
		}
		mean := weighted / period
		schedPeak = peak
		candGap = txGap * mean / peak
		sched := p.Schedule
		rateAt = func(t float64) float64 {
			tm := math.Mod(t, period)
			r := sched[len(sched)-1].Rate
			for k := 1; k < len(sched); k++ {
				if tm < float64(sched[k].Start) {
					r = sched[k-1].Rate
					break
				}
			}
			return r
		}
	}
	if modulated {
		f, d := p.LoadBurstFactor, p.LoadBurstDuty
		quietRate := (1 - d*f) / (1 - d) // relative to the average rate
		quietAccept = quietRate / f
		busyLen = float64(p.LoadBurstPeriod)
		quietLen = busyLen * (1 - d) / d
		candGap = txGap / f
		phaseBusy = arrivalSrc.Bool(d)
		if phaseBusy {
			phaseEnd = arrivalSrc.Exp(busyLen)
		} else {
			phaseEnd = arrivalSrc.Exp(quietLen)
		}
	}

	var now float64
	for len(t.Records) < p.Requests {
		now += arrivalSrc.Exp(candGap)
		if modulated {
			for now > phaseEnd {
				phaseBusy = !phaseBusy
				if phaseBusy {
					phaseEnd += arrivalSrc.Exp(busyLen)
				} else {
					phaseEnd += arrivalSrc.Exp(quietLen)
				}
			}
			if !phaseBusy && !arrivalSrc.Bool(quietAccept) {
				continue
			}
		}
		if scheduled && !arrivalSrc.Bool(rateAt(now)/schedPeak) {
			continue
		}
		burst := opSrc.Geometric(p.TransactionMeanIOs)
		bt := now
		for i := 0; i < burst && len(t.Records) < p.Requests; i++ {
			if i > 0 && p.IntraBurstGap > 0 {
				bt += arrivalSrc.Exp(float64(p.IntraBurstGap))
			}
			isWrite := opSrc.Bool(p.WriteFraction)

			var lba int64
			picked := false
			switch {
			case isWrite && opSrc.Bool(p.ReadBeforeWriteProb):
				lba, picked = recentReads.sample(addrSrc)
			case addrSrc.Bool(p.HotSetProb):
				lba = hot[addrSrc.Intn(hotN)]
				picked = true
			case addrSrc.Bool(p.ZoneProb):
				lba = zoneDraw()
				picked = true
			case addrSrc.Bool(p.WindowProb):
				lba, picked = window.sample(addrSrc)
			}
			if !picked {
				lba = coldDraw()
			}

			blocks := 1
			if sizeSrc.Bool(p.MultiBlockFraction) {
				blocks = 1 + sizeSrc.Geometric(p.MeanMultiBlocks-1)
				if blocks < 2 {
					blocks = 2
				}
				if blocks > p.MaxMultiBlocks {
					blocks = p.MaxMultiBlocks
				}
				// Multiblock requests are sequential scans; keep them on
				// one logical disk.
				diskEnd := (lba/p.BlocksPerDisk + 1) * p.BlocksPerDisk
				if rem := diskEnd - lba; int64(blocks) > rem {
					blocks = int(rem)
				}
			}
			if lba+int64(blocks) > totalBlocks {
				lba = totalBlocks - int64(blocks)
			}

			op := trace.Read
			if isWrite {
				op = trace.Write
			}
			t.Records = append(t.Records, trace.Record{
				At:     sim.Time(bt),
				Op:     op,
				LBA:    lba,
				Blocks: blocks,
			})
			window.push(lba)
			if !isWrite {
				recentReads.push(lba)
			}
		}
	}
	// Bursts are generated in arrival order but intra-burst jitter can
	// reorder across bursts; restore global time order cheaply.
	sortRecords(t.Records)
	return t, nil
}

// sortDisplacement is the lookback the nearly-sorted guard in
// sortRecords uses: a record arriving earlier than the record this many
// positions before it has to travel at least that far, and insertion
// sort degenerates toward O(n^2).
const sortDisplacement = 64

func sortRecords(rs []trace.Record) {
	// A single generator's stream is nearly sorted: only adjacent bursts
	// overlap, so insertion sort is O(n) in practice. Merged independent
	// client streams are not — a quiet client's burst can land arbitrarily
	// far inside a busy client's run — so past a displacement threshold
	// fall back to a stable O(n log n) sort. Both paths are stable sorts
	// on At, so which one runs never changes the output.
	for i := sortDisplacement; i < len(rs); i++ {
		if rs[i].At < rs[i-sortDisplacement].At {
			slices.SortStableFunc(rs, func(a, b trace.Record) int {
				switch {
				case a.At < b.At:
					return -1
				case a.At > b.At:
					return 1
				}
				return 0
			})
			return
		}
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].At < rs[j-1].At; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// centeredOrder ranks n positions by distance from center, alternating
// sides: center, center+1, center-1, center+2, ... (wrapping at the
// edges). Rank r is the r-th hottest extent's physical index.
func centeredOrder(n, center int) []int {
	out := make([]int, 0, n)
	out = append(out, center)
	for step := 1; len(out) < n; step++ {
		hi := center + step
		if hi >= n {
			hi -= n
		}
		out = append(out, hi)
		if len(out) == n {
			break
		}
		lo := center - step
		if lo < 0 {
			lo += n
		}
		if lo != hi {
			out = append(out, lo)
		}
	}
	return out
}
