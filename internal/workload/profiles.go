package workload

import (
	"raidsim/internal/geom"
	"raidsim/internal/sim"
)

// Trace1Profile resembles the paper's Trace 1: a very large DB2
// installation — 130 data disks, 3 hours of activity, 3.36M requests
// (~306 I/O/s), 10% writes, 98% single-block requests, strong temporal
// locality over a compact warm working set (transactions read pages
// before updating them, so the cached write hit ratio approaches one),
// and moderate disk-access skew whose hot volumes sit adjacently.
//
// Calibration targets (Table 2, Figures 5, 6 and 11): write fraction
// 0.10, multiblock fraction ~2% averaging ~16 blocks, visible per-disk
// skew, read hit ratio rising from under 10% at 8 MB/array to ~54% at
// 256 MB, and write hit ratio near one.
func Trace1Profile() Profile {
	spec := geom.Default()
	return Profile{
		Name:          "trace1",
		NumDisks:      130,
		BlocksPerDisk: spec.BlocksPerDisk(),
		Requests:      3362505,
		Duration:      (3*3600 + 3*60) * sim.Second,

		WriteFraction:      0.10,
		MultiBlockFraction: 0.021,
		MeanMultiBlocks:    16.4,
		MaxMultiBlocks:     64,

		DiskZipfTheta:    0.45,
		ExtentsPerDisk:   64,
		ExtentZipfTheta:  0.25,
		DiskHotClustered: true,

		HotSetProb:        0.05,
		HotBlocks:         2000,
		ZoneProb:          0.32,
		ZoneBlocksPerDisk: 1000,
		WindowProb:        0.25,
		LocalityWindow:    600000,

		ReadBeforeWriteProb: 0.92,
		TransactionMeanIOs:  8,
		IntraBurstGap:       200 * sim.Microsecond,

		LoadBurstFactor: 3.5,
		LoadBurstDuty:   0.25,
		LoadBurstPeriod: 15 * sim.Second,

		Seed: 0x1b2e16,
	}
}

// Trace2Profile resembles the paper's Trace 2: a small installation — 10
// data disks, 100 minutes, ~70K requests, 28% writes, 95% single-block
// requests, much stronger disk-access skew, weaker locality with larger
// working sets (an ad-hoc query mix), and a lower read-before-update
// fraction (write hit ratio 20-60%).
func Trace2Profile() Profile {
	spec := geom.Default()
	return Profile{
		Name:          "trace2",
		NumDisks:      10,
		BlocksPerDisk: spec.BlocksPerDisk(),
		Requests:      69539,
		Duration:      100 * 60 * sim.Second,

		WriteFraction:      0.28,
		MultiBlockFraction: 0.059,
		MeanMultiBlocks:    18.7,
		MaxMultiBlocks:     64,

		DiskZipfTheta:    1.60,
		ExtentsPerDisk:   64,
		ExtentZipfTheta:  0.30,
		DiskHotClustered: false,

		HotSetProb:        0.01,
		HotBlocks:         300,
		ZoneProb:          0.45,
		ZoneBlocksPerDisk: 7200,
		WindowProb:        0.05,
		LocalityWindow:    150000,

		ReadBeforeWriteProb: 0.30,
		TransactionMeanIOs:  6,
		IntraBurstGap:       200 * sim.Microsecond,

		LoadBurstFactor: 2.0,
		LoadBurstDuty:   0.35,
		LoadBurstPeriod: 20 * sim.Second,

		Seed: 0x2c3f27,
	}
}

// DSSProfile resembles a decision-support/scientific mix — the "large
// request" counterpoint the related work (Chen et al.) compares RAID
// levels on: mostly long sequential scans, few writes, mild skew. It is
// used by the ext-taxonomy experiment to show RAID3/RAID0's bandwidth
// advantage on large transfers reversing their OLTP disadvantage.
func DSSProfile() Profile {
	spec := geom.Default()
	return Profile{
		Name:          "dss",
		NumDisks:      10,
		BlocksPerDisk: spec.BlocksPerDisk(),
		Requests:      20000,
		Duration:      3600 * sim.Second,

		WriteFraction:      0.05,
		MultiBlockFraction: 0.85,
		MeanMultiBlocks:    48,
		MaxMultiBlocks:     64,

		DiskZipfTheta:    0.30,
		ExtentsPerDisk:   32,
		ExtentZipfTheta:  0.30,
		DiskHotClustered: false,

		HotSetProb:        0.01,
		HotBlocks:         200,
		ZoneProb:          0.10,
		ZoneBlocksPerDisk: 8000,
		WindowProb:        0.05,
		LocalityWindow:    100000,

		ReadBeforeWriteProb: 0.10,
		TransactionMeanIOs:  3,
		IntraBurstGap:       5 * sim.Millisecond,

		Seed: 0x3d5a38,
	}
}
