package workload

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// TestSpecFromProfileBitIdentical is the tentpole's safety contract: a
// built-in profile expressed as a single-client spec must generate the
// bit-identical record stream the profile path generates.
func TestSpecFromProfileBitIdentical(t *testing.T) {
	for _, mk := range []func() Profile{Trace2Profile, DSSProfile} {
		p := mk()
		p.Requests = 20000
		want, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		sp := SpecFromProfile(p)
		got, err := sp.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("%s: spec path generated %d records, profile path %d", p.Name, len(got.Records), len(want.Records))
		}
		for i := range want.Records {
			if got.Records[i] != want.Records[i] {
				t.Fatalf("%s: record %d diverges: spec %+v profile %+v", p.Name, i, got.Records[i], want.Records[i])
			}
		}
		if len(got.Classes) != 1 || got.Classes[0].SLO != trace.SLOAuto {
			t.Fatalf("%s: single-client spec classes = %+v, want one auto class", p.Name, got.Classes)
		}
	}
}

// TestSpecPerClassProperties checks each client's slice of the merged
// trace honors its own knobs: exact request count, write fraction and
// multiblock mix within tolerance.
func TestSpecPerClassProperties(t *testing.T) {
	sp := DiurnalSpec()
	tr, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		n, writes, multi int
		blocks           int64
	}
	per := make([]agg, len(sp.Clients))
	var prev sim.Time
	for _, r := range tr.Records {
		if r.At < prev {
			t.Fatalf("merged trace goes back in time at %d < %d", r.At, prev)
		}
		prev = r.At
		a := &per[r.Class]
		a.n++
		if r.Op == trace.Write {
			a.writes++
		}
		if r.Blocks > 1 {
			a.multi++
		}
		a.blocks += int64(r.Blocks)
	}
	for i, c := range sp.Clients {
		a := per[i]
		wantN := int(math.Round(float64(c.Requests) / sp.TimeScale))
		if a.n != wantN {
			t.Errorf("client %s: %d records, want %d", c.Name, a.n, wantN)
		}
		if wf := float64(a.writes) / float64(a.n); math.Abs(wf-c.WriteFraction) > 0.02 {
			t.Errorf("client %s: write fraction %.3f, want %.3f", c.Name, wf, c.WriteFraction)
		}
		if mf := float64(a.multi) / float64(a.n); math.Abs(mf-c.MultiBlockFraction) > 0.03 {
			t.Errorf("client %s: multiblock fraction %.3f, want %.3f", c.Name, mf, c.MultiBlockFraction)
		}
	}
	if tr.Classes[0].SLO != trace.SLOGold || tr.Classes[1].SLO != trace.SLOBatch {
		t.Errorf("diurnal class table wrong: %+v", tr.Classes)
	}
}

// TestTimeScaleInvariance: compressing a spec 12x must preserve every
// client's operating point — arrival rate, mix — and its share of each
// schedule phase (checked via load in the first vs second half-cycle).
func TestTimeScaleInvariance(t *testing.T) {
	base := Spec{
		Name:      "inv",
		Disks:     8,
		DurationS: 7200,
		Seed:      7,
		Clients: []ClientSpec{
			{
				Name: "day", Requests: 60000, WriteFraction: 0.3,
				Arrival: ArrivalSpec{Process: "diurnal", Phases: []PhaseSpec{
					{StartS: 0, Rate: 0.2}, {StartS: 3600, Rate: 1.0},
				}},
			},
			{Name: "flat", Requests: 24000, WriteFraction: 0.1, MultiBlockFraction: 0.5, MeanMultiBlocks: 12},
		},
	}
	type point struct {
		rate, wf, firstHalf float64
	}
	measure := func(ts float64) []point {
		sp := base
		sp.TimeScale = ts
		tr, err := sp.Generate()
		if err != nil {
			t.Fatal(err)
		}
		dur := float64(secs(sp.DurationS/ts)) / float64(sim.Second)
		half := secs(sp.DurationS / ts / 2)
		out := make([]point, len(sp.Clients))
		counts := make([]int, len(sp.Clients))
		writes := make([]int, len(sp.Clients))
		first := make([]int, len(sp.Clients))
		for _, r := range tr.Records {
			counts[r.Class]++
			if r.Op == trace.Write {
				writes[r.Class]++
			}
			if r.At < half {
				first[r.Class]++
			}
		}
		for i := range out {
			out[i] = point{
				rate:      float64(counts[i]) / dur,
				wf:        float64(writes[i]) / float64(counts[i]),
				firstHalf: float64(first[i]) / float64(counts[i]),
			}
		}
		return out
	}
	a, b := measure(1), measure(12)
	for i := range a {
		name := base.Clients[i].Name
		if rel := math.Abs(a[i].rate-b[i].rate) / a[i].rate; rel > 0.01 {
			t.Errorf("client %s: rate %.3f/s at ts=1 vs %.3f/s at ts=12 (rel %.3f)", name, a[i].rate, b[i].rate, rel)
		}
		if math.Abs(a[i].wf-b[i].wf) > 0.02 {
			t.Errorf("client %s: write fraction %.3f vs %.3f across time scales", name, a[i].wf, b[i].wf)
		}
		if math.Abs(a[i].firstHalf-b[i].firstHalf) > 0.05 {
			t.Errorf("client %s: first-half load share %.3f vs %.3f across time scales", name, a[i].firstHalf, b[i].firstHalf)
		}
	}
	// The diurnal client must actually be time-varying: the quiet first
	// half carries far less than half the load.
	if a[0].firstHalf > 0.35 {
		t.Errorf("diurnal client first-half share %.3f, want well under 0.5", a[0].firstHalf)
	}
}

// TestClientSeedIsolation: adding a client must not perturb the streams
// of the existing ones.
func TestClientSeedIsolation(t *testing.T) {
	sp := Spec{
		Name: "iso", Disks: 4, DurationS: 600, Seed: 3,
		Clients: []ClientSpec{{Name: "a", Requests: 3000, WriteFraction: 0.2}},
	}
	one, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp.Clients = append(sp.Clients, ClientSpec{Name: "b", Requests: 3000, WriteFraction: 0.9})
	two, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var onlyA []trace.Record
	for _, r := range two.Records {
		if r.Class == 0 {
			onlyA = append(onlyA, r)
		}
	}
	if len(onlyA) != len(one.Records) {
		t.Fatalf("client a generated %d records alone, %d alongside b", len(one.Records), len(onlyA))
	}
	for i := range onlyA {
		if onlyA[i] != one.Records[i] {
			t.Fatalf("client a's record %d changed when client b was added: %+v vs %+v", i, onlyA[i], one.Records[i])
		}
	}
}

func TestSpecValidateErrors(t *testing.T) {
	ok := func() Spec {
		return Spec{Name: "v", Disks: 2, DurationS: 10,
			Clients: []ClientSpec{{Name: "c", Requests: 10}}}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		frag string
	}{
		{"no clients", func(s *Spec) { s.Clients = nil }, "at least one client"},
		{"no disks", func(s *Spec) { s.Disks = 0 }, "disks"},
		{"dup names", func(s *Spec) { s.Clients = append(s.Clients, s.Clients[0]) }, "duplicate client name"},
		{"bad slo", func(s *Spec) { s.Clients[0].SLOClass = "platinum" }, "unknown slo"},
		{"bad process", func(s *Spec) { s.Clients[0].Arrival.Process = "fractal" }, "unknown arrival process"},
		{"diurnal no phases", func(s *Spec) { s.Clients[0].Arrival.Process = "diurnal" }, "needs phases"},
		{"fractional timescale", func(s *Spec) { s.TimeScale = 0.5 }, "time_scale"},
	}
	for _, c := range cases {
		s := ok()
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.frag)
		}
	}
	if err := ok().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestResolveAndLoadSpec(t *testing.T) {
	if _, err := Resolve("trace2"); err != nil {
		t.Fatalf("builtin trace2: %v", err)
	}
	_, err := Resolve("nope")
	if err == nil || !strings.Contains(err.Error(), "trace1") || !strings.Contains(err.Error(), ".json") {
		t.Fatalf("unknown-name error should list builtins and mention spec paths, got %v", err)
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "w.json")
	if err := os.WriteFile(good, []byte(`{
		"spec": "raidsim-workload/1", "name": "file", "disks": 2, "duration_s": 5,
		"clients": [{"name": "c", "requests": 50}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Resolve(good)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "file" || len(sp.Clients) != 1 {
		t.Fatalf("loaded spec %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}

	noheader := filepath.Join(dir, "nh.json")
	os.WriteFile(noheader, []byte(`{"name": "x", "disks": 1, "duration_s": 1, "clients": []}`), 0o644)
	if _, err := LoadSpec(noheader); err == nil || !strings.Contains(err.Error(), "missing version header") {
		t.Fatalf("headerless spec: %v", err)
	}

	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"spec": "raidsim-workload/1", "name": "x", "disks": 1, "duration_s": 1,
		"clients": [{"name": "c", "requests": 1, "wirte_fraction": 0.5}]}`), 0o644)
	if _, err := LoadSpec(typo); err == nil || !strings.Contains(err.Error(), `did you mean "write_fraction"`) {
		t.Fatalf("typo spec: %v", err)
	}
}

// TestSortRecordsFallback exercises the displaced-merge path: records far
// out of order (as merged multi-stream tails are) must still come out
// stably sorted.
func TestSortRecordsFallback(t *testing.T) {
	n := 10000
	rs := make([]trace.Record, n)
	for i := range rs {
		// Two interleaved ramps: displacement ~ n/2, far past the
		// insertion-sort guard.
		rs[i] = trace.Record{At: sim.Time((i%2)*1000000 + i), LBA: int64(i)}
	}
	sortRecords(rs)
	for i := 1; i < n; i++ {
		if rs[i].At < rs[i-1].At {
			t.Fatalf("unsorted at %d: %d < %d", i, rs[i].At, rs[i-1].At)
		}
		if rs[i].At == rs[i-1].At && rs[i].LBA < rs[i-1].LBA {
			t.Fatalf("unstable at %d", i)
		}
	}
}

// TestDiurnalBoundaryScaling is the deterministic regression for the
// phase-boundary rounding bug: compiling a 24-hour diurnal cycle at a
// non-divisor time scale must place every scaled boundary at the same
// fraction of the scaled period it held unscaled. Rounding boundaries
// independently of the period (the old secs(StartS/ts)) puts the 19h
// boundary at 9771428571429 ns while 19/24 of the rounded period is
// 9771428571428 ns — a nanosecond of drift that shifts arrivals across
// the phase edge.
func TestDiurnalBoundaryScaling(t *testing.T) {
	sp := Spec{
		Name: "bound", Disks: 4, DurationS: 86400, TimeScale: 7, Seed: 1,
		Clients: []ClientSpec{{
			Name: "d", Requests: 86400,
			Arrival: ArrivalSpec{Process: "diurnal", PeriodS: 86400, Phases: []PhaseSpec{
				{StartS: 0, Rate: 0.2}, {StartS: 25200, Rate: 1.0},
				{StartS: 68400, Rate: 0.5}, {StartS: 79200, Rate: 0.1},
			}},
		}},
	}
	sp.fill()
	p, err := sp.clientProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	period := p.SchedulePeriod
	if period != secs(86400.0/7) {
		t.Fatalf("scaled period %d", period)
	}
	for k, ph := range sp.Clients[0].Arrival.Phases {
		want := sim.Time(math.Round(float64(period) * ph.StartS / 86400))
		if p.Schedule[k].Start != want {
			t.Errorf("phase %d (start %gs): scaled boundary %d ns, want %d (= %g/86400 of the %d ns period)",
				k, ph.StartS, p.Schedule[k].Start, want, ph.StartS, period)
		}
	}
	// Pin the drifting value explicitly so the case survives refactors of
	// the want-computation above.
	if got := p.Schedule[2].Start; got != 9771428571428 {
		t.Errorf("19h boundary at ts=7 = %d ns, want 9771428571428", got)
	}
}

// TestTimeScaleAwkwardInvariance compresses the same 24-hour diurnal
// shape at the awkward (non-divisor) scales 7 and 96 and checks each
// phase carries the same share of the load: the shape, not just the
// total, must survive compression.
func TestTimeScaleAwkwardInvariance(t *testing.T) {
	base := Spec{
		Name: "awk", Disks: 8, DurationS: 86400, Seed: 11,
		Clients: []ClientSpec{{
			Name: "d", Requests: 96000, WriteFraction: 0.3,
			Arrival: ArrivalSpec{Process: "diurnal", PeriodS: 86400, Phases: []PhaseSpec{
				{StartS: 0, Rate: 0.1}, {StartS: 25200, Rate: 1.0},
				{StartS: 68400, Rate: 0.5}, {StartS: 79200, Rate: 0.05},
			}},
		}},
	}
	bounds := []float64{0, 25200, 68400, 79200}
	shares := func(ts float64) ([]float64, int) {
		sp := base
		sp.TimeScale = ts
		tr, err := sp.Generate()
		if err != nil {
			t.Fatal(err)
		}
		dur := float64(secs(sp.DurationS / ts))
		counts := make([]int, len(bounds))
		for _, r := range tr.Records {
			// Map the scaled arrival back to its unscaled second and bin
			// it by the unscaled phase edges.
			sec := float64(r.At) / dur * 86400
			k := 0
			for j := len(bounds) - 1; j > 0; j-- {
				if sec >= bounds[j] {
					k = j
					break
				}
			}
			counts[k]++
		}
		out := make([]float64, len(bounds))
		for k, c := range counts {
			out[k] = float64(c) / float64(len(tr.Records))
		}
		return out, len(tr.Records)
	}
	a, na := shares(7)
	b, nb := shares(96)
	if want := int(math.Round(96000.0 / 7)); na != want {
		t.Errorf("ts=7 generated %d records, want %d", na, want)
	}
	if want := 96000 / 96; nb != want {
		t.Errorf("ts=96 generated %d records, want %d", nb, want)
	}
	for k := range bounds {
		if math.Abs(a[k]-b[k]) > 0.05 {
			t.Errorf("phase %d load share %.3f at ts=7 vs %.3f at ts=96", k, a[k], b[k])
		}
	}
	// The shape must actually be diurnal: the busy phase dominates.
	if a[1] < 0.4 {
		t.Errorf("busy-phase share %.3f, want the 1.0-rate phase to dominate", a[1])
	}
}
