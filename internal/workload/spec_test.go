package workload

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

// TestSpecFromProfileBitIdentical is the tentpole's safety contract: a
// built-in profile expressed as a single-client spec must generate the
// bit-identical record stream the profile path generates.
func TestSpecFromProfileBitIdentical(t *testing.T) {
	for _, mk := range []func() Profile{Trace2Profile, DSSProfile} {
		p := mk()
		p.Requests = 20000
		want, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		sp := SpecFromProfile(p)
		got, err := sp.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("%s: spec path generated %d records, profile path %d", p.Name, len(got.Records), len(want.Records))
		}
		for i := range want.Records {
			if got.Records[i] != want.Records[i] {
				t.Fatalf("%s: record %d diverges: spec %+v profile %+v", p.Name, i, got.Records[i], want.Records[i])
			}
		}
		if len(got.Classes) != 1 || got.Classes[0].SLO != trace.SLOAuto {
			t.Fatalf("%s: single-client spec classes = %+v, want one auto class", p.Name, got.Classes)
		}
	}
}

// TestSpecPerClassProperties checks each client's slice of the merged
// trace honors its own knobs: exact request count, write fraction and
// multiblock mix within tolerance.
func TestSpecPerClassProperties(t *testing.T) {
	sp := DiurnalSpec()
	tr, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		n, writes, multi int
		blocks           int64
	}
	per := make([]agg, len(sp.Clients))
	var prev sim.Time
	for _, r := range tr.Records {
		if r.At < prev {
			t.Fatalf("merged trace goes back in time at %d < %d", r.At, prev)
		}
		prev = r.At
		a := &per[r.Class]
		a.n++
		if r.Op == trace.Write {
			a.writes++
		}
		if r.Blocks > 1 {
			a.multi++
		}
		a.blocks += int64(r.Blocks)
	}
	for i, c := range sp.Clients {
		a := per[i]
		wantN := int(math.Round(float64(c.Requests) / sp.TimeScale))
		if a.n != wantN {
			t.Errorf("client %s: %d records, want %d", c.Name, a.n, wantN)
		}
		if wf := float64(a.writes) / float64(a.n); math.Abs(wf-c.WriteFraction) > 0.02 {
			t.Errorf("client %s: write fraction %.3f, want %.3f", c.Name, wf, c.WriteFraction)
		}
		if mf := float64(a.multi) / float64(a.n); math.Abs(mf-c.MultiBlockFraction) > 0.03 {
			t.Errorf("client %s: multiblock fraction %.3f, want %.3f", c.Name, mf, c.MultiBlockFraction)
		}
	}
	if tr.Classes[0].SLO != trace.SLOGold || tr.Classes[1].SLO != trace.SLOBatch {
		t.Errorf("diurnal class table wrong: %+v", tr.Classes)
	}
}

// TestTimeScaleInvariance: compressing a spec 12x must preserve every
// client's operating point — arrival rate, mix — and its share of each
// schedule phase (checked via load in the first vs second half-cycle).
func TestTimeScaleInvariance(t *testing.T) {
	base := Spec{
		Name:      "inv",
		Disks:     8,
		DurationS: 7200,
		Seed:      7,
		Clients: []ClientSpec{
			{
				Name: "day", Requests: 60000, WriteFraction: 0.3,
				Arrival: ArrivalSpec{Process: "diurnal", Phases: []PhaseSpec{
					{StartS: 0, Rate: 0.2}, {StartS: 3600, Rate: 1.0},
				}},
			},
			{Name: "flat", Requests: 24000, WriteFraction: 0.1, MultiBlockFraction: 0.5, MeanMultiBlocks: 12},
		},
	}
	type point struct {
		rate, wf, firstHalf float64
	}
	measure := func(ts float64) []point {
		sp := base
		sp.TimeScale = ts
		tr, err := sp.Generate()
		if err != nil {
			t.Fatal(err)
		}
		dur := float64(secs(sp.DurationS/ts)) / float64(sim.Second)
		half := secs(sp.DurationS / ts / 2)
		out := make([]point, len(sp.Clients))
		counts := make([]int, len(sp.Clients))
		writes := make([]int, len(sp.Clients))
		first := make([]int, len(sp.Clients))
		for _, r := range tr.Records {
			counts[r.Class]++
			if r.Op == trace.Write {
				writes[r.Class]++
			}
			if r.At < half {
				first[r.Class]++
			}
		}
		for i := range out {
			out[i] = point{
				rate:      float64(counts[i]) / dur,
				wf:        float64(writes[i]) / float64(counts[i]),
				firstHalf: float64(first[i]) / float64(counts[i]),
			}
		}
		return out
	}
	a, b := measure(1), measure(12)
	for i := range a {
		name := base.Clients[i].Name
		if rel := math.Abs(a[i].rate-b[i].rate) / a[i].rate; rel > 0.01 {
			t.Errorf("client %s: rate %.3f/s at ts=1 vs %.3f/s at ts=12 (rel %.3f)", name, a[i].rate, b[i].rate, rel)
		}
		if math.Abs(a[i].wf-b[i].wf) > 0.02 {
			t.Errorf("client %s: write fraction %.3f vs %.3f across time scales", name, a[i].wf, b[i].wf)
		}
		if math.Abs(a[i].firstHalf-b[i].firstHalf) > 0.05 {
			t.Errorf("client %s: first-half load share %.3f vs %.3f across time scales", name, a[i].firstHalf, b[i].firstHalf)
		}
	}
	// The diurnal client must actually be time-varying: the quiet first
	// half carries far less than half the load.
	if a[0].firstHalf > 0.35 {
		t.Errorf("diurnal client first-half share %.3f, want well under 0.5", a[0].firstHalf)
	}
}

// TestClientSeedIsolation: adding a client must not perturb the streams
// of the existing ones.
func TestClientSeedIsolation(t *testing.T) {
	sp := Spec{
		Name: "iso", Disks: 4, DurationS: 600, Seed: 3,
		Clients: []ClientSpec{{Name: "a", Requests: 3000, WriteFraction: 0.2}},
	}
	one, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp.Clients = append(sp.Clients, ClientSpec{Name: "b", Requests: 3000, WriteFraction: 0.9})
	two, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var onlyA []trace.Record
	for _, r := range two.Records {
		if r.Class == 0 {
			onlyA = append(onlyA, r)
		}
	}
	if len(onlyA) != len(one.Records) {
		t.Fatalf("client a generated %d records alone, %d alongside b", len(one.Records), len(onlyA))
	}
	for i := range onlyA {
		if onlyA[i] != one.Records[i] {
			t.Fatalf("client a's record %d changed when client b was added: %+v vs %+v", i, onlyA[i], one.Records[i])
		}
	}
}

func TestSpecValidateErrors(t *testing.T) {
	ok := func() Spec {
		return Spec{Name: "v", Disks: 2, DurationS: 10,
			Clients: []ClientSpec{{Name: "c", Requests: 10}}}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		frag string
	}{
		{"no clients", func(s *Spec) { s.Clients = nil }, "at least one client"},
		{"no disks", func(s *Spec) { s.Disks = 0 }, "disks"},
		{"dup names", func(s *Spec) { s.Clients = append(s.Clients, s.Clients[0]) }, "duplicate client name"},
		{"bad slo", func(s *Spec) { s.Clients[0].SLOClass = "platinum" }, "unknown slo"},
		{"bad process", func(s *Spec) { s.Clients[0].Arrival.Process = "fractal" }, "unknown arrival process"},
		{"diurnal no phases", func(s *Spec) { s.Clients[0].Arrival.Process = "diurnal" }, "needs phases"},
		{"fractional timescale", func(s *Spec) { s.TimeScale = 0.5 }, "time_scale"},
	}
	for _, c := range cases {
		s := ok()
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.frag)
		}
	}
	if err := ok().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestResolveAndLoadSpec(t *testing.T) {
	if _, err := Resolve("trace2"); err != nil {
		t.Fatalf("builtin trace2: %v", err)
	}
	_, err := Resolve("nope")
	if err == nil || !strings.Contains(err.Error(), "trace1") || !strings.Contains(err.Error(), ".json") {
		t.Fatalf("unknown-name error should list builtins and mention spec paths, got %v", err)
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "w.json")
	if err := os.WriteFile(good, []byte(`{
		"spec": "raidsim-workload/1", "name": "file", "disks": 2, "duration_s": 5,
		"clients": [{"name": "c", "requests": 50}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Resolve(good)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "file" || len(sp.Clients) != 1 {
		t.Fatalf("loaded spec %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}

	noheader := filepath.Join(dir, "nh.json")
	os.WriteFile(noheader, []byte(`{"name": "x", "disks": 1, "duration_s": 1, "clients": []}`), 0o644)
	if _, err := LoadSpec(noheader); err == nil || !strings.Contains(err.Error(), "missing version header") {
		t.Fatalf("headerless spec: %v", err)
	}

	typo := filepath.Join(dir, "typo.json")
	os.WriteFile(typo, []byte(`{"spec": "raidsim-workload/1", "name": "x", "disks": 1, "duration_s": 1,
		"clients": [{"name": "c", "requests": 1, "wirte_fraction": 0.5}]}`), 0o644)
	if _, err := LoadSpec(typo); err == nil || !strings.Contains(err.Error(), `did you mean "write_fraction"`) {
		t.Fatalf("typo spec: %v", err)
	}
}

// TestSortRecordsFallback exercises the displaced-merge path: records far
// out of order (as merged multi-stream tails are) must still come out
// stably sorted.
func TestSortRecordsFallback(t *testing.T) {
	n := 10000
	rs := make([]trace.Record, n)
	for i := range rs {
		// Two interleaved ramps: displacement ~ n/2, far past the
		// insertion-sort guard.
		rs[i] = trace.Record{At: sim.Time((i%2)*1000000 + i), LBA: int64(i)}
	}
	sortRecords(rs)
	for i := 1; i < n; i++ {
		if rs[i].At < rs[i-1].At {
			t.Fatalf("unsorted at %d: %d < %d", i, rs[i].At, rs[i-1].At)
		}
		if rs[i].At == rs[i-1].At && rs[i].LBA < rs[i-1].LBA {
			t.Fatalf("unstable at %d", i)
		}
	}
}
