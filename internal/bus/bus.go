// Package bus models the path between host and disks: one channel per
// array (a FIFO server transferring at a fixed rate) and a pool of track
// buffers in the controller that decouples channel and disk timing (five
// buffers per disk, per the paper).
package bus

import (
	"fmt"

	"raidsim/internal/sim"
	"raidsim/internal/stats"
)

// Channel is a FIFO transfer server. All host<->controller block movement
// for an array shares it.
type Channel struct {
	eng  *sim.Engine
	rate float64 // bytes per nanosecond
	busy bool
	q    []transfer

	Util     stats.Utilization
	Waits    stats.Summary // queueing delay in ms
	NumXfers int64
	NumBytes int64
}

type transfer struct {
	bytes    int64
	enqueued sim.Time
	onDone   func()
}

// NewChannel returns a channel transferring at mbps megabytes per second.
func NewChannel(eng *sim.Engine, mbps float64) (*Channel, error) {
	if mbps <= 0 {
		return nil, fmt.Errorf("bus: channel rate must be positive, got %g", mbps)
	}
	return &Channel{eng: eng, rate: mbps * 1e6 / float64(sim.Second)}, nil
}

// TransferTime returns the busy time for moving n bytes.
func (c *Channel) TransferTime(bytes int64) sim.Time {
	return sim.Time(float64(bytes) / c.rate)
}

// Transfer queues a transfer of the given size; onDone fires when the
// transfer completes. Transfers are served FIFO.
func (c *Channel) Transfer(bytes int64, onDone func()) {
	if bytes <= 0 {
		panic("bus: transfer of non-positive size")
	}
	c.q = append(c.q, transfer{bytes: bytes, enqueued: c.eng.Now(), onDone: onDone})
	c.kick()
}

func (c *Channel) kick() {
	if c.busy || len(c.q) == 0 {
		return
	}
	t := c.q[0]
	copy(c.q, c.q[1:])
	c.q = c.q[:len(c.q)-1]
	c.busy = true
	now := c.eng.Now()
	c.Util.SetBusy(now)
	c.Waits.Add(sim.Millis(now - t.enqueued))
	c.NumXfers++
	c.NumBytes += t.bytes
	cc := c.eng.AfterCall(c.TransferTime(t.bytes), xferDoneFire)
	cc.A, cc.B = c, t.onDone
}

// xferDoneFire completes a channel transfer: A = channel, B = the
// transfer's onDone func (possibly nil).
func xferDoneFire(e *sim.Engine, cc *sim.Call) {
	c := cc.A.(*Channel)
	c.busy = false
	c.Util.SetIdle(e.Now())
	if done := cc.B.(func()); done != nil {
		done()
	}
	c.kick()
}

// QueueLen returns the number of queued (not in-flight) transfers.
func (c *Channel) QueueLen() int { return len(c.q) }

// BufferPool is the controller's track-buffer pool. A request path
// acquires all the buffers it will need up front (data, old data, parity)
// and releases them when done; acquiring atomically avoids hold-and-wait
// deadlock between concurrent parity updates.
type BufferPool struct {
	eng  *sim.Engine
	free int
	cap  int
	q    []bufWaiter

	PeakWaiting int
}

type bufWaiter struct {
	n  int
	fn func()
}

// NewBufferPool returns a pool with n buffers.
func NewBufferPool(eng *sim.Engine, n int) (*BufferPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bus: buffer pool must have at least one buffer, got %d", n)
	}
	return &BufferPool{eng: eng, free: n, cap: n}, nil
}

// Free reports available buffers.
func (p *BufferPool) Free() int { return p.free }

// Cap reports the pool size.
func (p *BufferPool) Cap() int { return p.cap }

// Acquire grants n buffers to fn, immediately if available, otherwise
// FIFO when released. A request larger than the pool is clamped to the
// whole pool: transfers bigger than the buffering stream through it,
// recycling buffers. Release must be called with the same n.
func (p *BufferPool) Acquire(n int, fn func()) {
	if n <= 0 {
		fn()
		return
	}
	if n > p.cap {
		n = p.cap
	}
	if len(p.q) == 0 && p.free >= n {
		p.free -= n
		fn()
		return
	}
	p.q = append(p.q, bufWaiter{n: n, fn: fn})
	if len(p.q) > p.PeakWaiting {
		p.PeakWaiting = len(p.q)
	}
}

// Release returns n buffers and hands them to waiters in FIFO order. n is
// clamped exactly as in Acquire, so callers pass the same value to both.
func (p *BufferPool) Release(n int) {
	if n <= 0 {
		return
	}
	if n > p.cap {
		n = p.cap
	}
	p.free += n
	if p.free > p.cap {
		panic("bus: released more buffers than acquired")
	}
	for len(p.q) > 0 && p.free >= p.q[0].n {
		w := p.q[0]
		copy(p.q, p.q[1:])
		p.q = p.q[:len(p.q)-1]
		p.free -= w.n
		w.fn()
	}
}
