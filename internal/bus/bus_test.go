package bus

import (
	"testing"

	"raidsim/internal/sim"
)

func mustChannel(t *testing.T, eng *sim.Engine, mbps float64) *Channel {
	t.Helper()
	c, err := NewChannel(eng, mbps)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return c
}

func mustPool(t *testing.T, eng *sim.Engine, units int) *BufferPool {
	t.Helper()
	p, err := NewBufferPool(eng, units)
	if err != nil {
		t.Fatalf("NewBufferPool: %v", err)
	}
	return p
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewChannel(sim.New(), 0); err == nil {
		t.Fatal("zero-rate channel should be rejected")
	}
	if _, err := NewChannel(sim.New(), -1); err == nil {
		t.Fatal("negative-rate channel should be rejected")
	}
	if _, err := NewBufferPool(sim.New(), 0); err == nil {
		t.Fatal("zero-capacity pool should be rejected")
	}
}

func TestChannelTransferTime(t *testing.T) {
	eng := sim.New()
	c := mustChannel(t, eng, 10) // 10 MB/s
	// 4096 bytes at 10 MB/s = 409.6 us.
	if got := c.TransferTime(4096); got < 409000 || got > 410000 {
		t.Fatalf("transfer time = %d ns", got)
	}
}

func TestChannelFIFO(t *testing.T) {
	eng := sim.New()
	c := mustChannel(t, eng, 10)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		c.Transfer(4096, func() { done = append(done, eng.Now()) })
	}
	if c.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", c.QueueLen())
	}
	eng.Run()
	per := c.TransferTime(4096)
	for i, at := range done {
		want := per * sim.Time(i+1)
		if at != want {
			t.Fatalf("transfer %d done at %d, want %d", i, at, want)
		}
	}
	if c.NumXfers != 3 || c.NumBytes != 3*4096 {
		t.Fatalf("counters: %d xfers %d bytes", c.NumXfers, c.NumBytes)
	}
	if got := c.Util.Value(eng.Now()); got < 0.999 {
		t.Fatalf("channel was saturated; utilization %f", got)
	}
}

func TestChannelWaits(t *testing.T) {
	eng := sim.New()
	c := mustChannel(t, eng, 10)
	c.Transfer(4096, nil)
	c.Transfer(4096, nil)
	eng.Run()
	if c.Waits.N() != 2 {
		t.Fatalf("wait samples %d", c.Waits.N())
	}
	if c.Waits.Max() <= 0 {
		t.Fatal("second transfer should have queued")
	}
}

func TestChannelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size transfer should panic")
		}
	}()
	mustChannel(t, sim.New(), 10).Transfer(0, nil)
}

func TestBufferPoolGrantAndQueue(t *testing.T) {
	eng := sim.New()
	p := mustPool(t, eng, 5)
	granted := []int{}
	p.Acquire(3, func() { granted = append(granted, 3) })
	p.Acquire(2, func() { granted = append(granted, 2) })
	if p.Free() != 0 {
		t.Fatalf("free = %d", p.Free())
	}
	// Queued: needs 4, only released units can satisfy it.
	p.Acquire(4, func() { granted = append(granted, 4) })
	if len(granted) != 2 {
		t.Fatalf("grant of 4 should queue: %v", granted)
	}
	p.Release(3)
	if len(granted) != 2 {
		t.Fatalf("3 free of 4 needed; premature grant: %v", granted)
	}
	p.Release(2)
	if len(granted) != 3 || granted[2] != 4 {
		t.Fatalf("queued grant missing: %v", granted)
	}
	if p.Free() != 1 {
		t.Fatalf("free = %d, want 1", p.Free())
	}
	if p.PeakWaiting != 1 {
		t.Fatalf("peak waiting = %d", p.PeakWaiting)
	}
}

func TestBufferPoolFIFONoOvertake(t *testing.T) {
	eng := sim.New()
	p := mustPool(t, eng, 4)
	var order []int
	p.Acquire(4, func() { order = append(order, 0) })
	p.Acquire(3, func() { order = append(order, 1) })
	p.Acquire(1, func() { order = append(order, 2) }) // could fit before 1, must not overtake
	p.Release(4)
	if len(order) != 3 {
		t.Fatalf("grants: %v", order)
	}
	if order[1] != 1 || order[2] != 2 {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestBufferPoolClampsOversized(t *testing.T) {
	eng := sim.New()
	p := mustPool(t, eng, 5)
	ok := false
	p.Acquire(50, func() { ok = true }) // clamped to 5
	if !ok {
		t.Fatal("oversized acquire should clamp and grant")
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d", p.Free())
	}
	p.Release(50) // clamps symmetrically
	if p.Free() != 5 {
		t.Fatalf("free after clamped release = %d", p.Free())
	}
}

func TestBufferPoolOverReleasePanics(t *testing.T) {
	eng := sim.New()
	p := mustPool(t, eng, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	p.Release(1)
}

func TestBufferPoolZeroAcquire(t *testing.T) {
	eng := sim.New()
	p := mustPool(t, eng, 2)
	ran := false
	p.Acquire(0, func() { ran = true })
	if !ran || p.Free() != 2 {
		t.Fatal("zero acquire should run immediately without consuming")
	}
}
