package stats

import "raidsim/internal/sim"

// Windows accumulates disjoint time windows — used for the spans an array
// spends in degraded mode (first failure until the last rebuild
// completes). Nested opens are reference-counted: a second drive failing
// while the first rebuilds extends the same window.
type Windows struct {
	depth int
	since sim.Time
	total sim.Time
	count int
}

// Open starts (or deepens) a window at time t.
func (w *Windows) Open(t sim.Time) {
	if w.depth == 0 {
		w.since = t
		w.count++
	}
	w.depth++
}

// Close ends one level of nesting at time t; the window closes when the
// last level does. Closing while not open panics — that is caller-state
// corruption, not a simulated condition.
func (w *Windows) Close(t sim.Time) {
	if w.depth == 0 {
		panic("stats: closing a window that is not open")
	}
	w.depth--
	if w.depth == 0 {
		w.total += t - w.since
	}
}

// Active reports whether a window is currently open.
func (w *Windows) Active() bool { return w.depth > 0 }

// Count returns how many distinct windows have been opened.
func (w *Windows) Count() int { return w.count }

// Total returns accumulated window time up to time t (including the open
// window, if any).
func (w *Windows) Total(t sim.Time) sim.Time {
	tot := w.total
	if w.depth > 0 && t > w.since {
		tot += t - w.since
	}
	return tot
}
