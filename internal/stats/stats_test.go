package stats

import (
	"math"
	"testing"
	"testing/quick"

	"raidsim/internal/rng"
)

func naiveMeanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		variance /= float64(len(xs) - 1)
	} else {
		variance = 0
	}
	return
}

func TestSummaryAgainstNaive(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 5000)
	var s Summary
	for i := range xs {
		xs[i] = src.Exp(13) + 0.5
		s.Add(xs[i])
	}
	wantMean, wantVar := naiveMeanVar(xs)
	if math.Abs(s.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean %f, want %f", s.Mean(), wantMean)
	}
	if math.Abs(s.Var()-wantVar)/wantVar > 1e-9 {
		t.Fatalf("var %f, want %f", s.Var(), wantVar)
	}
	if s.N() != 5000 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Min() <= 0.5-1e-12 || s.Max() <= s.Min() {
		t.Fatalf("min/max wrong: %f/%f", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should read as zeros")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSummaryMergeEqualsWhole(t *testing.T) {
	f := func(seed uint64, splitRaw uint8) bool {
		src := rng.New(seed)
		n := 200
		split := int(splitRaw) % n
		var whole, a, b Summary
		for i := 0; i < n; i++ {
			x := src.Exp(7)
			whole.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Var()-whole.Var()) < 1e-6 &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileApproximation(t *testing.T) {
	src := rng.New(9)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(src.Exp(20)) // exponential: p50 = 20*ln2 = 13.86, p95 = 59.9
	}
	if q := s.Quantile(0.5); q < 12 || q > 16 {
		t.Fatalf("p50 = %f, want ~13.9", q)
	}
	if q := s.Quantile(0.95); q < 53 || q > 67 {
		t.Fatalf("p95 = %f, want ~59.9", q)
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Fatal("extreme quantiles should clamp to min/max")
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %f", q)
		}
		prev = v
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc("a", 2)
	c.Inc("b", 1)
	c.Inc("a", 3)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zzz") != 0 {
		t.Fatalf("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	var d Counter
	d.Inc("b", 10)
	c.Merge(&d)
	if c.Get("b") != 11 {
		t.Fatalf("merge failed: b = %d", c.Get("b"))
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	u.SetBusy(0)
	u.SetIdle(30)
	u.SetBusy(50)
	u.SetIdle(60)
	if got := u.BusyTime(100); got != 40 {
		t.Fatalf("busy time = %d, want 40", got)
	}
	if got := u.Value(100); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("utilization = %f, want 0.4", got)
	}
	// Still-busy interval counts up to the query time.
	u.SetBusy(100)
	if got := u.BusyTime(110); got != 50 {
		t.Fatalf("busy time while busy = %d, want 50", got)
	}
	// Double SetBusy is a no-op.
	u.SetBusy(105)
	if got := u.BusyTime(110); got != 50 {
		t.Fatalf("double SetBusy changed accounting: %d", got)
	}
}

func TestUtilizationStartsAtFirstObservation(t *testing.T) {
	var u Utilization
	u.SetBusy(1000)
	u.SetIdle(1500)
	if got := u.Value(2000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %f, want 0.5 over [1000,2000]", got)
	}
}

// TestUtilizationIdleObservationAtZero: an observation at t=0 must count
// as the first observation. The old zero-value sentinel (last == 0 &&
// total == 0 && !busy) could not tell "never observed" from "observed
// idle at t=0", so a later SetBusy silently moved started forward and
// inflated Value.
func TestUtilizationIdleObservationAtZero(t *testing.T) {
	var u Utilization
	u.SetIdle(0) // idle server observed at the start of the run
	u.SetBusy(100)
	u.SetIdle(200)
	if got := u.BusyTime(200); got != 100 {
		t.Fatalf("busy time = %d, want 100", got)
	}
	// Observed since t=0: busy 100 of 200, not 100 of 100.
	if got := u.Value(200); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %f, want 0.5 over [0,200]", got)
	}
}

// TestUtilizationZeroLengthBusyAtZero: SetBusy(0) immediately followed by
// SetIdle(0) leaves every field zero; the next observation must not be
// mistaken for the first.
func TestUtilizationZeroLengthBusyAtZero(t *testing.T) {
	var u Utilization
	u.SetBusy(0)
	u.SetIdle(0)
	u.SetBusy(10)
	u.SetIdle(20)
	if got := u.Value(20); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %f, want 0.5 over [0,20]", got)
	}
}

// TestUtilizationBusyFirstAtZero: the common order (busy first) starting
// at t=0 must behave identically before and after the sentinel fix.
func TestUtilizationBusyFirstAtZero(t *testing.T) {
	var u Utilization
	u.SetBusy(0)
	u.SetIdle(50)
	if got := u.Value(100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %f, want 0.5 over [0,100]", got)
	}
}

// TestQuantileMonotoneAndBounded: for arbitrary sample sets, Quantile
// must be non-decreasing in q and always land inside [Min, Max].
func TestQuantileMonotoneAndBounded(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			// Spread samples across the histogram's geometric range,
			// including the sub-histLo underflow bin.
			s.Add(float64(v) / 1e4)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			if v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileDegenerateBounds: a min > max pair (summaries assembled
// from partial state) must not break the range clamp or monotonicity —
// the histogram treats the observed range as [max, min].
func TestQuantileDegenerateBounds(t *testing.T) {
	var h histogram
	h.add(4.0)
	lo, hi := 3.0, 5.0 // inverted: passed as min=5, max=3
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.quantile(q, hi, lo)
		if v < lo || v > hi {
			t.Fatalf("q=%.2f: %f outside [%f,%f]", q, v, lo, hi)
		}
		if v < prev {
			t.Fatalf("q=%.2f: quantile decreased (%f after %f)", q, v, prev)
		}
		prev = v
	}
}
