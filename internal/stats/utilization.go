package stats

import "raidsim/internal/sim"

// Utilization tracks the fraction of simulated time a server (disk,
// channel) is busy, via busy-interval accumulation.
type Utilization struct {
	busySince sim.Time
	busy      bool
	seen      bool // an observation has been recorded
	total     sim.Time
	started   sim.Time // first observation, for the denominator
	last      sim.Time
}

// SetBusy marks the server busy starting at time t. Calling it while
// already busy is a no-op.
func (u *Utilization) SetBusy(t sim.Time) {
	u.observe(t)
	if !u.busy {
		u.busy = true
		u.busySince = t
	}
}

// SetIdle marks the server idle at time t, accumulating the busy interval.
func (u *Utilization) SetIdle(t sim.Time) {
	u.observe(t)
	if u.busy {
		u.total += t - u.busySince
		u.busy = false
	}
}

func (u *Utilization) observe(t sim.Time) {
	// An explicit flag, not a zero-value sentinel: activity starting at
	// t=0 (SetIdle(0), or SetBusy(0) immediately followed by SetIdle(0))
	// leaves every field zero, and a sentinel would mistake the next
	// observation for the first, silently moving started forward and
	// inflating Value.
	if !u.seen {
		u.seen = true
		u.started = t
	}
	if t > u.last {
		u.last = t
	}
}

// BusyTime returns total accumulated busy time up to time t.
func (u *Utilization) BusyTime(t sim.Time) sim.Time {
	b := u.total
	if u.busy && t > u.busySince {
		b += t - u.busySince
	}
	return b
}

// Value returns the busy fraction over [firstObservation, t].
func (u *Utilization) Value(t sim.Time) float64 {
	span := t - u.started
	if span <= 0 {
		return 0
	}
	return float64(u.BusyTime(t)) / float64(span)
}
