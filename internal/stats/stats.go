// Package stats provides the streaming statistics the simulator collects:
// response-time summaries (mean, variance, quantiles via a fixed-bin
// histogram), time-weighted utilization, and per-disk counters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar samples with Welford's online algorithm plus
// a log-scale histogram good enough for the quantiles the paper reports.
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
	hist     histogram
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.hist.add(x)
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) from
// the histogram. Accuracy is within one bin width (~7% relative).
func (s *Summary) Quantile(q float64) float64 {
	return s.hist.quantile(q, s.min, s.max)
}

// Merge folds other into s. Use it to aggregate per-array summaries.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		s.hist = o.hist
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	d := o.mean - s.mean
	tot := n1 + n2
	s.m2 += o.m2 + d*d*n1*n2/tot
	s.mean += d * n2 / tot
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.hist.merge(&o.hist)
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// histogram is a geometric-bin histogram covering [lo, inf) with bins
// growing by a fixed ratio. Values are expected to be positive
// response times in milliseconds-ish magnitude; bin 0 also absorbs
// zero/negative values.
type histogram struct {
	counts [nBins]int64
}

const (
	nBins    = 256
	histLo   = 1e-3 // smallest resolved value
	histStep = 1.07 // bin growth ratio; 256 bins reach ~3.3e4 * histLo
)

var logStep = math.Log(histStep)

func binOf(x float64) int {
	if x <= histLo {
		return 0
	}
	b := int(math.Log(x/histLo) / logStep)
	if b >= nBins {
		b = nBins - 1
	}
	return b
}

func binLow(b int) float64 {
	return histLo * math.Pow(histStep, float64(b))
}

func (h *histogram) add(x float64) {
	h.counts[binOf(x)]++
}

func (h *histogram) merge(o *histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

func (h *histogram) quantile(q float64, min, max float64) float64 {
	var total int64
	for _, c := range h.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if min > max {
		// Degenerate bounds (e.g. summaries assembled from partial state,
		// or merged in an order that never saw a real sample range): treat
		// the observed range as [max, min] so the result stays inside it
		// and remains monotone in q.
		min, max = max, min
	}
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := int64(math.Ceil(q * float64(total)))
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			// Midpoint of the bin, clamped to observed range.
			v := binLow(b) * math.Sqrt(histStep)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// Counter is a simple named tally.
type Counter struct {
	counts map[string]int64
}

// Inc adds n to the named counter.
func (c *Counter) Inc(name string, n int64) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += n
}

// Get returns the named count.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge folds other into c.
func (c *Counter) Merge(o *Counter) {
	for k, v := range o.counts {
		c.Inc(k, v)
	}
}
