package stats

import (
	"encoding/json"
	"testing"

	"raidsim/internal/rng"
)

// TestStateJSONRoundTripIsBitExact pins the property campaign journals
// depend on: State -> JSON -> FromState reproduces every accumulator
// bit and every histogram count, so merges built from replayed records
// are identical to merges built from live results.
func TestStateJSONRoundTripIsBitExact(t *testing.T) {
	src := rng.New(7)
	var s Summary
	for i := 0; i < 5000; i++ {
		s.Add(src.Exp(12.5))
	}
	raw, err := json.Marshal(s.State())
	if err != nil {
		t.Fatal(err)
	}
	var st SummaryState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	got, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, s)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got.Quantile(q) != s.Quantile(q) {
			t.Fatalf("q=%g: %x vs %x", q, got.Quantile(q), s.Quantile(q))
		}
	}
}

func TestStateEmptySummary(t *testing.T) {
	var s Summary
	got, err := FromState(s.State())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("empty summary round trip drifted: %+v", got)
	}
}

func TestFromStateRejectsCorruptBins(t *testing.T) {
	if _, err := FromState(SummaryState{Bins: [][2]int64{{nBins, 1}}}); err == nil {
		t.Fatal("out-of-range bin accepted")
	}
	if _, err := FromState(SummaryState{Bins: [][2]int64{{-1, 1}}}); err == nil {
		t.Fatal("negative bin accepted")
	}
	if _, err := FromState(SummaryState{Bins: [][2]int64{{3, -4}}}); err == nil {
		t.Fatal("negative count accepted")
	}
}
