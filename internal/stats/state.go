package stats

import "fmt"

// SummaryState is the exported, JSON-serializable form of a Summary:
// the Welford accumulators plus the histogram as sparse (bin, count)
// pairs. Go's encoding/json emits float64 with the shortest
// round-trippable representation, so State -> JSON -> FromState
// reproduces the Summary bit for bit — the property campaign journals
// rely on to make a resumed merge identical to an uninterrupted one.
type SummaryState struct {
	N    int64      `json:"n"`
	Mean float64    `json:"mean"`
	M2   float64    `json:"m2"`
	Min  float64    `json:"min"`
	Max  float64    `json:"max"`
	Bins [][2]int64 `json:"bins,omitempty"` // sparse histogram: [bin index, count]
}

// State captures the summary for serialization.
func (s *Summary) State() SummaryState {
	st := SummaryState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
	for b, c := range s.hist.counts {
		if c != 0 {
			st.Bins = append(st.Bins, [2]int64{int64(b), c})
		}
	}
	return st
}

// FromState reconstructs a Summary from a captured state. Bin indexes
// outside the histogram range are an error (a corrupt or foreign
// journal record, not a format this package ever wrote).
func FromState(st SummaryState) (Summary, error) {
	s := Summary{n: st.N, mean: st.Mean, m2: st.M2, min: st.Min, max: st.Max}
	for _, bc := range st.Bins {
		b, c := bc[0], bc[1]
		if b < 0 || b >= nBins {
			return Summary{}, fmt.Errorf("stats: histogram bin %d out of range [0, %d)", b, nBins)
		}
		if c < 0 {
			return Summary{}, fmt.Errorf("stats: negative count %d in histogram bin %d", c, b)
		}
		s.hist.counts[b] = c
	}
	return s, nil
}
