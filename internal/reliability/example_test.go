package reliability_test

import (
	"fmt"

	"raidsim/internal/reliability"
)

// Example reproduces the paper's introductory footnote: a large disk farm
// without redundancy loses data within a month on average.
func Example() {
	p := reliability.Params{DiskMTTFHours: 100000, MTTRHours: 24}
	farm := reliability.FarmMTTDLHours(p, 150)
	raid5 := reliability.ArrayFarmMTTDLHours(p, 10, 15) // same data on 15 N=10 arrays
	fmt.Printf("150-disk farm MTTDL: %.1f days\n", reliability.HoursToDays(farm))
	fmt.Printf("as RAID5 arrays:     %.0f days\n", reliability.HoursToDays(raid5))
	// Output:
	// 150-disk farm MTTDL: 27.8 days
	// as RAID5 arrays:     10522 days
}
