package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

var std = Params{DiskMTTFHours: 100000, MTTRHours: 24}

// TestPaperFootnote: "For large systems, e.g., with over 150 disks, the
// MTTF of the permanent storage subsystem can be less than 28 days"
// (assuming 100,000-hour drives).
func TestPaperFootnote(t *testing.T) {
	days := HoursToDays(FarmMTTDLHours(std, 150))
	if days >= 28 {
		t.Fatalf("150-disk farm MTTDL = %.1f days, paper says < 28", days)
	}
	if days < 27 {
		t.Fatalf("MTTDL = %.1f days; arithmetic drifted (expect ~27.8)", days)
	}
}

func TestFarmScalesInversely(t *testing.T) {
	one := FarmMTTDLHours(std, 1)
	if one != std.DiskMTTFHours {
		t.Fatalf("single disk MTTDL = %f", one)
	}
	if got := FarmMTTDLHours(std, 10); math.Abs(got-one/10) > 1e-9 {
		t.Fatalf("10-disk farm MTTDL = %f", got)
	}
}

func TestRedundancyOrdering(t *testing.T) {
	// For the paper's configuration, redundancy must dominate:
	// mirror pair >> raid5 array >> raw farm of the same rough size.
	farm := FarmMTTDLHours(std, 11)
	raid5 := ArrayMTTDLHours(std, 10)
	mirror := MirrorPairMTTDLHours(std)
	if !(mirror > raid5 && raid5 > farm) {
		t.Fatalf("ordering violated: mirror %g raid5 %g farm %g", mirror, raid5, farm)
	}
	// Mirror pair beats a RAID5 array because 2 < (N+1)*N for N >= 2.
	if mirror/raid5 < 10 {
		t.Fatalf("mirror/raid5 ratio %f, expected large", mirror/raid5)
	}
}

func TestLargerArraysLessReliable(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{2, 5, 10, 20} {
		v := ArrayMTTDLHours(std, n)
		if v >= prev {
			t.Fatalf("MTTDL not decreasing in N at %d", n)
		}
		prev = v
	}
}

func TestZeroMTTRIsInfinitelyReliable(t *testing.T) {
	p := Params{DiskMTTFHours: 1000, MTTRHours: 0}
	if !math.IsInf(MirrorPairMTTDLHours(p), 1) || !math.IsInf(ArrayMTTDLHours(p, 5), 1) {
		t.Fatal("instant repair should give infinite MTTDL")
	}
	if DataLossProbability(math.Inf(1), 1e9) != 0 {
		t.Fatal("infinite MTTDL should give zero loss probability")
	}
}

func TestDataLossProbability(t *testing.T) {
	// t = MTTDL: P = 1 - 1/e.
	got := DataLossProbability(100, 100)
	if math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Fatalf("P(loss) = %f", got)
	}
	if p := DataLossProbability(1e12, 1); p > 1e-9 {
		t.Fatalf("tiny exposure gave %g", p)
	}
}

func TestQuickProbabilityBounds(t *testing.T) {
	f := func(mttdlRaw, tRaw uint32) bool {
		mttdl := float64(mttdlRaw%1000000) + 1
		tt := float64(tRaw % 1000000)
		p := DataLossProbability(mttdl, tt)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if (Params{DiskMTTFHours: 0, MTTRHours: 1}).Validate() == nil {
		t.Fatal("zero MTTF accepted")
	}
	if (Params{DiskMTTFHours: 1, MTTRHours: -1}).Validate() == nil {
		t.Fatal("negative MTTR accepted")
	}
	if std.Validate() != nil {
		t.Fatal("standard params rejected")
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { FarmMTTDLHours(std, 0) },
		func() { MirrorFarmMTTDLHours(std, 0) },
		func() { ArrayMTTDLHours(std, 1) },
		func() { ArrayFarmMTTDLHours(std, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
