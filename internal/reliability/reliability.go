// Package reliability provides the analytic availability models behind
// the paper's motivation: the mean time to data loss (MTTDL) of
// non-redundant disk farms, mirrored pairs, and N+1 parity arrays, using
// the standard independent-exponential-failure Markov models from the
// RAID literature. It reproduces the introduction's footnote: a 150-disk
// farm of 100,000-hour-MTTF drives loses data in under a month on
// average.
package reliability

import (
	"fmt"
	"math"
)

// Params describes the drive population.
type Params struct {
	DiskMTTFHours float64 // mean time to failure of one drive
	MTTRHours     float64 // mean time to repair/replace one drive
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.DiskMTTFHours <= 0 {
		return fmt.Errorf("reliability: MTTF must be positive")
	}
	if p.MTTRHours < 0 {
		return fmt.Errorf("reliability: MTTR must be non-negative")
	}
	return nil
}

// FarmMTTDLHours returns the mean time until the first failure in a farm
// of n independent drives with no redundancy — any single failure loses
// data.
func FarmMTTDLHours(p Params, n int) float64 {
	if n <= 0 {
		panic("reliability: need at least one disk")
	}
	return p.DiskMTTFHours / float64(n)
}

// MirrorPairMTTDLHours returns the MTTDL of one mirrored pair: data is
// lost when the second drive fails while the first is being repaired.
// Standard result: MTTF^2 / (2 * MTTR) for MTTR << MTTF.
func MirrorPairMTTDLHours(p Params) float64 {
	if p.MTTRHours == 0 {
		return math.Inf(1)
	}
	m := p.DiskMTTFHours
	return m * m / (2 * p.MTTRHours)
}

// MirrorPairMTTDLHoursExact returns the exact Markov-chain MTTDL of one
// mirrored pair with exponential failures and exponential repairs:
// (3λ+µ)/(2λ²) = 1.5·MTTF + MTTF²/(2·MTTR). The approximation above drops
// the 1.5·MTTF term, negligible when MTTR << MTTF; the fault-injection
// campaign (package fault) converges to this exact value.
func MirrorPairMTTDLHoursExact(p Params) float64 {
	if p.MTTRHours == 0 {
		return math.Inf(1)
	}
	m := p.DiskMTTFHours
	return 1.5*m + m*m/(2*p.MTTRHours)
}

// MirrorFarmMTTDLHours returns the MTTDL of n independent mirrored pairs
// (2n drives).
func MirrorFarmMTTDLHours(p Params, pairs int) float64 {
	if pairs <= 0 {
		panic("reliability: need at least one pair")
	}
	return MirrorPairMTTDLHours(p) / float64(pairs)
}

// ArrayMTTDLHours returns the MTTDL of one N+1 parity array (RAID4/5 or
// parity striping group of disks): data is lost when a second drive of
// the same array fails during the first drive's repair window.
// Standard result: MTTF^2 / (G * (G-1) * MTTR) with G = N+1 drives.
func ArrayMTTDLHours(p Params, n int) float64 {
	if n < 2 {
		panic("reliability: parity array needs N >= 2")
	}
	if p.MTTRHours == 0 {
		return math.Inf(1)
	}
	g := float64(n + 1)
	m := p.DiskMTTFHours
	return m * m / (g * (g - 1) * p.MTTRHours)
}

// ArrayMTTDLHoursExact returns the exact Markov-chain MTTDL of one N+1
// parity array (G = N+1 drives, exponential repairs):
// ((2G-1)λ+µ)/(G(G-1)λ²) = (2G-1)·MTTF/(G(G-1)) + MTTF²/(G(G-1)·MTTR).
func ArrayMTTDLHoursExact(p Params, n int) float64 {
	if n < 2 {
		panic("reliability: parity array needs N >= 2")
	}
	if p.MTTRHours == 0 {
		return math.Inf(1)
	}
	g := float64(n + 1)
	m := p.DiskMTTFHours
	return (2*g-1)*m/(g*(g-1)) + m*m/(g*(g-1)*p.MTTRHours)
}

// ArrayFarmMTTDLHours returns the MTTDL of a system of several N+1
// arrays.
func ArrayFarmMTTDLHours(p Params, n, arrays int) float64 {
	if arrays <= 0 {
		panic("reliability: need at least one array")
	}
	return ArrayMTTDLHours(p, n) / float64(arrays)
}

// DataLossProbability returns 1 - exp(-t/MTTDL): the probability of at
// least one data-loss event within t hours, assuming exponential
// inter-loss times.
func DataLossProbability(mttdlHours, tHours float64) float64 {
	if math.IsInf(mttdlHours, 1) {
		return 0
	}
	return 1 - math.Exp(-tHours/mttdlHours)
}

// HoursToDays converts hours to days.
func HoursToDays(h float64) float64 { return h / 24 }
