package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"raidsim/internal/stats"
)

// Group aggregates every replication (seed) of one grid cell: the
// response summaries merged bin-wise — so group percentiles are exact
// with respect to the histogram binning, not means of per-run
// percentiles — plus the per-run means the confidence interval needs.
type Group struct {
	// Key is the canonical axis assignment minus the seed
	// ("cache=16/n=10/org=raid5/trace=trace2").
	Key    string
	Params map[string]string

	Runs     int
	Requests int64
	Events   uint64

	Resp  stats.Summary // all replications, bin-merged
	Read  stats.Summary
	Write stats.Summary

	// MeanPerRun holds each replication's mean response (ms), in run-ID
	// order; Estimate derives the across-replication CI from it.
	MeanPerRun []float64
}

// Estimate returns the across-replication estimate of the group's mean
// response time: mean of per-run means with a normal-approximation 95%
// half-width (0 with a single replication).
func (g *Group) Estimate() Estimate {
	n := len(g.MeanPerRun)
	if n == 0 {
		return Estimate{}
	}
	var sum, sumsq float64
	for _, m := range g.MeanPerRun {
		sum += m
		sumsq += m * m
	}
	mean := sum / float64(n)
	e := Estimate{Mean: mean, N: n}
	if n > 1 {
		v := (sumsq - sum*sum/float64(n)) / float64(n-1)
		if v < 0 {
			v = 0
		}
		e.Half = 1.96 * math.Sqrt(v) / math.Sqrt(float64(n))
	}
	return e
}

// Estimate is a value with a 95% confidence half-width over N
// replications.
type Estimate struct {
	Mean float64
	Half float64
	N    int
}

// PercentOfMean renders the half-width as a percentage of the mean
// ("±3.1%"), benchstat-style; "" when there is no interval.
func (e Estimate) PercentOfMean() string {
	if e.N < 2 || e.Mean == 0 {
		return ""
	}
	return fmt.Sprintf("±%.1f%%", 100*e.Half/math.Abs(e.Mean))
}

// Fleet is the merged view of a whole campaign: per-group aggregates
// plus the fleet-wide response summary across every run.
type Fleet struct {
	Groups []Group // sorted by Key

	Runs     int
	Requests int64
	Events   uint64
	Resp     stats.Summary // every run in the fleet, bin-merged
}

// Merge folds run records into a Fleet. Records are sorted by ID before
// any merging, so the result — including every floating-point bit of
// the merged accumulators — is independent of completion order and
// worker count. Zero-ID records (failed runs) are skipped.
func Merge(records []RunRecord) (*Fleet, error) {
	recs := make([]RunRecord, 0, len(records))
	for _, r := range records {
		if r.ID != "" {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })

	f := &Fleet{}
	groups := make(map[string]*Group)
	var order []string
	for _, r := range recs {
		resp, err := stats.FromState(r.Resp)
		if err != nil {
			return nil, fmt.Errorf("campaign: record %s: %w", r.ID, err)
		}
		rd, err := stats.FromState(r.Read)
		if err != nil {
			return nil, fmt.Errorf("campaign: record %s: %w", r.ID, err)
		}
		wr, err := stats.FromState(r.Write)
		if err != nil {
			return nil, fmt.Errorf("campaign: record %s: %w", r.ID, err)
		}
		key := r.groupKey()
		g, ok := groups[key]
		if !ok {
			params := make(map[string]string, len(r.Params))
			for k, v := range r.Params {
				if k != seedKey {
					params[k] = v
				}
			}
			g = &Group{Key: key, Params: params}
			groups[key] = g
			order = append(order, key)
		}
		g.Runs++
		g.Requests += r.Requests
		g.Events += r.Events
		g.Resp.Merge(&resp)
		g.Read.Merge(&rd)
		g.Write.Merge(&wr)
		g.MeanPerRun = append(g.MeanPerRun, resp.Mean())

		f.Runs++
		f.Requests += r.Requests
		f.Events += r.Events
		f.Resp.Merge(&resp)
	}
	sort.Strings(order)
	for _, k := range order {
		f.Groups = append(f.Groups, *groups[k])
	}
	return f, nil
}

// Fingerprint pins the merged fleet: every group's run count and the
// exact bits of its merged mean and quantiles. Resume tests compare an
// interrupted-and-resumed campaign's fleet against an uninterrupted
// one with this.
func (f *Fleet) Fingerprint() string {
	hex := func(x float64) string { return fmt.Sprintf("%x", x) }
	var b strings.Builder
	fmt.Fprintf(&b, "runs=%d req=%d mean=%s p95=%s", f.Runs, f.Requests, hex(f.Resp.Mean()), hex(f.Resp.Quantile(0.95)))
	for i := range f.Groups {
		g := &f.Groups[i]
		fmt.Fprintf(&b, "\n%s: runs=%d req=%d mean=%s p50=%s p95=%s p99=%s max=%s",
			g.Key, g.Runs, g.Requests, hex(g.Resp.Mean()),
			hex(g.Resp.Quantile(0.5)), hex(g.Resp.Quantile(0.95)),
			hex(g.Resp.Quantile(0.99)), hex(g.Resp.Max()))
	}
	return b.String()
}

// Select returns the groups whose params match every key=value pair of
// the selector ("org=raid5" or "org=raid5,cache=16"), along with the
// residual key (params minus the selector keys) each match is
// identified by. Residual keys pair A/B groups in comparisons.
func (f *Fleet) Select(selector string) (map[string]*Group, error) {
	want := make(map[string]string)
	if selector != "" {
		for _, kv := range strings.Split(selector, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("campaign: bad selector term %q (want key=value)", kv)
			}
			want[k] = v
		}
	}
	out := make(map[string]*Group)
	for i := range f.Groups {
		g := &f.Groups[i]
		match := true
		for k, v := range want {
			if g.Params[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		residual := make(map[string]string)
		for k, v := range g.Params {
			if _, sel := want[k]; !sel {
				residual[k] = v
			}
		}
		rk := paramKey(residual, false)
		if _, dup := out[rk]; dup {
			return nil, fmt.Errorf("campaign: selector %q is ambiguous: two groups share residual %q", selector, rk)
		}
		out[rk] = g
	}
	return out, nil
}
