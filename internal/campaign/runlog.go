package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"raidsim/internal/sim"
)

// RunLogSchemaVersion identifies the structured run log's JSONL format:
// line 1 is a header object ({"schema", "name"}), every following line
// one RunLogEntry. Where the journal records *simulation results* (and
// is therefore the resume key), the run log records *execution
// telemetry* — wall time, engine self-metrics, worker assignment,
// outcome — and is rewritten from scratch by every execution.
const RunLogSchemaVersion = "raidsim-runlog/1"

// runLogHeader is the first line of every run log file.
type runLogHeader struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
}

// RunLogEntry is one run's execution telemetry. Outcome is "executed"
// (freshly simulated), "resumed" (replayed from the journal), or
// "failed" (Err carries the reason).
type RunLogEntry struct {
	ID      string `json:"id"`
	Seed    uint64 `json:"seed"`
	Group   string `json:"group,omitempty"`
	Worker  int    `json:"worker"`
	Outcome string `json:"outcome"`
	Err     string `json:"err,omitempty"`

	WallMS   float64 `json:"wall_ms"`
	Events   uint64  `json:"events"`
	Requests int64   `json:"requests"`
	MeanMS   float64 `json:"mean_ms"`

	// Engine carries the run's engine self-metrics when the campaign ran
	// with SelfMetrics; zero otherwise.
	Engine sim.MeterStats `json:"engine"`
}

// RunLogTotals is the fleet-level reduction of a run log, comparable
// against the journal's view of the same campaign.
type RunLogTotals struct {
	Executed, Resumed, Failed int
	Events                    uint64
	Requests                  int64
}

// SummarizeRunLog reduces entries to fleet totals. Failed runs carry no
// events or requests, so the Events/Requests sums cover executed and
// resumed runs — exactly the set the journal holds.
func SummarizeRunLog(entries []RunLogEntry) RunLogTotals {
	var t RunLogTotals
	for _, e := range entries {
		switch e.Outcome {
		case "executed":
			t.Executed++
		case "resumed":
			t.Resumed++
		default:
			t.Failed++
		}
		t.Events += e.Events
		t.Requests += e.Requests
	}
	return t
}

// RunLog is the append-only writer. Unlike the journal it is not a
// resume key: OpenRunLog truncates, so the file always describes the
// most recent execution.
type RunLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenRunLog creates (truncating) the run log at path for campaign name.
func OpenRunLog(path, name string) (*RunLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: run log: %w", err)
	}
	l := &RunLog{f: f, w: bufio.NewWriter(f)}
	hdr, _ := json.Marshal(runLogHeader{Schema: RunLogSchemaVersion, Name: name})
	if _, err := l.w.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Append writes one entry. Safe for concurrent use.
func (l *RunLog) Append(e RunLogEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("campaign: run log append: %w", err)
	}
	return nil
}

// Close flushes and releases the file.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadRunLog parses a run log file, returning the campaign name, every
// complete entry, and the count of torn lines it skipped. Like the
// journal loader it tolerates a torn tail: the writer flushes line-at-a-
// time, so a process killed mid-append leaves at most a partial final
// line, and everything before it is intact telemetry worth salvaging.
// Torn (or foreign) lines are counted rather than erroring; callers that
// care — post-mortem tooling inspecting a crashed campaign — surface the
// count as a warning. A bad header is still an error: with no valid
// header the file is not a run log at all.
func ReadRunLog(path string) (string, []RunLogEntry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return "", nil, 0, fmt.Errorf("campaign: run log %s: missing header", path)
	}
	var hdr runLogHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return "", nil, 0, fmt.Errorf("campaign: run log %s: bad header: %w", path, err)
	}
	if hdr.Schema != RunLogSchemaVersion {
		return "", nil, 0, fmt.Errorf("campaign: run log %s has schema %q, want %q", path, hdr.Schema, RunLogSchemaVersion)
	}
	var entries []RunLogEntry
	torn := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e RunLogEntry
		if err := json.Unmarshal(line, &e); err != nil || e.ID == "" {
			// Torn tail from a crash mid-append (or a foreign line):
			// salvage everything parseable and report the damage.
			torn++
			continue
		}
		entries = append(entries, e)
	}
	return hdr.Name, entries, torn, sc.Err()
}
