// Package shard provides the deterministic sharding primitives every
// campaign-style sweep in the repository shares: a bounded worker pool
// that maps a function over an index range, and a stable per-run seed
// derivation. The package is dependency-free so that low-level layers
// (the Monte-Carlo MTTDL campaign in internal/fault, the experiment
// harness in internal/exp) can use the same pool as the top-level
// internal/campaign runner without import cycles.
//
// Determinism contract: Map gives no ordering guarantees between
// invocations of fn, so fn must write its result into an index-addressed
// slot and leave every reduction (sums, mins, merges) to the caller, who
// performs it in index order after Map returns. That keeps floating-point
// accumulation order — and therefore every output bit — independent of
// the worker count.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines (workers <= 0 means GOMAXPROCS). It returns when every call
// has completed. fn must be safe for concurrent invocation on distinct
// indexes and must not assume any execution order.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	mix1      = 0xbf58476d1ce4e5b9
	mix2      = 0x94d049bb133111eb
)

// SeedFor derives the simulation seed of one campaign run from the
// campaign's base seed and the run's stable ID. Keying on the ID — not
// the run's position in the expanded grid — means growing or reordering
// the grid never changes the seed (and hence the results) of any
// existing run, which is what makes journals resumable across spec
// edits. The derivation is FNV-1a over the ID finalized through a
// splitmix64-style mix with the base seed.
func SeedFor(base uint64, id string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime
	}
	z := h + base*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * mix1
	z = (z ^ (z >> 27)) * mix2
	z ^= z >> 31
	if z == 0 {
		// Seed 0 means "unset" to several config layers; nudge away.
		z = 0x9e3779b97f4a7c15
	}
	return z
}
