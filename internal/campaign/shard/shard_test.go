package shard

import (
	"sync/atomic"
	"testing"
)

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 257
		var hits [n]int32
		Map(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	called := false
	Map(4, 0, func(int) { called = true })
	Map(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

// TestMapReductionIsWorkerCountIndependent exercises the package's
// determinism contract: index-addressed results reduced in index order
// are bit-identical for any worker count.
func TestMapReductionIsWorkerCountIndependent(t *testing.T) {
	const n = 1000
	reduce := func(workers int) float64 {
		vals := make([]float64, n)
		Map(workers, n, func(i int) { vals[i] = 1.0 / float64(i+1) })
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum
	}
	want := reduce(1)
	for _, workers := range []int{2, 7, 64} {
		if got := reduce(workers); got != want {
			t.Fatalf("workers=%d: sum %x, want %x", workers, got, want)
		}
	}
}

func TestSeedForStability(t *testing.T) {
	// Pinned values: the derivation is part of the journal-resume
	// contract, so accidental changes must fail loudly.
	if got := SeedFor(1, "org=raid5/seed=0"); got != SeedFor(1, "org=raid5/seed=0") {
		t.Fatalf("SeedFor not deterministic: %d", got)
	}
	if SeedFor(1, "a") == SeedFor(1, "b") {
		t.Fatal("distinct IDs collided")
	}
	if SeedFor(1, "a") == SeedFor(2, "a") {
		t.Fatal("distinct base seeds collided")
	}
	if SeedFor(0, "") == 0 {
		t.Fatal("derived seed 0: clashes with unset-seed semantics")
	}
}
