package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerStats is one pool worker's accounting from a MapStats call:
// tasks it executed, how many of those came from another worker's
// stride (steals), and host time spent inside fn.
type WorkerStats struct {
	Worker int
	Tasks  int
	Steals int
	Busy   time.Duration
}

// MapStats is Map with per-worker occupancy accounting. Each worker owns
// the stride {w, w+workers, w+2·workers, ...}; a worker that drains its
// own stride scans the claim array for unclaimed indexes and steals them,
// so a worker stuck on one long run (an overloaded config simulating for
// minutes) cannot strand the rest of its stride while others sit idle.
// Every index is claimed exactly once through a CAS, fn receives
// (worker, i), and the same determinism contract as Map applies: fn
// writes index-addressed slots, reductions happen in index order after
// return, so results never depend on the worker count — only the
// WorkerStats do.
func MapStats(workers, n int, fn func(worker, i int)) []WorkerStats {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	stats := make([]WorkerStats, workers)
	if workers == 1 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		stats[0] = WorkerStats{Worker: 0, Tasks: n, Busy: time.Since(t0)}
		return stats
	}
	claimed := make([]atomic.Bool, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.Worker = w
			run := func(i int, stolen bool) {
				t0 := time.Now()
				fn(w, i)
				st.Busy += time.Since(t0)
				st.Tasks++
				if stolen {
					st.Steals++
				}
			}
			// Own stride first.
			for i := w; i < n; i += workers {
				if claimed[i].CompareAndSwap(false, true) {
					run(i, false)
				}
			}
			// Stride drained: steal whatever is still unclaimed.
			for i := 0; i < n; i++ {
				if claimed[i].CompareAndSwap(false, true) {
					run(i, true)
				}
			}
		}(w)
	}
	wg.Wait()
	return stats
}
