package shard

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestMapStatsCoversEveryIndexOnce: exactly-once execution regardless of
// who claims an index, for a spread of worker counts.
func TestMapStatsCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const n = 103
		var hits [n]atomic.Int32
		stats := MapStats(workers, n, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
		tasks := 0
		for _, st := range stats {
			tasks += st.Tasks
		}
		if tasks != n {
			t.Errorf("workers=%d: worker tasks sum to %d, want %d", workers, tasks, n)
		}
	}
}

// TestMapStatsWorkerIDs: fn's worker argument matches the stats row that
// accounts for the task.
func TestMapStatsWorkerIDs(t *testing.T) {
	const n = 64
	var byWorker [8]atomic.Int32
	stats := MapStats(8, n, func(w, _ int) { byWorker[w].Add(1) })
	if len(stats) != 8 {
		t.Fatalf("got %d stats rows, want 8", len(stats))
	}
	for w, st := range stats {
		if st.Worker != w {
			t.Errorf("stats[%d].Worker = %d", w, st.Worker)
		}
		if got := int(byWorker[w].Load()); got != st.Tasks {
			t.Errorf("worker %d: fn saw %d tasks, stats claim %d", w, got, st.Tasks)
		}
	}
}

// TestMapStatsStealing pins the stealing behavior: worker 0 blocks on its
// first task until everything else is done, so the rest of its stride
// must be stolen by other workers.
func TestMapStatsStealing(t *testing.T) {
	const workers, n = 2, 20
	release := make(chan struct{})
	idx0 := make(chan struct{})
	var others atomic.Int32
	stats := MapStats(workers, n, func(w, i int) {
		if i == 0 {
			close(idx0) // worker 0 holds index 0...
			<-release   // ...until everything else is done
			return
		}
		if i == 1 {
			<-idx0 // worker 1's first task waits for index 0 to be claimed
		}
		if others.Add(1) == n-1 {
			close(release) // all other tasks done: unblock
		}
	})
	total, steals := 0, 0
	for _, st := range stats {
		total += st.Tasks
		steals += st.Steals
	}
	if total != n {
		t.Fatalf("tasks sum %d, want %d", total, n)
	}
	// Worker 0 ran only index 0; its remaining 9 stride slots were stolen.
	if stats[0].Tasks != 1 {
		t.Errorf("worker 0 ran %d tasks, want 1", stats[0].Tasks)
	}
	if stats[1].Steals != 9 {
		t.Errorf("worker 1 stole %d tasks, want 9", stats[1].Steals)
	}
	if steals != 9 {
		t.Errorf("total steals %d, want 9", steals)
	}
}

// TestMapStatsBusyTime: busy time covers fn execution.
func TestMapStatsBusyTime(t *testing.T) {
	stats := MapStats(1, 3, func(_, _ int) { time.Sleep(2 * time.Millisecond) })
	if stats[0].Busy < 6*time.Millisecond {
		t.Errorf("busy %v, want >= 6ms", stats[0].Busy)
	}
}

// TestMapStatsReductionIsWorkerCountIndependent: same contract as Map —
// index-addressed slots reduced in order give bit-identical results for
// any worker count.
func TestMapStatsReductionIsWorkerCountIndependent(t *testing.T) {
	const n = 100
	reduce := func(workers int) float64 {
		slots := make([]float64, n)
		MapStats(workers, n, func(_, i int) { slots[i] = 1.0 / float64(i+1) })
		sum := 0.0
		for _, v := range slots {
			sum += v
		}
		return sum
	}
	want := reduce(1)
	for _, workers := range []int{2, 4, 8} {
		if got := reduce(workers); got != want {
			t.Errorf("workers=%d: sum %x differs from serial %x", workers, got, want)
		}
	}
}

// TestMapStatsEmpty: n<=0 returns nil and never calls fn.
func TestMapStatsEmpty(t *testing.T) {
	called := false
	if st := MapStats(4, 0, func(_, _ int) { called = true }); st != nil || called {
		t.Errorf("n=0: stats=%v called=%v", st, called)
	}
	if st := MapStats(4, -3, func(_, _ int) { called = true }); st != nil || called {
		t.Errorf("n<0: stats=%v called=%v", st, called)
	}
}
