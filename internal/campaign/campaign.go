// Package campaign owns the run lifecycle of fleet-scale parameter
// sweeps: a Spec (the parameter grid of organization × array size ×
// cache size × workload knobs × replication seeds, loadable from JSON
// or built programmatically) expands into Points; a deterministic
// worker pool (internal/campaign/shard) fans the points across
// goroutines, one engine and one derived seed per run; per-run results
// are appended to a JSONL journal keyed by stable run IDs so an
// interrupted campaign resumes by skipping completed runs; and the
// per-run records merge — bin-wise, in canonical ID order, so the
// result is independent of completion order and worker count — into
// fleet-level summaries and percentiles.
//
// The layering: shard knows nothing about simulations, campaign knows
// nothing about rendering. cmd/campaign turns Fleet groups into
// report tables; internal/exp and internal/fault run their sweeps on
// the same pool.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"raidsim/internal/core"
	"raidsim/internal/stats"
	"raidsim/internal/trace"
)

// Point is one run of a campaign: a stable ID (the resume and
// reporting key), the axis values that produced it, and the fully
// resolved configuration and trace. Spec.Points derives Config.Seed
// from the base seed and the ID; hand-built points keep whatever seed
// their Config carries.
type Point struct {
	ID     string
	Params map[string]string
	Config core.Config
	Trace  *trace.Trace
}

// seedKey is the replication-index parameter; grouping strips it so a
// group aggregates exactly the replications of one configuration.
const seedKey = "seed"

// paramKey renders params in canonical sorted "k=v/k=v" form. With
// omitSeed it yields the group key shared by all replications.
func paramKey(params map[string]string, omitSeed bool) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		if omitSeed && k == seedKey {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s=%s", k, params[k])
	}
	return b.String()
}

// RunRecord is the journaled outcome of one completed run: identity,
// scalar counters, and the full response-time summaries (histogram
// included), which is what lets a resumed campaign rebuild fleet
// percentiles bit-identically without re-running anything.
type RunRecord struct {
	ID     string            `json:"id"`
	Params map[string]string `json:"params,omitempty"`
	Seed   uint64            `json:"seed"`

	Arrays   int    `json:"arrays"`
	Requests int64  `json:"requests"`
	Events   uint64 `json:"events"`

	Resp  stats.SummaryState `json:"resp"`
	Read  stats.SummaryState `json:"read"`
	Write stats.SummaryState `json:"write"`

	ReadHits    int64 `json:"read_hits"`
	ReadMisses  int64 `json:"read_misses"`
	WriteHits   int64 `json:"write_hits"`
	WriteMisses int64 `json:"write_misses"`

	// ElapsedMS is host wall-clock time; informational only and
	// excluded from Fingerprint (it is the one non-deterministic field).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// NewRecord summarizes one run's results into a journalable record.
func NewRecord(p Point, res *core.Results, elapsedMS float64) RunRecord {
	return RunRecord{
		ID:          p.ID,
		Params:      p.Params,
		Seed:        p.Config.Seed,
		Arrays:      res.Arrays,
		Requests:    res.Requests,
		Events:      res.Events,
		Resp:        res.Resp.State(),
		Read:        res.ReadResp.State(),
		Write:       res.WriteResp.State(),
		ReadHits:    res.ReadHits,
		ReadMisses:  res.ReadMisses,
		WriteHits:   res.WriteHits,
		WriteMisses: res.WriteMisses,
		ElapsedMS:   elapsedMS,
	}
}

// Fingerprint pins the deterministic content of the record: every
// counter and the exact bits of every mean. Two runs of the same point
// must produce equal fingerprints regardless of worker count, and a
// journal replay must reproduce the live fingerprint exactly.
func (r *RunRecord) Fingerprint() string {
	hex := func(f float64) string { return fmt.Sprintf("%x", f) }
	return fmt.Sprintf("id=%s seed=%d ev=%d req=%d resp=%d/%s rd=%d/%s wr=%d/%s hits=%d,%d,%d,%d",
		r.ID, r.Seed, r.Events, r.Requests,
		r.Resp.N, hex(r.Resp.Mean),
		r.Read.N, hex(r.Read.Mean),
		r.Write.N, hex(r.Write.Mean),
		r.ReadHits, r.ReadMisses, r.WriteHits, r.WriteMisses)
}

// groupKey returns the record's group key (params minus the seed axis).
func (r *RunRecord) groupKey() string { return paramKey(r.Params, true) }
