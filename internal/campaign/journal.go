package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalSchemaVersion identifies the journal's JSONL format: line 1 is
// a header object ({"schema", "name", "spec_hash"}), every following
// line one RunRecord.
const JournalSchemaVersion = "raidsim-campaign/1"

// journalHeader is the first line of every journal file.
type journalHeader struct {
	Schema   string `json:"schema"`
	Name     string `json:"name"`
	SpecHash uint64 `json:"spec_hash,omitempty"`
}

// Journal is an append-only JSONL record of completed runs, the unit of
// campaign resumability: every finished run is appended under its
// stable ID, and a restarted campaign skips the IDs already present. A
// torn final line (the process died mid-append) is ignored on load, so
// a crashed campaign resumes from its last complete record.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]RunRecord
	torn int
}

// OpenJournal opens (or creates) the journal at path for campaign name
// with the given spec hash. An existing journal must carry the same
// schema, name and hash — a mismatch means the file belongs to a
// different campaign or an edited grid, and appending to it would merge
// incompatible runs.
func OpenJournal(path, name string, specHash uint64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, done: make(map[string]RunRecord)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(journalHeader{Schema: JournalSchemaVersion, Name: name, SpecHash: specHash})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if err := j.load(name, specHash); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the existing journal, verifying the header and indexing
// complete records.
func (j *Journal) load(name string, specHash uint64) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return fmt.Errorf("campaign: journal %s: missing header", j.path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("campaign: journal %s: bad header: %w", j.path, err)
	}
	if hdr.Schema != JournalSchemaVersion {
		return fmt.Errorf("campaign: journal %s has schema %q, want %q", j.path, hdr.Schema, JournalSchemaVersion)
	}
	if hdr.Name != name {
		return fmt.Errorf("campaign: journal %s belongs to campaign %q, not %q — pick a fresh journal path", j.path, hdr.Name, name)
	}
	if hdr.SpecHash != 0 && specHash != 0 && hdr.SpecHash != specHash {
		return fmt.Errorf("campaign: journal %s was written by a different parameter grid (spec hash %x, want %x) — the grid edit re-keys runs; start a fresh journal", j.path, hdr.SpecHash, specHash)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			// A torn tail from a crash mid-append; everything before it
			// is intact, so resume from there.
			j.torn++
			continue
		}
		j.done[rec.ID] = rec
	}
	return sc.Err()
}

// Done returns the completed records keyed by run ID. The map is the
// journal's live index; callers must not mutate it.
func (j *Journal) Done() map[string]RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// TornLines reports how many unparsable (torn or foreign) lines the
// load skipped.
func (j *Journal) TornLines() int { return j.torn }

// Append journals one completed run. Records are flushed line-at-a-time
// so the journal never holds more than one torn record after a crash.
func (j *Journal) Append(rec RunRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	j.done[rec.ID] = rec
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }
