package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"raidsim/internal/array"
	"raidsim/internal/campaign/shard"
	"raidsim/internal/core"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/specio"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// SpecVersion is the versioned header campaign spec files may carry.
// It is optional (older spec files predate it) but validated when
// present.
const SpecVersion = "raidsim-campaign/1"

// Spec is a declarative parameter grid: the cross product of every
// axis below, replicated Seeds times with derived per-run seeds. Zero
// or empty fields take the defaults documented on each; fixed (non-axis)
// knobs apply to every run. Load one from JSON with LoadSpec or build
// it programmatically and call Points.
type Spec struct {
	// Version is the optional "spec" header; SpecVersion when present.
	Version string `json:"spec,omitempty"`
	// Name identifies the campaign (journal header, report titles).
	Name string `json:"name"`

	// Traces lists the workloads to sweep: built-in names (trace1,
	// trace2, dss, diurnal) or .json workload-spec paths; default
	// trace2. Scale shrinks the generated traces (default 0.1; the
	// arrival rate — the operating point — is preserved), and Speeds
	// multiplies the arrival rate (default {1}).
	Traces []string  `json:"traces,omitempty"`
	Scale  float64   `json:"scale,omitempty"`
	Speeds []float64 `json:"speeds,omitempty"`

	// Orgs lists the organizations to sweep; required.
	Orgs []string `json:"orgs"`
	// N lists data disks per array; default {10}.
	N []int `json:"n,omitempty"`
	// CacheMB lists per-array NV cache sizes; 0 means non-cached.
	// Default {0}.
	CacheMB []int `json:"cache_mb,omitempty"`
	// StripingUnit lists striping units in blocks; 0 means the
	// organization's default. Default {0}.
	StripingUnit []int `json:"striping_unit,omitempty"`

	// Seeds is the number of replications per grid cell (>= 1, default
	// 1); Seed is the campaign base seed every per-run seed derives
	// from (default 1).
	Seeds int    `json:"seeds,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`

	// Sync is a fixed parity-sync policy for every run ("" = the
	// organization default).
	Sync string `json:"sync,omitempty"`
	// ObsWindowS arms the windowed observability recorder in every run
	// at this window width in seconds (0 = off); per-run series merge
	// into the fleet series via Options.OnResult consumers.
	ObsWindowS float64 `json:"obs_window_s,omitempty"`
	// Workers is the default worker-pool width for this spec (0 =
	// GOMAXPROCS); command-line flags override it.
	Workers int `json:"workers,omitempty"`
}

// LoadSpec reads a Spec from a JSON file, rejecting unknown fields so
// a typoed axis name fails instead of silently sweeping nothing.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	if err := specio.Load(path, specio.Header{Want: SpecVersion}, &s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpec decodes a Spec from JSON with the same strict key and
// header checking as LoadSpec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	if err := specio.Parse(r, "campaign spec", specio.Header{Want: SpecVersion}, &s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// fill applies the documented defaults in place.
func (s *Spec) fill() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if len(s.Traces) == 0 {
		s.Traces = []string{"trace2"}
	}
	if s.Scale <= 0 {
		s.Scale = 0.1
	}
	if len(s.Speeds) == 0 {
		s.Speeds = []float64{1}
	}
	if len(s.N) == 0 {
		s.N = []int{10}
	}
	if len(s.CacheMB) == 0 {
		s.CacheMB = []int{0}
	}
	if len(s.StripingUnit) == 0 {
		s.StripingUnit = []int{0}
	}
	if s.Seeds <= 0 {
		s.Seeds = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// Validate reports spec errors (unknown organizations, traces, bad
// ranges) without expanding the grid.
func (s Spec) Validate() error {
	s.fill()
	if len(s.Orgs) == 0 {
		return fmt.Errorf("campaign: spec needs at least one organization in orgs")
	}
	for _, o := range s.Orgs {
		if _, err := array.ParseOrg(o); err != nil {
			return err
		}
	}
	for _, name := range s.Traces {
		if err := validateTrace(name); err != nil {
			return err
		}
	}
	if s.Sync != "" {
		if _, err := array.ParseSyncPolicy(s.Sync); err != nil {
			return err
		}
	}
	for _, n := range s.N {
		if n < 2 {
			return fmt.Errorf("campaign: n %d out of range (need >= 2)", n)
		}
	}
	for _, mb := range s.CacheMB {
		if mb < 0 {
			return fmt.Errorf("campaign: negative cache_mb %d", mb)
		}
	}
	for _, su := range s.StripingUnit {
		if su < 0 {
			return fmt.Errorf("campaign: negative striping_unit %d", su)
		}
	}
	for _, sp := range s.Speeds {
		if sp <= 0 {
			return fmt.Errorf("campaign: speed %g out of range (need > 0)", sp)
		}
	}
	return nil
}

// Size returns the number of runs the spec expands to.
func (s Spec) Size() int {
	s.fill()
	return len(s.Traces) * len(s.Speeds) * len(s.Orgs) * len(s.N) *
		len(s.CacheMB) * len(s.StripingUnit) * s.Seeds
}

// validateTrace checks a traces-axis entry: a built-in profile name, a
// built-in spec name, or a .json workload-spec path (loaded and
// validated without generating).
func validateTrace(name string) error {
	switch name {
	case "trace1", "trace2", "dss":
		return nil
	}
	sp, err := workload.Resolve(name)
	if err != nil {
		return fmt.Errorf("campaign: trace %q: %w", name, err)
	}
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("campaign: trace %q: %w", name, err)
	}
	return nil
}

// Points expands the grid into runs, in deterministic nested-loop order
// (trace, speed, org, n, cache, striping unit, seed — slowest axis
// first). Each point's ID is its sorted axis assignment; its seed
// derives from the base seed keyed on that ID, so editing the grid
// never reseeds surviving runs. Traces are generated once per
// (trace, speed) pair and shared across points.
func (s Spec) Points() ([]Point, error) {
	s.fill()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var syncPol array.SyncPolicy
	if s.Sync != "" {
		syncPol, _ = array.ParseSyncPolicy(s.Sync)
	}
	traces := make(map[string]*trace.Trace)
	getTrace := func(name string, speed float64) (*trace.Trace, error) {
		key := fmt.Sprintf("%s@%g", name, speed)
		if t, ok := traces[key]; ok {
			return t, nil
		}
		base, ok := traces[name+"@1"]
		if !ok {
			var err error
			base, err = workload.ResolveTrace(name, s.Scale)
			if err != nil {
				return nil, fmt.Errorf("campaign: generating %s: %w", name, err)
			}
			traces[name+"@1"] = base
		}
		if speed == 1 {
			return base, nil
		}
		t, err := base.Scale(speed)
		if err != nil {
			return nil, fmt.Errorf("campaign: scaling %s to %gx: %w", name, speed, err)
		}
		traces[key] = t
		return t, nil
	}

	var out []Point
	for _, tn := range s.Traces {
		for _, speed := range s.Speeds {
			tr, err := getTrace(tn, speed)
			if err != nil {
				return nil, err
			}
			for _, orgName := range s.Orgs {
				org, err := array.ParseOrg(orgName)
				if err != nil {
					return nil, err
				}
				for _, n := range s.N {
					for _, mb := range s.CacheMB {
						for _, su := range s.StripingUnit {
							for rep := 0; rep < s.Seeds; rep++ {
								params := map[string]string{
									"trace": tn,
									"org":   org.String(),
									"n":     fmt.Sprintf("%d", n),
									"cache": fmt.Sprintf("%d", mb),
									seedKey: fmt.Sprintf("%d", rep),
								}
								if speed != 1 {
									params["speed"] = fmt.Sprintf("%g", speed)
								}
								if su != 0 {
									params["su"] = fmt.Sprintf("%d", su)
								}
								id := paramKey(params, false)

								cfg := core.DefaultConfig(org)
								cfg.DataDisks = tr.NumDisks
								cfg.N = n
								if mb > 0 {
									cfg.Cached = true
									cfg.CacheMB = mb
								}
								// mb == 0 leaves DefaultConfig's choice: non-cached,
								// except RAID4, which the model only studies cached.
								if su > 0 {
									cfg.StripingUnit = su
								}
								if s.Sync != "" {
									cfg.Sync = syncPol
								}
								if s.ObsWindowS > 0 {
									cfg.Obs = obs.Config{Window: sim.Time(s.ObsWindowS * float64(sim.Second))}
								}
								// One run = one engine: the campaign pool owns
								// cross-run parallelism, so arrays within a run
								// simulate sequentially.
								cfg.Workers = 1
								cfg.Seed = shard.SeedFor(s.Seed, id)
								out = append(out, Point{ID: id, Params: params, Config: cfg, Trace: tr})
							}
						}
					}
				}
			}
		}
	}
	sortPointsStable(out)
	return out, nil
}

// sortPointsStable orders points by ID so the expanded grid has one
// canonical order regardless of axis nesting; execution order then
// matches journal-replay and merge order.
func sortPointsStable(ps []Point) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// Hash fingerprints the grid-defining fields of the spec; journals
// store it so a resume against an edited grid that would re-key runs is
// refused instead of silently mixing results. Name, Workers and
// rendering knobs are excluded — they don't affect run identity. For
// .json workload-spec traces the referenced file's content is part of
// the fingerprint, so editing the workload also invalidates resumes.
func (s Spec) Hash() uint64 {
	s.fill()
	var traceSpecs []string
	for _, name := range s.Traces {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(name)
		if err != nil {
			raw = []byte("unreadable: " + err.Error())
		}
		traceSpecs = append(traceSpecs, fmt.Sprintf("%s=%d", name, shard.SeedFor(0xdeed, string(raw))))
	}
	canon := struct {
		Traces     []string
		TraceSpecs []string
		Scale      float64
		Speeds     []float64
		Orgs       []string
		N          []int
		CacheMB    []int
		SU         []int
		Seeds      int
		Seed       uint64
		Sync       string
		ObsS       float64
	}{s.Traces, traceSpecs, s.Scale, s.Speeds, s.Orgs, s.N, s.CacheMB, s.StripingUnit, s.Seeds, s.Seed, s.Sync, s.ObsWindowS}
	raw, _ := json.Marshal(canon)
	return shard.SeedFor(0xcafe, string(raw))
}
