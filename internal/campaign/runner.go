package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"raidsim/internal/campaign/shard"
	"raidsim/internal/core"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

// Options configures Execute.
type Options struct {
	// Workers caps concurrent runs; 0 means GOMAXPROCS. Each run
	// simulates on its own engine, so worker count never changes
	// results — only wall-clock time.
	Workers int
	// Journal, when set, makes the campaign resumable: points whose ID
	// the journal already holds are replayed from it instead of
	// simulated, and every fresh completion is appended.
	Journal *Journal
	// OnResult, when set, observes every fresh (non-replayed) run with
	// its full results, in completion order. Calls are serialized; i is
	// the point's index in the input slice.
	OnResult func(i int, p Point, res *core.Results)
	// OnProgress, when set, receives a one-line note as each run
	// finishes (serialized, completion order).
	OnProgress func(done, total int, p Point)
	// Context cancels the campaign between runs; nil means Background.
	// Completed runs are already journaled, so a canceled campaign
	// resumes where it stopped.
	Context context.Context

	// Live, when set, receives fleet telemetry as the campaign runs:
	// SetFleet on entry, RunStarted/RunFinished per point, worker
	// occupancy as completions land, so an HTTP introspection server
	// sees the campaign in flight. Pure observation — the registry never
	// feeds back into execution.
	Live *obs.Live
	// RunLog, when set, receives one structured entry per point
	// (executed, resumed, or failed) alongside the journal.
	RunLog *RunLog
	// SelfMetrics arms per-run engine metering (core.Config.SelfMetrics)
	// so records in Live, the run log, and Outcome.Engine carry engine
	// self-metrics. Metered runs are bit-identical to unmetered ones.
	SelfMetrics bool
	// Shards sets core.Config.Shards on every point: each run executes
	// its arrays on that many persistent per-shard engines instead of one
	// throwaway engine per array. Provably never changes results; per-run
	// per-shard meters aggregate into Outcome.EngineShards and the live
	// registry. 0 keeps the per-array model.
	Shards int
}

// Outcome is what a campaign execution produced: one record per point
// in input order (journal-replayed or freshly run; nil Params-less
// zero records never appear — a failed run leaves a zero ID and its
// error in Errors).
type Outcome struct {
	Records []RunRecord
	// Errors[i] is the failure of points[i] ("" = success). Failed runs
	// are not journaled, so a resume retries them.
	Errors []string
	// Executed counts runs actually simulated (not journal-replayed);
	// Skipped counts journal replays.
	Executed, Skipped int
	// Events sums simulated engine events across executed runs.
	Events uint64
	// Elapsed is the wall-clock time of the Execute call.
	Elapsed time.Duration
	// Workers is the pool's per-worker accounting (tasks, steals, busy
	// time); nil when every point was journal-replayed.
	Workers []shard.WorkerStats
	// Engine aggregates engine self-metrics across executed runs; zero
	// unless Options.SelfMetrics was set or Options.Shards armed the
	// always-on per-shard meters.
	Engine sim.MeterStats
	// EngineShards aggregates each run's per-shard meters element-wise
	// (shard s across all executed runs); nil unless Options.Shards > 0.
	EngineShards []sim.MeterStats
}

// Failed returns the non-empty error strings.
func (o *Outcome) Failed() []string {
	var out []string
	for _, e := range o.Errors {
		if e != "" {
			out = append(out, e)
		}
	}
	return out
}

// Execute runs every point not already present in the journal on the
// worker pool and returns one record per point. Per-run failures (an
// overloaded config that never drains, a canceled context) are
// reported per point rather than aborting the sweep; structural
// problems (duplicate IDs) fail immediately.
func Execute(points []Point, opts Options) (*Outcome, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(points))
	for _, p := range points {
		if p.ID == "" {
			return nil, fmt.Errorf("campaign: point with empty ID")
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("campaign: duplicate run ID %q", p.ID)
		}
		seen[p.ID] = true
	}

	opts.Live.SetFleet(len(points))
	out := &Outcome{
		Records: make([]RunRecord, len(points)),
		Errors:  make([]string, len(points)),
	}
	var pending []int
	if opts.Journal != nil {
		done := opts.Journal.Done()
		for i, p := range points {
			if rec, ok := done[p.ID]; ok {
				out.Records[i] = rec
				out.Skipped++
				opts.Live.RunFinished(runStatus(p, rec, "resumed"))
				if opts.RunLog != nil {
					if err := opts.RunLog.Append(runLogEntry(p, rec, "resumed", -1, "", sim.MeterStats{})); err != nil {
						return nil, err
					}
				}
			} else {
				pending = append(pending, i)
			}
		}
	} else {
		pending = make([]int, len(points))
		for i := range pending {
			pending[i] = i
		}
	}

	start := time.Now()
	var mu sync.Mutex
	finished := out.Skipped
	// workerTasks tracks completions per worker for the live registry;
	// the pool's own stats (steals, busy time) replace it when the pool
	// returns. Sized the way shard.MapStats sizes its pool.
	var workerTasks []int
	if len(pending) > 0 {
		n := opts.Workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > len(pending) {
			n = len(pending)
		}
		workerTasks = make([]int, n)
	}
	stats := shard.MapStats(opts.Workers, len(pending), func(worker, pi int) {
		i := pending[pi]
		p := points[i]
		if err := ctx.Err(); err != nil {
			msg := fmt.Sprintf("%s: canceled: %v", p.ID, err)
			out.Errors[i] = msg
			finishRun(opts, &mu, p, RunRecord{}, "failed", worker, msg, sim.MeterStats{})
			return
		}
		opts.Live.RunStarted(p.ID, paramKey(p.Params, true), p.Config.Seed, worker)
		cfg := p.Config
		cfg.SelfMetrics = opts.SelfMetrics
		if opts.Shards > 0 {
			cfg.Shards = opts.Shards
		}
		t0 := time.Now()
		res, err := core.RunContext(ctx, cfg, p.Trace)
		if err != nil {
			msg := fmt.Sprintf("%s: %v", p.ID, err)
			out.Errors[i] = msg
			finishRun(opts, &mu, p, RunRecord{}, "failed", worker, msg, sim.MeterStats{})
			return
		}
		rec := NewRecord(p, res, float64(time.Since(t0))/float64(time.Millisecond))
		mu.Lock()
		defer mu.Unlock()
		if opts.Journal != nil {
			if err := opts.Journal.Append(rec); err != nil {
				out.Errors[i] = fmt.Sprintf("%s: %v", p.ID, err)
				return
			}
		}
		out.Records[i] = rec
		out.Executed++
		out.Events += res.Events
		out.Engine.Add(res.Engine)
		for s, ms := range res.EngineShards {
			if s >= len(out.EngineShards) {
				out.EngineShards = append(out.EngineShards, make([]sim.MeterStats, s+1-len(out.EngineShards))...)
			}
			out.EngineShards[s].Add(ms)
		}
		finished++
		opts.Live.RunFinished(runStatusMetered(p, rec, "done", worker, res.Engine))
		opts.Live.AddShards(res.EngineShards)
		if workerTasks != nil {
			workerTasks[worker]++
			opts.Live.PublishWorkers(liveWorkers(workerTasks))
		}
		if opts.RunLog != nil {
			if err := opts.RunLog.Append(runLogEntry(p, rec, "executed", worker, "", res.Engine)); err != nil {
				out.Errors[i] = fmt.Sprintf("%s: %v", p.ID, err)
				return
			}
		}
		if opts.OnResult != nil {
			opts.OnResult(i, p, res)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(finished, len(points), p)
		}
	})
	out.Elapsed = time.Since(start)
	out.Workers = stats
	opts.Live.PublishWorkers(shardWorkers(stats))
	return out, nil
}

// finishRun records a failed point in the live registry and run log,
// serialized under the completion mutex.
func finishRun(opts Options, mu *sync.Mutex, p Point, rec RunRecord, state string, worker int, errMsg string, m sim.MeterStats) {
	if opts.Live == nil && opts.RunLog == nil {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	st := runStatus(p, rec, state)
	st.Worker = worker
	st.Err = errMsg
	opts.Live.RunFinished(st)
	if opts.RunLog != nil {
		// A failed append here has nowhere better to go than the log's
		// own error on Close; the run's primary error is already recorded.
		_ = opts.RunLog.Append(runLogEntry(p, rec, state, worker, errMsg, m))
	}
}

// runStatus converts a point and its record into the live registry's
// run-status form.
func runStatus(p Point, rec RunRecord, state string) obs.RunStatus {
	return obs.RunStatus{
		ID:       p.ID,
		Group:    paramKey(p.Params, true),
		Seed:     p.Config.Seed,
		State:    state,
		WallMS:   rec.ElapsedMS,
		Events:   rec.Events,
		Requests: rec.Requests,
		MeanMS:   rec.Resp.Mean,
	}
}

func runStatusMetered(p Point, rec RunRecord, state string, worker int, m sim.MeterStats) obs.RunStatus {
	st := runStatus(p, rec, state)
	st.Worker = worker
	if m.WallNS > 0 {
		st.EventsPerSec = m.EventsPerSec()
	}
	return st
}

// runLogEntry converts a completed point into its run-log form.
func runLogEntry(p Point, rec RunRecord, outcome string, worker int, errMsg string, m sim.MeterStats) RunLogEntry {
	return RunLogEntry{
		ID:       p.ID,
		Seed:     p.Config.Seed,
		Group:    paramKey(p.Params, true),
		Worker:   worker,
		Outcome:  outcome,
		Err:      errMsg,
		WallMS:   rec.ElapsedMS,
		Events:   rec.Events,
		Requests: rec.Requests,
		MeanMS:   rec.Resp.Mean,
		Engine:   m,
	}
}

// liveWorkers renders the in-flight task counters for the registry.
func liveWorkers(tasks []int) []obs.WorkerStatus {
	out := make([]obs.WorkerStatus, len(tasks))
	for w, n := range tasks {
		out[w] = obs.WorkerStatus{Worker: w, Tasks: n}
	}
	return out
}

// shardWorkers converts the pool's final per-worker stats.
func shardWorkers(stats []shard.WorkerStats) []obs.WorkerStatus {
	if len(stats) == 0 {
		return nil
	}
	out := make([]obs.WorkerStatus, len(stats))
	for i, st := range stats {
		out[i] = obs.WorkerStatus{Worker: st.Worker, Tasks: st.Tasks, Steals: st.Steals, BusyNS: int64(st.Busy)}
	}
	return out
}
