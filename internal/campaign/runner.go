package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"raidsim/internal/campaign/shard"
	"raidsim/internal/core"
)

// Options configures Execute.
type Options struct {
	// Workers caps concurrent runs; 0 means GOMAXPROCS. Each run
	// simulates on its own engine, so worker count never changes
	// results — only wall-clock time.
	Workers int
	// Journal, when set, makes the campaign resumable: points whose ID
	// the journal already holds are replayed from it instead of
	// simulated, and every fresh completion is appended.
	Journal *Journal
	// OnResult, when set, observes every fresh (non-replayed) run with
	// its full results, in completion order. Calls are serialized; i is
	// the point's index in the input slice.
	OnResult func(i int, p Point, res *core.Results)
	// OnProgress, when set, receives a one-line note as each run
	// finishes (serialized, completion order).
	OnProgress func(done, total int, p Point)
	// Context cancels the campaign between runs; nil means Background.
	// Completed runs are already journaled, so a canceled campaign
	// resumes where it stopped.
	Context context.Context
}

// Outcome is what a campaign execution produced: one record per point
// in input order (journal-replayed or freshly run; nil Params-less
// zero records never appear — a failed run leaves a zero ID and its
// error in Errors).
type Outcome struct {
	Records []RunRecord
	// Errors[i] is the failure of points[i] ("" = success). Failed runs
	// are not journaled, so a resume retries them.
	Errors []string
	// Executed counts runs actually simulated (not journal-replayed);
	// Skipped counts journal replays.
	Executed, Skipped int
	// Events sums simulated engine events across executed runs.
	Events uint64
	// Elapsed is the wall-clock time of the Execute call.
	Elapsed time.Duration
}

// Failed returns the non-empty error strings.
func (o *Outcome) Failed() []string {
	var out []string
	for _, e := range o.Errors {
		if e != "" {
			out = append(out, e)
		}
	}
	return out
}

// Execute runs every point not already present in the journal on the
// worker pool and returns one record per point. Per-run failures (an
// overloaded config that never drains, a canceled context) are
// reported per point rather than aborting the sweep; structural
// problems (duplicate IDs) fail immediately.
func Execute(points []Point, opts Options) (*Outcome, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(points))
	for _, p := range points {
		if p.ID == "" {
			return nil, fmt.Errorf("campaign: point with empty ID")
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("campaign: duplicate run ID %q", p.ID)
		}
		seen[p.ID] = true
	}

	out := &Outcome{
		Records: make([]RunRecord, len(points)),
		Errors:  make([]string, len(points)),
	}
	var pending []int
	if opts.Journal != nil {
		done := opts.Journal.Done()
		for i, p := range points {
			if rec, ok := done[p.ID]; ok {
				out.Records[i] = rec
				out.Skipped++
			} else {
				pending = append(pending, i)
			}
		}
	} else {
		pending = make([]int, len(points))
		for i := range pending {
			pending[i] = i
		}
	}

	start := time.Now()
	var mu sync.Mutex
	finished := out.Skipped
	shard.Map(opts.Workers, len(pending), func(pi int) {
		i := pending[pi]
		p := points[i]
		if err := ctx.Err(); err != nil {
			out.Errors[i] = fmt.Sprintf("%s: canceled: %v", p.ID, err)
			return
		}
		t0 := time.Now()
		res, err := core.RunContext(ctx, p.Config, p.Trace)
		if err != nil {
			out.Errors[i] = fmt.Sprintf("%s: %v", p.ID, err)
			return
		}
		rec := NewRecord(p, res, float64(time.Since(t0))/float64(time.Millisecond))
		mu.Lock()
		defer mu.Unlock()
		if opts.Journal != nil {
			if err := opts.Journal.Append(rec); err != nil {
				out.Errors[i] = fmt.Sprintf("%s: %v", p.ID, err)
				return
			}
		}
		out.Records[i] = rec
		out.Executed++
		out.Events += res.Events
		finished++
		if opts.OnResult != nil {
			opts.OnResult(i, p, res)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(finished, len(points), p)
		}
	})
	out.Elapsed = time.Since(start)
	return out, nil
}
