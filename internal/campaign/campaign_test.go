package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"raidsim/internal/campaign/shard"
)

// testSpec is small enough to execute in tests: 2 orgs x 2 seeds on a
// heavily scaled-down trace2.
func testSpec() Spec {
	return Spec{
		Name:  "test",
		Scale: 0.02,
		Orgs:  []string{"raid5", "mirror"},
		N:     []int{5},
		Seeds: 2,
		Seed:  7,
	}
}

func TestSpecPointsAreStableAndSeedKeyed(t *testing.T) {
	s := testSpec()
	a, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != s.Size() || len(a) != 4 {
		t.Fatalf("expanded %d points, want %d", len(a), s.Size())
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Config.Seed != b[i].Config.Seed {
			t.Fatalf("expansion not stable at %d: %s/%d vs %s/%d",
				i, a[i].ID, a[i].Config.Seed, b[i].ID, b[i].Config.Seed)
		}
		if a[i].Config.Seed != shard.SeedFor(s.Seed, a[i].ID) {
			t.Errorf("%s: seed %d not derived from the ID", a[i].ID, a[i].Config.Seed)
		}
		if a[i].Config.Workers != 1 {
			t.Errorf("%s: per-run Workers = %d, want 1 (pool owns parallelism)", a[i].ID, a[i].Config.Workers)
		}
	}

	// Growing the grid must not re-key or reseed surviving runs.
	grown := s
	grown.N = []int{5, 10}
	g, err := grown.Points()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]uint64)
	for _, p := range g {
		byID[p.ID] = p.Config.Seed
	}
	for _, p := range a {
		seed, ok := byID[p.ID]
		if !ok {
			t.Errorf("grid growth dropped run %s", p.ID)
		} else if seed != p.Config.Seed {
			t.Errorf("grid growth reseeded %s: %d -> %d", p.ID, p.Config.Seed, seed)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for _, bad := range []Spec{
		{},                                     // no orgs
		{Orgs: []string{"raid9"}},              // unknown org
		{Orgs: []string{"raid5"}, N: []int{1}}, // N too small
		{Orgs: []string{"raid5"}, Traces: []string{"trace9"}},
		{Orgs: []string{"raid5"}, Speeds: []float64{0}},
		{Orgs: []string{"raid5"}, CacheMB: []int{-1}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"orgs":["raid5"],"cache_sizes":[16]}`))
	if err == nil {
		t.Fatal("typoed axis name accepted")
	}
}

func TestSpecHashTracksGridNotName(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.Name = "renamed"
	b.Workers = 8
	if a.Hash() != b.Hash() {
		t.Error("name/workers changed the grid hash")
	}
	c := testSpec()
	c.Seeds = 3
	if a.Hash() == c.Hash() {
		t.Error("grid edit kept the hash")
	}
}

// executeSpec runs the test spec and returns the outcome.
func executeSpec(t *testing.T, s Spec, opts Options) *Outcome {
	t.Helper()
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	if failed := out.Failed(); len(failed) > 0 {
		t.Fatalf("runs failed: %v", failed)
	}
	return out
}

// TestWorkerCountInvariance is the campaign determinism contract: the
// same spec on 1 worker and on N workers yields bit-identical per-run
// fingerprints and a bit-identical merged fleet.
func TestWorkerCountInvariance(t *testing.T) {
	s := testSpec()
	base := executeSpec(t, s, Options{Workers: 1})
	want := make(map[string]string, len(base.Records))
	for i := range base.Records {
		want[base.Records[i].ID] = base.Records[i].Fingerprint()
	}
	baseFleet, err := Merge(base.Records)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		out := executeSpec(t, s, Options{Workers: w})
		for i := range out.Records {
			r := &out.Records[i]
			if got := r.Fingerprint(); got != want[r.ID] {
				t.Errorf("workers=%d: run %s diverged:\n got %s\nwant %s", w, r.ID, got, want[r.ID])
			}
		}
		fleet, err := Merge(out.Records)
		if err != nil {
			t.Fatal(err)
		}
		if fleet.Fingerprint() != baseFleet.Fingerprint() {
			t.Errorf("workers=%d: merged fleet diverged:\n got %s\nwant %s",
				w, fleet.Fingerprint(), baseFleet.Fingerprint())
		}
	}
}

// TestMergeIsOrderIndependent: merging a permuted record slice must give
// the identical fleet, bit for bit.
func TestMergeIsOrderIndependent(t *testing.T) {
	out := executeSpec(t, testSpec(), Options{Workers: 1})
	want, err := Merge(out.Records)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]RunRecord, 0, len(out.Records))
	for i := len(out.Records) - 1; i >= 0; i-- {
		perm = append(perm, out.Records[i])
	}
	got, err := Merge(perm)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("merge depends on record order:\n got %s\nwant %s", got.Fingerprint(), want.Fingerprint())
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	s := testSpec()
	j, err := OpenJournal(path, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	out := executeSpec(t, s, Options{Workers: 2, Journal: j})
	if out.Executed != 4 || out.Skipped != 0 {
		t.Fatalf("executed %d skipped %d, want 4/0", out.Executed, out.Skipped)
	}
	j.Close()

	// Reopen: everything replays, nothing executes, fingerprints match.
	j2, err := OpenJournal(path, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	out2 := executeSpec(t, s, Options{Workers: 2, Journal: j2})
	if out2.Executed != 0 || out2.Skipped != 4 {
		t.Fatalf("resume executed %d skipped %d, want 0/4", out2.Executed, out2.Skipped)
	}
	for i := range out.Records {
		if out.Records[i].Fingerprint() != out2.Records[i].Fingerprint() {
			t.Errorf("replayed record %s diverged from live run", out.Records[i].ID)
		}
	}
}

func TestJournalRefusesForeignCampaign(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := OpenJournal(path, "alpha", 101)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "beta", 101); err == nil {
		t.Error("journal accepted a different campaign name")
	}
	if _, err := OpenJournal(path, "alpha", 202); err == nil {
		t.Error("journal accepted a different spec hash")
	}
	if _, err := OpenJournal(path, "alpha", 101); err != nil {
		t.Errorf("matching reopen failed: %v", err)
	}
}

// TestResumeAfterTruncation is the interruption story end to end: run M
// runs, truncate the journal back to K complete records (plus a torn
// half-line, as a crash mid-append would leave), restart, and require
// that exactly M-K runs execute and the merged report is bit-identical
// to the uninterrupted one.
func TestResumeAfterTruncation(t *testing.T) {
	s := testSpec()
	s.N = []int{5, 10} // M = 8 runs
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := OpenJournal(path, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	full := executeSpec(t, s, Options{Workers: 2, Journal: j})
	if full.Executed != 8 {
		t.Fatalf("executed %d, want 8", full.Executed)
	}
	j.Close()
	wantFleet, err := Merge(full.Records)
	if err != nil {
		t.Fatal(err)
	}

	// Keep the header and the first K=3 records, then simulate a crash
	// mid-append with a torn half-record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	const keep = 3
	truncated := strings.Join(lines[:1+keep], "") + `{"id":"cache=0/n=10/org=rai`
	if err := os.WriteFile(path, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.TornLines() != 1 {
		t.Errorf("torn lines = %d, want 1", j2.TornLines())
	}
	resumed := executeSpec(t, s, Options{Workers: 2, Journal: j2})
	if resumed.Executed != 8-keep || resumed.Skipped != keep {
		t.Fatalf("resume executed %d skipped %d, want %d/%d", resumed.Executed, resumed.Skipped, 8-keep, keep)
	}
	gotFleet, err := Merge(resumed.Records)
	if err != nil {
		t.Fatal(err)
	}
	if gotFleet.Fingerprint() != wantFleet.Fingerprint() {
		t.Errorf("resumed fleet diverged from uninterrupted run:\n got %s\nwant %s",
			gotFleet.Fingerprint(), wantFleet.Fingerprint())
	}
}

func TestExecuteRejectsDuplicateIDs(t *testing.T) {
	s := testSpec()
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	points[1] = points[0]
	if _, err := Execute(points, Options{Workers: 1}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestSelectPairsGroups(t *testing.T) {
	out := executeSpec(t, testSpec(), Options{Workers: 1})
	fleet, err := Merge(out.Records)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fleet.Select("org=raid5")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 {
		t.Fatalf("selected %d groups, want 1", len(a))
	}
	for k, g := range a {
		if strings.Contains(k, "org=") {
			t.Errorf("residual key %q still carries the selector axis", k)
		}
		if g.Runs != 2 {
			t.Errorf("group has %d runs, want 2", g.Runs)
		}
	}
	if _, err := fleet.Select("org"); err == nil {
		t.Error("malformed selector accepted")
	}
}
