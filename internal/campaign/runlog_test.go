package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// writeRunLog writes a header plus n entries and returns the path.
func writeRunLog(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "runlog.jsonl")
	rl, err := OpenRunLog(path, "torn-test")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := rl.Append(RunLogEntry{
			ID: string(rune('a' + i)), Seed: uint64(i + 1), Worker: i % 2,
			Outcome: "executed", WallMS: 1.5, Events: 1000, Requests: 100, MeanMS: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadRunLogTornTail is the crash-recovery round trip: a process
// killed mid-append leaves a partial final line, and the reader must
// salvage every complete record and report the tear instead of refusing
// the whole file (the pre-fix behavior).
func TestReadRunLogTornTail(t *testing.T) {
	path := writeRunLog(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the last record: strip the trailing
	// newline plus a dozen bytes of the final JSON object.
	if err := os.WriteFile(path, raw[:len(raw)-13], 0o644); err != nil {
		t.Fatal(err)
	}

	name, entries, torn, err := ReadRunLog(path)
	if err != nil {
		t.Fatalf("torn tail must not fail the read: %v", err)
	}
	if name != "torn-test" {
		t.Errorf("name %q, want torn-test", name)
	}
	if len(entries) != 2 {
		t.Fatalf("salvaged %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].ID != "a" || entries[1].ID != "b" {
		t.Errorf("salvaged wrong entries: %+v", entries)
	}
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
	// The salvage still summarizes.
	if tot := SummarizeRunLog(entries); tot.Executed != 2 || tot.Events != 2000 {
		t.Errorf("salvaged totals: %+v", tot)
	}
}

// TestReadRunLogClean pins the no-damage path: a cleanly closed log
// reads back whole with zero torn lines.
func TestReadRunLogClean(t *testing.T) {
	path := writeRunLog(t, 3)
	name, entries, torn, err := ReadRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "torn-test" || len(entries) != 3 || torn != 0 {
		t.Errorf("clean read: name=%q entries=%d torn=%d", name, len(entries), torn)
	}
}

// TestReadRunLogBadHeader: tolerance does not extend to the header —
// without one the file is not a run log.
func TestReadRunLogBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.jsonl")
	if err := os.WriteFile(path, []byte("{\"schema\":\"other/9\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadRunLog(path); err == nil {
		t.Fatal("wrong-schema header must error")
	}
}
