package campaign

import (
	"path/filepath"
	"testing"

	"raidsim/internal/obs"
)

// TestExecuteTelemetry runs a campaign with the full telemetry surface
// armed — live registry, run log, self-metrics — and checks the three
// views agree with the outcome and with each other, then resumes from
// the journal and checks replays are logged as "resumed".
func TestExecuteTelemetry(t *testing.T) {
	s := testSpec()
	points, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Telemetry must not perturb results: fingerprints match a bare run.
	bare := executeSpec(t, s, Options{Workers: 1})

	live := obs.NewLive()
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(jpath, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	rlPath := filepath.Join(dir, "runlog.jsonl")
	rl, err := OpenRunLog(rlPath, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	out := executeSpec(t, s, Options{
		Workers: 2, Journal: j, Live: live, RunLog: rl, SelfMetrics: true,
	})
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	for i := range out.Records {
		if got, want := out.Records[i].Fingerprint(), bare.Records[i].Fingerprint(); got != want {
			t.Errorf("telemetry changed run %s:\n got: %s\nwant: %s", points[i].ID, got, want)
		}
	}
	if out.Engine.Events != out.Events {
		t.Errorf("aggregate meter saw %d events, outcome reports %d", out.Engine.Events, out.Events)
	}
	if out.Engine.WallNS <= 0 || out.Engine.HeapHighWater <= 0 {
		t.Errorf("aggregate meter not populated: %+v", out.Engine)
	}
	var poolTasks int
	for _, w := range out.Workers {
		poolTasks += w.Tasks
	}
	if poolTasks != len(points) {
		t.Errorf("pool stats cover %d tasks, want %d", poolTasks, len(points))
	}

	// Live registry agrees.
	f := live.Fleet()
	if f.Total != len(points) || f.Finished != len(points) || f.Failed != 0 || f.Resumed != 0 {
		t.Errorf("fleet status: %+v", f)
	}
	if f.Events != out.Events {
		t.Errorf("fleet events %d, outcome %d", f.Events, out.Events)
	}
	if len(live.Runs()) != len(points) {
		t.Errorf("registry tracks %d runs, want %d", len(live.Runs()), len(points))
	}
	// 2 orgs × 1 N → 2 groups of 2 seeds each.
	if len(f.Groups) != 2 || f.Groups[0].Runs != 2 {
		t.Errorf("fleet groups: %+v", f.Groups)
	}
	if len(f.Workers) == 0 {
		t.Errorf("no worker occupancy published")
	}

	// Run log replays to the same fleet totals as the journal.
	name, entries, torn, err := ReadRunLog(rlPath)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Errorf("clean run log reports %d torn lines", torn)
	}
	if name != s.Name {
		t.Errorf("run log names campaign %q, want %q", name, s.Name)
	}
	tot := SummarizeRunLog(entries)
	if tot.Executed != len(points) || tot.Resumed != 0 || tot.Failed != 0 {
		t.Errorf("run log totals: %+v", tot)
	}
	if tot.Events != out.Events {
		t.Errorf("run log events %d, outcome %d", tot.Events, out.Events)
	}
	var reqs int64
	for _, rec := range out.Records {
		reqs += rec.Requests
	}
	if tot.Requests != reqs {
		t.Errorf("run log requests %d, journal %d", tot.Requests, reqs)
	}
	for _, e := range entries {
		if e.Engine.Events == 0 || e.Engine.WallNS <= 0 {
			t.Errorf("%s: entry missing self-metrics: %+v", e.ID, e.Engine)
		}
		if e.Worker < 0 || e.Worker > 1 {
			t.Errorf("%s: worker %d out of pool range", e.ID, e.Worker)
		}
	}

	// Resume: everything replays; the fresh run log records it as such.
	j2, err := OpenJournal(jpath, s.Name, s.Hash())
	if err != nil {
		t.Fatal(err)
	}
	rl2, err := OpenRunLog(rlPath, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	live2 := obs.NewLive()
	out2 := executeSpec(t, s, Options{Workers: 2, Journal: j2, Live: live2, RunLog: rl2})
	if err := rl2.Close(); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if out2.Executed != 0 || out2.Skipped != len(points) {
		t.Fatalf("resume executed %d, skipped %d", out2.Executed, out2.Skipped)
	}
	if _, entries2, _, err := ReadRunLog(rlPath); err != nil {
		t.Fatal(err)
	} else {
		tot2 := SummarizeRunLog(entries2)
		if tot2.Resumed != len(points) || tot2.Executed != 0 {
			t.Errorf("resumed run log totals: %+v", tot2)
		}
		// Replays carry the journaled outcome, so fleet totals survive.
		if tot2.Events != out.Events || tot2.Requests != reqs {
			t.Errorf("resumed run log events/requests %d/%d, want %d/%d",
				tot2.Events, tot2.Requests, out.Events, reqs)
		}
	}
	if f2 := live2.Fleet(); f2.Resumed != len(points) || f2.Events != out.Events {
		t.Errorf("resumed fleet status: %+v", f2)
	}
}
