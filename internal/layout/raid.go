package layout

import "fmt"

// RAID5 interleaves data across n+1 disks in units of su blocks, with the
// parity unit of each stripe rotating over the disks (Figure 1 of the
// paper). A stripe holds n data units plus one parity unit, all at the
// same per-disk offset.
type RAID5 struct {
	n       int   // data disks' worth of capacity
	su      int64 // striping unit, blocks
	stripes int64 // stripes on the array
	bpd     int64
}

// NewRAID5 builds a RAID5 layout with capacity n*bpd (rounded down to
// whole stripes) and striping unit su blocks.
func NewRAID5(n int, bpd int64, su int) *RAID5 {
	if n < 2 {
		panic("layout: RAID5 needs at least 2 data disks")
	}
	if bpd <= 0 || su <= 0 {
		panic("layout: RAID5 needs positive size and striping unit")
	}
	if int64(su) > bpd {
		panic(fmt.Sprintf("layout: striping unit %d exceeds disk size %d", su, bpd))
	}
	return &RAID5{n: n, su: int64(su), stripes: bpd / int64(su), bpd: bpd}
}

// Disks implements DataLayout.
func (r *RAID5) Disks() int { return r.n + 1 }

// DataBlocks implements DataLayout.
func (r *RAID5) DataBlocks() int64 { return r.stripes * int64(r.n) * r.su }

// StripeWidth implements ParityLayout.
func (r *RAID5) StripeWidth() int { return r.n }

// StripingUnit returns the striping unit in blocks.
func (r *RAID5) StripingUnit() int { return int(r.su) }

// decompose splits l into (stripe, data-unit index within stripe, offset
// within unit).
func (r *RAID5) decompose(l int64) (stripe, unit, off int64) {
	u := l / r.su
	return u / int64(r.n), u % int64(r.n), l % r.su
}

// Map implements DataLayout: within stripe s the parity unit sits on disk
// s mod (n+1) and the n data units fill the remaining disks in order.
func (r *RAID5) Map(l int64) Loc {
	checkRange(l, r.DataBlocks())
	stripe, unit, off := r.decompose(l)
	p := int(stripe % int64(r.n+1))
	d := int(unit)
	if d >= p {
		d++
	}
	return Loc{Disk: d, Block: stripe*r.su + off}
}

// Parity implements ParityLayout.
func (r *RAID5) Parity(l int64) Loc {
	checkRange(l, r.DataBlocks())
	stripe, _, off := r.decompose(l)
	p := int(stripe % int64(r.n+1))
	return Loc{Disk: p, Block: stripe*r.su + off}
}

// StripeMembers implements ParityLayout: the n data blocks at the same
// unit offset in the same stripe.
func (r *RAID5) StripeMembers(l int64) []int64 {
	checkRange(l, r.DataBlocks())
	stripe, _, off := r.decompose(l)
	out := make([]int64, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, (stripe*int64(r.n)+int64(i))*r.su+off)
	}
	return out
}

// RAID4 is RAID5 with the parity fixed on the last disk (Figure 2).
type RAID4 struct {
	n       int
	su      int64
	stripes int64
	bpd     int64
}

// NewRAID4 builds a RAID4 layout with capacity n*bpd (rounded down to
// whole stripes) and striping unit su blocks. Disk n is the parity disk.
func NewRAID4(n int, bpd int64, su int) *RAID4 {
	if n < 2 {
		panic("layout: RAID4 needs at least 2 data disks")
	}
	if bpd <= 0 || su <= 0 {
		panic("layout: RAID4 needs positive size and striping unit")
	}
	if int64(su) > bpd {
		panic(fmt.Sprintf("layout: striping unit %d exceeds disk size %d", su, bpd))
	}
	return &RAID4{n: n, su: int64(su), stripes: bpd / int64(su), bpd: bpd}
}

// Disks implements DataLayout.
func (r *RAID4) Disks() int { return r.n + 1 }

// ParityDisk returns the index of the dedicated parity disk.
func (r *RAID4) ParityDisk() int { return r.n }

// DataBlocks implements DataLayout.
func (r *RAID4) DataBlocks() int64 { return r.stripes * int64(r.n) * r.su }

// StripeWidth implements ParityLayout.
func (r *RAID4) StripeWidth() int { return r.n }

// StripingUnit returns the striping unit in blocks.
func (r *RAID4) StripingUnit() int { return int(r.su) }

func (r *RAID4) decompose(l int64) (stripe, unit, off int64) {
	u := l / r.su
	return u / int64(r.n), u % int64(r.n), l % r.su
}

// Map implements DataLayout.
func (r *RAID4) Map(l int64) Loc {
	checkRange(l, r.DataBlocks())
	stripe, unit, off := r.decompose(l)
	return Loc{Disk: int(unit), Block: stripe*r.su + off}
}

// Parity implements ParityLayout.
func (r *RAID4) Parity(l int64) Loc {
	checkRange(l, r.DataBlocks())
	stripe, _, off := r.decompose(l)
	return Loc{Disk: r.n, Block: stripe*r.su + off}
}

// StripeMembers implements ParityLayout.
func (r *RAID4) StripeMembers(l int64) []int64 {
	checkRange(l, r.DataBlocks())
	stripe, _, off := r.decompose(l)
	out := make([]int64, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, (stripe*int64(r.n)+int64(i))*r.su+off)
	}
	return out
}

var (
	_ ParityLayout = (*RAID5)(nil)
	_ ParityLayout = (*RAID4)(nil)
)
