package layout_test

import (
	"fmt"

	"raidsim/internal/layout"
)

// ExampleRAID5 shows the rotated-parity geometry of Figure 1: within each
// stripe the parity block moves to the next disk.
func ExampleRAID5() {
	lay := layout.NewRAID5(3, 12, 1) // 3 data disks' capacity + 1, unit = 1 block
	for l := int64(0); l < 6; l++ {
		d := lay.Map(l)
		p := lay.Parity(l)
		fmt.Printf("block %d -> disk %d (parity on disk %d)\n", l, d.Disk, p.Disk)
	}
	// Output:
	// block 0 -> disk 1 (parity on disk 0)
	// block 1 -> disk 2 (parity on disk 0)
	// block 2 -> disk 3 (parity on disk 0)
	// block 3 -> disk 0 (parity on disk 1)
	// block 4 -> disk 2 (parity on disk 1)
	// block 5 -> disk 3 (parity on disk 1)
}

// ExampleParityStriping shows Gray et al.'s organization: data stays
// contiguous on each disk, parity lives in a reserved area elsewhere.
func ExampleParityStriping() {
	lay := layout.NewParityStriping(3, 16, layout.EndPlacement, 0)
	for _, l := range []int64{0, 1, 12} { // first blocks of disks 0 and 1
		d := lay.Map(l)
		p := lay.Parity(l)
		fmt.Printf("block %2d -> disk %d block %d, parity disk %d\n", l, d.Disk, d.Block, p.Disk)
	}
	// Output:
	// block  0 -> disk 0 block 0, parity disk 1
	// block  1 -> disk 0 block 1, parity disk 1
	// block 12 -> disk 1 block 0, parity disk 2
}

// ExampleRAID4 shows the dedicated parity disk.
func ExampleRAID4() {
	lay := layout.NewRAID4(4, 20, 1)
	fmt.Println("parity disk:", lay.ParityDisk())
	fmt.Println("parity of block 7 on disk:", lay.Parity(7).Disk)
	// Output:
	// parity disk: 4
	// parity of block 7 on disk: 4
}
