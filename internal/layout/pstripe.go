package layout

import "fmt"

// Placement selects where the parity area sits on each disk of a Parity
// Striping array (section 4.2.3 of the paper).
type Placement int

// Parity area placements.
const (
	// MiddlePlacement puts the parity area on the center cylinders, the
	// placement Gray et al. recommend for write-heavy loads.
	MiddlePlacement Placement = iota
	// EndPlacement puts the parity area on the last cylinders, keeping
	// data areas contiguous — better when reads dominate and N is small.
	EndPlacement
)

func (p Placement) String() string {
	if p == EndPlacement {
		return "end"
	}
	return "middle"
}

// ParityStriping implements Gray et al.'s organization (Figure 3): each of
// the N+1 disks is divided into N+1 areas of A blocks; one area per disk
// holds parity and the rest hold data written contiguously (no
// interleaving). Data area areaIdx of disk d belongs to parity group
// g = (d + 1 + areaIdx) mod (N+1), whose parity lives in the parity area
// of disk g — so every group's N data areas sit on N distinct disks, none
// of them disk g.
//
// ParityStripeUnit enables the fine-grained variant the paper sketches in
// section 4.2.1: area membership rotates every ParityStripeUnit blocks
// (group g = (d + 1 + ((areaIdx + off/unit) mod N)) mod (N+1)), so a hot
// data area spreads its parity-update load over all other disks instead
// of hammering a single parity disk, while data addresses — and therefore
// seek affinity — are untouched. A unit >= A (the default) reduces to
// classic parity striping.
type ParityStriping struct {
	n         int   // data-disk equivalents; array has n+1 drives
	area      int64 // A: blocks per area
	bpd       int64
	placement Placement
	pUnit     int64 // parity striping sub-unit, blocks
}

// NewParityStriping builds a parity striping layout over n+1 disks of bpd
// blocks. parityStripeUnit <= 0 selects the classic (whole-area) variant.
func NewParityStriping(n int, bpd int64, placement Placement, parityStripeUnit int64) *ParityStriping {
	if n < 2 {
		panic("layout: parity striping needs at least 2 data disks")
	}
	if bpd < int64(n+1) {
		panic(fmt.Sprintf("layout: %d blocks cannot hold %d areas", bpd, n+1))
	}
	area := bpd / int64(n+1)
	if parityStripeUnit <= 0 || parityStripeUnit > area {
		parityStripeUnit = area
	}
	return &ParityStriping{n: n, area: area, bpd: bpd, placement: placement, pUnit: parityStripeUnit}
}

// Disks implements DataLayout.
func (ps *ParityStriping) Disks() int { return ps.n + 1 }

// DataBlocks implements DataLayout.
func (ps *ParityStriping) DataBlocks() int64 {
	return int64(ps.n+1) * int64(ps.n) * ps.area
}

// StripeWidth implements ParityLayout.
func (ps *ParityStriping) StripeWidth() int { return ps.n }

// AreaBlocks returns A, the size of each area in blocks.
func (ps *ParityStriping) AreaBlocks() int64 { return ps.area }

// paritySlot returns which of the N+1 area slots on a disk holds parity.
func (ps *ParityStriping) paritySlot() int64 {
	if ps.placement == EndPlacement {
		return int64(ps.n)
	}
	return int64(ps.n+1) / 2
}

// decompose splits l into (disk, data area index, offset within area).
func (ps *ParityStriping) decompose(l int64) (d, areaIdx, off int64) {
	perDisk := int64(ps.n) * ps.area
	d = l / perDisk
	o := l % perDisk
	return d, o / ps.area, o % ps.area
}

// group returns the parity group (== parity disk) of a data block.
func (ps *ParityStriping) group(d, areaIdx, off int64) int64 {
	j := off / ps.pUnit
	return (d + 1 + (areaIdx+j)%int64(ps.n)) % int64(ps.n+1)
}

// Map implements DataLayout: data fills the non-parity area slots of each
// disk in order, so logical addresses on one disk are physically
// contiguous except for the skipped parity area.
func (ps *ParityStriping) Map(l int64) Loc {
	checkRange(l, ps.DataBlocks())
	d, areaIdx, off := ps.decompose(l)
	slot := areaIdx
	if slot >= ps.paritySlot() {
		slot++
	}
	return Loc{Disk: int(d), Block: slot*ps.area + off}
}

// Parity implements ParityLayout.
func (ps *ParityStriping) Parity(l int64) Loc {
	checkRange(l, ps.DataBlocks())
	d, areaIdx, off := ps.decompose(l)
	g := ps.group(d, areaIdx, off)
	return Loc{Disk: int(g), Block: ps.paritySlot()*ps.area + off}
}

// StripeMembers implements ParityLayout: the blocks at the same area
// offset in the group's member areas, one per disk other than the parity
// holder.
func (ps *ParityStriping) StripeMembers(l int64) []int64 {
	checkRange(l, ps.DataBlocks())
	d, areaIdx, off := ps.decompose(l)
	g := ps.group(d, areaIdx, off)
	j := off / ps.pUnit
	perDisk := int64(ps.n) * ps.area
	out := make([]int64, 0, ps.n)
	for dd := int64(0); dd <= int64(ps.n); dd++ {
		if dd == g {
			continue
		}
		// Solve (dd + 1 + (ai+j) mod N) ≡ g (mod N+1) for ai.
		k := (g - dd - 1) % int64(ps.n+1)
		if k < 0 {
			k += int64(ps.n + 1)
		}
		ai := (k - j) % int64(ps.n)
		if ai < 0 {
			ai += int64(ps.n)
		}
		out = append(out, dd*perDisk+ai*ps.area+off)
	}
	return out
}

var _ ParityLayout = (*ParityStriping)(nil)
