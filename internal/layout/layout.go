// Package layout maps an array's logical block space onto physical disks
// for each organization the paper compares: Base (independent disks),
// Mirror, RAID5 (block-interleaved, rotated parity), RAID4 (dedicated
// parity disk), and Parity Striping (contiguous data, per-disk parity
// areas), including the fine-grained parity-striping variant the paper
// proposes as future work.
//
// All layouts address one array. A layout built with n "logical" disks of
// bpd blocks each exposes DataBlocks() logical blocks (possibly slightly
// fewer than n*bpd when striping or area division doesn't divide evenly)
// and Disks() physical drives.
package layout

import "fmt"

// Loc is a physical block address within an array.
type Loc struct {
	Disk  int   // physical disk index within the array
	Block int64 // block number on that disk
}

// DataLayout maps logical data blocks to physical locations.
type DataLayout interface {
	// Disks returns the number of physical disks in the array.
	Disks() int
	// DataBlocks returns the number of addressable logical blocks.
	DataBlocks() int64
	// Map returns the physical home of logical block l. It panics if l
	// is out of [0, DataBlocks()).
	Map(l int64) Loc
}

// ParityLayout is a DataLayout with redundancy: each logical block has a
// parity block, shared with the other members of its stripe.
type ParityLayout interface {
	DataLayout
	// Parity returns the location of the parity block protecting l.
	Parity(l int64) Loc
	// StripeWidth returns the number of data blocks per parity block.
	StripeWidth() int
	// StripeMembers returns the logical blocks (including l) whose XOR is
	// stored at Parity(l). Members whose logical address falls outside
	// [0, DataBlocks()) are omitted.
	StripeMembers(l int64) []int64
}

// MirrorLayout is a DataLayout where every block has a second copy.
type MirrorLayout interface {
	DataLayout
	// Alt returns the location of the mirror copy of l.
	Alt(l int64) Loc
}

func checkRange(l, n int64) {
	if l < 0 || l >= n {
		panic(fmt.Sprintf("layout: logical block %d outside [0,%d)", l, n))
	}
}

// Base is n independent disks with no redundancy.
type Base struct {
	n   int
	bpd int64
}

// NewBase returns a Base layout over n disks of bpd blocks.
func NewBase(n int, bpd int64) *Base {
	if n <= 0 || bpd <= 0 {
		panic("layout: Base needs positive disks and blocks")
	}
	return &Base{n: n, bpd: bpd}
}

// Disks implements DataLayout.
func (b *Base) Disks() int { return b.n }

// DataBlocks implements DataLayout.
func (b *Base) DataBlocks() int64 { return int64(b.n) * b.bpd }

// Map implements DataLayout.
func (b *Base) Map(l int64) Loc {
	checkRange(l, b.DataBlocks())
	return Loc{Disk: int(l / b.bpd), Block: l % b.bpd}
}

// Mirror is n logical disks, each duplicated onto a pair of physical
// disks (2n drives total).
type Mirror struct {
	n   int
	bpd int64
}

// NewMirror returns a Mirror layout over n logical disks of bpd blocks.
func NewMirror(n int, bpd int64) *Mirror {
	if n <= 0 || bpd <= 0 {
		panic("layout: Mirror needs positive disks and blocks")
	}
	return &Mirror{n: n, bpd: bpd}
}

// Disks implements DataLayout.
func (m *Mirror) Disks() int { return 2 * m.n }

// DataBlocks implements DataLayout.
func (m *Mirror) DataBlocks() int64 { return int64(m.n) * m.bpd }

// Map returns the primary copy: logical disk d lives on drives 2d, 2d+1.
func (m *Mirror) Map(l int64) Loc {
	checkRange(l, m.DataBlocks())
	return Loc{Disk: 2 * int(l/m.bpd), Block: l % m.bpd}
}

// Alt returns the secondary copy.
func (m *Mirror) Alt(l int64) Loc {
	p := m.Map(l)
	p.Disk++
	return p
}

var (
	_ DataLayout   = (*Base)(nil)
	_ MirrorLayout = (*Mirror)(nil)
)
