package layout

import "fmt"

// RAID0 interleaves data across n disks in units of su blocks with no
// redundancy — pure striping (Chen et al.'s comparison baseline, cited in
// the paper's related work). It maps like RAID5 without the parity disk.
type RAID0 struct {
	n       int
	su      int64
	stripes int64
}

// NewRAID0 builds a RAID0 layout over n disks of bpd blocks with striping
// unit su.
func NewRAID0(n int, bpd int64, su int) *RAID0 {
	if n < 2 {
		panic("layout: RAID0 needs at least 2 disks")
	}
	if bpd <= 0 || su <= 0 {
		panic("layout: RAID0 needs positive size and striping unit")
	}
	if int64(su) > bpd {
		panic(fmt.Sprintf("layout: striping unit %d exceeds disk size %d", su, bpd))
	}
	return &RAID0{n: n, su: int64(su), stripes: bpd / int64(su)}
}

// Disks implements DataLayout.
func (r *RAID0) Disks() int { return r.n }

// DataBlocks implements DataLayout.
func (r *RAID0) DataBlocks() int64 { return r.stripes * int64(r.n) * r.su }

// StripingUnit returns the striping unit in blocks.
func (r *RAID0) StripingUnit() int { return int(r.su) }

// Map implements DataLayout.
func (r *RAID0) Map(l int64) Loc {
	checkRange(l, r.DataBlocks())
	u := l / r.su
	off := l % r.su
	stripe := u / int64(r.n)
	return Loc{Disk: int(u % int64(r.n)), Block: stripe*r.su + off}
}

var _ DataLayout = (*RAID0)(nil)
