package layout

import (
	"fmt"
	"testing"
	"testing/quick"
)

// checkDataBijective verifies that Map is injective and in-bounds over
// the whole logical space.
func checkDataBijective(t *testing.T, lay DataLayout, bpd int64) map[Loc]int64 {
	t.Helper()
	seen := make(map[Loc]int64)
	for l := int64(0); l < lay.DataBlocks(); l++ {
		loc := lay.Map(l)
		if loc.Disk < 0 || loc.Disk >= lay.Disks() {
			t.Fatalf("Map(%d) disk %d out of range", l, loc.Disk)
		}
		if loc.Block < 0 || loc.Block >= bpd {
			t.Fatalf("Map(%d) block %d out of range", l, loc.Block)
		}
		if prev, dup := seen[loc]; dup {
			t.Fatalf("Map collision: %d and %d both at %+v", prev, l, loc)
		}
		seen[loc] = l
	}
	return seen
}

// checkParity verifies the ParityLayout invariants: parity on a different
// disk than the data, parity never collides with data, stripe members are
// mutually consistent and on distinct disks.
func checkParity(t *testing.T, lay ParityLayout, dataLocs map[Loc]int64) {
	t.Helper()
	width := lay.StripeWidth()
	for l := int64(0); l < lay.DataBlocks(); l++ {
		p := lay.Parity(l)
		home := lay.Map(l)
		if p.Disk == home.Disk {
			t.Fatalf("Parity(%d) on the data's own disk %d", l, p.Disk)
		}
		if other, clash := dataLocs[p]; clash {
			t.Fatalf("Parity(%d) at %+v collides with data block %d", l, p, other)
		}
		members := lay.StripeMembers(l)
		if len(members) > width {
			t.Fatalf("StripeMembers(%d): %d members exceed width %d", l, len(members), width)
		}
		foundSelf := false
		disks := map[int]bool{p.Disk: true}
		for _, m := range members {
			if m == l {
				foundSelf = true
			}
			mp := lay.Parity(m)
			if mp != p {
				t.Fatalf("StripeMembers(%d): member %d has parity %+v, want %+v", l, m, mp, p)
			}
			md := lay.Map(m).Disk
			if disks[md] {
				t.Fatalf("StripeMembers(%d): two stripe blocks on disk %d", l, md)
			}
			disks[md] = true
		}
		if !foundSelf {
			t.Fatalf("StripeMembers(%d) does not contain the block itself", l)
		}
	}
}

func TestBaseLayout(t *testing.T) {
	const n, bpd = 4, 96
	lay := NewBase(n, bpd)
	if lay.Disks() != n {
		t.Fatalf("Disks() = %d, want %d", lay.Disks(), n)
	}
	if lay.DataBlocks() != n*bpd {
		t.Fatalf("DataBlocks() = %d, want %d", lay.DataBlocks(), n*bpd)
	}
	checkDataBijective(t, lay, bpd)
	// Contiguity: consecutive logical blocks on one disk are physically
	// consecutive.
	for l := int64(0); l < lay.DataBlocks()-1; l++ {
		a, b := lay.Map(l), lay.Map(l+1)
		if a.Disk == b.Disk && b.Block != a.Block+1 {
			t.Fatalf("Base not contiguous at %d", l)
		}
	}
}

func TestRAID0Layout(t *testing.T) {
	const bpd = 240
	for _, c := range raid5Configs() {
		lay := NewRAID0(c.n, bpd, c.su)
		if lay.Disks() != c.n {
			t.Fatalf("Disks() = %d, want %d", lay.Disks(), c.n)
		}
		want := (bpd / int64(c.su)) * int64(c.n) * int64(c.su)
		if lay.DataBlocks() != want {
			t.Fatalf("DataBlocks() = %d, want %d", lay.DataBlocks(), want)
		}
		checkDataBijective(t, lay, bpd)
	}
	// Consecutive units rotate across disks.
	lay := NewRAID0(4, 240, 2)
	if lay.Map(0).Disk != 0 || lay.Map(2).Disk != 1 || lay.Map(8).Disk != 0 {
		t.Fatal("RAID0 striping order wrong")
	}
}

func TestMirrorLayout(t *testing.T) {
	const n, bpd = 3, 64
	lay := NewMirror(n, bpd)
	if lay.Disks() != 2*n {
		t.Fatalf("Disks() = %d, want %d", lay.Disks(), 2*n)
	}
	checkDataBijective(t, lay, bpd)
	for l := int64(0); l < lay.DataBlocks(); l++ {
		p, a := lay.Map(l), lay.Alt(l)
		if a.Disk != p.Disk+1 || a.Block != p.Block {
			t.Fatalf("Alt(%d) = %+v, want disk %d block %d", l, a, p.Disk+1, p.Block)
		}
		if p.Disk%2 != 0 {
			t.Fatalf("Map(%d) primary on odd disk %d", l, p.Disk)
		}
	}
}

func TestRAID10Layout(t *testing.T) {
	const bpd = 240
	for _, c := range raid5Configs() {
		lay := NewRAID10(c.n, bpd, c.su)
		if lay.Disks() != 2*c.n {
			t.Fatalf("Disks() = %d, want %d", lay.Disks(), 2*c.n)
		}
		want := (bpd / int64(c.su)) * int64(c.su) * int64(c.n)
		if lay.DataBlocks() != want {
			t.Fatalf("DataBlocks() = %d, want %d", lay.DataBlocks(), want)
		}
		checkDataBijective(t, lay, bpd)
		for l := int64(0); l < lay.DataBlocks(); l++ {
			p, a := lay.Map(l), lay.Alt(l)
			if p.Disk%2 != 0 {
				t.Fatalf("Map(%d) primary on odd disk %d", l, p.Disk)
			}
			if a.Disk != p.Disk+1 || a.Block != p.Block {
				t.Fatalf("Alt(%d) = %+v, want disk %d block %d", l, a, p.Disk+1, p.Block)
			}
		}
	}
	// Consecutive units rotate across pairs, like RAID0 across disks.
	lay := NewRAID10(4, 240, 2)
	if lay.Map(0).Disk != 0 || lay.Map(2).Disk != 2 || lay.Map(8).Disk != 0 {
		t.Fatal("RAID10 striping order wrong")
	}
}

func raid5Configs() []struct{ n, su int } {
	return []struct{ n, su int }{
		{2, 1}, {3, 1}, {4, 2}, {5, 4}, {10, 1}, {10, 8}, {7, 3},
	}
}

func TestRAID5Invariants(t *testing.T) {
	const bpd = 240
	for _, c := range raid5Configs() {
		c := c
		t.Run(fmt.Sprintf("n%d-su%d", c.n, c.su), func(t *testing.T) {
			lay := NewRAID5(c.n, bpd, c.su)
			if lay.Disks() != c.n+1 {
				t.Fatalf("Disks() = %d", lay.Disks())
			}
			want := (bpd / int64(c.su)) * int64(c.n) * int64(c.su)
			if lay.DataBlocks() != want {
				t.Fatalf("DataBlocks() = %d, want %d", lay.DataBlocks(), want)
			}
			locs := checkDataBijective(t, lay, bpd)
			checkParity(t, lay, locs)
			// Parity rotates: every disk holds some parity.
			counts := make([]int64, lay.Disks())
			seen := make(map[Loc]bool)
			for l := int64(0); l < lay.DataBlocks(); l++ {
				p := lay.Parity(l)
				if !seen[p] {
					seen[p] = true
					counts[p.Disk]++
				}
			}
			for d, cnt := range counts {
				if cnt == 0 {
					t.Errorf("disk %d holds no parity; rotation broken", d)
				}
			}
			// Balanced to within one stripe's worth.
			var min, max int64 = 1 << 62, 0
			for _, cnt := range counts {
				if cnt < min {
					min = cnt
				}
				if cnt > max {
					max = cnt
				}
			}
			if max-min > int64(c.su)*2 {
				t.Errorf("parity imbalance: min %d max %d", min, max)
			}
		})
	}
}

func TestRAID4Invariants(t *testing.T) {
	const bpd = 240
	for _, c := range raid5Configs() {
		c := c
		t.Run(fmt.Sprintf("n%d-su%d", c.n, c.su), func(t *testing.T) {
			lay := NewRAID4(c.n, bpd, c.su)
			locs := checkDataBijective(t, lay, bpd)
			checkParity(t, lay, locs)
			for l := int64(0); l < lay.DataBlocks(); l++ {
				if p := lay.Parity(l); p.Disk != lay.ParityDisk() {
					t.Fatalf("Parity(%d) on disk %d, want dedicated disk %d", l, p.Disk, lay.ParityDisk())
				}
				if home := lay.Map(l); home.Disk == lay.ParityDisk() {
					t.Fatalf("data block %d mapped to the parity disk", l)
				}
			}
		})
	}
}

func TestParityStripingInvariants(t *testing.T) {
	const bpd = 264 // divisible by several n+1 values
	for _, n := range []int{2, 3, 5, 10} {
		for _, pl := range []Placement{MiddlePlacement, EndPlacement} {
			for _, unit := range []int64{0, 4, 8} {
				n, pl, unit := n, pl, unit
				t.Run(fmt.Sprintf("n%d-%s-u%d", n, pl, unit), func(t *testing.T) {
					lay := NewParityStriping(n, bpd, pl, unit)
					locs := checkDataBijective(t, lay, bpd)
					checkParity(t, lay, locs)
					// All parity lives in each disk's parity slot.
					a := lay.AreaBlocks()
					var slot int64
					if pl == EndPlacement {
						slot = int64(n)
					} else {
						slot = int64(n+1) / 2
					}
					for l := int64(0); l < lay.DataBlocks(); l++ {
						p := lay.Parity(l)
						if p.Block < slot*a || p.Block >= (slot+1)*a {
							t.Fatalf("Parity(%d) at block %d outside parity area [%d,%d)", l, p.Block, slot*a, (slot+1)*a)
						}
						// Data never lands in the parity slot of its disk.
						home := lay.Map(l)
						if home.Block >= slot*a && home.Block < (slot+1)*a {
							t.Fatalf("data block %d inside parity area", l)
						}
					}
				})
			}
		}
	}
}

// TestParityStripingContiguity: parity striping writes data sequentially
// on each disk — physical order matches logical order except for the
// skipped parity area.
func TestParityStripingContiguity(t *testing.T) {
	lay := NewParityStriping(3, 64, MiddlePlacement, 0)
	perDisk := int64(3) * lay.AreaBlocks()
	for l := int64(0); l < lay.DataBlocks()-1; l++ {
		if (l+1)%perDisk == 0 {
			continue // next logical disk
		}
		a, b := lay.Map(l), lay.Map(l+1)
		if a.Disk != b.Disk {
			t.Fatalf("blocks %d,%d on different disks %d,%d", l, l+1, a.Disk, b.Disk)
		}
		if b.Block != a.Block+1 && b.Block != a.Block+1+lay.AreaBlocks() {
			t.Fatalf("non-sequential physical blocks %d -> %d at lba %d", a.Block, b.Block, l)
		}
	}
}

// TestFineGrainedParitySpread: with a small parity stripe unit, a single
// hot data area's parity updates spread over many disks, which is the
// point of the section 4.2.1 variant.
func TestFineGrainedParitySpread(t *testing.T) {
	const n, bpd = 5, 1200
	classic := NewParityStriping(n, bpd, MiddlePlacement, 0)
	fine := NewParityStriping(n, bpd, MiddlePlacement, 8)

	countDisks := func(lay ParityLayout) int {
		// One data area on disk 0: logical blocks [0, AreaBlocks).
		seen := make(map[int]bool)
		ps := lay.(*ParityStriping)
		for l := int64(0); l < ps.AreaBlocks(); l++ {
			seen[lay.Parity(l).Disk] = true
		}
		return len(seen)
	}
	if c := countDisks(classic); c != 1 {
		t.Errorf("classic parity striping: one area's parity on %d disks, want 1", c)
	}
	if f := countDisks(fine); f != n {
		t.Errorf("fine-grained parity striping: one area's parity on %d disks, want %d", f, n)
	}
}

// TestLayoutsOutOfRange verifies the panic contract.
func TestLayoutsOutOfRange(t *testing.T) {
	lays := []DataLayout{
		NewBase(2, 16),
		NewMirror(2, 16),
		NewRAID5(2, 16, 1),
		NewRAID4(2, 16, 1),
		NewParityStriping(2, 18, MiddlePlacement, 0),
	}
	for _, lay := range lays {
		lay := lay
		for _, l := range []int64{-1, lay.DataBlocks()} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%T.Map(%d): expected panic", lay, l)
					}
				}()
				lay.Map(l)
			}()
		}
	}
}

// TestQuickRAID5Roundtrip is a property test: for arbitrary (n, su, lba)
// the stripe-membership relation is symmetric.
func TestQuickRAID5Roundtrip(t *testing.T) {
	f := func(nRaw, suRaw uint8, lbaRaw uint32) bool {
		n := 2 + int(nRaw%9)
		su := 1 + int(suRaw%8)
		lay := NewRAID5(n, 480, su)
		lba := int64(lbaRaw) % lay.DataBlocks()
		for _, m := range lay.StripeMembers(lba) {
			found := false
			for _, mm := range lay.StripeMembers(m) {
				if mm == lba {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParityStripingMembership: same symmetry property for parity
// striping including the fine-grained variant.
func TestQuickParityStripingMembership(t *testing.T) {
	f := func(nRaw uint8, unitRaw uint8, lbaRaw uint32) bool {
		n := 2 + int(nRaw%9)
		unit := int64(unitRaw%16) * 4 // 0 = classic
		lay := NewParityStriping(n, 1320, MiddlePlacement, unit)
		lba := int64(lbaRaw) % lay.DataBlocks()
		p := lay.Parity(lba)
		for _, m := range lay.StripeMembers(lba) {
			if lay.Parity(m) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
