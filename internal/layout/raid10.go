package layout

// RAID10 is striped mirror pairs (RAID1/0): the logical space is striped
// in units of su blocks across n mirror pairs, each pair being a primary
// drive 2d and its copy 2d+1 — the same pair convention as Mirror, so the
// mirror scheme's read steering, failover and rebuild logic applies
// unchanged. Compared with Mirror it adds RAID0's load balancing; the
// physical cost (2n drives for n disks of data) is identical.
type RAID10 struct {
	n   int
	bpd int64
	su  int64
}

// NewRAID10 returns a RAID1/0 layout over n mirror pairs of bpd-block
// drives with a striping unit of su blocks.
func NewRAID10(n int, bpd int64, su int) *RAID10 {
	if n <= 0 || bpd <= 0 {
		panic("layout: RAID10 needs positive disks and blocks")
	}
	if su <= 0 {
		panic("layout: RAID10 needs a positive striping unit")
	}
	return &RAID10{n: n, bpd: bpd, su: int64(su)}
}

// Disks implements DataLayout.
func (r *RAID10) Disks() int { return 2 * r.n }

// DataBlocks implements DataLayout. Only whole stripes are addressable,
// as in RAID0.
func (r *RAID10) DataBlocks() int64 {
	stripesPerDisk := r.bpd / r.su
	return stripesPerDisk * r.su * int64(r.n)
}

// Map returns the primary copy: stripe unit u lives on pair u%n at unit
// offset u/n, and pair d occupies drives 2d, 2d+1.
func (r *RAID10) Map(l int64) Loc {
	checkRange(l, r.DataBlocks())
	u, off := l/r.su, l%r.su
	return Loc{
		Disk:  2 * int(u%int64(r.n)),
		Block: (u/int64(r.n))*r.su + off,
	}
}

// Alt returns the secondary copy.
func (r *RAID10) Alt(l int64) Loc {
	p := r.Map(l)
	p.Disk++
	return p
}

var _ MirrorLayout = (*RAID10)(nil)
