// Command tracegen synthesizes an OLTP I/O trace from a built-in
// workload or a declarative .json workload spec (optionally customized
// by flags) and writes it in the text or binary format that cmd/raidsim
// and cmd/tracestat consume. Multi-client workloads carry their class
// table through both formats.
//
// Examples:
//
//	tracegen -workload trace2 -o trace2.txt
//	tracegen -workload trace1 -scale 0.1 -format bin -o t1.bin
//	tracegen -workload trace2 -write-frac 0.5 -disk-zipf 1.2 -o hot.txt
//	tracegen -workload examples/workloads/diurnal.json -format bin -o diurnal.bin
//	tracegen -validate examples/workloads/diurnal.json
package main

import (
	"flag"
	"fmt"
	"os"

	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "", "workload: built-in name or .json spec path")
		profile   = flag.String("profile", "", "alias of -workload kept for older scripts (default trace2)")
		validate  = flag.String("validate", "", "validate a workload spec file and exit (no trace written)")
		scale     = flag.Float64("scale", 1.0, "scale requests and duration (rate preserved)")
		out       = flag.String("o", "-", "output path, - for stdout")
		format    = flag.String("format", "text", "output format: text or bin")
		seed      = flag.Uint64("seed", 0, "override the profile seed (0 = keep; built-in profiles only)")
		writeFrac = flag.Float64("write-frac", -1, "override write fraction (-1 = keep; built-in profiles only)")
		diskZipf  = flag.Float64("disk-zipf", -1, "override disk Zipf skew (-1 = keep; built-in profiles only)")
		requests  = flag.Int("requests", 0, "override request count (0 = keep; built-in profiles only)")
		disks     = flag.Int("disks", 0, "override number of logical disks (0 = keep; built-in profiles only)")
		stats     = flag.Bool("stats", false, "also print Table 2 statistics to stderr")
	)
	flag.Parse()

	if *validate != "" {
		sp, err := workload.LoadSpec(*validate)
		if err != nil {
			fatal(err)
		}
		if err := sp.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: ok (%d clients, %d disks, %.0fs horizon, time scale %g)\n",
			*validate, len(sp.Clients), sp.Disks, sp.DurationS, max(sp.TimeScale, 1))
		return
	}

	name := *wl
	if name == "" {
		name = *profile
	}
	if name == "" {
		name = "trace2"
	}

	var tr *trace.Trace
	var err error
	switch name {
	case "trace1", "trace2", "dss":
		// Built-in profiles keep the classic path and the override flags.
		var p workload.Profile
		switch name {
		case "trace1":
			p = workload.Trace1Profile()
		case "trace2":
			p = workload.Trace2Profile()
		case "dss":
			p = workload.DSSProfile()
		}
		p = p.Scaled(*scale)
		if *seed != 0 {
			p.Seed = *seed
		}
		if *writeFrac >= 0 {
			p.WriteFraction = *writeFrac
		}
		if *diskZipf >= 0 {
			p.DiskZipfTheta = *diskZipf
		}
		if *requests > 0 {
			p.Requests = *requests
		}
		if *disks > 0 {
			p.NumDisks = *disks
		}
		tr, err = workload.Generate(p)
	default:
		tr, err = workload.ResolveTrace(name, *scale)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, trace.Characterize(tr))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "bin":
		err = trace.WriteBinary(w, tr)
	default:
		err = fmt.Errorf("unknown format %q (want text or bin)", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
