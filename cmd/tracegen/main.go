// Command tracegen synthesizes an OLTP I/O trace from a built-in profile
// (optionally customized by flags) and writes it in the text or binary
// format that cmd/raidsim and cmd/tracestat consume.
//
// Examples:
//
//	tracegen -profile trace2 -o trace2.txt
//	tracegen -profile trace1 -scale 0.1 -format bin -o t1.bin
//	tracegen -profile trace2 -write-frac 0.5 -disk-zipf 1.2 -o hot.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func main() {
	var (
		profile   = flag.String("profile", "trace2", "base profile: trace1 or trace2")
		scale     = flag.Float64("scale", 1.0, "scale requests and duration (rate preserved)")
		out       = flag.String("o", "-", "output path, - for stdout")
		format    = flag.String("format", "text", "output format: text or bin")
		seed      = flag.Uint64("seed", 0, "override the profile seed (0 = keep)")
		writeFrac = flag.Float64("write-frac", -1, "override write fraction (-1 = keep)")
		diskZipf  = flag.Float64("disk-zipf", -1, "override disk Zipf skew (-1 = keep)")
		requests  = flag.Int("requests", 0, "override request count (0 = keep)")
		disks     = flag.Int("disks", 0, "override number of logical disks (0 = keep)")
		stats     = flag.Bool("stats", false, "also print Table 2 statistics to stderr")
	)
	flag.Parse()

	var p workload.Profile
	switch *profile {
	case "trace1":
		p = workload.Trace1Profile()
	case "trace2":
		p = workload.Trace2Profile()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	p = p.Scaled(*scale)
	if *seed != 0 {
		p.Seed = *seed
	}
	if *writeFrac >= 0 {
		p.WriteFraction = *writeFrac
	}
	if *diskZipf >= 0 {
		p.DiskZipfTheta = *diskZipf
	}
	if *requests > 0 {
		p.Requests = *requests
	}
	if *disks > 0 {
		p.NumDisks = *disks
	}

	tr, err := workload.Generate(p)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, trace.Characterize(tr))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "bin":
		err = trace.WriteBinary(w, tr)
	default:
		err = fmt.Errorf("unknown format %q (want text or bin)", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
