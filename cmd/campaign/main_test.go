package main

import (
	"strings"
	"testing"

	"raidsim/internal/obs"
)

// TestProgressSuffixAllReplay: a campaign resumed from a complete
// journal replays every run without simulating anything. There is no
// fresh-execution rate to extrapolate from, so the suffix must stay
// empty — not divide replayed events by replay microseconds.
func TestProgressSuffixAllReplay(t *testing.T) {
	f := obs.FleetStatus{
		Total:   4,
		Resumed: 4,
		// The replay pass folded a million recorded events into the
		// wall-clock rate over a 2 ms replay: the absurd figure the
		// suffix must not print.
		Events:       1_000_000,
		EventsPerSec: 5e8,
		ElapsedSec:   0.002,
	}
	if s := progressSuffix(f, 4, 4); s != "" {
		t.Errorf("all-replay resume printed %q, want no suffix", s)
	}
}

// TestProgressSuffixOneFreshRun: a mostly-replayed resume with one fresh
// run finished. The ETA must extrapolate from the fresh execution clock
// (0.5 s/run), not the campaign clock that has been running since before
// the replay pass — and the ev/s figure must come from fresh events
// only, not the journal's replayed totals.
func TestProgressSuffixOneFreshRun(t *testing.T) {
	f := obs.FleetStatus{
		Total:    8,
		Finished: 1,
		Resumed:  3,
		// Campaign-clock view (poisoned by replays + startup): 60 s
		// elapsed, 1.2 M mostly-replayed events.
		Events:       1_200_000,
		EventsPerSec: 20_000,
		ElapsedSec:   60,
		// Fresh-execution view: one run, 50 k events, half a second.
		FreshEvents:       50_000,
		FreshEventsPerSec: 100_000,
		ExecElapsedSec:    0.5,
	}
	got := progressSuffix(f, 4, 8)
	want := " — 100000 ev/s, eta 2s"
	if got != want {
		t.Errorf("one-fresh resume suffix = %q, want %q", got, want)
	}
	for _, bad := range []string{"Inf", "NaN", "-"} {
		if strings.Contains(got, bad) {
			t.Errorf("suffix %q contains %q", got, bad)
		}
	}
	// The same status with 240 remaining runs must scale linearly and
	// stay finite.
	long := progressSuffix(f, 4, 244)
	if want := " — 100000 ev/s, eta 120s"; long != want {
		t.Errorf("long-remaining suffix = %q, want %q", long, want)
	}
}

// TestProgressSuffixNoFreshClock: a finished count without an execution
// clock (pathological registry state) must not divide by zero.
func TestProgressSuffixNoFreshClock(t *testing.T) {
	f := obs.FleetStatus{Total: 4, Finished: 1, ElapsedSec: 3}
	if s := progressSuffix(f, 1, 4); s != "" {
		t.Errorf("zero ExecElapsedSec printed %q, want no suffix", s)
	}
}
