// Command campaign executes a fleet-scale parameter sweep described by a
// JSON spec file: the cross product of organization, array size, cache
// size and workload knobs, replicated over seeds, sharded across a
// worker pool, and journaled so an interrupted campaign resumes where it
// stopped. Summary and A-vs-B comparison tables go to stdout (and are
// deterministic — fit for golden-file diffs); progress and timing go to
// stderr.
//
// Examples:
//
//	campaign -spec sweep.json -out sweep.jsonl
//	campaign -spec sweep.json -out sweep.jsonl -workers 8
//	campaign -spec sweep.json -a org=raid5 -b org=mirror
//	campaign -spec sweep.json -csv > groups.csv
//	campaign -spec sweep.json -out sweep.jsonl -runlog sweep.runs.jsonl -self-metrics
//	campaign -spec sweep.json -http :9090 -http-hold 1m
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"raidsim/internal/campaign"
	"raidsim/internal/core"
	"raidsim/internal/obs"
	"raidsim/internal/report"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "campaign spec file (JSON); required")
		out       = flag.String("out", "", "JSONL journal path; completed runs are appended and a restart resumes (empty = run in memory)")
		fresh     = flag.Bool("fresh", false, "discard an existing journal instead of resuming from it")
		workers   = flag.Int("workers", 0, "worker-pool width (0 = spec's workers, then GOMAXPROCS); never changes results")
		shards    = flag.Int("shards", 0, "per-run engine shards: each run's arrays execute on this many persistent engines (0 = one throwaway engine per array); never changes results")
		csv       = flag.Bool("csv", false, "render tables as CSV")
		aSel      = flag.String("a", "", "comparison baseline selector, e.g. org=raid5 (with -b)")
		bSel      = flag.String("b", "", "comparison candidate selector, e.g. org=mirror (with -a)")
		seriesOut = flag.String("series-out", "", "write the merged fleet time series as CSV (needs obs_window_s in the spec)")
		quiet     = flag.Bool("q", false, "suppress per-run progress on stderr")

		httpAddr    = flag.String("http", "", "serve live campaign introspection (/metrics, /runs, /healthz, pprof) on this address, e.g. :9090")
		httpHold    = flag.Duration("http-hold", 0, "keep the introspection server up this long after the campaign finishes")
		runlogPath  = flag.String("runlog", "", "write a structured execution log (raidsim-runlog/1 JSONL) alongside the journal; truncated each execution")
		selfMetrics = flag.Bool("self-metrics", false, "meter each run's engine (events/sec, heap depth, allocations); never changes results")
	)
	flag.Parse()
	if *specPath == "" {
		fatal(fmt.Errorf("campaign: -spec is required"))
	}
	if (*aSel == "") != (*bSel == "") {
		fatal(fmt.Errorf("campaign: -a and -b must be given together"))
	}

	spec, err := campaign.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	points, err := spec.Points()
	if err != nil {
		fatal(err)
	}

	// The fleet registry is always armed: the progress line reads it for
	// ETA and throughput even when no HTTP server is serving it.
	live := obs.NewLive()
	opts := campaign.Options{Workers: *workers, Shards: *shards, Live: live, SelfMetrics: *selfMetrics}
	if opts.Workers == 0 {
		opts.Workers = spec.Workers
	}
	var srv *obs.Server
	if *httpAddr != "" {
		srv, err = obs.Serve(*httpAddr, live)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "campaign: introspection on http://%s (/metrics /runs /healthz /debug/pprof/)\n", srv.Addr)
	}
	var runlog *campaign.RunLog
	if *runlogPath != "" {
		runlog, err = campaign.OpenRunLog(*runlogPath, spec.Name)
		if err != nil {
			fatal(err)
		}
		opts.RunLog = runlog
	}
	if *out != "" {
		if *fresh {
			if err := os.Remove(*out); err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
		}
		j, err := campaign.OpenJournal(*out, spec.Name, spec.Hash())
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		opts.Journal = j
	}
	if !*quiet {
		opts.OnProgress = func(done, total int, p campaign.Point) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", done, total, p.ID, progressSuffix(live.Fleet(), done, total))
		}
	}
	var series *obs.Series
	if *seriesOut != "" {
		opts.OnResult = func(_ int, _ campaign.Point, res *core.Results) {
			if res.Series == nil {
				return
			}
			if series == nil {
				series = res.Series
			} else {
				series.Merge(res.Series)
			}
		}
	}

	outcome, err := campaign.Execute(points, opts)
	if err != nil {
		fatal(err)
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	sec := outcome.Elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "%s: %d runs (%d executed, %d resumed) in %.1fs on %d workers",
		spec.Name, len(points), outcome.Executed, outcome.Skipped, sec, w)
	if outcome.Executed > 0 && sec > 0 {
		fmt.Fprintf(os.Stderr, " — %.1f runs/s, %.0f events/s", float64(outcome.Executed)/sec, float64(outcome.Events)/sec)
	}
	fmt.Fprintln(os.Stderr)
	for _, e := range outcome.Failed() {
		fmt.Fprintf(os.Stderr, "failed: %s\n", e)
	}
	if !*quiet {
		// The fleet table goes to stderr with the rest of the timing:
		// stdout is reserved for the deterministic result tables.
		if ft := report.FleetTable("fleet execution", fleetStats(outcome, len(points))); ft != nil {
			if *selfMetrics {
				ft.AddNote("engine: " + outcome.Engine.String())
			}
			if err := ft.Render(os.Stderr); err != nil {
				fatal(err)
			}
		}
	}
	if runlog != nil {
		if err := runlog.Close(); err != nil {
			fatal(err)
		}
	}

	fleet, err := campaign.Merge(outcome.Records)
	if err != nil {
		fatal(err)
	}
	if err := render(fleet, spec, *csv); err != nil {
		fatal(err)
	}
	if *aSel != "" {
		if err := compare(fleet, *aSel, *bSel, *csv); err != nil {
			fatal(err)
		}
	} else if len(spec.Orgs) == 2 {
		// The common two-organization sweep compares itself.
		if err := compare(fleet, "org="+spec.Orgs[0], "org="+spec.Orgs[1], *csv); err != nil {
			fatal(err)
		}
	}
	if *seriesOut != "" {
		if series == nil {
			fmt.Fprintln(os.Stderr, "campaign: no time series collected (set obs_window_s in the spec; resumed runs carry none)")
		} else {
			f, err := os.Create(*seriesOut)
			if err != nil {
				fatal(err)
			}
			if err := series.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if srv != nil {
		if *httpHold > 0 {
			fmt.Fprintf(os.Stderr, "campaign: holding introspection server for %s\n", *httpHold)
			time.Sleep(*httpHold)
		}
		srv.Close()
	}
	if len(outcome.Failed()) > 0 {
		os.Exit(1)
	}
}

// progressSuffix annotates the per-run progress line with the fleet
// registry's live view: engine events/sec and an ETA, both computed
// purely from fresh executions. Journal replays finish in microseconds
// before execution starts, so folding them into either basis is the
// classic resume bug: replayed events over replay time print absurd
// ev/s, and an elapsed clock that started before the replay pass
// inflates the per-run estimate the ETA extrapolates. FreshEvents /
// ExecElapsedSec (measured from the first fresh run) and the fresh-only
// remaining count (total - done counts only never-run points — replays
// complete before any fresh run finishes) keep both honest.
func progressSuffix(f obs.FleetStatus, done, total int) string {
	if f.Finished == 0 || f.ExecElapsedSec <= 0 {
		return ""
	}
	s := fmt.Sprintf(" — %.0f ev/s", f.FreshEventsPerSec)
	if rem := total - done; rem > 0 {
		s += fmt.Sprintf(", eta %.0fs", f.ExecElapsedSec/float64(f.Finished)*float64(rem))
	}
	return s
}

// fleetStats translates a campaign outcome into the report layer's
// fleet-summary shape (report stays ignorant of the campaign package's
// types; this is the one place the two vocabularies meet).
func fleetStats(o *campaign.Outcome, runs int) report.FleetStats {
	f := report.FleetStats{
		Runs:     runs,
		Executed: o.Executed,
		Resumed:  o.Skipped,
		Failed:   len(o.Failed()),
		Events:   o.Events,
		WallNS:   o.Elapsed.Nanoseconds(),
	}
	for _, w := range o.Workers {
		f.BusyNS += int64(w.Busy)
		f.Workers = append(f.Workers, report.WorkerRow{
			Worker: w.Worker, Tasks: w.Tasks, Steals: w.Steals, BusyNS: int64(w.Busy),
		})
	}
	for s, m := range o.EngineShards {
		f.Shards = append(f.Shards, report.ShardRow{Shard: s, Events: m.Events, BusyNS: m.WallNS})
	}
	return f
}

// render writes the per-group summary table.
func render(f *campaign.Fleet, spec campaign.Spec, csv bool) error {
	t := &report.Table{
		Title:   fmt.Sprintf("%s: %d runs, %d groups", spec.Name, f.Runs, len(f.Groups)),
		Columns: []string{"group", "runs", "mean (ms)", "p50", "p95", "p99"},
	}
	for i := range f.Groups {
		g := &f.Groups[i]
		t.AddRow(g.Key, fmt.Sprintf("%d", g.Runs), est(g.Estimate()).String(),
			fmt.Sprintf("%.2f", g.Resp.Quantile(0.5)),
			fmt.Sprintf("%.2f", g.Resp.Quantile(0.95)),
			fmt.Sprintf("%.2f", g.Resp.Quantile(0.99)))
	}
	return emit(t, csv)
}

// compare renders the benchstat-style A-vs-B table, pairing groups by
// the params left over once the selectors are stripped.
func compare(f *campaign.Fleet, aSel, bSel string, csv bool) error {
	a, err := f.Select(aSel)
	if err != nil {
		return err
	}
	b, err := f.Select(bSel)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return fmt.Errorf("campaign: selectors %q and %q share no comparable groups", aSel, bSel)
	}
	rows := make([]report.CompareRow, 0, len(keys))
	for _, k := range keys {
		name := k
		if name == "" {
			name = "(all)"
		}
		rows = append(rows, report.CompareRow{Name: name, A: est(a[k].Estimate()), B: est(b[k].Estimate())})
	}
	t := report.CompareTable(fmt.Sprintf("mean response time: %s vs %s", aSel, bSel), "ms", aSel, bSel, rows)
	return emit(t, csv)
}

func est(e campaign.Estimate) report.Estimate {
	return report.Estimate{Mean: e.Mean, Half: e.Half, N: e.N}
}

func emit(t *report.Table, csv bool) error {
	if csv {
		return t.RenderCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
