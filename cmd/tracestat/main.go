// Command tracestat prints Table 2-style characteristics of a trace file
// (or a built-in profile), including the per-disk access distribution
// behind Figure 6.
//
// Examples:
//
//	tracestat t1.bin
//	tracestat -per-disk t2.txt
//	tracestat -profile trace1 -scale 0.1
//	tracestat -spans spans.json
package main

import (
	"flag"
	"fmt"
	"os"

	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func main() {
	var (
		profile  = flag.String("profile", "", "analyze a built-in profile instead of a file")
		scale    = flag.Float64("scale", 1.0, "scale for -profile")
		perDisk  = flag.Bool("per-disk", false, "print the per-disk access histogram")
		analyze  = flag.Bool("analyze", false, "print arrival/locality/spatial analysis")
		hitCurve = flag.Bool("hit-curve", false, "print the predicted hit-ratio curve from stack distances")
		spans    = flag.Bool("spans", false, "analyze a span export from raidsim -trace-spans (Chrome JSON, or CSV by .csv suffix)")
	)
	flag.Parse()

	if *spans {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: tracestat -spans <spans.json|spans.csv>"))
		}
		runSpans(flag.Arg(0))
		return
	}

	var tr *trace.Trace
	var err error
	switch {
	case *profile != "":
		var p workload.Profile
		switch *profile {
		case "trace1":
			p = workload.Trace1Profile()
		case "trace2":
			p = workload.Trace2Profile()
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		tr, err = workload.Generate(p.Scaled(*scale))
	case flag.NArg() == 1:
		tr, err = load(flag.Arg(0))
	default:
		fatal(fmt.Errorf("usage: tracestat [-per-disk] <trace-file> | tracestat -profile trace1"))
	}
	if err != nil {
		fatal(err)
	}

	c := trace.Characterize(tr)
	fmt.Print(c)
	if *analyze {
		fmt.Println("analysis:")
		fmt.Print(trace.Analyze(tr))
	}
	if *hitCurve {
		a := trace.Analyze(tr)
		dists := trace.StackDistances(tr, 4)
		fmt.Println("predicted read/write-combined hit ratio by cache size (per whole system):")
		for _, mb := range []int{8, 16, 32, 64, 128, 256} {
			blocks := mb << 20 / 4096
			fmt.Printf("  %4d MB  %.3f\n", mb, trace.HitRatioAt(dists, blocks, a.ReReferenceP))
		}
	}
	if *perDisk {
		fmt.Println("disk accesses:")
		for i, n := range c.PerDiskAccesses {
			fmt.Printf("  %4d  %d\n", i, n)
		}
	}
}

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [6]byte
	if _, err := f.ReadAt(magic[:], 0); err == nil && string(magic[:5]) == "RSTB1" {
		return trace.ReadBinary(f)
	}
	return trace.ReadText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
