package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"raidsim/internal/obs"
)

// spanRec is one span flattened out of either export format.
type spanRec struct {
	name   string
	parent string // parent span's name; "" for roots
	class  string // root class (request class or background root name)
	durMS  float64
	root   bool
}

// runSpans analyzes a span export written by raidsim -trace-spans:
// Chrome trace-event JSON, or the flat CSV when the path ends in .csv.
func runSpans(path string) {
	var recs []spanRec
	var err error
	if strings.HasSuffix(path, ".csv") {
		recs, err = loadSpansCSV(path)
	} else {
		recs, err = loadSpansChrome(path)
	}
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("no spans in export")
		return
	}

	byClass := map[string]int{}
	for _, r := range recs {
		if r.root {
			byClass[r.class]++
		}
	}
	fmt.Printf("span trees: %d (%d spans total)\n", sumMap(byClass), len(recs))
	for _, c := range sortedKeys(byClass) {
		fmt.Printf("  %-18s %d\n", c, byClass[c])
	}

	fmt.Println("\nper-stage durations (ms):")
	fmt.Printf("  %-16s %6s %9s %9s %9s\n", "stage", "count", "mean", "p95", "max")
	byName := map[string][]float64{}
	for _, r := range recs {
		if !r.root {
			byName[r.name] = append(byName[r.name], r.durMS)
		}
	}
	for _, name := range sortedKeysF(byName) {
		d := byName[name]
		fmt.Printf("  %-16s %6d %9.3f %9.3f %9.3f\n", name, len(d), mean(d), p95(d), maxOf(d))
	}

	// RMW legs: the disk-layer phases of a read-modify-write, split by
	// whether they served the data or the parity access — the read-old
	// under "rmw-parity" is the read-old-parity leg of the paper's small
	// write.
	legs := map[string][]float64{}
	for _, r := range recs {
		switch r.name {
		case obs.SpanReadOld, obs.SpanRealign, obs.SpanHold, obs.SpanWriteNew:
			legs[r.name+" <- "+r.parent] = append(legs[r.name+" <- "+r.parent], r.durMS)
		}
	}
	if len(legs) > 0 {
		fmt.Println("\nRMW leg breakdown (ms):")
		fmt.Printf("  %-30s %6s %9s %9s\n", "leg <- device op", "count", "mean", "p95")
		for _, k := range sortedKeysF(legs) {
			d := legs[k]
			fmt.Printf("  %-30s %6d %9.3f %9.3f\n", k, len(d), mean(d), p95(d))
		}
	}
}

func loadSpansChrome(path string) ([]spanRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Schema string `json:"schema"`
		Events []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Dur  float64                `json:"dur"` // microseconds
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if doc.Schema != "" && doc.Schema != obs.SpanSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, this tool reads %q", path, doc.Schema, obs.SpanSchemaVersion)
	}
	var recs []spanRec
	for _, e := range doc.Events {
		if e.Ph != "X" {
			continue
		}
		r := spanRec{name: e.Name, durMS: e.Dur / 1e3}
		if p, ok := e.Args["parent"].(string); ok {
			r.parent = p
		} else {
			r.root = true
			if c, ok := e.Args["class"].(string); ok {
				r.class = c
			} else {
				r.class = e.Name
			}
		}
		recs = append(recs, r)
	}
	return recs, nil
}

func loadSpansCSV(path string) ([]spanRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) > 0 && strings.HasPrefix(lines[0], "# schema ") {
		if s := strings.TrimPrefix(lines[0], "# schema "); s != obs.SpanSchemaVersion {
			return nil, fmt.Errorf("%s: schema %q, this tool reads %q", path, s, obs.SpanSchemaVersion)
		}
		lines = lines[1:]
	}
	if len(lines) > 0 && strings.HasPrefix(lines[0], "array,") {
		lines = lines[1:]
	}
	// Columns: array,tree,background,class,span,parent,name,disk,blocks,start_ms,dur_ms
	type key struct {
		array, tree, span int
	}
	names := map[key]string{}
	type row struct {
		k      key
		parent int
		name   string
		class  string
		durMS  float64
	}
	var rows []row
	for i, ln := range lines {
		f := strings.Split(ln, ",")
		if len(f) != 11 {
			return nil, fmt.Errorf("%s line %d: %d fields, want 11", path, i+2, len(f))
		}
		arr, _ := strconv.Atoi(f[0])
		tree, _ := strconv.Atoi(f[1])
		span, _ := strconv.Atoi(f[4])
		parent, err := strconv.Atoi(f[5])
		if err != nil {
			return nil, fmt.Errorf("%s line %d: bad parent %q", path, i+2, f[5])
		}
		dur, err := strconv.ParseFloat(f[10], 64)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: bad dur_ms %q", path, i+2, f[10])
		}
		k := key{arr, tree, span}
		names[k] = f[6]
		rows = append(rows, row{k: k, parent: parent, name: f[6], class: f[3], durMS: dur})
	}
	recs := make([]spanRec, 0, len(rows))
	for _, r := range rows {
		rec := spanRec{name: r.name, class: r.class, durMS: r.durMS}
		if r.parent < 0 {
			rec.root = true
		} else {
			rec.parent = names[key{r.k.array, r.k.tree, r.parent}]
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func sumMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mean(d []float64) float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s / float64(len(d))
}

func p95(d []float64) float64 {
	s := append([]float64(nil), d...)
	sort.Float64s(s)
	i := int(0.95*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func maxOf(d []float64) float64 {
	m := d[0]
	for _, v := range d[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
