// Command raidsim runs one disk array simulation and prints its results:
// response-time statistics, hit ratios, and per-disk utilization. The
// workload comes from a trace file (text or binary, see cmd/tracegen),
// a built-in workload name, or a declarative multi-client workload spec
// (a .json file; see examples/workloads).
//
// Examples:
//
//	raidsim -workload trace2 -org raid5 -n 10
//	raidsim -workload trace1 -scale 0.05 -org raid4 -cached -cache-mb 32
//	raidsim -workload diurnal -scale 0.2 -org raid5 -cached -obs-window 30s
//	raidsim -workload examples/workloads/diurnal.json -org mirror -deadline 80ms
//	raidsim -trace t.bin -org pstripe -placement end -sync rfpr
//	raidsim -workload trace2 -org raid5 -obs-window 1s -obs-trace 256 -obs-jsonl events.jsonl
//	raidsim -workload trace2 -org raid5 -cached -trace-spans spans.json -http :8080
//	raidsim -workload trace2 -org raid5 -self-metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"raidsim/internal/array"
	"raidsim/internal/cliflag"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/obs"
	"raidsim/internal/report"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file to replay (text or binary); empty = generate -workload")
		speed     = flag.Float64("speed", 1, "trace speed factor (2 = twice the load)")
		perDisk   = flag.Bool("per-disk", false, "print per-disk access counts and utilization")
		mpl       = flag.Int("mpl", 0, "closed-loop mode: keep this many requests outstanding per array (0 = replay trace timing)")
		thinkMS   = flag.Float64("think-ms", 0, "closed-loop think time between completion and next request")

		mttrHours = flag.Float64("mttr-hours", 24, "mean repair time for the -mttdl-runs campaign")
		mttdlRuns = flag.Int("mttdl-runs", 0, "run a Monte-Carlo MTTDL campaign with this many lifetimes instead of a trace replay")

		obsCSV   = flag.String("obs-csv", "", "write the windowed time series to this CSV file")
		obsJSONL = flag.String("obs-jsonl", "", "write the retained observability events to this JSONL file")

		traceSpans = flag.String("trace-spans", "", "export retained span trees to this file (.csv = flat CSV, otherwise Chrome trace-event JSON for Perfetto)")
		httpAddr   = flag.String("http", "", "serve live /metrics (Prometheus text) and /debug/pprof on this address during the run (e.g. :8080)")
		httpHold   = flag.Duration("http-hold", 0, "keep the -http server (and process) alive this long after the run completes")
	)
	bind := cliflag.Bind(flag.CommandLine)
	wl := cliflag.BindWorkload(flag.CommandLine)
	prof := cliflag.BindProfile(flag.CommandLine)
	flag.Parse()

	cfg, err := bind.Config()
	if err != nil {
		fatal(err)
	}
	// -trace-spans implies the tracer; default to the slowest 8 per class
	// unless -trace-topk chose a depth.
	if *traceSpans != "" && cfg.Obs.SpanTopK == 0 {
		cfg.Obs.SpanTopK = 8
	}
	var httpSrv *obs.Server
	if *httpAddr != "" {
		live := obs.NewLive()
		cfg.Obs.Live = live
		httpSrv, err = obs.Serve(*httpAddr, live)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", httpSrv.Addr)
		defer func() {
			if *httpHold > 0 {
				fmt.Printf("holding -http server for %v\n", *httpHold)
				time.Sleep(*httpHold)
			}
			if err := httpSrv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "raidsim:", err)
			}
		}()
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "raidsim:", err)
		}
	}()

	if *mttdlRuns > 0 {
		runCampaign(cfg, *mttrHours, *mttdlRuns)
		return
	}

	tr, err := loadTrace(*tracePath, wl)
	if err != nil {
		fatal(err)
	}
	if *speed != 1 {
		if tr, err = tr.Scale(*speed); err != nil {
			fatal(err)
		}
	}
	cfg.DataDisks = tr.NumDisks

	if *mpl > 0 {
		res, err := core.RunClosedLoop(cfg, tr, core.ClosedLoopConfig{
			MPL:       *mpl,
			ThinkTime: sim.Time(*thinkMS * float64(sim.Millisecond)),
		})
		if err != nil {
			fatal(err)
		}
		printResults(cfg, tr, &res.Results, *perDisk)
		fmt.Printf("closed loop: MPL=%d throughput %.1f req/s (makespan %.1fs)\n",
			*mpl, res.Throughput(), float64(res.Makespan)/float64(sim.Second))
		printObs(&res.Results, *obsCSV, *obsJSONL)
		printSpans(&res.Results, *traceSpans)
		return
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		fatal(err)
	}
	printResults(cfg, tr, res, *perDisk)
	printObs(res, *obsCSV, *obsJSONL)
	printSpans(res, *traceSpans)
}

// printSpans renders the tail-anatomy table and exports the retained span
// trees (tail requests plus background activity) as Chrome trace-event
// JSON — loadable in Perfetto / chrome://tracing — or flat CSV when the
// path ends in .csv.
func printSpans(res *core.Results, path string) {
	if len(res.TailSpans) == 0 && len(res.BgSpans) == 0 {
		return
	}
	if err := report.TailTable("tail anatomy: slowest requests per class", res.TailSpans).Render(os.Stdout); err != nil {
		fatal(err)
	}
	if path == "" {
		return
	}
	samples := append(append([]obs.SpanSample(nil), res.TailSpans...), res.BgSpans...)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, ".csv") {
		err = obs.WriteSpansCSV(f, samples)
	} else {
		err = obs.WriteSpansChrome(f, samples)
	}
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("span trace: %d request + %d background trees -> %s (%d background trees dropped)\n\n",
		len(res.TailSpans), len(res.BgSpans), path, res.SpanTreesDropped)
}

// printObs renders the windowed time series (table + ASCII plot) and
// writes the optional CSV / JSONL artifacts.
func printObs(res *core.Results, csvPath, jsonlPath string) {
	if res.Series != nil {
		if res.Series.Len() > 1 {
			if err := report.SeriesFigure("response over time", res.Series).RenderPlot(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if err := report.SeriesTable("windowed time series", res.Series).Render(os.Stdout); err != nil {
			fatal(err)
		}
		if ct := report.ClassSeriesTable("per-class time series", res.Series); ct != nil {
			if err := ct.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if csvPath != "" {
			f, err := os.Create(csvPath)
			if err != nil {
				fatal(err)
			}
			if err := res.Series.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if len(res.ObsEvents) > 0 {
		if jsonlPath == "" {
			fmt.Printf("event trace: %d events retained (%d dropped); write them with -obs-jsonl\n\n",
				len(res.ObsEvents), res.ObsEventsDropped)
			return
		}
		f, err := os.Create(jsonlPath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteJSONL(f, res.ObsEvents); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("event trace: %d events -> %s (%d dropped)\n\n",
			len(res.ObsEvents), jsonlPath, res.ObsEventsDropped)
	}
}

func loadTrace(path string, wl *cliflag.WorkloadBinding) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var magic [6]byte
		if _, err := f.ReadAt(magic[:], 0); err == nil &&
			(string(magic[:5]) == "RSTB1" || string(magic[:5]) == "RSTB2") {
			return trace.ReadBinary(f)
		}
		return trace.ReadText(f)
	}
	return wl.Generate("trace2")
}

func printResults(cfg core.Config, tr *trace.Trace, res *core.Results, perDisk bool) {
	t := &report.Table{
		Title:   fmt.Sprintf("raidsim: %s, N=%d, %d arrays, %d drives, trace %s (%d requests)", cfg.Org, cfg.N, res.Arrays, cfg.PhysicalDisks(), tr.Name, res.Requests),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("mean response (ms)", fmt.Sprintf("%.3f", res.Resp.Mean()))
	t.AddRow("read response (ms)", fmt.Sprintf("%.3f", res.ReadResp.Mean()))
	t.AddRow("write response (ms)", fmt.Sprintf("%.3f", res.WriteResp.Mean()))
	t.AddRow("p50 response (ms)", fmt.Sprintf("%.3f", res.Resp.Quantile(0.5)))
	t.AddRow("p95 response (ms)", fmt.Sprintf("%.3f", res.Resp.Quantile(0.95)))
	t.AddRow("p99 response (ms)", fmt.Sprintf("%.3f", res.Resp.Quantile(0.99)))
	t.AddRow("max response (ms)", fmt.Sprintf("%.3f", res.Resp.Max()))
	if cfg.Cached {
		t.AddRow("read hit ratio", fmt.Sprintf("%.4f", res.ReadHitRatio()))
		t.AddRow("write hit ratio", fmt.Sprintf("%.4f", res.WriteHitRatio()))
		t.AddRow("destages", fmt.Sprintf("%d", res.Cache.Destages))
		t.AddRow("dirty evictions", fmt.Sprintf("%d", res.Cache.DirtyEvictions))
		if cfg.Org == array.OrgRAID4 {
			t.AddRow("parity queued", fmt.Sprintf("%d", res.Cache.ParityQueued))
			t.AddRow("parity stalls", fmt.Sprintf("%d", res.Cache.ParityStalls))
			t.AddRow("peak parity in cache", fmt.Sprintf("%d", res.Cache.PeakParity))
		}
	}
	t.AddRow("mean seek distance (cyl)", fmt.Sprintf("%.1f", res.SeekDistMean))
	t.AddRow("held rotations", fmt.Sprintf("%d", res.HeldRotations))
	t.AddRow("parity accesses", fmt.Sprintf("%d", res.ParityAccesses))
	if tot := res.Stages.Total(); tot > 0 {
		stage := func(name string, ms float64) {
			t.AddRow("  "+name, fmt.Sprintf("%.1f s (%.1f%%)", ms/1e3, 100*ms/tot))
		}
		t.AddRow("stage breakdown", fmt.Sprintf("%.1f disk-seconds", tot/1e3))
		stage("queue wait", res.Stages.QueueMS)
		stage("seek + rotate", res.Stages.SeekRotateMS)
		stage("transfer", res.Stages.TransferMS)
		stage("parity sync", res.Stages.ParitySyncMS)
		stage("destage stall", res.Stages.DestageStallMS)
	}
	t.AddRow("events simulated", fmt.Sprintf("%d", res.Events))
	// Gated on the flag, not on data: sharded runs always carry engine
	// meters, but host-timing rows belong on stdout only when asked for
	// (plain output must stay diffable across hosts and shard counts).
	if cfg.SelfMetrics && res.Engine.Events > 0 {
		t.AddRow("engine events/s (host)", fmt.Sprintf("%.0f", res.Engine.EventsPerSec()))
		t.AddRow("engine busy (ms)", fmt.Sprintf("%.1f", float64(res.Engine.WallNS)/1e6))
		t.AddRow("event heap high-water", fmt.Sprintf("%d", res.Engine.HeapHighWater))
		t.AddRow("call free-list hit ratio", fmt.Sprintf("%.4f (%d/%d)", res.Engine.CallHitRatio(),
			res.Engine.CallHits, res.Engine.CallHits+res.Engine.CallMisses))
		t.AddRow("metered allocations", fmt.Sprintf("%d B in %d mallocs", res.Engine.AllocBytes, res.Engine.Mallocs))
		for s, ms := range res.EngineShards {
			t.AddRow(fmt.Sprintf("  shard %d", s),
				fmt.Sprintf("%d events, %.1f ms busy, %.0f ev/s", ms.Events, float64(ms.WallNS)/1e6, ms.EventsPerSec()))
		}
	}
	var usum, umax float64
	for _, u := range res.DiskUtil {
		usum += u
		if u > umax {
			umax = u
		}
	}
	t.AddRow("mean disk utilization", fmt.Sprintf("%.4f", usum/float64(len(res.DiskUtil))))
	t.AddRow("max disk utilization", fmt.Sprintf("%.4f", umax))
	if f := res.Fault; f.Enabled {
		t.AddRow("disk failures", fmt.Sprintf("%d", f.Failures))
		t.AddRow("spares used", fmt.Sprintf("%d / rebuilds %d", f.SparesUsed, f.Rebuilds))
		if f.Rebuilds > 0 || f.RebuildActive {
			state := "done"
			if f.RebuildActive {
				state = "still running"
			}
			t.AddRow("rebuild time (s)", fmt.Sprintf("%.1f (%s)", float64(f.RebuildTime)/float64(sim.Second), state))
		}
		t.AddRow("degraded time (s)", fmt.Sprintf("%.1f over %d window(s)", float64(f.DegradedTime)/float64(sim.Second), f.DegradedWindows))
		t.AddRow("normal response (ms)", fmt.Sprintf("%.3f (%d reqs)", res.NormalResp.Mean(), res.NormalResp.N()))
		t.AddRow("degraded response (ms)", fmt.Sprintf("%.3f (%d reqs)", res.DegradedResp.Mean(), res.DegradedResp.N()))
		if f.DataLossEvents > 0 || f.LostReadBlocks > 0 || f.LostWriteBlocks > 0 {
			t.AddRow("DATA LOSS events", fmt.Sprintf("%d (%d read / %d write blocks)", f.DataLossEvents, f.LostReadBlocks, f.LostWriteBlocks))
		}
		if f.CacheFailures > 0 {
			t.AddRow("cache failures", fmt.Sprintf("%d (%d dirty blocks lost)", f.CacheFailures, f.DirtyBlocksLost))
		}
		if f.SectorErrors > 0 {
			t.AddRow("sector errors", fmt.Sprintf("%d (%d retried, %d reconstructed)", f.SectorErrors, f.SectorRetries, f.SectorReconstructs))
		}
		if f.FailoverReads > 0 {
			t.AddRow("failover reads", fmt.Sprintf("%d", f.FailoverReads))
		}
		if f.SickOnsets > 0 {
			t.AddRow("sick-disk episodes", fmt.Sprintf("%d onset(s), %d cleared", f.SickOnsets, f.SickClears))
			if f.Hangs > 0 {
				t.AddRow("sick-disk hangs", fmt.Sprintf("%d", f.Hangs))
			}
			if f.TransientErrors > 0 {
				t.AddRow("transient read errors", fmt.Sprintf("%d", f.TransientErrors))
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if res.Robust.Enabled {
		if err := report.RobustTable("request robustness (SLO)", &res.Robust).Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if ct := report.ClassTable("per-class results (workload clients)", res.Classes); ct != nil {
		if err := ct.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if perDisk {
		d := &report.Table{
			Title:   "per-disk activity",
			Columns: []string{"disk", "accesses", "utilization"},
		}
		for i := range res.DiskAccesses {
			d.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", res.DiskAccesses[i]), fmt.Sprintf("%.4f", res.DiskUtil[i]))
		}
		if err := d.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runCampaign runs the Monte-Carlo MTTDL campaign for -mttdl-runs and
// prints the empirical mean next to the analytic Markov predictions.
func runCampaign(cfg core.Config, mttrHours float64, runs int) {
	mttfHours := float64(cfg.Fault.MTTF) / (3600 * float64(sim.Second))
	if mttfHours <= 0 {
		fatal(fmt.Errorf("-mttdl-runs needs -mttf-hours"))
	}
	var scheme fault.Scheme
	switch cfg.Org {
	case array.OrgMirror, array.OrgRAID10:
		scheme = fault.MirrorPair
	case array.OrgRAID5, array.OrgRAID4, array.OrgParityStriping:
		scheme = fault.ParityArray
	default:
		fatal(fmt.Errorf("organization %v has no redundancy to measure MTTDL for", cfg.Org))
	}
	res, err := fault.RunCampaign(fault.CampaignConfig{
		Scheme: scheme, N: cfg.N,
		MTTFHours: mttfHours, MTTRHours: mttrHours,
		Runs: runs, Seed: cfg.Fault.Seed,
	})
	if err != nil {
		fatal(err)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("MTTDL campaign: %s (%s), MTTF %gh, MTTR %gh, %d lifetimes", cfg.Org, scheme, mttfHours, mttrHours, runs),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("empirical MTTDL (h)", fmt.Sprintf("%.0f", res.EmpiricalMTTDLHours))
	t.AddRow("exact Markov MTTDL (h)", fmt.Sprintf("%.0f", res.ExactMTTDLHours))
	t.AddRow("approximate MTTDL (h)", fmt.Sprintf("%.0f", res.AnalyticMTTDLHours))
	t.AddRow("empirical / exact", fmt.Sprintf("%.3f", res.Ratio()))
	t.AddRow("shortest lifetime (h)", fmt.Sprintf("%.1f", res.MinHours))
	t.AddRow("longest lifetime (h)", fmt.Sprintf("%.0f", res.MaxHours))
	t.AddRow("empirical MTTDL (years)", fmt.Sprintf("%.1f", res.EmpiricalMTTDLHours/(24*365)))
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raidsim:", err)
	os.Exit(1)
}
