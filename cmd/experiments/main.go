// Command experiments regenerates the paper's tables and figures (and
// this reproduction's ablations and extensions). Each experiment prints
// the same rows/series the paper reports, as aligned tables or CSV.
//
// Examples:
//
//	experiments -list
//	experiments -exp fig5
//	experiments -exp fig11,fig12 -scale 0.25
//	experiments -all -scale 0.1 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"raidsim/internal/array"
	"raidsim/internal/cliflag"
	"raidsim/internal/exp"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		ids       = flag.String("exp", "", "comma-separated experiment ids to run")
		all       = flag.Bool("all", false, "run every experiment")
		scale     = flag.Float64("scale", 0.1, "trace scale (1.0 = the paper's full request counts)")
		traces    = flag.String("traces", "trace1,trace2", "workloads to evaluate")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot      = flag.Bool("plot", false, "draw figures as ASCII charts above their tables")
		outDir    = flag.String("out", "", "write each experiment's output to <dir>/<id>.txt instead of stdout")
		quiet     = flag.Bool("quiet", false, "suppress progress messages on stderr")
		obsWindow = flag.Duration("obs-window", 0, "record windowed time series at this granularity in every run (0 = off)")
		obsTrace  = flag.Int("obs-trace", 0, "retain up to this many observability events per run (0 = off)")
		traceTopK = flag.Int("trace-topk", 0, "trace per-request span trees in every run, keeping the slowest K per class (0 = off)")
		httpAddr  = flag.String("http", "", "serve live /metrics (Prometheus text) and /debug/pprof on this address while experiments run")

		deadline      = flag.Duration("deadline", 0, "score every run's gold-class completions against this deadline (0 = off)")
		batchDeadline = flag.Duration("batch-deadline", 0, "batch-class deadline (0 = use -deadline)")
		retries       = flag.Int("retries", 0, "retry transient media errors up to N times in every run")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge mirror reads still unanswered after this delay in every run (0 = off)")
		hedgeQuantile = flag.Float64("hedge-quantile", 0, "derive the hedge delay from this read-response quantile (0 = fixed)")
		shedQueue     = flag.Int("shed-queue", 0, "shed batch-class requests while total disk queue depth >= N (0 = off)")
		shedDirty     = flag.Float64("shed-dirty", 0, "shed batch-class requests while cache dirty fraction >= this (0 = off)")
	)
	prof := cliflag.BindProfile(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-26s %s\n", "ID", "FIGURE", "TITLE")
		for _, e := range exp.All() {
			fmt.Printf("%-20s %-26s %s\n", e.ID, e.Figure, e.Title)
			if e.Knobs != "" {
				fmt.Printf("%-20s %-26s knobs: %s\n", "", "", e.Knobs)
			}
		}
		return
	}

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fatal(err)
		}
	}()

	var todo []exp.Experiment
	switch {
	case *all:
		todo = exp.All()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			e, err := exp.Get(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			todo = append(todo, e)
		}
	default:
		fatal(fmt.Errorf("nothing to do: pass -list, -exp <ids> or -all"))
	}

	var live *obs.Live
	if *httpAddr != "" {
		live = obs.NewLive()
		srv, err := obs.Serve(*httpAddr, live)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr)
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	mkCtx := func(out *os.File) *exp.Context {
		return exp.NewContext(exp.Options{
			Scale:  *scale,
			Traces: strings.Split(*traces, ","),
			Seed:   *seed,
			Out:    out,
			CSV:    *csv,
			Plot:   *plot,
			Obs:    obs.Config{Window: sim.Time(*obsWindow), TraceCap: *obsTrace, SpanTopK: *traceTopK, Live: live},
			Robust: array.RobustConfig{
				Deadline:      sim.Time(*deadline),
				BatchDeadline: sim.Time(*batchDeadline),
				Retries:       *retries,
				HedgeAfter:    sim.Time(*hedgeAfter),
				HedgeQuantile: *hedgeQuantile,
				ShedQueue:     *shedQueue,
				ShedDirty:     *shedDirty,
			},
		})
	}
	var ctx *exp.Context
	if *outDir == "" {
		ctx = mkCtx(os.Stdout)
	} else if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, e := range todo {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
		}
		t0 := time.Now()
		run := ctx
		var f *os.File
		if *outDir != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+ext))
			if err != nil {
				fatal(err)
			}
			run = mkCtx(f)
		}
		if err := e.Run(run); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "   done in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
